(* perf: multicore scaling of the execution substrate (not a paper figure).

   Workload 1 — the fig14-style kernel at scale: a 10-qubit noisy random
   circuit whose tracepoint states are averaged over independent
   trajectories. This is the embarrassingly-parallel hot path of
   characterization; it is run with 1, 2 and 4 domains, checked for
   bit-identical outputs (the deterministic-parallelism contract), and the
   speedup vs the sequential baseline is recorded in BENCH_results.json.

   Workload 2 — single-qubit gate fusion: the same circuit with adjacent 1q
   gates fused into one u2x2 kernel sweep, timed against the unfused run to
   show the per-trajectory work reduction.

   Workload 3 — small-n regression guard: the 3-qubit quantum-lock
   characterization, timed with 1 and 4 domains; small workloads must not
   slow down when a pool is available.

   Workload 4 — segment compilation + batched characterization on the fig5
   workload (3-payload teleportation, 256 samples): the segment compiler's
   fused operator count vs the source gate count, and [Characterize.run]
   under [`Batched] vs [`Sequential], checked for trace agreement and
   recorded with the per-sample operator-application reduction. *)

open Morphcore

let frob_diff a b = Linalg.Cmat.frob_norm (Linalg.Cmat.sub a b)

let traces_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (ia, ma) (ib, mb) -> ia = ib && frob_diff ma mb = 0.)
       a b

let run () =
  Util.header "perf: multicore scaling of the trajectory engine";
  let cores = Domain.recommended_domain_count () in
  Util.row "host parallelism: %d recommended domain(s)%s" cores
    (if cores < 4 then "  [speedups are bounded by the host core count]"
     else "");

  (* ---- workload 1: noisy trajectory fan-out, 10 qubits ---- *)
  let n = 10 in
  let circuit =
    (* Xeb.make puts tracepoints on the full register; re-point them at a
       4-qubit slice so the per-trajectory density matrices stay small and
       the workload is dominated by gate application, not state readout *)
    let base = Benchmarks.Xeb.make (Stats.Rng.make 4242) ~n ~depth:8 in
    List.fold_left
      (fun c i ->
        match i with
        | Circuit.Instr.Tracepoint { id; _ } ->
            Circuit.tracepoint id [ 0; 1; 2; 3 ] c
        | i -> Circuit.add i c)
      (Circuit.empty n) (Circuit.instrs base)
  in
  let noise = Sim.Noise.ibm_cairo in
  let trajectories = 32 in
  let run_with pool =
    Sim.Engine.tracepoint_states ~pool ~rng:(Stats.Rng.make 7) ~noise
      ~trajectories circuit
  in
  let time_domains d =
    let pool = Parallel.Pool.create ~domains:d () in
    let r =
      Util.timed_samples
        ~name:(Printf.sprintf "perf.noisy-traj.domains=%d" d)
        (fun () -> run_with pool)
    in
    Parallel.Pool.shutdown pool;
    r
  in
  let base_traces, t1, reps1 = time_domains 1 in
  Util.row "noisy-traj 10q x%d   domains=1   %7.3fs   (sequential baseline)"
    trajectories t1;
  Util.record "perf/noisy-traj-10q/domains=1" ~seconds:t1 ~samples:reps1
    ~speedup:1.0 ~domains:1 ();
  List.iter
    (fun d ->
      let traces, td, repsd = time_domains d in
      if not (traces_equal base_traces traces) then
        failwith "perf: parallel trajectories diverged from sequential run";
      let speedup = t1 /. td in
      Util.row
        "noisy-traj 10q x%d   domains=%d   %7.3fs   speedup %.2fx   bit-identical: yes"
        trajectories d td speedup;
      Util.record
        (Printf.sprintf "perf/noisy-traj-10q/domains=%d" d)
        ~seconds:td ~samples:repsd ~speedup ~domains:d ())
    [ 2; 4 ];

  (* ---- workload 2: single-qubit gate fusion ---- *)
  let fused = Transpile.Passes.fuse_1q circuit in
  Util.row "fusion: %d gates -> %d gates (%.0f%% removed)"
    (Circuit.gate_count circuit) (Circuit.gate_count fused)
    (100. *. Transpile.Passes.gate_reduction ~before:circuit ~after:fused);
  let time_fused name c =
    let pool = Parallel.Pool.create ~domains:1 () in
    let _, t, reps =
      Util.timed_samples ~name (fun () ->
          Sim.Engine.tracepoint_states ~pool ~rng:(Stats.Rng.make 7) ~noise
            ~trajectories c)
    in
    Parallel.Pool.shutdown pool;
    (t, reps)
  in
  let t_unfused, _ = time_fused "perf.traj.unfused" circuit in
  let t_fused, reps_fused = time_fused "perf.traj.fused" fused in
  Util.row "fused kernel       domains=1   %7.3fs   vs unfused %7.3fs (%.2fx)"
    t_fused t_unfused (t_unfused /. t_fused);
  Util.record "perf/fused-traj-10q/domains=1" ~seconds:t_fused
    ~samples:reps_fused
    ~speedup:(t_unfused /. t_fused) ~domains:1 ();

  (* ---- workload 3: small-n characterization must not regress ---- *)
  let lock = Benchmarks.Quantum_lock.make ~key:1 3 in
  let program =
    Program.make ~input_qubits:lock.Benchmarks.Quantum_lock.key_qubits
      lock.Benchmarks.Quantum_lock.circuit
  in
  let characterize d =
    let pool = Parallel.Pool.create ~domains:d () in
    let r =
      Util.timed_samples
        ~name:(Printf.sprintf "perf.characterize-lock.domains=%d" d)
        (fun () ->
          Characterize.run ~pool ~rng:(Stats.Rng.make 11) ~noise
            ~trajectories:16 program ~count:16)
    in
    Parallel.Pool.shutdown pool;
    r
  in
  let _, s1, reps_s1 = characterize 1 in
  let _, s4, reps_s4 = characterize 4 in
  Util.row "characterize 3q lock   domains=1 %.3fs   domains=4 %.3fs" s1 s4;
  Util.record "perf/characterize-lock-3q/domains=1" ~seconds:s1
    ~samples:reps_s1 ~speedup:1.0 ~domains:1 ();
  Util.record "perf/characterize-lock-3q/domains=4" ~seconds:s4
    ~samples:reps_s4 ~speedup:(s1 /. s4) ~domains:4 ();

  (* ---- workload 4: batched vs sequential characterization (fig5) ---- *)
  let hops = 3 in
  let teleport = Benchmarks.Teleport.multi hops in
  let plan = Transpile.Segments.compile teleport in
  let ops_before = plan.Sim.Batch.source_ops in
  let ops_after = Sim.Batch.ops plan in
  Util.row "segments: teleport x%d   %d gates -> %d fused operators (%.1fx)"
    hops ops_before ops_after
    (float_of_int ops_before /. float_of_int (max 1 ops_after));
  let program =
    Program.make
      ~input_qubits:(Benchmarks.Teleport.input_qubits hops)
      teleport
  in
  let samples = 256 in
  let characterize_engine name engine =
    let pool = Parallel.Pool.create ~domains:1 () in
    let r =
      Util.timed_samples ~name (fun () ->
          Characterize.run ~pool ~rng:(Stats.Rng.make 21) ~trajectories:8
            ~engine program ~count:samples)
    in
    Parallel.Pool.shutdown pool;
    r
  in
  let seq, t_seq, reps_seq =
    characterize_engine "perf.characterize.sequential" `Sequential
  in
  let bat, t_bat, reps_bat =
    characterize_engine "perf.characterize.batched" `Batched
  in
  Array.iter2
    (fun (a : Characterize.sample) (b : Characterize.sample) ->
      let ta = a.Characterize.traces and tb = b.Characterize.traces in
      if
        not
          (List.length ta = List.length tb
          && List.for_all2
               (fun (ia, ma) (ib, mb) -> ia = ib && frob_diff ma mb <= 1e-9)
               ta tb)
      then failwith "perf: batched characterization diverged from sequential")
    seq.Characterize.samples bat.Characterize.samples;
  Util.row
    "characterize teleport x%d n=%d   sequential %7.3fs   batched %7.3fs (%.2fx)   traces agree: yes"
    hops samples t_seq t_bat (t_seq /. t_bat);
  Util.record "perf/characterize-teleport-fig5/sequential" ~seconds:t_seq
    ~samples:reps_seq ~speedup:1.0 ~ops:(ops_before, ops_before) ~domains:1 ();
  Util.record "perf/characterize-teleport-fig5/batched" ~seconds:t_bat
    ~samples:reps_bat ~speedup:(t_seq /. t_bat)
    ~ops:(ops_before, ops_after)
    ~domains:1 ();

  (* ---- workload 5: sequential distribution verdict (SPRT early stop) ----
     An 8-qubit GHZ distribution assertion under a sequential shot budget:
     the SPRT must accept well before the 4096-shot cap, so this row's
     counter deltas prove [verify_shots_saved_total > 0] on a bench
     workload — the regression gate then pins the saving exactly. The
     fixed-budget run of the same assertion is timed as the baseline. *)
  let n5 = 8 in
  let ghz =
    let c = ref Circuit.(empty n5 |> h 0) in
    for q = 0 to n5 - 2 do
      c := Circuit.cx q (q + 1) !c
    done;
    !c
  in
  let ghz_prog = Program.make ghz in
  let dist = Assertion.Dist.make [ (0, 0.5); ((1 lsl n5) - 1, 0.5) ] in
  let input = Qstate.Statevec.basis n5 0 in
  let cap = 4096 in
  let check budget seed =
    Verify.check_counts ~budget ~rng:(Stats.Rng.make seed) ghz_prog dist ~input
  in
  let _, t_fixed, _ =
    Util.timed_samples ~name:"perf.seq-verify.fixed" (fun () ->
        check (`Fixed cap) 51)
  in
  let r5, t_seq5, reps_seq5 =
    Util.timed_samples ~name:"perf.seq-verify.sequential" (fun () ->
        check
          (`Sequential { Stats.Tests.alpha = 0.05; beta = 0.05; max_shots = cap })
          51)
  in
  if not (r5.Verify.counts_hold && r5.Verify.early_stop) then
    failwith "perf: sequential verify did not stop early on the GHZ assertion";
  Util.row
    "seq-verify ghz-%dq   fixed %d shots %7.3fs   sequential %d shots %7.3fs (%.1fx fewer shots)"
    n5 cap t_fixed r5.Verify.shots_used t_seq5
    (float_of_int cap /. float_of_int (max 1 r5.Verify.shots_used));
  Util.record "perf/seq-verify-ghz8" ~seconds:t_seq5 ~samples:reps_seq5
    ~speedup:(t_fixed /. t_seq5) ~domains:1 ()

(* ----------------- scale: characterization past the dense wall --------------

   The `scale` experiment (also run by `make bench-smoke`) characterizes
   register widths the dense engine cannot even allocate (2^24..2^32
   amplitudes): Bernstein-Vazirani rides the lightcone-restricted
   stabilizer route, the quantum lock and the cell-list QRAM ride the
   sparse coordinate engine, and a 24-qubit GHZ+6T workload rides the
   stabilizer-rank engine (2^6 tableau frames). Each row asserts the
   expected route, that the dense engine was never invoked
   (sim_engine_routed_total{engine=statevec} must not move), and an exact
   trace value — so the printed output is byte-identical across domain
   counts and the smoke diff covers it. Wall seconds land only in
   BENCH_results.json, which also carries the counter deltas
   (sparse_amps_peak_total, rank_branches_total, ...). *)

let routed engine =
  Option.value ~default:0
    (Obs.Metrics.counter_value ~labels:[ ("engine", engine) ]
       "sim_engine_routed_total")

let engine_name = function
  | `Stabilizer -> "stabilizer"
  | `Sparse -> "sparse"
  | `Rank -> "rank"

(* characterize [count] basis inputs over [input_qubits] through [`Auto],
   assert the static route and that dense never ran, and time it *)
let scale_case ~name ~route ~input_qubits ~check c =
  let count = 3 in
  if Sim.Engine.auto_route c <> Some route then
    failwith (Printf.sprintf "scale: %s did not route to %s" name
                (engine_name route));
  let program = Program.make ~input_qubits c in
  let dense_before = routed "statevec" in
  let expected_routed = routed (engine_name route) + count in
  let ch, dt, reps =
    Util.timed_samples ~name:("perf.scale." ^ name) (fun () ->
        Characterize.run
          ~rng:(Stats.Rng.make 31)
          ~kind:Clifford.Sampling.Basis ~engine:`Auto program ~count)
  in
  if routed "statevec" <> dense_before then
    failwith (Printf.sprintf "scale: dense engine invoked on %s" name);
  if routed (engine_name route) < expected_routed then
    failwith (Printf.sprintf "scale: %s not routed per sample on %s"
                (engine_name route) name);
  Array.iter (fun (s : Characterize.sample) -> check s) ch.Characterize.samples;
  Util.row "scale %-14s %2dq   route=%-10s samples=%d   traces exact: yes" name
    (Circuit.num_qubits c) (engine_name route) count;
  Util.record ("perf/scale-" ^ name) ~seconds:dt ~samples:reps ~domains:1 ()

(* largest diagonal index of a (near-)basis density matrix *)
let dm_argmax m =
  let d = fst (Linalg.Cmat.dims m) in
  let best = ref 0 in
  for k = 1 to d - 1 do
    if Linalg.Cx.re (Linalg.Cmat.get m k k) > Linalg.Cx.re (Linalg.Cmat.get m !best !best)
    then best := k
  done;
  !best

let check_diag_one ~tracepoint ~expected (s : Characterize.sample) =
  let m = List.assoc tracepoint s.Characterize.traces in
  let k = expected (dm_argmax (Util.dm_of_state s.Characterize.input_state)) in
  if Float.abs (Linalg.Cx.re (Linalg.Cmat.get m k k) -. 1.) > 1e-9 then
    failwith "scale: routed trace disagrees with the specification"

let run_scale () =
  Util.header "scale: auto-routed characterization past the dense wall";
  let secret = 0b1 lor (0b1011 lsl 10) in
  let key = 0b10 in
  let cells = [ (1, 0.3); (5, 1.1) ] in
  List.iter
    (fun n ->
      (* all-Clifford BV, tracepoint narrowed to the two low qubits *)
      scale_case
        ~name:(Printf.sprintf "bv-%dq" n)
        ~route:`Stabilizer ~input_qubits:[ 0; 1 ]
        ~check:
          (check_diag_one ~tracepoint:1 ~expected:(fun b -> b lxor (secret land 3)))
        (Benchmarks.Bv.circuit ~trace_qubits:[ 0; 1 ] ~secret n);
      (* the lock's mcz is non-Clifford but diagonal: support bound 2 *)
      let lock = Benchmarks.Quantum_lock.make ~key_tracepoint:false ~key (n - 1) in
      scale_case
        ~name:(Printf.sprintf "lock-%dq" n)
        ~route:`Sparse ~input_qubits:[ 1; 2 ]
        ~check:
          (check_diag_one ~tracepoint:2 ~expected:(fun b ->
               if b = key then 1 else 0))
        lock.Benchmarks.Quantum_lock.circuit;
      (* cell-list QRAM: two listed cells, the rest of the 2^(n-1)-entry
         address space implicitly holds angle 0 *)
      let qram = Benchmarks.Qram.make_cells ~addr_tracepoint:false ~cells (n - 1) in
      scale_case
        ~name:(Printf.sprintf "qram-%dq" n)
        ~route:`Sparse ~input_qubits:[ 0; 1 ]
        ~check:(fun s ->
          let b = dm_argmax (Util.dm_of_state s.Characterize.input_state) in
          let m = List.assoc 2 s.Characterize.traces in
          let p1 = Linalg.Cx.re (Linalg.Cmat.get m 1 1) in
          if Float.abs (p1 -. Benchmarks.Qram.expected_p1_cells qram b) > 1e-9
          then failwith "scale: QRAM read disagrees with the cell table")
        qram.Benchmarks.Qram.s_circuit)
    [ 24; 28; 32 ];
  (* near-Clifford: GHZ-24 with six T gates -> 2^6 stabilizer frames *)
  let ghz_t =
    let c = ref Circuit.(empty 24 |> h 0) in
    for q = 0 to 22 do
      c := Circuit.cx q (q + 1) !c
    done;
    List.iter (fun q -> c := Circuit.t_gate q !c) [ 3; 7; 11; 15; 19; 23 ];
    Circuit.tracepoint 1 [ 22; 23 ] !c
  in
  scale_case ~name:"ghz-t6-24q" ~route:`Rank ~input_qubits:[ 0 ]
    ~check:(fun s ->
      (* traced pair of a phased GHZ state: exact half-half mixture *)
      let m = List.assoc 1 s.Characterize.traces in
      let ok =
        Float.abs (Linalg.Cx.re (Linalg.Cmat.get m 0 0) -. 0.5) <= 1e-9
        && Float.abs (Linalg.Cx.re (Linalg.Cmat.get m 3 3) -. 0.5) <= 1e-9
      in
      if not ok then failwith "scale: GHZ mixture trace disagrees")
    ghz_t
