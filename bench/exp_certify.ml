(* certify: translation-validation obligation census and checker timing
   (also run by `make bench-smoke`).

   Every program in the corpus — the example QASM files plus constructed
   redundancy-heavy circuits — is transpiled through the certificate-
   emitting pass variants (peephole fixpoint, lightcone pruning, segment
   compilation) and the resulting chain is re-validated by the
   independent checker ([Transpile.Certify.check_plan]).

   Every printed row is exact (chain steps and obligation counts by kind,
   checker verdict, mutants rejected), so the output is byte-identical
   across domain counts and the bench-smoke diff covers it. Checker wall
   seconds land only in BENCH_results.json, where the regression gate
   t-tests them: the checker is advertised as O(total obligation size),
   and these rows would catch it quietly becoming circuit-sized. *)

let examples =
  [
    ("bv", "examples/qasm/bv.qasm");
    ("ghz", "examples/qasm/ghz.qasm");
    ("teleport", "examples/qasm/teleport.qasm");
  ]

(* adjoint annihilation: the peephole fixpoint cancels everything, so the
   certificate is almost entirely Local_equiv deletion groups *)
let adjoint_collapse =
  let base =
    Circuit.(empty 3 |> h 0 |> rz 0.9 1 |> cx 0 1 |> t_gate 2 |> cx 1 2)
  in
  Circuit.append base (Circuit.adjoint base) |> Circuit.tracepoint 1 [ 0; 1; 2 ]

(* rotation runs + identity gates + an unobserved spectator wire: merges,
   identity eliminations and lightcone pruning all fire *)
let mixed_rewrites =
  Circuit.(
    empty ~clbits:2 4 |> h 0 |> cx 0 1
    |> rz 0.3 1 |> rz 0.4 1 |> rz 0.0 2 |> rx (4. *. Float.pi) 2
    |> h 3 |> t_gate 3 (* outside every cone below *)
    |> tracepoint 1 [ 0; 1 ] |> measure 0 0 |> measure 1 1)

(* measurement + feedback: fences constrain fusion, and the mutation
   harness's reordered-measurement mutant applies *)
let feedback =
  Circuit.(
    empty ~clbits:2 2 |> h 0 |> measure 0 0
    |> if_gate [ 0 ] 1 (Gate.make "x" [ 1 ])
    |> h 1 |> h 1 |> measure 1 1)

let constructed =
  [
    ("adjoint-collapse", adjoint_collapse);
    ("mixed-rewrites", mixed_rewrites);
    ("feedback", feedback);
  ]

(* the pipeline the verifier certifies, with the chain kept apart from the
   check so only the checker is timed *)
let build_chain c =
  let c1, opt_steps = Transpile.Passes.optimize_cert c in
  let c2, prune_step = Transpile.Passes.prune_lightcone_cert c1 in
  let plan, seg_step = Transpile.Segments.compile_cert c2 in
  (opt_steps @ [ prune_step; seg_step ], plan)

let check_one ~domains (name, c) =
  let cert, plan = build_chain c in
  let result, t_check, reps =
    Util.timed_samples
      ~name:("certify." ^ name)
      (fun () -> Transpile.Certify.check_plan cert c plan)
  in
  let s =
    match result with
    | Ok s -> s
    | Error (f :: _) ->
        failwith
          (Printf.sprintf "certify: %s failed to certify: %s" name
             (Transpile.Certify.failure_message f))
    | Error [] -> failwith "certify: empty failure list"
  in
  Util.row
    "certify %-18s steps=%d obligations=%-3d local_equiv=%-3d outside_cone=%d \
     identity_elim=%d barrier_elim=%d mapped=%d"
    name s.Transpile.Certify.chain_steps
    (Transpile.Certify.total_obligations s)
    s.Transpile.Certify.local_equiv s.Transpile.Certify.outside_cone
    s.Transpile.Certify.identity_elim s.Transpile.Certify.barrier_elim
    s.Transpile.Certify.permutation;
  Util.record ("certify/" ^ name) ~seconds:t_check ~samples:reps ~domains ();
  Transpile.Certify.total_obligations s

let run () =
  Util.header "certify: translation-validation of the transpile pipeline";
  let domains = 1 in
  let corpus =
    List.map (fun (name, path) -> (name, Qasm.parse_file path)) examples
    @ constructed
  in
  let total =
    List.fold_left (fun acc case -> acc + check_one ~domains case) 0 corpus
  in
  if total = 0 then
    failwith "certify: the corpus discharged zero rewrite obligations";
  (* mutation rejection rides along: every applicable doctored certificate
     must be refused by the checker *)
  let rejected, attempted =
    List.fold_left
      (fun (r, a) (_, c) ->
        let ms = Testkit.Mutate.mutants c in
        ( r + List.length (List.filter Testkit.Mutate.rejected ms),
          a + List.length ms ))
      (0, 0) constructed
  in
  if rejected <> attempted || attempted = 0 then
    failwith
      (Printf.sprintf "certify: %d of %d mutants escaped the checker"
         (attempted - rejected) attempted);
  Util.row "certify mutants rejected: %d/%d" rejected attempted;
  Util.row "all certificates checked (%d obligations over %d programs)" total
    (List.length corpus)
