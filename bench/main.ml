(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md for the experiment index) and runs a Bechamel
   micro-benchmark suite with one Test.make per table/figure kernel.

   Usage:
     dune exec bench/main.exe                  # all experiments + bechamel
     dune exec bench/main.exe -- fig7 table4   # a subset
     dune exec bench/main.exe -- --list        # list experiment names
     dune exec bench/main.exe -- --no-bechamel # skip the timing suite *)

open Morphcore

let experiments =
  [
    ("fig1b", "confidence vs tested inputs (15q quantum lock)", Exp_fig1b.run);
    ("fig5", "approximation accuracy vs N_sample (teleportation)", Exp_fig5.run);
    ("fig6", "accuracy distribution vs fitted Beta", Exp_fig6.run);
    ("fig7", "executions to find the quantum-lock bug", Exp_fig7.run);
    ("fig10", "executions to find the corrupted QRAM cell", Exp_fig10.run);
    ("fig11", "state-recovery time + accuracy of 5 benchmarks", Exp_fig11.run);
    ("fig12", "estimated confidence vs measured success", Exp_fig12.run);
    ("fig13", "pruning strategies ablation", Exp_fig13.run);
    ("fig14", "noisy accuracy vs intermediate tracepoints", Exp_fig14.run);
    ("fig15", "sampling-family ablation + solver timing", Exp_fig15.run);
    ("table2", "expressiveness vs assertion techniques", Exp_tables_expr.run);
    ("table4", "success rate + overhead vs NDD/Quito", Exp_table4.run);
    ("table6", "success rate + seconds vs Twist/Automa", Exp_table6.run);
    ("ablation", "alpha-recovery and PSD-projection ablations", Exp_ablation.run);
    ("perf", "multicore scaling + gate fusion (BENCH_results.json)", Exp_perf.run);
    ("scale", "24-32q characterization past the dense wall", Exp_perf.run_scale);
    ("cache", "warm-vs-cold incremental verification cache", Exp_cache.run);
    ("fuzz", "differential/metamorphic fuzz sweep (pass/fail counts)", Exp_fuzz.run);
    ("certify", "translation-validation obligations + checker timing", Exp_certify.run);
  ]

(* ------------------------- bechamel suite ---------------------------- *)

let bechamel_tests () =
  let open Bechamel in
  let rng = Stats.Rng.make 999 in
  (* shared fixtures, built once *)
  let lock = Benchmarks.Quantum_lock.make ~key:1 ~unexpected_key:6 3 in
  let lock_prog =
    Program.make ~input_qubits:lock.Benchmarks.Quantum_lock.key_qubits
      lock.Benchmarks.Quantum_lock.circuit
  in
  let lock_ch = Characterize.run ~rng lock_prog ~count:16 in
  let lock_approx = Approx.of_characterization lock_ch in
  let lock_assertion =
    Assertion.make ~name:"lock"
      ~assumes:[ Predicate.Diag_in_range (1, 1, 0., 0.01) ]
      ~guarantees:[ Predicate.Equals_const (2, Util.basis_dm 1 0) ]
      ()
  in
  let tele_prog =
    Program.make ~input_qubits:[ 0; 1; 2 ] (Benchmarks.Teleport.multi 3)
  in
  let tele_ch = Characterize.run ~rng ~trajectories:8 tele_prog ~count:8 in
  let tele_approx = Approx.of_characterization tele_ch in
  let probe_dm = Util.dm_of_state (Clifford.Sampling.haar_state rng 3) in
  let accs = Array.init 40 (fun _ -> Stats.Rng.beta rng ~a:3. ~b:2.) in
  let xeb5 = Benchmarks.Xeb.make rng ~n:5 ~depth:5 in
  let xeb_prog = Program.make xeb5 in
  let qnn = Benchmarks.Qnn.init rng ~num_qubits:4 ~layers:2 in
  let flowers = Benchmarks.Iris.generate rng ~count:10 in
  let dataset =
    Array.to_list
      (Array.map
         (fun f ->
           List.assoc 1
             (Sim.Engine.tracepoint_states
                (Benchmarks.Qnn.circuit qnn ~features:f.Benchmarks.Iris.features)))
         flowers)
  in
  let quad_obj =
    Optimize.Objective.make ~dim:8 (fun x ->
        -.Array.fold_left (fun acc v -> acc +. (v *. v)) 0. x)
  in
  let validate_opts = { Verify.default_options with budget = 300; restarts = 1 } in
  [
    Test.make ~name:"fig1b/confidence-model"
      (Staged.stage (fun () ->
           ignore (Confidence.estimate ~n_in:14 ~n_sample:4096 [||])));
    Test.make ~name:"fig5/probe-accuracy"
      (Staged.stage (fun () ->
           ignore (Approx.state_at tele_approx ~tracepoint:2 probe_dm)));
    Test.make ~name:"fig6/beta-fit"
      (Staged.stage (fun () -> ignore (Stats.Beta_dist.fit accs)));
    Test.make ~name:"fig7/lock-validate"
      (Staged.stage (fun () ->
           ignore
             (Verify.validate ~options:validate_opts ~rng lock_approx
                lock_assertion)));
    Test.make ~name:"fig10/decompose"
      (Staged.stage (fun () -> ignore (Approx.decompose lock_approx probe_dm)));
    Test.make ~name:"fig11a/approx"
      (Staged.stage (fun () ->
           ignore (Approx.state_at lock_approx ~tracepoint:2 probe_dm)));
    Test.make ~name:"fig11a/simulate"
      (Staged.stage (fun () ->
           ignore (Program.run_traces lock_prog ~input:(Qstate.Statevec.basis 3 5))));
    Test.make ~name:"fig11b/characterize-4"
      (Staged.stage (fun () -> ignore (Characterize.run ~rng lock_prog ~count:4)));
    Test.make ~name:"fig12/beta-confidence"
      (Staged.stage (fun () ->
           ignore (Confidence.estimate ~n_in:4 ~n_sample:16 accs)));
    Test.make ~name:"fig13/strategy-adapt"
      (Staged.stage (fun () -> ignore (Prune.strategy_adapt dataset)));
    Test.make ~name:"fig14/psd-project"
      (Staged.stage (fun () -> ignore (Linalg.Eig.project_psd probe_dm)));
    Test.make ~name:"fig15a/clifford-prep"
      (Staged.stage (fun () ->
           ignore
             (Clifford.Sampling.state rng Clifford.Sampling.Clifford 4 ~index:0)));
    Test.make ~name:"fig15b/qp-solver"
      (Staged.stage (fun () ->
           ignore (Optimize.Solvers.qp ~iters:10 ~restarts:1 rng quad_obj)));
    Test.make ~name:"table2/predicate-eval"
      (Staged.stage (fun () ->
           ignore (Predicate.eval (Predicate.Is_pure 0) (fun _ -> probe_dm))));
    Test.make ~name:"table4/quito-check"
      (Staged.stage (fun () ->
           ignore
             (Baselines.Quito.check ~rng ~shots:100 ~tests:1 ~reference:lock_prog
                ~candidate:lock_prog ())));
    Test.make ~name:"table6/twist-purity"
      (Staged.stage (fun () ->
           ignore (Baselines.Twist.purity_vector xeb_prog ~input:0)));
    Test.make ~name:"table6/automa-sparse"
      (Staged.stage (fun () -> ignore (Baselines.Sparse_sim.run xeb5 ~input:0)));
  ]

let run_bechamel () =
  let open Bechamel in
  Util.header "Bechamel micro-benchmarks (one kernel per table/figure)";
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.3) ~kde:None () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let tests = Test.make_grouped ~name:"morphqpv" (bechamel_tests ()) in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name est ->
      match Analyze.OLS.estimates est with
      | Some [ ns ] -> rows := (name, ns) :: !rows
      | _ -> ())
    results;
  List.iter
    (fun (name, ns) ->
      if ns >= 1e6 then Util.row "%-42s %10.3f ms/run" name (ns /. 1e6)
      else Util.row "%-42s %10.1f ns/run" name ns)
    (List.sort compare !rows)

(* --------------------------- regression gate -------------------------- *)

(* [check [PREV CUR]]: compare the last two results files (default: the
   rotation pair written by [Util.write_bench_json]) and fail on
   statistically significant slowdowns or counter drifts. Exit codes:
   0 clean, 1 regression, 2 usage/missing files. *)
let run_check args =
  let prev_file, cur_file =
    match args with
    | [] -> (Util.prev_path "BENCH_results.json", "BENCH_results.json")
    | [ p; c ] -> (p, c)
    | _ ->
        prerr_endline "usage: bench check [PREV.json CUR.json]";
        exit 2
  in
  match (Testkit.Benchgate.load prev_file, Testkit.Benchgate.load cur_file) with
  | Error e, _ | _, Error e ->
      Printf.eprintf
        "bench check: %s\n(run the bench twice so both %s and %s exist)\n" e
        prev_file cur_file;
      exit 2
  | Ok prev, Ok cur ->
      let report = Testkit.Benchgate.compare_runs ~prev cur in
      Format.printf "%a" Testkit.Benchgate.pp_report report;
      exit (if report.Testkit.Benchgate.regressions = [] then 0 else 1)

(* ------------------------------ driver ------------------------------- *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  (match args with
  | "check" :: rest -> run_check rest
  | _ -> ());
  if List.mem "--list" args then
    List.iter (fun (name, doc, _) -> Printf.printf "%-10s %s\n" name doc) experiments
  else begin
    let with_bechamel = not (List.mem "--no-bechamel" args) in
    let selected =
      List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args
    in
    let to_run =
      if selected = [] then experiments
      else
        List.filter_map
          (fun name ->
            match List.find_opt (fun (n, _, _) -> n = name) experiments with
            | Some e -> Some e
            | None ->
                if name <> "bechamel" then
                  Printf.eprintf "unknown experiment %S (try --list)\n" name;
                None)
          selected
    in
    (* observability is on by default here so every experiment row in
       BENCH_results.json carries its counter deltas (gates, shots,
       MACs); MORPHQPV_OBS in the environment still wins *)
    if Sys.getenv_opt "MORPHQPV_OBS" = None then Obs.configure ~enabled:true;
    let t0 = Unix.gettimeofday () in
    let domains = Parallel.Pool.env_domains () in
    List.iter
      (fun (name, _, run) ->
        let (), dt =
          Obs.Span.with_ ~name:("exp." ^ name) (fun () -> Util.time run)
        in
        Util.record name ~seconds:dt ~domains ();
        Printf.printf "[%s finished in %.1fs]\n%!" name dt)
      to_run;
    if with_bechamel && (selected = [] || List.mem "bechamel" selected) then
      run_bechamel ();
    Util.write_bench_json "BENCH_results.json";
    Printf.printf "\nAll experiments done in %.1fs\n%!" (Unix.gettimeofday () -. t0)
  end
