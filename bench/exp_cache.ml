(* cache: warm-vs-cold incremental verification (also run by
   `make bench-smoke`).

   A 6-qubit program with three tracepoints over disjoint two-qubit cones
   is verified end-to-end (characterize -> approximate -> validate) three
   ways against one content-addressed cache:

   - cold:   fresh cache every repetition — every cone unit misses;
   - warm:   the shared cache already holds every unit and the verdict —
             the run must spend zero executions and zero tomography shots
             ([cache_hit_total{ns=characterize}] moves,
             [tomography_shots_total] does not), and reproduce the cold
             traces bit-for-bit;
   - edited: one rotation angle inside the first cone changes — exactly
             that cone re-characterizes (1 unit miss, 2 unit hits; a
             third of the cold run's executions and shots).

   Every printed row is an exactness assertion (counts and bitwise
   comparisons, no timings), so the output is byte-identical across
   domain counts and the smoke diff covers it. Wall seconds land only in
   BENCH_results.json. *)

open Morphcore

let ns_hits () =
  Option.value ~default:0
    (Obs.Metrics.counter_value
       ~labels:[ ("ns", "characterize") ]
       "cache_hit_total")

let ns_misses () =
  Option.value ~default:0
    (Obs.Metrics.counter_value
       ~labels:[ ("ns", "characterize") ]
       "cache_miss_total")

let tomo_shots () =
  Option.value ~default:0 (Obs.Metrics.counter_value "tomography_shots_total")

(* three tracepoints with disjoint backward cones; [theta] sits inside the
   first cone only, so editing it leaves the other two unit hashes — and
   their cache entries — untouched *)
let circuit theta =
  Circuit.(
    empty 6 |> h 0 |> cx 0 1 |> rz theta 1
    |> tracepoint 1 [ 0; 1 ]
    |> h 2 |> cx 2 3 |> t_gate 3
    |> tracepoint 2 [ 2; 3 ]
    |> h 4 |> cx 4 5
    |> tracepoint 3 [ 4; 5 ])

let count = 4
let mode = Characterize.Tomography { shots = 48; project = true }

let options =
  (* trace projection: the PSD projection eigendecomposes the 64-dim input
     candidate on every objective evaluation — two orders of magnitude
     slower, and irrelevant to what this experiment measures *)
  { Verify.default_options with budget = 150; restarts = 1; projection = `Trace }

(* the full pipeline against one cache; a fixed seed makes the unit keys
   (which embed the entry-generator fingerprint) reproducible per run *)
let verify_once ~pool ~cache theta =
  let program = Program.make (circuit theta) in
  let rng = Stats.Rng.make 11 in
  let ch = Characterize.run ~pool ~cache ~rng ~mode program ~count in
  let approx = Approx.of_characterization ch in
  let assertion =
    Assertion.make ~name:"cache-bench" ~assumes:[]
      ~guarantees:[ Predicate.Purity_ge (3, 0.2) ]
      ()
  in
  let verdict = Verify.validate ~options ~rng ~cache approx assertion in
  (ch, verdict)

let traces_identical (a : Characterize.t) (b : Characterize.t) =
  Array.length a.Characterize.samples = Array.length b.Characterize.samples
  && Array.for_all2
       (fun (x : Characterize.sample) (y : Characterize.sample) ->
         x.Characterize.traces = y.Characterize.traces)
       a.Characterize.samples b.Characterize.samples

let verified = function Verify.Verified _ -> true | Verify.Violated _ -> false

let run () =
  Util.header "cache: warm-vs-cold incremental verification";
  (* a private sequential pool: the units here are tiny, so scheduling
     overhead — not simulation — would dominate a multi-domain run and
     make the timing rows depend on MORPHQPV_DOMAINS *)
  let pool = Parallel.Pool.create ~domains:1 () in
  let verify_once = verify_once ~pool in
  let domains = 1 in

  (* ---- cold: fresh cache per repetition, every cone misses ---- *)
  let (cold_ch, cold_verdict), t_cold, reps_cold =
    Util.timed_samples ~name:"cache.cold" (fun () ->
        verify_once ~cache:(Cache.create ()) 0.7)
  in
  let cold_exec = cold_ch.Characterize.cost.Sim.Cost.executions in
  let cold_shots = cold_ch.Characterize.cost.Sim.Cost.shots in
  if cold_exec = 0 || cold_shots = 0 then
    failwith "cache: cold run did no quantum work";
  Util.row "cache cold     cones=3  executions=%d shots=%d  verified=%b"
    cold_exec cold_shots (verified cold_verdict);
  Util.record "cache/cold" ~seconds:t_cold ~samples:reps_cold ~domains ();

  (* ---- warm: shared cache, zero quantum work ---- *)
  let cache = Cache.create () in
  ignore (verify_once ~cache 0.7);
  let s0 = Cache.stats cache in
  let hits0 = ns_hits () and shots0 = tomo_shots () in
  let (warm_ch, warm_verdict), t_warm, reps_warm =
    Util.timed_samples ~name:"cache.warm" (fun () -> verify_once ~cache 0.7)
  in
  let s1 = Cache.stats cache in
  if s1.Cache.misses <> s0.Cache.misses then
    failwith "cache: warm re-verification missed the cache";
  if s1.Cache.hits <= s0.Cache.hits then
    failwith "cache: warm re-verification recorded no hits";
  if Obs.enabled () && ns_hits () <= hits0 then
    failwith "cache: cache_hit_total{ns=characterize} did not move";
  if Obs.enabled () && tomo_shots () <> shots0 then
    failwith "cache: warm re-verification spent tomography shots";
  if warm_ch.Characterize.cost.Sim.Cost.executions <> 0 then
    failwith "cache: warm re-verification executed circuits";
  if warm_ch.Characterize.cost.Sim.Cost.shots <> 0 then
    failwith "cache: warm re-verification spent shots";
  if not (traces_identical cold_ch warm_ch) then
    failwith "cache: warm traces differ from cold traces";
  if verified warm_verdict <> verified cold_verdict then
    failwith "cache: warm verdict differs from cold verdict";
  Util.row
    "cache warm     executions=0 shots=0  traces bitwise equal: yes  verdict \
     unchanged: yes";
  Util.record "cache/warm-verify" ~seconds:t_warm ~samples:reps_warm
    ~speedup:(t_cold /. t_warm) ~domains ();

  (* ---- edited: only the changed cone re-characterizes ---- *)
  let hits_before = ns_hits () and misses_before = ns_misses () in
  let (edited_ch, _), t_edit = Util.time (fun () -> verify_once ~cache 1.3) in
  let edited_exec = edited_ch.Characterize.cost.Sim.Cost.executions in
  let edited_shots = edited_ch.Characterize.cost.Sim.Cost.shots in
  if 3 * edited_exec <> cold_exec || 3 * edited_shots <> cold_shots then
    failwith "cache: edited run did not re-characterize exactly one cone";
  if Obs.enabled () then begin
    if ns_misses () - misses_before <> 1 then
      failwith "cache: edited run should miss exactly the changed cone";
    if ns_hits () - hits_before <> 2 then
      failwith "cache: edited run should hit the two unchanged cones"
  end;
  Util.row
    "cache edited   re-characterized cones: 1 of 3  executions=%d (cold/3) \
     shots=%d (cold/3)"
    edited_exec edited_shots;
  Util.record "cache/edited" ~seconds:t_edit ~samples:[ t_edit ] ~domains ();

  (* ---- serve-obs: the daemon envelope under full observability ----
     The same cold/warm pair driven through [Server.handle_line] (its own
     state and cache per condition) with obs disabled, then enabled. The
     envelope's tracing/metrics/logging must not change what the daemon
     computes: warm requests still execute nothing, and the protocol lines
     are byte-identical across the two conditions once wall-clock
     [seconds] fields are stripped. Printed rows carry counts only, so the
     smoke diff covers this section too. *)
  let req id =
    Server.Jsonx.to_string
      (Server.Jsonx.Obj
         [
           ("id", Server.Jsonx.int id);
           ("request_id", Server.Jsonx.Str (Printf.sprintf "bench-%d" id));
           ("method", Server.Jsonx.Str "verify");
           ( "params",
             Server.Jsonx.Obj
               [
                 ("qasm", Server.Jsonx.Str (Qasm.to_string (circuit 0.7)));
                 ("count", Server.Jsonx.int count);
                 ("seed", Server.Jsonx.int 11);
                 ( "guarantee",
                   Server.Jsonx.List [ Server.Jsonx.Str "purity-ge:3,0.2" ] );
               ] );
         ])
  in
  let rec strip_seconds = function
    | Server.Jsonx.Obj fields ->
        Server.Jsonx.Obj
          (List.filter_map
             (fun (k, v) ->
               if k = "seconds" then None else Some (k, strip_seconds v))
             fields)
    | Server.Jsonx.List l -> Server.Jsonx.List (List.map strip_seconds l)
    | v -> v
  in
  let drive () =
    (* fresh daemon state and cache: request 1 is cold, request 2 warm *)
    let state = Server.make_state ~cache:(Cache.create ()) () in
    let out = ref [] in
    let emit j = out := j :: !out in
    ignore (Server.handle_line state ~emit (req 1));
    let cold_lines = List.rev !out in
    out := [];
    let (_ : [ `Continue | `Stop ]), t_warm =
      Util.time (fun () -> Server.handle_line state ~emit (req 2))
    in
    (cold_lines @ List.rev !out, t_warm)
  in
  let warm_executions lines =
    List.find_map
      (fun j ->
        match Server.Jsonx.member "result" j with
        | Some r when Server.Jsonx.mem_int "id" j = Some 2 ->
            Server.Jsonx.mem_int "executions" r
        | _ -> None)
      lines
  in
  let obs_was = Obs.enabled () in
  let (lines_off, t_off), (lines_on, t_on) =
    Fun.protect
      ~finally:(fun () -> Obs.configure ~enabled:obs_was)
      (fun () ->
        Obs.configure ~enabled:false;
        let off = drive () in
        Obs.configure ~enabled:true;
        let on = drive () in
        (off, on))
  in
  (match (warm_executions lines_off, warm_executions lines_on) with
  | Some 0, Some 0 -> ()
  | _ -> failwith "cache: warm daemon request executed circuits");
  let strip lines =
    List.map (fun j -> Server.Jsonx.to_string (strip_seconds j)) lines
  in
  if strip lines_off <> strip lines_on then
    failwith "cache: daemon output differs between obs off and on";
  Util.row
    "cache serve-obs warm executions=0  lines identical obs off/on: yes \
     (seconds stripped)";
  Util.record "cache/serve-obs" ~seconds:t_on ~samples:[ t_off; t_on ]
    ~speedup:(t_off /. t_on) ~domains ();
  Parallel.Pool.shutdown pool
