(* Fuzz sweep: run every differential oracle and metamorphic property of
   morphqpv.testkit over MORPHQPV_FUZZ_N random circuits each (default 100)
   and record pass/fail counts into BENCH_results.json, so the correctness
   trajectory is tracked across PRs alongside the perf numbers.

   Unlike `dune runtest` (which stops at the first failure and shrinks),
   the sweep runs every case and reports totals; the first failing circuit
   per oracle is printed for reproduction. *)

open Testkit

let fuzz_n () =
  match Sys.getenv_opt "MORPHQPV_FUZZ_N" with
  | Some s -> ( match int_of_string_opt (String.trim s) with
      | Some v when v > 0 -> v
      | _ -> 100)
  | None -> 100

(* (name, generator, property over the generated sketch) *)
let checks () =
  [
    ("statevec-vs-dm", Gen.gen_pure (), Oracle.statevec_vs_dm);
    ("statevec-vs-tableau", Gen.gen_clifford (), Oracle.statevec_vs_tableau);
    ( "statevec-vs-sparse",
      Gen.gen_pure (),
      fun c -> Oracle.statevec_vs_sparse c );
    ("qasm-roundtrip", Gen.gen_program (), Oracle.qasm_roundtrip);
    ("prune-preserves-traces", Gen.gen_pure (), Oracle.prune_preserves_traces);
    ("lightcone-restrict", Gen.gen_pure (), Oracle.lightcone_restrict_matches);
    ("stabilizer-traces", Gen.gen_clifford (), Oracle.stabilizer_traces_agree);
    ("sparse-traces", Gen.gen_pure (), Oracle.sparse_vs_statevec);
    ("rank-traces", Gen.gen_near_clifford (), Oracle.rank_vs_statevec);
    ( "characterize-auto-pinned",
      Gen.gen_program (),
      fun c -> Oracle.characterize_auto_unchanged c );
    ( "characterize-scale-route",
      Gen.gen_near_clifford (),
      fun c -> Oracle.characterize_scale_route c );
    ("obs-transparent", Gen.gen_program (), Oracle.obs_transparent);
    ( "server-obs-transparent",
      Gen.gen_program (),
      Oracle.server_obs_transparent );
    ( "cache-transparent",
      Gen.gen_program (),
      fun c -> Oracle.cache_transparent c );
    ( "sequential-vs-fixed",
      Gen.gen_pure (),
      Oracle.sequential_vs_fixed_verdict );
    ("pvalue-uniform", Gen.gen_pure (), Oracle.pvalue_uniform_under_null);
    ( "certified-passes-pure",
      Gen.gen_pure (),
      Oracle.certified_pass_sound );
    ( "certified-passes-nearclif",
      Gen.gen_near_clifford (),
      Oracle.certified_pass_sound );
    ( "certified-passes-programs",
      Gen.gen_program (),
      Oracle.certified_pass_sound );
    ( "certify-mutants-rejected",
      Gen.gen_program (),
      Oracle.certified_mutants_rejected );
    ("adjoint-cancels", Gen.gen_pure (), Metamorph.adjoint_cancels);
    ("global-phase", Gen.gen_pure (), Metamorph.global_phase_invariant);
    ("fused-traces", Gen.gen_pure (), Metamorph.fused_traces_agree);
  ]
  @ List.map
      (fun (name, pass) ->
        ( "transpile-" ^ name,
          Gen.gen_pure (),
          fun c -> Oracle.transpile_preserves pass c ))
      Oracle.all_passes

let run () =
  let n = fuzz_n () in
  let seed = Config.seed () in
  Util.header
    (Printf.sprintf "Fuzz sweep: %d circuits per oracle (seed %d)" n seed);
  let domains = Parallel.Pool.env_domains () in
  let total_failed = ref 0 in
  List.iter
    (fun (name, gen, prop) ->
      let rand = Random.State.make [| seed |] in
      let circs = QCheck.Gen.generate ~rand ~n gen in
      let failed = ref 0 and first_failure = ref None in
      let (), dt =
        Util.time (fun () ->
            List.iter
              (fun c ->
                let ok = try prop c with _ -> false in
                if not ok then begin
                  incr failed;
                  if !first_failure = None then first_failure := Some c
                end)
              circs)
      in
      let passed = n - !failed in
      total_failed := !total_failed + !failed;
      Util.record ("fuzz/" ^ name) ~seconds:dt ~cases:(passed, !failed)
        ~domains ();
      Util.row "%-28s %4d/%-4d passed  (%.2fs)" name passed n dt;
      match !first_failure with
      | Some c ->
          Util.row "  first failing circuit:";
          Util.row "%s" (Gen.print_circ c)
      | None -> ())
    (checks ());
  (* lint-diagnostic census over the same program distribution: how many
     random programs the linter flags at all (any severity). Recorded as
     (clean, flagged) so the diagnostic rate is tracked across PRs — a
     sudden jump means either the generator or a lint check drifted. *)
  let rand = Random.State.make [| seed |] in
  let circs = QCheck.Gen.generate ~rand ~n (Gen.gen_program ()) in
  let flagged = ref 0 and diagnostics = ref 0 in
  let (), dt =
    Util.time (fun () ->
        List.iter
          (fun c ->
            match Analysis.Lint.check (Gen.build c) with
            | [] -> ()
            | ds ->
                incr flagged;
                diagnostics := !diagnostics + List.length ds)
          circs)
  in
  Util.record "fuzz/lint-diagnostics" ~seconds:dt
    ~cases:(n - !flagged, !flagged) ~domains ();
  Util.row "%-28s %4d/%-4d clean   (%d diagnostics, %.2fs)" "lint-diagnostics"
    (n - !flagged) n !diagnostics dt;
  if !total_failed = 0 then Util.row "all oracles agree on every circuit"
  else Util.row "TOTAL FAILURES: %d (repro: MORPHQPV_SEED=%d)" !total_failed seed
