(* Shared helpers for the experiment harness. *)

open Morphcore

let dm_of_state st =
  let v = Qstate.Statevec.to_cvec st in
  Linalg.Cmat.outer v v

let basis_dm n k = dm_of_state (Qstate.Statevec.basis n k)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* [timed ~name f] is the shared timing helper for the experiment
   kernels: it runs [f] inside an [Obs] span (so profile traces show the
   experiment phases) and reports the MEDIAN wall time over
   [MORPHQPV_BENCH_REPS] repetitions (default 3) to tame host-timing
   variance on shared runners. The result is the first repetition's.
   Only hand it idempotent closures — [f] runs [reps] times; keep
   side-effecting code on single-shot [time]. *)
let bench_reps () =
  match Sys.getenv_opt "MORPHQPV_BENCH_REPS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v > 0 -> v
      | _ -> 3)
  | None -> 3

(* [timed_samples] additionally returns every repetition's wall time (in
   run order) so the caller can hand them to [record ~samples] — the
   bench-regression gate needs >= 2 samples per row to run a t-test. *)
let timed_samples ?reps ~name f =
  let reps = max 1 (match reps with Some r -> r | None -> bench_reps ()) in
  let samples = ref [] in
  let result = ref None in
  for _ = 1 to reps do
    let r, dt = Obs.Span.with_ ~name (fun () -> time f) in
    if !result = None then result := Some r;
    samples := dt :: !samples
  done;
  let samples = List.rev !samples in
  let sorted = List.sort compare samples in
  let median = List.nth sorted (reps / 2) in
  (Option.get !result, median, samples)

let timed ?reps ~name f =
  let r, median, _ = timed_samples ?reps ~name f in
  (r, median)

let header title =
  Printf.printf "\n==== %s ====\n%!" title

let row fmt = Printf.printf (fmt ^^ "\n%!")

(* ------------- machine-readable results (BENCH_results.json) ------------- *)

(* rows of (name, wall seconds, speedup vs sequential, domain count, and —
   for the fuzz experiment — passed/failed case counts), recorded by the
   driver and the perf/fuzz experiments, written once per run so the perf
   and correctness trajectories are tracked across PRs *)
type bench_row = {
  name : string;
  seconds : float;
  samples : float list;
      (** per-repetition wall times behind [seconds] (see
          [timed_samples]); the regression gate ([bench check]) t-tests
          these, so rows that leave it empty are compared on counters
          only *)
  speedup : float option;
  domains : int;
  cases : (int * int) option;  (** (passed, failed) *)
  ops : (int * int) option;
      (** (before, after) operator applications per sample, for the
          segment-fusion rows *)
  metrics : (string * int) list;
      (** counter deltas ([name{k=v}] keys) accumulated since the
          previous [record] — the per-kernel denominators (gates, shots,
          MACs); empty when observability is disabled *)
}

let bench_rows : bench_row list ref = ref []

(* counter values as of the last [record] call, so each row carries only
   the work done by its own experiment *)
let counter_baseline : (string, int) Hashtbl.t = Hashtbl.create 64

let flat_counter_name (e : Obs.Metrics.entry) =
  match e.labels with
  | [] -> e.name
  | labels ->
      Printf.sprintf "%s{%s}" e.name
        (String.concat ","
           (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels))

let counter_delta () =
  List.filter_map
    (fun (e : Obs.Metrics.entry) ->
      match e.data with
      | Obs.Metrics.Counter v ->
          let key = flat_counter_name e in
          let prev = Option.value ~default:0 (Hashtbl.find_opt counter_baseline key) in
          Hashtbl.replace counter_baseline key v;
          if v > prev then Some (key, v - prev) else None
      | _ -> None)
    (Obs.Metrics.snapshot ())

(* re-running an experiment REPLACES its row (keyed by [name]) rather
   than growing duplicates across driver invocations in one process *)
let record name ~seconds ?(samples = []) ?speedup ?cases ?ops ~domains () =
  let metrics = counter_delta () in
  bench_rows :=
    { name; seconds; samples; speedup; domains; cases; ops; metrics }
    :: List.filter (fun r -> r.name <> name) !bench_rows

(* [prev_path "BENCH_results.json"] is ["BENCH_results.prev.json"] *)
let prev_path path =
  if Filename.check_suffix path ".json" then
    Filename.chop_suffix path ".json" ^ ".prev.json"
  else path ^ ".prev"

let write_bench_json path =
  let rows = List.rev !bench_rows in
  (* keep the previous run around so [bench check] can compare the last
     two runs for statistically significant regressions *)
  if Sys.file_exists path then Sys.rename path (prev_path path);
  let oc = open_out path in
  Printf.fprintf oc
    "{\n  \"schema\": \"morphqpv-bench-v2\",\n  \"default_domains\": %d,\n  \"results\": [\n"
    (Parallel.Pool.env_domains ());
  let last = List.length rows - 1 in
  List.iteri
    (fun i { name; seconds; samples; speedup; domains; cases; ops; metrics } ->
      let samples_field =
        match samples with
        | [] -> ""
        | _ ->
            Printf.sprintf ", \"samples\": [%s]"
              (String.concat ", "
                 (List.map (Printf.sprintf "%.6f") samples))
      in
      let cases_field =
        match cases with
        | Some (passed, failed) ->
            Printf.sprintf ", \"passed\": %d, \"failed\": %d" passed failed
        | None -> ""
      in
      let ops_field =
        match ops with
        | Some (before, after) ->
            Printf.sprintf ", \"ops_before\": %d, \"ops_after\": %d" before
              after
        | None -> ""
      in
      let metrics_field =
        Printf.sprintf ", \"obs_schema\": %S, \"metrics\": {%s}"
          Obs.Metrics.schema
          (String.concat ", "
             (List.map (fun (k, v) -> Printf.sprintf "%S: %d" k v) metrics))
      in
      Printf.fprintf oc
        "    {\"name\": %S, \"seconds\": %.6f%s, \"speedup\": %s, \"domains\": %d%s%s%s}%s\n"
        name seconds samples_field
        (match speedup with
        | Some s -> Printf.sprintf "%.3f" s
        | None -> "null")
        domains cases_field ops_field metrics_field
        (if i = last then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc

let mean = Stats.Describe.mean

(* doubling search: smallest sample count (from [start], capped at [cap])
   for which [detect count] succeeds; returns [None] if the cap fails too *)
let min_samples_doubling ~start ~cap detect =
  let rec go count =
    if count > cap then None
    else if detect count then Some count
    else go (count * 2)
  in
  go start

(* mean probe accuracy of an approximation at [tracepoint] over [count]
   Haar-random inputs *)
let probe_accuracy ?(count = 10) rng approx program ~tracepoint =
  mean (Verify.probe_accuracies ~rng ~count approx program ~tracepoint)

(* The five benchmark programs of Table 3, parameterized by total qubits.
   Each returns a [Program.t] whose first/last tracepoints are 1/2 and an
   optional note about the construction. *)
let benchmark_program rng name n =
  match name with
  | "QL" ->
      let lock = Benchmarks.Quantum_lock.make ~key:1 (n - 1) in
      Program.make ~input_qubits:lock.Benchmarks.Quantum_lock.key_qubits
        lock.Benchmarks.Quantum_lock.circuit
  | "QNN" ->
      let qnn = Benchmarks.Qnn.init rng ~num_qubits:n ~layers:2 in
      Program.make (Benchmarks.Qnn.body qnn)
  | "QEC" ->
      (* unitary encode + syndrome structure of the distance-n repetition
         code (n data qubits, n-1 ancillas); tracepoints cover the data
         block, which carries the logical information the assertion checks *)
      (* phase defects inside the repetition code live in coherences BETWEEN
         the data and ancilla blocks, so the tracepoints must cover the full
         register; the distance is capped (total <= 9 qubits) to keep those
         full-register density matrices tractable *)
      let d = min 5 (if n mod 2 = 0 then n + 1 else max 3 n) in
      let total = (2 * d) - 1 in
      let data = List.init total (fun q -> q) in
      let c = ref (Circuit.empty total) in
      c := Circuit.tracepoint 1 data !c;
      for i = 1 to d - 1 do
        c := Circuit.cx 0 i !c
      done;
      for i = 0 to d - 2 do
        c := Circuit.cx i (d + i) !c;
        c := Circuit.cx (i + 1) (d + i) !c
      done;
      c := Circuit.tracepoint 2 data !c;
      Program.make !c
  | "Shor" ->
      let counting = n - 1 in
      Program.make (Benchmarks.Shor_period.circuit ~counting ~phase:0.25)
  | "XEB" -> Program.make (Benchmarks.Xeb.make rng ~n ~depth:(max 4 n))
  | _ -> invalid_arg ("unknown benchmark " ^ name)

let benchmark_names = [ "QL"; "QNN"; "QEC"; "Shor"; "XEB" ]

(* restrict a program's variable input so characterization stays tractable
   (the paper's Strategy-const; MorphQPV's cost depends on input qubits) *)
let cap_input_qubits program ~max_inputs =
  let qs = program.Program.input_qubits in
  if List.length qs <= max_inputs then program
  else
    Prune.strategy_const program
      ~variable_qubits:(List.filteri (fun i _ -> i < max_inputs) qs)

(* First/last tracepoint ids of a program (used to pick assertion targets). *)
let first_last_tracepoints program =
  match Circuit.tracepoints program.Program.circuit with
  | [] -> invalid_arg "program has no tracepoints"
  | tps ->
      let ids = List.map fst tps in
      (List.hd ids, List.nth ids (List.length ids - 1))

(* Detector factory for mutation testing: characterize the reference ONCE,
   then measure the worst deviation of a candidate's approximation from the
   reference's over random probe inputs, across the given tracepoints
   (default: every tracepoint both programs share, reflecting MorphQPV's
   multi-state assertions). *)
let deviation_detector ?(probes = 12) ?tracepoints rng ~reference ~count =
  let k = Program.num_input_qubits reference in
  let inputs = List.init count (fun index ->
      Clifford.Sampling.state rng Clifford.Sampling.Clifford k ~index)
  in
  let ref_ap =
    Approx.of_characterization (Characterize.run ~rng ~inputs reference ~count:0)
  in
  let probe_dms =
    Array.init probes (fun _ -> dm_of_state (Clifford.Sampling.haar_state rng k))
  in
  fun candidate ->
    let cand_ap =
      Approx.of_characterization (Characterize.run ~rng ~inputs candidate ~count:0)
    in
    let tracepoints =
      match tracepoints with
      | Some tps -> tps
      | None ->
          List.filter
            (fun tp -> tp <> 0 && List.mem tp (Approx.tracepoint_ids cand_ap))
            (Approx.tracepoint_ids ref_ap)
    in
    let worst = ref 0. in
    Array.iter
      (fun rho ->
        List.iter
          (fun tracepoint ->
            let a = Approx.state_at ~physical:false ref_ap ~tracepoint rho in
            let b = Approx.state_at ~physical:false cand_ap ~tracepoint rho in
            let d = Linalg.Cmat.frob_norm (Linalg.Cmat.sub a b) in
            if d > !worst then worst := d)
          tracepoints)
      probe_dms;
    !worst

(* one-shot variant *)
let max_probe_deviation ?probes ?tracepoints rng ~reference ~candidate ~count =
  (deviation_detector ?probes ?tracepoints rng ~reference ~count) candidate

(* Mutation testing per the paper requires every test case to carry a real
   bug: reject "equivalent mutants" whose phase gate provably does not change
   the program's behaviour on the variable input space (checked exactly on a
   handful of Haar inputs, full final state, phase-sensitive). *)
(* qubits that some tracepoint watches or that carry input — mutations on
   other wires can never surface in a tracepoint assertion *)
let watched_qubits program =
  List.sort_uniq compare
    (program.Program.input_qubits
    @ List.concat_map snd (Circuit.tracepoints program.Program.circuit))

let nonequivalent_mutant ?qubits rng program =
  let k = Program.num_input_qubits program in
  let differs candidate =
    (* a real bug must change some TRACEPOINT state for some input in the
       variable input space — a difference no tracepoint-based assertion
       could ever observe does not count as a test case *)
    let probes = 2 in
    let found = ref false in
    for _ = 1 to probes do
      if not !found then begin
        let input = Clifford.Sampling.haar_state rng k in
        let tr p = Program.run_traces p ~input in
        let a = tr program and b = tr candidate in
        List.iter
          (fun (id, ma) ->
            match List.assoc_opt id b with
            | Some mb ->
                if Linalg.Cmat.frob_norm (Linalg.Cmat.sub ma mb) > 1e-7 then
                  found := true
            | None -> ())
          a
      end
    done;
    !found
  in
  let rec go attempts =
    if attempts = 0 then None
    else
      let m = Benchmarks.Mutation.inject ?qubits rng program.Program.circuit in
      let candidate =
        Program.make ~input_qubits:program.Program.input_qubits
          m.Benchmarks.Mutation.circuit
      in
      if differs candidate then Some candidate else go (attempts - 1)
  in
  go 10
