(** Byte-bounded LRU store with optional on-disk persistence — the shared
    backend behind every memo layer (segments, characterizations,
    tomography estimates, verdicts). *)

type t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  stores : int;
  entries : int;  (** entries currently resident in memory *)
  bytes : int;  (** approximate resident bytes (keys + values + overhead) *)
}

val entry_version : int
(** Bumped whenever any cached value's representation changes; embedded
    in every disk entry header, so stale files read as misses. *)

val create : ?max_bytes:int -> ?dir:string -> unit -> t
(** [create ()] is an in-memory LRU bounded at 256 MiB by default;
    [~dir] adds a persistent tier (one file per entry, atomic writes,
    corrupt or version-mismatched files read as misses). *)

val of_env : unit -> t option
(** [Some cache] when [MORPHQPV_CACHE_DIR] is set (persistent) or
    [MORPHQPV_CACHE] is [1]/[true]/[on] (memory only);
    [MORPHQPV_CACHE_MB] overrides the byte budget. *)

val find : t -> ns:string -> string -> string option
(** Lookup, refreshing recency. A memory miss falls through to disk;
    a disk hit is promoted into memory. Records
    [cache_{hit,miss}_total{ns}]. *)

val store : t -> ns:string -> string -> string -> unit
(** Insert (or refresh) an entry, write through to disk if persistent,
    then evict from the cold end until the byte budget holds (the most
    recent entry is never evicted). Records
    [cache_bytes_total{ns}] and [cache_evict_total{ns}]. *)

val find_value : t -> ns:string -> string -> 'a option
(** [find] + [Marshal] decode; any decode failure is a miss. The caller
    owns type safety: one namespace, one value type. *)

val store_value : t -> ns:string -> string -> 'a -> unit
(** [Marshal] encode + [store]. Values must be closure-free pure data. *)

val drop_memory : t -> unit
(** Forget the resident tier (persistence-reload testing); disk entries
    and cumulative statistics survive. *)

val stats : t -> stats
