(* FNV-1a content hashing over canonical bytes.

   OCaml's native [int] is 63-bit, so the 64-bit FNV-1a state lives in
   [Int64] (multiplication wraps, exactly the modular arithmetic FNV
   wants). A single 64-bit lane is plenty for a content-addressed cache
   of at most millions of entries, but the digest doubles it anyway: two
   independent lanes with distinct offset bases, the second also folding
   in the input length, giving a 128-bit hex key whose accidental
   collision probability is negligible. Not cryptographic — cache keys
   are derived from trusted local data, never adversarial input. *)

let prime = 0x100000001B3L
let offset_basis = 0xCBF29CE484222325L

(* second-lane offset: the FNV basis avalanched once through a SplitMix64
   round so the two lanes start from unrelated states *)
let offset_basis2 = 0x9E3779B97F4A7C15L

let fnv1a64 ?(offset = offset_basis) s =
  let h = ref offset in
  String.iter
    (fun ch ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code ch))) prime)
    s;
  !h

let hex s =
  let a = fnv1a64 s in
  let b =
    Int64.mul
      (Int64.logxor
         (fnv1a64 ~offset:offset_basis2 s)
         (Int64.of_int (String.length s)))
      prime
  in
  Printf.sprintf "%016Lx%016Lx" a b

(* a non-negative native-int seed derived from a string — used to give
   cache-keyed computations (e.g. tomography degradation streams) a
   generator that is a pure function of their cache key *)
let seed_of_string s = Int64.to_int (fnv1a64 s) land max_int
