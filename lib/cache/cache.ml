(* Entry point of morphqpv.cache (dune main-module convention): the LRU
   store is the module itself; hashing and canonicalization ride along as
   submodules. *)

module Fnv = Fnv
module Canon = Canon
include Store
