(** Canonical circuit serialization for content-addressed cache keys.

    The cache invariant (QCheck-pinned in [test/test_cache.ml]): circuits
    with equal {!canonical_bytes} are the same program up to qubit/clbit
    relabeling and are therefore simulation-equivalent on every
    tracepoint's reduced state. *)

(** One tracepoint's characterization unit: the backward cone plus the
    program's input qubits, remapped into canonical first-use order. *)
type unit_circuit = {
  circuit : Circuit.t;
      (** cone instructions + closing tracepoint in canonical qubit order
          (the tracepoint keeps its original id for trace lookup) *)
  width : int;  (** unit register size, |cone qubits ∪ input qubits| *)
  embed : int array;
      (** [embed.(j)] is the unit-local qubit carrying input qubit [j]
          (in the order the caller listed input qubits) *)
  bytes : string;
      (** canonical serialization including width and embedding — the
          unit's cache identity *)
}

val canonical_bytes : Circuit.t -> string
(** Qubits/clbits renumbered to first-use order, parameters normalized
    (-0.0 folded to 0.0, shortest round-trippable decimal), barriers and
    tracepoint ids excluded, register sizes excluded. *)

val exact_bytes : Circuit.t -> string
(** Verbatim serialization: register sizes, barriers, tracepoint ids and
    global indices intact — for memo layers whose value depends on the
    concrete representation (segment plans, whole-program results). *)

val digest : string -> string
(** [digest bytes] is {!Fnv.hex}[ bytes]. *)

val cone_digest : Circuit.t -> Analysis.Lightcone.cone -> string
(** Content hash of the cone's restricted subcircuit in canonical form. *)

val cone_digests : Circuit.t -> (int * string) list
(** [(tracepoint id, cone digest)] per tracepoint, program order. *)

val cone_unit :
  Circuit.t -> input_qubits:int list -> Analysis.Lightcone.cone -> unit_circuit
(** Build the characterization unit for one cone. Simulating
    [unit.circuit] from an input state embedded via [unit.embed] is a
    pure function of [unit.bytes] — differently-labeled programs with
    equal unit bytes replay identical float operations. *)
