(** Hand-rolled FNV-1a hashing for content-addressed cache keys (no
    dependencies, not cryptographic). *)

val offset_basis : int64
(** The standard 64-bit FNV-1a offset basis. *)

val fnv1a64 : ?offset:int64 -> string -> int64
(** [fnv1a64 s] is the 64-bit FNV-1a hash of [s]. *)

val hex : string -> string
(** [hex s] is a 32-character hex digest: two independent FNV-1a lanes
    (the second with a distinct offset and length folding). *)

val seed_of_string : string -> int
(** [seed_of_string s] is a non-negative native-int seed derived from
    [s] — for generators that must be pure functions of a cache key. *)
