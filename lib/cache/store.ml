(* Byte-bounded LRU store with optional on-disk persistence.

   Keys are namespaced opaque byte strings (in practice FNV digests or
   digest-prefixed composites, possibly containing arbitrary bytes from
   marshaled key components); values are opaque payloads (typically
   [Marshal] output). The in-memory tier is a hashtable over an intrusive
   doubly-linked recency list; eviction walks the cold end until the byte
   budget holds, always keeping at least the most recent entry.

   Disk tier ([MORPHQPV_CACHE_DIR] or [create ~dir]): one file per entry,
   [dir/ns/<fnv-hex-of-key>], written atomically (temp + rename) with a
   versioned header carrying the exact key and payload lengths. Reads
   verify version and key; any mismatch, short read or parse failure is a
   miss — corrupt or stale files are never trusted. A memory miss that
   hits disk is promoted into memory and counted as a hit.

   Every operation holds one mutex, so a [t] can be shared across server
   requests; callers on the deterministic simulation paths keep cache
   operations in the coordinating thread so [cache_*_total] counters stay
   bit-identical across domain counts. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  stores : int;
  entries : int;
  bytes : int;
}

type node = {
  nkey : string; (* ns ^ "\x00" ^ key *)
  nns : string;
  mutable value : string;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  max_bytes : int;
  dir : string option;
  tbl : (string, node) Hashtbl.t;
  mutable head : node option; (* most recently used *)
  mutable tail : node option; (* least recently used *)
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable stores : int;
  lock : Mutex.t;
}

let entry_version = 1

(* fixed per-entry overhead charged against the byte budget (node +
   hashtable slot bookkeeping, approximate) *)
let overhead = 64

let create ?(max_bytes = 256 * 1024 * 1024) ?dir () =
  {
    max_bytes = max max_bytes 1;
    dir;
    tbl = Hashtbl.create 256;
    head = None;
    tail = None;
    bytes = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    stores = 0;
    lock = Mutex.create ();
  }

let of_env () =
  let mb =
    match Sys.getenv_opt "MORPHQPV_CACHE_MB" with
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n > 0 -> Some (n * 1024 * 1024)
        | _ -> None)
    | None -> None
  in
  match (Sys.getenv_opt "MORPHQPV_CACHE_DIR", Sys.getenv_opt "MORPHQPV_CACHE") with
  | Some dir, _ -> Some (create ?max_bytes:mb ~dir ())
  | None, Some ("1" | "true" | "on") -> Some (create ?max_bytes:mb ())
  | None, _ -> None

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* ------------------------- recency list ------------------------------ *)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let node_cost n = String.length n.nkey + String.length n.value + overhead

let evict_locked t =
  let continue = ref true in
  while t.bytes > t.max_bytes && !continue do
    match t.tail with
    | Some n when t.head != t.tail ->
        unlink t n;
        Hashtbl.remove t.tbl n.nkey;
        t.bytes <- t.bytes - node_cost n;
        t.evictions <- t.evictions + 1;
        Obs.Metrics.counter_add ~labels:[ ("ns", n.nns) ] "cache_evict_total" 1
    | _ -> continue := false
  done

let insert_locked t ~ns full value =
  (match Hashtbl.find_opt t.tbl full with
  | Some n ->
      t.bytes <- t.bytes - String.length n.value + String.length value;
      n.value <- value;
      unlink t n;
      push_front t n
  | None ->
      let n = { nkey = full; nns = ns; value; prev = None; next = None } in
      Hashtbl.add t.tbl full n;
      push_front t n;
      t.bytes <- t.bytes + node_cost n);
  evict_locked t

(* --------------------------- disk tier ------------------------------- *)

let rec mkdirs d =
  if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
    mkdirs (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let disk_path dir ns key = Filename.concat (Filename.concat dir ns) (Fnv.hex key)

let disk_write t ~ns key value =
  match t.dir with
  | None -> ()
  | Some dir -> (
      try
        mkdirs (Filename.concat dir ns);
        let path = disk_path dir ns key in
        let tmp =
          Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ()) (Hashtbl.hash key)
        in
        let oc = open_out_bin tmp in
        output_string oc
          (Printf.sprintf "morphqpv-cache %d %d %d\n" entry_version
             (String.length key) (String.length value));
        output_string oc key;
        output_string oc value;
        close_out oc;
        Sys.rename tmp path
      with Sys_error _ | Unix.Unix_error _ -> ())

let disk_read t ~ns key =
  match t.dir with
  | None -> None
  | Some dir -> (
      let path = disk_path dir ns key in
      match open_in_bin path with
      | exception Sys_error _ -> None
      | ic -> (
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              try
                match String.split_on_char ' ' (input_line ic) with
                | [ "morphqpv-cache"; v; klen; vlen ]
                  when int_of_string v = entry_version ->
                    let k = really_input_string ic (int_of_string klen) in
                    if String.equal k key then
                      Some (really_input_string ic (int_of_string vlen))
                    else None
                | _ -> None
              with End_of_file | Failure _ -> None)))

(* ------------------------------ api ---------------------------------- *)

let log_lookup outcome ~ns ~tier =
  if Obs.Log.enabled Obs.Log.Debug then
    Obs.Log.emit Obs.Log.Debug outcome
      [ ("ns", Obs.Log.S ns); ("tier", Obs.Log.S tier) ]

let find t ~ns key =
  let full = ns ^ "\x00" ^ key in
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl full with
      | Some n ->
          unlink t n;
          push_front t n;
          t.hits <- t.hits + 1;
          Obs.Metrics.counter_add ~labels:[ ("ns", ns) ] "cache_hit_total" 1;
          log_lookup "cache.hit" ~ns ~tier:"memory";
          Some n.value
      | None -> (
          match disk_read t ~ns key with
          | Some v ->
              insert_locked t ~ns full v;
              t.hits <- t.hits + 1;
              Obs.Metrics.counter_add ~labels:[ ("ns", ns) ] "cache_hit_total" 1;
              log_lookup "cache.hit" ~ns ~tier:"disk";
              Some v
          | None ->
              t.misses <- t.misses + 1;
              Obs.Metrics.counter_add ~labels:[ ("ns", ns) ] "cache_miss_total" 1;
              log_lookup "cache.miss" ~ns ~tier:"none";
              None))

let store t ~ns key value =
  let full = ns ^ "\x00" ^ key in
  with_lock t (fun () ->
      t.stores <- t.stores + 1;
      Obs.Metrics.counter_add ~labels:[ ("ns", ns) ] "cache_bytes_total"
        (String.length value);
      insert_locked t ~ns full value;
      disk_write t ~ns key value)

let find_value t ~ns key =
  match find t ~ns key with
  | None -> None
  | Some s -> ( try Some (Marshal.from_string s 0) with _ -> None)

let store_value t ~ns key v = store t ~ns key (Marshal.to_string v [])

let drop_memory t =
  with_lock t (fun () ->
      Hashtbl.reset t.tbl;
      t.head <- None;
      t.tail <- None;
      t.bytes <- 0)

let stats t =
  with_lock t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        stores = t.stores;
        entries = Hashtbl.length t.tbl;
        bytes = t.bytes;
      })
