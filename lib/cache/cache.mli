(** Content-addressed result cache for incremental verification.

    [Cache.t] (the store itself, see {!Store}) memoizes the expensive
    layers of the pipeline — segment block operators, per-tracepoint
    characterizations, tomography estimates and probe verdicts — keyed by
    {!Canon} content hashes so that re-verifying an edited program only
    re-runs tracepoints whose backward cone actually changed. *)

module Fnv : module type of Fnv
module Canon : module type of Canon

include module type of Store with type t = Store.t
