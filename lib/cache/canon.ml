(* Canonical serialization of circuits for content-addressed caching.

   Two forms:

   - [canonical_bytes]: qubits and clbits renumbered to first-use order,
     gate parameters normalized (-0.0 -> 0.0, shortest round-trippable
     decimal), barriers dropped, tracepoint ids dropped. Hash-equal
     canonical bytes mean the circuits are the *same program up to
     relabeling*, hence simulation-equivalent on every tracepoint's
     reduced state (the QCheck-pinned cache invariant). Register sizes
     are deliberately excluded: idle qubits and clbits cannot affect any
     reduced state.

   - [exact_bytes]: verbatim program order with register sizes, barrier
     and tracepoint ids intact — for memo layers whose value depends on
     the concrete representation (segment plans carry fences and global
     qubit indices; whole-result characterizations carry global traces).

   [cone_unit] builds the characterization unit for one tracepoint: the
   cone subcircuit plus the program's input qubits, remapped into
   canonical first-use order so that simulating the unit is literally a
   function of its canonical bytes — two differently-labeled programs
   with hash-equal cones replay the *same* float operations in the same
   order, making cached traces bit-identical across them. *)

type unit_circuit = {
  circuit : Circuit.t;
  width : int;
  embed : int array;
  bytes : string;
}

(* shortest decimal that round-trips a float, with -0.0 folded into 0.0
   so parameter sign-of-zero cannot split cache keys *)
let norm_float x =
  let x = if x = 0. then 0. else x in
  let s = Printf.sprintf "%.15g" x in
  if float_of_string s = x then s else Printf.sprintf "%.17g" x

let add_ints b ids =
  Buffer.add_char b '[';
  List.iteri
    (fun i q ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (string_of_int q))
    ids;
  Buffer.add_char b ']'

let add_gate b ~q (g : Circuit.Gate.t) =
  Buffer.add_char b 'G';
  Buffer.add_string b g.Circuit.Gate.name;
  (match g.Circuit.Gate.params with
  | [] -> ()
  | ps ->
      Buffer.add_char b '(';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (norm_float x))
        ps;
      Buffer.add_char b ')');
  add_ints b (List.map q g.Circuit.Gate.controls);
  add_ints b (List.map q g.Circuit.Gate.targets);
  Buffer.add_char b ';'

(* Shared serializer. In canonical mode [q]/[cl] assign first-use ids in
   serialization order (controls before targets, matching
   [Instr.qubits]); in exact mode they are the identity and the header
   carries the register sizes. *)
let serialize ~canonical c =
  let b = Buffer.create 256 in
  let fresh () =
    let map = Hashtbl.create 16 and next = ref 0 in
    fun g ->
      match Hashtbl.find_opt map g with
      | Some v -> v
      | None ->
          let v = !next in
          incr next;
          Hashtbl.add map g v;
          v
  in
  let q = if canonical then fresh () else Fun.id in
  let cl = if canonical then fresh () else Fun.id in
  if not canonical then
    Buffer.add_string b
      (Printf.sprintf "Q%d;C%d;" (Circuit.num_qubits c) (Circuit.num_clbits c));
  List.iter
    (fun instr ->
      match instr with
      | Circuit.Instr.Gate g -> add_gate b ~q g
      | Circuit.Instr.Tracepoint { id; qubits } ->
          Buffer.add_char b 'T';
          if not canonical then Buffer.add_string b (string_of_int id);
          add_ints b (List.map q qubits);
          Buffer.add_char b ';'
      | Circuit.Instr.Measure { qubit; clbit } ->
          Buffer.add_string b
            (Printf.sprintf "M%d>%d;" (q qubit) (cl clbit))
      | Circuit.Instr.Reset qubit ->
          Buffer.add_string b (Printf.sprintf "R%d;" (q qubit))
      | Circuit.Instr.If_gate { clbits; value; gate } ->
          Buffer.add_char b 'F';
          add_ints b (List.map cl clbits);
          Buffer.add_string b (Printf.sprintf "=%d:" value);
          add_gate b ~q gate
      | Circuit.Instr.Barrier qs ->
          if not canonical then begin
            Buffer.add_char b 'B';
            add_ints b qs;
            Buffer.add_char b ';'
          end)
    (Circuit.instrs c);
  Buffer.contents b

let canonical_bytes c = serialize ~canonical:true c
let exact_bytes c = serialize ~canonical:false c
let digest s = Fnv.hex s

let cone_digest c cone =
  let sub, _ = Analysis.Lightcone.restrict c cone in
  digest (canonical_bytes sub)

let cone_digests c =
  List.map
    (fun cone -> (cone.Analysis.Lightcone.id, cone_digest c cone))
    (Analysis.Lightcone.cones c)

let cone_unit c ~input_qubits (cone : Analysis.Lightcone.cone) =
  let instrs = Array.of_list (Circuit.instrs c) in
  (* first-use numbering over kept instructions, then the tracepoint's
     own qubits, then any input qubit not already used, in the caller's
     input order — never by original label, so a consistent relabeling
     of program and input list leaves the unit bytes unchanged *)
  let map = Hashtbl.create 16 and next = ref 0 in
  let assign g =
    if not (Hashtbl.mem map g) then begin
      Hashtbl.add map g !next;
      incr next
    end
  in
  Array.iteri
    (fun i instr ->
      if cone.Analysis.Lightcone.keep.(i) then
        List.iter assign (Circuit.Instr.qubits instr))
    instrs;
  let tp_qubits =
    match instrs.(cone.Analysis.Lightcone.position) with
    | Circuit.Instr.Tracepoint { qubits; _ } -> qubits
    | _ -> invalid_arg "Canon.cone_unit: position is not a tracepoint"
  in
  List.iter assign tp_qubits;
  List.iter assign input_qubits;
  let width = max !next 1 in
  let f g = Hashtbl.find map g in
  let sub = ref (Circuit.empty ~clbits:(Circuit.num_clbits c) width) in
  Array.iteri
    (fun i instr ->
      if cone.Analysis.Lightcone.keep.(i) then
        sub := Circuit.add (Circuit.Instr.remap f instr) !sub)
    instrs;
  sub :=
    Circuit.add
      (Circuit.Instr.Tracepoint
         { id = cone.Analysis.Lightcone.id; qubits = List.map f tp_qubits })
      !sub;
  let embed = Array.of_list (List.map f input_qubits) in
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "U%d;" width);
  Buffer.add_string b (canonical_bytes !sub);
  Buffer.add_char b 'E';
  add_ints b (Array.to_list embed);
  { circuit = !sub; width; embed; bytes = Buffer.contents b }
