(** A persistent pool of OCaml 5 domains for data-parallel fan-out.

    The pool owns [domains - 1] worker domains; the submitting thread is the
    remaining participant, so a pool of 1 runs everything inline with zero
    synchronization. Work is distributed by atomic chunk stealing over an
    index range.

    {b Determinism.} The pool never changes {e what} is computed, only
    {e where}: every index is processed exactly once and any reduction is the
    caller's responsibility. All call sites in this repository either write to
    disjoint slots ({!map_init}, the state-vector kernels) or merge results in
    index order after the fan-out, so results are bit-identical for any domain
    count — see the "Parallel execution" section of DESIGN.md.

    {b Reentrancy.} A pool runs one fan-out at a time. A [parallel_for]
    issued while the pool is busy (e.g. from inside a worker, or from a
    nested library layer) silently degrades to the sequential path, so
    nesting is safe and deadlock-free. *)

type t

(** [create ?domains ()] spawns a pool. [domains] defaults to the
    [MORPHQPV_DOMAINS] environment variable, or
    [Domain.recommended_domain_count ()] when unset; it is clamped to
    [1, 64]. *)
val create : ?domains:int -> unit -> t

(** [domains t] is the total parallelism (workers + caller). *)
val domains : t -> int

(** [shutdown t] joins the worker domains. The pool must be idle; using it
    afterwards raises. Shutting down twice is a no-op. *)
val shutdown : t -> unit

(** [parallel_for ?chunk t ~n f] runs [f i] exactly once for every
    [i] in [0, n). [chunk] (default 1) is the steal granularity — purely a
    scheduling knob, invisible to [f]. The first exception raised by any [f]
    is re-raised in the caller after all workers quiesce. *)
val parallel_for : ?chunk:int -> t -> n:int -> (int -> unit) -> unit

(** [parallel_for_chunks ?chunk t ~n f] is a lower-overhead variant for tight
    numeric kernels: [f lo hi] must process indices [lo, hi). Ranges
    partition [0, n) but their boundaries are unspecified — [f] must not
    attach meaning to them (the sequential fallback is a single [f 0 n]). *)
val parallel_for_chunks : ?chunk:int -> t -> n:int -> (int -> int -> unit) -> unit

(** [map_init t n f] is [Array.init n f] with the calls fanned out over the
    pool. Slot [i] holds [f i]; order of the result is the index order, so a
    subsequent in-order fold is deterministic for any domain count. *)
val map_init : t -> int -> (int -> 'a) -> 'a array

(** [global ()] is the process-wide shared pool, created lazily from
    [MORPHQPV_DOMAINS]. Used as the default by [Engine], [Characterize] and
    the state-vector kernels when no explicit [?pool] is given. *)
val global : unit -> t

(** [set_global_domains k] replaces the global pool with a [k]-domain one
    (shutting the previous one down). Intended for benchmarks and tests. *)
val set_global_domains : int -> unit

(** [env_domains ()] is the domain count [create] would pick by default. *)
val env_domains : unit -> int
