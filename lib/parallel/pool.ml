type job = {
  body : int -> int -> unit; (* process indices [lo, hi) *)
  next : int Atomic.t;
  total : int;
  chunk : int;
  error : exn option Atomic.t;
}

type t = {
  n_domains : int;
  mutable workers : unit Domain.t array;
  lock : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : job option;
  mutable generation : int;
  mutable active : int; (* workers still draining the current job *)
  mutable stopped : bool;
  busy : bool Atomic.t; (* one fan-out at a time; nested calls go sequential *)
}

let domains t = t.n_domains

let run_chunks job =
  let rec go () =
    if Atomic.get job.error = None then begin
      let lo = Atomic.fetch_and_add job.next job.chunk in
      if lo < job.total then begin
        (try job.body lo (min job.total (lo + job.chunk))
         with e -> ignore (Atomic.compare_and_set job.error None (Some e)));
        go ()
      end
    end
  in
  go ()

let worker_loop pool =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.lock;
    while (not pool.stopped) && pool.generation = !seen do
      Condition.wait pool.work_ready pool.lock
    done;
    if pool.stopped then begin
      Mutex.unlock pool.lock;
      running := false
    end
    else begin
      seen := pool.generation;
      let job = Option.get pool.job in
      Mutex.unlock pool.lock;
      run_chunks job;
      Mutex.lock pool.lock;
      pool.active <- pool.active - 1;
      if pool.active = 0 then Condition.broadcast pool.work_done;
      Mutex.unlock pool.lock
    end
  done

let env_domains () =
  match Sys.getenv_opt "MORPHQPV_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some k when k >= 1 -> k
      | _ -> 1)
  | None -> Domain.recommended_domain_count ()

let create ?domains () =
  let n =
    match domains with Some d -> max 1 d | None -> env_domains ()
  in
  let n = min n 64 in
  let pool =
    {
      n_domains = n;
      workers = [||];
      lock = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      job = None;
      generation = 0;
      active = 0;
      stopped = false;
      busy = Atomic.make false;
    }
  in
  pool.workers <-
    Array.init (n - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let shutdown pool =
  Mutex.lock pool.lock;
  let already = pool.stopped in
  pool.stopped <- true;
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.lock;
  if not already then Array.iter Domain.join pool.workers

let submit pool ~n ~chunk body =
  let job =
    {
      body;
      next = Atomic.make 0;
      total = n;
      chunk;
      error = Atomic.make None;
    }
  in
  Mutex.lock pool.lock;
  if pool.stopped then begin
    Mutex.unlock pool.lock;
    invalid_arg "Pool: used after shutdown"
  end;
  pool.job <- Some job;
  pool.generation <- pool.generation + 1;
  pool.active <- Array.length pool.workers;
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.lock;
  run_chunks job;
  Mutex.lock pool.lock;
  while pool.active > 0 do
    Condition.wait pool.work_done pool.lock
  done;
  pool.job <- None;
  Mutex.unlock pool.lock;
  match Atomic.get job.error with Some e -> raise e | None -> ()

let parallel_for_chunks ?(chunk = 1) pool ~n body =
  if n > 0 then begin
    let chunk = max 1 chunk in
    if
      pool.n_domains <= 1 || n <= chunk
      || not (Atomic.compare_and_set pool.busy false true)
    then body 0 n
    else
      Fun.protect
        ~finally:(fun () -> Atomic.set pool.busy false)
        (fun () -> submit pool ~n ~chunk body)
  end

let parallel_for ?(chunk = 1) pool ~n f =
  parallel_for_chunks ~chunk pool ~n (fun lo hi ->
      for i = lo to hi - 1 do
        f i
      done)

let map_init pool n f =
  if n <= 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for pool ~n (fun i -> out.(i) <- Some (f i));
    Array.map (function Some v -> v | None -> assert false) out
  end

(* ------------------------- global pool ------------------------------- *)

let global_lock = Mutex.create ()
let global_pool = ref None

let global () =
  Mutex.lock global_lock;
  let p =
    match !global_pool with
    | Some p -> p
    | None ->
        let p = create () in
        global_pool := Some p;
        p
  in
  Mutex.unlock global_lock;
  p

let set_global_domains k =
  Mutex.lock global_lock;
  let old = !global_pool in
  global_pool := Some (create ~domains:k ());
  Mutex.unlock global_lock;
  match old with Some p -> shutdown p | None -> ()
