(* Sparse statevector engine: sorted-coordinate (index, amplitude) runs.

   The state is kept as three parallel arrays (idx, re, im) sorted by
   basis index with unique entries; amplitudes with |a|^2 <= cutoff are
   pruned eagerly, so [size] is the occupied support. Gate kernels touch
   only occupied pairs:
   - diagonal gates (z/s/t/rz/p/...) rotate phases in place — the index
     set, and hence the sort order, is unchanged;
   - x/y/swap and general 1q gates pair each occupied index with its
     partner (found by binary search), emit the new amplitudes into a
     scratch buffer and re-sort once per gate;
   - controls gate the kernel per entry (an entry with unsatisfied
     controls passes through).

   Memory and time scale with the occupied support, not 2^n, so
   low-occupancy programs (Bernstein-Vazirani, QRAM reads, lock
   circuits) run at 28+ qubits where the dense engine cannot even
   allocate. Indices are OCaml ints: up to 62 qubits.

   [run] carries the densify escape hatch: if the live support grows
   past the expected bound on a register small enough for the dense
   representation, it switches to [Qstate.Statevec] mid-run rather than
   paying the sparse overhead on a dense state. *)

open Linalg

type t = {
  n : int;
  mutable size : int;
  mutable idx : int array;
  mutable re : float array;
  mutable im : float array;
}

let cutoff = 1e-12
let max_qubits = 62

let basis n k =
  if n <= 0 || n > max_qubits then
    invalid_arg "Sparse.basis: unsupported qubit count";
  if k < 0 || (n < max_qubits && k lsr n <> 0) then
    invalid_arg "Sparse.basis: index out of range";
  { n; size = 1; idx = [| k |]; re = [| 1. |]; im = [| 0. |] }

let num_qubits t = t.n
let support t = t.size

let copy t =
  {
    t with
    idx = Array.sub t.idx 0 t.size;
    re = Array.sub t.re 0 t.size;
    im = Array.sub t.im 0 t.size;
  }

(* position of basis index [k] among the occupied entries, or -1 *)
let find t k =
  let lo = ref 0 and hi = ref (t.size - 1) in
  let res = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let v = t.idx.(mid) in
    if v = k then begin
      res := mid;
      lo := !hi + 1
    end
    else if v < k then lo := mid + 1
    else hi := mid - 1
  done;
  !res

let amplitude t k =
  let p = find t k in
  if p < 0 then Cx.zero else Cx.make t.re.(p) t.im.(p)

let entries t =
  List.init t.size (fun p -> (t.idx.(p), Cx.make t.re.(p) t.im.(p)))

let norm t =
  let s = ref 0. in
  for p = 0 to t.size - 1 do
    s := !s +. (t.re.(p) *. t.re.(p)) +. (t.im.(p) *. t.im.(p))
  done;
  sqrt !s

let to_statevec t =
  let st = Qstate.Statevec.zero t.n in
  Qstate.Statevec.set_amplitude st 0 Cx.zero;
  for p = 0 to t.size - 1 do
    Qstate.Statevec.set_amplitude st t.idx.(p) (Cx.make t.re.(p) t.im.(p))
  done;
  st

let of_statevec st =
  let n = Qstate.Statevec.num_qubits st in
  let d = Qstate.Statevec.dim st in
  let size = ref 0 in
  for k = 0 to d - 1 do
    if Cx.norm2 (Qstate.Statevec.amplitude st k) > cutoff then incr size
  done;
  let t =
    {
      n;
      size = 0;
      idx = Array.make (max !size 1) 0;
      re = Array.make (max !size 1) 0.;
      im = Array.make (max !size 1) 0.;
    }
  in
  for k = 0 to d - 1 do
    let a = Qstate.Statevec.amplitude st k in
    if Cx.norm2 a > cutoff then begin
      t.idx.(t.size) <- k;
      t.re.(t.size) <- Cx.re a;
      t.im.(t.size) <- Cx.im a;
      t.size <- t.size + 1
    end
  done;
  t

(* scratch output buffer: entries are emitted pair-by-pair (unsorted),
   pruned at the cutoff, then sorted back into coordinate order *)
type buf = {
  mutable bsize : int;
  mutable bidx : int array;
  mutable bre : float array;
  mutable bim : float array;
}

let buf_make cap =
  let cap = max cap 4 in
  { bsize = 0; bidx = Array.make cap 0; bre = Array.make cap 0.; bim = Array.make cap 0. }

let buf_push b k r i =
  if (r *. r) +. (i *. i) > cutoff then begin
    if b.bsize = Array.length b.bidx then begin
      let cap = 2 * b.bsize in
      let idx = Array.make cap 0 and re = Array.make cap 0. and im = Array.make cap 0. in
      Array.blit b.bidx 0 idx 0 b.bsize;
      Array.blit b.bre 0 re 0 b.bsize;
      Array.blit b.bim 0 im 0 b.bsize;
      b.bidx <- idx;
      b.bre <- re;
      b.bim <- im
    end;
    b.bidx.(b.bsize) <- k;
    b.bre.(b.bsize) <- r;
    b.bim.(b.bsize) <- i;
    b.bsize <- b.bsize + 1
  end

(* install the (unique-index) buffer contents as the new state, sorted *)
let buf_commit b t =
  let m = b.bsize in
  let order = Array.init m Fun.id in
  Array.sort (fun a c -> compare b.bidx.(a) b.bidx.(c)) order;
  if Array.length t.idx < m then begin
    t.idx <- Array.make m 0;
    t.re <- Array.make m 0.;
    t.im <- Array.make m 0.
  end;
  for p = 0 to m - 1 do
    let s = order.(p) in
    t.idx.(p) <- b.bidx.(s);
    t.re.(p) <- b.bre.(s);
    t.im.(p) <- b.bim.(s)
  done;
  t.size <- m

let control_mask controls = List.fold_left (fun m c -> m lor (1 lsl c)) 0 controls

let check_q t q =
  if q < 0 || q >= t.n then invalid_arg "Sparse: qubit out of range"

(* diagonal gate: multiply each gated entry by u00 or u11 in place; the
   index set is untouched so no re-sort (or prune: |d| = 1) is needed *)
let apply_diagonal ~controls u q t =
  check_q t q;
  let cmask = control_mask controls in
  let d0r = Cmat.get u 0 0 |> Cx.re and d0i = Cmat.get u 0 0 |> Cx.im in
  let d1r = Cmat.get u 1 1 |> Cx.re and d1i = Cmat.get u 1 1 |> Cx.im in
  let bit = 1 lsl q in
  for p = 0 to t.size - 1 do
    let k = t.idx.(p) in
    if k land cmask = cmask then begin
      let dr, di = if k land bit = 0 then (d0r, d0i) else (d1r, d1i) in
      let ar = t.re.(p) and ai = t.im.(p) in
      t.re.(p) <- (dr *. ar) -. (di *. ai);
      t.im.(p) <- (dr *. ai) +. (di *. ar)
    end
  done

(* general (controlled) 1q gate: each gated entry is paired with its
   partner at index^bit; the pair is processed once, with explicit
   zeros for an unoccupied partner *)
let apply1 ~controls u q t =
  check_q t q;
  List.iter
    (fun c ->
      if c < 0 || c >= t.n || c = q then invalid_arg "Sparse.apply1: bad control")
    controls;
  let cmask = control_mask controls in
  let u00r = Cmat.get u 0 0 |> Cx.re and u00i = Cmat.get u 0 0 |> Cx.im in
  let u01r = Cmat.get u 0 1 |> Cx.re and u01i = Cmat.get u 0 1 |> Cx.im in
  let u10r = Cmat.get u 1 0 |> Cx.re and u10i = Cmat.get u 1 0 |> Cx.im in
  let u11r = Cmat.get u 1 1 |> Cx.re and u11i = Cmat.get u 1 1 |> Cx.im in
  let bit = 1 lsl q in
  let out = buf_make ((2 * t.size) + 4) in
  let consumed = Array.make (max t.size 1) false in
  for p = 0 to t.size - 1 do
    if not consumed.(p) then begin
      let k = t.idx.(p) in
      if k land cmask <> cmask then buf_push out k t.re.(p) t.im.(p)
      else begin
        let i = k land lnot bit in
        let j = i lor bit in
        let ar, ai, br, bi =
          if k land bit = 0 then begin
            (* partner j > k, if occupied it lies ahead of p *)
            let pj = find t j in
            if pj >= 0 then begin
              consumed.(pj) <- true;
              (t.re.(p), t.im.(p), t.re.(pj), t.im.(pj))
            end
            else (t.re.(p), t.im.(p), 0., 0.)
          end
          else
            (* partner i < k would already have consumed us *)
            (0., 0., t.re.(p), t.im.(p))
        in
        buf_push out i
          ((u00r *. ar) -. (u00i *. ai) +. (u01r *. br) -. (u01i *. bi))
          ((u00r *. ai) +. (u00i *. ar) +. (u01r *. bi) +. (u01i *. br));
        buf_push out j
          ((u10r *. ar) -. (u10i *. ai) +. (u11r *. br) -. (u11i *. bi))
          ((u10r *. ai) +. (u10i *. ar) +. (u11r *. bi) +. (u11i *. br))
      end
    end
  done;
  buf_commit out t

let apply_swap a b t =
  check_q t a;
  check_q t b;
  if a = b then invalid_arg "Sparse.apply_swap: identical qubits";
  let ba = 1 lsl a and bb = 1 lsl b in
  let out = buf_make t.size in
  for p = 0 to t.size - 1 do
    let k = t.idx.(p) in
    let va = (k lsr a) land 1 and vb = (k lsr b) land 1 in
    let k' = k land lnot ba land lnot bb lor (vb lsl a) lor (va lsl b) in
    buf_push out k' t.re.(p) t.im.(p)
  done;
  buf_commit out t

let apply_gate (g : Circuit.Gate.t) t =
  if Obs.enabled () then
    Obs.Metrics.counter_add
      ~labels:[ ("kind", g.Circuit.Gate.name) ]
      "sparse_gates_total" 1;
  match (g.Circuit.Gate.name, g.Circuit.Gate.targets) with
  | "swap", [ a; b ] ->
      if g.Circuit.Gate.controls <> [] then
        invalid_arg "Sparse: controlled swap unsupported";
      apply_swap a b t
  | name, [ tgt ] ->
      let u = Qstate.Gates.by_name name g.Circuit.Gate.params in
      if Analysis.Classify.gate_is_diagonal g then
        apply_diagonal ~controls:g.Circuit.Gate.controls u tgt t
      else apply1 ~controls:g.Circuit.Gate.controls u tgt t
  | _ -> invalid_arg "Sparse: malformed gate"

(* ----------------------- measurement & sampling ----------------------- *)

(* entries are index-sorted, so summing occupied amplitudes in storage
   order reproduces the dense engine's ascending-index accumulation
   (skipped entries contribute exact zeros there) *)
let prob1 t q =
  check_q t q;
  let bit = 1 lsl q in
  let p = ref 0. in
  for i = 0 to t.size - 1 do
    if t.idx.(i) land bit <> 0 then
      p := !p +. (t.re.(i) *. t.re.(i)) +. (t.im.(i) *. t.im.(i))
  done;
  !p

let project t q outcome =
  if outcome <> 0 && outcome <> 1 then
    invalid_arg "Sparse.project: outcome must be 0 or 1";
  let bit = 1 lsl q in
  let p = if outcome = 1 then prob1 t q else 1. -. prob1 t q in
  if p <= 1e-15 then 0.
  else begin
    let f = 1. /. sqrt p in
    let w = ref 0 in
    for i = 0 to t.size - 1 do
      let k = t.idx.(i) in
      let keep = if outcome = 1 then k land bit <> 0 else k land bit = 0 in
      if keep then begin
        t.idx.(!w) <- k;
        t.re.(!w) <- f *. t.re.(i);
        t.im.(!w) <- f *. t.im.(i);
        incr w
      end
    done;
    t.size <- !w;
    p
  end

(* same draw-then-compare convention as [Statevec.measure], so a
   trajectory consumes the generator stream identically *)
let measure rng t q =
  let p1 = prob1 t q in
  let outcome = if Stats.Rng.float rng 1. < p1 then 1 else 0 in
  ignore (project t q outcome);
  outcome

let sample rng t =
  let r = ref (Stats.Rng.float rng 1.) in
  let result = ref (if t.size > 0 then t.idx.(t.size - 1) else 0) in
  (try
     for i = 0 to t.size - 1 do
       let p = (t.re.(i) *. t.re.(i)) +. (t.im.(i) *. t.im.(i)) in
       r := !r -. p;
       if !r < 0. then begin
         result := t.idx.(i);
         raise Exit
       end
     done
   with Exit -> ());
  !result

(* ------------------------- reduced densities -------------------------- *)

(* rho[a,b] = sum over environment keys e of psi_{a,e} conj(psi_{b,e}):
   sort the occupied entries by (environment bits, kept sub-index) and
   accumulate one outer product per contiguous environment group. Cost
   is sum of group sizes squared — at most support^2, independent of n.
   Bit j of the reduced index corresponds to keep[j], matching
   [Statevec.reduced_density]. *)
let reduced_density t keep =
  List.iter
    (fun q ->
      if q < 0 || q >= t.n then
        invalid_arg "Sparse.reduced_density: qubit out of range")
    keep;
  let keep_arr = Array.of_list keep in
  let nk = Array.length keep_arr in
  let dk = 1 lsl nk in
  let keep_mask = Array.fold_left (fun m q -> m lor (1 lsl q)) 0 keep_arr in
  let m = t.size in
  let env = Array.make (max m 1) 0 and red = Array.make (max m 1) 0 in
  for p = 0 to m - 1 do
    let k = t.idx.(p) in
    env.(p) <- k land lnot keep_mask;
    let a = ref 0 in
    Array.iteri
      (fun j q -> if (k lsr q) land 1 = 1 then a := !a lor (1 lsl j))
      keep_arr;
    red.(p) <- !a
  done;
  let order = Array.init m Fun.id in
  Array.sort
    (fun a b ->
      if env.(a) <> env.(b) then compare env.(a) env.(b)
      else compare red.(a) red.(b))
    order;
  let rho = Cmat.create dk dk in
  let rre = rho.Cmat.re and rim = rho.Cmat.im in
  let i = ref 0 in
  while !i < m do
    let e = env.(order.(!i)) in
    let j = ref !i in
    while !j < m && env.(order.(!j)) = e do
      incr j
    done;
    for a = !i to !j - 1 do
      let pa = order.(a) in
      let ar = t.re.(pa) and ai = t.im.(pa) in
      let base = red.(pa) * dk in
      for b = !i to !j - 1 do
        let pb = order.(b) in
        let br = t.re.(pb) and bi = t.im.(pb) in
        (* psi_a * conj(psi_b) *)
        rre.(base + red.(pb)) <- rre.(base + red.(pb)) +. (ar *. br) +. (ai *. bi);
        rim.(base + red.(pb)) <- rim.(base + red.(pb)) +. (ai *. br) -. (ar *. bi)
      done
    done;
    i := !j
  done;
  rho

(* ------------------------------- runs --------------------------------- *)

type final = Sparse_state of t | Dense_state of Qstate.Statevec.t

type result = {
  final : final;
  clbits : int array;
  traces : (int * Cmat.t) list;
  peak_support : int;
}

(* minimal dense gate applier for the densify escape hatch ([Engine]
   sits above this module, so its applier cannot be reused here) *)
let dense_swap_matrix =
  Cmat.init 4 4 (fun i j ->
      let swapped = ((j land 1) lsl 1) lor ((j lsr 1) land 1) in
      if i = swapped then Cx.one else Cx.zero)

let dense_apply_gate (g : Circuit.Gate.t) st =
  match (g.Circuit.Gate.name, g.Circuit.Gate.targets) with
  | "swap", [ a; b ] ->
      if g.Circuit.Gate.controls <> [] then
        invalid_arg "Sparse: controlled swap unsupported";
      Qstate.Statevec.apply2 dense_swap_matrix a b st
  | name, [ tgt ] ->
      let u = Qstate.Gates.by_name name g.Circuit.Gate.params in
      Qstate.Statevec.apply_controlled ~controls:g.Circuit.Gate.controls u tgt st
  | _ -> invalid_arg "Sparse: malformed gate"

let default_densify_limit = 1 lsl 16

let run ?rng ?(input = 0) ?(densify_limit = default_densify_limit) c =
  let rng = match rng with Some r -> r | None -> Stats.Rng.make 0xC0FFEE in
  let n = Circuit.num_qubits c in
  let state = ref (Sparse_state (basis n input)) in
  let clbits = Array.make (Circuit.num_clbits c) 0 in
  let traces = ref [] in
  let peak = ref 1 in
  (* densify once the support crosses both the caller's limit and a
     quarter of the dense dimension — past that point the dense kernels
     are cheaper and the register is small enough to allocate *)
  let densify_at =
    if n <= 26 then min densify_limit (max 1 ((1 lsl n) / 4)) else max_int
  in
  let maybe_densify () =
    match !state with
    | Sparse_state t when t.size > densify_at ->
        if Obs.enabled () then Obs.Metrics.counter_add "sparse_densified_total" 1;
        state := Dense_state (to_statevec t)
    | _ -> ()
  in
  List.iter
    (fun instr ->
      match instr with
      | Circuit.Instr.Gate g ->
          (match !state with
          | Sparse_state t ->
              apply_gate g t;
              peak := max !peak t.size
          | Dense_state st -> dense_apply_gate g st);
          maybe_densify ()
      | Circuit.Instr.Tracepoint { id; qubits } ->
          let rho =
            match !state with
            | Sparse_state t -> reduced_density t qubits
            | Dense_state st -> Qstate.Statevec.reduced_density st qubits
          in
          traces := (id, rho) :: !traces
      | Circuit.Instr.Measure { qubit; clbit } ->
          let outcome =
            match !state with
            | Sparse_state t -> measure rng t qubit
            | Dense_state st -> Qstate.Statevec.measure rng st qubit
          in
          clbits.(clbit) <- outcome
      | Circuit.Instr.Reset q -> (
          match !state with
          | Sparse_state t ->
              if measure rng t q = 1 then
                apply_gate (Circuit.Gate.make "x" [ q ]) t
          | Dense_state st ->
              if Qstate.Statevec.measure rng st q = 1 then
                Qstate.Statevec.apply1 Qstate.Gates.x q st)
      | Circuit.Instr.If_gate { clbits = cbs; value; gate } ->
          let read =
            List.fold_left
              (fun (acc, k) b -> (acc lor (clbits.(b) lsl k), k + 1))
              (0, 0) cbs
            |> fst
          in
          if read = value then begin
            (match !state with
            | Sparse_state t ->
                apply_gate gate t;
                peak := max !peak t.size
            | Dense_state st -> dense_apply_gate gate st);
            maybe_densify ()
          end
      | Circuit.Instr.Barrier _ -> ())
    (Circuit.instrs c);
  if Obs.enabled () then
    Obs.Metrics.counter_add "sparse_amps_peak_total" !peak;
  { final = !state; clbits; traces = List.rev !traces; peak_support = !peak }
