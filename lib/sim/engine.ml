open Qstate

type outcome = {
  state : Statevec.t;
  clbits : int array;
  traces : (int * Linalg.Cmat.t) list;
}

let swap_matrix =
  Linalg.Cmat.init 4 4 (fun i j ->
      let swapped = ((j land 1) lsl 1) lor ((j lsr 1) land 1) in
      if i = swapped then Linalg.Cx.one else Linalg.Cx.zero)

let inject_noise rng noise (g : Circuit.Gate.t) st =
  let qs = Circuit.Gate.qubits g in
  let p = if List.length qs >= 2 then noise.Noise.p2 else noise.Noise.p1 in
  if p > 0. then
    List.iter
      (fun q ->
        match Noise.sample_pauli rng p with
        | None -> ()
        | Some op -> Statevec.apply1 (Pauli.matrix1 op) q st)
      qs

let apply_gate_ideal (g : Circuit.Gate.t) st =
  if Obs.enabled () then
    Obs.Metrics.counter_add
      ~labels:[ ("kind", g.Circuit.Gate.name) ]
      "gate_applied_total" 1;
  match (g.Circuit.Gate.name, g.Circuit.Gate.targets) with
  | "swap", [ a; b ] ->
      if g.Circuit.Gate.controls <> [] then
        invalid_arg "Engine: controlled swap unsupported";
      Statevec.apply2 swap_matrix a b st
  | name, [ tgt ] ->
      let u = Gates.by_name name g.Circuit.Gate.params in
      Statevec.apply_controlled ~controls:g.Circuit.Gate.controls u tgt st
  | _ -> invalid_arg "Engine: malformed gate"

let apply_gate ?rng ?noise g st =
  apply_gate_ideal g st;
  match (rng, noise) with
  | Some rng, Some noise when not (Noise.is_ideal noise) ->
      inject_noise rng noise g st
  | _ -> ()

(* A fresh generator per call, NOT one shared global: a single mutable
   generator shared across every no-[?rng] call would make results depend
   on call history and would race when callers fan out over
   [Parallel.Pool] domains. Each call without [?rng] therefore starts from
   the same fixed seed — deterministic, and callers that want independent
   streams pass their own generator (usually a [Stats.Rng.split] child). *)
let default_rng () = Stats.Rng.make 0xC0FFEE

let run ?rng ?(noise = Noise.ideal) ?initial ?meter c =
  let rng = match rng with Some r -> r | None -> default_rng () in
  let st =
    match initial with
    | Some s ->
        if Statevec.num_qubits s <> Circuit.num_qubits c then
          invalid_arg "Engine.run: initial state qubit mismatch";
        Statevec.copy s
    | None -> Statevec.zero (Circuit.num_qubits c)
  in
  let clbits = Array.make (Circuit.num_clbits c) 0 in
  let traces = ref [] in
  (match meter with
  | Some m -> Cost.record_circuit m c ~shots:1
  | None -> ());
  List.iter
    (fun instr ->
      match instr with
      | Circuit.Instr.Gate g -> apply_gate ~rng ~noise g st
      | Circuit.Instr.Tracepoint { id; qubits } ->
          traces := (id, Statevec.reduced_density st qubits) :: !traces
      | Circuit.Instr.Measure { qubit; clbit } ->
          let outcome = Statevec.measure rng st qubit in
          let outcome =
            if noise.Noise.readout > 0. && Stats.Rng.float rng 1. < noise.Noise.readout
            then 1 - outcome
            else outcome
          in
          clbits.(clbit) <- outcome
      | Circuit.Instr.Reset q ->
          let outcome = Statevec.measure rng st q in
          if outcome = 1 then Statevec.apply1 Gates.x q st
      | Circuit.Instr.If_gate { clbits = cbs; value; gate } ->
          let read =
            List.fold_left
              (fun (acc, k) b -> (acc lor (clbits.(b) lsl k), k + 1))
              (0, 0) cbs
            |> fst
          in
          if read = value then apply_gate ~rng ~noise gate st
      | Circuit.Instr.Barrier _ -> ())
    (Circuit.instrs c);
  { state = st; clbits; traces = List.rev !traces }

let is_deterministic c =
  List.for_all
    (function
      | Circuit.Instr.Measure _ | Circuit.Instr.Reset _ | Circuit.Instr.If_gate _
        ->
          false
      | _ -> true)
    (Circuit.instrs c)

let get_pool = function
  | Some p -> p
  | None -> Parallel.Pool.global ()

(* Fan [count] independent jobs over the pool, each with its own split child
   generator and (when metered) its own private cost meter, then merge the
   meters in index order. Child generators are derived sequentially before
   the fan-out and the merge order is fixed, so results are bit-identical
   for any domain count. *)
let fan_out pool rng ~meter ~count job =
  let rngs = Array.init count (Stats.Rng.split rng) in
  let metered = meter <> None in
  let results =
    Parallel.Pool.map_init pool count (fun i ->
        let m = if metered then Some (Cost.create ()) else None in
        (job rngs.(i) m, m))
  in
  (match meter with
  | Some m ->
      Array.iter
        (fun (_, mi) -> match mi with Some mi -> Cost.add m mi | None -> ())
        results
  | None -> ());
  Array.map fst results

(* ------------------- stabilizer tracepoint evaluation ----------------- *)

(* cap on lightcone width: [Tableau.density] materializes a [2^k x 2^k]
   matrix per tracepoint, so only small cones are worth routing *)
let stabilizer_cone_cap = 12

(* [stabilizer_applicable c] — every tracepoint state of [c] is computable
   on the tableau from a computational-basis start: no measurement/reset/
   feedback, every gate in [Tableau.apply_gate]'s dispatch, and every
   tracepoint's lightcone within [cap] qubits. Purely static, so routing
   decisions never depend on runtime values. *)
let stabilizer_applicable ?(cap = stabilizer_cone_cap) c =
  is_deterministic c
  && Analysis.Classify.circuit c = Analysis.Classify.Clifford
  && List.for_all
       (fun cone ->
         List.length cone.Analysis.Lightcone.qubits <= cap)
       (Analysis.Lightcone.cones c)

(* [stabilizer_traces ?prep c] computes every tracepoint's reduced density
   matrix on the stabilizer tableau, one lightcone-restricted run per
   tracepoint: O(cone^2) per gate plus a [2^cone] density materialization,
   independent of the full register width. [prep] is a computational-basis
   index (bit q of [prep] = X on qubit q) — a basis start is a product
   state, so restricting to the cone is sound. Only valid when
   [stabilizer_applicable c]. *)
let stabilizer_traces ?(prep = 0) ?meter c =
  Obs.Span.with_ ~name:"engine.stabilizer_traces" @@ fun () ->
  (match meter with
  | Some m -> Cost.record_circuit m c ~shots:1
  | None -> ());
  if Obs.enabled () then
    Obs.Metrics.counter_add "stabilizer_routed_total"
      (List.length (Analysis.Lightcone.cones c));
  List.map
    (fun cone ->
      let sub, qubits = Analysis.Lightcone.restrict c cone in
      let t = Stabilizer.Tableau.make (Circuit.num_qubits sub) in
      List.iteri
        (fun local global ->
          if (prep lsr global) land 1 = 1 then Stabilizer.Tableau.x t local)
        qubits;
      let tp_qubits = ref [] in
      List.iter
        (function
          | Circuit.Instr.Gate g -> Stabilizer.Tableau.apply_gate g t
          | Circuit.Instr.Tracepoint { qubits; _ } -> tp_qubits := qubits
          | Circuit.Instr.Barrier _ -> ()
          | _ -> invalid_arg "Engine.stabilizer_traces: non-Clifford program")
        (Circuit.instrs sub);
      let rho =
        Qstate.Density.of_cmat (Circuit.num_qubits sub)
          (Stabilizer.Tableau.density t)
      in
      let reduced = Qstate.Density.partial_trace ~keep:!tp_qubits rho in
      (cone.Analysis.Lightcone.id, Qstate.Density.mat reduced))
    (Analysis.Lightcone.cones c)

let tracepoint_states ?pool ?rng ?(noise = Noise.ideal) ?(trajectories = 64)
    ?initial ?(engine = `Auto) ?meter c =
  let use_stabilizer =
    match engine with
    | `Statevec -> false
    | `Stabilizer ->
        if not (initial = None && Noise.is_ideal noise && stabilizer_applicable c)
        then invalid_arg "Engine.tracepoint_states: stabilizer engine inapplicable";
        true
    | `Auto -> initial = None && Noise.is_ideal noise && stabilizer_applicable c
  in
  Obs.Span.with_ ~name:"engine.tracepoint_states"
    ~attrs:[ ("engine", if use_stabilizer then "stabilizer" else "statevec") ]
  @@ fun () ->
  if use_stabilizer then stabilizer_traces ?meter c
  else if is_deterministic c && Noise.is_ideal noise then
    (run ?rng ~noise ?initial ?meter c).traces
  else begin
    let rng = match rng with Some r -> r | None -> default_rng () in
    let per_traj =
      fan_out (get_pool pool) rng ~meter ~count:trajectories
        (fun rng m -> (run ~rng ~noise ?initial ?meter:m c).traces)
    in
    (* commutative trace merge, in trajectory order *)
    let acc = Hashtbl.create 8 in
    let order = ref [] in
    Array.iter
      (fun traces ->
        List.iter
          (fun (id, m) ->
            match Hashtbl.find_opt acc id with
            | None ->
                order := id :: !order;
                Hashtbl.add acc id m
            | Some prev -> Hashtbl.replace acc id (Linalg.Cmat.add prev m))
          traces)
      per_traj;
    List.rev_map
      (fun id ->
        ( id,
          Linalg.Cmat.rscale (1. /. float_of_int trajectories) (Hashtbl.find acc id)
        ))
      !order
  end

let sample_counts ?pool ?rng ?(noise = Noise.ideal) ?initial ?meter ~shots c =
  Obs.Span.with_ ~name:"engine.sample_counts" @@ fun () ->
  if Obs.enabled () then Obs.Metrics.counter_add "sample_shots_total" shots;
  let rng = match rng with Some r -> r | None -> default_rng () in
  let pool = get_pool pool in
  let tbl = Hashtbl.create 64 in
  let bump k n =
    Hashtbl.replace tbl k (n + Option.value ~default:0 (Hashtbl.find_opt tbl k))
  in
  if is_deterministic c && Noise.is_ideal noise then begin
    let { state; _ } = run ~rng ~noise ?initial c in
    (match meter with
    | Some m -> Cost.record_circuit m c ~shots
    | None -> ());
    List.iter (fun (k, n) -> bump k n) (Statevec.counts ~pool rng state ~shots)
  end
  else begin
    let sampled =
      fan_out pool rng ~meter ~count:shots (fun rng m ->
          let { state; _ } = run ~rng ~noise ?initial ?meter:m c in
          Statevec.sample rng state)
    in
    Array.iter (fun k -> bump k 1) sampled
  end;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let unitary ?pool c =
  let n = Circuit.num_qubits c in
  let d = 1 lsl n in
  let u = Linalg.Cmat.create d d in
  let column k =
    let st = Statevec.basis n k in
    List.iter
      (fun instr ->
        match instr with
        | Circuit.Instr.Gate g -> apply_gate_ideal g st
        | Circuit.Instr.Tracepoint _ | Circuit.Instr.Barrier _ -> ()
        | _ -> invalid_arg "Engine.unitary: non-unitary instruction")
      (Circuit.instrs c);
    Linalg.Cmat.set_col u k (Statevec.to_cvec st)
  in
  (* columns are independent and write disjoint slices of [u]; small
     matrices stay sequential to skip the fan-out handshake *)
  if d >= 256 then Parallel.Pool.parallel_for (get_pool pool) ~n:d column
  else
    for k = 0 to d - 1 do
      column k
    done;
  u
