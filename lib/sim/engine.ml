open Qstate

type outcome = {
  state : Statevec.t;
  clbits : int array;
  traces : (int * Linalg.Cmat.t) list;
}

let swap_matrix =
  Linalg.Cmat.init 4 4 (fun i j ->
      let swapped = ((j land 1) lsl 1) lor ((j lsr 1) land 1) in
      if i = swapped then Linalg.Cx.one else Linalg.Cx.zero)

let inject_noise rng noise (g : Circuit.Gate.t) st =
  let qs = Circuit.Gate.qubits g in
  let p = if List.length qs >= 2 then noise.Noise.p2 else noise.Noise.p1 in
  if p > 0. then
    List.iter
      (fun q ->
        match Noise.sample_pauli rng p with
        | None -> ()
        | Some op -> Statevec.apply1 (Pauli.matrix1 op) q st)
      qs

let apply_gate_ideal (g : Circuit.Gate.t) st =
  if Obs.enabled () then
    Obs.Metrics.counter_add
      ~labels:[ ("kind", g.Circuit.Gate.name) ]
      "gate_applied_total" 1;
  match (g.Circuit.Gate.name, g.Circuit.Gate.targets) with
  | "swap", [ a; b ] ->
      if g.Circuit.Gate.controls <> [] then
        invalid_arg "Engine: controlled swap unsupported";
      Statevec.apply2 swap_matrix a b st
  | name, [ tgt ] ->
      let u = Gates.by_name name g.Circuit.Gate.params in
      Statevec.apply_controlled ~controls:g.Circuit.Gate.controls u tgt st
  | _ -> invalid_arg "Engine: malformed gate"

let apply_gate ?rng ?noise g st =
  apply_gate_ideal g st;
  match (rng, noise) with
  | Some rng, Some noise when not (Noise.is_ideal noise) ->
      inject_noise rng noise g st
  | _ -> ()

(* A fresh generator per call, NOT one shared global: a single mutable
   generator shared across every no-[?rng] call would make results depend
   on call history and would race when callers fan out over
   [Parallel.Pool] domains. Each call without [?rng] therefore starts from
   the same fixed seed — deterministic, and callers that want independent
   streams pass their own generator (usually a [Stats.Rng.split] child). *)
let default_rng () = Stats.Rng.make 0xC0FFEE

let run ?rng ?(noise = Noise.ideal) ?initial ?meter c =
  let rng = match rng with Some r -> r | None -> default_rng () in
  let st =
    match initial with
    | Some s ->
        if Statevec.num_qubits s <> Circuit.num_qubits c then
          invalid_arg "Engine.run: initial state qubit mismatch";
        Statevec.copy s
    | None -> Statevec.zero (Circuit.num_qubits c)
  in
  let clbits = Array.make (Circuit.num_clbits c) 0 in
  let traces = ref [] in
  (match meter with
  | Some m -> Cost.record_circuit m c ~shots:1
  | None -> ());
  List.iter
    (fun instr ->
      match instr with
      | Circuit.Instr.Gate g -> apply_gate ~rng ~noise g st
      | Circuit.Instr.Tracepoint { id; qubits } ->
          traces := (id, Statevec.reduced_density st qubits) :: !traces
      | Circuit.Instr.Measure { qubit; clbit } ->
          let outcome = Statevec.measure rng st qubit in
          let outcome =
            if noise.Noise.readout > 0. && Stats.Rng.float rng 1. < noise.Noise.readout
            then 1 - outcome
            else outcome
          in
          clbits.(clbit) <- outcome
      | Circuit.Instr.Reset q ->
          let outcome = Statevec.measure rng st q in
          if outcome = 1 then Statevec.apply1 Gates.x q st
      | Circuit.Instr.If_gate { clbits = cbs; value; gate } ->
          let read =
            List.fold_left
              (fun (acc, k) b -> (acc lor (clbits.(b) lsl k), k + 1))
              (0, 0) cbs
            |> fst
          in
          if read = value then apply_gate ~rng ~noise gate st
      | Circuit.Instr.Barrier _ -> ())
    (Circuit.instrs c);
  { state = st; clbits; traces = List.rev !traces }

let is_deterministic c =
  List.for_all
    (function
      | Circuit.Instr.Measure _ | Circuit.Instr.Reset _ | Circuit.Instr.If_gate _
        ->
          false
      | _ -> true)
    (Circuit.instrs c)

let get_pool = function
  | Some p -> p
  | None -> Parallel.Pool.global ()

(* Fan [count] independent jobs over the pool, each with its own split child
   generator and (when metered) its own private cost meter, then merge the
   meters in index order. Child generators are derived sequentially before
   the fan-out and the merge order is fixed, so results are bit-identical
   for any domain count. *)
let fan_out pool rng ~meter ~count job =
  let rngs = Array.init count (Stats.Rng.split rng) in
  let metered = meter <> None in
  let results =
    Parallel.Pool.map_init pool count (fun i ->
        let m = if metered then Some (Cost.create ()) else None in
        (job rngs.(i) m, m))
  in
  (match meter with
  | Some m ->
      Array.iter
        (fun (_, mi) -> match mi with Some mi -> Cost.add m mi | None -> ())
        results
  | None -> ());
  Array.map fst results

(* ------------------- stabilizer tracepoint evaluation ----------------- *)

(* cap on lightcone width: [Tableau.density] materializes a [2^k x 2^k]
   matrix per tracepoint, so only small cones are worth routing *)
let stabilizer_cone_cap = 12

(* [stabilizer_applicable c] — every tracepoint state of [c] is computable
   on the tableau from a computational-basis start: no measurement/reset/
   feedback, every gate in [Tableau.apply_gate]'s dispatch, and every
   tracepoint's lightcone within [cap] qubits. Purely static, so routing
   decisions never depend on runtime values. *)
let stabilizer_applicable ?(cap = stabilizer_cone_cap) c =
  is_deterministic c
  && Analysis.Classify.circuit c = Analysis.Classify.Clifford
  && List.for_all
       (fun cone ->
         List.length cone.Analysis.Lightcone.qubits <= cap)
       (Analysis.Lightcone.cones c)

(* [stabilizer_traces ?prep c] computes every tracepoint's reduced density
   matrix on the stabilizer tableau, one lightcone-restricted run per
   tracepoint: O(cone^2) per gate plus a [2^cone] density materialization,
   independent of the full register width. [prep] is a computational-basis
   index (bit q of [prep] = X on qubit q) — a basis start is a product
   state, so restricting to the cone is sound. Only valid when
   [stabilizer_applicable c]. *)
let stabilizer_traces ?(prep = 0) ?meter c =
  Obs.Span.with_ ~name:"engine.stabilizer_traces" @@ fun () ->
  (match meter with
  | Some m -> Cost.record_circuit m c ~shots:1
  | None -> ());
  if Obs.enabled () then
    Obs.Metrics.counter_add "stabilizer_routed_total"
      (List.length (Analysis.Lightcone.cones c));
  if Obs.enabled () then
    Obs.Metrics.counter_add
      ~labels:[ ("engine", "stabilizer") ]
      "sim_engine_routed_total" 1;
  List.map
    (fun cone ->
      let sub, qubits = Analysis.Lightcone.restrict c cone in
      let t = Stabilizer.Tableau.make (Circuit.num_qubits sub) in
      List.iteri
        (fun local global ->
          if (prep lsr global) land 1 = 1 then Stabilizer.Tableau.x t local)
        qubits;
      let tp_qubits = ref [] in
      List.iter
        (function
          | Circuit.Instr.Gate g -> Stabilizer.Tableau.apply_gate g t
          | Circuit.Instr.Tracepoint { qubits; _ } -> tp_qubits := qubits
          | Circuit.Instr.Barrier _ -> ()
          | _ -> invalid_arg "Engine.stabilizer_traces: non-Clifford program")
        (Circuit.instrs sub);
      let rho =
        Qstate.Density.of_cmat (Circuit.num_qubits sub)
          (Stabilizer.Tableau.density t)
      in
      let reduced = Qstate.Density.partial_trace ~keep:!tp_qubits rho in
      (cone.Analysis.Lightcone.id, Qstate.Density.mat reduced))
    (Analysis.Lightcone.cones c)

(* ------------------ sparse & stabilizer-rank routing ------------------ *)

(* caps on what the static router will send to the sparse engine: the
   per-cone support bound (memory and per-gate work) and the tracepoint
   width (a [2^tp x 2^tp] reduced density per tracepoint) *)
let sparse_support_cap = 1 lsl 16
let sparse_tp_cap = 8

(* caps for the stabilizer-rank engine: non-Clifford gates per cone
   (2^k Pauli frames, and every tracepoint costs O(4^tp * 4^k) tableau
   expectations), tracepoint width, and the bitmask-bound cone width *)
let rank_cutoff = 8
let rank_tp_cap = 4
let rank_cone_cap = 62

let cone_tp_width c cone =
  match
    List.find_opt
      (fun (id, _) -> id = cone.Analysis.Lightcone.id)
      (Circuit.tracepoints c)
  with
  | Some (_, qs) -> List.length qs
  | None -> List.length cone.Analysis.Lightcone.qubits

(* [sparse_applicable c] — every tracepoint of [c] is computable on the
   sparse engine within the caps: no measurement/reset/feedback (so one
   pass is exact), gates the sparse kernels dispatch, and every
   tracepoint cone's static support bound within [support_cap]. Purely
   static, like {!stabilizer_applicable}. *)
let sparse_applicable ?(support_cap = sparse_support_cap)
    ?(tp_cap = sparse_tp_cap) c =
  is_deterministic c
  && List.for_all
       (function
         | Circuit.Instr.Gate g | Circuit.Instr.If_gate { gate = g; _ } -> (
             match (g.Circuit.Gate.name, g.Circuit.Gate.targets) with
             | "swap", [ _; _ ] -> g.Circuit.Gate.controls = []
             | _, [ _ ] -> true
             | _ -> false)
         | _ -> true)
       (Circuit.instrs c)
  && List.for_all
       (fun cone ->
         cone_tp_width c cone <= tp_cap
         &&
         let sub, _ = Analysis.Lightcone.restrict c cone in
         Analysis.Classify.support_bound ~cap:(support_cap + 1) sub
         <= support_cap)
       (Analysis.Lightcone.cones c)

(* [rank_applicable c] — every gate splits into at most two Clifford
   branches and every tracepoint cone stays within the frame and width
   caps. *)
let rank_applicable ?(cutoff = rank_cutoff) ?(tp_cap = rank_tp_cap) c =
  is_deterministic c
  && List.for_all
       (function
         | Circuit.Instr.Gate g | Circuit.Instr.If_gate { gate = g; _ } ->
             Analysis.Classify.gate_rank_decomposable g
         | _ -> true)
       (Circuit.instrs c)
  && List.for_all
       (fun cone ->
         List.length cone.Analysis.Lightcone.qubits <= rank_cone_cap
         && cone_tp_width c cone <= tp_cap
         &&
         let sub, _ = Analysis.Lightcone.restrict c cone in
         Analysis.Classify.non_clifford_count sub <= cutoff)
       (Analysis.Lightcone.cones c)

(* Dense-amplitude wall: [`Auto] considers the scalable engines only
   when one dense pass would exceed this many amplitude updates
   (default 2^22 — a few-ms dense run). A ref, like
   [Statevec.parallel_threshold], so tests can force routing on small
   circuits. *)
let dense_amp_wall = ref (Float.ldexp 1. 22)

let count_routed engine =
  if Obs.enabled () then
    Obs.Metrics.counter_add
      ~labels:[ ("engine", engine) ]
      "sim_engine_routed_total" 1

(* The static routing decision for ideal, [|0...0>]-started programs:
   Clifford programs keep the PR 4 stabilizer route; otherwise nothing
   is routed below the dense wall (dense is exact and fast there), and
   above it the sparse engine is preferred when its static cost model
   wins by 4x (sparse entries cost a few dense amplitude updates each),
   with the stabilizer-rank engine as the near-Clifford fallback. *)
let auto_route ?wall c =
  let wall = match wall with Some w -> w | None -> !dense_amp_wall in
  if stabilizer_applicable c then Some `Stabilizer
  else begin
    let dense = Cost.dense_sim_ops c in
    if dense <= wall then None
    else if sparse_applicable c && 4. *. Cost.sparse_sim_ops c <= dense then
      Some `Sparse
    else if rank_applicable c && Cost.rank_sim_ops c <= dense then Some `Rank
    else None
  end

(* estimated simulation class, for diagnostics (MQ018): the routing
   preference order without the dense wall *)
type sim_class = Class_dense | Class_sparse | Class_stabilizer | Class_rank of int

let sim_class c =
  if stabilizer_applicable c then Class_stabilizer
  else if sparse_applicable c then Class_sparse
  else if rank_applicable c then
    Class_rank (Analysis.Classify.non_clifford_count c)
  else Class_dense

(* local prep index for a cone: bit [local] set when the cone's
   [global] qubit is set in [prep] *)
let local_prep prep qubits =
  List.fold_left
    (fun (acc, local) global ->
      ((if (prep lsr global) land 1 = 1 then acc lor (1 lsl local) else acc),
       local + 1))
    (0, 0) qubits
  |> fst

(* [sparse_traces ?prep c] — every tracepoint's reduced density on the
   sparse engine, one lightcone-restricted pass per tracepoint from the
   basis state [prep]. Only valid when [sparse_applicable c]. *)
let sparse_traces ?(prep = 0) ?meter c =
  Obs.Span.with_ ~name:"engine.sparse_traces" @@ fun () ->
  (match meter with
  | Some m -> Cost.record_circuit m c ~shots:1
  | None -> ());
  count_routed "sparse";
  List.map
    (fun cone ->
      let sub, qubits = Analysis.Lightcone.restrict c cone in
      let st = Sparse.basis (Circuit.num_qubits sub) (local_prep prep qubits) in
      let peak = ref 1 in
      let tp_qubits = ref [] in
      List.iter
        (function
          | Circuit.Instr.Gate g ->
              Sparse.apply_gate g st;
              peak := max !peak (Sparse.support st)
          | Circuit.Instr.Tracepoint { qubits; _ } -> tp_qubits := qubits
          | Circuit.Instr.Barrier _ -> ()
          | _ -> invalid_arg "Engine.sparse_traces: non-deterministic program")
        (Circuit.instrs sub);
      if Obs.enabled () then
        Obs.Metrics.counter_add "sparse_amps_peak_total" !peak;
      (cone.Analysis.Lightcone.id, Sparse.reduced_density st !tp_qubits))
    (Analysis.Lightcone.cones c)

(* [rank_traces ?prep c] — every tracepoint's reduced density on the
   sum-over-stabilizers engine, exact for near-Clifford cones. Only
   valid when [rank_applicable c]. *)
let rank_traces ?(prep = 0) ?meter c =
  Obs.Span.with_ ~name:"engine.rank_traces" @@ fun () ->
  (match meter with
  | Some m -> Cost.record_circuit m c ~shots:1
  | None -> ());
  count_routed "rank";
  List.map
    (fun cone ->
      let sub, qubits = Analysis.Lightcone.restrict c cone in
      let st = Rank.make (Circuit.num_qubits sub) (local_prep prep qubits) in
      let tp_qubits = ref [] in
      List.iter
        (function
          | Circuit.Instr.Gate g -> Rank.apply_gate g st
          | Circuit.Instr.Tracepoint { qubits; _ } -> tp_qubits := qubits
          | Circuit.Instr.Barrier _ -> ()
          | _ -> invalid_arg "Engine.rank_traces: non-deterministic program")
        (Circuit.instrs sub);
      if Obs.enabled () then
        Obs.Metrics.counter_add "rank_branches_total" (Rank.branch_count st);
      (cone.Analysis.Lightcone.id, Rank.reduced_density st !tp_qubits))
    (Analysis.Lightcone.cones c)

let tracepoint_states ?pool ?rng ?(noise = Noise.ideal) ?(trajectories = 64)
    ?initial ?(engine = `Auto) ?meter ?wall c =
  let ideal_start = initial = None && Noise.is_ideal noise in
  let route =
    match engine with
    | `Statevec -> None
    | `Stabilizer ->
        if not (ideal_start && stabilizer_applicable c) then
          invalid_arg "Engine.tracepoint_states: stabilizer engine inapplicable";
        Some `Stabilizer
    | `Sparse ->
        if not (ideal_start && sparse_applicable c) then
          invalid_arg "Engine.tracepoint_states: sparse engine inapplicable";
        Some `Sparse
    | `Rank ->
        if not (ideal_start && rank_applicable c) then
          invalid_arg "Engine.tracepoint_states: rank engine inapplicable";
        Some `Rank
    | `Auto -> if ideal_start then auto_route ?wall c else None
  in
  let engine_name =
    match route with
    | Some `Stabilizer -> "stabilizer"
    | Some `Sparse -> "sparse"
    | Some `Rank -> "rank"
    | None -> "statevec"
  in
  if Obs.Log.enabled Obs.Log.Debug then
    Obs.Log.emit Obs.Log.Debug "engine.route"
      [
        ("engine", Obs.Log.S engine_name);
        ("qubits", Obs.Log.I (Circuit.num_qubits c));
        ("gates", Obs.Log.I (Circuit.gate_count c));
      ];
  Obs.Span.with_ ~name:"engine.tracepoint_states"
    ~attrs:[ ("engine", engine_name) ]
  @@ fun () ->
  match route with
  | Some `Stabilizer -> stabilizer_traces ?meter c
  | Some `Sparse -> sparse_traces ?meter c
  | Some `Rank -> rank_traces ?meter c
  | None ->
  if is_deterministic c && Noise.is_ideal noise then begin
    count_routed "statevec";
    (run ?rng ~noise ?initial ?meter c).traces
  end
  else begin
    count_routed "statevec";
    let rng = match rng with Some r -> r | None -> default_rng () in
    let per_traj =
      fan_out (get_pool pool) rng ~meter ~count:trajectories
        (fun rng m -> (run ~rng ~noise ?initial ?meter:m c).traces)
    in
    (* commutative trace merge, in trajectory order *)
    let acc = Hashtbl.create 8 in
    let order = ref [] in
    Array.iter
      (fun traces ->
        List.iter
          (fun (id, m) ->
            match Hashtbl.find_opt acc id with
            | None ->
                order := id :: !order;
                Hashtbl.add acc id m
            | Some prev -> Hashtbl.replace acc id (Linalg.Cmat.add prev m))
          traces)
      per_traj;
    List.rev_map
      (fun id ->
        ( id,
          Linalg.Cmat.rscale (1. /. float_of_int trajectories) (Hashtbl.find acc id)
        ))
      !order
  end

let sample_counts ?pool ?rng ?(noise = Noise.ideal) ?initial ?meter ~shots c =
  Obs.Span.with_ ~name:"engine.sample_counts" @@ fun () ->
  if Obs.enabled () then Obs.Metrics.counter_add "sample_shots_total" shots;
  let rng = match rng with Some r -> r | None -> default_rng () in
  let pool = get_pool pool in
  let tbl = Hashtbl.create 64 in
  let bump k n =
    Hashtbl.replace tbl k (n + Option.value ~default:0 (Hashtbl.find_opt tbl k))
  in
  if is_deterministic c && Noise.is_ideal noise then begin
    let { state; _ } = run ~rng ~noise ?initial c in
    (match meter with
    | Some m -> Cost.record_circuit m c ~shots
    | None -> ());
    List.iter (fun (k, n) -> bump k n) (Statevec.counts ~pool rng state ~shots)
  end
  else begin
    let sampled =
      fan_out pool rng ~meter ~count:shots (fun rng m ->
          let { state; _ } = run ~rng ~noise ?initial ?meter:m c in
          Statevec.sample rng state)
    in
    Array.iter (fun k -> bump k 1) sampled
  end;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let unitary ?pool c =
  let n = Circuit.num_qubits c in
  let d = 1 lsl n in
  let u = Linalg.Cmat.create d d in
  let column k =
    let st = Statevec.basis n k in
    List.iter
      (fun instr ->
        match instr with
        | Circuit.Instr.Gate g -> apply_gate_ideal g st
        | Circuit.Instr.Tracepoint _ | Circuit.Instr.Barrier _ -> ()
        | _ -> invalid_arg "Engine.unitary: non-unitary instruction")
      (Circuit.instrs c);
    Linalg.Cmat.set_col u k (Statevec.to_cvec st)
  in
  (* columns are independent and write disjoint slices of [u]; small
     matrices stay sequential to skip the fan-out handshake *)
  if d >= 256 then Parallel.Pool.parallel_for (get_pool pool) ~n:d column
  else
    for k = 0 to d - 1 do
      column k
    done;
  u
