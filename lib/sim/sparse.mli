(** Sparse statevector engine: sorted-coordinate (index, amplitude) runs
    with eager pruning at {!cutoff}. Memory and time scale with the
    occupied support instead of [2^n], so low-occupancy programs
    (Bernstein-Vazirani, QRAM reads, lock circuits) simulate at 28+
    qubits where the dense engine cannot allocate; up to 62 qubits
    (indices are OCaml ints).

    [Sim.Engine]'s [`Auto] routing sends a circuit here only when
    [Analysis.Classify.support_bound] proves the support stays small;
    {!run} additionally carries a densify escape hatch for direct
    callers whose support outgrows the sparse representation on a
    register the dense engine can hold. *)

type t

(** Amplitudes with squared magnitude at or below this ([1e-12]) are
    pruned. *)
val cutoff : float

(** [basis n k] is the computational basis state [|k>] on [n] qubits
    (support 1). *)
val basis : int -> int -> t

val num_qubits : t -> int

(** Number of occupied (above-cutoff) basis states. *)
val support : t -> int

val copy : t -> t

(** [amplitude t k] — [O(log support)] binary search; zero when absent. *)
val amplitude : t -> int -> Linalg.Cx.t

(** Occupied entries in ascending index order. *)
val entries : t -> (int * Linalg.Cx.t) list

val norm : t -> float

(** Dense conversions (bounded by [Statevec]'s qubit cap). *)
val to_statevec : t -> Qstate.Statevec.t

val of_statevec : Qstate.Statevec.t -> t

(** [apply_gate g t] applies a gate in place: diagonal gates rotate
    phases without re-sorting, x/y/swap/general 1q gates pair occupied
    indices with their (possibly unoccupied) partners and re-sort. *)
val apply_gate : Circuit.Gate.t -> t -> unit

val prob1 : t -> int -> float

(** [project t q outcome] — same convention as [Statevec.project]:
    returns the outcome probability, leaves the state unchanged when it
    is below [1e-15]. *)
val project : t -> int -> int -> float

(** [measure rng t q] — one [rng] draw, then collapse; identical stream
    consumption to [Statevec.measure]. *)
val measure : Stats.Rng.t -> t -> int -> int

(** [sample rng t] draws one basis index from the Born distribution. *)
val sample : Stats.Rng.t -> t -> int

(** [reduced_density t keep] — the reduced density matrix on [keep]
    (bit [j] of the reduced index is [List.nth keep j], as in
    [Statevec.reduced_density]), via one outer product per contiguous
    environment group: [O(support^2)] worst case, independent of [n]. *)
val reduced_density : t -> int list -> Linalg.Cmat.t

type final = Sparse_state of t | Dense_state of Qstate.Statevec.t

type result = {
  final : final;
  clbits : int array;
  traces : (int * Linalg.Cmat.t) list;
  peak_support : int;  (** maximum live support over the run *)
}

val default_densify_limit : int
(** Support threshold of {!run}'s densify escape hatch, [2^16]. *)

(** [run ?rng ?input ?densify_limit c] executes a full program —
    gates, tracepoints, measurement, reset and classical feedback —
    from basis state [input], switching to the dense engine mid-run if
    the live support crosses [densify_limit] (and the register fits
    densely). Same measurement conventions as [Sim.Engine.run] under
    the ideal noise model. *)
val run :
  ?rng:Stats.Rng.t -> ?input:int -> ?densify_limit:int -> Circuit.t -> result
