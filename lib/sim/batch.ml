open Qstate
module Cmat = Linalg.Cmat

(* Batched execution of segment-compiled circuits.

   A [plan] (normally built by [Transpile.Segments.compile]) is a circuit
   whose purely-unitary segments have been fused into block operators,
   interleaved with the fences (tracepoints, measurements, resets,
   classical feedback) that delimited them. [run] packs N input state
   vectors as the columns of one row-major matrix pair, so row [i] holds
   amplitude [i] of every column contiguously, and applies each fused
   operator to the whole batch with allocation-free kernels that stream
   those rows. Fences are interpreted per column with a per-column
   generator.

   Determinism: every kernel touches each column independently with a
   k-ascending accumulation order that does not depend on how many columns
   sit in the buffer or which worker processes them, so a packed run is
   bit-identical to running each column alone through [run_seq] — for any
   batch size, column-block size and pool domain count. *)

type block = { qubits : int array; u : Cmat.t }

type item =
  | Block of block
  | Direct of Circuit.Gate.t
  | Fence of Circuit.Instr.t

type plan = {
  num_qubits : int;
  num_clbits : int;
  items : item list;
  source_ops : int;
}

let ops plan =
  List.fold_left
    (fun n item -> match item with Block _ | Direct _ -> n + 1 | Fence _ -> n)
    0 plan.items

let is_deterministic plan =
  List.for_all
    (function
      | Fence
          ( Circuit.Instr.Measure _ | Circuit.Instr.Reset _
          | Circuit.Instr.If_gate _ ) ->
          false
      | _ -> true)
    plan.items

(* ------------------------------------------------------------------ *)
(* The packed batch: [d x w] column-major state storage plus an equally
   sized gather workspace, both allocated once and reused across every
   operator and column block. *)

type batch = { n : int; w : int; buf : Cmat.t; ws : Cmat.t }

let make_batch n w =
  let d = 1 lsl n in
  { n; w; buf = Cmat.create d w; ws = Cmat.create d w }

(* ------------------------------------------------------------------ *)
(* Operator kernels over a column range [lo, hi). Distinct ranges touch
   disjoint elements of both [buf] and [ws], so pool workers can run the
   whole item list over their own ranges concurrently. *)

let apply_block bt (blk : block) lo hi =
  let n = bt.n and w = bt.w in
  let d = 1 lsl n in
  let k = Array.length blk.qubits in
  let m = 1 lsl k in
  let u = blk.u in
  if Obs.enabled () then begin
    (* useful MACs: one per nonzero of [u], per base group, per column in
       this range — identical for the GEMM and gather paths *)
    let nnz = ref 0 in
    for idx = 0 to Array.length u.Cmat.re - 1 do
      if u.Cmat.re.(idx) <> 0. || u.Cmat.im.(idx) <> 0. then incr nnz
    done;
    (* exactly one chunk of any partitioning starts at column 0, so this
       count is independent of the pool's domain count; the MAC count
       scales by (hi - lo) and sums to the same total for the same
       reason *)
    if lo = 0 then Obs.Metrics.counter_add "fused_block_applied_total" 1;
    Obs.Metrics.counter_add "batch_gemm_macs_total"
      ((d lsr k) * !nnz * (hi - lo))
  end;
  if k = n && lo = 0 && hi = w then begin
    (* full-width segment over the whole buffer: plain GEMM. Bit-identical
       to the gather path below (same k-ascending, zero-skipping
       accumulation), just without the copy. *)
    Cmat.mul_into ~dst:bt.ws u bt.buf;
    Array.blit bt.ws.Cmat.re 0 bt.buf.Cmat.re 0 (d * w);
    Array.blit bt.ws.Cmat.im 0 bt.buf.Cmat.im 0 (d * w)
  end
  else begin
    let bre = bt.buf.Cmat.re and bim = bt.buf.Cmat.im in
    let wre = bt.ws.Cmat.re and wim = bt.ws.Cmat.im in
    let ure = u.Cmat.re and uim = u.Cmat.im in
    let width = hi - lo in
    let block_mask =
      Array.fold_left (fun acc q -> acc lor (1 lsl q)) 0 blk.qubits
    in
    (* offset.(a): global index bits contributed by local sub-index [a]
       (local bit j lives on global qubit [qubits.(j)]) *)
    let offset =
      Array.init m (fun a ->
          let idx = ref 0 in
          Array.iteri
            (fun j q -> if (a lsr j) land 1 = 1 then idx := !idx lor (1 lsl q))
            blk.qubits;
          !idx)
    in
    for base = 0 to d - 1 do
      if base land block_mask = 0 then begin
        (* gather the m involved rows of this group into the workspace,
           then accumulate u * ws back into the batch rows *)
        for a = 0 to m - 1 do
          let row = (base lor offset.(a)) * w in
          Array.blit bre (row + lo) wre ((a * w) + lo) width;
          Array.blit bim (row + lo) wim ((a * w) + lo) width
        done;
        for a = 0 to m - 1 do
          let drow = (base lor offset.(a)) * w in
          Array.fill bre (drow + lo) width 0.;
          Array.fill bim (drow + lo) width 0.;
          for b = 0 to m - 1 do
            let ur = ure.((a * m) + b) and ui = uim.((a * m) + b) in
            if ur <> 0. || ui <> 0. then begin
              let srow = b * w in
              for j = lo to hi - 1 do
                let xr = wre.(srow + j) and xi = wim.(srow + j) in
                bre.(drow + j) <- bre.(drow + j) +. (ur *. xr) -. (ui *. xi);
                bim.(drow + j) <- bim.(drow + j) +. (ur *. xi) +. (ui *. xr)
              done
            end
          done
        done
      end
    done
  end

(* controlled single-target gate, mirroring [Statevec.apply_controlled]'s
   update expressions so a plan run agrees with the gate-by-gate engine *)
let apply_cgate bt ~controls u tgt lo hi =
  let d = 1 lsl bt.n and w = bt.w in
  let bre = bt.buf.Cmat.re and bim = bt.buf.Cmat.im in
  let cmask = List.fold_left (fun m c -> m lor (1 lsl c)) 0 controls in
  let u00r = u.Cmat.re.(0) and u00i = u.Cmat.im.(0) in
  let u01r = u.Cmat.re.(1) and u01i = u.Cmat.im.(1) in
  let u10r = u.Cmat.re.(2) and u10i = u.Cmat.im.(2) in
  let u11r = u.Cmat.re.(3) and u11i = u.Cmat.im.(3) in
  let bit = 1 lsl tgt in
  for i = 0 to d - 1 do
    if i land bit = 0 && i land cmask = cmask then begin
      let p = i * w and q = (i lor bit) * w in
      for j = lo to hi - 1 do
        let ar = bre.(p + j) and ai = bim.(p + j) in
        let br = bre.(q + j) and bi = bim.(q + j) in
        bre.(p + j) <- (u00r *. ar) -. (u00i *. ai) +. (u01r *. br) -. (u01i *. bi);
        bim.(p + j) <- (u00r *. ai) +. (u00i *. ar) +. (u01r *. bi) +. (u01i *. br);
        bre.(q + j) <- (u10r *. ar) -. (u10i *. ai) +. (u11r *. br) -. (u11i *. bi);
        bim.(q + j) <- (u10r *. ai) +. (u10i *. ar) +. (u11r *. bi) +. (u11i *. br)
      done
    end
  done

let apply_swap bt qa qb lo hi =
  let d = 1 lsl bt.n and w = bt.w in
  let bre = bt.buf.Cmat.re and bim = bt.buf.Cmat.im in
  let ba = 1 lsl qa and bb = 1 lsl qb in
  for i = 0 to d - 1 do
    if i land ba <> 0 && i land bb = 0 then begin
      let p = i * w and q = (i lxor (ba lor bb)) * w in
      for j = lo to hi - 1 do
        let xr = bre.(p + j) and xi = bim.(p + j) in
        bre.(p + j) <- bre.(q + j);
        bim.(p + j) <- bim.(q + j);
        bre.(q + j) <- xr;
        bim.(q + j) <- xi
      done
    end
  done

let apply_direct bt (g : Circuit.Gate.t) lo hi =
  (* [lo = 0] guard: see [apply_block] — keeps the count independent of
     how the column range was chunked over pool workers *)
  if lo = 0 && Obs.enabled () then
    Obs.Metrics.counter_add
      ~labels:[ ("kind", g.Circuit.Gate.name) ]
      "direct_gate_applied_total" 1;
  match (g.Circuit.Gate.name, g.Circuit.Gate.targets) with
  | "swap", [ qa; qb ] ->
      if g.Circuit.Gate.controls <> [] then
        invalid_arg "Batch: controlled swap unsupported";
      apply_swap bt qa qb lo hi
  | name, [ tgt ] ->
      let u = Gates.by_name name g.Circuit.Gate.params in
      apply_cgate bt ~controls:g.Circuit.Gate.controls u tgt lo hi
  | _ -> invalid_arg "Batch: malformed gate"

(* ------------------------------------------------------------------ *)
(* Fence interpretation. Per-column access to the packed buffer walks a
   column with a [w]-float stride — one cache line per amplitude — which
   dominates wall time on measurement-heavy circuits. So runs of
   consecutive fences are executed on contiguous copies instead: a tile
   of columns is transposed out of the buffer (walking ROWS, which are
   contiguous), each column's fences run on its own scratch [Statevec.t]
   with the engine's statevec kernels, and the tile is transposed back.
   The copies are exact and the per-column fence order is unchanged, so
   the results are bit-identical to interpreting the packed columns in
   place — and the fence arithmetic is exactly [Engine.run]'s. *)

(* gate application inside a fence ([If_gate] bodies), mirroring
   [Engine.apply_gate_ideal] *)
let sv_apply_gate (g : Circuit.Gate.t) st =
  match (g.Circuit.Gate.name, g.Circuit.Gate.targets) with
  | "swap", [ qa; qb ] ->
      if g.Circuit.Gate.controls <> [] then
        invalid_arg "Batch: controlled swap unsupported";
      (* exact amplitude permutation *)
      let d = Statevec.dim st in
      let ba = 1 lsl qa and bb = 1 lsl qb in
      for i = 0 to d - 1 do
        if i land ba <> 0 && i land bb = 0 then begin
          let q = i lxor (ba lor bb) in
          let xr = st.Statevec.re.(i) and xi = st.Statevec.im.(i) in
          st.Statevec.re.(i) <- st.Statevec.re.(q);
          st.Statevec.im.(i) <- st.Statevec.im.(q);
          st.Statevec.re.(q) <- xr;
          st.Statevec.im.(q) <- xi
        end
      done
  | name, [ tgt ] ->
      let u = Gates.by_name name g.Circuit.Gate.params in
      Statevec.apply_controlled ~controls:g.Circuit.Gate.controls u tgt st
  | _ -> invalid_arg "Batch: malformed gate"

let fence_tile = 16

(* a run of read-only fences (tracepoints, barriers) leaves the scratch
   columns untouched, so transposing them back would be an exact no-op *)
let fences_mutate fences =
  List.exists
    (function
      | Circuit.Instr.Measure _ | Circuit.Instr.Reset _
      | Circuit.Instr.If_gate _ ->
          true
      | _ -> false)
    fences

let exec_fences fences bt ~col0 ~rng_for ~clbits ~traces lo hi =
  let mutate = fences_mutate fences in
  let d = 1 lsl bt.n and w = bt.w in
  let bre = bt.buf.Cmat.re and bim = bt.buf.Cmat.im in
  let scratch =
    Array.init (min fence_tile (hi - lo)) (fun _ -> Statevec.zero bt.n)
  in
  let t0 = ref lo in
  while !t0 < hi do
    let t1 = min hi (!t0 + fence_tile) in
    for k = 0 to d - 1 do
      let row = k * w in
      for j = !t0 to t1 - 1 do
        let st = scratch.(j - !t0) in
        st.Statevec.re.(k) <- bre.(row + j);
        st.Statevec.im.(k) <- bim.(row + j)
      done
    done;
    for j = !t0 to t1 - 1 do
      let g = col0 + j in
      let st = scratch.(j - !t0) in
      List.iter
        (fun instr ->
          match instr with
          | Circuit.Instr.Tracepoint { id; qubits } ->
              traces.(g) <-
                (id, Statevec.reduced_density st qubits) :: traces.(g)
          | Circuit.Instr.Measure { qubit; clbit } ->
              clbits.(g).(clbit) <- Statevec.measure (rng_for g) st qubit
          | Circuit.Instr.Reset q ->
              if Statevec.measure (rng_for g) st q = 1 then
                Statevec.apply1 Gates.x q st
          | Circuit.Instr.If_gate { clbits = cbs; value; gate } ->
              let read =
                List.fold_left
                  (fun (acc, k) b -> (acc lor (clbits.(g).(b) lsl k), k + 1))
                  (0, 0) cbs
                |> fst
              in
              if read = value then sv_apply_gate gate st
          | Circuit.Instr.Barrier _ -> ()
          | Circuit.Instr.Gate _ ->
              invalid_arg "Batch: raw gate used as a fence")
        fences
    done;
    if mutate then
      for k = 0 to d - 1 do
        let row = k * w in
        for j = !t0 to t1 - 1 do
          let st = scratch.(j - !t0) in
          bre.(row + j) <- st.Statevec.re.(k);
          bim.(row + j) <- st.Statevec.im.(k)
        done
      done;
    t0 := t1
  done

(* ------------------------------------------------------------------ *)

(* item list with runs of consecutive fences pre-grouped, so each run
   costs one tile transpose in and out instead of one strided column
   walk per fence *)
type step = Apply of item | Interpret of Circuit.Instr.t list

let group_items items =
  let rev_steps =
    List.fold_left
      (fun acc item ->
        match (item, acc) with
        | Fence i, Interpret fs :: rest -> Interpret (i :: fs) :: rest
        | Fence i, _ -> Interpret [ i ] :: acc
        | (Block _ | Direct _), _ -> Apply item :: acc)
      [] items
  in
  List.rev_map
    (function Interpret fs -> Interpret (List.rev fs) | step -> step)
    rev_steps

(* run the whole grouped item list over columns [lo, hi) of the buffer.
   [col0] is the global index of the buffer's first column; per-column
   outputs go to disjoint slots of [clbits]/[traces]. *)
let exec_items groups bt ~col0 ~rng_for ~clbits ~traces lo hi =
  List.iter
    (fun step ->
      match step with
      | Apply (Block b) -> apply_block bt b lo hi
      | Apply (Direct g) -> apply_direct bt g lo hi
      | Apply (Fence _) -> assert false
      | Interpret fences ->
          exec_fences fences bt ~col0 ~rng_for ~clbits ~traces lo hi)
    groups

(* Column blocking bounds peak memory: a buffer (plus workspace) never
   exceeds ~[max_block_floats] amplitudes per component, whatever the
   sample count. Columns are independent, so blocking cannot change any
   column's result. *)
let max_block_floats = 1 lsl 21
let chunk_cols = 16

let exec ?pool ?rngs plan ~count ~init ~want_states =
  Obs.Span.with_ ~name:"batch.exec"
    ~attrs:[ ("columns", string_of_int count) ]
  @@ fun () ->
  let n = plan.num_qubits in
  let d = 1 lsl n in
  let pool = match pool with Some p -> p | None -> Parallel.Pool.global () in
  let col_rngs =
    match rngs with
    | Some a ->
        if Array.length a <> count then
          invalid_arg "Batch: rngs length must equal the column count";
        a
    | None ->
        if is_deterministic plan then [||]
        else
          (* same per-trajectory default seed policy as [Engine.run]: a
             fresh generator per column, never a shared one *)
          Array.init count (fun _ -> Stats.Rng.make 0xC0FFEE)
  in
  let rng_for g = col_rngs.(g) in
  let traces = Array.make count [] in
  let clbits = Array.init count (fun _ -> Array.make plan.num_clbits 0) in
  let states = Array.make (if want_states then count else 0) None in
  if count > 0 then begin
    let groups = group_items plan.items in
    let block_w = max 1 (min count (max_block_floats / d)) in
    let bt = make_batch n block_w in
    let w = bt.w in
    let bre = bt.buf.Cmat.re and bim = bt.buf.Cmat.im in
    let col0 = ref 0 in
    while !col0 < count do
      let used = min block_w (count - !col0) in
      (* pack/unpack a tile of columns at a time, walking the buffer's
         contiguous rows rather than one strided column per state *)
      let j0 = ref 0 in
      while !j0 < used do
        let j1 = min used (!j0 + fence_tile) in
        let sts =
          Array.init (j1 - !j0) (fun t ->
              let st = init (!col0 + !j0 + t) in
              if Statevec.num_qubits st <> n then
                invalid_arg "Batch: input state qubit count mismatch";
              st)
        in
        for k = 0 to d - 1 do
          let row = k * w in
          for j = !j0 to j1 - 1 do
            let st = sts.(j - !j0) in
            bre.(row + j) <- st.Statevec.re.(k);
            bim.(row + j) <- st.Statevec.im.(k)
          done
        done;
        j0 := j1
      done;
      let base = !col0 in
      Parallel.Pool.parallel_for_chunks ~chunk:chunk_cols pool ~n:used
        (exec_items groups bt ~col0:base ~rng_for ~clbits ~traces);
      if want_states then begin
        let j0 = ref 0 in
        while !j0 < used do
          let j1 = min used (!j0 + fence_tile) in
          let sts =
            Array.init (j1 - !j0) (fun _ -> Statevec.zero n)
          in
          for k = 0 to d - 1 do
            let row = k * w in
            for j = !j0 to j1 - 1 do
              let st = sts.(j - !j0) in
              st.Statevec.re.(k) <- bre.(row + j);
              st.Statevec.im.(k) <- bim.(row + j)
            done
          done;
          Array.iteri (fun t st -> states.(base + !j0 + t) <- Some st) sts;
          j0 := j1
        done
      end;
      col0 := base + used
    done
  end;
  (traces, clbits, states)

let run ?pool ?rngs plan states =
  let count = Array.length states in
  let traces, clbits, out =
    exec ?pool ?rngs plan ~count ~init:(fun i -> states.(i)) ~want_states:true
  in
  Array.init count (fun i ->
      {
        Engine.state = Option.get out.(i);
        clbits = clbits.(i);
        traces = List.rev traces.(i);
      })

let run_traces ?pool ?rngs plan ~count ~init =
  let traces, _, _ = exec ?pool ?rngs plan ~count ~init ~want_states:false in
  Array.map List.rev traces

let run_seq ?rng plan st =
  let rngs = Option.map (fun r -> [| r |]) rng in
  (run ?rngs plan [| st |]).(0)
