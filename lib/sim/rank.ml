(* Sum-over-stabilizers (stabilizer-rank) engine for near-Clifford
   circuits.

   The state is kept as  |psi> = sum_i c_i X^{x_i} Z^{z_i} |phi>  with
   ONE shared stabilizer tableau |phi> and a list of weighted Pauli
   frames (c_i, x_i, z_i) — bitmask X/Z words in the *product*
   convention (all i-phases folded into c_i):

   - a Clifford gate U updates the tableau (U|phi>) and conjugates each
     frame Pauli (P_i <- U P_i U+), a few bit operations per branch;
   - a non-Clifford gate that splits as  g = alpha I + beta Q  (Q a
     single-qubit Pauli: t/tdg/p/u1/rz about Z, rx about X, ry about Y,
     sx/sy) doubles the branch list by left-multiplying Q onto each
     frame, then merges duplicate (x, z) words.

   k rank-decomposable non-Clifford gates therefore cost at most 2^k
   weighted frames, and every tracepoint expectation is recovered
   *exactly* (no sampling): for a Hermitian Pauli M,

     <psi| M |psi> = sum_{j,i} conj(c_j) c_i <phi| P_j^+ M P_i |phi>

   where each <phi| . |phi> is a +1/-1/0 stabilizer expectation
   ([Stabilizer.Tableau.expectation_pauli]), memoized per tracepoint.
   Reduced densities come from the Pauli expansion
   rho = 2^{-s} sum_sigma <M_sigma> M_sigma over the 4^s Pauli words on
   the kept qubits. Registers are capped at 62 qubits (bitmask-bound). *)

open Linalg

let max_qubits = 62
let prune = 1e-24
let default_branch_cap = 4096

type t = {
  n : int;
  tab : Stabilizer.Tableau.t;
  mutable branches : (Cx.t * int * int) array;
      (* (coefficient, X word, Z word), sorted by (x, z) *)
}

let make n input =
  if n <= 0 || n > max_qubits then
    invalid_arg "Rank.make: unsupported qubit count";
  if input < 0 || (n < max_qubits && input lsr n <> 0) then
    invalid_arg "Rank.make: index out of range";
  let tab = Stabilizer.Tableau.make n in
  for q = 0 to n - 1 do
    if (input lsr q) land 1 = 1 then Stabilizer.Tableau.x tab q
  done;
  { n; tab; branches = [| (Cx.one, 0, 0) |] }

let num_qubits t = t.n
let branch_count t = Array.length t.branches

(* ------------------------ Clifford conjugation ------------------------ *)

(* P <- U P U+ for a frame P = X^x Z^z: the X word and Z word are
   conjugated letter-by-letter; the only subtlety is the sign picked up
   re-sorting the result back into X-then-Z form. Rules verified against
   the 2x2/4x4 matrices in [Qstate.Gates]. *)
let conj_gate (g : Circuit.Gate.t) (c, x, z) =
  let name = g.Circuit.Gate.name in
  match (name, g.Circuit.Gate.controls, g.Circuit.Gate.targets) with
  | "id", [], [ _ ] -> (c, x, z)
  | "h", [], [ q ] ->
      let bit = 1 lsl q in
      let xq = x land bit <> 0 and zq = z land bit <> 0 in
      let c = if xq && zq then Cx.neg c else c in
      let x = if zq then x lor bit else x land lnot bit in
      let z = if xq then z lor bit else z land lnot bit in
      (c, x, z)
  | "s", [], [ q ] ->
      let bit = 1 lsl q in
      if x land bit <> 0 then (Cx.mul c Cx.i, x, z lxor bit) else (c, x, z)
  | "sdg", [], [ q ] ->
      let bit = 1 lsl q in
      if x land bit <> 0 then (Cx.mul c (Cx.neg Cx.i), x, z lxor bit)
      else (c, x, z)
  | "x", [], [ q ] ->
      let bit = 1 lsl q in
      ((if z land bit <> 0 then Cx.neg c else c), x, z)
  | "y", [], [ q ] ->
      let bit = 1 lsl q in
      let flips = (x land bit <> 0) <> (z land bit <> 0) in
      ((if flips then Cx.neg c else c), x, z)
  | "z", [], [ q ] ->
      let bit = 1 lsl q in
      ((if x land bit <> 0 then Cx.neg c else c), x, z)
  | "x", [ ctl ], [ tgt ] ->
      (* CX: X_c -> X_c X_t, Z_t -> Z_c Z_t, no sign *)
      let bc = 1 lsl ctl and bt = 1 lsl tgt in
      let x = if x land bc <> 0 then x lxor bt else x in
      let z = if z land bt <> 0 then z lxor bc else z in
      (c, x, z)
  | "z", [ a ], [ b ] ->
      (* CZ: X_a -> X_a Z_b, X_b -> Z_a X_b; sign when both X's present *)
      let ba = 1 lsl a and bb = 1 lsl b in
      let xa = x land ba <> 0 and xb = x land bb <> 0 in
      let z = if xa then z lxor bb else z in
      let z = if xb then z lxor ba else z in
      ((if xa && xb then Cx.neg c else c), x, z)
  | "swap", [], [ a; b ] ->
      let ba = 1 lsl a and bb = 1 lsl b in
      let swap_bits w =
        let va = w land ba <> 0 and vb = w land bb <> 0 in
        let w = if vb then w lor ba else w land lnot ba in
        if va then w lor bb else w land lnot bb
      in
      (c, swap_bits x, swap_bits z)
  | _ -> invalid_arg ("Rank: non-Clifford conjugation of " ^ name)

(* ------------------------- non-Clifford splits ------------------------ *)

type axis = AX | AY | AZ

(* g = alpha I + beta Q on the target qubit; matches the matrices in
   [Qstate.Gates] exactly *)
let decompose name params =
  let half_phase lam =
    (* diag(1, e^{i lam}) *)
    let e = Cx.exp_i lam in
    ( Cx.scale 0.5 (Cx.add Cx.one e),
      Cx.scale 0.5 (Cx.sub Cx.one e),
      AZ )
  in
  match (name, params) with
  | "t", [] -> half_phase (Float.pi /. 4.)
  | "tdg", [] -> half_phase (-.Float.pi /. 4.)
  | ("p" | "u1"), [ lam ] -> half_phase lam
  | "rz", [ th ] ->
      (Cx.make (cos (th /. 2.)) 0., Cx.make 0. (-.sin (th /. 2.)), AZ)
  | "rx", [ th ] ->
      (Cx.make (cos (th /. 2.)) 0., Cx.make 0. (-.sin (th /. 2.)), AX)
  | "ry", [ th ] ->
      (Cx.make (cos (th /. 2.)) 0., Cx.make 0. (-.sin (th /. 2.)), AY)
  | "sx", [] -> (Cx.make 0.5 0.5, Cx.make 0.5 (-0.5), AX)
  | "sy", [] -> (Cx.make 0.5 0.5, Cx.make 0.5 (-0.5), AY)
  | name, _ -> invalid_arg ("Rank: gate not rank-decomposable: " ^ name)

(* left-multiply the axis Pauli on qubit q onto the frame X^x Z^z *)
let left_mul axis q (c, x, z) =
  let bit = 1 lsl q in
  match axis with
  | AZ ->
      (* Z X^x = (-1)^{x_q} X^x Z *)
      (((if x land bit <> 0 then Cx.neg c else c), x, z lxor bit) : Cx.t * int * int)
  | AX -> (c, x lxor bit, z)
  | AY ->
      (* Y = i X Z: apply Z first (sign from x_q), then X, phase i *)
      let c = Cx.mul c Cx.i in
      let c = if x land bit <> 0 then Cx.neg c else c in
      (c, x lxor bit, z lxor bit)

let merge_branches ~cap branches =
  let arr = Array.of_list branches in
  Array.sort
    (fun (_, x1, z1) (_, x2, z2) ->
      if x1 <> x2 then compare x1 x2 else compare z1 z2)
    arr;
  let out = ref [] in
  let i = ref 0 in
  let m = Array.length arr in
  while !i < m do
    let _, x, z = arr.(!i) in
    let acc = ref Cx.zero in
    while
      !i < m
      && (let _, x', z' = arr.(!i) in
          x' = x && z' = z)
    do
      let c, _, _ = arr.(!i) in
      acc := Cx.add !acc c;
      incr i
    done;
    if Cx.norm2 !acc > prune then out := (!acc, x, z) :: !out
  done;
  let out = Array.of_list (List.rev !out) in
  if Array.length out > cap then
    invalid_arg "Rank: branch cap exceeded";
  out

let apply_gate ?(cap = default_branch_cap) (g : Circuit.Gate.t) t =
  if Analysis.Classify.gate_is_clifford g then begin
    t.branches <- Array.map (conj_gate g) t.branches;
    Stabilizer.Tableau.apply_gate g t.tab
  end
  else begin
    match (g.Circuit.Gate.controls, g.Circuit.Gate.targets) with
    | [], [ q ] ->
        let alpha, beta, axis = decompose g.Circuit.Gate.name g.Circuit.Gate.params in
        if Obs.enabled () then Obs.Metrics.counter_add "rank_splits_total" 1;
        let split =
          Array.fold_left
            (fun acc ((c, x, z) as br) ->
              let c', x', z' = left_mul axis q br in
              (Cx.mul beta c', x', z') :: (Cx.mul alpha c, x, z) :: acc)
            [] t.branches
        in
        t.branches <- merge_branches ~cap (List.rev split)
    | _ ->
        invalid_arg
          ("Rank: gate not rank-decomposable: " ^ g.Circuit.Gate.name)
  end

(* --------------------- expectations & densities ----------------------- *)

let popcount w =
  let rec go acc w = if w = 0 then acc else go (acc + 1) (w land (w - 1)) in
  go 0 w

(* <psi| M |psi> for the Hermitian Pauli M = i^{#Y} X^{mx} Z^{mz}
   (letter masks: Y sets both bits). [memo] caches the tableau
   expectation per resulting (x, z) word. *)
let expectation_masks t memo ~mx ~mz =
  let nb = Array.length t.branches in
  let ys = popcount (mx land mz) in
  let total = ref Cx.zero in
  for j = 0 to nb - 1 do
    let cj, xj, zj = t.branches.(j) in
    (* P_j^+ = (-1)^{|x_j & z_j|} X^{x_j} Z^{z_j} *)
    let sign_j = popcount (xj land zj) land 1 in
    for i = 0 to nb - 1 do
      let ci, xi, zi = t.branches.(i) in
      (* W = P_j^+ M P_i, accumulated left to right in the product
         convention: X^{x1}Z^{z1} X^{x2}Z^{z2}
                    = (-1)^{|z1 & x2|} X^{x1+x2} Z^{z1+z2} *)
      let signs = ref (sign_j + popcount (zj land mx)) in
      let xw = xj lxor mx and zw = zj lxor mz in
      signs := !signs + popcount (zw land xi);
      let xw = xw lxor xi and zw = zw lxor zi in
      (* convert back to the Hermitian letter word L(xw, zw):
         X^x Z^z = i^{-|x & z|} L *)
      let lw = popcount (xw land zw) in
      let e =
        match Hashtbl.find_opt memo (xw, zw) with
        | Some e -> e
        | None ->
            let e = Stabilizer.Tableau.expectation_pauli t.tab ~x:xw ~z:zw in
            Hashtbl.add memo (xw, zw) e;
            e
      in
      if e <> 0 then begin
        (* phase = (-1)^{signs} * i^{#Y of M} * i^{-lw} *)
        let quarter = ((ys - lw) mod 4) + 4 in
        let quarter = (quarter + if !signs land 1 = 1 then 2 else 0) land 3 in
        let ph =
          match quarter with
          | 0 -> Cx.one
          | 1 -> Cx.i
          | 2 -> Cx.neg Cx.one
          | _ -> Cx.neg Cx.i
        in
        let term = Cx.mul (Cx.mul (Cx.conj cj) ci) ph in
        total := Cx.add !total (if e = 1 then term else Cx.neg term)
      end
    done
  done;
  Cx.re !total

(* 2x2 letter matrices, entry (r, c) *)
let letter_entry letter r c =
  match letter with
  | 0 -> if r = c then Cx.one else Cx.zero (* I *)
  | 1 -> if r <> c then Cx.one else Cx.zero (* X *)
  | 2 ->
      (* Y = [[0, -i], [i, 0]] *)
      if r = 0 && c = 1 then Cx.neg Cx.i
      else if r = 1 && c = 0 then Cx.i
      else Cx.zero
  | _ ->
      (* Z *)
      if r <> c then Cx.zero else if r = 0 then Cx.one else Cx.neg Cx.one

(* rho on [keep] via the Pauli expansion: bit j of the reduced index is
   [List.nth keep j], matching [Statevec.reduced_density] *)
let reduced_density t keep =
  List.iter
    (fun q ->
      if q < 0 || q >= t.n then
        invalid_arg "Rank.reduced_density: qubit out of range")
    keep;
  let keep_arr = Array.of_list keep in
  let s = Array.length keep_arr in
  let dk = 1 lsl s in
  let rho = Cmat.create dk dk in
  let memo = Hashtbl.create 64 in
  (* sigma encodes s letters, 2 bits each: 0=I 1=X 2=Y 3=Z *)
  let letters = Array.make s 0 in
  for sigma = 0 to (1 lsl (2 * s)) - 1 do
    let mx = ref 0 and mz = ref 0 in
    for j = 0 to s - 1 do
      let letter = (sigma lsr (2 * j)) land 3 in
      letters.(j) <- letter;
      let bit = 1 lsl keep_arr.(j) in
      (match letter with
      | 1 -> mx := !mx lor bit
      | 2 ->
          mx := !mx lor bit;
          mz := !mz lor bit
      | 3 -> mz := !mz lor bit
      | _ -> ())
    done;
    let ev = expectation_masks t memo ~mx:!mx ~mz:!mz in
    if Float.abs ev > 0. then begin
      let w = ev /. float_of_int dk in
      for r = 0 to dk - 1 do
        for c = 0 to dk - 1 do
          let entry = ref (Cx.make w 0.) in
          (try
             for j = 0 to s - 1 do
               let e =
                 letter_entry letters.(j) ((r lsr j) land 1) ((c lsr j) land 1)
               in
               if Cx.norm2 e = 0. then raise Exit;
               entry := Cx.mul !entry e
             done;
             let cur = Cmat.get rho r c in
             Cmat.set rho r c (Cx.add cur !entry)
           with Exit -> ())
        done
      done
    end
  done;
  rho
