(** Sum-over-stabilizers (stabilizer-rank) engine for near-Clifford
    circuits: the state is a weighted sum of Pauli frames over one
    shared stabilizer tableau,
    [|psi> = sum_i c_i X^{x_i} Z^{z_i} |phi>].

    Clifford gates cost a tableau update plus a bitwise conjugation of
    every frame; each rank-decomposable non-Clifford gate
    ([Analysis.Classify.gate_rank_decomposable]) splits as
    [alpha I + beta Q] and at most doubles the frame list, so [k] such
    gates cost at most [2^k] frames. All expectations are exact — no
    sampling, no truncation beyond merging identical frames and
    pruning coefficients below [1e-12] in magnitude. At most 62 qubits
    (frames are int bitmasks). *)

type t

val default_branch_cap : int
(** Default bound on the frame list (4096 = 2^12 splits). *)

(** [make n input] is basis state [|input>] on [n] qubits (one frame). *)
val make : int -> int -> t

val num_qubits : t -> int

(** Current number of weighted Pauli frames. *)
val branch_count : t -> int

(** [apply_gate ?cap g t] applies a Clifford or rank-decomposable gate
    in place; raises [Invalid_argument] on any other gate or when the
    merged frame list exceeds [cap]. *)
val apply_gate : ?cap:int -> Circuit.Gate.t -> t -> unit

(** [reduced_density t keep] — exact reduced density matrix on [keep]
    (bit [j] of the reduced index is [List.nth keep j]) via the Pauli
    expansion: [4^|keep|] stabilizer expectations, each a
    [branch_count^2] sum of memoized tableau lookups. *)
val reduced_density : t -> int list -> Linalg.Cmat.t
