type t = {
  mutable executions : int;
  mutable shots : int;
  mutable gate_ops : int;
  mutable one_qubit_gates : int;
  mutable two_qubit_gates : int;
  mutable measurements : int;
}

let create () =
  {
    executions = 0;
    shots = 0;
    gate_ops = 0;
    one_qubit_gates = 0;
    two_qubit_gates = 0;
    measurements = 0;
  }

let reset t =
  t.executions <- 0;
  t.shots <- 0;
  t.gate_ops <- 0;
  t.one_qubit_gates <- 0;
  t.two_qubit_gates <- 0;
  t.measurements <- 0

let record_circuit t circuit ~shots =
  let gates = Circuit.gate_count circuit in
  let two_q = Circuit.two_qubit_count circuit in
  let meas =
    List.fold_left
      (fun acc i -> match i with Circuit.Instr.Measure _ -> acc + 1 | _ -> acc)
      0 (Circuit.instrs circuit)
  in
  t.executions <- t.executions + 1;
  t.shots <- t.shots + shots;
  t.gate_ops <- t.gate_ops + (shots * gates);
  t.one_qubit_gates <- t.one_qubit_gates + (shots * (gates - two_q));
  t.two_qubit_gates <- t.two_qubit_gates + (shots * two_q);
  t.measurements <- t.measurements + (shots * max 1 meas)

let record_many t circuit ~circuits ~shots_each =
  let gates = Circuit.gate_count circuit in
  let two_q = Circuit.two_qubit_count circuit in
  let total_shots = circuits * shots_each in
  t.executions <- t.executions + circuits;
  t.shots <- t.shots + total_shots;
  t.gate_ops <- t.gate_ops + (total_shots * gates);
  t.one_qubit_gates <- t.one_qubit_gates + (total_shots * (gates - two_q));
  t.two_qubit_gates <- t.two_qubit_gates + (total_shots * two_q);
  t.measurements <- t.measurements + total_shots

(* like [record_many] but with an exact total instead of a per-circuit
   count — sequential shot budgets spend unequal shots per execution *)
let record_total t circuit ~executions ~total_shots =
  let gates = Circuit.gate_count circuit in
  let two_q = Circuit.two_qubit_count circuit in
  t.executions <- t.executions + executions;
  t.shots <- t.shots + total_shots;
  t.gate_ops <- t.gate_ops + (total_shots * gates);
  t.one_qubit_gates <- t.one_qubit_gates + (total_shots * (gates - two_q));
  t.two_qubit_gates <- t.two_qubit_gates + (total_shots * two_q);
  t.measurements <- t.measurements + total_shots

let add t other =
  t.executions <- t.executions + other.executions;
  t.shots <- t.shots + other.shots;
  t.gate_ops <- t.gate_ops + other.gate_ops;
  t.one_qubit_gates <- t.one_qubit_gates + other.one_qubit_gates;
  t.two_qubit_gates <- t.two_qubit_gates + other.two_qubit_gates;
  t.measurements <- t.measurements + other.measurements

(* Static estimate of what characterizing [c] would cost on a device: one
   full tomography pass per tracepoint, 3^k measurement settings for a
   k-qubit tracepoint, [shots] shots per setting. The 3^k is saturated so
   wide tracepoints can never wrap the meter's int fields — the estimate
   only ever feeds a threshold comparison, where "absurdly large" is as
   actionable as the exact value. *)
let estimate_characterization ?(shots = 256) c =
  let t = create () in
  let gates = max 1 (Circuit.gate_count c) in
  (* keep total_shots * gates comfortably inside int range *)
  let cap = max 1 (max_int / (max 1 shots * gates * 4)) in
  let pow3_sat k =
    let rec go acc k =
      if k <= 0 then acc else if acc >= cap / 3 then cap else go (acc * 3) (k - 1)
    in
    go 1 k
  in
  List.iter
    (function
      | Circuit.Instr.Tracepoint { qubits; _ } ->
          record_many t c ~circuits:(pow3_sat (List.length qubits))
            ~shots_each:shots
      | _ -> ())
    (Circuit.instrs c);
  t

(* --- static simulation-cost estimators (floats: immune to overflow) --- *)

(* amplitude-updates of one dense statevector pass: 2^n per gate, plus
   one 2^n allocation/initialization *)
let dense_sim_ops c =
  let n = Circuit.num_qubits c in
  float_of_int (Circuit.gate_count c + 1) *. Float.ldexp 1. n

(* per-tracepoint cone runs on the sparse engine: the static support
   bound times the cone's gate count (the engine touches only occupied
   pairs, so the bound is also a per-gate work bound) *)
let sparse_sim_ops c =
  List.fold_left
    (fun acc cone ->
      let sub, _ = Analysis.Lightcone.restrict c cone in
      let bound = Analysis.Classify.support_bound ~cap:(1 lsl 30) sub in
      acc
      +. (float_of_int bound *. float_of_int (Circuit.gate_count sub + 1)))
    0. (Analysis.Lightcone.cones c)

(* per-tracepoint cone runs on the stabilizer-rank engine: 2^k Pauli
   frames, each Clifford gate costs an O(n^2)-ish tableau update plus a
   per-frame conjugation *)
let rank_sim_ops c =
  List.fold_left
    (fun acc cone ->
      let sub, _ = Analysis.Lightcone.restrict c cone in
      let n = Circuit.num_qubits sub in
      let k = min 30 (Analysis.Classify.non_clifford_count sub) in
      acc
      +. Float.ldexp 1. k
         *. float_of_int (Circuit.gate_count sub + 1)
         *. float_of_int (n * n))
    0. (Analysis.Lightcone.cones c)

let hardware_seconds t =
  (60e-9 *. float_of_int t.one_qubit_gates)
  +. (340e-9 *. float_of_int t.two_qubit_gates)
  +. (732e-9 *. float_of_int t.measurements)

let pp ppf t =
  Format.fprintf ppf
    "executions=%d shots=%d ops=%d (1q=%d 2q=%d meas=%d) est-hw=%.3gs"
    t.executions t.shots t.gate_ops t.one_qubit_gates t.two_qubit_gates
    t.measurements (hardware_seconds t)
