(** Trajectory-based state-vector execution of circuits.

    One [run] is a single quantum trajectory: mid-circuit measurements are
    sampled and collapse the state, classically-controlled gates read the
    sampled bits, and (optional) depolarizing noise is injected as random
    Pauli errors. Tracepoints snapshot the reduced density matrix of their
    qubits as the trajectory passes. *)

type outcome = {
  state : Qstate.Statevec.t;  (** final state of the trajectory *)
  clbits : int array;  (** final classical register *)
  traces : (int * Linalg.Cmat.t) list;
      (** tracepoint id -> reduced density matrix, in program order *)
}

(** [apply_gate ?rng ?noise g st] applies one gate (mutating [st]),
    injecting a sampled Pauli error after it when [noise] is given. *)
val apply_gate : ?rng:Stats.Rng.t -> ?noise:Noise.t -> Circuit.Gate.t -> Qstate.Statevec.t -> unit

(** [run ?rng ?noise ?initial ?meter c] executes one trajectory. [initial]
    defaults to [|0...0>]; [meter] (if given) accounts one execution with one
    shot. *)
val run :
  ?rng:Stats.Rng.t ->
  ?noise:Noise.t ->
  ?initial:Qstate.Statevec.t ->
  ?meter:Cost.t ->
  Circuit.t ->
  outcome

(** [is_deterministic c] holds when the circuit has no measurement, reset or
    feedback, so a single ideal trajectory already yields exact tracepoint
    states. *)
val is_deterministic : Circuit.t -> bool

(** [stabilizer_applicable ?cap c] — true when every tracepoint state of
    [c] can be computed on the stabilizer tableau: no measurement, reset or
    feedback, all gates Clifford ({!Analysis.Classify}), and every
    tracepoint's lightcone at most [cap] (default 12) qubits wide. The
    check is purely static. *)
val stabilizer_applicable : ?cap:int -> Circuit.t -> bool

(** [stabilizer_traces ?prep ?meter c] computes every tracepoint's reduced
    density matrix on the stabilizer tableau, lightcone-restricted: one
    tableau run per tracepoint over only its cone qubits, so the cost is
    independent of the full register width. [prep] (default 0) prepares the
    computational-basis state with bit [q] of [prep] on qubit [q].
    Precondition: {!stabilizer_applicable}. *)
val stabilizer_traces :
  ?prep:int -> ?meter:Cost.t -> Circuit.t -> (int * Linalg.Cmat.t) list

(** [sparse_applicable ?support_cap ?tp_cap c] — true when every
    tracepoint of [c] is computable on the sparse coordinate engine
    within the caps: deterministic, sparse-dispatchable gates, every
    cone's static [Analysis.Classify.support_bound] at most
    [support_cap] (default [2^16]) and every tracepoint at most
    [tp_cap] (default 8) qubits wide. Purely static. *)
val sparse_applicable : ?support_cap:int -> ?tp_cap:int -> Circuit.t -> bool

(** [rank_applicable ?cutoff ?tp_cap c] — true when every gate is
    rank-decomposable ({!Analysis.Classify.gate_rank_decomposable}) and
    every tracepoint cone has at most [cutoff] (default 8) non-Clifford
    gates, at most 62 qubits, and a tracepoint at most [tp_cap]
    (default 4) qubits wide. Purely static. *)
val rank_applicable : ?cutoff:int -> ?tp_cap:int -> Circuit.t -> bool

(** The dense-amplitude wall: [`Auto] considers the sparse and
    stabilizer-rank engines only when one dense pass would exceed this
    many amplitude updates (default [2^22]). Mutable so tests and
    benchmarks can force or disable the routing. *)
val dense_amp_wall : float ref

(** [auto_route ?wall c] is the static routing decision for an ideal
    program started from [|0...0>]: [`Stabilizer] for Clifford programs
    (the PR 4 route, unchanged), and above the wall [`Sparse] when the
    support-bound cost model beats dense by 4x, else [`Rank] for
    near-Clifford programs; [None] means the dense engines. [wall]
    (default [!dense_amp_wall]) is an explicit parameter so concurrent
    callers — e.g. server requests — never race on the global ref. *)
val auto_route : ?wall:float -> Circuit.t -> [ `Stabilizer | `Sparse | `Rank ] option

(** Estimated simulation class for diagnostics (lint MQ018): the
    routing preference order, ignoring the dense wall. *)
type sim_class = Class_dense | Class_sparse | Class_stabilizer | Class_rank of int

val sim_class : Circuit.t -> sim_class

(** [sparse_traces ?prep ?meter c] — every tracepoint's reduced density
    matrix on the sparse engine, one lightcone-restricted pass per
    tracepoint from basis state [prep]. Cost scales with the occupied
    support, not [2^n]. Precondition: {!sparse_applicable}. *)
val sparse_traces :
  ?prep:int -> ?meter:Cost.t -> Circuit.t -> (int * Linalg.Cmat.t) list

(** [rank_traces ?prep ?meter c] — every tracepoint's reduced density
    matrix on the sum-over-stabilizers engine (exact, no sampling), one
    lightcone-restricted pass per tracepoint from basis state [prep].
    [k] non-Clifford gates in a cone cost at most [2^k] weighted
    tableau frames. Precondition: {!rank_applicable}. *)
val rank_traces :
  ?prep:int -> ?meter:Cost.t -> Circuit.t -> (int * Linalg.Cmat.t) list

(** [tracepoint_states ?pool ?rng ?noise ?trajectories ?initial ?engine
    ?meter c] returns the expected reduced density matrix at every
    tracepoint. [`Auto] (default) applies {!auto_route} to ideal
    programs starting from [|0...0>] — Clifford programs go to
    {!stabilizer_traces}, and past {!dense_amp_wall} low-occupancy
    programs go to {!sparse_traces} and near-Clifford programs to
    {!rank_traces}; other deterministic ideal circuits use one
    state-vector pass; everything else averages [trajectories] (default
    64) runs fanned out over [pool] (default [Parallel.Pool.global ()])
    with one [Stats.Rng.split] child per trajectory and an in-order
    merge — results are bit-identical for any domain count under a
    fixed seed. [`Stabilizer]/[`Sparse]/[`Rank] force their route and
    raise [Invalid_argument] when inapplicable; [`Statevec] disables
    the routing entirely. *)
val tracepoint_states :
  ?pool:Parallel.Pool.t ->
  ?rng:Stats.Rng.t ->
  ?noise:Noise.t ->
  ?trajectories:int ->
  ?initial:Qstate.Statevec.t ->
  ?engine:[ `Auto | `Statevec | `Stabilizer | `Sparse | `Rank ] ->
  ?meter:Cost.t ->
  ?wall:float ->
  Circuit.t ->
  (int * Linalg.Cmat.t) list

(** [sample_counts ?pool ?rng ?noise ?initial ?meter ~shots c] samples the
    final computational-basis distribution. Measurement-free ideal circuits
    run once and draw shots from the cumulative distribution; otherwise each
    shot is a fresh trajectory run on the pool with its own split child
    generator (domain-count independent, like {!tracepoint_states}). Returns
    sorted [(basis_index, count)] pairs over the full register. *)
val sample_counts :
  ?pool:Parallel.Pool.t ->
  ?rng:Stats.Rng.t ->
  ?noise:Noise.t ->
  ?initial:Qstate.Statevec.t ->
  ?meter:Cost.t ->
  shots:int ->
  Circuit.t ->
  (int * int) list

(** [unitary ?pool c] materializes the circuit unitary column by column
    (columns are fanned out over the pool for dimension >= 256; fails on
    non-unitary instructions). *)
val unitary : ?pool:Parallel.Pool.t -> Circuit.t -> Linalg.Cmat.t
