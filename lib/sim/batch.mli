(** Batched execution of segment-compiled circuits.

    A {!plan} — normally produced by [Transpile.Segments.compile] — is a
    circuit whose purely-unitary segments have been fused into block
    operators, interleaved with the fences (tracepoints, measurements,
    resets, classical feedback) that delimited them. {!run} packs N input
    state vectors as the columns of one row-major
    [Linalg.Cmat]-backed buffer (row [i] = amplitude [i] of every column,
    contiguous) and applies each fused operator to the entire batch with
    allocation-free kernels: a gather/GEMM kernel for k-qubit blocks (the
    full-width case is a plain cache-blocked [Cmat.mul_into]) and a
    row-sweeping kernel for single controlled gates. Both the buffer and
    its gather workspace are allocated once per column block and reused
    across every operator — no per-gate allocation.

    {b Determinism.} Every kernel processes each column independently with
    a fixed k-ascending accumulation order that depends neither on the
    number of columns packed together nor on which pool worker handles the
    column, and stochastic fences draw only from that column's own
    generator. A packed {!run} is therefore bit-identical, per column, to
    running each column alone through {!run_seq} — for any batch size,
    column-block size and domain count. Agreement with the gate-by-gate
    [Engine.run] is exact in structure (clbits, trace ids) and ~1e-15 in
    amplitudes: fusing a segment into one operator reorders its
    floating-point arithmetic.

    {b Memory.} Batches are processed in bounded column blocks (at most
    ~2^21 amplitudes per component array), so peak memory does not grow
    with the sample count. *)

(** A fused segment operator: [u] is the [2^k x 2^k] unitary of the
    segment restricted to [qubits] (sorted ascending; local index bit [j]
    corresponds to global qubit [qubits.(j)]). *)
type block = { qubits : int array; u : Linalg.Cmat.t }

type item =
  | Block of block  (** apply a fused segment operator *)
  | Direct of Circuit.Gate.t
      (** apply one gate via the row-sweeping kernel (used when a gate's
          support is too wide to fuse profitably, e.g. a many-control
          Toffoli) *)
  | Fence of Circuit.Instr.t
      (** a non-unitary instruction, interpreted per column; never
          [Instr.Gate], and [Barrier] is a no-op *)

(** A compiled execution plan. [source_ops] records how many unitary gate
    applications the source circuit performed per run; compare with
    {!ops} for the fusion ratio. The representation is deliberately fully
    exposed so tests can build (deliberately broken) plans by hand. *)
type plan = {
  num_qubits : int;
  num_clbits : int;
  items : item list;
  source_ops : int;
}

(** [ops plan] is the number of operator applications ({!Block} plus
    {!Direct}) one column performs — the batched counterpart of the
    source circuit's gate count. *)
val ops : plan -> int

(** [is_deterministic plan] holds when the plan has no measurement, reset
    or feedback fence (mirrors [Engine.is_deterministic]). *)
val is_deterministic : plan -> bool

(** [run ?pool ?rngs plan states] executes the plan once per input state,
    all packed into one batch, and returns per-column outcomes in input
    order. [rngs], when given, must hold one generator per column (used
    for that column's measurements/resets); when absent each column gets a
    fresh default generator, like [Engine.run]. Columns are fanned out
    over [pool] (default [Parallel.Pool.global ()]) in chunks; results are
    bit-identical for any domain count. *)
val run :
  ?pool:Parallel.Pool.t ->
  ?rngs:Stats.Rng.t array ->
  plan ->
  Qstate.Statevec.t array ->
  Engine.outcome array

(** [run_traces ?pool ?rngs plan ~count ~init] is {!run} with the input
    column [i] produced on demand by [init i] and only the tracepoint
    snapshots kept — final states are never materialized, so memory stays
    bounded for large [count]. *)
val run_traces :
  ?pool:Parallel.Pool.t ->
  ?rngs:Stats.Rng.t array ->
  plan ->
  count:int ->
  init:(int -> Qstate.Statevec.t) ->
  (int * Linalg.Cmat.t) list array

(** [run_seq ?rng plan st] executes one column alone — the reference
    "sequential path" that batched runs are tested bit-identical
    against. *)
val run_seq : ?rng:Stats.Rng.t -> plan -> Qstate.Statevec.t -> Engine.outcome
