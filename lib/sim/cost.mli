(** Mutable cost meters for verification-overhead accounting.

    The paper reports overhead as the number of quantum operations and
    program executions, and estimates hardware wall-clock from IBMQ gate
    times (60 ns single-qubit, 340 ns two-qubit, 732 ns readout). *)

type t = {
  mutable executions : int;  (** circuit submissions (one input, many shots) *)
  mutable shots : int;  (** total repetitions across executions *)
  mutable gate_ops : int;  (** quantum gate applications, all shots counted *)
  mutable one_qubit_gates : int;
  mutable two_qubit_gates : int;
  mutable measurements : int;
}

val create : unit -> t
val reset : t -> unit

(** [record_circuit t circuit ~shots] accounts one execution of [circuit]
    with the given number of shots. *)
val record_circuit : t -> Circuit.t -> shots:int -> unit

(** [record_many t circuit ~circuits ~shots_each] accounts [circuits]
    distinct submissions of (variants of) [circuit], each with
    [shots_each] shots — e.g. one tomography pass over many measurement
    settings. *)
val record_many : t -> Circuit.t -> circuits:int -> shots_each:int -> unit

(** [record_total t circuit ~executions ~total_shots] accounts
    [executions] submissions spending [total_shots] shots in total —
    used by sequential shot budgets, where executions spend unequal
    shots. *)
val record_total : t -> Circuit.t -> executions:int -> total_shots:int -> unit

(** [add t other] accumulates [other] into [t]. *)
val add : t -> t -> unit

(** [estimate_characterization ?shots c] statically estimates the device
    cost of characterizing [c]: one state-tomography pass per tracepoint
    (3^k settings for k tracepoint qubits, saturated against overflow),
    [shots] (default 256) shots per setting. Feeds the [MQ017] lint
    diagnostic's cost threshold. *)
val estimate_characterization : ?shots:int -> Circuit.t -> t

(** [dense_sim_ops c] — amplitude updates of one dense statevector run:
    [2^n * (gates + 1)], as a float (no overflow at any width). *)
val dense_sim_ops : Circuit.t -> float

(** [sparse_sim_ops c] — per-tracepoint lightcone runs on the sparse
    engine: [Analysis.Classify.support_bound] of each cone times its
    gate count. *)
val sparse_sim_ops : Circuit.t -> float

(** [rank_sim_ops c] — per-tracepoint lightcone runs on the
    stabilizer-rank engine: [2^k] Pauli frames ([k] non-Clifford gates
    in the cone) times gates times [n^2] tableau work. *)
val rank_sim_ops : Circuit.t -> float

(** [hardware_seconds t] estimates device wall-clock from the paper's quoted
    IBMQ timings. *)
val hardware_seconds : t -> float

val pp : Format.formatter -> t -> unit
