open Qstate

type branch = { weight : float; rho : Density.t; clbits : int array }

type outcome = {
  branches : branch list;
  traces : (int * Linalg.Cmat.t) list;
}

let apply_gate_dm noise (g : Circuit.Gate.t) rho =
  if Obs.enabled () then
    Obs.Metrics.counter_add
      ~labels:[ ("kind", g.Circuit.Gate.name) ]
      "dm_gate_applied_total" 1;
  let rho =
    match (g.Circuit.Gate.name, g.Circuit.Gate.targets) with
    | "swap", [ a; b ] ->
        if g.Circuit.Gate.controls <> [] then
          invalid_arg "Dm_engine: controlled swap unsupported";
        rho
        |> Density.apply_controlled ~controls:[ a ] Gates.x b
        |> Density.apply_controlled ~controls:[ b ] Gates.x a
        |> Density.apply_controlled ~controls:[ a ] Gates.x b
    | name, [ tgt ] ->
        let u = Gates.by_name name g.Circuit.Gate.params in
        Density.apply_controlled ~controls:g.Circuit.Gate.controls u tgt rho
    | _ -> invalid_arg "Dm_engine: malformed gate"
  in
  let qs = Circuit.Gate.qubits g in
  let p = if List.length qs >= 2 then noise.Noise.p2 else noise.Noise.p1 in
  if p > 0. then
    List.fold_left (fun r q -> Density.apply_kraus (Noise.kraus1 p) q r) rho qs
  else rho

let run ?(noise = Noise.ideal) ?initial ?meter c =
  Obs.Span.with_ ~name:"dm_engine.run" @@ fun () ->
  let n = Circuit.num_qubits c in
  let init =
    match initial with
    | Some rho ->
        if Density.num_qubits rho <> n then
          invalid_arg "Dm_engine.run: initial state qubit mismatch";
        rho
    | None -> Density.basis n 0
  in
  (match meter with
  | Some m -> Cost.record_circuit m c ~shots:1
  | None -> ());
  let branches =
    ref [ { weight = 1.; rho = init; clbits = Array.make (Circuit.num_clbits c) 0 } ]
  in
  let traces = ref [] in
  List.iter
    (fun instr ->
      match instr with
      | Circuit.Instr.Gate g ->
          branches :=
            List.map (fun b -> { b with rho = apply_gate_dm noise g b.rho }) !branches
      | Circuit.Instr.Tracepoint { id; qubits } ->
          let avg = ref None in
          List.iter
            (fun b ->
              let reduced =
                Density.mat (Density.partial_trace ~keep:qubits b.rho)
              in
              let weighted = Linalg.Cmat.rscale b.weight reduced in
              avg :=
                Some
                  (match !avg with
                  | None -> weighted
                  | Some acc -> Linalg.Cmat.add acc weighted))
            !branches;
          (match !avg with
          | Some m -> traces := (id, m) :: !traces
          | None -> ())
      | Circuit.Instr.Measure { qubit; clbit } ->
          let ro = noise.Noise.readout in
          branches :=
            List.concat_map
              (fun b ->
                let (p0, r0), (p1, r1) = Density.measure_qubit b.rho qubit in
                let mk outcome p rho =
                  if p <= 1e-12 then []
                  else
                    let flip_p = ro in
                    let record bit prob =
                      if prob <= 1e-12 then []
                      else begin
                        let clbits = Array.copy b.clbits in
                        clbits.(clbit) <- bit;
                        [ { weight = b.weight *. p *. prob; rho; clbits } ]
                      end
                    in
                    record outcome (1. -. flip_p) @ record (1 - outcome) flip_p
                in
                mk 0 p0 r0 @ mk 1 p1 r1)
              !branches
      | Circuit.Instr.Reset q ->
          branches :=
            List.map
              (fun b ->
                let (p0, r0), (p1, r1) = Density.measure_qubit b.rho q in
                let fixed1 = Density.apply1 Gates.x q r1 in
                let parts =
                  (if p0 > 0. then [ (p0, r0) ] else [])
                  @ if p1 > 0. then [ (p1, fixed1) ] else []
                in
                { b with rho = Density.mix parts })
              !branches
      | Circuit.Instr.If_gate { clbits = cbs; value; gate } ->
          branches :=
            List.map
              (fun b ->
                let read =
                  List.fold_left
                    (fun (acc, k) bit -> (acc lor (b.clbits.(bit) lsl k), k + 1))
                    (0, 0) cbs
                  |> fst
                in
                if read = value then
                  { b with rho = apply_gate_dm noise gate b.rho }
                else b)
              !branches
      | Circuit.Instr.Barrier _ -> ())
    (Circuit.instrs c);
  { branches = !branches; traces = List.rev !traces }

let final_density o =
  Density.mix (List.map (fun b -> (b.weight, b.rho)) o.branches)

let probs ?noise ?initial c =
  let o = run ?noise ?initial c in
  Density.probs (final_density o)
