(** Sparse state-vector simulation — a thin functional wrapper over the
    engine's [Sim.Sparse] (one shared kernel implementation). Exact, and
    fast while the support stays small — the substrate for the
    automata-style equivalence baseline, whose cost profile (cheap on
    structured circuits, exponential blow-up on dense superpositions) it
    reproduces. *)

type t

(** [basis n k] starts in [|k>]. *)
val basis : int -> int -> t

val num_qubits : t -> int

(** [support t] is the number of basis states with non-negligible
    amplitude. *)
val support : t -> int

(** [apply_gate g t] applies a circuit gate. *)
val apply_gate : Circuit.Gate.t -> t -> t

(** [run c ~input] pushes a basis input through all gates of a measurement-
    free circuit. *)
val run : Circuit.t -> input:int -> t

(** [amplitude t k] reads one amplitude. *)
val amplitude : t -> int -> Linalg.Cx.t

(** [equal ?eps a b] compares two sparse states up to global phase. *)
val equal : ?eps:float -> t -> t -> bool

(** [to_statevec t] densifies (for tests). *)
val to_statevec : t -> Qstate.Statevec.t
