(* Thin wrapper over [Sim.Sparse] — the engine owns the single sparse
   kernel implementation; this module keeps the automata baseline's
   original functional interface (apply_gate returns a new state). *)

open Linalg

type t = Sim.Sparse.t

let basis = Sim.Sparse.basis
let num_qubits = Sim.Sparse.num_qubits
let support = Sim.Sparse.support

let apply_gate (g : Circuit.Gate.t) t =
  let t = Sim.Sparse.copy t in
  Sim.Sparse.apply_gate g t;
  t

let run c ~input =
  let t = ref (basis (Circuit.num_qubits c) input) in
  List.iter
    (fun instr ->
      match instr with
      | Circuit.Instr.Gate g -> Sim.Sparse.apply_gate g !t
      | Circuit.Instr.Tracepoint _ | Circuit.Instr.Barrier _ -> ()
      | _ -> invalid_arg "Sparse_sim.run: non-unitary instruction")
    (Circuit.instrs c);
  !t

let amplitude = Sim.Sparse.amplitude

let equal ?(eps = 1e-9) a b =
  num_qubits a = num_qubits b
  &&
  (* find the global-phase factor from the largest amplitude of a *)
  let best = ref None in
  List.iter
    (fun (k, v) ->
      match !best with
      | Some (_, bv) when Cx.norm2 bv >= Cx.norm2 v -> ()
      | _ -> best := Some (k, v))
    (Sim.Sparse.entries a);
  match !best with
  | None -> support b = 0
  | Some (k, va) ->
      let vb = amplitude b k in
      if Cx.norm vb <= eps then false
      else begin
        let phase = Cx.div va vb in
        let ok = ref (Float.abs (Cx.norm phase -. 1.) < 1e-6) in
        List.iter
          (fun (k, va) ->
            if not (Cx.equal ~eps va (Cx.mul phase (amplitude b k))) then
              ok := false)
          (Sim.Sparse.entries a);
        List.iter
          (fun (k, vb) ->
            if not (Cx.equal ~eps (amplitude a k) (Cx.mul phase vb)) then
              ok := false)
          (Sim.Sparse.entries b);
        !ok
      end

let to_statevec = Sim.Sparse.to_statevec
