exception
  Parse_error of {
    line : int;
    column : int;  (** 1-based; 0 when no precise column is known *)
    token : string;  (** offending token text; [""] when not token-level *)
    message : string;
  }

let fail ?(column = 0) ?(token = "") line fmt =
  Format.kasprintf
    (fun message -> raise (Parse_error { line; column; token; message }))
    fmt

(* ---------------- lexer ---------------- *)

type token =
  | Ident of string
  | Number of float
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Comma
  | Semicolon
  | Arrow
  | Eqeq
  | Minus
  | Plus
  | Star
  | Slash
  | Lbrace
  | Rbrace
  | Str of string

let token_text = function
  | Ident s -> s
  | Number f -> Printf.sprintf "%g" f
  | Lparen -> "("
  | Rparen -> ")"
  | Lbracket -> "["
  | Rbracket -> "]"
  | Comma -> ","
  | Semicolon -> ";"
  | Arrow -> "->"
  | Eqeq -> "=="
  | Minus -> "-"
  | Plus -> "+"
  | Star -> "*"
  | Slash -> "/"
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Str s -> "\"" ^ s ^ "\""

type lexed = { token : token; line : int; col : int }

let tokenize src =
  let tokens = ref [] in
  let line = ref 1 in
  let bol = ref 0 in
  let n = String.length src in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    let start = !i in
    let push t =
      tokens := { token = t; line = !line; col = start - !bol + 1 } :: !tokens
    in
    if c = '\n' then begin
      incr line;
      incr i;
      bol := !i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let start = !i in
      while
        !i < n
        &&
        let c = src.[!i] in
        (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9')
        || c = '_'
      do
        incr i
      done;
      push (Ident (String.sub src start (!i - start)))
    end
    else if (c >= '0' && c <= '9') || c = '.' then begin
      let start = !i in
      while
        !i < n
        &&
        let c = src.[!i] in
        (c >= '0' && c <= '9') || c = '.' || c = 'e' || c = 'E'
        || ((c = '+' || c = '-')
           && !i > start
           && (src.[!i - 1] = 'e' || src.[!i - 1] = 'E'))
      do
        incr i
      done;
      let text = String.sub src start (!i - start) in
      match float_of_string_opt text with
      | Some f -> push (Number f)
      | None ->
          fail ~column:(start - !bol + 1) ~token:text !line "bad number %S"
            text
    end
    else if c = '"' then begin
      incr i;
      let start = !i in
      while !i < n && src.[!i] <> '"' do
        incr i
      done;
      if !i >= n then
        fail ~column:(start - !bol + 1) !line "unterminated string";
      push (Str (String.sub src start (!i - start)));
      incr i
    end
    else begin
      (match c with
      | '(' -> push Lparen
      | ')' -> push Rparen
      | '[' -> push Lbracket
      | ']' -> push Rbracket
      | ',' -> push Comma
      | ';' -> push Semicolon
      | '-' ->
          if !i + 1 < n && src.[!i + 1] = '>' then begin
            push Arrow;
            incr i
          end
          else push Minus
      | '=' ->
          if !i + 1 < n && src.[!i + 1] = '=' then begin
            push Eqeq;
            incr i
          end
          else
            fail ~column:(start - !bol + 1) ~token:"=" !line "unexpected '='"
      | '+' -> push Plus
      | '*' -> push Star
      | '/' -> push Slash
      | '{' -> push Lbrace
      | '}' -> push Rbrace
      | c ->
          fail ~column:(start - !bol + 1) ~token:(String.make 1 c) !line
            "unexpected character %C" c);
      incr i
    end
  done;
  List.rev !tokens

(* ---------------- parser ---------------- *)

type state = { mutable toks : lexed list }

let peek st = match st.toks with [] -> None | t :: _ -> Some t

(* fail at a specific token, reporting its position and text *)
let fail_at (t : lexed) fmt =
  fail ~column:t.col ~token:(token_text t.token) t.line fmt

let next st =
  match st.toks with
  | [] -> fail 0 "unexpected end of input"
  | t :: rest ->
      st.toks <- rest;
      t

let expect st token what =
  let t = next st in
  if t.token <> token then fail_at t "expected %s" what

let expect_ident st =
  let t = next st in
  match t.token with
  | Ident s -> s
  | _ -> fail_at t "expected identifier"

let expect_int st =
  let t = next st in
  match t.token with
  | Number f when Float.is_integer f -> int_of_float f
  | _ -> fail_at t "expected integer"

(* expression grammar for gate parameters; [env] binds the formal
   parameters of user gate definitions *)
let rec parse_expr ?(env = []) st =
  let lhs = parse_term ~env st in
  match peek st with
  | Some { token = Plus; _ } ->
      ignore (next st);
      lhs +. parse_expr ~env st
  | Some { token = Minus; _ } ->
      ignore (next st);
      lhs -. parse_expr ~env st
  | _ -> lhs

and parse_term ~env st =
  let lhs = parse_factor ~env st in
  match peek st with
  | Some { token = Star; _ } ->
      ignore (next st);
      lhs *. parse_term ~env st
  | Some { token = Slash; _ } ->
      ignore (next st);
      lhs /. parse_term ~env st
  | _ -> lhs

and parse_factor ~env st =
  let t = next st in
  match t.token with
  | Number f -> f
  | Ident "pi" -> Float.pi
  | Ident name when List.mem_assoc name env -> List.assoc name env
  | Minus -> -.parse_factor ~env st
  | Lparen ->
      let v = parse_expr ~env st in
      expect st Rparen ")";
      v
  | _ -> fail_at t "expected parameter expression"

(* q[i] or q[i,j,k]; returns index list *)
let parse_qref st =
  let _name = expect_ident st in
  expect st Lbracket "[";
  let first = expect_int st in
  let rec more acc =
    match peek st with
    | Some { token = Comma; _ } ->
        ignore (next st);
        more (expect_int st :: acc)
    | _ -> List.rev acc
  in
  let indices = more [ first ] in
  expect st Rbracket "]";
  indices

let parse_params ?(env = []) st =
  match peek st with
  | Some { token = Lparen; _ } ->
      ignore (next st);
      let rec go acc =
        let v = parse_expr ~env st in
        match peek st with
        | Some { token = Comma; _ } ->
            ignore (next st);
            go (v :: acc)
        | _ ->
            expect st Rparen ")";
            List.rev (v :: acc)
      in
      go []
  | _ -> []

let parse_args st =
  let rec go acc =
    let arg = parse_qref st in
    match peek st with
    | Some { token = Comma; _ } ->
        ignore (next st);
        go (arg :: acc)
    | _ -> List.rev (arg :: acc)
  in
  go []

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* map a parsed gate statement to Gate.t values; [loc] is the (line, col)
   of the statement's leading token, stamped onto validation errors *)
let rec build_gates ((line, col) as loc) name params args =
  try build_gates_unchecked line name params args with
  | Circuit.Error e when e.Circuit.loc = None ->
      raise (Circuit.Error { e with Circuit.loc = Some loc })
  | Invalid_argument msg -> fail ~column:col line "%s" msg

and build_gates_unchecked line name params args =
  let single = function
    | [ q ] -> q
    | _ -> fail line "gate %s expects single-index arguments" name
  in
  match name with
  | "cx" | "cy" | "cz" -> (
      match args with
      | [ a; b ] ->
          [ Circuit.Gate.make ~controls:[ single a ] (String.sub name 1 1) [ single b ] ]
      | _ -> fail line "%s expects two arguments" name)
  | "cp" | "crx" | "cry" | "crz" -> (
      match args with
      | [ a; b ] ->
          [
            Circuit.Gate.make ~params
              ~controls:[ single a ]
              (String.sub name 1 (String.length name - 1))
              [ single b ];
          ]
      | _ -> fail line "%s expects two arguments" name)
  | "ccx" -> (
      match args with
      | [ a; b; c ] ->
          [ Circuit.Gate.make ~controls:[ single a; single b ] "x" [ single c ] ]
      | _ -> fail line "ccx expects three arguments")
  | "swap" -> (
      match args with
      | [ a; b ] -> [ Circuit.Gate.make "swap" [ single a; single b ] ]
      | [ [ a; b ] ] -> [ Circuit.Gate.make "swap" [ a; b ] ]
      | _ -> fail line "swap expects two arguments")
  | name when starts_with "mc" name -> (
      let base = String.sub name 2 (String.length name - 2) in
      match args with
      | [ controls; target ] ->
          [ Circuit.Gate.make ~params ~controls base [ single target ] ]
      | [ combined ] -> (
          (* mcz q[1,2,3] form: last index is the target *)
          match List.rev combined with
          | target :: rev_controls ->
              [ Circuit.Gate.make ~params ~controls:(List.rev rev_controls) base [ target ] ]
          | [] -> fail line "%s expects qubits" name)
      | _ -> fail line "%s expects controls and a target" name)
  | name ->
      (* broadcast a single-qubit gate over all listed indices *)
      List.concat_map
        (fun indices -> List.map (fun q -> Circuit.Gate.make ~params name [ q ]) indices)
        args

(* user gate definitions: formal parameter names, formal qubit args, and
   the raw token stream of the body (re-parsed per use with bindings) *)
type gate_def = { formals : string list; qargs : string list; body : lexed list }

(* parse a comma-separated list of bare identifiers *)
let parse_ident_list st =
  let rec go acc =
    let name = expect_ident st in
    match peek st with
    | Some { token = Comma; _ } ->
        ignore (next st);
        go (name :: acc)
    | _ -> List.rev (name :: acc)
  in
  go []

(* expand one use of a user-defined gate to primitive Gate.t values;
   [lookup] resolves nested user gates, [qmap] maps formal arg names to
   concrete qubit indices, [env] binds formal parameters *)
let rec expand_def ~lookup ~depth line (def : gate_def) ~env ~qmap =
  if depth > 32 then fail line "gate definitions nested too deeply";
  let st = { toks = def.body } in
  let out = ref [] in
  let rec stmts () =
    match peek st with
    | None -> ()
    | Some ({ token = Ident name; _ } as tk) ->
        let line = tk.line in
        ignore (next st);
        let params = parse_params ~env st in
        let args = parse_ident_list st in
        expect st Semicolon ";";
        let qubits =
          List.map
            (fun a ->
              match List.assoc_opt a qmap with
              | Some q -> q
              | None -> fail line "unknown qubit argument %s" a)
            args
        in
        (match lookup name with
        | Some inner ->
            if List.length inner.formals <> List.length params then
              fail line "gate %s expects %d parameters" name
                (List.length inner.formals);
            if List.length inner.qargs <> List.length qubits then
              fail line "gate %s expects %d qubits" name (List.length inner.qargs);
            let env' = List.combine inner.formals params in
            let qmap' = List.combine inner.qargs qubits in
            out :=
              !out
              @ expand_def ~lookup ~depth:(depth + 1) line inner ~env:env'
                  ~qmap:qmap'
        | None ->
            out :=
              !out
              @ build_gates (tk.line, tk.col) name params
                  (List.map (fun q -> [ q ]) qubits));
        stmts ()
    | Some tk -> fail_at tk "expected gate statement in body"
  in
  stmts ();
  !out

(* distribution-level expectation pragma: [expect K P, K P, ...;] with an
   optional significance in parens — [expect(0.01) 0 0.5, 7 0.5;]. Parsed
   purely syntactically; semantic validation (probability range, index
   range, duplicates) is the linter's MQ019 and [Assertion.Dist.make]'s
   job, so a malformed pragma still parses to a diagnosable value. *)
type expect_pragma = {
  expected : (int * float) list;
  significance : float option;
  expect_loc : int * int;
}

type full = {
  circuit : Circuit.t;
  locs : (int * int) array;
  expects : expect_pragma list;
}

let parse_full src =
  let st = { toks = tokenize src } in
  let qreg = ref None and creg = ref 0 in
  let qreg_loc = ref (0, 0) in
  let expects = ref [] in
  let defs : (string, gate_def) Hashtbl.t = Hashtbl.create 8 in
  (* each pending instruction carries the (line, col) of its statement *)
  let pending : (Circuit.Instr.t * (int * int)) list ref = ref [] in
  let require_circuit line =
    match !qreg with
    | Some n -> n
    | None -> fail line "qreg must be declared before statements"
  in
  let rec stmt () =
    match peek st with
    | None -> ()
    | Some { token = Ident "OPENQASM"; _ } ->
        ignore (next st);
        ignore (next st);
        expect st Semicolon ";";
        stmt ()
    | Some { token = Ident "include"; _ } ->
        ignore (next st);
        ignore (next st);
        expect st Semicolon ";";
        stmt ()
    | Some ({ token = Ident "qreg"; _ } as tk) ->
        let line = tk.line in
        ignore (next st);
        let _name = expect_ident st in
        expect st Lbracket "[";
        let n = expect_int st in
        expect st Rbracket "]";
        expect st Semicolon ";";
        if !qreg <> None then fail line "only one qreg supported";
        qreg := Some n;
        qreg_loc := (tk.line, tk.col);
        stmt ()
    | Some { token = Ident "creg"; _ } ->
        ignore (next st);
        let _name = expect_ident st in
        expect st Lbracket "[";
        let n = expect_int st in
        expect st Rbracket "]";
        expect st Semicolon ";";
        creg := max !creg n;
        stmt ()
    | Some { token = Ident "gate"; line; _ } ->
        ignore (next st);
        let name = expect_ident st in
        let formals =
          match peek st with
          | Some { token = Lparen; _ } ->
              ignore (next st);
              let l = parse_ident_list st in
              expect st Rparen ")";
              l
          | _ -> []
        in
        let qargs = parse_ident_list st in
        (match next st with
        | { token = Lbrace; _ } -> ()
        | { line; _ } -> fail line "expected '{'");
        let body = ref [] in
        let rec grab () =
          match next st with
          | { token = Rbrace; _ } -> ()
          | tok ->
              body := tok :: !body;
              grab ()
        in
        grab ();
        if Hashtbl.mem defs name then fail line "gate %s redefined" name;
        Hashtbl.replace defs name { formals; qargs; body = List.rev !body };
        stmt ()
    | Some ({ token = Ident "T"; _ } as tk) ->
        let line = tk.line in
        ignore (next st);
        ignore (require_circuit line);
        let id = expect_int st in
        let qubits = parse_qref st in
        expect st Semicolon ";";
        pending :=
          (Circuit.Instr.Tracepoint { id; qubits }, (tk.line, tk.col))
          :: !pending;
        stmt ()
    | Some ({ token = Ident "expect"; _ } as tk) ->
        let line = tk.line in
        ignore (next st);
        ignore (require_circuit line);
        let significance =
          match peek st with
          | Some { token = Lparen; _ } ->
              ignore (next st);
              let v = parse_expr st in
              expect st Rparen ")";
              Some v
          | _ -> None
        in
        let pair () =
          let k = expect_int st in
          let p = parse_expr st in
          (k, p)
        in
        let rec pairs acc =
          let acc = pair () :: acc in
          match peek st with
          | Some { token = Comma; _ } ->
              ignore (next st);
              pairs acc
          | _ -> List.rev acc
        in
        let expected = pairs [] in
        expect st Semicolon ";";
        expects :=
          { expected; significance; expect_loc = (tk.line, tk.col) }
          :: !expects;
        stmt ()
    | Some ({ token = Ident "measure"; _ } as tk) ->
        let line = tk.line in
        ignore (next st);
        ignore (require_circuit line);
        let q = parse_qref st in
        expect st Arrow "->";
        let c = parse_qref st in
        expect st Semicolon ";";
        (match (q, c) with
        | [ qubit ], [ clbit ] ->
            pending :=
              (Circuit.Instr.Measure { qubit; clbit }, (tk.line, tk.col))
              :: !pending
        | _ -> fail line "measure expects single indices");
        stmt ()
    | Some ({ token = Ident "reset"; _ } as tk) ->
        let line = tk.line in
        ignore (next st);
        ignore (require_circuit line);
        let q = parse_qref st in
        expect st Semicolon ";";
        (match q with
        | [ qubit ] ->
            pending :=
              (Circuit.Instr.Reset qubit, (tk.line, tk.col)) :: !pending
        | _ -> fail line "reset expects a single index");
        stmt ()
    | Some ({ token = Ident "barrier"; _ } as tk) ->
        let line = tk.line in
        ignore (next st);
        ignore (require_circuit line);
        let qs = parse_args st in
        expect st Semicolon ";";
        pending :=
          (Circuit.Instr.Barrier (List.concat qs), (tk.line, tk.col))
          :: !pending;
        stmt ()
    | Some ({ token = Ident "if"; _ } as tk) ->
        let line = tk.line in
        ignore (next st);
        ignore (require_circuit line);
        expect st Lparen "(";
        (* c==v or c[i]==v or c[i,j]==v *)
        let _cname = expect_ident st in
        let clbits =
          match peek st with
          | Some { token = Lbracket; _ } ->
              ignore (next st);
              let first = expect_int st in
              let rec more acc =
                match peek st with
                | Some { token = Comma; _ } ->
                    ignore (next st);
                    more (expect_int st :: acc)
                | _ -> List.rev acc
              in
              let l = more [ first ] in
              expect st Rbracket "]";
              l
          | _ -> List.init !creg (fun i -> i)
        in
        expect st Eqeq "==";
        let value = expect_int st in
        expect st Rparen ")";
        let gname = expect_ident st in
        let params = parse_params st in
        let args = parse_args st in
        expect st Semicolon ";";
        (match build_gates (tk.line, tk.col) gname params args with
        | [ gate ] ->
            pending :=
              (Circuit.Instr.If_gate { clbits; value; gate }, (tk.line, tk.col))
              :: !pending
        | _ -> fail line "if-statement expects a single gate");
        stmt ()
    | Some ({ token = Ident name; _ } as tk) when Hashtbl.mem defs name ->
        let line = tk.line in
        ignore (next st);
        ignore (require_circuit line);
        let def = Hashtbl.find defs name in
        let params = parse_params st in
        let args = parse_args st in
        expect st Semicolon ";";
        let qubits =
          List.map
            (function
              | [ q ] -> q
              | _ -> fail line "user gate %s expects single-index arguments" name)
            args
        in
        if List.length def.formals <> List.length params then
          fail line "gate %s expects %d parameters" name (List.length def.formals);
        if List.length def.qargs <> List.length qubits then
          fail line "gate %s expects %d qubits" name (List.length def.qargs);
        let gates =
          expand_def
            ~lookup:(Hashtbl.find_opt defs)
            ~depth:0 line def
            ~env:(List.combine def.formals params)
            ~qmap:(List.combine def.qargs qubits)
        in
        List.iter
          (fun g ->
            pending := (Circuit.Instr.Gate g, (tk.line, tk.col)) :: !pending)
          gates;
        stmt ()
    | Some ({ token = Ident name; _ } as tk) ->
        let line = tk.line in
        ignore (next st);
        ignore (require_circuit line);
        let params = parse_params st in
        let args = parse_args st in
        expect st Semicolon ";";
        let gates = build_gates (tk.line, tk.col) name params args in
        List.iter
          (fun g ->
            pending := (Circuit.Instr.Gate g, (tk.line, tk.col)) :: !pending)
          gates;
        stmt ()
    | Some tk -> fail_at tk "expected statement"
  in
  stmt ();
  let n =
    match !qreg with
    | Some n -> n
    | None -> fail 0 "program declares no qreg"
  in
  let items = List.rev !pending in
  let with_loc loc f =
    try f () with
    | Circuit.Error e when e.Circuit.loc = None ->
        raise (Circuit.Error { e with Circuit.loc = Some loc })
    | Invalid_argument msg -> fail ~column:(snd loc) (fst loc) "%s" msg
  in
  let circuit =
    List.fold_left
      (fun c (i, loc) -> with_loc loc (fun () -> Circuit.add i c))
      (with_loc !qreg_loc (fun () -> Circuit.empty ~clbits:!creg n))
      items
  in
  {
    circuit;
    locs = Array.of_list (List.map snd items);
    expects = List.rev !expects;
  }

let parse_with_locs src =
  let f = parse_full src in
  (f.circuit, f.locs)

let parse src = (parse_full src).circuit

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_file_full path = parse_full (read_file path)

let parse_file_with_locs path =
  let f = parse_file_full path in
  (f.circuit, f.locs)

let parse_file path = (parse_file_full path).circuit

(* ---------------- printer ---------------- *)

let pp_params buf params =
  match params with
  | [] -> ()
  | ps ->
      Buffer.add_char buf '(';
      List.iteri
        (fun i p ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "%.12g" p))
        ps;
      Buffer.add_char buf ')'

let pp_qlist buf qs =
  Buffer.add_string buf "q[";
  List.iteri
    (fun i q ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int q))
    qs;
  Buffer.add_char buf ']'

let pp_gate buf (g : Circuit.Gate.t) =
  (match (g.Circuit.Gate.controls, g.Circuit.Gate.name, g.Circuit.Gate.targets) with
  | [], name, targets ->
      Buffer.add_string buf name;
      pp_params buf g.Circuit.Gate.params;
      Buffer.add_char buf ' ';
      pp_qlist buf targets
  | [ c ], (("x" | "y" | "z") as name), [ t ] ->
      Buffer.add_string buf ("c" ^ name);
      Buffer.add_char buf ' ';
      pp_qlist buf [ c ];
      Buffer.add_char buf ',';
      pp_qlist buf [ t ]
  | controls, name, [ t ] ->
      Buffer.add_string buf ("mc" ^ name);
      pp_params buf g.Circuit.Gate.params;
      Buffer.add_char buf ' ';
      pp_qlist buf controls;
      Buffer.add_char buf ',';
      pp_qlist buf [ t ]
  | _ -> invalid_arg "Qasm.to_string: unsupported gate shape");
  Buffer.add_string buf ";\n"

let to_string c =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "OPENQASM 2.0;\n";
  Buffer.add_string buf (Printf.sprintf "qreg q[%d];\n" (Circuit.num_qubits c));
  if Circuit.num_clbits c > 0 then
    Buffer.add_string buf (Printf.sprintf "creg c[%d];\n" (Circuit.num_clbits c));
  List.iter
    (fun instr ->
      match instr with
      | Circuit.Instr.Gate g -> pp_gate buf g
      | Circuit.Instr.Tracepoint { id; qubits } ->
          Buffer.add_string buf (Printf.sprintf "T %d " id);
          pp_qlist buf qubits;
          Buffer.add_string buf ";\n"
      | Circuit.Instr.Measure { qubit; clbit } ->
          Buffer.add_string buf
            (Printf.sprintf "measure q[%d] -> c[%d];\n" qubit clbit)
      | Circuit.Instr.Reset q ->
          Buffer.add_string buf (Printf.sprintf "reset q[%d];\n" q)
      | Circuit.Instr.If_gate { clbits; value; gate } ->
          Buffer.add_string buf "if (c[";
          List.iteri
            (fun i b ->
              if i > 0 then Buffer.add_char buf ',';
              Buffer.add_string buf (string_of_int b))
            clbits;
          Buffer.add_string buf (Printf.sprintf "]==%d) " value);
          let inner = Buffer.create 32 in
          pp_gate inner gate;
          Buffer.add_string buf (Buffer.contents inner)
      | Circuit.Instr.Barrier qs ->
          Buffer.add_string buf "barrier ";
          pp_qlist buf qs;
          Buffer.add_string buf ";\n")
    (Circuit.instrs c);
  Buffer.contents buf
