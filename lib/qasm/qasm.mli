(** A mini-QASM (OpenQASM-2-flavoured) front end with the paper's tracepoint
    pragma.

    Supported statements:
    - [OPENQASM 2.0;] and [include "...";] headers (ignored)
    - [qreg q[n];] / [creg c[m];] (one register of each kind)
    - gate applications [name(params) q[i], q[j], ...;] — a multi-index
      argument such as [x q[2,3,4];] broadcasts a single-qubit gate, and
      [mcz q[1,2,3],q[4];]-style names starting with [mc] treat the first
      argument as the control list
    - the tracepoint pragma [T 1 q[2,3,4];]
    - the distribution expectation pragma [expect 0 0.5, 7 0.5;]
      (optionally [expect(0.01) ...;] with a significance level) asserting
      the final measurement distribution — carried as a side channel (see
      {!parse_full}), not as a circuit instruction
    - [measure q[i] -> c[j];], [reset q[i];], [barrier q[...];]
    - feedback [if (c[i]==v) name q[j];] and [if (c==v) ...;] (whole
      register)
    - user gate definitions
      [gate name(p1, p2) a, b { h a; rz(p1) b; ... }] with parameters,
      nesting and recursive expansion at use sites

    Parameters accept float literals, [pi], unary minus and [* / + -]
    arithmetic. *)

exception
  Parse_error of {
    line : int;
    column : int;  (** 1-based; 0 when no precise column is known *)
    token : string;  (** offending token text; [""] when not token-level *)
    message : string;
  }

(** [parse src] parses a program into a circuit. Raises {!Parse_error} on
    syntax errors and {!Circuit.Error} (with [loc] filled in) on semantic
    validation errors such as out-of-range qubits. *)
val parse : string -> Circuit.t

(** [parse_file path] reads and parses a file. *)
val parse_file : string -> Circuit.t

(** [parse_with_locs src] additionally returns, for each instruction of the
    circuit (in [Circuit.instrs] order), the [(line, column)] of the QASM
    statement that produced it — gates expanded from a user gate definition
    or broadcast from a multi-index argument all share their statement's
    location. Used by [Analysis.Lint] to report [file:line:col]. *)
val parse_with_locs : string -> Circuit.t * (int * int) array

val parse_file_with_locs : string -> Circuit.t * (int * int) array

(** One [expect] pragma, purely syntactic: [(basis index, probability)]
    pairs and the optional significance. Semantic validation (probability
    and index ranges, duplicates, mass sum) is the job of
    [Analysis.Lint] (MQ019) and [Assertion.Dist.make], so a malformed
    pragma still parses to a diagnosable value. *)
type expect_pragma = {
  expected : (int * float) list;
  significance : float option;
  expect_loc : int * int;  (** (line, column) of the pragma *)
}

type full = {
  circuit : Circuit.t;
  locs : (int * int) array;  (** as in {!parse_with_locs} *)
  expects : expect_pragma list;  (** in source order *)
}

(** [parse_full src] is {!parse_with_locs} plus the [expect] pragmas. The
    pragmas ride a side channel so [Circuit.t] — and every consumer of
    it — is unchanged. *)
val parse_full : string -> full

val parse_file_full : string -> full

(** [to_string c] renders a circuit back to mini-QASM; [parse (to_string c)]
    reproduces the circuit up to gate-name canonicalization. *)
val to_string : Circuit.t -> string
