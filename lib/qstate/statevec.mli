(** Mutable state vectors over [n] qubits with split real/imaginary storage.

    Gate applications mutate the vector in place (use {!copy} to snapshot).
    Qubit 0 is the least significant bit of a basis index. *)

type t = private { n : int; re : float array; im : float array }

(** [basis n k] is the computational basis state [|k>]. *)
val basis : int -> int -> t

(** [zero n] is [|0...0>]. *)
val zero : int -> t

(** [of_cvec n v] builds a state from a (normalized) amplitude vector of
    dimension [2^n]. *)
val of_cvec : int -> Linalg.Cvec.t -> t

val to_cvec : t -> Linalg.Cvec.t
val num_qubits : t -> int
val dim : t -> int
val copy : t -> t
val amplitude : t -> int -> Linalg.Cx.t
val set_amplitude : t -> int -> Linalg.Cx.t -> unit
val norm : t -> float
val normalize : t -> unit

(** [inner a b] is the Hermitian inner product [<a|b>]. *)
val inner : t -> t -> Linalg.Cx.t

(** [fidelity_pure a b] is [|<a|b>|^2]. *)
val fidelity_pure : t -> t -> float

(** [kron a b] is the tensor product state; qubits of [b] occupy the low
    index bits. *)
val kron : t -> t -> t

(** Qubit count at and above which gate kernels ({!apply1},
    {!apply_controlled}, {!apply2}) fan their amplitude sweeps out over
    [Parallel.Pool.global ()]. Chunks write disjoint amplitude pairs and
    never reduce, so results are bit-identical for any domain count. Smaller
    states keep the synchronization-free sequential path. Exposed mainly so
    tests and benchmarks can force either path. *)
val parallel_threshold : int ref

(** [apply1 u q st] applies the 2 x 2 unitary [u] to qubit [q]. *)
val apply1 : Linalg.Cmat.t -> int -> t -> unit

(** [apply_controlled ~controls u q st] applies [u] to qubit [q] on the
    subspace where every control qubit is [|1>]. An empty control list is
    plain {!apply1}. *)
val apply_controlled : controls:int list -> Linalg.Cmat.t -> int -> t -> unit

(** [apply2 u q0 q1 st] applies a 4 x 4 unitary where [q0] is the least
    significant index bit of the pair. *)
val apply2 : Linalg.Cmat.t -> int -> int -> t -> unit

(** [prob1 st q] is the probability of reading 1 on qubit [q]. *)
val prob1 : t -> int -> float

(** [probs st] is the full measurement distribution over basis states. *)
val probs : t -> float array

(** [project st q outcome] collapses qubit [q] to [outcome] (renormalizing)
    and returns the probability of that branch. A zero-probability branch
    leaves the state unchanged and returns [0.]. *)
val project : t -> int -> int -> float

(** [measure rng st q] samples an outcome for qubit [q], collapses the state
    and returns the outcome. *)
val measure : Stats.Rng.t -> t -> int -> int

(** [sample rng st] draws one basis-state index from the Born distribution. *)
val sample : Stats.Rng.t -> t -> int

(** [counts ?pool rng st ~shots] samples [shots] indices and returns sorted
    [(index, count)] pairs. Draws are binary searches over the cumulative
    distribution — O(shots log d + d) total rather than O(shots d). With
    [?pool], shots are drawn in fixed-size blocks seeded by
    [Stats.Rng.split], so the result is independent of the pool's domain
    count (but differs from the sequential no-pool draw order). *)
val counts : ?pool:Parallel.Pool.t -> Stats.Rng.t -> t -> shots:int -> (int * int) list

(** [expectation_pauli p st] is [<st| P |st>]. *)
val expectation_pauli : Pauli.t -> t -> float

(** [reduced_density st keep] is the reduced density matrix over the qubits
    in [keep] (bit [j] of the result index corresponds to [List.nth keep j]).
    Cost O(4^k * 2^(n-k)). *)
val reduced_density : t -> int list -> Linalg.Cmat.t

(** [density st] is the full density matrix [|st><st|]. *)
val density : t -> Linalg.Cmat.t

val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
