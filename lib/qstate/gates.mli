(** Matrices of the standard gate set. Single-qubit gates are 2 x 2; two-qubit
    primitives are 4 x 4 with qubit 0 of the pair as the least significant
    index bit. *)

val h : Linalg.Cmat.t
val x : Linalg.Cmat.t
val y : Linalg.Cmat.t
val z : Linalg.Cmat.t
val s : Linalg.Cmat.t
val sdg : Linalg.Cmat.t
val t : Linalg.Cmat.t
val tdg : Linalg.Cmat.t

(** Square root of X (used by XEB-style random circuits). *)
val sx : Linalg.Cmat.t

(** Square root of Y. *)
val sy : Linalg.Cmat.t

(** Square root of W = (X + Y)/sqrt(2). *)
val sw : Linalg.Cmat.t

val rx : float -> Linalg.Cmat.t
val ry : float -> Linalg.Cmat.t
val rz : float -> Linalg.Cmat.t

(** [phase lambda] is diag(1, e^{i lambda}). *)
val phase : float -> Linalg.Cmat.t

(** [u3 theta phi lambda] is the generic single-qubit rotation (OpenQASM u3). *)
val u3 : float -> float -> float -> Linalg.Cmat.t

(** [u2x2 params] decodes an arbitrary 2 x 2 matrix from 8 row-major
    [(re, im)] parameters — the encoding used by the ["u2x2"] gate that the
    single-qubit fusion pass ([Transpile.Passes.fuse_1q]) emits. *)
val u2x2 : float list -> Linalg.Cmat.t

(** [by_name name params] looks up a single-qubit gate by its QASM name,
    e.g. ["h"], ["rx"] with one parameter. Parameterless gates resolve
    through a precomputed memo table (one shared immutable matrix per name).
    Raises [Invalid_argument] for unknown names or wrong parameter counts. *)
val by_name : string -> float list -> Linalg.Cmat.t

(** Names accepted by {!by_name}. *)
val known_names : string list
