open Linalg

let m2 a b c d = Cmat.of_lists [ [ a; b ]; [ c; d ] ]
let isq2 = 1. /. sqrt 2.
let h = m2 (Cx.of_float isq2) (Cx.of_float isq2) (Cx.of_float isq2) (Cx.of_float (-.isq2))
let x = m2 Cx.zero Cx.one Cx.one Cx.zero
let y = m2 Cx.zero (Cx.neg Cx.i) Cx.i Cx.zero
let z = m2 Cx.one Cx.zero Cx.zero (Cx.of_float (-1.))
let s = m2 Cx.one Cx.zero Cx.zero Cx.i
let sdg = m2 Cx.one Cx.zero Cx.zero (Cx.neg Cx.i)
let t = m2 Cx.one Cx.zero Cx.zero (Cx.exp_i (Float.pi /. 4.))
let tdg = m2 Cx.one Cx.zero Cx.zero (Cx.exp_i (-.Float.pi /. 4.))

let sx =
  let a = Cx.make 0.5 0.5 and b = Cx.make 0.5 (-0.5) in
  m2 a b b a

let sy =
  let a = Cx.make 0.5 0.5 in
  m2 a (Cx.neg a) a a

let sw =
  (* sqrt of W = (X+Y)/sqrt2: spectral formula ((1+i) I + (1-i) W) / 2 *)
  let diag = Cx.make 0.5 0.5 in
  let isq2 = 1. /. sqrt 2. in
  m2 diag (Cx.make 0. (-.isq2)) (Cx.of_float isq2) diag

let rx theta =
  let c = Cx.of_float (cos (theta /. 2.)) in
  let s = Cx.make 0. (-.sin (theta /. 2.)) in
  m2 c s s c

let ry theta =
  let c = cos (theta /. 2.) and s = sin (theta /. 2.) in
  m2 (Cx.of_float c) (Cx.of_float (-.s)) (Cx.of_float s) (Cx.of_float c)

let rz theta =
  m2 (Cx.exp_i (-.theta /. 2.)) Cx.zero Cx.zero (Cx.exp_i (theta /. 2.))

let phase lambda = m2 Cx.one Cx.zero Cx.zero (Cx.exp_i lambda)

let u3 theta phi lambda =
  let c = cos (theta /. 2.) and s = sin (theta /. 2.) in
  m2
    (Cx.of_float c)
    (Cx.neg (Cx.scale s (Cx.exp_i lambda)))
    (Cx.scale s (Cx.exp_i phi))
    (Cx.scale c (Cx.exp_i (phi +. lambda)))

let known_names =
  [
    "h"; "x"; "y"; "z"; "s"; "sdg"; "t"; "tdg"; "sx"; "sy"; "sw"; "id";
    "rx"; "ry"; "rz"; "p"; "u1"; "u3"; "u2x2";
  ]

(* Memo table for the parameterless gates: one shared, immutable matrix per
   name, resolved with a single hash lookup on the hot path. Populated once
   at module initialization and never mutated afterwards, so concurrent
   lookups from parallel trajectory workers are safe. *)
let fixed_table : (string, Cmat.t) Hashtbl.t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (name, m) -> Hashtbl.add tbl name m)
    [
      ("h", h); ("x", x); ("y", y); ("z", z); ("s", s); ("sdg", sdg);
      ("t", t); ("tdg", tdg); ("sx", sx); ("sy", sy); ("sw", sw);
      ("id", Cmat.identity 2);
    ];
  tbl

(* "u2x2" carries an arbitrary 2x2 matrix as 8 row-major (re, im) params —
   the representation the gate-fusion transpile pass produces. *)
let u2x2 ps =
  match ps with
  | [ r00; i00; r01; i01; r10; i10; r11; i11 ] ->
      Cmat.of_lists
        [
          [ Cx.make r00 i00; Cx.make r01 i01 ];
          [ Cx.make r10 i10; Cx.make r11 i11 ];
        ]
  | _ -> invalid_arg "Gates.u2x2: expected 8 parameters"

let by_name name params =
  match params with
  | [] -> (
      match Hashtbl.find_opt fixed_table name with
      | Some m -> m
      | None ->
          invalid_arg (Printf.sprintf "Gates.by_name: unknown gate %s/0" name))
  | _ -> (
      match (name, params) with
      | "rx", [ th ] -> rx th
      | "ry", [ th ] -> ry th
      | "rz", [ th ] -> rz th
      | ("p" | "u1"), [ l ] -> phase l
      | "u3", [ th; ph; l ] -> u3 th ph l
      | "u2x2", ps -> u2x2 ps
      | _ ->
          invalid_arg
            (Printf.sprintf "Gates.by_name: unknown gate %s/%d" name
               (List.length params)))
