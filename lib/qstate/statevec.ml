open Linalg

type t = { n : int; re : float array; im : float array }

let basis n k =
  if n < 0 || n > 26 then invalid_arg "Statevec.basis: unsupported qubit count";
  let d = 1 lsl n in
  if k < 0 || k >= d then invalid_arg "Statevec.basis: index out of range";
  let st = { n; re = Array.make d 0.; im = Array.make d 0. } in
  st.re.(k) <- 1.;
  st

let zero n = basis n 0

let of_cvec n v =
  if Cvec.dim v <> 1 lsl n then invalid_arg "Statevec.of_cvec: bad dimension";
  { n; re = Array.copy v.Cvec.re; im = Array.copy v.Cvec.im }

let to_cvec st = Cvec.of_arrays st.re st.im
let num_qubits st = st.n
let dim st = 1 lsl st.n
let copy st = { st with re = Array.copy st.re; im = Array.copy st.im }
let amplitude st k = Cx.make st.re.(k) st.im.(k)

let set_amplitude st k z =
  st.re.(k) <- Cx.re z;
  st.im.(k) <- Cx.im z

let norm st =
  let s = ref 0. in
  for k = 0 to dim st - 1 do
    s := !s +. (st.re.(k) *. st.re.(k)) +. (st.im.(k) *. st.im.(k))
  done;
  sqrt !s

let normalize st =
  let nv = norm st in
  if nv <= 0. then invalid_arg "Statevec.normalize: zero state";
  let f = 1. /. nv in
  for k = 0 to dim st - 1 do
    st.re.(k) <- f *. st.re.(k);
    st.im.(k) <- f *. st.im.(k)
  done

let inner a b =
  if a.n <> b.n then invalid_arg "Statevec.inner: qubit mismatch";
  let re = ref 0. and im = ref 0. in
  for k = 0 to dim a - 1 do
    re := !re +. (a.re.(k) *. b.re.(k)) +. (a.im.(k) *. b.im.(k));
    im := !im +. (a.re.(k) *. b.im.(k)) -. (a.im.(k) *. b.re.(k))
  done;
  Cx.make !re !im

let fidelity_pure a b = Cx.norm2 (inner a b)

let kron a b =
  let n = a.n + b.n in
  let db = dim b in
  let st = { n; re = Array.make (1 lsl n) 0.; im = Array.make (1 lsl n) 0. } in
  for ia = 0 to dim a - 1 do
    for ib = 0 to db - 1 do
      let k = (ia * db) + ib in
      st.re.(k) <- (a.re.(ia) *. b.re.(ib)) -. (a.im.(ia) *. b.im.(ib));
      st.im.(k) <- (a.re.(ia) *. b.im.(ib)) +. (a.im.(ia) *. b.re.(ib))
    done
  done;
  st

let check_u2 u =
  let r, c = Cmat.dims u in
  if r <> 2 || c <> 2 then invalid_arg "Statevec: expected 2x2 matrix"

(* Gate kernels fan out over the global domain pool once the state reaches
   [parallel_threshold] qubits; below it the sequential path avoids all
   synchronization. Parallel chunks write disjoint amplitude pairs and
   perform no reductions, so results are bit-identical for any domain count
   and any chunking. *)
let parallel_threshold = ref 14

let kernel_chunk = 1 lsl 11

let run_kernel st n body =
  if st.n >= !parallel_threshold then
    Parallel.Pool.parallel_for_chunks ~chunk:kernel_chunk
      (Parallel.Pool.global ()) ~n body
  else body 0 n

let apply1 u q st =
  check_u2 u;
  if q < 0 || q >= st.n then invalid_arg "Statevec.apply1: qubit out of range";
  let u00r = u.Cmat.re.(0) and u00i = u.Cmat.im.(0) in
  let u01r = u.Cmat.re.(1) and u01i = u.Cmat.im.(1) in
  let u10r = u.Cmat.re.(2) and u10i = u.Cmat.im.(2) in
  let u11r = u.Cmat.re.(3) and u11i = u.Cmat.im.(3) in
  let bit = 1 lsl q in
  let lowmask = bit - 1 in
  (* iterate the d/2 pairs directly: m encodes the index with qubit q removed *)
  run_kernel st (dim st lsr 1) (fun lo hi ->
      for m = lo to hi - 1 do
        let i = ((m land lnot lowmask) lsl 1) lor (m land lowmask) in
        let j = i lor bit in
        let ar = st.re.(i) and ai = st.im.(i) in
        let br = st.re.(j) and bi = st.im.(j) in
        st.re.(i) <- (u00r *. ar) -. (u00i *. ai) +. (u01r *. br) -. (u01i *. bi);
        st.im.(i) <- (u00r *. ai) +. (u00i *. ar) +. (u01r *. bi) +. (u01i *. br);
        st.re.(j) <- (u10r *. ar) -. (u10i *. ai) +. (u11r *. br) -. (u11i *. bi);
        st.im.(j) <- (u10r *. ai) +. (u10i *. ar) +. (u11r *. bi) +. (u11i *. br)
      done)

let apply_controlled ~controls u q st =
  check_u2 u;
  if q < 0 || q >= st.n then
    invalid_arg "Statevec.apply_controlled: qubit out of range";
  List.iter
    (fun c ->
      if c < 0 || c >= st.n || c = q then
        invalid_arg "Statevec.apply_controlled: bad control")
    controls;
  let cmask = List.fold_left (fun m c -> m lor (1 lsl c)) 0 controls in
  let u00r = u.Cmat.re.(0) and u00i = u.Cmat.im.(0) in
  let u01r = u.Cmat.re.(1) and u01i = u.Cmat.im.(1) in
  let u10r = u.Cmat.re.(2) and u10i = u.Cmat.im.(2) in
  let u11r = u.Cmat.re.(3) and u11i = u.Cmat.im.(3) in
  let bit = 1 lsl q in
  (* each pair (i, i|bit) is owned by the chunk containing i, so chunked
     writes never overlap even when j lands in another chunk *)
  run_kernel st (dim st) (fun lo hi ->
      for i = lo to hi - 1 do
        if i land bit = 0 && i land cmask = cmask then begin
          let j = i lor bit in
          let ar = st.re.(i) and ai = st.im.(i) in
          let br = st.re.(j) and bi = st.im.(j) in
          st.re.(i) <-
            (u00r *. ar) -. (u00i *. ai) +. (u01r *. br) -. (u01i *. bi);
          st.im.(i) <-
            (u00r *. ai) +. (u00i *. ar) +. (u01r *. bi) +. (u01i *. br);
          st.re.(j) <-
            (u10r *. ar) -. (u10i *. ai) +. (u11r *. br) -. (u11i *. bi);
          st.im.(j) <-
            (u10r *. ai) +. (u10i *. ar) +. (u11r *. bi) +. (u11i *. br)
        end
      done)

let apply2 u q0 q1 st =
  let r, c = Cmat.dims u in
  if r <> 4 || c <> 4 then invalid_arg "Statevec.apply2: expected 4x4 matrix";
  if q0 = q1 || q0 < 0 || q1 < 0 || q0 >= st.n || q1 >= st.n then
    invalid_arg "Statevec.apply2: bad qubits";
  let b0 = 1 lsl q0 and b1 = 1 lsl q1 in
  run_kernel st (dim st) (fun lo hi ->
      let tmp_re = Array.make 4 0. and tmp_im = Array.make 4 0. in
      for i = lo to hi - 1 do
        if i land b0 = 0 && i land b1 = 0 then begin
          let idx = [| i; i lor b0; i lor b1; i lor b0 lor b1 |] in
          for a = 0 to 3 do
            tmp_re.(a) <- 0.;
            tmp_im.(a) <- 0.;
            for b = 0 to 3 do
              let ur = u.Cmat.re.((a * 4) + b) and ui = u.Cmat.im.((a * 4) + b) in
              let vr = st.re.(idx.(b)) and vi = st.im.(idx.(b)) in
              tmp_re.(a) <- tmp_re.(a) +. (ur *. vr) -. (ui *. vi);
              tmp_im.(a) <- tmp_im.(a) +. (ur *. vi) +. (ui *. vr)
            done
          done;
          for a = 0 to 3 do
            st.re.(idx.(a)) <- tmp_re.(a);
            st.im.(idx.(a)) <- tmp_im.(a)
          done
        end
      done)

let prob1 st q =
  if q < 0 || q >= st.n then invalid_arg "Statevec.prob1: qubit out of range";
  let bit = 1 lsl q in
  let p = ref 0. in
  for k = 0 to dim st - 1 do
    if k land bit <> 0 then
      p := !p +. (st.re.(k) *. st.re.(k)) +. (st.im.(k) *. st.im.(k))
  done;
  !p

let probs st =
  Array.init (dim st) (fun k ->
      (st.re.(k) *. st.re.(k)) +. (st.im.(k) *. st.im.(k)))

let project st q outcome =
  if outcome <> 0 && outcome <> 1 then
    invalid_arg "Statevec.project: outcome must be 0 or 1";
  let bit = 1 lsl q in
  let p = if outcome = 1 then prob1 st q else 1. -. prob1 st q in
  if p <= 1e-15 then 0.
  else begin
    let f = 1. /. sqrt p in
    for k = 0 to dim st - 1 do
      let keep = if outcome = 1 then k land bit <> 0 else k land bit = 0 in
      if keep then begin
        st.re.(k) <- f *. st.re.(k);
        st.im.(k) <- f *. st.im.(k)
      end
      else begin
        st.re.(k) <- 0.;
        st.im.(k) <- 0.
      end
    done;
    p
  end

let measure rng st q =
  let p1 = prob1 st q in
  let outcome = if Stats.Rng.float rng 1. < p1 then 1 else 0 in
  ignore (project st q outcome);
  outcome

let sample rng st =
  let r = ref (Stats.Rng.float rng 1.) in
  let d = dim st in
  let result = ref (d - 1) in
  (try
     for k = 0 to d - 1 do
       let p = (st.re.(k) *. st.re.(k)) +. (st.im.(k) *. st.im.(k)) in
       r := !r -. p;
       if !r < 0. then begin
         result := k;
         raise Exit
       end
     done
   with Exit -> ());
  !result

(* cumulative Born distribution; cdf.(k) = sum of probabilities up to k *)
let cdf st =
  let d = dim st in
  let c = Array.make d 0. in
  let acc = ref 0. in
  for k = 0 to d - 1 do
    acc := !acc +. (st.re.(k) *. st.re.(k)) +. (st.im.(k) *. st.im.(k));
    c.(k) <- !acc
  done;
  c

(* smallest k with c.(k) > r (falls back to the last index when rounding
   leaves the total below r, matching [sample]'s behaviour) *)
let search_cdf c r =
  let d = Array.length c in
  if r >= c.(d - 1) then d - 1
  else begin
    let lo = ref 0 and hi = ref (d - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if c.(mid) > r then hi := mid else lo := mid + 1
    done;
    !lo
  end

(* Sampling is O(shots log d) over the cumulative distribution instead of an
   O(d) scan per shot. With a pool, shots are drawn in fixed 4096-shot blocks
   with one split child generator each, so the drawn indices are independent
   of the pool's domain count. *)
let counts ?pool rng st ~shots =
  let c = cdf st in
  let tbl = Hashtbl.create 64 in
  let bump k n =
    Hashtbl.replace tbl k (n + Option.value ~default:0 (Hashtbl.find_opt tbl k))
  in
  (match pool with
  | None ->
      for _ = 1 to shots do
        bump (search_cdf c (Stats.Rng.float rng 1.)) 1
      done
  | Some pool ->
      let block = 4096 in
      let blocks = (shots + block - 1) / block in
      let rngs = Array.init blocks (Stats.Rng.split rng) in
      let drawn = Array.make shots 0 in
      Parallel.Pool.parallel_for pool ~n:blocks (fun b ->
          let r = rngs.(b) in
          for s = b * block to min shots ((b + 1) * block) - 1 do
            drawn.(s) <- search_cdf c (Stats.Rng.float r 1.)
          done);
      Array.iter (fun k -> bump k 1) drawn);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let expectation_pauli p st =
  let n = Array.length p in
  if n <> st.n then invalid_arg "Statevec.expectation_pauli: qubit mismatch";
  (* <psi| P |psi> = sum_r conj(psi_r) * phase(r) * psi_{r xor flip} *)
  let flipmask = ref 0 in
  Array.iteri
    (fun q o -> if o = Pauli.X || o = Pauli.Y then flipmask := !flipmask lor (1 lsl q))
    p;
  let total_re = ref 0. in
  let d = dim st in
  for r = 0 to d - 1 do
    let c = r lxor !flipmask in
    (* phase of P_{r,c} *)
    let ph = ref Cx.one in
    Array.iteri
      (fun q o ->
        let bit = (r lsr q) land 1 in
        match o with
        | Pauli.I | Pauli.X -> ()
        | Pauli.Z -> if bit = 1 then ph := Cx.neg !ph
        | Pauli.Y ->
            ph := if bit = 1 then Cx.mul !ph Cx.i else Cx.mul !ph (Cx.neg Cx.i))
      p;
    (* conj(psi_r) * phase * psi_c, real part *)
    let pr = Cx.re !ph and pi = Cx.im !ph in
    let cr = (pr *. st.re.(c)) -. (pi *. st.im.(c)) in
    let ci = (pr *. st.im.(c)) +. (pi *. st.re.(c)) in
    total_re := !total_re +. (st.re.(r) *. cr) +. (st.im.(r) *. ci)
  done;
  !total_re

let reduced_density st keep =
  let k = List.length keep in
  List.iter
    (fun q ->
      if q < 0 || q >= st.n then
        invalid_arg "Statevec.reduced_density: qubit out of range")
    keep;
  let keep_arr = Array.of_list keep in
  let keep_mask = Array.fold_left (fun m q -> m lor (1 lsl q)) 0 keep_arr in
  let rest = ref [] in
  for q = st.n - 1 downto 0 do
    if keep_mask land (1 lsl q) = 0 then rest := q :: !rest
  done;
  let rest_arr = Array.of_list !rest in
  let dk = 1 lsl k and dr = 1 lsl Array.length rest_arr in
  (* compose a full index from kept sub-index [a] and rest sub-index [e] *)
  let compose a e =
    let idx = ref 0 in
    Array.iteri
      (fun j q -> if (a lsr j) land 1 = 1 then idx := !idx lor (1 lsl q))
      keep_arr;
    Array.iteri
      (fun j q -> if (e lsr j) land 1 = 1 then idx := !idx lor (1 lsl q))
      rest_arr;
    !idx
  in
  let rho = Cmat.create dk dk in
  let rre = rho.Cmat.re and rim = rho.Cmat.im in
  let full = Array.make dk 0 in
  for e = 0 to dr - 1 do
    for a = 0 to dk - 1 do
      full.(a) <- compose a e
    done;
    for a = 0 to dk - 1 do
      let ia = full.(a) in
      let ar = st.re.(ia) and ai = st.im.(ia) in
      if ar <> 0. || ai <> 0. then begin
        let base = a * dk in
        for b = 0 to dk - 1 do
          let ib = full.(b) in
          (* psi_a * conj(psi_b) *)
          let br = st.re.(ib) and bi = st.im.(ib) in
          rre.(base + b) <- rre.(base + b) +. (ar *. br) +. (ai *. bi);
          rim.(base + b) <- rim.(base + b) +. (ai *. br) -. (ar *. bi)
        done
      end
    done
  done;
  rho

let density st = reduced_density st (List.init st.n (fun q -> q))

let equal ?(eps = 1e-12) a b =
  a.n = b.n
  &&
  let ok = ref true in
  for k = 0 to dim a - 1 do
    if
      Float.abs (a.re.(k) -. b.re.(k)) > eps
      || Float.abs (a.im.(k) -. b.im.(k)) > eps
    then ok := false
  done;
  !ok

let bits n k = String.init n (fun j -> if (k lsr (n - 1 - j)) land 1 = 1 then '1' else '0')

let pp ppf st =
  Format.fprintf ppf "@[<v>";
  for k = 0 to dim st - 1 do
    let p = (st.re.(k) *. st.re.(k)) +. (st.im.(k) *. st.im.(k)) in
    if p > 1e-12 then
      Format.fprintf ppf "|%s> %a@," (bits st.n k) Cx.pp (amplitude st k)
  done;
  Format.fprintf ppf "@]"
