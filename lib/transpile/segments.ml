module IntSet = Set.Make (Int)

let default_cutoff = 6
let default_block_cutoff = 3

let support gates =
  List.fold_left
    (fun acc g ->
      List.fold_left
        (fun acc q -> IntSet.add q acc)
        acc (Circuit.Gate.qubits g))
    IntSet.empty gates

(* Fuse [gates] (whose union support is [sup]) into one block operator:
   remap them onto a local register ordered by ascending global qubit and
   materialize the sub-circuit unitary column by column. *)
let block_of sup gates =
  let qubits = Array.of_list (IntSet.elements sup) in
  let k = Array.length qubits in
  let local q =
    let rec go i = if qubits.(i) = q then i else go (i + 1) in
    go 0
  in
  let sub =
    List.fold_left
      (fun c g -> Circuit.add (Circuit.Instr.Gate (Circuit.Gate.remap local g)) c)
      (Circuit.empty k) gates
  in
  { Sim.Batch.qubits; u = Sim.Engine.unitary sub }

(* Cost-aware fusion. A fused block is applied as a dense, zero-skipping
   [m x m] operator costing [nnz(u) / m] complex multiply-accumulates per
   amplitude; the batch engine's row-sweeping kernels apply a controlled
   single-target gate for [2 / 2^controls] per amplitude and a swap as
   pure moves. A candidate block is kept only when it is at least as
   cheap as replaying its gates directly — true for long narrow segments
   (the characterization hot path), false for short dense ones (random
   circuits where barely two gates share a support). Gates the direct
   kernels cannot express (multi-target non-swap) force fusion. *)
let direct_cost (g : Circuit.Gate.t) =
  match (g.Circuit.Gate.name, g.Circuit.Gate.targets) with
  | "swap", [ _; _ ] when g.Circuit.Gate.controls = [] -> Some 0.5
  | _, [ _ ] ->
      let nc = List.length g.Circuit.Gate.controls in
      Some (2.0 /. float_of_int (1 lsl nc))
  | _ -> None

let block_cost (blk : Sim.Batch.block) =
  let m = 1 lsl Array.length blk.Sim.Batch.qubits in
  let re = blk.Sim.Batch.u.Linalg.Cmat.re
  and im = blk.Sim.Batch.u.Linalg.Cmat.im in
  let nnz = ref 0 in
  Array.iteri (fun i x -> if x <> 0. || im.(i) <> 0. then incr nnz) re;
  float_of_int !nnz /. float_of_int m

let emit_fused ?(clifford_direct = false) emit sup gates =
  let dcost =
    List.fold_left
      (fun acc g ->
        match (acc, direct_cost g) with
        | Some a, Some c -> Some (a +. c)
        | _ -> None)
      (Some 0.) gates
  in
  let all_direct () = List.iter (fun g -> emit (Sim.Batch.Direct g)) gates in
  match dcost with
  | Some total when total < 1.0 ->
      (* a unitary has no zero row, so block_cost >= 1 and fusion could
         never win — skip materializing the block entirely *)
      all_direct ()
  | Some _
    when clifford_direct
         && Analysis.Classify.gates gates = Analysis.Classify.Clifford ->
      (* opt-in: Clifford segments run on sparse kernels (or the tableau)
         without paying dense materialization at compile time *)
      all_direct ()
  | dcost -> (
      let blk = block_of sup gates in
      match dcost with
      | Some total when block_cost blk > total -> all_direct ()
      | _ -> emit (Sim.Batch.Block blk))

let compile_direct ?(cutoff = default_cutoff)
    ?(block_cutoff = default_block_cutoff) ?(clifford_direct = false) c =
  if cutoff < 1 || block_cutoff < 1 then
    invalid_arg "Segments.compile: cutoffs must be >= 1";
  Obs.Span.with_ ~name:"segments.compile" @@ fun () ->
  let items = ref [] in
  let pending = ref [] in
  let source_ops = ref 0 in
  let emit item =
    if Obs.enabled () then begin
      match item with
      | Sim.Batch.Block b ->
          Obs.Metrics.counter_add "segment_fused_total" 1;
          Obs.Metrics.observe "segment_block_qubits"
            (float_of_int (Array.length b.Sim.Batch.qubits))
      | Sim.Batch.Direct _ -> Obs.Metrics.counter_add "segment_direct_total" 1
      | Sim.Batch.Fence _ -> ()
    end;
    items := item :: !items
  in
  (* flush the pending unitary run as fused operators *)
  let flush_segment () =
    match List.rev !pending with
    | [] -> ()
    | gates ->
        pending := [];
        let sup = support gates in
        if IntSet.cardinal sup <= cutoff then
          (* narrow segment: one block over its whole support *)
          emit_fused ~clifford_direct emit sup gates
        else begin
          (* wide segment: greedily pack consecutive gates while the
             running support stays within [block_cutoff] qubits *)
          let cur = ref [] and cur_sup = ref IntSet.empty in
          let flush_cur () =
            match List.rev !cur with
            | [] -> ()
            | [ g ] when IntSet.cardinal !cur_sup > block_cutoff ->
                (* a single gate too wide to fuse (e.g. a many-control
                   Toffoli): the row-sweeping kernel beats a huge block *)
                emit (Sim.Batch.Direct g)
            | gs -> emit_fused ~clifford_direct emit !cur_sup gs
          in
          List.iter
            (fun g ->
              let gsup = support [ g ] in
              let u = IntSet.union !cur_sup gsup in
              if !cur = [] || IntSet.cardinal u <= block_cutoff then begin
                cur := g :: !cur;
                cur_sup := u
              end
              else begin
                flush_cur ();
                cur := [ g ];
                cur_sup := gsup
              end)
            gates;
          flush_cur ()
        end
  in
  List.iter
    (fun instr ->
      match instr with
      | Circuit.Instr.Gate g ->
          incr source_ops;
          pending := g :: !pending
      | Circuit.Instr.Barrier _ ->
          (* a barrier fences fusion but emits nothing at run time *)
          flush_segment ()
      | fence ->
          flush_segment ();
          emit (Sim.Batch.Fence fence))
    (Circuit.instrs c);
  flush_segment ();
  {
    Sim.Batch.num_qubits = Circuit.num_qubits c;
    num_clbits = Circuit.num_clbits c;
    items = List.rev !items;
    source_ops = !source_ops;
  }

(* Plan memo: keyed by the exact circuit bytes (barriers and fences are
   semantically load-bearing here, so no canonicalization) plus the
   cutoffs. A plan is pure data (fused operators, direct gates, fence
   instructions), so a cached plan is the compiled plan. *)
let compile ?cutoff ?block_cutoff ?clifford_direct ?cache c =
  match cache with
  | None -> compile_direct ?cutoff ?block_cutoff ?clifford_direct c
  | Some cache -> (
      let key =
        Cache.Canon.digest
          (String.concat "\x00"
             [
               "plan-v1";
               Cache.Canon.exact_bytes c;
               Marshal.to_string (cutoff, block_cutoff, clifford_direct) [];
             ])
      in
      match Cache.find_value cache ~ns:"segments" key with
      | Some plan -> plan
      | None ->
          let plan = compile_direct ?cutoff ?block_cutoff ?clifford_direct c in
          Cache.store_value cache ~ns:"segments" key plan;
          plan)
