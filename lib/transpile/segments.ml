module IntSet = Set.Make (Int)

let default_cutoff = 6
let default_block_cutoff = 3

let support gates =
  List.fold_left
    (fun acc g ->
      List.fold_left
        (fun acc q -> IntSet.add q acc)
        acc (Circuit.Gate.qubits g))
    IntSet.empty gates

(* Fuse [gates] (whose union support is [sup]) into one block operator:
   remap them onto a local register ordered by ascending global qubit and
   materialize the sub-circuit unitary column by column. *)
let block_of sup gates =
  let qubits = Array.of_list (IntSet.elements sup) in
  let k = Array.length qubits in
  let local q =
    let rec go i = if qubits.(i) = q then i else go (i + 1) in
    go 0
  in
  let sub =
    List.fold_left
      (fun c g -> Circuit.add (Circuit.Instr.Gate (Circuit.Gate.remap local g)) c)
      (Circuit.empty k) gates
  in
  { Sim.Batch.qubits; u = Sim.Engine.unitary sub }

(* Cost-aware fusion. A fused block is applied as a dense, zero-skipping
   [m x m] operator costing [nnz(u) / m] complex multiply-accumulates per
   amplitude; the batch engine's row-sweeping kernels apply a controlled
   single-target gate for [2 / 2^controls] per amplitude and a swap as
   pure moves. A candidate block is kept only when it is at least as
   cheap as replaying its gates directly — true for long narrow segments
   (the characterization hot path), false for short dense ones (random
   circuits where barely two gates share a support). Gates the direct
   kernels cannot express (multi-target non-swap) force fusion. *)
let direct_cost (g : Circuit.Gate.t) =
  match (g.Circuit.Gate.name, g.Circuit.Gate.targets) with
  | "swap", [ _; _ ] when g.Circuit.Gate.controls = [] -> Some 0.5
  | _, [ _ ] ->
      let nc = List.length g.Circuit.Gate.controls in
      Some (2.0 /. float_of_int (1 lsl nc))
  | _ -> None

let block_cost (blk : Sim.Batch.block) =
  let m = 1 lsl Array.length blk.Sim.Batch.qubits in
  let re = blk.Sim.Batch.u.Linalg.Cmat.re
  and im = blk.Sim.Batch.u.Linalg.Cmat.im in
  let nnz = ref 0 in
  Array.iteri (fun i x -> if x <> 0. || im.(i) <> 0. then incr nnz) re;
  float_of_int !nnz /. float_of_int m

(* [tagged] pairs each gate with its source instruction index, so the plan
   can carry provenance for the certificate without a second compile *)
let emit_fused ?(clifford_direct = false) emit sup tagged =
  let gates = List.map snd tagged in
  let dcost =
    List.fold_left
      (fun acc g ->
        match (acc, direct_cost g) with
        | Some a, Some c -> Some (a +. c)
        | _ -> None)
      (Some 0.) gates
  in
  let all_direct () =
    List.iter (fun (i, g) -> emit ([ i ], Sim.Batch.Direct g)) tagged
  in
  match dcost with
  | Some total when total < 1.0 ->
      (* a unitary has no zero row, so block_cost >= 1 and fusion could
         never win — skip materializing the block entirely *)
      all_direct ()
  | Some _
    when clifford_direct
         && Analysis.Classify.gates gates = Analysis.Classify.Clifford ->
      (* opt-in: Clifford segments run on sparse kernels (or the tableau)
         without paying dense materialization at compile time *)
      all_direct ()
  | dcost -> (
      let blk = block_of sup gates in
      match dcost with
      | Some total when block_cost blk > total -> all_direct ()
      | _ -> emit (List.map fst tagged, Sim.Batch.Block blk))

let compile_direct_cert ?(cutoff = default_cutoff)
    ?(block_cutoff = default_block_cutoff) ?(clifford_direct = false) c =
  if cutoff < 1 || block_cutoff < 1 then
    invalid_arg "Segments.compile: cutoffs must be >= 1";
  Obs.Span.with_ ~name:"segments.compile" @@ fun () ->
  let items = ref [] in
  let pending = ref [] in
  let dropped_barriers = ref [] in
  let source_ops = ref 0 in
  let emit ((_, item) as tagged_item) =
    if Obs.enabled () then begin
      match item with
      | Sim.Batch.Block b ->
          Obs.Metrics.counter_add "segment_fused_total" 1;
          Obs.Metrics.observe "segment_block_qubits"
            (float_of_int (Array.length b.Sim.Batch.qubits))
      | Sim.Batch.Direct _ -> Obs.Metrics.counter_add "segment_direct_total" 1
      | Sim.Batch.Fence _ -> ()
    end;
    items := tagged_item :: !items
  in
  (* flush the pending unitary run as fused operators *)
  let flush_segment () =
    match List.rev !pending with
    | [] -> ()
    | tagged ->
        pending := [];
        let sup = support (List.map snd tagged) in
        if IntSet.cardinal sup <= cutoff then
          (* narrow segment: one block over its whole support *)
          emit_fused ~clifford_direct emit sup tagged
        else begin
          (* wide segment: greedily pack consecutive gates while the
             running support stays within [block_cutoff] qubits *)
          let cur = ref [] and cur_sup = ref IntSet.empty in
          let flush_cur () =
            match List.rev !cur with
            | [] -> ()
            | [ (i, g) ] when IntSet.cardinal !cur_sup > block_cutoff ->
                (* a single gate too wide to fuse (e.g. a many-control
                   Toffoli): the row-sweeping kernel beats a huge block *)
                emit ([ i ], Sim.Batch.Direct g)
            | gs -> emit_fused ~clifford_direct emit !cur_sup gs
          in
          List.iter
            (fun (i, g) ->
              let gsup = support [ g ] in
              let u = IntSet.union !cur_sup gsup in
              if !cur = [] || IntSet.cardinal u <= block_cutoff then begin
                cur := (i, g) :: !cur;
                cur_sup := u
              end
              else begin
                flush_cur ();
                cur := [ (i, g) ];
                cur_sup := gsup
              end)
            tagged;
          flush_cur ()
        end
  in
  List.iteri
    (fun idx instr ->
      match instr with
      | Circuit.Instr.Gate g ->
          incr source_ops;
          pending := (idx, g) :: !pending
      | Circuit.Instr.Barrier _ ->
          (* a barrier fences fusion but emits nothing at run time *)
          flush_segment ();
          dropped_barriers := idx :: !dropped_barriers
      | fence ->
          flush_segment ();
          emit ([ idx ], Sim.Batch.Fence fence))
    (Circuit.instrs c);
  flush_segment ();
  let tagged_items = List.rev !items in
  let plan =
    {
      Sim.Batch.num_qubits = Circuit.num_qubits c;
      num_clbits = Circuit.num_clbits c;
      items = List.map snd tagged_items;
      source_ops = !source_ops;
    }
  in
  let _, mapped_rev, groups_rev =
    List.fold_left
      (fun (k, mapped, groups) (origins, item) ->
        match (item, origins) with
        | Sim.Batch.Block _, os ->
            ( k + 1,
              mapped,
              Certify.Local_equiv { before = os; after = [ k ] } :: groups )
        | (Sim.Batch.Direct _ | Sim.Batch.Fence _), [ i ] ->
            (k + 1, (i, k) :: mapped, groups)
        | _ -> assert false)
      (0, [], []) tagged_items
  in
  let barrier_obls =
    List.rev_map
      (fun idx -> Certify.Barrier_elim { index = idx })
      !dropped_barriers
  in
  let step =
    {
      Certify.pass = "segments";
      obligations = List.rev groups_rev @ barrier_obls;
      mapped = List.rev mapped_rev;
      output = Certify.Plan plan;
    }
  in
  (plan, step)

let compile_direct ?cutoff ?block_cutoff ?clifford_direct c =
  fst (compile_direct_cert ?cutoff ?block_cutoff ?clifford_direct c)

(* Plan memo: keyed by the exact circuit bytes (barriers and fences are
   semantically load-bearing here, so no canonicalization) plus the
   cutoffs. A plan is pure data (fused operators, direct gates, fence
   instructions), so a cached plan is the compiled plan. *)
let plan_key ~tag ?cutoff ?block_cutoff ?clifford_direct c =
  Cache.Canon.digest
    (String.concat "\x00"
       [
         tag;
         Cache.Canon.exact_bytes c;
         Marshal.to_string (cutoff, block_cutoff, clifford_direct) [];
       ])

let compile ?cutoff ?block_cutoff ?clifford_direct ?cache c =
  match cache with
  | None -> compile_direct ?cutoff ?block_cutoff ?clifford_direct c
  | Some cache -> (
      let key = plan_key ~tag:"plan-v1" ?cutoff ?block_cutoff ?clifford_direct c in
      match Cache.find_value cache ~ns:"segments" key with
      | Some plan -> plan
      | None ->
          let plan = compile_direct ?cutoff ?block_cutoff ?clifford_direct c in
          Cache.store_value cache ~ns:"segments" key plan;
          plan)

(* Certified plans live under their own key prefix: a plain "plan-v1"
   entry carries no certificate, so a certified request can never be
   served an uncertified plan — the lookups are disjoint by construction. *)
let compile_cert ?cutoff ?block_cutoff ?clifford_direct ?cache c =
  match cache with
  | None -> compile_direct_cert ?cutoff ?block_cutoff ?clifford_direct c
  | Some cache -> (
      let key =
        plan_key ~tag:"plan-cert-v1" ?cutoff ?block_cutoff ?clifford_direct c
      in
      match Cache.find_value cache ~ns:"segments" key with
      | Some pair -> pair
      | None ->
          let pair =
            compile_direct_cert ?cutoff ?block_cutoff ?clifford_direct c
          in
          Cache.store_value cache ~ns:"segments" key pair;
          pair)
