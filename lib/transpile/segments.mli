(** Segment compiler: split a circuit at its fences and fuse each
    purely-unitary segment into block operators for [Sim.Batch].

    Fences are the non-unitary instructions — tracepoints, measurements,
    resets and classical feedback — plus barriers: no fusion crosses them,
    so every snapshot and every classically-dependent branch sees exactly
    the state the gate-by-gate engine would produce. Barriers fence fusion
    but emit nothing into the plan.

    Fusion policy (the qubit-cutoff heuristic):
    - a segment whose whole support spans at most [cutoff] qubits is a
      candidate for a single [2^k x 2^k] block operator over that support
      (applying it costs one fused operator per run instead of one per
      gate);
    - a wider segment is greedily packed left to right: consecutive gates
      are merged while their running union support stays within
      [block_cutoff] qubits (this subsumes classic 1q-run fusion at
      [block_cutoff = 1]);
    - a single gate whose own support exceeds [block_cutoff] (e.g. a
      many-control Toffoli) stays a [Direct] item — a sparse row sweep
      beats materializing a huge, mostly-identity block;
    - every candidate block is kept only if its dense (zero-skipping)
      application — [nnz(u)/2^k] multiply-accumulates per amplitude — is
      at least as cheap as replaying its gates through the direct
      kernels ([2/2^controls] per amplitude each). Long narrow segments
      fuse (the characterization hot path); short dense ones (e.g. two
      random gates that barely share a support) stay [Direct].

    Block unitaries are built once per compile by running the segment's
    gates column by column ([Sim.Engine.unitary]), so a plan pays the
    circuit walk once and every subsequent batch column reuses it. *)

val default_cutoff : int
(** [6]: full-segment fusion up to 64-dimensional blocks. Beyond this the
    [O(4^k)] block application overtakes per-gate sweeps. *)

val default_block_cutoff : int
(** [3]: greedy packing inside wide segments stops at 8x8 blocks. *)

(** [compile ?cutoff ?block_cutoff ?clifford_direct c] compiles [c] into a
    batched execution plan. [plan.source_ops] records the circuit's own
    unitary gate count; [Sim.Batch.ops] on the result counts the fused
    operators actually applied per run. Raises [Invalid_argument] if a
    cutoff is [< 1].

    Segments whose direct replay cost is provably below any block's
    ([< 1.0] multiply-accumulates per amplitude, e.g. a lone CX) are
    emitted [Direct] without materializing the candidate block at all —
    same plan as before, cheaper compile. With [clifford_direct] (default
    [false]) segments classified Clifford by [Analysis.Classify] also skip
    dense fusion: their sparse kernels are cheap and keeping them as plain
    gates preserves the option of running them on the stabilizer tableau.

    [cache] memoizes the whole plan, keyed by the exact circuit bytes
    (barriers fence fusion, so no canonicalization) and the cutoffs. *)
val compile :
  ?cutoff:int ->
  ?block_cutoff:int ->
  ?clifford_direct:bool ->
  ?cache:Cache.t ->
  Circuit.t ->
  Sim.Batch.plan

(** [compile_cert] is {!compile} — same plan bit-for-bit ([compile] is
    [fst] of it) — additionally returning the translation-validation
    {!Certify.step} relating the circuit to the plan: each [Block] is a
    [Local_equiv] group over the instructions it fused, [Direct] gates and
    [Fence] instructions are mapped untouched, and dropped barriers carry
    [Barrier_elim] obligations. With [cache], certified plans are memoized
    under their own key prefix ([plan-cert-v1]), disjoint from {!compile}'s
    — a certified request is never served a plan that was cached without
    its certificate. *)
val compile_cert :
  ?cutoff:int ->
  ?block_cutoff:int ->
  ?clifford_direct:bool ->
  ?cache:Cache.t ->
  Circuit.t ->
  Sim.Batch.plan * Certify.step
