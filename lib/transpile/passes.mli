(** Peephole circuit optimization. Shrinking a circuit before
    characterization reduces both hardware time and accumulated noise; the
    passes below preserve the unitary semantics exactly (property-tested
    against the simulator) and never move gates across tracepoints,
    measurements or barriers — those act as optimization fences, so
    tracepoint states are untouched.

    Passes:
    - cancel adjacent mutually-inverse gate pairs (H H, X X, CX CX, S Sdg, ...)
    - merge adjacent rotations on the same axis (RZ a; RZ b -> RZ (a+b))
    - drop identity rotations (angle ~ 0 mod 4pi, global-phase-exact) *)

(** [cancel_inverses c] removes adjacent inverse pairs (one sweep). *)
val cancel_inverses : Circuit.t -> Circuit.t

(** [merge_rotations c] fuses adjacent same-axis rotations on one qubit
    (one sweep). *)
val merge_rotations : Circuit.t -> Circuit.t

(** [drop_identities ?eps c] removes rotations by ~0 (and [p(0)], [id]). *)
val drop_identities : ?eps:float -> Circuit.t -> Circuit.t

(** [fuse_1q c] fuses runs of adjacent uncontrolled single-qubit gates on the
    same wire into one ["u2x2"] gate carrying the exact matrix product
    (8 row-major (re, im) parameters), so a trajectory applies one kernel
    sweep instead of several. "Adjacent" means no intervening instruction
    touches the wire; tracepoints, measurements and barriers fence the fusion
    just like the other passes. The matrix product is computed once at
    transpile time, so semantics (including global phase) are preserved
    exactly. Note: fused circuits use the non-standard ["u2x2"] name, so they
    are meant for the simulator, not for QASM export. *)
val fuse_1q : Circuit.t -> Circuit.t

(** [optimize ?max_passes c] iterates all passes to a fixed point. *)
val optimize : ?max_passes:int -> Circuit.t -> Circuit.t

(** [gate_reduction ~before ~after] is the fraction of gates removed. *)
val gate_reduction : before:Circuit.t -> after:Circuit.t -> float

(** [prune_lightcone c] deletes every instruction outside the union
    lightcone of all tracepoints and measurements
    ({!Analysis.Lightcone.union_keep}): gates, feedback gates and resets
    that provably cannot affect any tracepoint's reduced state or the
    joint measurement distribution. Unlike the peephole passes above this
    does NOT preserve the final statevector on unobserved qubits, so use
    it for characterization pipelines, not general rewriting. Verified
    tracepoint-state-preserving by [Testkit.Oracle.prune_preserves_traces]. *)
val prune_lightcone : Circuit.t -> Circuit.t

(** {2 Certificate-emitting variants}

    Each [_cert] function is the same pass — the plain entry points above
    are [fst] of these, so certified and uncertified runs produce
    bit-identical circuits — additionally returning a translation-validation
    {!Certify.step} (or, for {!optimize_cert}, the chain of steps in
    application order) for {!Certify.check}. *)

val cancel_inverses_cert : Circuit.t -> Circuit.t * Certify.step
val merge_rotations_cert : Circuit.t -> Circuit.t * Certify.step
val drop_identities_cert : ?eps:float -> Circuit.t -> Circuit.t * Certify.step
val fuse_1q_cert : Circuit.t -> Circuit.t * Certify.step
val optimize_cert : ?max_passes:int -> Circuit.t -> Circuit.t * Certify.certificate
val prune_lightcone_cert : Circuit.t -> Circuit.t * Certify.step
