(* Translation validation for the transpile pipeline.

   Every rewrite pass (Passes, Segments) has a certificate-emitting
   variant producing a [step]: a set of local proof obligations plus the
   order-preserving map of untouched instructions, together with the
   step's output. [check] is the independent checker: it validates each
   step of the chain against the step's input and accepts only when

   - every input and output instruction is accounted for exactly once
     (by an obligation or by the untouched map) — nothing is silently
     inserted, dropped or duplicated;
   - the untouched map is an order-preserving injection between
     structurally equal instructions ([Permutation]);
   - every [Local_equiv] group's replaced product equals its replacement
     up to global phase on the group's union support (a direct
     [2^k x 2^k] matrix comparison — the whole circuit is never
     simulated), with every instruction interleaved into the group's
     span provably support-disjoint from it;
   - per-wire instruction order is preserved: projecting the surviving
     labeled operations onto each qubit wire and each classical-bit wire
     (measure writes, feedback reads) yields identical sequences on both
     sides — the Mazurkiewicz-trace argument that only commuting
     reorderings happened globally;
   - every [Outside_cone] deletion is re-derived from
     [Analysis.Lightcone.union_keep] on the step's input, every
     [Identity_elim] gate matrix is within eps of the identity, and
     every [Barrier_elim] instruction really is a barrier.

   The checker shares nothing with the pass implementations beyond the
   gate-matrix table ([Qstate.Gates.by_name], via [Sim.Engine.unitary]
   on single-instruction subcircuits): it never looks at provenance the
   passes recorded beyond the certificate itself, and re-derives every
   analysis fact it relies on. Cost is O(total obligation size): each
   obligation touches only its own instructions and a [2^k]-dimensional
   local space capped at {!max_support} qubits. *)

type obligation =
  | Local_equiv of { before : int list; after : int list }
      (** the product of the [before] input instructions equals the
          product of the [after] output instructions up to global phase
          on their union support; [after = []] claims the product is the
          identity (a deletion) *)
  | Outside_cone of { index : int }
      (** input instruction [index] was pruned as provably outside the
          union lightcone of all tracepoints and measurements *)
  | Identity_elim of { index : int; eps : float }
      (** input gate [index] was dropped as within [eps] of the identity *)
  | Barrier_elim of { index : int }
      (** input barrier [index] was dropped (plans carry no barriers) *)

type target = Circ of Circuit.t | Plan of Sim.Batch.plan

type step = {
  pass : string;
  obligations : obligation list;
  mapped : (int * int) list;
      (** untouched instructions as (input index, output index) pairs *)
  output : target;
}

type certificate = step list

type failure = {
  fail_pass : string;
  kind : string;
  reason : string;
  before_index : int option;
  after_index : int option;
  loc : (int * int) option;
      (** source location of the offending input instruction, when the
          failing step is the first of the chain and [locs] were given *)
}

type summary = {
  chain_steps : int;
  local_equiv : int;
  outside_cone : int;
  identity_elim : int;
  barrier_elim : int;
  permutation : int;  (** mapped (untouched) instruction pairs *)
}

let max_support = 8

(* ----------------------------- summaries ------------------------------ *)

let summarize (cert : certificate) =
  List.fold_left
    (fun acc step ->
      let acc =
        { acc with permutation = acc.permutation + List.length step.mapped }
      in
      List.fold_left
        (fun acc -> function
          | Local_equiv _ -> { acc with local_equiv = acc.local_equiv + 1 }
          | Outside_cone _ -> { acc with outside_cone = acc.outside_cone + 1 }
          | Identity_elim _ ->
              { acc with identity_elim = acc.identity_elim + 1 }
          | Barrier_elim _ -> { acc with barrier_elim = acc.barrier_elim + 1 })
        acc step.obligations)
    {
      chain_steps = List.length cert;
      local_equiv = 0;
      outside_cone = 0;
      identity_elim = 0;
      barrier_elim = 0;
      permutation = 0;
    }
    cert

(* the discharged rewrite obligations, excluding the permutation pairs:
   this is what "the pass proved something" means for smoke gates *)
let total_obligations s =
  s.local_equiv + s.outside_cone + s.identity_elim + s.barrier_elim

let pp_failure ppf f =
  Format.fprintf ppf "pass %s: %s: %s" f.fail_pass f.kind f.reason;
  (match (f.before_index, f.after_index) with
  | Some i, Some j -> Format.fprintf ppf " (input #%d, output #%d)" i j
  | Some i, None -> Format.fprintf ppf " (input #%d)" i
  | None, Some j -> Format.fprintf ppf " (output #%d)" j
  | None, None -> ());
  match f.loc with
  | Some (line, col) -> Format.fprintf ppf " at %d:%d" line col
  | None -> ()

let failure_message f = Format.asprintf "%a" pp_failure f

(* ---------------------- the uniform operation view -------------------- *)

(* both circuits and plans are checked as arrays of operations *)
type op =
  | Op_gate of Circuit.Gate.t
  | Op_block of Sim.Batch.block
  | Op_other of Circuit.Instr.t

let ops_of_circuit c =
  Array.of_list
    (List.map
       (function Circuit.Instr.Gate g -> Op_gate g | i -> Op_other i)
       (Circuit.instrs c))

let ops_of_plan (p : Sim.Batch.plan) =
  Array.of_list
    (List.map
       (function
         | Sim.Batch.Block b -> Op_block b
         | Sim.Batch.Direct g -> Op_gate g
         | Sim.Batch.Fence i -> Op_other i)
       p.Sim.Batch.items)

let op_qubits = function
  | Op_gate g -> Circuit.Gate.qubits g
  | Op_block b -> Array.to_list b.Sim.Batch.qubits
  | Op_other i -> Circuit.Instr.qubits i

(* wires for the order-projection check: qubit wires, plus classical-bit
   wires (offset by [n]) for measure writes and feedback reads *)
let op_wires ~n op =
  op_qubits op
  @
  match op with
  | Op_other (Circuit.Instr.Measure { clbit; _ }) -> [ n + clbit ]
  | Op_other (Circuit.Instr.If_gate { clbits; _ }) ->
      List.map (fun b -> n + b) clbits
  | _ -> []

let cmat_bits (a : Linalg.Cmat.t) (b : Linalg.Cmat.t) =
  a.Linalg.Cmat.rows = b.Linalg.Cmat.rows
  && a.Linalg.Cmat.cols = b.Linalg.Cmat.cols
  && a.Linalg.Cmat.re = b.Linalg.Cmat.re
  && a.Linalg.Cmat.im = b.Linalg.Cmat.im

let op_equal a b =
  match (a, b) with
  | Op_gate g, Op_gate g' -> Circuit.Gate.equal g g'
  | Op_other i, Op_other i' -> i = i'
  | Op_block b, Op_block b' ->
      b.Sim.Batch.qubits = b'.Sim.Batch.qubits
      && cmat_bits b.Sim.Batch.u b'.Sim.Batch.u
  | _ -> false

let op_describe = function
  | Op_gate g -> Format.asprintf "%a" Circuit.Gate.pp g
  | Op_block b ->
      Printf.sprintf "block[%s]"
        (String.concat ","
           (List.map string_of_int (Array.to_list b.Sim.Batch.qubits)))
  | Op_other i -> Format.asprintf "%a" Circuit.Instr.pp i

(* ------------------------- local unitary algebra ---------------------- *)

(* position of global qubit [q] in the sorted support [s], or [None] *)
let pos_in (s : int array) q =
  let rec go i = if i >= Array.length s then None
    else if s.(i) = q then Some i
    else go (i + 1)
  in
  go 0

(* the gate embedded over the full support [s]: remap to local indices and
   materialize a one-gate subcircuit (this is the only place the checker
   touches the gate-matrix table, the one component shared with passes) *)
let embed_gate (s : int array) (g : Circuit.Gate.t) =
  let local q =
    match pos_in s q with
    | Some p -> p
    | None -> invalid_arg "Certify.embed_gate: qubit outside support"
  in
  let sub =
    Circuit.add
      (Circuit.Instr.Gate (Circuit.Gate.remap local g))
      (Circuit.empty (Array.length s))
  in
  Sim.Engine.unitary sub

(* a plan block embedded over [s]: block-local bit [t] is global qubit
   [b.qubits.(t)], which sits at bit [pos t] of the support space; entries
   are identity on the support bits outside the block *)
let embed_block (s : int array) (b : Sim.Batch.block) =
  let k = Array.length s in
  let m = Array.length b.Sim.Batch.qubits in
  let pos =
    Array.map
      (fun q ->
        match pos_in s q with
        | Some p -> p
        | None -> invalid_arg "Certify.embed_block: qubit outside support")
      b.Sim.Batch.qubits
  in
  let dim = 1 lsl k in
  let mask = Array.fold_left (fun acc p -> acc lor (1 lsl p)) 0 pos in
  let gather full =
    let sub = ref 0 in
    for t = 0 to m - 1 do
      sub := !sub lor (((full lsr pos.(t)) land 1) lsl t)
    done;
    !sub
  in
  let out = Linalg.Cmat.create dim dim in
  for r = 0 to dim - 1 do
    let sr = gather r in
    for c = 0 to dim - 1 do
      if r land lnot mask = c land lnot mask then
        Linalg.Cmat.set out r c (Linalg.Cmat.get b.Sim.Batch.u sr (gather c))
    done
  done;
  out

let embed_op s = function
  | Op_gate g -> embed_gate s g
  | Op_block b -> embed_block s b
  | Op_other _ -> invalid_arg "Certify.embed_op: non-unitary operation"

(* product of [ops] in program order over support [s]: later operations
   multiply on the left *)
let local_product s ops =
  List.fold_left
    (fun u op -> Linalg.Cmat.mul (embed_op s op) u)
    (Linalg.Cmat.identity (1 lsl Array.length s))
    ops

(* [a = phase * b] for some unit-modulus phase, entrywise within [eps]
   (aligned on the largest-magnitude entry of [a], like [Equiv]) *)
let mats_equal_up_to_phase ~eps a b =
  let d, _ = Linalg.Cmat.dims a in
  let d', _ = Linalg.Cmat.dims b in
  d = d'
  &&
  let best = ref (0, 0) and best_mag = ref 0. in
  for i = 0 to d - 1 do
    for j = 0 to d - 1 do
      let m = Linalg.Cx.norm (Linalg.Cmat.get a i j) in
      if m > !best_mag then begin
        best := (i, j);
        best_mag := m
      end
    done
  done;
  let i, j = !best in
  let za = Linalg.Cmat.get a i j and zb = Linalg.Cmat.get b i j in
  Linalg.Cx.norm zb >= eps
  &&
  let phase = Linalg.Cx.div za zb in
  Float.abs (Linalg.Cx.norm phase -. 1.) < 1e-6
  && Linalg.Cmat.equal ~eps a (Linalg.Cmat.scale phase b)

let mat_is_identity ~eps m =
  let d, d' = Linalg.Cmat.dims m in
  d = d'
  &&
  let ok = ref true in
  for i = 0 to d - 1 do
    for j = 0 to d - 1 do
      let want = if i = j then Linalg.Cx.one else Linalg.Cx.zero in
      if Linalg.Cx.norm (Linalg.Cx.sub (Linalg.Cmat.get m i j) want) > eps
      then ok := false
    done
  done;
  !ok

(* ----------------------------- step check ----------------------------- *)

type account = Unaccounted | Acc_mapped of int | Acc_member of int | Acc_gone

module IntSet = Set.Make (Int)

(* check one step: [input] is the step's input circuit (for lightcone
   re-derivation), [ops_in]/[ops_out] the two operation arrays, [n]/[m]
   the register sizes. Returns failures (empty = step accepted). *)
let check_step ~eps ~loc_of ~input ~n ~m ops_in ops_out (st : step) =
  let fails = ref [] in
  let fail ?bi ?ai kind fmt =
    Printf.ksprintf
      (fun reason ->
        fails :=
          {
            fail_pass = st.pass;
            kind;
            reason;
            before_index = bi;
            after_index = ai;
            loc = Option.bind bi loc_of;
          }
          :: !fails)
      fmt
  in
  let nb = Array.length ops_in and na = Array.length ops_out in
  let b_acc = Array.make nb Unaccounted in
  let a_acc = Array.make na Unaccounted in
  let groups =
    Array.of_list
      (List.filter_map
         (function
           | Local_equiv { before; after } -> Some (before, after)
           | _ -> None)
         st.obligations)
  in
  (* 1. account every index exactly once *)
  let claim_b acc i =
    if i < 0 || i >= nb then fail "coverage" "input index %d out of range" i
    else if b_acc.(i) <> Unaccounted then
      fail ~bi:i "coverage" "input instruction %d accounted for twice" i
    else b_acc.(i) <- acc
  in
  let claim_a acc j =
    if j < 0 || j >= na then fail "coverage" "output index %d out of range" j
    else if a_acc.(j) <> Unaccounted then
      fail ~ai:j "coverage" "output instruction %d accounted for twice" j
    else a_acc.(j) <- acc
  in
  List.iteri
    (fun k (i, j) ->
      claim_b (Acc_mapped k) i;
      claim_a (Acc_mapped k) j)
    st.mapped;
  Array.iteri
    (fun g (before, after) ->
      List.iter (claim_b (Acc_member g)) before;
      List.iter (claim_a (Acc_member g)) after)
    groups;
  List.iter
    (function
      | Local_equiv _ -> ()
      | Outside_cone { index } | Identity_elim { index; _ }
      | Barrier_elim { index } ->
          claim_b Acc_gone index)
    st.obligations;
  Array.iteri
    (fun i a ->
      if a = Unaccounted then
        fail ~bi:i "coverage" "input instruction %d (%s) is unaccounted for"
          i
          (op_describe ops_in.(i)))
    b_acc;
  Array.iteri
    (fun j a ->
      if a = Unaccounted then
        fail ~ai:j "coverage" "output instruction %d (%s) is unaccounted for"
          j
          (op_describe ops_out.(j)))
    a_acc;
  if !fails <> [] then List.rev !fails
  else begin
    (* 2. Permutation: order-preserving injection over equal instructions *)
    let pairs =
      List.sort (fun (i, _) (i', _) -> compare i i') st.mapped
    in
    ignore
      (List.fold_left
         (fun prev (i, j) ->
           (match prev with
           | Some (_, j') when j <= j' ->
               fail ~bi:i ~ai:j "permutation"
                 "untouched instructions reordered (output %d after %d)" j j'
           | _ -> ());
           if not (op_equal ops_in.(i) ops_out.(j)) then
             fail ~bi:i ~ai:j "permutation"
               "mapped instruction changed: %s became %s"
               (op_describe ops_in.(i))
               (op_describe ops_out.(j));
           Some (i, j))
         None pairs);
    (* 3. deletions with their own justification *)
    let keep =
      lazy
        (match input with
        | Some c -> Some (Analysis.Lightcone.union_keep c)
        | None -> None)
    in
    List.iter
      (function
        | Local_equiv _ -> ()
        | Outside_cone { index } -> (
            match Lazy.force keep with
            | None ->
                fail ~bi:index "outside_cone"
                  "lightcone cannot be re-derived for a plan input"
            | Some keep ->
                if keep.(index) then
                  fail ~bi:index "outside_cone"
                    "pruned instruction %s is inside the union lightcone"
                    (op_describe ops_in.(index)))
        | Identity_elim { index; eps = elim_eps } -> (
            match ops_in.(index) with
            | Op_gate g -> (
                match
                  Qstate.Gates.by_name g.Circuit.Gate.name
                    g.Circuit.Gate.params
                with
                | exception _ ->
                    fail ~bi:index "identity_elim"
                      "cannot resolve a matrix for dropped gate %s"
                      (op_describe ops_in.(index))
                | mat ->
                    (* a controlled identity is the identity, so the base
                       matrix decides regardless of controls *)
                    if not (mat_is_identity ~eps:(Float.max eps elim_eps) mat)
                    then
                      fail ~bi:index "identity_elim"
                        "dropped gate %s is not the identity"
                        (op_describe ops_in.(index)))
            | _ ->
                fail ~bi:index "identity_elim"
                  "identity elimination names a non-gate instruction")
        | Barrier_elim { index } -> (
            match ops_in.(index) with
            | Op_other (Circuit.Instr.Barrier _) -> ()
            | _ ->
                fail ~bi:index "barrier_elim"
                  "barrier elimination names %s, not a barrier"
                  (op_describe ops_in.(index))))
      st.obligations;
    (* 4. Local_equiv groups *)
    let group_support = Array.make (Array.length groups) [||] in
    Array.iteri
      (fun g (before, after) ->
        let bad = ref false in
        List.iter
          (fun i ->
            match ops_in.(i) with
            | Op_gate _ -> ()
            | op ->
                bad := true;
                fail ~bi:i "local_equiv"
                  "replaced group contains non-gate instruction %s"
                  (op_describe op))
          before;
        List.iter
          (fun j ->
            match ops_out.(j) with
            | Op_gate _ | Op_block _ -> ()
            | op ->
                bad := true;
                fail ~ai:j "local_equiv"
                  "replacement contains non-unitary instruction %s"
                  (op_describe op))
          after;
        if not !bad then begin
          let sup_of ops idxs =
            List.fold_left
              (fun acc i ->
                List.fold_left
                  (fun acc q -> IntSet.add q acc)
                  acc (op_qubits ops.(i)))
              IntSet.empty idxs
          in
          let s_before = sup_of ops_in before in
          let s_after = sup_of ops_out after in
          if not (IntSet.subset s_after s_before) then
            fail "local_equiv"
              "replacement touches wires outside the replaced support"
          else if IntSet.cardinal s_before > max_support then
            fail "local_equiv"
              "group support spans %d qubits, above the checker's %d-qubit \
               limit"
              (IntSet.cardinal s_before)
              max_support
          else if before = [] then
            fail "local_equiv" "group replaces no instruction"
          else begin
            let s = Array.of_list (IntSet.elements s_before) in
            group_support.(g) <- s;
            (* Instructions interleaved into either span must be
               support-disjoint from the group, or collapsing the group to
               one point would reorder non-commuting operations. One
               exception is sound: a DELETION group (product ≡ identity)
               whose members all lie strictly inside this span collapses
               away first, so its members may share wires — collapse order
               is innermost-first on span nesting, and requiring strict
               containment rejects the circular interleaving (h x h x with
               claims {0,2} and {1,3}) where no such order exists. *)
            let check_span side ops idxs acc_arr =
              match idxs with
              | [] -> ()
              | _ ->
                  let lo = List.fold_left min (List.hd idxs) idxs in
                  let hi = List.fold_left max (List.hd idxs) idxs in
                  let nested_deletion g' =
                    g' <> g
                    &&
                    let before', after' = groups.(g') in
                    after' = []
                    && List.for_all (fun j -> j > lo && j < hi) before'
                  in
                  for i = lo + 1 to hi - 1 do
                    let exempt =
                      match acc_arr.(i) with
                      | Acc_member g' -> g' = g || nested_deletion g'
                      | _ -> false
                    in
                    if not exempt then
                      let qs = op_qubits ops.(i) in
                      if List.exists (fun q -> IntSet.mem q s_before) qs then
                        fail "local_equiv"
                          "%s instruction %d (%s) interleaves the group on \
                           a shared wire"
                          side i
                          (op_describe ops.(i))
                  done
            in
            check_span "input" ops_in before b_acc;
            check_span "output" ops_out after a_acc;
            if !fails = [] then begin
              (* the product is taken in program order regardless of how the
                 certificate listed the indices — trusting the given order
                 would let a reordered list smuggle in a different product *)
              let in_order idxs = List.sort_uniq compare idxs in
              let u_before =
                local_product s
                  (List.map (fun i -> ops_in.(i)) (in_order before))
              in
              let u_after =
                local_product s
                  (List.map (fun j -> ops_out.(j)) (in_order after))
              in
              if not (mats_equal_up_to_phase ~eps u_before u_after) then
                fail "local_equiv"
                  "replaced product differs from its replacement on qubits \
                   [%s]%s"
                  (String.concat ","
                     (List.map string_of_int (Array.to_list s)))
                  (if after = [] then " (claimed identity)" else "")
            end
          end
        end)
      groups;
    (* 5. per-wire order projection (qubit wires + classical-bit wires) *)
    if !fails = [] then begin
      let wires = n + m in
      let project ops acc_arr =
        let tbl = Array.make wires [] in
        let emitted = Array.make (Array.length groups) false in
        Array.iteri
          (fun idx op ->
            match acc_arr.(idx) with
            | Acc_gone | Unaccounted -> ()
            | Acc_mapped k ->
                List.iter
                  (fun w -> tbl.(w) <- `M k :: tbl.(w))
                  (op_wires ~n op)
            | Acc_member g ->
                (* the collapsed group occupies one position; deletions
                   ([after = []]) leave no trace on either side *)
                let _, after = groups.(g) in
                if after <> [] && not emitted.(g) then begin
                  emitted.(g) <- true;
                  Array.iter
                    (fun w -> tbl.(w) <- `G g :: tbl.(w))
                    group_support.(g)
                end)
          ops;
        Array.map List.rev tbl
      in
      let pb = project ops_in b_acc and pa = project ops_out a_acc in
      for w = 0 to wires - 1 do
        if pb.(w) <> pa.(w) then
          fail "permutation"
            "instruction order changed on %s %d (the rewrite moved an \
             operation across a dependency)"
            (if w < n then "qubit" else "clbit")
            (if w < n then w else w - n)
      done
    end;
    List.rev !fails
  end

(* ----------------------------- the chain ------------------------------ *)

let chain_failure ~pass ~kind reason =
  {
    fail_pass = pass;
    kind;
    reason;
    before_index = None;
    after_index = None;
    loc = None;
  }

let target_registers = function
  | Circ c -> (Circuit.num_qubits c, Circuit.num_clbits c)
  | Plan p -> (p.Sim.Batch.num_qubits, p.Sim.Batch.num_clbits)

let target_ops = function
  | Circ c -> ops_of_circuit c
  | Plan p -> ops_of_plan p

let run_chain ?locs ~eps (cert : certificate) before (final : target) =
  let rec go step_idx (cur : target) = function
    | [] ->
        (* chain exhausted: the last output must be the caller's result *)
        let co = target_ops cur and fo = target_ops final in
        let creg = target_registers cur and freg = target_registers final in
        let same =
          creg = freg
          && Array.length co = Array.length fo
          && Array.for_all2 op_equal co fo
        in
        if same then Ok (summarize cert)
        else
          Error
            [
              chain_failure ~pass:"(chain)" ~kind:"chain"
                "certificate output does not match the transpiled result";
            ]
    | st :: rest -> (
        match cur with
        | Plan _ ->
            Error
              [
                chain_failure ~pass:st.pass ~kind:"chain"
                  "a plan cannot be transformed further, but the chain \
                   continues";
              ]
        | Circ c ->
            let n = Circuit.num_qubits c and m = Circuit.num_clbits c in
            let out_reg = target_registers st.output in
            if out_reg <> (n, m) then
              Error
                [
                  chain_failure ~pass:st.pass ~kind:"chain"
                    (Printf.sprintf
                       "step changed the register (%d,%d) -> (%d,%d)" n m
                       (fst out_reg) (snd out_reg));
                ]
            else
              let loc_of =
                match locs with
                | Some a when step_idx = 0 ->
                    fun i ->
                      if i >= 0 && i < Array.length a then Some a.(i)
                      else None
                | _ -> fun _ -> None
              in
              let fs =
                check_step ~eps ~loc_of ~input:(Some c) ~n ~m
                  (ops_of_circuit c) (target_ops st.output) st
              in
              if fs <> [] then Error fs else go (step_idx + 1) st.output rest)
  in
  go 0 (Circ before) cert

let instrumented cert run =
  Obs.Span.with_ ~name:"certify.check" @@ fun () ->
  let result = run () in
  if Obs.enabled () then begin
    let s = summarize cert in
    let add kind v =
      if v > 0 then
        Obs.Metrics.counter_add
          ~labels:[ ("kind", kind) ]
          "certify_obligations_total" v
    in
    add "local_equiv" s.local_equiv;
    add "outside_cone" s.outside_cone;
    add "identity_elim" s.identity_elim;
    add "barrier_elim" s.barrier_elim;
    add "permutation" s.permutation;
    match result with
    | Ok _ -> ()
    | Error fs ->
        Obs.Metrics.counter_add "certify_failures_total" (List.length fs)
  end;
  result

let check ?locs ?(eps = 1e-9) cert before after =
  instrumented cert (fun () -> run_chain ?locs ~eps cert before (Circ after))

let check_plan ?locs ?(eps = 1e-9) cert before plan =
  instrumented cert (fun () -> run_chain ?locs ~eps cert before (Plan plan))
