(** Translation validation for the transpile pipeline.

    Certificate-emitting pass variants ({!Passes}, {!Segments}) record, for
    each rewrite, a {!step}: local proof obligations plus the
    order-preserving map of untouched instructions, together with the step's
    output. {!check} is the independent checker — it validates every step of
    the chain against the step's own input and shares nothing with the pass
    implementations beyond the gate-matrix table. Cost is O(total obligation
    size): every [Local_equiv] group is decided by a direct [2^k x 2^k]
    matrix comparison on the group's union support (capped at
    {!max_support} qubits), never by simulating the whole circuit, and
    deletions are re-justified from {!Analysis.Lightcone} or the gate matrix
    itself. See DESIGN.md §16. *)

type obligation =
  | Local_equiv of { before : int list; after : int list }
      (** product of the [before] input instructions ≡ product of the
          [after] output instructions up to global phase on their union
          support; [after = []] claims the product is the identity *)
  | Outside_cone of { index : int }
      (** input instruction [index] is provably outside the union lightcone
          of all tracepoints and measurements (re-derived by the checker) *)
  | Identity_elim of { index : int; eps : float }
      (** input gate [index] is within [eps] of the identity *)
  | Barrier_elim of { index : int }
      (** input barrier [index] was dropped (plans carry no barriers) *)

type target = Circ of Circuit.t | Plan of Sim.Batch.plan

type step = {
  pass : string;  (** pass name, e.g. ["cancel_inverses"] *)
  obligations : obligation list;
  mapped : (int * int) list;
      (** untouched instructions as (input index, output index) pairs; the
          checker requires an order-preserving injection between
          structurally equal instructions, and additionally that per-wire
          instruction order (qubit wires and classical-bit wires) is
          preserved across the whole step *)
  output : target;
}

(** One step per pass application, in application order. The first step's
    input is the original circuit; each later step's input is the previous
    step's output. Only the final step may produce a {!Sim.Batch.plan}. *)
type certificate = step list

type failure = {
  fail_pass : string;
  kind : string;
      (** ["coverage"], ["permutation"], ["local_equiv"], ["outside_cone"],
          ["identity_elim"], ["barrier_elim"] or ["chain"] *)
  reason : string;
  before_index : int option;
  after_index : int option;
  loc : (int * int) option;
      (** source location of the offending input instruction when the
          failing step is the chain's first and [locs] was supplied *)
}

type summary = {
  chain_steps : int;
  local_equiv : int;
  outside_cone : int;
  identity_elim : int;
  barrier_elim : int;
  permutation : int;  (** mapped (untouched) instruction pairs *)
}

(** Widest [Local_equiv] union support the checker will decide (a
    [2^k x 2^k] multiply per group member); wider groups are conservatively
    rejected. *)
val max_support : int

(** [check cert before after] validates the certificate chain from [before]
    and requires the last step's output to equal [after] instruction-for-
    instruction. [locs] gives per-instruction source locations of [before]
    (parallel to [Circuit.instrs before]); [eps] (default [1e-9]) bounds
    entrywise matrix comparison. [Ok] carries the obligation counts.
    Instrumented with the ["certify.check"] span and the
    [certify_obligations_total{kind}] / [certify_failures_total] counters. *)
val check :
  ?locs:(int * int) array ->
  ?eps:float ->
  certificate ->
  Circuit.t ->
  Circuit.t ->
  (summary, failure list) result

(** [check_plan cert before plan] is {!check} for a chain ending in a
    simulation plan (segment compilation). *)
val check_plan :
  ?locs:(int * int) array ->
  ?eps:float ->
  certificate ->
  Circuit.t ->
  Sim.Batch.plan ->
  (summary, failure list) result

(** Obligation counts of a certificate, without checking it. *)
val summarize : certificate -> summary

(** Discharged rewrite obligations — everything except the permutation
    pairs. A transpile run that rewrote anything has a nonzero total. *)
val total_obligations : summary -> int

val pp_failure : Format.formatter -> failure -> unit
val failure_message : failure -> string
