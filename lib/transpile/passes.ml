let qubits_of_instr = Circuit.Instr.qubits

let disjoint a b =
  not (List.exists (fun q -> List.mem q b) a)

let same_wires (g : Circuit.Gate.t) (g' : Circuit.Gate.t) =
  g.Circuit.Gate.controls = g'.Circuit.Gate.controls
  && g.Circuit.Gate.targets = g'.Circuit.Gate.targets

(* names of mutually-inverse parameterless pairs *)
let inverse_names = function
  | "h" -> Some "h"
  | "x" -> Some "x"
  | "y" -> Some "y"
  | "z" -> Some "z"
  | "swap" -> Some "swap"
  | "id" -> Some "id"
  | "s" -> Some "sdg"
  | "sdg" -> Some "s"
  | "t" -> Some "tdg"
  | "tdg" -> Some "t"
  | _ -> None

let cancels (g : Circuit.Gate.t) (g' : Circuit.Gate.t) =
  same_wires g g'
  &&
  match (g.Circuit.Gate.params, g'.Circuit.Gate.params) with
  | [], [] -> inverse_names g.Circuit.Gate.name = Some g'.Circuit.Gate.name
  | [ a ], [ b ] ->
      g.Circuit.Gate.name = g'.Circuit.Gate.name
      && List.mem g.Circuit.Gate.name [ "rx"; "ry"; "rz"; "p"; "u1" ]
      && Float.abs (a +. b) < 1e-12
  | _ -> false

let rotation_family = [ "rx"; "ry"; "rz"; "p"; "u1" ]

let mergeable (g : Circuit.Gate.t) (g' : Circuit.Gate.t) =
  same_wires g g'
  && g.Circuit.Gate.name = g'.Circuit.Gate.name
  && List.mem g.Circuit.Gate.name rotation_family
  && List.length g.Circuit.Gate.params = 1
  && List.length g'.Circuit.Gate.params = 1

(* the identity period of a rotation's angle: exact identity only *)
let identity_period = function
  | "rx" | "ry" | "rz" -> 4. *. Float.pi
  | _ -> 2. *. Float.pi (* p / u1 *)

let is_identity_angle name a =
  let period = identity_period name in
  let m = Float.rem (Float.abs a) period in
  Float.min m (period -. m) < 1e-12

let merged (g : Circuit.Gate.t) (g' : Circuit.Gate.t) =
  let a = List.hd g.Circuit.Gate.params and b = List.hd g'.Circuit.Gate.params in
  let sum = a +. b in
  if is_identity_angle g.Circuit.Gate.name sum then None
  else
    Some
      (Circuit.Gate.make ~params:[ sum ] ~controls:g.Circuit.Gate.controls
         g.Circuit.Gate.name g.Circuit.Gate.targets)

(* place gate [g] against the reversed output [res], cancelling or merging
   with the nearest instruction sharing a wire when allowed *)
let place ~do_cancel ~do_merge g res =
  let gq = Circuit.Gate.qubits g in
  let rec scan acc = function
    | [] -> None
    | item :: rest -> (
        if disjoint (qubits_of_instr item) gq then scan (item :: acc) rest
        else
          match item with
          | Circuit.Instr.Gate g' when do_cancel && cancels g g' ->
              Some (List.rev_append acc rest)
          | Circuit.Instr.Gate g' when do_merge && mergeable g g' -> (
              match merged g g' with
              | Some m -> Some (List.rev_append acc (Circuit.Instr.Gate m :: rest))
              | None -> Some (List.rev_append acc rest))
          | _ -> None)
  in
  match scan [] res with
  | Some res' -> res'
  | None -> Circuit.Instr.Gate g :: res

let run_pass ~do_cancel ~do_merge c =
  let res =
    List.fold_left
      (fun res instr ->
        match instr with
        | Circuit.Instr.Gate g -> place ~do_cancel ~do_merge g res
        | fence -> fence :: res)
      []
      (Circuit.instrs c)
  in
  List.fold_left
    (fun c i -> Circuit.add i c)
    (Circuit.empty ~clbits:(Circuit.num_clbits c) (Circuit.num_qubits c))
    (List.rev res)

let cancel_inverses c = run_pass ~do_cancel:true ~do_merge:false c
let merge_rotations c = run_pass ~do_cancel:false ~do_merge:true c

(* ----------------- adjacent single-qubit gate fusion ------------------ *)

(* any uncontrolled single-target gate has a 2x2 matrix we can multiply out *)
let fusable (g : Circuit.Gate.t) =
  g.Circuit.Gate.controls = []
  && (match g.Circuit.Gate.targets with [ _ ] -> true | _ -> false)
  && g.Circuit.Gate.name <> "swap"

let gate_matrix (g : Circuit.Gate.t) =
  Qstate.Gates.by_name g.Circuit.Gate.name g.Circuit.Gate.params

let fused_gate target (m : Linalg.Cmat.t) =
  let p k = (m.Linalg.Cmat.re.(k), m.Linalg.Cmat.im.(k)) in
  let (r00, i00) = p 0 and (r01, i01) = p 1 in
  let (r10, i10) = p 2 and (r11, i11) = p 3 in
  Circuit.Gate.make
    ~params:[ r00; i00; r01; i01; r10; i10; r11; i11 ]
    "u2x2" [ target ]

let place_fused g res =
  if not (fusable g) then Circuit.Instr.Gate g :: res
  else
    let gq = Circuit.Gate.qubits g in
    let rec scan acc = function
      | [] -> None
      | item :: rest -> (
          if disjoint (qubits_of_instr item) gq then scan (item :: acc) rest
          else
            match item with
            | Circuit.Instr.Gate g'
              when fusable g'
                   && g'.Circuit.Gate.targets = g.Circuit.Gate.targets ->
                (* g runs after g', so the fused matrix is U_g * U_g' *)
                let m = Linalg.Cmat.mul (gate_matrix g) (gate_matrix g') in
                let f = fused_gate (List.hd g.Circuit.Gate.targets) m in
                Some (List.rev_append acc (Circuit.Instr.Gate f :: rest))
            | _ -> None)
    in
    match scan [] res with
    | Some res' -> res'
    | None -> Circuit.Instr.Gate g :: res

let fuse_1q c =
  let res =
    List.fold_left
      (fun res instr ->
        match instr with
        | Circuit.Instr.Gate g -> place_fused g res
        | fence -> fence :: res)
      []
      (Circuit.instrs c)
  in
  List.fold_left
    (fun c i -> Circuit.add i c)
    (Circuit.empty ~clbits:(Circuit.num_clbits c) (Circuit.num_qubits c))
    (List.rev res)

let drop_identities ?(eps = 1e-12) c =
  Circuit.map_gates
    (fun g ->
      match (g.Circuit.Gate.name, g.Circuit.Gate.params) with
      | "id", [] -> None
      | (("rx" | "ry" | "rz" | "p" | "u1") as name), [ a ]
        when Float.abs a < eps || is_identity_angle name a ->
          None
      | _ -> Some g)
    c

let optimize ?(max_passes = 10) c =
  Obs.Span.with_ ~name:"passes.optimize" @@ fun () ->
  let step c = drop_identities (run_pass ~do_cancel:true ~do_merge:true c) in
  let rec go c k =
    if k = 0 then c
    else
      let c' = step c in
      if Circuit.gate_count c' = Circuit.gate_count c then c' else go c' (k - 1)
  in
  let out = go c max_passes in
  if Obs.enabled () then
    Obs.Metrics.counter_add "pass_gates_removed_total"
      (max 0 (Circuit.gate_count c - Circuit.gate_count out));
  out

let gate_reduction ~before ~after =
  let b = Circuit.gate_count before in
  if b = 0 then 0.
  else float_of_int (b - Circuit.gate_count after) /. float_of_int b

(* -------------------- lightcone-based dead-code pruning --------------- *)

(* Delete every instruction outside the union cone of influence of all
   tracepoints and measurements (Analysis.Lightcone.union_keep). This
   preserves every tracepoint's reduced state and the joint measurement
   distribution; it does NOT preserve the final statevector on qubits no
   tracepoint or measurement observes, so it is a pass for
   characterization pipelines rather than general circuit rewriting. *)
let prune_lightcone c =
  Obs.Span.with_ ~name:"passes.prune_lightcone" @@ fun () ->
  let keep = Analysis.Lightcone.union_keep c in
  let _, pruned =
    List.fold_left
      (fun (i, acc) instr ->
        (i + 1, if keep.(i) then Circuit.add instr acc else acc))
      (0, Circuit.empty ~clbits:(Circuit.num_clbits c) (Circuit.num_qubits c))
      (Circuit.instrs c)
  in
  pruned
