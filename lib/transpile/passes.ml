let qubits_of_instr = Circuit.Instr.qubits

let disjoint a b =
  not (List.exists (fun q -> List.mem q b) a)

let same_wires (g : Circuit.Gate.t) (g' : Circuit.Gate.t) =
  g.Circuit.Gate.controls = g'.Circuit.Gate.controls
  && g.Circuit.Gate.targets = g'.Circuit.Gate.targets

(* names of mutually-inverse parameterless pairs *)
let inverse_names = function
  | "h" -> Some "h"
  | "x" -> Some "x"
  | "y" -> Some "y"
  | "z" -> Some "z"
  | "swap" -> Some "swap"
  | "id" -> Some "id"
  | "s" -> Some "sdg"
  | "sdg" -> Some "s"
  | "t" -> Some "tdg"
  | "tdg" -> Some "t"
  | _ -> None

let cancels (g : Circuit.Gate.t) (g' : Circuit.Gate.t) =
  same_wires g g'
  &&
  match (g.Circuit.Gate.params, g'.Circuit.Gate.params) with
  | [], [] -> inverse_names g.Circuit.Gate.name = Some g'.Circuit.Gate.name
  | [ a ], [ b ] ->
      g.Circuit.Gate.name = g'.Circuit.Gate.name
      && List.mem g.Circuit.Gate.name [ "rx"; "ry"; "rz"; "p"; "u1" ]
      && Float.abs (a +. b) < 1e-12
  | _ -> false

let rotation_family = [ "rx"; "ry"; "rz"; "p"; "u1" ]

let mergeable (g : Circuit.Gate.t) (g' : Circuit.Gate.t) =
  same_wires g g'
  && g.Circuit.Gate.name = g'.Circuit.Gate.name
  && List.mem g.Circuit.Gate.name rotation_family
  && List.length g.Circuit.Gate.params = 1
  && List.length g'.Circuit.Gate.params = 1

(* the identity period of a rotation's angle: exact identity only *)
let identity_period = function
  | "rx" | "ry" | "rz" -> 4. *. Float.pi
  | _ -> 2. *. Float.pi (* p / u1 *)

let is_identity_angle name a =
  let period = identity_period name in
  let m = Float.rem (Float.abs a) period in
  Float.min m (period -. m) < 1e-12

let merged (g : Circuit.Gate.t) (g' : Circuit.Gate.t) =
  let a = List.hd g.Circuit.Gate.params and b = List.hd g'.Circuit.Gate.params in
  let sum = a +. b in
  if is_identity_angle g.Circuit.Gate.name sum then None
  else
    Some
      (Circuit.Gate.make ~params:[ sum ] ~controls:g.Circuit.Gate.controls
         g.Circuit.Gate.name g.Circuit.Gate.targets)

(* ------------------------ provenance threading ------------------------ *)

(* Every pass below is written once, over items that carry their input
   provenance: [origins] is the ascending list of input indices whose
   product this instruction is (a singleton means untouched). The plain
   passes are [fst] of the certificate variants, so a certified run's
   output is bit-identical to an uncertified one by construction. Groups
   whose product was proved the identity and removed outright are
   collected separately in [gone]. *)
type tracked = { origins : int list; instr : Circuit.Instr.t }

let tracked_qubits t = qubits_of_instr t.instr

(* place gate [g] (input index [i]) against the reversed output [res],
   cancelling or merging with the nearest instruction sharing a wire when
   allowed *)
let place ~do_cancel ~do_merge (i, g) (res, gone) =
  let gq = Circuit.Gate.qubits g in
  let rec scan acc = function
    | [] -> None
    | item :: rest -> (
        if disjoint (tracked_qubits item) gq then scan (item :: acc) rest
        else
          match item.instr with
          | Circuit.Instr.Gate g' when do_cancel && cancels g g' ->
              Some (List.rev_append acc rest, (item.origins @ [ i ]) :: gone)
          | Circuit.Instr.Gate g' when do_merge && mergeable g g' -> (
              match merged g g' with
              | Some m ->
                  let item' =
                    {
                      origins = item.origins @ [ i ];
                      instr = Circuit.Instr.Gate m;
                    }
                  in
                  Some (List.rev_append acc (item' :: rest), gone)
              | None ->
                  Some
                    (List.rev_append acc rest, (item.origins @ [ i ]) :: gone))
          | _ -> None)
  in
  match scan [] res with
  | Some out -> out
  | None -> ({ origins = [ i ]; instr = Circuit.Instr.Gate g } :: res, gone)

(* rebuild the circuit and derive the certificate step from provenance:
   singleton origins are untouched ([mapped]), multi-origin items and the
   identity groups in [gone] become [Local_equiv] obligations *)
let finish ~pass c (res, gone) =
  let items = List.rev res in
  let out =
    List.fold_left
      (fun acc t -> Circuit.add t.instr acc)
      (Circuit.empty ~clbits:(Circuit.num_clbits c) (Circuit.num_qubits c))
      items
  in
  let _, mapped_rev, groups_rev =
    List.fold_left
      (fun (k, mapped, groups) t ->
        match t.origins with
        | [ i ] -> (k + 1, (i, k) :: mapped, groups)
        | os ->
            ( k + 1,
              mapped,
              Certify.Local_equiv { before = os; after = [ k ] } :: groups ))
      (0, [], []) items
  in
  let deletions =
    List.rev_map
      (fun os -> Certify.Local_equiv { before = os; after = [] })
      gone
  in
  let step =
    {
      Certify.pass;
      obligations = List.rev groups_rev @ deletions;
      mapped = List.rev mapped_rev;
      output = Certify.Circ out;
    }
  in
  (out, step)

let run_pass_cert ~pass ~do_cancel ~do_merge c =
  let _, acc =
    List.fold_left
      (fun (i, acc) instr ->
        ( i + 1,
          match instr with
          | Circuit.Instr.Gate g -> place ~do_cancel ~do_merge (i, g) acc
          | fence ->
              let res, gone = acc in
              ({ origins = [ i ]; instr = fence } :: res, gone) ))
      (0, ([], []))
      (Circuit.instrs c)
  in
  finish ~pass c acc

let cancel_inverses_cert c =
  run_pass_cert ~pass:"cancel_inverses" ~do_cancel:true ~do_merge:false c

let merge_rotations_cert c =
  run_pass_cert ~pass:"merge_rotations" ~do_cancel:false ~do_merge:true c

let cancel_inverses c = fst (cancel_inverses_cert c)
let merge_rotations c = fst (merge_rotations_cert c)

(* ----------------- adjacent single-qubit gate fusion ------------------ *)

(* any uncontrolled single-target gate has a 2x2 matrix we can multiply out *)
let fusable (g : Circuit.Gate.t) =
  g.Circuit.Gate.controls = []
  && (match g.Circuit.Gate.targets with [ _ ] -> true | _ -> false)
  && g.Circuit.Gate.name <> "swap"

let gate_matrix (g : Circuit.Gate.t) =
  Qstate.Gates.by_name g.Circuit.Gate.name g.Circuit.Gate.params

let fused_gate target (m : Linalg.Cmat.t) =
  let p k = (m.Linalg.Cmat.re.(k), m.Linalg.Cmat.im.(k)) in
  let (r00, i00) = p 0 and (r01, i01) = p 1 in
  let (r10, i10) = p 2 and (r11, i11) = p 3 in
  Circuit.Gate.make
    ~params:[ r00; i00; r01; i01; r10; i10; r11; i11 ]
    "u2x2" [ target ]

let place_fused (i, g) (res, gone) =
  if not (fusable g) then
    ({ origins = [ i ]; instr = Circuit.Instr.Gate g } :: res, gone)
  else
    let gq = Circuit.Gate.qubits g in
    let rec scan acc = function
      | [] -> None
      | item :: rest -> (
          if disjoint (tracked_qubits item) gq then scan (item :: acc) rest
          else
            match item.instr with
            | Circuit.Instr.Gate g'
              when fusable g'
                   && g'.Circuit.Gate.targets = g.Circuit.Gate.targets ->
                (* g runs after g', so the fused matrix is U_g * U_g' *)
                let m = Linalg.Cmat.mul (gate_matrix g) (gate_matrix g') in
                let f = fused_gate (List.hd g.Circuit.Gate.targets) m in
                let item' =
                  {
                    origins = item.origins @ [ i ];
                    instr = Circuit.Instr.Gate f;
                  }
                in
                Some (List.rev_append acc (item' :: rest), gone)
            | _ -> None)
    in
    match scan [] res with
    | Some out -> out
    | None -> ({ origins = [ i ]; instr = Circuit.Instr.Gate g } :: res, gone)

let fuse_1q_cert c =
  let _, acc =
    List.fold_left
      (fun (i, acc) instr ->
        ( i + 1,
          match instr with
          | Circuit.Instr.Gate g -> place_fused (i, g) acc
          | fence ->
              let res, gone = acc in
              ({ origins = [ i ]; instr = fence } :: res, gone) ))
      (0, ([], []))
      (Circuit.instrs c)
  in
  finish ~pass:"fuse_1q" c acc

let fuse_1q c = fst (fuse_1q_cert c)

let drop_identities_cert ?(eps = 1e-12) c =
  let droppable (g : Circuit.Gate.t) =
    match (g.Circuit.Gate.name, g.Circuit.Gate.params) with
    | "id", [] -> true
    | (("rx" | "ry" | "rz" | "p" | "u1") as name), [ a ] ->
        Float.abs a < eps || is_identity_angle name a
    | _ -> false
  in
  let _, k, out, mapped_rev, obls_rev =
    List.fold_left
      (fun (i, k, out, mapped, obls) instr ->
        match instr with
        | Circuit.Instr.Gate g when droppable g ->
            ( i + 1,
              k,
              out,
              mapped,
              Certify.Identity_elim { index = i; eps } :: obls )
        | _ ->
            (i + 1, k + 1, Circuit.add instr out, (i, k) :: mapped, obls))
      ( 0,
        0,
        Circuit.empty ~clbits:(Circuit.num_clbits c) (Circuit.num_qubits c),
        [],
        [] )
      (Circuit.instrs c)
  in
  ignore k;
  let step =
    {
      Certify.pass = "drop_identities";
      obligations = List.rev obls_rev;
      mapped = List.rev mapped_rev;
      output = Certify.Circ out;
    }
  in
  (out, step)

let drop_identities ?eps c = fst (drop_identities_cert ?eps c)

let optimize_cert ?(max_passes = 10) c =
  Obs.Span.with_ ~name:"passes.optimize" @@ fun () ->
  let step c =
    let c1, s1 = run_pass_cert ~pass:"peephole" ~do_cancel:true ~do_merge:true c in
    let c2, s2 = drop_identities_cert c1 in
    (c2, [ s1; s2 ])
  in
  let rec go c steps k =
    if k = 0 then (c, steps)
    else
      let c', ss = step c in
      let steps = steps @ ss in
      if Circuit.gate_count c' = Circuit.gate_count c then (c', steps)
      else go c' steps (k - 1)
  in
  let out, steps = go c [] max_passes in
  if Obs.enabled () then
    Obs.Metrics.counter_add "pass_gates_removed_total"
      (max 0 (Circuit.gate_count c - Circuit.gate_count out));
  (out, steps)

let optimize ?max_passes c = fst (optimize_cert ?max_passes c)

let gate_reduction ~before ~after =
  let b = Circuit.gate_count before in
  if b = 0 then 0.
  else float_of_int (b - Circuit.gate_count after) /. float_of_int b

(* -------------------- lightcone-based dead-code pruning --------------- *)

(* Delete every instruction outside the union cone of influence of all
   tracepoints and measurements (Analysis.Lightcone.union_keep). This
   preserves every tracepoint's reduced state and the joint measurement
   distribution; it does NOT preserve the final statevector on qubits no
   tracepoint or measurement observes, so it is a pass for
   characterization pipelines rather than general circuit rewriting. *)
let prune_lightcone_cert c =
  Obs.Span.with_ ~name:"passes.prune_lightcone" @@ fun () ->
  let keep = Analysis.Lightcone.union_keep c in
  let _, k, pruned, mapped_rev, obls_rev =
    List.fold_left
      (fun (i, k, acc, mapped, obls) instr ->
        if keep.(i) then
          (i + 1, k + 1, Circuit.add instr acc, (i, k) :: mapped, obls)
        else
          (i + 1, k, acc, mapped, Certify.Outside_cone { index = i } :: obls))
      ( 0,
        0,
        Circuit.empty ~clbits:(Circuit.num_clbits c) (Circuit.num_qubits c),
        [],
        [] )
      (Circuit.instrs c)
  in
  ignore k;
  let step =
    {
      Certify.pass = "prune_lightcone";
      obligations = List.rev obls_rev;
      mapped = List.rev mapped_rev;
      output = Certify.Circ pruned;
    }
  in
  (pruned, step)

let prune_lightcone c = fst (prune_lightcone_cert c)
