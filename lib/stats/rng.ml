type t = Random.State.t

let make seed = Random.State.make [| seed; 0x9e3779b9 |]

(* SplitMix64-style avalanche finalizer, with the multiplier constants
   truncated to OCaml's native int range. Only used to derive seeds, so the
   exact constants matter less than good bit diffusion across indices. *)
let mix i =
  let z = (i + 0x1e3779b97f4a7c15) * 0x3f58476d1ce4e5b9 in
  let z = (z lxor (z lsr 30)) * 0x14d049bb133111eb in
  let z = (z lxor (z lsr 27)) * 0x2545f4914f6cdd1d in
  z lxor (z lsr 31)

(* Fingerprint without advancing [t]: draw from a copy, then avalanche.
   Two generators fingerprint equal iff their continuations are
   bit-identical (bar astronomically unlikely collisions), which is what
   cache keys need — equal fingerprints mean replaying a cached result
   is indistinguishable from recomputing it. *)
let fingerprint t =
  let c = Random.State.copy t in
  let a = Random.State.bits c and b = Random.State.bits c in
  mix (a lxor mix (b lxor mix (Random.State.bits c)))

let split t i =
  if i < 0 then invalid_arg "Rng.split: negative index";
  if Obs.enabled () then Obs.Metrics.counter_add "rng_splits_total" 1;
  let a = Random.State.bits t and b = Random.State.bits t in
  Random.State.make [| a; mix (b lxor mix i); mix (i lxor (a lsl 17)) |]
let float t bound = Random.State.float t bound
let int t bound = Random.State.int t bound
let bool t = Random.State.bool t
let uniform t lo hi = lo +. Random.State.float t (hi -. lo)

let gaussian t ~mu ~sigma =
  let u1 = Float.max 1e-300 (Random.State.float t 1.) in
  let u2 = Random.State.float t 1. in
  mu +. (sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let binomial t ~n ~p =
  if p <= 0. then 0
  else if p >= 1. then n
  else
    let var = float_of_int n *. p *. (1. -. p) in
    if var > 30. then
      let mean = float_of_int n *. p in
      let x = gaussian t ~mu:mean ~sigma:(sqrt var) in
      Stdlib.max 0 (Stdlib.min n (int_of_float (Float.round x)))
    else begin
      let count = ref 0 in
      for _ = 1 to n do
        if Random.State.float t 1. < p then incr count
      done;
      !count
    end

let categorical t weights =
  let total = Array.fold_left ( +. ) 0. weights in
  if total <= 0. then invalid_arg "Rng.categorical: non-positive total weight";
  let r = Random.State.float t total in
  let acc = ref 0. and found = ref (Array.length weights - 1) in
  (try
     Array.iteri
       (fun i w ->
         acc := !acc +. w;
         if r < !acc then begin
           found := i;
           raise Exit
         end)
       weights
   with Exit -> ());
  !found

let rec gamma t ~shape =
  if shape <= 0. then invalid_arg "Rng.gamma: non-positive shape"
  else if shape < 1. then
    (* boost: Gamma(a) = Gamma(a+1) * U^(1/a) *)
    let u = Float.max 1e-300 (Random.State.float t 1.) in
    gamma t ~shape:(shape +. 1.) *. (u ** (1. /. shape))
  else begin
    let d = shape -. (1. /. 3.) in
    let c = 1. /. sqrt (9. *. d) in
    let rec loop () =
      let x = gaussian t ~mu:0. ~sigma:1. in
      let v = (1. +. (c *. x)) ** 3. in
      if v <= 0. then loop ()
      else
        let u = Float.max 1e-300 (Random.State.float t 1.) in
        if log u < (0.5 *. x *. x) +. d -. (d *. v) +. (d *. log v) then d *. v
        else loop ()
    in
    loop ()
  end

let beta t ~a ~b =
  let x = gamma t ~shape:a in
  let y = gamma t ~shape:b in
  x /. (x +. y)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
