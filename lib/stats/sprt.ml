(* Wald's sequential probability ratio test. State is a running
   log-likelihood-ratio log (P1 / P0); crossing log A = log ((1-beta)/alpha)
   rejects H0 with false-reject rate <= alpha, crossing
   log B = log (beta/(1-alpha)) accepts H0 with false-accept rate <= beta. *)

type t = { log_lr : float; n : int; log_a : float; log_b : float }
type verdict = Accept_h0 | Reject_h0 | Continue

let make ~alpha ~beta =
  if alpha <= 0. || alpha >= 1. || beta <= 0. || beta >= 1. then
    invalid_arg "Sprt.make: alpha and beta must be in (0, 1)";
  {
    log_lr = 0.;
    n = 0;
    log_a = log ((1. -. beta) /. alpha);
    log_b = log (beta /. (1. -. alpha));
  }

let observe_llr t llr = { t with log_lr = t.log_lr +. llr; n = t.n + 1 }

let bernoulli_llr ~p0 ~p1 success =
  if p0 <= 0. || p0 >= 1. || p1 <= 0. || p1 >= 1. then
    invalid_arg "Sprt.bernoulli_llr: p0 and p1 must be in (0, 1)";
  if success then log (p1 /. p0) else log ((1. -. p1) /. (1. -. p0))

let observe_bernoulli ~p0 ~p1 t success =
  observe_llr t (bernoulli_llr ~p0 ~p1 success)

let decide t =
  if t.log_lr >= t.log_a then Reject_h0
  else if t.log_lr <= t.log_b then Accept_h0
  else Continue

let observations t = t.n
let log_lr t = t.log_lr
let boundaries t = (t.log_b, t.log_a)
