type alternative = Two_sided | Less | Greater
type result = { statistic : float; pvalue : float; df : float }

(* Shot-budget policy shared by Verify / Characterize / State_tomo. It
   lives here (not in core) because tomography depends on stats but not
   on core, and both must agree on the type. *)
type sequential = { alpha : float; beta : float; max_shots : int }
type budget = [ `Fixed of int | `Sequential of sequential ]

let clamp01 p = Float.max 0. (Float.min 1. p)

(* ----------------------- survival functions ----------------------- *)

let chi2_sf x df =
  if df <= 0. then invalid_arg "Tests.chi2_sf: non-positive df";
  if x <= 0. then 1. else Special.gammainc_q (df /. 2.) (x /. 2.)

(* two-tailed probability P(|T_df| > t) = I_x(df/2, 1/2), x = df/(df+t^2) *)
let t_two_tail t df =
  if df <= 0. then invalid_arg "Tests.t_sf: non-positive df";
  let t2 = t *. t in
  Special.betainc (df /. 2.) 0.5 (df /. (df +. t2))

let t_sf t df =
  let half = 0.5 *. t_two_tail t df in
  if t >= 0. then half else 1. -. half

let t_pvalue alternative t df =
  clamp01
    (match alternative with
    | Two_sided -> t_two_tail t df
    | Greater -> t_sf t df
    | Less -> 1. -. t_sf t df)

(* ----------------------------- t-tests ----------------------------- *)

let t_one_sample ?(alternative = Two_sided) ~mu xs =
  let n = Array.length xs in
  if n < 2 then invalid_arg "Tests.t_one_sample: need at least 2 samples";
  let nf = float_of_int n in
  let m = Describe.mean xs and v = Describe.variance xs in
  if v <= 0. then invalid_arg "Tests.t_one_sample: zero variance";
  let t = (m -. mu) /. sqrt (v /. nf) in
  let df = nf -. 1. in
  { statistic = t; pvalue = t_pvalue alternative t df; df }

let t_two_sample ?(alternative = Two_sided) ?(equal_var = false) xs ys =
  let n1 = Array.length xs and n2 = Array.length ys in
  if n1 < 2 || n2 < 2 then
    invalid_arg "Tests.t_two_sample: need at least 2 samples per side";
  let n1f = float_of_int n1 and n2f = float_of_int n2 in
  let m1 = Describe.mean xs and m2 = Describe.mean ys in
  let v1 = Describe.variance xs and v2 = Describe.variance ys in
  if v1 <= 0. && v2 <= 0. then
    invalid_arg "Tests.t_two_sample: both samples have zero variance";
  let t, df =
    if equal_var then
      let df = n1f +. n2f -. 2. in
      let sp2 = (((n1f -. 1.) *. v1) +. ((n2f -. 1.) *. v2)) /. df in
      let se = sqrt (sp2 *. ((1. /. n1f) +. (1. /. n2f))) in
      ((m1 -. m2) /. se, df)
    else
      let a = v1 /. n1f and b = v2 /. n2f in
      let se2 = a +. b in
      (* Welch–Satterthwaite effective df *)
      let df =
        se2 *. se2
        /. ((a *. a /. (n1f -. 1.)) +. (b *. b /. (n2f -. 1.)))
      in
      ((m1 -. m2) /. sqrt se2, df)
  in
  { statistic = t; pvalue = t_pvalue alternative t df; df }

(* --------------------------- chi-square ---------------------------- *)

let chi2_gof ?(ddof = 0) ~expected observed =
  let k = Array.length observed in
  if k < 2 then invalid_arg "Tests.chi2_gof: need at least 2 categories";
  if Array.length expected <> k then
    invalid_arg "Tests.chi2_gof: observed/expected length mismatch";
  let stat = ref 0. in
  for i = 0 to k - 1 do
    let e = expected.(i) in
    if e <= 0. then invalid_arg "Tests.chi2_gof: non-positive expected count";
    let d = observed.(i) -. e in
    stat := !stat +. (d *. d /. e)
  done;
  let df = float_of_int (k - 1 - ddof) in
  if df <= 0. then invalid_arg "Tests.chi2_gof: non-positive df";
  { statistic = !stat; pvalue = chi2_sf !stat df; df }

let chi2_homogeneity rows =
  let r = Array.length rows in
  if r < 2 then invalid_arg "Tests.chi2_homogeneity: need at least 2 rows";
  let c = Array.length rows.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> c then
        invalid_arg "Tests.chi2_homogeneity: ragged table")
    rows;
  (* drop all-zero columns: they carry no information and would divide
     by a zero expected count *)
  let col_tot = Array.make c 0. in
  Array.iter (Array.iteri (fun j x -> col_tot.(j) <- col_tot.(j) +. x)) rows;
  let cols = ref [] in
  for j = c - 1 downto 0 do
    if col_tot.(j) > 0. then cols := j :: !cols
  done;
  let cols = Array.of_list !cols in
  let c' = Array.length cols in
  if c' < 2 then invalid_arg "Tests.chi2_homogeneity: fewer than 2 live columns";
  let row_tot = Array.map (fun row -> Array.fold_left ( +. ) 0. row) rows in
  let grand = Array.fold_left ( +. ) 0. row_tot in
  if grand <= 0. then invalid_arg "Tests.chi2_homogeneity: empty table";
  let stat = ref 0. in
  Array.iteri
    (fun i row ->
      Array.iter
        (fun j ->
          let e = row_tot.(i) *. col_tot.(j) /. grand in
          if e > 0. then begin
            let d = row.(j) -. e in
            stat := !stat +. (d *. d /. e)
          end)
        cols)
    rows;
  let df = float_of_int ((r - 1) * (c' - 1)) in
  { statistic = !stat; pvalue = chi2_sf !stat df; df }

(* ----------------------- Kolmogorov–Smirnov ------------------------ *)

(* Asymptotic Kolmogorov survival function Q(lambda) =
   2 sum_{k>=1} (-1)^{k-1} exp (-2 k^2 lambda^2). *)
let kolmogorov_sf lambda =
  if lambda <= 0. then 1.
  else begin
    let sum = ref 0. and sign = ref 1. in
    (try
       for k = 1 to 100 do
         let kf = float_of_int k in
         let term = exp (-2. *. kf *. kf *. lambda *. lambda) in
         sum := !sum +. (!sign *. term);
         sign := -. !sign;
         if term < 1e-16 *. Float.abs !sum || term < 1e-300 then raise Exit
       done
     with Exit -> ());
    clamp01 (2. *. !sum)
  end

(* Exact P(D_n < d) by the Marsaglia–Tsang–Wang matrix method (JSS 2003):
   an (2k-1)^2 matrix H with k = ceil (n d), h = k - n d; the answer is
   n!/n^n (H^n)_{k,k}, with power-of-2 exponent tracking to avoid
   overflow. Cost O(m^3 log n) — fine for the n <= 140 regime where the
   asymptotic tail is visibly wrong. *)
let ks_cdf_exact n d =
  let nf = float_of_int n in
  let k = int_of_float (ceil (nf *. d)) in
  if d >= 1. then 1.
  else if k <= 0 then 0.
  else begin
    let m = (2 * k) - 1 in
    let h = float_of_int k -. (nf *. d) in
    let hh = Array.make_matrix m m 0. in
    for i = 0 to m - 1 do
      for j = 0 to m - 1 do
        if i - j + 1 >= 0 then hh.(i).(j) <- 1.
      done
    done;
    for i = 0 to m - 1 do
      hh.(i).(0) <- hh.(i).(0) -. (h ** float_of_int (i + 1));
      hh.(m - 1).(i) <- hh.(m - 1).(i) -. (h ** float_of_int (m - i))
    done;
    hh.(m - 1).(0) <-
      hh.(m - 1).(0)
      +. (if (2. *. h) -. 1. > 0. then ((2. *. h) -. 1.) ** float_of_int m
          else 0.);
    for i = 0 to m - 1 do
      for j = 0 to m - 1 do
        if i - j + 1 > 0 then
          for g = 1 to i - j + 1 do
            hh.(i).(j) <- hh.(i).(j) /. float_of_int g
          done
      done
    done;
    (* H^n by square-and-multiply, rescaling when entries overflow *)
    let mat_mul a b =
      let out = Array.make_matrix m m 0. in
      for i = 0 to m - 1 do
        for l = 0 to m - 1 do
          let ail = a.(i).(l) in
          if ail <> 0. then
            for j = 0 to m - 1 do
              out.(i).(j) <- out.(i).(j) +. (ail *. b.(l).(j))
            done
        done
      done;
      out
    in
    let scale mat e =
      if mat.(k - 1).(k - 1) > 1e140 then begin
        Array.iter
          (fun row ->
            Array.iteri (fun j x -> row.(j) <- x *. 1e-140) row)
          mat;
        e + 140
      end
      else e
    in
    let rec power mat p =
      if p = 1 then (mat, 0)
      else begin
        let half, e = power mat (p / 2) in
        let sq = mat_mul half half in
        let e = 2 * e in
        let e = scale sq e in
        if p land 1 = 0 then (sq, e)
        else begin
          let out = mat_mul sq mat in
          let e = scale out e in
          (out, e)
        end
      end
    in
    let hn, e_q = power hh n in
    let s = ref hn.(k - 1).(k - 1) in
    let e = ref e_q in
    (* multiply by n!/n^n factor-by-factor, rescaling on underflow *)
    for i = 1 to n do
      s := !s *. float_of_int i /. nf;
      if !s < 1e-140 then begin
        s := !s *. 1e140;
        e := !e - 140
      end
    done;
    clamp01 (!s *. (10. ** float_of_int !e))
  end

let ks_exact_limit = 140

let ks_one_sample ~cdf xs =
  let n = Array.length xs in
  if n < 1 then invalid_arg "Tests.ks_one_sample: empty sample";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let nf = float_of_int n in
  let d = ref 0. in
  for i = 0 to n - 1 do
    let f = cdf sorted.(i) in
    let d_plus = (float_of_int (i + 1) /. nf) -. f in
    let d_minus = f -. (float_of_int i /. nf) in
    d := Float.max !d (Float.max d_plus d_minus)
  done;
  let d = !d in
  let pvalue =
    if n <= ks_exact_limit then 1. -. ks_cdf_exact n d
    else
      (* Stephens small-sample correction to the asymptotic law *)
      let en = sqrt nf in
      kolmogorov_sf ((en +. 0.12 +. (0.11 /. en)) *. d)
  in
  { statistic = d; pvalue = clamp01 pvalue; df = nf }

(* Exact two-sample tail by lattice path counting (no ties): the number
   of interleavings of n xs and m ys whose empirical-CDF gap stays below
   d, over C(n+m, n), computed as a rolling DP in floats normalized so
   the full count is 1. *)
let ks2_exact_pvalue n m d =
  let nf = float_of_int n and mf = float_of_int m in
  (* paths.(j) = (number of admissible paths to (i, j)) / C(i+j, j),
     maintained as probabilities to stay in float range *)
  let inside i j =
    Float.abs ((float_of_int i /. nf) -. (float_of_int j /. mf))
    < d -. 1e-12
  in
  let prev = Array.make (m + 1) 0. in
  prev.(0) <- 1.;
  for j = 1 to m do
    prev.(j) <- (if inside 0 j then prev.(j - 1) else 0.)
  done;
  let cur = Array.make (m + 1) 0. in
  for i = 1 to n do
    cur.(0) <- (if inside i 0 then prev.(0) else 0.);
    for j = 1 to m do
      cur.(j) <-
        (if inside i j then cur.(j - 1) +. prev.(j) else 0.)
    done;
    Array.blit cur 0 prev 0 (m + 1)
  done;
  (* prev.(m) holds the raw admissible-path count (n*m <= 10^4 keeps it
     well inside float range); divide by C(n+m, n) via log-gamma *)
  let log_total =
    Special.lgamma (nf +. mf +. 1.)
    -. Special.lgamma (nf +. 1.)
    -. Special.lgamma (mf +. 1.)
  in
  clamp01 (1. -. (prev.(m) *. exp (-.log_total)))

let has_ties xs ys =
  let all = Array.append xs ys in
  Array.sort compare all;
  let tied = ref false in
  for i = 1 to Array.length all - 1 do
    if all.(i) = all.(i - 1) then tied := true
  done;
  !tied

let ks2_exact_max_nm = 10_000

let ks_two_sample xs ys =
  let n = Array.length xs and m = Array.length ys in
  if n < 1 || m < 1 then invalid_arg "Tests.ks_two_sample: empty sample";
  let sx = Array.copy xs and sy = Array.copy ys in
  Array.sort compare sx;
  Array.sort compare sy;
  let nf = float_of_int n and mf = float_of_int m in
  let d = ref 0. in
  let i = ref 0 and j = ref 0 in
  while !i < n && !j < m do
    let x = sx.(!i) and y = sy.(!j) in
    if x <= y then incr i;
    if y <= x then incr j;
    let gap =
      Float.abs ((float_of_int !i /. nf) -. (float_of_int !j /. mf))
    in
    d := Float.max !d gap
  done;
  let d = !d in
  let pvalue =
    if n * m <= ks2_exact_max_nm && not (has_ties xs ys) then
      ks2_exact_pvalue n m d
    else
      let en = nf *. mf /. (nf +. mf) in
      let sen = sqrt en in
      kolmogorov_sf ((sen +. 0.12 +. (0.11 /. sen)) *. d)
  in
  { statistic = d; pvalue = clamp01 pvalue; df = nf *. mf /. (nf +. mf) }
