(** Wald's sequential probability ratio test.

    Accumulates a running log-likelihood ratio log (P1 / P0) between two
    simple hypotheses; {!decide} reports a crossing of the Wald
    boundaries log A = log ((1-beta)/alpha) (reject H0, i.e. accept H1)
    or log B = log (beta/(1-alpha)) (accept H0). Used by the sequential
    shot budget in [Verify] / [Tomography.State_tomo]. *)

type t

type verdict = Accept_h0 | Reject_h0 | Continue

(** [make ~alpha ~beta] with [alpha] the admissible false-reject rate and
    [beta] the false-accept rate, both in (0, 1). *)
val make : alpha:float -> beta:float -> t

(** [observe_llr t llr] folds one observation's log-likelihood-ratio
    increment into the state. *)
val observe_llr : t -> float -> t

(** [bernoulli_llr ~p0 ~p1 success] is the LLR increment of one Bernoulli
    trial under success rates [p0] (H0) vs [p1] (H1). *)
val bernoulli_llr : p0:float -> p1:float -> bool -> float

(** [observe_bernoulli ~p0 ~p1 t success] = [observe_llr] of
    [bernoulli_llr]. *)
val observe_bernoulli : p0:float -> p1:float -> t -> bool -> t

val decide : t -> verdict

(** Number of observations folded so far. *)
val observations : t -> int

(** Current running log-likelihood ratio. *)
val log_lr : t -> float

(** [(log_b, log_a)] accept/reject boundaries. *)
val boundaries : t -> float * float
