(** Deterministic random number generation for reproducible experiments.

    A thin wrapper around [Random.State] with the distributions the
    reproduction needs (uniform, Gaussian, binomial, categorical, Gamma and
    Beta variates). *)

type t

(** [make seed] creates a generator from an integer seed. *)
val make : int -> t

(** [split t i] derives an independent child generator for index [i] by seed
    derivation (SplitMix-style index mixing over entropy drawn from [t]).
    Children for distinct indices are statistically independent of each other
    and of [t]'s continuation.

    Determinism contract: [split] advances [t], so children must be derived
    {e sequentially on the thread that owns [t]} — e.g.
    [Array.init n (split t)] before fanning work out to a pool. Done that
    way, child streams depend only on [t]'s state and the index, never on
    how many domains later consume them. *)
val split : t -> int -> t

(** [fingerprint t] is a stable digest of [t]'s current state, computed
    from a copy — [t] itself is not advanced. Generators with equal
    fingerprints produce bit-identical continuations, making the
    fingerprint usable as a cache-key component for results that depend
    on the stream. *)
val fingerprint : t -> int

(** [float t bound] is uniform in [0, bound). *)
val float : t -> float -> float

(** [int t bound] is uniform in [0, bound). *)
val int : t -> int -> int

(** [bool t] is a fair coin flip. *)
val bool : t -> bool

(** [uniform t lo hi] is uniform in [lo, hi). *)
val uniform : t -> float -> float -> float

(** [gaussian t ~mu ~sigma] is a normal variate (Box-Muller). *)
val gaussian : t -> mu:float -> sigma:float -> float

(** [binomial t ~n ~p] counts successes in [n] Bernoulli([p]) trials. Uses a
    Gaussian approximation for [n * p * (1 - p) > 30] to stay O(1) on the
    large shot counts used by tomography. *)
val binomial : t -> n:int -> p:float -> int

(** [categorical t weights] samples an index proportionally to the
    non-negative [weights]. *)
val categorical : t -> float array -> int

(** [gamma t ~shape] samples Gamma(shape, 1) (Marsaglia-Tsang). *)
val gamma : t -> shape:float -> float

(** [beta t ~a ~b] samples Beta(a, b). *)
val beta : t -> a:float -> b:float -> float

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit
