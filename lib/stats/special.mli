(** Special functions needed by the Beta-distribution confidence model and
    the hypothesis-testing layer ({!Tests}). *)

(** [lgamma x] is the natural log of the Gamma function for [x > 0]
    (Lanczos approximation, ~15 significant digits). *)
val lgamma : float -> float

(** [lbeta a b] is [log (Beta (a, b))]. *)
val lbeta : float -> float -> float

(** [betainc a b x] is the regularized incomplete beta function I_x(a, b)
    for [a, b > 0] and [x] in [0, 1] (continued-fraction evaluation,
    shape-scaled iteration cap so a, b >> 1 still converge). *)
val betainc : float -> float -> float -> float

(** [gammainc_p a x] is the regularized lower incomplete gamma function
    P(a, x) for [a > 0], [x >= 0] (series for [x < a + 1], continued
    fraction otherwise). *)
val gammainc_p : float -> float -> float

(** [gammainc_q a x] is the regularized upper incomplete gamma function
    Q(a, x) = 1 - P(a, x), computed directly so extreme upper tails keep
    full relative precision. *)
val gammainc_q : float -> float -> float

(** [erf x] is the Gauss error function, full double precision via
    P(1/2, x^2). *)
val erf : float -> float

(** [erfc x] is the complementary error function, exact in the upper tail
    (does not round to 0 until x ~ 27). *)
val erfc : float -> float

(** [norm_cdf x] is the standard normal CDF Phi(x). *)
val norm_cdf : float -> float

(** [norm_sf x] is the standard normal survival function 1 - Phi(x),
    tail-exact. *)
val norm_sf : float -> float
