(** Hypothesis tests with exact-tail p-values.

    Every test returns a {!result} carrying the statistic, the p-value and
    the degrees of freedom used, so a verdict can be re-derived from
    recorded counts instead of trusted from a point estimate. *)

type alternative = Two_sided | Less | Greater

type result = { statistic : float; pvalue : float; df : float }

(** Shot-budget policy shared by [Verify], [Characterize] and
    [Tomography.State_tomo]. [`Fixed n] is today's behavior: spend
    exactly [n] shots. [`Sequential s] runs an SPRT with error rates
    [s.alpha] (false reject) / [s.beta] (false accept) and stops early
    when a boundary is crossed, never exceeding [s.max_shots]; at
    [max_shots] without a crossing the fixed-budget decision rule is
    applied to the shots taken, so deterministic programs reproduce the
    fixed verdict. *)
type sequential = { alpha : float; beta : float; max_shots : int }

type budget = [ `Fixed of int | `Sequential of sequential ]

(** {1 Survival functions} *)

(** [chi2_sf x df] is P(X > x) for X ~ chi-square(df). *)
val chi2_sf : float -> float -> float

(** [t_sf t df] is P(T > t) for T ~ Student-t(df), exact in both tails. *)
val t_sf : float -> float -> float

(** [kolmogorov_sf lambda] is the asymptotic Kolmogorov survival function
    Q(lambda) = 2 sum_{k>=1} (-1)^(k-1) exp (-2 k^2 lambda^2). *)
val kolmogorov_sf : float -> float

(** {1 t-tests} *)

(** [t_one_sample ~mu xs] tests H0: mean = [mu]. Requires n >= 2 and
    non-zero sample variance. *)
val t_one_sample : ?alternative:alternative -> mu:float -> float array -> result

(** [t_two_sample xs ys] tests H0: mean xs = mean ys. Welch by default
    (Satterthwaite df); [~equal_var:true] pools variances with
    df = n1 + n2 - 2. [alternative = Greater] means mean xs > mean ys. *)
val t_two_sample :
  ?alternative:alternative ->
  ?equal_var:bool ->
  float array ->
  float array ->
  result

(** {1 Chi-square} *)

(** [chi2_gof ~expected observed] is Pearson's goodness-of-fit test of
    observed counts against expected counts (same total); df = k - 1 -
    [ddof]. Raises [Invalid_argument] on a non-positive expected count. *)
val chi2_gof : ?ddof:int -> expected:float array -> float array -> result

(** [chi2_homogeneity rows] tests whether the rows of a contingency table
    are draws from one distribution; expected counts from the marginals,
    df = (r - 1)(c - 1) after dropping all-zero columns. *)
val chi2_homogeneity : float array array -> result

(** {1 Kolmogorov–Smirnov} *)

(** [ks_one_sample ~cdf xs] is the two-sided one-sample KS test of [xs]
    against the continuous CDF [cdf]. Exact p-value via the
    Marsaglia–Tsang–Wang matrix method for n <= 140, Stephens-corrected
    asymptotic beyond. [result.df] reports n. *)
val ks_one_sample : cdf:(float -> float) -> float array -> result

(** [ks_two_sample xs ys] is the two-sided two-sample KS test. Exact
    p-value by lattice path counting when n * m <= 10^4 and the pooled
    sample has no ties; Stephens-corrected asymptotic otherwise.
    [result.df] reports the effective n*m/(n+m). *)
val ks_two_sample : float array -> float array -> result

(** {1 Exposed internals (golden-value tests)} *)

(** [ks_cdf_exact n d] is the exact P(D_n < d) (Marsaglia–Tsang–Wang). *)
val ks_cdf_exact : int -> float -> float
