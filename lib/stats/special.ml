(* Lanczos approximation with g = 7, n = 9 coefficients. *)
let lanczos =
  [|
    0.99999999999980993;
    676.5203681218851;
    -1259.1392167224028;
    771.32342877765313;
    -176.61502916214059;
    12.507343278686905;
    -0.13857109526572012;
    9.9843695780195716e-6;
    1.5056327351493116e-7;
  |]

let rec lgamma x =
  if x <= 0. then invalid_arg "Special.lgamma: non-positive argument"
  else if x < 0.5 then
    (* reflection formula *)
    log (Float.pi /. sin (Float.pi *. x)) -. lgamma (1. -. x)
  else
    let x = x -. 1. in
    let a = ref lanczos.(0) in
    let t = x +. 7.5 in
    for i = 1 to 8 do
      a := !a +. (lanczos.(i) /. (x +. float_of_int i))
    done;
    (0.5 *. log (2. *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a

let lbeta a b = lgamma a +. lgamma b -. lgamma (a +. b)

(* Continued fraction for the incomplete beta function (Numerical Recipes
   betacf), using the modified Lentz method. The iteration cap scales with
   the shape parameters: for a, b >> 1 the fraction converges like
   O(sqrt (a + b)) terms near the distribution body, so the fixed cap of
   300 that served the Theorem-3 confidence fits would silently return an
   unconverged tail there. *)
let betacf a b x =
  let max_iter = 300 + int_of_float (4. *. sqrt (a +. b)) in
  let eps = 3e-14 and fpmin = 1e-300 in
  let qab = a +. b and qap = a +. 1. and qam = a -. 1. in
  let c = ref 1. in
  let d = ref (1. -. (qab *. x /. qap)) in
  if Float.abs !d < fpmin then d := fpmin;
  d := 1. /. !d;
  let h = ref !d in
  (try
     for m = 1 to max_iter do
       let mf = float_of_int m in
       let m2 = 2. *. mf in
       let aa = mf *. (b -. mf) *. x /. ((qam +. m2) *. (a +. m2)) in
       d := 1. +. (aa *. !d);
       if Float.abs !d < fpmin then d := fpmin;
       c := 1. +. (aa /. !c);
       if Float.abs !c < fpmin then c := fpmin;
       d := 1. /. !d;
       h := !h *. !d *. !c;
       let aa = -.(a +. mf) *. (qab +. mf) *. x /. ((a +. m2) *. (qap +. m2)) in
       d := 1. +. (aa *. !d);
       if Float.abs !d < fpmin then d := fpmin;
       c := 1. +. (aa /. !c);
       if Float.abs !c < fpmin then c := fpmin;
       d := 1. /. !d;
       let del = !d *. !c in
       h := !h *. del;
       if Float.abs (del -. 1.) < eps then raise Exit
     done
   with Exit -> ());
  !h

let betainc a b x =
  if a <= 0. || b <= 0. then invalid_arg "Special.betainc: non-positive shape";
  if x <= 0. then 0.
  else if x >= 1. then 1.
  else
    (* [log1p (-.x)] instead of [log (1. -. x)]: for x near 0 with a large
       [b] exponent the naive form loses ~8 digits of the tail, which the
       Beta_dist.cdf golden rows pin down *)
    let front = exp ((a *. log x) +. (b *. Float.log1p (-.x)) -. lbeta a b) in
    if x < (a +. 1.) /. (a +. b +. 2.) then front *. betacf a b x /. a
    else 1. -. (front *. betacf b a (1. -. x) /. b)

(* ----------------- regularized incomplete gamma ----------------- *)

(* series representation of P(a, x), valid (and fast) for x < a + 1 *)
let gammainc_series a x =
  let max_iter = 500 and eps = 3e-15 in
  let ap = ref a in
  let sum = ref (1. /. a) in
  let del = ref !sum in
  (try
     for _ = 1 to max_iter do
       ap := !ap +. 1.;
       del := !del *. x /. !ap;
       sum := !sum +. !del;
       if Float.abs !del < Float.abs !sum *. eps then raise Exit
     done
   with Exit -> ());
  !sum *. exp ((a *. log x) -. x -. lgamma a)

(* continued fraction for Q(a, x), valid for x >= a + 1 (modified Lentz) *)
let gammainc_cf a x =
  let max_iter = 500 and eps = 3e-15 and fpmin = 1e-300 in
  let b = ref (x +. 1. -. a) in
  let c = ref (1. /. fpmin) in
  let d = ref (1. /. !b) in
  let h = ref !d in
  (try
     for i = 1 to max_iter do
       let an = -.float_of_int i *. (float_of_int i -. a) in
       b := !b +. 2.;
       d := (an *. !d) +. !b;
       if Float.abs !d < fpmin then d := fpmin;
       c := !b +. (an /. !c);
       if Float.abs !c < fpmin then c := fpmin;
       d := 1. /. !d;
       let del = !d *. !c in
       h := !h *. del;
       if Float.abs (del -. 1.) < eps then raise Exit
     done
   with Exit -> ());
  exp ((a *. log x) -. x -. lgamma a) *. !h

let gammainc_p a x =
  if a <= 0. then invalid_arg "Special.gammainc_p: non-positive shape";
  if x < 0. then invalid_arg "Special.gammainc_p: negative argument";
  if x = 0. then 0.
  else if x < a +. 1. then gammainc_series a x
  else 1. -. gammainc_cf a x

let gammainc_q a x =
  if a <= 0. then invalid_arg "Special.gammainc_q: non-positive shape";
  if x < 0. then invalid_arg "Special.gammainc_q: negative argument";
  if x = 0. then 1.
  else if x < a +. 1. then 1. -. gammainc_series a x
  else gammainc_cf a x

(* erf/erfc via the incomplete gamma: erf x = P(1/2, x^2). Full double
   precision, unlike the Abramowitz-Stegun 7.1.26 polynomial (~1e-7) the
   seed shipped — the hypothesis tests need exact tails. *)
let erf x =
  if x = 0. then 0.
  else if x > 0. then gammainc_p 0.5 (x *. x)
  else -.gammainc_p 0.5 (x *. x)

let erfc x =
  if x >= 0. then gammainc_q 0.5 (x *. x) else 2. -. gammainc_q 0.5 (x *. x)

(* standard normal CDF, with the symmetric erfc form that keeps extreme
   tails exact instead of rounding to 0/1 *)
let norm_cdf x = 0.5 *. erfc (-.x /. sqrt 2.)
let norm_sf x = 0.5 *. erfc (x /. sqrt 2.)
