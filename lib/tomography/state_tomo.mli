(** Quantum state tomography with simulated finite-shot noise.

    The device only exposes measurement statistics, so tracepoint states are
    reconstructed from Pauli expectations: [rho = 2^-n sum_P <P> P]. Each
    expectation estimate uses [shots] repetitions with binomial sampling
    noise; the reconstruction is optionally projected back to the
    density-matrix cone (Hermitian, PSD, unit trace).

    Measurement-setting accounting follows the standard scheme where one of
    [3^n] local bases serves every Pauli string it dominates. *)

type result = {
  rho : Linalg.Cmat.t;  (** reconstructed state *)
  settings : int;  (** distinct measurement settings used *)
  shots_used : int;  (** total shots across settings *)
}

(** [noisy_expectation rng ~shots e] simulates estimating a Pauli expectation
    whose true value is [e] from [shots] single-shot readouts. [shots = 0]
    returns [e] exactly. *)
val noisy_expectation : Stats.Rng.t -> shots:int -> float -> float

(** [settings_count n] is [3^n], the number of local measurement bases that
    cover all Pauli strings on [n] qubits. *)
val settings_count : int -> int

(** [reconstruct n terms] assembles [2^-n * sum (e_P * P)] from estimated
    expectations; the identity term is fixed to 1 if absent. *)
val reconstruct : int -> (Qstate.Pauli.t * float) list -> Linalg.Cmat.t

(** [run ?project ?budget rng ~shots ~truth ()] performs full tomography of
    the [n]-qubit state [truth] (an exact density matrix): estimates every
    Pauli expectation with shot noise, reconstructs, and projects to a
    physical state unless [project] is [false]. [shots] is the budget per
    measurement setting.

    [budget] (default: today's fixed behavior) selects the shot policy:
    [`Fixed n] overrides [shots]; [`Sequential s] draws shot blocks per
    expectation and stops each estimate as soon as its smoothed standard
    error matches what [s.max_shots] shots would guarantee at worst case
    (variance-matched stopping) — sharply peaked outcomes stop after
    O(sqrt max_shots) shots. Shots saved against the fixed equivalent are
    recorded in the [verify_shots_saved_total] / [verify_early_stop_total]
    counters; [result.shots_used] reports actual spend (per-setting max
    over the Pauli strings the setting covers). The fixed path is
    bit-identical to the pre-budget code.

    [cache] is a store plus a caller context string: the estimate is
    memoized as a pure function of (context, truth, shots, project,
    budget, generator fingerprint). A hit returns the stored estimate
    without advancing [rng] or recording shot counters. *)
val run :
  ?project:bool ->
  ?budget:Stats.Tests.budget ->
  ?cache:Cache.t * string ->
  Stats.Rng.t ->
  shots:int ->
  truth:Linalg.Cmat.t ->
  unit ->
  result

(** [probs_only ?budget rng ~shots ~truth ()] estimates only the
    computational-basis distribution (the paper's Strategy-prop
    short-cut): one setting, [shots] samples, returning the diagonal
    reconstruction. [budget] as in {!run}: sequential stopping ends the
    draw once every category's smoothed standard error is at worst what
    the full [max_shots] would guarantee. *)
val probs_only :
  ?budget:Stats.Tests.budget ->
  Stats.Rng.t ->
  shots:int ->
  truth:Linalg.Cmat.t ->
  unit ->
  result
