open Linalg
open Qstate

type result = { rho : Cmat.t; settings : int; shots_used : int }

let noisy_expectation rng ~shots e =
  if shots <= 0 then e
  else
    let e = Float.min 1. (Float.max (-1.) e) in
    let p_plus = (1. +. e) /. 2. in
    let k = Stats.Rng.binomial rng ~n:shots ~p:p_plus in
    (2. *. float_of_int k /. float_of_int shots) -. 1.

let settings_count n =
  let rec pow acc k = if k = 0 then acc else pow (acc * 3) (k - 1) in
  pow 1 n

let reconstruct n terms =
  let d = 1 lsl n in
  let acc = ref (Cmat.create d d) in
  let has_identity = ref false in
  List.iter
    (fun (p, e) ->
      if Pauli.weight p = 0 then has_identity := true;
      if e <> 0. then acc := Cmat.add !acc (Cmat.rscale e (Pauli.matrix p)))
    terms;
  if not !has_identity then acc := Cmat.add !acc (Cmat.identity d);
  Cmat.rscale (1. /. float_of_int d) !acc

let run ?(project = true) rng ~shots ~truth () =
  Obs.Span.with_ ~name:"tomography.run" @@ fun () ->
  let d, dc = Cmat.dims truth in
  if d <> dc then invalid_arg "State_tomo.run: non-square state";
  let n =
    let rec log2 acc k = if k <= 1 then acc else log2 (acc + 1) (k / 2) in
    log2 0 d
  in
  if 1 lsl n <> d then invalid_arg "State_tomo.run: dimension not a power of 2";
  let terms =
    List.map
      (fun p ->
        let e_true = Pauli.expectation_dm p truth in
        let e =
          if Pauli.weight p = 0 then 1. else noisy_expectation rng ~shots e_true
        in
        (p, e))
      (Pauli.all n)
  in
  let raw = reconstruct n terms in
  let rho = if project then Eig.project_psd raw else Cmat.hermitize raw in
  let settings = settings_count n in
  if Obs.enabled () then
    Obs.Metrics.counter_add "tomography_shots_total" (settings * shots);
  { rho; settings; shots_used = settings * shots }

let probs_only rng ~shots ~truth () =
  Obs.Span.with_ ~name:"tomography.probs_only" @@ fun () ->
  if Obs.enabled () then
    Obs.Metrics.counter_add "tomography_shots_total" shots;
  let d, _ = Cmat.dims truth in
  let true_probs = Array.init d (fun i -> Float.max 0. (Cx.re (Cmat.get truth i i))) in
  let total = Array.fold_left ( +. ) 0. true_probs in
  let norm = if total > 0. then Array.map (fun p -> p /. total) true_probs else true_probs in
  (* multinomial sampling of the diagonal *)
  let counts = Array.make d 0 in
  for _ = 1 to shots do
    let k = Stats.Rng.categorical rng norm in
    counts.(k) <- counts.(k) + 1
  done;
  let rho =
    Cmat.init d d (fun i j ->
        if i = j then Cx.of_float (float_of_int counts.(i) /. float_of_int shots)
        else Cx.zero)
  in
  { rho; settings = 1; shots_used = shots }
