open Linalg
open Qstate

type result = { rho : Cmat.t; settings : int; shots_used : int }

let noisy_expectation rng ~shots e =
  if shots <= 0 then e
  else
    let e = Float.min 1. (Float.max (-1.) e) in
    let p_plus = (1. +. e) /. 2. in
    let k = Stats.Rng.binomial rng ~n:shots ~p:p_plus in
    (2. *. float_of_int k /. float_of_int shots) -. 1.

let settings_count n =
  let rec pow acc k = if k = 0 then acc else pow (acc * 3) (k - 1) in
  pow 1 n

let reconstruct n terms =
  let d = 1 lsl n in
  let acc = ref (Cmat.create d d) in
  let has_identity = ref false in
  List.iter
    (fun (p, e) ->
      if Pauli.weight p = 0 then has_identity := true;
      if e <> 0. then acc := Cmat.add !acc (Cmat.rscale e (Pauli.matrix p)))
    terms;
  if not !has_identity then acc := Cmat.add !acc (Cmat.identity d);
  Cmat.rscale (1. /. float_of_int d) !acc

(* ----------------- sequential (adaptive) shot budgets -----------------

   Variance-matched stopping rule: keep drawing shot blocks for an
   estimate until its (smoothed) standard error is no worse than the one
   a full fixed budget of [cap] shots would give in the worst case
   (p = 1/2), i.e. stop at the first block boundary where
   p~ (1 - p~) / s <= 0.25 / cap with p~ = (k + 1) / (s + 2). Sharply
   peaked outcomes — deterministic programs especially — stop after
   O(sqrt cap) shots; maximally noisy ones run to [cap], reproducing the
   fixed budget. The SPRT verdict layer sits above, in Verify. *)

let seq_block cap = max 16 (cap / 32)

let seq_counters ~cap ~used ~early =
  if Obs.enabled () then begin
    if cap > used then
      Obs.Metrics.counter_add "verify_shots_saved_total" (cap - used);
    if early then Obs.Metrics.counter_add "verify_early_stop_total" 1
  end

(* sequential binomial estimate of a Bernoulli rate; returns (k, s) *)
let sequential_binomial rng ~cap p =
  let block = seq_block cap in
  let k = ref 0 and s = ref 0 in
  let stop = ref false in
  while (not !stop) && !s < cap do
    let b = min block (cap - !s) in
    k := !k + Stats.Rng.binomial rng ~n:b ~p;
    s := !s + b;
    let sf = float_of_int !s in
    let pt = (float_of_int !k +. 1.) /. (sf +. 2.) in
    if pt *. (1. -. pt) /. sf <= 0.25 /. float_of_int cap then stop := true
  done;
  (!k, !s)

let sequential_expectation rng ~cap e =
  let e = Float.min 1. (Float.max (-1.) e) in
  let p_plus = (1. +. e) /. 2. in
  let k, s = sequential_binomial rng ~cap p_plus in
  ((2. *. float_of_int k /. float_of_int s) -. 1., s)

(* canonical measurement setting covering a Pauli string: identity
   factors measured in Z — each of the 3^n local bases serves every
   string assigned to it, so a setting's shot count is the max its
   strings needed *)
let setting_key p =
  String.init (Array.length p) (fun i ->
      match p.(i) with
      | Qstate.Pauli.I | Qstate.Pauli.Z -> 'Z'
      | Qstate.Pauli.X -> 'X'
      | Qstate.Pauli.Y -> 'Y')

let run_direct ?(project = true) ?budget rng ~shots ~truth () =
  Obs.Span.with_ ~name:"tomography.run" @@ fun () ->
  let d, dc = Cmat.dims truth in
  if d <> dc then invalid_arg "State_tomo.run: non-square state";
  let n =
    let rec log2 acc k = if k <= 1 then acc else log2 (acc + 1) (k / 2) in
    log2 0 d
  in
  if 1 lsl n <> d then invalid_arg "State_tomo.run: dimension not a power of 2";
  let settings = settings_count n in
  match budget with
  | None | Some (`Fixed _) ->
      (* fixed budget: exactly the pre-budget code path (one binomial
         draw per Pauli on the same generator stream) *)
      let shots =
        match budget with Some (`Fixed n) -> n | _ -> shots
      in
      let terms =
        List.map
          (fun p ->
            let e_true = Pauli.expectation_dm p truth in
            let e =
              if Pauli.weight p = 0 then 1.
              else noisy_expectation rng ~shots e_true
            in
            (p, e))
          (Pauli.all n)
      in
      let raw = reconstruct n terms in
      let rho = if project then Eig.project_psd raw else Cmat.hermitize raw in
      if Obs.enabled () then
        Obs.Metrics.counter_add "tomography_shots_total" (settings * shots);
      { rho; settings; shots_used = settings * shots }
  | Some (`Sequential { Stats.Tests.max_shots = cap; _ }) ->
      if cap <= 0 then invalid_arg "State_tomo.run: non-positive max_shots";
      let per_setting = Hashtbl.create 16 in
      let terms =
        List.map
          (fun p ->
            if Pauli.weight p = 0 then (p, 1.)
            else begin
              let e_true = Pauli.expectation_dm p truth in
              let e, s = sequential_expectation rng ~cap e_true in
              let key = setting_key p in
              let prev =
                Option.value ~default:0 (Hashtbl.find_opt per_setting key)
              in
              if s > prev then Hashtbl.replace per_setting key s;
              (p, e)
            end)
          (Pauli.all n)
      in
      let raw = reconstruct n terms in
      let rho = if project then Eig.project_psd raw else Cmat.hermitize raw in
      let used = Hashtbl.fold (fun _ s acc -> acc + s) per_setting 0 in
      if Obs.enabled () then
        Obs.Metrics.counter_add "tomography_shots_total" used;
      seq_counters ~cap:(settings * cap) ~used ~early:(used < settings * cap);
      { rho; settings; shots_used = used }

(* Estimate memo: [cache] is the store plus a caller context string (the
   characterization layer passes its unit key; standalone callers pass any
   stable tag). A hit returns the stored estimate without advancing [rng]
   or recording [tomography_shots_total] — the estimate is a pure function
   of (context, truth, shots, project, budget, generator fingerprint). *)
let run ?project ?budget ?cache rng ~shots ~truth () =
  match cache with
  | None -> run_direct ?project ?budget rng ~shots ~truth ()
  | Some (cache, ctx) -> (
      let key =
        Cache.Fnv.hex
          (String.concat "\x00"
             [
               "tomo-v1";
               ctx;
               Marshal.to_string (truth : Cmat.t) [];
               Marshal.to_string (shots, project, budget) [];
               string_of_int (Stats.Rng.fingerprint rng);
             ])
      in
      match Cache.find_value cache ~ns:"tomography" key with
      | Some r -> r
      | None ->
          let r = run_direct ?project ?budget rng ~shots ~truth () in
          Cache.store_value cache ~ns:"tomography" key r;
          r)

let probs_only ?budget rng ~shots ~truth () =
  Obs.Span.with_ ~name:"tomography.probs_only" @@ fun () ->
  let d, _ = Cmat.dims truth in
  let true_probs = Array.init d (fun i -> Float.max 0. (Cx.re (Cmat.get truth i i))) in
  let total = Array.fold_left ( +. ) 0. true_probs in
  let norm = if total > 0. then Array.map (fun p -> p /. total) true_probs else true_probs in
  (* multinomial sampling of the diagonal *)
  let counts = Array.make d 0 in
  let draw n =
    for _ = 1 to n do
      let k = Stats.Rng.categorical rng norm in
      counts.(k) <- counts.(k) + 1
    done
  in
  let used =
    match budget with
    | None | Some (`Fixed _) ->
        let shots =
          match budget with Some (`Fixed n) -> n | _ -> shots
        in
        draw shots;
        shots
    | Some (`Sequential { Stats.Tests.max_shots = cap; _ }) ->
        if cap <= 0 then
          invalid_arg "State_tomo.probs_only: non-positive max_shots";
        let block = seq_block cap in
        let s = ref 0 and stop = ref false in
        while (not !stop) && !s < cap do
          let b = min block (cap - !s) in
          draw b;
          s := !s + b;
          (* stop once every category's smoothed standard error matches
             what the full cap would guarantee at worst case p = 1/2 *)
          let sf = float_of_int !s in
          let worst = ref 0. in
          Array.iter
            (fun c ->
              let pt = (float_of_int c +. 1.) /. (sf +. 2.) in
              worst := Float.max !worst (pt *. (1. -. pt)))
            counts;
          if !worst /. sf <= 0.25 /. float_of_int cap then stop := true
        done;
        seq_counters ~cap ~used:!s ~early:(!s < cap);
        !s
  in
  if Obs.enabled () then
    Obs.Metrics.counter_add "tomography_shots_total" used;
  let rho =
    Cmat.init d d (fun i j ->
        if i = j then Cx.of_float (float_of_int counts.(i) /. float_of_int used)
        else Cx.zero)
  in
  { rho; settings = 1; shots_used = used }
