module Gate = Gate
module Instr = Instr

type error = Cerror.info = {
  code : string;
  message : string;
  loc : (int * int) option;
}

exception Error = Cerror.Circuit_error

type t = { num_qubits : int; num_clbits : int; rev_instrs : Instr.t list }

let empty ?(clbits = 0) n =
  if n <= 0 then
    Cerror.error "MQ016" "Circuit.empty: need at least one qubit (got %d)" n;
  if clbits < 0 then
    Cerror.error "MQ016" "Circuit.empty: negative clbit count %d" clbits;
  { num_qubits = n; num_clbits = clbits; rev_instrs = [] }

let num_qubits c = c.num_qubits
let num_clbits c = c.num_clbits
let instrs c = List.rev c.rev_instrs

let check_qubit c q =
  if q < 0 || q >= c.num_qubits then
    Cerror.error "MQ001" "Circuit: qubit %d out of range (register has %d)" q
      c.num_qubits

let check_clbit c b =
  if b < 0 || b >= c.num_clbits then
    Cerror.error "MQ002" "Circuit: clbit %d out of range (register has %d)" b
      c.num_clbits

let add i c =
  List.iter (check_qubit c) (Instr.qubits i);
  (match i with
  | Instr.Measure { clbit; _ } -> check_clbit c clbit
  | Instr.If_gate { clbits; _ } -> List.iter (check_clbit c) clbits
  | _ -> ());
  { c with rev_instrs = i :: c.rev_instrs }

let append a b =
  if a.num_qubits <> b.num_qubits || a.num_clbits <> b.num_clbits then
    Cerror.error "MQ013"
      "Circuit.append: register mismatch (%dq+%dc vs %dq+%dc)" a.num_qubits
      a.num_clbits b.num_qubits b.num_clbits;
  { a with rev_instrs = b.rev_instrs @ a.rev_instrs }

let gate ?params ?controls name targets c =
  add (Instr.Gate (Gate.make ?params ?controls name targets)) c

let g1 name q c = gate name [ q ] c
let h = g1 "h"
let x = g1 "x"
let y = g1 "y"
let z = g1 "z"
let s = g1 "s"
let sdg = g1 "sdg"
let t_gate = g1 "t"
let tdg = g1 "tdg"
let sx = g1 "sx"
let rx th q c = gate ~params:[ th ] "rx" [ q ] c
let ry th q c = gate ~params:[ th ] "ry" [ q ] c
let rz th q c = gate ~params:[ th ] "rz" [ q ] c
let p l q c = gate ~params:[ l ] "p" [ q ] c
let u3 th ph l q c = gate ~params:[ th; ph; l ] "u3" [ q ] c
let cx ctl tgt c = gate ~controls:[ ctl ] "x" [ tgt ] c
let cy ctl tgt c = gate ~controls:[ ctl ] "y" [ tgt ] c
let cz ctl tgt c = gate ~controls:[ ctl ] "z" [ tgt ] c
let cp l ctl tgt c = gate ~params:[ l ] ~controls:[ ctl ] "p" [ tgt ] c
let crx th ctl tgt c = gate ~params:[ th ] ~controls:[ ctl ] "rx" [ tgt ] c
let cry th ctl tgt c = gate ~params:[ th ] ~controls:[ ctl ] "ry" [ tgt ] c
let crz th ctl tgt c = gate ~params:[ th ] ~controls:[ ctl ] "rz" [ tgt ] c
let swap a b c = gate "swap" [ a; b ] c
let ccx c1 c2 tgt c = gate ~controls:[ c1; c2 ] "x" [ tgt ] c
let mcx controls tgt c = gate ~controls "x" [ tgt ] c

let mcz qubits c =
  match List.rev qubits with
  | [] -> Cerror.error "MQ015" "Circuit.mcz: empty qubit list"
  | tgt :: rev_controls -> gate ~controls:(List.rev rev_controls) "z" [ tgt ] c

let mcp l controls tgt c = gate ~params:[ l ] ~controls "p" [ tgt ] c
let mcrx th controls tgt c = gate ~params:[ th ] ~controls "rx" [ tgt ] c
let mcry th controls tgt c = gate ~params:[ th ] ~controls "ry" [ tgt ] c
let tracepoint id qubits c = add (Instr.Tracepoint { id; qubits }) c
let measure qubit clbit c = add (Instr.Measure { qubit; clbit }) c
let reset q c = add (Instr.Reset q) c
let if_gate clbits value g c = add (Instr.If_gate { clbits; value; gate = g }) c
let barrier qs c = add (Instr.Barrier qs) c

let gate_count c =
  List.fold_left
    (fun acc i ->
      match i with Instr.Gate _ | Instr.If_gate _ -> acc + 1 | _ -> acc)
    0 (instrs c)

let two_qubit_count c =
  List.fold_left
    (fun acc i ->
      match i with
      | Instr.Gate g when Gate.is_two_qubit_or_more g -> acc + 1
      | Instr.If_gate { gate; _ } when Gate.is_two_qubit_or_more gate -> acc + 1
      | _ -> acc)
    0 (instrs c)

let depth c =
  let levels = Array.make c.num_qubits 0 in
  List.iter
    (fun i ->
      match i with
      | Instr.Gate _ | Instr.If_gate _ | Instr.Measure _ | Instr.Reset _ ->
          let qs = Instr.qubits i in
          let level = 1 + List.fold_left (fun m q -> max m levels.(q)) 0 qs in
          List.iter (fun q -> levels.(q) <- level) qs
      | Instr.Tracepoint _ | Instr.Barrier _ -> ())
    (instrs c);
  Array.fold_left max 0 levels

let tracepoints c =
  List.filter_map
    (function Instr.Tracepoint { id; qubits } -> Some (id, qubits) | _ -> None)
    (instrs c)

let has_measurement_before c ~tracepoint_id =
  let rec go seen_measure = function
    | [] -> false
    | Instr.Tracepoint { id; _ } :: _ when id = tracepoint_id -> seen_measure
    | Instr.Measure _ :: rest -> go true rest
    | _ :: rest -> go seen_measure rest
  in
  go false (instrs c)

let adjoint c =
  let rev_gates =
    List.map
      (function
        | Instr.Gate g -> Instr.Gate (Gate.inverse g)
        | Instr.Barrier qs -> Instr.Barrier qs
        | Instr.Tracepoint _ as tp -> tp
        | (Instr.Measure _ | Instr.Reset _ | Instr.If_gate _) as i ->
            Cerror.error "MQ014"
              "Circuit.adjoint: non-unitary instruction (%s)"
              (Format.asprintf "%a" Instr.pp i))
      c.rev_instrs
  in
  { c with rev_instrs = List.rev rev_gates }

let map_gates f c =
  let mapped =
    List.filter_map
      (function
        | Instr.Gate g -> Option.map (fun g' -> Instr.Gate g') (f g)
        | i -> Some i)
      (instrs c)
  in
  { c with rev_instrs = List.rev mapped }

let pp ppf c =
  Format.fprintf ppf "@[<v>circuit %d qubits, %d clbits@," c.num_qubits
    c.num_clbits;
  List.iter (fun i -> Format.fprintf ppf "%a@," Instr.pp i) (instrs c);
  Format.fprintf ppf "@]"
