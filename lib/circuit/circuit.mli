(** Quantum programs as persistent instruction sequences, with a
    pipeline-friendly builder DSL:

    {[
      let ghz =
        Circuit.(empty 3 |> h 0 |> cx 0 1 |> cx 1 2 |> tracepoint 1 [ 0; 1; 2 ])
    ]} *)

(** Re-exported gate and instruction modules (the library's entry point is
    this module; siblings are hidden by dune's main-module convention). *)
module Gate : module type of Gate

module Instr : module type of Instr

(** Structured validation error. [code] is a stable diagnostic code shared
    with [Analysis.Lint] (e.g. ["MQ001"] qubit out of range, ["MQ013"]
    register mismatch, ["MQ014"] adjoint of non-unitary); [loc] is a
    [(line, column)] source location when the error was raised while
    elaborating parsed text (the QASM front end fills it in), [None] for
    programmatically built circuits. *)
type error = { code : string; message : string; loc : (int * int) option }

(** Raised by every construction/validation failure in [Gate] and
    [Circuit] (range checks, malformed gates, register mismatch, adjoint
    of non-unitary instructions). *)
exception Error of error

type t = private {
  num_qubits : int;
  num_clbits : int;
  rev_instrs : Instr.t list;
}

(** [empty ?clbits n] is a program over [n] qubits and [clbits] classical
    bits (default 0 — measuring automatically grows the classical register
    is NOT supported; declare what you need). *)
val empty : ?clbits:int -> int -> t

val num_qubits : t -> int
val num_clbits : t -> int

(** [instrs c] returns instructions in program order. *)
val instrs : t -> Instr.t list

(** [add i c] appends an instruction after validating qubit/clbit ranges. *)
val add : Instr.t -> t -> t

(** [append a b] concatenates the instructions of [b] after [a] (registers
    must match in size). *)
val append : t -> t -> t

(** [gate ?params ?controls name targets c] appends a gate. *)
val gate : ?params:float list -> ?controls:int list -> string -> int list -> t -> t

(* Single-qubit gate builders *)
val h : int -> t -> t
val x : int -> t -> t
val y : int -> t -> t
val z : int -> t -> t
val s : int -> t -> t
val sdg : int -> t -> t
val t_gate : int -> t -> t
val tdg : int -> t -> t
val sx : int -> t -> t
val rx : float -> int -> t -> t
val ry : float -> int -> t -> t
val rz : float -> int -> t -> t
val p : float -> int -> t -> t
val u3 : float -> float -> float -> int -> t -> t

(* Controlled / multi-qubit builders *)
val cx : int -> int -> t -> t
val cy : int -> int -> t -> t
val cz : int -> int -> t -> t
val cp : float -> int -> int -> t -> t
val crx : float -> int -> int -> t -> t
val cry : float -> int -> int -> t -> t
val crz : float -> int -> int -> t -> t
val swap : int -> int -> t -> t
val ccx : int -> int -> int -> t -> t

(** [mcx controls target c] is a multi-controlled X. *)
val mcx : int list -> int -> t -> t

(** [mcz qubits c] is a multi-controlled Z; by Z-symmetry the last qubit is
    taken as target and the rest as controls. *)
val mcz : int list -> t -> t

val mcp : float -> int list -> int -> t -> t
val mcrx : float -> int list -> int -> t -> t
val mcry : float -> int list -> int -> t -> t

(* Non-gate instructions *)
val tracepoint : int -> int list -> t -> t
val measure : int -> int -> t -> t
val reset : int -> t -> t

(** [if_gate clbits value g c] appends a gate applied when the classical
    bits [clbits] (least significant first) read as the integer [value]. *)
val if_gate : int list -> int -> Gate.t -> t -> t

val barrier : int list -> t -> t

(* Inspection *)

(** [gate_count c] counts gate and feedback-gate instructions. *)
val gate_count : t -> int

(** [two_qubit_count c] counts gates touching two or more qubits. *)
val two_qubit_count : t -> int

(** [depth c] is the circuit depth counting gates (tracepoints/barriers are
    free, measurements count as depth-1 events on their qubit). *)
val depth : t -> int

(** [tracepoints c] lists [(id, qubits)] in program order. *)
val tracepoints : t -> (int * int list) list

(** [has_measurement_before c ~tracepoint_id] tells whether a measurement
    occurs before the given tracepoint (approximation caveat in Theorem 1). *)
val has_measurement_before : t -> tracepoint_id:int -> bool

(** [adjoint c] reverses the circuit and inverts each gate. Fails on programs
    with measurements, resets or feedback. *)
val adjoint : t -> t

(** [map_gates f c] rewrites every gate (dropping it when [f] returns [None]);
    other instructions are kept. *)
val map_gates : (Gate.t -> Gate.t option) -> t -> t

val pp : Format.formatter -> t -> unit
