(* Structured construction/validation errors for the circuit layer.

   Every validation failure in [Gate]/[Circuit] raises one exception
   carrying a stable diagnostic code shared with [Analysis.Lint]
   (MQ001 qubit range, MQ002 clbit range, MQ003 duplicate operand,
   MQ013 register mismatch, MQ014 non-unitary adjoint, MQ015 malformed
   gate, MQ016 invalid register declaration), so front ends can surface
   source-located diagnostics instead of opaque [Invalid_argument]
   strings. [loc] is [None] at raise time; the QASM parser re-raises
   with the offending statement's (line, column). *)

type info = { code : string; message : string; loc : (int * int) option }

exception Circuit_error of info

let error ?loc code fmt =
  Printf.ksprintf
    (fun message -> raise (Circuit_error { code; message; loc }))
    fmt

let to_string { code; message; loc } =
  match loc with
  | Some (line, col) -> Printf.sprintf "%d:%d: [%s] %s" line col code message
  | None -> Printf.sprintf "[%s] %s" code message
