(** Structured validation errors shared by [Gate] and [Circuit] (re-exported
    as [Circuit.Error]); codes match the [Analysis.Lint] diagnostic table. *)

type info = { code : string; message : string; loc : (int * int) option }

exception Circuit_error of info

(** [error ?loc code fmt ...] raises {!Circuit_error} with a formatted
    message. *)
val error : ?loc:int * int -> string -> ('a, unit, string, 'b) format4 -> 'a

val to_string : info -> string
