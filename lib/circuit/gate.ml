type t = {
  name : string;
  params : float list;
  controls : int list;
  targets : int list;
}

let base_names = "swap" :: Qstate.Gates.known_names

let rec distinct = function
  | [] -> true
  | x :: rest -> (not (List.mem x rest)) && distinct rest

let make ?(params = []) ?(controls = []) name targets =
  if not (List.mem name base_names) then
    Cerror.error "MQ015" "Gate.make: unknown base gate %S" name;
  (match (name, targets) with
  | "swap", [ _; _ ] -> ()
  | "swap", _ -> Cerror.error "MQ015" "Gate.make: swap needs two targets"
  | _, [ _ ] -> ()
  | _ -> Cerror.error "MQ015" "Gate.make: %s needs one target" name);
  if not (distinct (controls @ targets)) then
    Cerror.error "MQ003" "Gate.make: duplicate qubit in gate %s" name;
  { name; params; controls; targets }

let qubits g = g.controls @ g.targets
let is_two_qubit_or_more g = List.length (qubits g) >= 2

let inverse g =
  let inv_name, inv_params =
    match (g.name, g.params) with
    | ("h" | "x" | "y" | "z" | "swap" | "id"), [] -> (g.name, [])
    | "s", [] -> ("sdg", [])
    | "sdg", [] -> ("s", [])
    | "t", [] -> ("tdg", [])
    | "tdg", [] -> ("t", [])
    (* sx^dagger is rx(-pi/2) only up to a global phase e^{i pi/4}; under
       controls that phase is relative, so return the exact adjoint matrix
       (entries are +-1/2, exactly representable). Same for sy. *)
    | "sx", [] ->
        ("u2x2", [ 0.5; -0.5; 0.5; 0.5; 0.5; 0.5; 0.5; -0.5 ])
    | "sy", [] ->
        ("u2x2", [ 0.5; -0.5; 0.5; -0.5; -0.5; 0.5; 0.5; -0.5 ])
    | "u2x2", [ r00; i00; r01; i01; r10; i10; r11; i11 ] ->
        ("u2x2", [ r00; -.i00; r10; -.i10; r01; -.i01; r11; -.i11 ])
    | ("rx" | "ry" | "rz" | "p" | "u1"), [ a ] -> (g.name, [ -.a ])
    | "u3", [ th; ph; l ] -> ("u3", [ -.th; -.l; -.ph ])
    | name, _ ->
        invalid_arg (Printf.sprintf "Gate.inverse: unsupported gate %s" name)
  in
  { g with name = inv_name; params = inv_params }

let remap f g =
  {
    g with
    controls = List.map f g.controls;
    targets = List.map f g.targets;
  }

let equal a b =
  a.name = b.name && a.controls = b.controls && a.targets = b.targets
  && List.length a.params = List.length b.params
  && List.for_all2 (fun x y -> Float.abs (x -. y) < 1e-12) a.params b.params

let pp ppf g =
  let pp_ints ppf l =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
      Format.pp_print_int ppf l
  in
  (match g.controls with
  | [] -> Format.fprintf ppf "%s" g.name
  | cs -> Format.fprintf ppf "c[%a]%s" pp_ints cs g.name);
  (match g.params with
  | [] -> ()
  | ps ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           (fun ppf x -> Format.fprintf ppf "%g" x))
        ps);
  Format.fprintf ppf " q[%a]" pp_ints g.targets
