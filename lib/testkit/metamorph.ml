(* Keep only unitary gate instructions ([Circuit.adjoint] rejects
   measurement/reset/feedback, and duplicate tracepoint ids after an append
   would be ambiguous). *)
let gates_only c =
  List.fold_left
    (fun acc i ->
      match i with Circuit.Instr.Gate _ -> Circuit.add i acc | _ -> acc)
    (Circuit.empty (Circuit.num_qubits c))
    (Circuit.instrs c)

let adjoint_cancels circ =
  let c = gates_only (Gen.build circ) in
  let round_trip = Circuit.append c (Circuit.adjoint c) in
  let final = (Sim.Engine.run round_trip).Sim.Engine.state in
  let zero = Qstate.Statevec.zero (Circuit.num_qubits c) in
  Qstate.Statevec.fidelity_pure final zero >= 1.0 -. Oracle.eps

let global_phase_invariant circ =
  let c = Gen.build circ in
  let gadget =
    Circuit.(empty (num_qubits c) |> z 0 |> x 0 |> z 0 |> x 0)
  in
  let phased = Circuit.append gadget c in
  let a = Sim.Engine.run c and b = Sim.Engine.run phased in
  Float.abs
    (Qstate.Statevec.fidelity_pure a.Sim.Engine.state b.Sim.Engine.state
    -. 1.0)
  <= Oracle.eps
  && Oracle.traces_match a.Sim.Engine.traces b.Sim.Engine.traces

let confidence_monotone ~n_in ~samples =
  let samples =
    List.sort_uniq compare (List.map (fun s -> max 1 (abs s)) samples)
  in
  let confidences =
    List.map
      (fun n_sample ->
        (Morphcore.Confidence.estimate ~n_in ~n_sample [||]).confidence)
      samples
  in
  let rec nondecreasing = function
    | a :: (b :: _ as rest) ->
        b -. a >= -.1e-12 && nondecreasing rest
    | _ -> true
  in
  nondecreasing confidences

let fused_traces_agree circ =
  let c = Gen.build circ in
  let fused = Transpile.Passes.fuse_1q c in
  Oracle.traces_match
    (Sim.Engine.tracepoint_states c)
    (Sim.Engine.tracepoint_states fused)

let with_pool domains f =
  let pool = Parallel.Pool.create ~domains () in
  Fun.protect ~finally:(fun () -> Parallel.Pool.shutdown pool) (fun () -> f pool)

let traces_domain_invariant ?noise ~trajectories ~domains circ =
  let c = Gen.build circ in
  let run d =
    with_pool d (fun pool ->
        let rng = Stats.Rng.make (Config.seed ()) in
        Sim.Engine.tracepoint_states ~pool ~rng ?noise ~trajectories c)
  in
  match List.map run domains with
  | [] -> true
  | reference :: rest ->
      List.for_all (Oracle.traces_match ~eps:0.0 reference) rest
