(** Differential oracles: run the same circuit through two independent
    implementations and demand agreement. Each oracle returns [true] on
    agreement so it can sit directly inside a QCheck property; on
    disagreement the QCheck shrinker (see {!Gen.shrink_circ}) minimizes the
    circuit before reporting.

    Oracle matrix (engine pair x circuit class):
    - {!statevec_vs_dm} — pure circuits: final state and tracepoint states.
    - {!statevec_vs_tableau} — Clifford circuits: full density matrix and
      per-qubit stabilizer [<Z>] expectations.
    - {!statevec_vs_sparse} — pure circuits from any basis input.
    - {!qasm_roundtrip} — any program: [parse (to_string c)] is [c].
    - {!transpile_preserves} — pure circuits: each peephole pass keeps the
      unitary (up to global phase). *)

val eps : float
(** Agreement threshold, [1e-9]. *)

(** [fidelity_pure_dm psi rho] is [<psi| rho |psi>] computed directly (no
    eigendecomposition, so accurate to ~1e-14 — safe against {!eps}). *)
val fidelity_pure_dm : Qstate.Statevec.t -> Qstate.Density.t -> float

(** [traces_match ?eps a b] — same tracepoint ids in the same order, with
    reduced density matrices within [eps] in Frobenius norm. *)
val traces_match :
  ?eps:float -> (int * Linalg.Cmat.t) list -> (int * Linalg.Cmat.t) list -> bool

(** [statevec_vs_dm c] — trajectory statevec vs exact density matrix on a
    measurement-free circuit: final-state fidelity [>= 1 - eps] and
    tracepoint agreement. *)
val statevec_vs_dm : Gen.circ -> bool

(** [statevec_vs_tableau c] — statevec vs CHP tableau on a Clifford
    circuit: exact density matrices within [eps] and [<Z_q>] agreement for
    every qubit. *)
val statevec_vs_tableau : Gen.circ -> bool

(** [statevec_vs_sparse ?input c] — dense vs sparse state vector from basis
    state [input] (default 0), compared up to global phase. *)
val statevec_vs_sparse : ?input:int -> Gen.circ -> bool

(** [qasm_roundtrip c] — [parse (to_string c)] reproduces the circuit
    structurally (gate names canonicalized, params within [eps] to absorb
    the printer's [%.12g]). *)
val qasm_roundtrip : Gen.circ -> bool

(** [transpile_preserves pass c] — the pass keeps the circuit unitary up to
    global phase ([Transpile.Equiv.unitaries_equal]). *)
val transpile_preserves : (Circuit.t -> Circuit.t) -> Gen.circ -> bool

(** All peephole passes by name — [transpile_preserves] is property-tested
    against each. *)
val all_passes : (string * (Circuit.t -> Circuit.t)) list

(** [certified_pass_sound c] — every certificate-emitting pass variant
    (the peephole passes, the optimize fixpoint, lightcone pruning,
    segment compilation with and without Clifford-direct routing, and the
    full [Morphcore.Verify.certify_transpile] pipeline) produces a
    certificate the independent checker accepts on the generated circuit.
    Runs on every circuit class, including near-Clifford and feedback
    programs. *)
val certified_pass_sound : Gen.circ -> bool

(** [certified_mutants_rejected c] — every applicable {!Mutate} mutant of
    the generated circuit is rejected by the checker. *)
val certified_mutants_rejected : Gen.circ -> bool

(** [batch_vs_engine c] — segment-compile the circuit and run it once
    through [Sim.Batch.run_seq] against [Sim.Engine.run] with identically
    seeded generators: classical bits must agree exactly, state and
    tracepoint snapshots within {!eps} (fused segments reorder the
    floating-point arithmetic by ~1e-15). *)
val batch_vs_engine : Gen.circ -> bool

(** [batch_vs_engine_packed c] — same oracle with [cutoff = 2] and
    [block_cutoff = 2], forcing the greedy-packing and [Direct]-gate
    compile paths that wide default cutoffs rarely exercise. *)
val batch_vs_engine_packed : Gen.circ -> bool

(** [batch_bit_identical ?pool c] — the batched path's determinism
    contract: packing 23 dense pseudorandom columns into one
    [Sim.Batch.run] is bit-for-bit identical, per column, to running each
    column alone through [Sim.Batch.run_seq] with the same per-column
    generator (classical bits, final amplitudes and trace matrices compared
    with [=], no tolerance). *)
val batch_bit_identical : ?pool:Parallel.Pool.t -> Gen.circ -> bool

(** [delay_tracepoint_fences plan] — a deliberately broken segmentation
    that moves every tracepoint fence past the operator that follows it.
    Used by the shrinker smoke test: {!batch_fence_respected} must fail on
    any circuit whose traced state changes across that operator. *)
val delay_tracepoint_fences : Sim.Batch.plan -> Sim.Batch.plan

(** [batch_fence_respected c] — {!batch_vs_engine} but with the plan's
    tracepoint fences deliberately delayed ({!delay_tracepoint_fences});
    holds only when the misplaced fences happen to be unobservable. *)
val batch_fence_respected : Gen.circ -> bool

(** [prune_preserves_traces c] — {!Transpile.Passes.prune_lightcone} keeps
    every tracepoint's reduced state within {!eps} on a pure circuit (the
    oracle is exact only there: pruned resets would shift the measurement
    generator stream of a single stochastic trajectory). *)
val prune_preserves_traces : Gen.circ -> bool

(** [prune_idempotent c] — pruning an already-pruned circuit removes
    nothing further. *)
val prune_idempotent : Gen.circ -> bool

(** [lightcone_restrict_matches c] — for every tracepoint of a pure
    circuit, simulating {!Analysis.Lightcone.restrict}'s cone subcircuit
    from [|0...0>] reproduces the tracepoint's reduced state within
    {!eps}. *)
val lightcone_restrict_matches : Gen.circ -> bool

(** [stabilizer_traces_agree c] — on circuits where
    [Sim.Engine.stabilizer_applicable] holds, the lightcone-restricted
    tableau traces agree with the state-vector engine within {!eps};
    vacuously true otherwise. *)
val stabilizer_traces_agree : Gen.circ -> bool

(** [sparse_vs_statevec c] — on circuits where
    [Sim.Engine.sparse_applicable] holds, the lightcone-restricted
    sparse-coordinate traces agree with the state-vector engine within
    {!eps}; vacuously true otherwise. *)
val sparse_vs_statevec : Gen.circ -> bool

(** [rank_vs_statevec c] — on circuits where [Sim.Engine.rank_applicable]
    holds, the sum-over-stabilizers traces agree with the state-vector
    engine within {!eps}; vacuously true otherwise. *)
val rank_vs_statevec : Gen.circ -> bool

(** [characterize_auto_unchanged ?pool ?kind c] — the pinned regression for
    stabilizer auto-routing: on any program where the routing does not fire
    (any [kind] other than [Basis], or a non-applicable circuit),
    [Characterize.run ~engine:`Auto] is bit-for-bit the [`Batched] path it
    was before the routing existed. *)
val characterize_auto_unchanged :
  ?pool:Parallel.Pool.t -> ?kind:Clifford.Sampling.kind -> Gen.circ -> bool

(** [characterize_stabilizer_route ?pool c] — on applicable circuits,
    [Basis]-kind characterization under [`Auto] (stabilizer-routed) matches
    [`Sequential]: identical cost meters, traces within {!eps}; vacuously
    true otherwise. *)
val characterize_stabilizer_route : ?pool:Parallel.Pool.t -> Gen.circ -> bool

(** [characterize_scale_route ?pool c] — with the dense-amplitude wall
    forced to zero via [Characterize.run ~wall:0.] (the global
    [Sim.Engine.dense_amp_wall] is never touched) so the scalable routes
    fire on small circuits: whenever [auto_route ~wall:0.] picks
    [`Sparse] or [`Rank], [Basis]-kind characterization under [`Auto]
    matches [`Sequential] (identical cost meters, traces within {!eps});
    vacuously true otherwise. *)
val characterize_scale_route : ?pool:Parallel.Pool.t -> Gen.circ -> bool

(** [cache_transparent ?pool ?dir c] — content-addressed caching is
    invisible: cold, warm and eviction-thrashed (512-byte budget) cached
    characterizations agree bit-for-bit, the cached path agrees with the
    uncached one within {!eps}, and — when [dir] names a cache
    directory — so does a persistence reload ([Cache.drop_memory], then
    re-read from disk). *)
val cache_transparent : ?pool:Parallel.Pool.t -> ?dir:string -> Gen.circ -> bool

(** [characterize_engines_agree ?pool c] — [Morphcore.Characterize.run]
    under [`Batched] vs [`Sequential] on the same seed: identical cost
    meters and input density matrices (bitwise), traces within {!eps}. *)
val characterize_engines_agree : ?pool:Parallel.Pool.t -> Gen.circ -> bool

(** [obs_transparent c] — the observability layer's zero-interference
    contract: every engine (gate-by-gate, tracepoint routing, segment
    batch, density matrix) produces bit-for-bit identical outputs with
    [Obs] disabled and enabled. Restores the caller's [Obs] setting. *)
val obs_transparent : Gen.circ -> bool

(** [server_obs_transparent c] — the observability contract extended
    through the daemon path: a full verify RPC driven through
    [Server.handle_line] (fresh state and cache each time) emits
    byte-identical protocol lines with [Obs] disabled and enabled, wall
    time ([seconds] fields) excepted. Restores the caller's [Obs]
    setting. *)
val server_obs_transparent : Gen.circ -> bool

(** [sequential_vs_fixed_verdict c] — [`Fixed] and [`Sequential] shot
    budgets of [Morphcore.Verify.check_counts] agree on both sides of an
    unambiguous dichotomy: the circuit's true output distribution (both
    hold) and a halved-probability corruption of it (both reject). The
    significance levels are 1e-6, so a statistical flake is a
    once-per-million-sweeps event. *)
val sequential_vs_fixed_verdict : Gen.circ -> bool

(** [pvalue_uniform_under_null c] — 80 Student-t p-values of N(0,1) data
    tested against their true mean are exact-KS-consistent with
    Uniform(0,1) at level 1e-4. The sketch only seeds the RNG stream. *)
val pvalue_uniform_under_null : Gen.circ -> bool
