(* Bench-regression gate over the machine-readable results files — see
   the mli for the statistical contract. *)

(* ------------------------- tiny JSON reader -------------------------- *)

(* The tree has no JSON dependency; the writer ([bench/util.ml]) emits a
   small, regular subset, but the reader below is a complete-enough
   parser (escapes, exponents, nesting, null) that hand-edited or
   externally produced results files also load. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Json_error of string

let parse_json src =
  let n = String.length src in
  let pos = ref 0 in
  let fail msg = raise (Json_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub src !pos l = word then (
      pos := !pos + l;
      value)
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' as c) | Some ('\\' as c) | Some ('/' as c) ->
              Buffer.add_char buf c;
              advance ();
              go ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
          | Some 'u' ->
              (* non-ASCII never appears in record names; map the BMP
                 escape to '?' rather than carrying a UTF-8 encoder *)
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail "bad \\u escape"
              done;
              Buffer.add_char buf '?';
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let consume () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') ->
          advance ();
          true
      | _ -> false
    in
    while consume () do () done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub src start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' -> parse_obj ()
    | Some '[' -> parse_arr ()
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | _ -> fail "expected a JSON value"
  and parse_obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then (
      advance ();
      Obj [])
    else
      let rec members acc =
        skip_ws ();
        let key = parse_string () in
        skip_ws ();
        expect ':';
        let v = parse_value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            members ((key, v) :: acc)
        | Some '}' ->
            advance ();
            Obj (List.rev ((key, v) :: acc))
        | _ -> fail "expected ',' or '}'"
      in
      members []
  and parse_arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then (
      advance ();
      Arr [])
    else
      let rec elems acc =
        let v = parse_value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            elems (v :: acc)
        | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
        | _ -> fail "expected ',' or ']'"
      in
      elems []
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing content";
  v

(* --------------------------- schema binding --------------------------- *)

type row = {
  name : string;
  seconds : float;
  samples : float array;
  metrics : (string * int) list;
}

type run = { schema : string; rows : row list }

let field key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let num_exn what = function
  | Num f -> f
  | _ -> raise (Json_error (what ^ ": expected a number"))

let row_of_json j =
  let name =
    match field "name" j with
    | Some (Str s) -> s
    | _ -> raise (Json_error "result row without a \"name\"")
  in
  let seconds =
    match field "seconds" j with
    | Some v -> num_exn (name ^ ".seconds") v
    | None -> raise (Json_error (name ^ ": missing \"seconds\""))
  in
  let samples =
    match field "samples" j with
    | Some (Arr l) -> Array.of_list (List.map (num_exn (name ^ ".samples")) l)
    | _ -> [||]
  in
  let metrics =
    match field "metrics" j with
    | Some (Obj kvs) ->
        List.map
          (fun (k, v) -> (k, int_of_float (num_exn (name ^ ".metrics") v)))
          kvs
    | _ -> []
  in
  { name; seconds; samples; metrics }

let parse_run src =
  match parse_json src with
  | exception Json_error msg -> Error msg
  | j -> (
      let schema =
        match field "schema" j with Some (Str s) -> s | _ -> ""
      in
      if schema <> "morphqpv-bench-v2" then
        Error (Printf.sprintf "unsupported results schema %S" schema)
      else
        match field "results" j with
        | Some (Arr rows) -> (
            try Ok { schema; rows = List.map row_of_json rows }
            with Json_error msg -> Error msg)
        | _ -> Error "missing \"results\" array")

let load path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let len = in_channel_length ic in
      let src = really_input_string ic len in
      close_in ic;
      Result.map_error
        (fun e -> Printf.sprintf "%s: %s" path e)
        (parse_run src)

(* ----------------------------- comparison ----------------------------- *)

type finding = {
  record : string;
  what : string;
  statistic : float;
  pvalue : float option;
}

type report = {
  regressions : finding list;
  skipped : string list;
  compared : int;
}

let median a =
  let s = Array.copy a in
  Array.sort compare s;
  s.(Array.length s / 2)

let variance a = Stats.Describe.variance a

(* one-sided Welch t on log-times, current vs previous: log-transforming
   makes the multiplicative timing noise of shared runners roughly
   additive, so the t-test's normality assumption is defensible even at
   3 repetitions *)
let timing_finding ~alpha ~min_ratio ~(prev : row) ~(cur : row) =
  let logs a = Array.map (fun t -> log (Float.max t 1e-9)) a in
  let lp = logs prev.samples and lc = logs cur.samples in
  let ratio = median cur.samples /. Float.max (median prev.samples) 1e-9 in
  if ratio <= min_ratio then None
  else if variance lp <= 0. && variance lc <= 0. then
    (* deterministic (or injected) timings: the ratio alone is the
       evidence, and it already exceeds the practical bound *)
    Some
      {
        record = cur.name;
        what =
          Printf.sprintf
            "slowdown %.2fx (%.6fs -> %.6fs, zero-variance samples)" ratio
            prev.seconds cur.seconds;
        statistic = Float.infinity;
        pvalue = Some 0.;
      }
  else
    let t = Stats.Tests.t_two_sample ~alternative:Stats.Tests.Greater lc lp in
    if t.Stats.Tests.pvalue < alpha then
      Some
        {
          record = cur.name;
          what =
            Printf.sprintf "slowdown %.2fx (%.6fs -> %.6fs)" ratio prev.seconds
              cur.seconds;
          statistic = t.Stats.Tests.statistic;
          pvalue = Some t.Stats.Tests.pvalue;
        }
    else None

(* counters are deterministic under the pinned bench seeds, so any drift
   on a key both runs carry is a real behaviour change (more shots, more
   gates, fewer early stops); keys only one run carries are ignored —
   counters come and go legitimately as PRs add instrumentation *)
let counter_findings ~(prev : row) ~(cur : row) =
  List.filter_map
    (fun (k, pv) ->
      match List.assoc_opt k cur.metrics with
      | Some cv when cv <> pv ->
          Some
            {
              record = cur.name;
              what = Printf.sprintf "counter %s drifted %d -> %d" k pv cv;
              statistic = float_of_int (cv - pv);
              pvalue = None;
            }
      | _ -> None)
    prev.metrics

let compare_runs ?(alpha = 0.01) ?(min_ratio = 1.3) ~prev cur =
  let regressions = ref [] and skipped = ref [] and compared = ref 0 in
  List.iter
    (fun (c : row) ->
      match List.find_opt (fun (p : row) -> p.name = c.name) prev.rows with
      | None -> skipped := (c.name ^ " (new record)") :: !skipped
      | Some p ->
          (match counter_findings ~prev:p ~cur:c with
          | [] -> ()
          | fs -> regressions := fs @ !regressions);
          if Array.length p.samples < 2 || Array.length c.samples < 2 then
            skipped := (c.name ^ " (< 2 timing samples)") :: !skipped
          else begin
            incr compared;
            match timing_finding ~alpha ~min_ratio ~prev:p ~cur:c with
            | Some f -> regressions := f :: !regressions
            | None -> ()
          end)
    cur.rows;
  {
    regressions = List.rev !regressions;
    skipped = List.rev !skipped;
    compared = !compared;
  }

let pp_report ppf r =
  List.iter
    (fun f ->
      Format.fprintf ppf "REGRESSION %s: %s (statistic %.4g%s)@." f.record
        f.what f.statistic
        (match f.pvalue with
        | Some p -> Printf.sprintf ", p = %.4g" p
        | None -> ", exact"))
    r.regressions;
  List.iter (fun s -> Format.fprintf ppf "skipped %s@." s) r.skipped;
  Format.fprintf ppf "bench check: %d timing row(s) compared, %d regression(s)@."
    r.compared
    (List.length r.regressions)
