(** Sized QCheck generators (with shrinking) for gates, circuits and
    programs.

    Random circuits are represented as a flat list of {!spec} values — an
    instruction sketch whose qubit indices are free integers. {!build} maps
    the sketch onto a concrete register (indices wrap modulo the qubit
    count, control/target collisions are repaired deterministically), so
    every sketch denotes a *valid* circuit and the QCheck shrinker can
    remove instructions, lower qubit indices, zero angles and drop whole
    wires without ever producing an ill-formed candidate. That is what
    makes shrunk counterexamples minimal AND runnable.

    Three circuit classes:
    - {!pure} — unitary-only (plus tracepoints/barriers): every engine pair
      can be compared exactly.
    - {!clifford} — gates the stabilizer tableau dispatches ([h x y z s sdg
      cx cz swap]), measurement-free.
    - {!program} — full programs: tracepoints, mid-circuit measurement,
      reset, classical feedback and barriers. *)

(** One instruction sketch. Qubit fields are arbitrary non-negative ints,
    folded onto the register by {!build}. *)
type spec =
  | One of string * float list * int  (** 1q gate: name, params, qubit *)
  | Ctl of string * float list * int * int  (** controlled 1q: control, target *)
  | Swap of int * int
  | Toffoli of int * int * int
  | Trace of int list  (** tracepoint; ids are assigned 1,2,... by build *)
  | Meas of int * int  (** qubit, classical bit (mod 2) *)
  | Reset of int
  | Feedback of int * int * string * float list * int
      (** clbit read, value, gate name, params, target *)
  | Barrier of int list

type circ = { qubits : int; specs : spec list }

(** [build c] realizes the sketch as a circuit (2 classical bits when any
    measurement/feedback is present, 0 otherwise). Total function: every
    generated or shrunk [circ] builds. *)
val build : circ -> Circuit.t

(** [print_circ c] renders the sketch as mini-QASM plus the current repro
    command — this is what QCheck prints for a failing case. *)
val print_circ : circ -> string

(* Raw generators (for [QCheck.Gen.generate] loops, e.g. the fuzz bench) *)
val gen_pure : ?min_qubits:int -> ?max_qubits:int -> unit -> circ QCheck.Gen.t
val gen_clifford : ?min_qubits:int -> ?max_qubits:int -> unit -> circ QCheck.Gen.t

(** Clifford circuits with occasional uncontrolled non-Clifford 1q gates
    ([t tdg sx rx ry rz p]) — the shape the stabilizer-rank engine
    decomposes. *)
val gen_near_clifford :
  ?min_qubits:int -> ?max_qubits:int -> unit -> circ QCheck.Gen.t

val gen_program : ?min_qubits:int -> ?max_qubits:int -> unit -> circ QCheck.Gen.t

(** The structural shrinker: drops/simplifies instructions (a controlled or
    feedback gate shrinks to its bare gate, a Toffoli to a CX), lowers
    qubit indices toward 0, zeroes rotation angles, and removes wires. *)
val shrink_circ : circ QCheck.Shrink.t

(* Arbitraries = generator + shrinker + printer *)
val pure : ?min_qubits:int -> ?max_qubits:int -> unit -> circ QCheck.arbitrary
val clifford : ?min_qubits:int -> ?max_qubits:int -> unit -> circ QCheck.arbitrary
val near_clifford : ?min_qubits:int -> ?max_qubits:int -> unit -> circ QCheck.arbitrary
val program : ?min_qubits:int -> ?max_qubits:int -> unit -> circ QCheck.arbitrary

(** Depolarizing+readout noise models, shrinking toward the ideal model. *)
val noise : Sim.Noise.t QCheck.arbitrary
