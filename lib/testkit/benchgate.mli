(** Bench-regression gate: compare the last two [BENCH_results.json]
    runs and flag statistically significant slowdowns and counter
    drifts (the [bench check] subcommand / [make bench-check]).

    Timing rows are compared with a one-sided Welch t-test on
    log-transformed per-repetition wall times (see the [samples] field
    written by [bench/util.ml]); a row regresses only when the test is
    significant at [alpha] AND the median ratio current/previous
    exceeds [min_ratio] — the practical-significance guard that keeps
    microsecond jitter from failing CI. Rows with fewer than two
    samples on either side are skipped (and listed as such). Counter
    deltas are deterministic under the pinned bench seeds, so they are
    compared exactly on the keys both runs share. *)

(** One row of a results file. *)
type row = {
  name : string;
  seconds : float;
  samples : float array;  (** empty when the run predates the field *)
  metrics : (string * int) list;
}

type run = { schema : string; rows : row list }

(** [parse_run src] reads a [morphqpv-bench-v2] results document from a
    string. The reader is a small hand-rolled JSON parser (no JSON
    dependency in the tree) covering the subset the writer emits plus
    standard escapes, exponents and [null]. *)
val parse_run : string -> (run, string) result

(** [load path] is {!parse_run} on the file's contents. *)
val load : string -> (run, string) result

(** One flagged regression, carrying everything needed to reproduce the
    verdict: the record name, what moved, the test statistic and its
    p-value (absent for exact counter comparisons). *)
type finding = {
  record : string;
  what : string;  (** human-readable: which quantity drifted and how *)
  statistic : float;
  pvalue : float option;
}

type report = {
  regressions : finding list;
  skipped : string list;
      (** rows not timing-tested: missing from one run, or < 2 samples *)
  compared : int;  (** rows subjected to the timing test *)
}

(** [compare_runs ?alpha ?min_ratio ~prev cur] — defaults
    [alpha = 0.01] (per-row; the gate runs tens of rows per push, so a
    loose level would trip on noise weekly) and [min_ratio = 1.3]. *)
val compare_runs :
  ?alpha:float -> ?min_ratio:float -> prev:run -> run -> report

val pp_report : Format.formatter -> report -> unit
