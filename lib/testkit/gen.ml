type spec =
  | One of string * float list * int
  | Ctl of string * float list * int * int
  | Swap of int * int
  | Toffoli of int * int * int
  | Trace of int list
  | Meas of int * int
  | Reset of int
  | Feedback of int * int * string * float list * int
  | Barrier of int list

type circ = { qubits : int; specs : spec list }

(* ------------------------------------------------------------------ *)
(* Realization: any sketch denotes a valid circuit.                    *)
(* ------------------------------------------------------------------ *)

let wire n q = abs q mod n

(* Pick a wire distinct from those in [avoid], starting the scan at the
   sketch's own index so shrinking an index actually moves the wire. *)
let distinct n avoid q =
  let q = wire n q in
  let rec scan k = if List.mem k avoid then scan ((k + 1) mod n) else k in
  if List.mem q avoid then scan q else q

let dedup_wires n qs =
  let qs = List.map (wire n) qs in
  let qs = List.sort_uniq compare qs in
  if qs = [] then [ 0 ] else qs

let has_classical specs =
  List.exists (function Meas _ | Feedback _ -> true | _ -> false) specs

let build { qubits; specs } =
  let n = max 1 qubits in
  let clbits = if has_classical specs then 2 else 0 in
  let trace_id = ref 0 in
  let add_spec c spec =
    match spec with
    | One (name, params, q) -> Circuit.gate ~params name [ wire n q ] c
    | Ctl (name, params, ctl, tgt) ->
        let tgt = wire n tgt in
        if n = 1 then Circuit.gate ~params name [ tgt ] c
        else
          let ctl = distinct n [ tgt ] ctl in
          Circuit.gate ~params ~controls:[ ctl ] name [ tgt ] c
    | Swap (a, b) ->
        if n = 1 then c
        else
          let a = wire n a in
          let b = distinct n [ a ] b in
          Circuit.swap a b c
    | Toffoli (c1, c2, t) ->
        let t = wire n t in
        if n = 1 then Circuit.x t c
        else
          let c1 = distinct n [ t ] c1 in
          if n = 2 then Circuit.cx c1 t c
          else
            let c2 = distinct n [ t; c1 ] c2 in
            Circuit.ccx c1 c2 t c
    | Trace qs ->
        incr trace_id;
        Circuit.tracepoint !trace_id (dedup_wires n qs) c
    | Meas (q, cb) -> Circuit.measure (wire n q) (abs cb mod 2) c
    | Reset q -> Circuit.reset (wire n q) c
    | Feedback (cb, v, name, params, tgt) ->
        let g = Circuit.Gate.make ~params name [ wire n tgt ] in
        Circuit.if_gate [ abs cb mod 2 ] (abs v mod 2) g c
    | Barrier qs -> Circuit.barrier (dedup_wires n qs) c
  in
  List.fold_left add_spec (Circuit.empty ~clbits n) specs

let print_circ c =
  Printf.sprintf "qubits=%d specs=%d\n%s-- replay: %s <test name>\n" c.qubits
    (List.length c.specs)
    (Qasm.to_string (build c))
    (Config.repro ~exe:"test/test_differential.exe --")

(* ------------------------------------------------------------------ *)
(* Gate pools.                                                         *)
(* ------------------------------------------------------------------ *)

(* "sw" has no inverse and "u2x2" is fuser-internal: both excluded. *)
let fixed_1q = [ "h"; "x"; "y"; "z"; "s"; "sdg"; "t"; "tdg"; "sx"; "id" ]
let rot_1q = [ "rx"; "ry"; "rz"; "p" ]
let clifford_1q = [ "h"; "x"; "y"; "z"; "s"; "sdg" ]

open QCheck.Gen

let angle = float_range (-4.0) 4.0

let gen_gate_1q =
  frequency
    [
      (3, oneofl fixed_1q >|= fun name -> (name, []));
      ( 2,
        oneofl rot_1q >>= fun name ->
        angle >|= fun a -> (name, [ a ]) );
      ( 1,
        map3 (fun a b c -> ("u3", [ a; b; c ])) angle angle angle );
    ]

let gen_clifford_1q = oneofl clifford_1q >|= fun name -> (name, [])
let gen_qubit = int_bound 7

let gen_spec_pure =
  frequency
    [
      ( 6,
        gen_gate_1q >>= fun (name, ps) ->
        gen_qubit >|= fun q -> One (name, ps, q) );
      ( 3,
        gen_gate_1q >>= fun (name, ps) ->
        map2 (fun c t -> Ctl (name, ps, c, t)) gen_qubit gen_qubit );
      (1, map2 (fun a b -> Swap (a, b)) gen_qubit gen_qubit);
      (1, map3 (fun a b c -> Toffoli (a, b, c)) gen_qubit gen_qubit gen_qubit);
      (1, list_size (int_range 1 3) gen_qubit >|= fun qs -> Trace qs);
      (1, list_size (int_range 1 3) gen_qubit >|= fun qs -> Barrier qs);
    ]

let gen_spec_clifford =
  frequency
    [
      ( 6,
        gen_clifford_1q >>= fun (name, ps) ->
        gen_qubit >|= fun q -> One (name, ps, q) );
      ( 3,
        oneofl [ "x"; "z" ] >>= fun name ->
        map2 (fun c t -> Ctl (name, [], c, t)) gen_qubit gen_qubit );
      (1, map2 (fun a b -> Swap (a, b)) gen_qubit gen_qubit);
      (1, list_size (int_range 1 3) gen_qubit >|= fun qs -> Trace qs);
    ]

(* near-Clifford: the Clifford pool plus occasional uncontrolled
   non-Clifford 1q gates — exactly the shape the sum-over-stabilizers
   engine decomposes (each non-Clifford gate splits into two weighted
   Pauli branches) *)
let gen_spec_near_clifford =
  frequency
    [
      (8, gen_spec_clifford);
      ( 2,
        frequency
          [
            (2, oneofl [ "t"; "tdg"; "sx" ] >|= fun name -> (name, []));
            ( 2,
              oneofl [ "rx"; "ry"; "rz"; "p" ] >>= fun name ->
              angle >|= fun a -> (name, [ a ]) );
          ]
        >>= fun (name, ps) ->
        gen_qubit >|= fun q -> One (name, ps, q) );
    ]

let gen_spec_program =
  frequency
    [
      (8, gen_spec_pure);
      (2, map2 (fun q cb -> Meas (q, cb)) gen_qubit (int_bound 1));
      (1, gen_qubit >|= fun q -> Reset q);
      ( 2,
        gen_gate_1q >>= fun (name, ps) ->
        map3
          (fun cb v t -> Feedback (cb, v, name, ps, t))
          (int_bound 1) (int_bound 1) gen_qubit );
    ]

let gen_circ ?(min_qubits = 1) ?(max_qubits = 4) gen_spec =
  int_range min_qubits max_qubits >>= fun qubits ->
  list_size (int_range 1 18) gen_spec >|= fun specs -> { qubits; specs }

let gen_pure ?min_qubits ?max_qubits () =
  gen_circ ?min_qubits ?max_qubits gen_spec_pure

let gen_clifford ?min_qubits ?max_qubits () =
  gen_circ ?min_qubits ?max_qubits gen_spec_clifford

let gen_near_clifford ?min_qubits ?max_qubits () =
  gen_circ ?min_qubits ?max_qubits gen_spec_near_clifford

let gen_program ?min_qubits ?max_qubits () =
  gen_circ ?min_qubits ?max_qubits gen_spec_program

(* ------------------------------------------------------------------ *)
(* Shrinking.                                                          *)
(* ------------------------------------------------------------------ *)

open QCheck

(* Zero one parameter at a time (keeps the list length, which the gate
   constructor validates). *)
let shrink_params ps yield =
  List.iteri
    (fun i x ->
      if x <> 0.0 then
        yield (List.mapi (fun j y -> if i = j then 0.0 else y) ps))
    ps

let shrink_spec spec yield =
  match spec with
  | One (name, ps, q) ->
      Shrink.int q (fun q -> yield (One (name, ps, q)));
      shrink_params ps (fun ps -> yield (One (name, ps, q)))
  | Ctl (name, ps, c, t) ->
      yield (One (name, ps, t));
      Shrink.int c (fun c -> yield (Ctl (name, ps, c, t)));
      Shrink.int t (fun t -> yield (Ctl (name, ps, c, t)));
      shrink_params ps (fun ps -> yield (Ctl (name, ps, c, t)))
  | Swap (a, b) ->
      Shrink.int a (fun a -> yield (Swap (a, b)));
      Shrink.int b (fun b -> yield (Swap (a, b)))
  | Toffoli (a, b, t) ->
      yield (Ctl ("x", [], a, t));
      Shrink.int a (fun a -> yield (Toffoli (a, b, t)));
      Shrink.int b (fun b -> yield (Toffoli (a, b, t)));
      Shrink.int t (fun t -> yield (Toffoli (a, b, t)))
  | Trace qs -> Shrink.list ~shrink:Shrink.int qs (fun qs -> yield (Trace qs))
  | Meas (q, cb) ->
      Shrink.int q (fun q -> yield (Meas (q, cb)));
      Shrink.int cb (fun cb -> yield (Meas (q, cb)))
  | Reset q -> Shrink.int q (fun q -> yield (Reset q))
  | Feedback (cb, v, name, ps, t) ->
      yield (One (name, ps, t));
      Shrink.int t (fun t -> yield (Feedback (cb, v, name, ps, t)));
      shrink_params ps (fun ps -> yield (Feedback (cb, v, name, ps, t)))
  | Barrier qs ->
      Shrink.list ~shrink:Shrink.int qs (fun qs -> yield (Barrier qs))

let shrink_circ c yield =
  if c.qubits > 1 then yield { c with qubits = c.qubits - 1 };
  Shrink.list ~shrink:shrink_spec c.specs (fun specs -> yield { c with specs })

let arbitrary gen =
  QCheck.make ~print:print_circ ~shrink:shrink_circ gen

let pure ?min_qubits ?max_qubits () =
  arbitrary (gen_pure ?min_qubits ?max_qubits ())

let clifford ?min_qubits ?max_qubits () =
  arbitrary (gen_clifford ?min_qubits ?max_qubits ())

let near_clifford ?min_qubits ?max_qubits () =
  arbitrary (gen_near_clifford ?min_qubits ?max_qubits ())

let program ?min_qubits ?max_qubits () =
  arbitrary (gen_program ?min_qubits ?max_qubits ())

let noise =
  let gen =
    let prob hi = Gen.float_range 0.0 hi in
    Gen.map3
      (fun p1 p2 readout -> Sim.Noise.make ~p1 ~p2 ~readout ())
      (prob 0.05) (prob 0.1) (prob 0.1)
  in
  let print (m : Sim.Noise.t) =
    Printf.sprintf "noise{p1=%g; p2=%g; readout=%g}" m.p1 m.p2 m.readout
  in
  let shrink (m : Sim.Noise.t) yield =
    if m.p1 <> 0.0 then yield { m with Sim.Noise.p1 = 0.0 };
    if m.p2 <> 0.0 then yield { m with Sim.Noise.p2 = 0.0 };
    if m.readout <> 0.0 then yield { m with Sim.Noise.readout = 0.0 }
  in
  QCheck.make ~print ~shrink gen
