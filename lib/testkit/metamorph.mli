(** Metamorphic properties derived from the paper's isomorphism lemmas:
    transformations with a known effect on the program whose outcome must
    therefore be invariant (or monotone). Each returns [true] on success,
    for direct use inside QCheck properties. *)

(** [adjoint_cancels c] — running the gates of [c] followed by their
    reversed inverses returns the register to [|0...0>] (up to global
    phase; [sx]'s inverse is [rx(-pi/2)], which differs from [sx]^dagger by
    a phase). *)
val adjoint_cancels : Gen.circ -> bool

(** [global_phase_invariant c] — prefixing the global-phase gadget
    [z; x; z; x = -I] changes neither the final-state fidelity nor any
    tracepoint density matrix. *)
val global_phase_invariant : Gen.circ -> bool

(** [confidence_monotone ~n_in ~samples] — Theorem 3's confidence is
    nondecreasing in the sample count (the theoretical mean accuracy
    [min 1 (n_sample / 2^(n_in+1))] grows with [n_sample]). [samples] are
    made positive and sorted internally. *)
val confidence_monotone : n_in:int -> samples:int list -> bool

(** [fused_traces_agree c] — tracepoint states are invariant under
    [Transpile.Passes.fuse_1q] (fusion never crosses a tracepoint). *)
val fused_traces_agree : Gen.circ -> bool

(** [traces_domain_invariant ?noise ~trajectories ~domains c] — trajectory-
    averaged tracepoint states are bit-identical for every domain count in
    [domains] under a fixed seed (the deterministic-parallelism contract).
    Runs the full program class: measurements, feedback and noise exercise
    the multi-trajectory path. *)
val traces_domain_invariant :
  ?noise:Sim.Noise.t -> trajectories:int -> domains:int list -> Gen.circ -> bool
