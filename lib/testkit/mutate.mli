(** Deliberately broken certified passes — the independent checker's own
    soundness test. Each constructor runs a genuine certificate-emitting
    pass on the circuit and then doctors the result the way a buggy
    rewrite could; {!Transpile.Certify.check} must reject every mutant
    ({!rejected}), otherwise the checker has a hole. Constructors return
    [None] when the circuit gives the underlying pass nothing to mutate
    (e.g. no fusable pair, no block in the plan). *)

type mutant = {
  mutant_name : string;
  before : Circuit.t;
  cert : Transpile.Certify.certificate;
  target : Transpile.Certify.target;
}

(** A [fuse_1q] run whose replacement gate has its leading parameter
    nudged by 0.05 — the [Local_equiv] product no longer matches. *)
val wrong_replacement : Circuit.t -> mutant option

(** A [prune_lightcone] run that additionally deletes a kept gate, with a
    forged [Outside_cone] obligation — the checker re-derives the union
    lightcone and finds the instruction inside it. *)
val over_pruned : Circuit.t -> mutant option

(** A gate swapped with the measurement that reads its wire, certified as
    a harmless permutation — caught by order preservation on the shared
    wire. *)
val reordered_measurement : Circuit.t -> mutant option

(** A segment compile whose first fused block has one unitary entry
    corrupted by 0.05 — the plan no longer implements its segment. *)
val wrong_block : Circuit.t -> mutant option

(** Every applicable mutant of the circuit. *)
val mutants : Circuit.t -> mutant list

(** [rejected m] — the checker refuses the mutant (the property every
    mutant must satisfy). *)
val rejected : mutant -> bool

(** The checker's structured diagnostics for the mutant (empty iff the
    mutant was — wrongly — accepted). *)
val failures : mutant -> Transpile.Certify.failure list
