(* Deliberately broken certified passes: each mutant doctors a genuine
   pass result — output, certificate, or both — in a way a buggy rewrite
   could, and the independent checker must reject every one. This is the
   checker's own soundness test (accepting any mutant means a hole). *)

type mutant = {
  mutant_name : string;
  before : Circuit.t;
  cert : Transpile.Certify.certificate;
  target : Transpile.Certify.target;
}

let rejected m =
  let failed = function Ok _ -> false | Error _ -> true in
  match m.target with
  | Transpile.Certify.Circ after ->
      failed (Transpile.Certify.check m.cert m.before after)
  | Transpile.Certify.Plan plan ->
      failed (Transpile.Certify.check_plan m.cert m.before plan)

let failures m =
  let fails = function Ok _ -> [] | Error fs -> fs in
  match m.target with
  | Transpile.Certify.Circ after ->
      fails (Transpile.Certify.check m.cert m.before after)
  | Transpile.Certify.Plan plan ->
      fails (Transpile.Certify.check_plan m.cert m.before plan)

let replace_instr k instr' c =
  let _, out =
    List.fold_left
      (fun (i, acc) instr ->
        (i + 1, Circuit.add (if i = k then instr' else instr) acc))
      (0, Circuit.empty ~clbits:(Circuit.num_clbits c) (Circuit.num_qubits c))
      (Circuit.instrs c)
  in
  out

(* a fused/merged replacement gate with its leading parameter nudged: the
   recorded Local_equiv product no longer matches *)
let wrong_replacement c =
  let c', step = Transpile.Passes.fuse_1q_cert c in
  let target_k =
    List.find_map
      (function
        | Transpile.Certify.Local_equiv { after = [ k ]; _ } -> Some k
        | _ -> None)
      step.Transpile.Certify.obligations
  in
  match target_k with
  | None -> None
  | Some k -> (
      match List.nth (Circuit.instrs c') k with
      | Circuit.Instr.Gate g ->
          let params =
            match g.Circuit.Gate.params with
            | p :: rest -> (p +. 0.05) :: rest
            | [] -> [ 0.05 ]
          in
          let g' =
            Circuit.Gate.make ~params ~controls:g.Circuit.Gate.controls
              g.Circuit.Gate.name g.Circuit.Gate.targets
          in
          let doctored = replace_instr k (Circuit.Instr.Gate g') c' in
          Some
            {
              mutant_name = "wrong_replacement";
              before = c;
              cert =
                [
                  {
                    step with
                    Transpile.Certify.output = Transpile.Certify.Circ doctored;
                  };
                ];
              target = Transpile.Certify.Circ doctored;
            }
      | _ -> None)

(* an instruction inside the lightcone deleted anyway, with a forged
   Outside_cone obligation: the checker re-derives the cone and objects *)
let over_pruned c =
  let c', step = Transpile.Passes.prune_lightcone_cert c in
  let victim =
    List.find_map
      (fun (i, k) ->
        match List.nth (Circuit.instrs c') k with
        | Circuit.Instr.Gate _ -> Some (i, k)
        | _ -> None)
      step.Transpile.Certify.mapped
  in
  match victim with
  | None -> None
  | Some (i0, k0) ->
      let _, out =
        List.fold_left
          (fun (k, acc) instr ->
            (k + 1, if k = k0 then acc else Circuit.add instr acc))
          ( 0,
            Circuit.empty ~clbits:(Circuit.num_clbits c') (Circuit.num_qubits c')
          )
          (Circuit.instrs c')
      in
      let mapped =
        List.filter_map
          (fun (i, k) ->
            if k = k0 then None else Some (i, (if k > k0 then k - 1 else k)))
          step.Transpile.Certify.mapped
      in
      Some
        {
          mutant_name = "over_pruned";
          before = c;
          cert =
            [
              {
                step with
                Transpile.Certify.obligations =
                  Transpile.Certify.Outside_cone { index = i0 }
                  :: step.Transpile.Certify.obligations;
                mapped;
                output = Transpile.Certify.Circ out;
              };
            ];
          target = Transpile.Certify.Circ out;
        }

(* a gate commuted past the measurement that reads its wire, certified as
   a harmless permutation: the per-wire order projection objects *)
let reordered_measurement c =
  let instrs = Array.of_list (Circuit.instrs c) in
  let n = Array.length instrs in
  let site = ref None in
  for i = 0 to n - 2 do
    if !site = None then
      match (instrs.(i), instrs.(i + 1)) with
      | Circuit.Instr.Gate g, Circuit.Instr.Measure { qubit; _ }
        when List.mem qubit (Circuit.Gate.qubits g) ->
          site := Some i
      | _ -> ()
  done;
  match !site with
  | None -> None
  | Some i0 ->
      let out =
        Array.to_list
          (Array.mapi
             (fun i instr ->
               if i = i0 then instrs.(i0 + 1)
               else if i = i0 + 1 then instrs.(i0)
               else instr)
             instrs)
        |> List.fold_left
             (fun acc instr -> Circuit.add instr acc)
             (Circuit.empty ~clbits:(Circuit.num_clbits c)
                (Circuit.num_qubits c))
      in
      let mapped =
        List.init n (fun i ->
            if i = i0 then (i0, i0 + 1)
            else if i = i0 + 1 then (i0 + 1, i0)
            else (i, i))
      in
      Some
        {
          mutant_name = "reordered_measurement";
          before = c;
          cert =
            [
              {
                Transpile.Certify.pass = "mutant_reorder";
                obligations = [];
                mapped;
                output = Transpile.Certify.Circ out;
              };
            ];
          target = Transpile.Certify.Circ out;
        }

(* a fused block's unitary corrupted in one entry: the plan no longer
   implements the segment it claims to *)
let wrong_block c =
  let plan, step = Transpile.Segments.compile_cert c in
  let hit = ref false in
  let items =
    List.map
      (function
        | Sim.Batch.Block b when not !hit ->
            hit := true;
            let u = Linalg.Cmat.copy b.Sim.Batch.u in
            Linalg.Cmat.set u 0 0
              (Linalg.Cx.add (Linalg.Cmat.get u 0 0) (Linalg.Cx.make 0.05 0.));
            Sim.Batch.Block { b with Sim.Batch.u }
        | item -> item)
      plan.Sim.Batch.items
  in
  if not !hit then None
  else
    let plan' = { plan with Sim.Batch.items } in
    Some
      {
        mutant_name = "wrong_block";
        before = c;
        cert =
          [
            {
              step with
              Transpile.Certify.output = Transpile.Certify.Plan plan';
            };
          ];
        target = Transpile.Certify.Plan plan';
      }

let mutants c =
  List.filter_map
    (fun f -> f c)
    [ wrong_replacement; over_pruned; reordered_measurement; wrong_block ]
