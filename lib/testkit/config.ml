let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v > 0 -> v
      | _ -> default)
  | None -> default

let count ?(default = 100) () = env_int "QCHECK_COUNT" default
let seed ?(default = 4231) () = env_int "MORPHQPV_SEED" default
let rand () = Random.State.make [| seed () |]

let repro ~exe =
  Printf.sprintf "MORPHQPV_SEED=%d QCHECK_COUNT=%d dune exec %s" (seed ())
    (count ()) exe

let announce ~exe =
  Printf.printf "testkit: seed=%d count=%d  repro: %s\n%!" (seed ()) (count ())
    (repro ~exe)
