let eps = 1e-9

let fidelity_pure_dm psi rho =
  let v = Qstate.Statevec.to_cvec psi in
  let rv = Linalg.Cmat.apply (Qstate.Density.mat rho) v in
  Linalg.Cx.re (Linalg.Cvec.dot v rv)

let traces_match ?(eps = eps) a b =
  List.length a = List.length b
  && List.for_all2
       (fun (id_a, m_a) (id_b, m_b) ->
         id_a = id_b && Linalg.Cmat.frob_norm (Linalg.Cmat.sub m_a m_b) <= eps)
       a b

let statevec_vs_dm circ =
  let c = Gen.build circ in
  let sv = Sim.Engine.run c in
  let dm = Sim.Dm_engine.run c in
  fidelity_pure_dm sv.Sim.Engine.state (Sim.Dm_engine.final_density dm)
  >= 1.0 -. eps
  && traces_match sv.Sim.Engine.traces dm.Sim.Dm_engine.traces

let statevec_vs_tableau circ =
  let c = Gen.build circ in
  let tab = Stabilizer.Tableau.run c in
  let sv = (Sim.Engine.run c).Sim.Engine.state in
  let rho_tab = Stabilizer.Tableau.density tab in
  let rho_sv = Qstate.Statevec.density sv in
  Linalg.Cmat.frob_norm (Linalg.Cmat.sub rho_tab rho_sv) <= eps
  && List.for_all
       (fun q ->
         let ez_tab = float_of_int (Stabilizer.Tableau.expectation_z tab q) in
         let ez_sv = 1.0 -. (2.0 *. Qstate.Statevec.prob1 sv q) in
         Float.abs (ez_tab -. ez_sv) <= eps)
       (List.init (Circuit.num_qubits c) Fun.id)

let statevec_vs_sparse ?(input = 0) circ =
  let c = Gen.build circ in
  let input = input mod (1 lsl Circuit.num_qubits c) in
  let sparse = Baselines.Sparse_sim.run c ~input in
  let initial = Qstate.Statevec.basis (Circuit.num_qubits c) input in
  let dense = (Sim.Engine.run ~initial c).Sim.Engine.state in
  Qstate.Statevec.fidelity_pure (Baselines.Sparse_sim.to_statevec sparse) dense
  >= 1.0 -. eps

let gates_agree (a : Circuit.Gate.t) (b : Circuit.Gate.t) =
  a.Circuit.Gate.name = b.Circuit.Gate.name
  && a.Circuit.Gate.controls = b.Circuit.Gate.controls
  && a.Circuit.Gate.targets = b.Circuit.Gate.targets
  && List.length a.Circuit.Gate.params = List.length b.Circuit.Gate.params
  && List.for_all2
       (fun x y -> Float.abs (x -. y) <= eps)
       a.Circuit.Gate.params b.Circuit.Gate.params

let instrs_agree (a : Circuit.Instr.t) (b : Circuit.Instr.t) =
  match (a, b) with
  | Gate g, Gate g' -> gates_agree g g'
  | Tracepoint t, Tracepoint t' -> t.id = t'.id && t.qubits = t'.qubits
  | Measure m, Measure m' -> m.qubit = m'.qubit && m.clbit = m'.clbit
  | Reset q, Reset q' -> q = q'
  | If_gate i, If_gate i' ->
      i.clbits = i'.clbits && i.value = i'.value && gates_agree i.gate i'.gate
  | Barrier qs, Barrier qs' -> qs = qs'
  | _ -> false

let qasm_roundtrip circ =
  let c = Gen.build circ in
  let c' = Qasm.parse (Qasm.to_string c) in
  Circuit.num_qubits c = Circuit.num_qubits c'
  && Circuit.num_clbits c = Circuit.num_clbits c'
  &&
  let is_a = Circuit.instrs c and is_b = Circuit.instrs c' in
  List.length is_a = List.length is_b && List.for_all2 instrs_agree is_a is_b

let transpile_preserves pass circ =
  let c = Gen.build circ in
  Transpile.Equiv.unitaries_equal c (pass c)

let all_passes =
  [
    ("cancel_inverses", Transpile.Passes.cancel_inverses);
    ("merge_rotations", Transpile.Passes.merge_rotations);
    ("drop_identities", fun c -> Transpile.Passes.drop_identities c);
    ("fuse_1q", Transpile.Passes.fuse_1q);
    ("optimize", fun c -> Transpile.Passes.optimize c);
  ]
