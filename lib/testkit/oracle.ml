let eps = 1e-9

let fidelity_pure_dm psi rho =
  let v = Qstate.Statevec.to_cvec psi in
  let rv = Linalg.Cmat.apply (Qstate.Density.mat rho) v in
  Linalg.Cx.re (Linalg.Cvec.dot v rv)

let traces_match ?(eps = eps) a b =
  List.length a = List.length b
  && List.for_all2
       (fun (id_a, m_a) (id_b, m_b) ->
         id_a = id_b && Linalg.Cmat.frob_norm (Linalg.Cmat.sub m_a m_b) <= eps)
       a b

let statevec_vs_dm circ =
  let c = Gen.build circ in
  let sv = Sim.Engine.run c in
  let dm = Sim.Dm_engine.run c in
  fidelity_pure_dm sv.Sim.Engine.state (Sim.Dm_engine.final_density dm)
  >= 1.0 -. eps
  && traces_match sv.Sim.Engine.traces dm.Sim.Dm_engine.traces

let statevec_vs_tableau circ =
  let c = Gen.build circ in
  let tab = Stabilizer.Tableau.run c in
  let sv = (Sim.Engine.run c).Sim.Engine.state in
  let rho_tab = Stabilizer.Tableau.density tab in
  let rho_sv = Qstate.Statevec.density sv in
  Linalg.Cmat.frob_norm (Linalg.Cmat.sub rho_tab rho_sv) <= eps
  && List.for_all
       (fun q ->
         let ez_tab = float_of_int (Stabilizer.Tableau.expectation_z tab q) in
         let ez_sv = 1.0 -. (2.0 *. Qstate.Statevec.prob1 sv q) in
         Float.abs (ez_tab -. ez_sv) <= eps)
       (List.init (Circuit.num_qubits c) Fun.id)

let statevec_vs_sparse ?(input = 0) circ =
  let c = Gen.build circ in
  let input = input mod (1 lsl Circuit.num_qubits c) in
  let sparse = Baselines.Sparse_sim.run c ~input in
  let initial = Qstate.Statevec.basis (Circuit.num_qubits c) input in
  let dense = (Sim.Engine.run ~initial c).Sim.Engine.state in
  Qstate.Statevec.fidelity_pure (Baselines.Sparse_sim.to_statevec sparse) dense
  >= 1.0 -. eps

let gates_agree (a : Circuit.Gate.t) (b : Circuit.Gate.t) =
  a.Circuit.Gate.name = b.Circuit.Gate.name
  && a.Circuit.Gate.controls = b.Circuit.Gate.controls
  && a.Circuit.Gate.targets = b.Circuit.Gate.targets
  && List.length a.Circuit.Gate.params = List.length b.Circuit.Gate.params
  && List.for_all2
       (fun x y -> Float.abs (x -. y) <= eps)
       a.Circuit.Gate.params b.Circuit.Gate.params

let instrs_agree (a : Circuit.Instr.t) (b : Circuit.Instr.t) =
  match (a, b) with
  | Gate g, Gate g' -> gates_agree g g'
  | Tracepoint t, Tracepoint t' -> t.id = t'.id && t.qubits = t'.qubits
  | Measure m, Measure m' -> m.qubit = m'.qubit && m.clbit = m'.clbit
  | Reset q, Reset q' -> q = q'
  | If_gate i, If_gate i' ->
      i.clbits = i'.clbits && i.value = i'.value && gates_agree i.gate i'.gate
  | Barrier qs, Barrier qs' -> qs = qs'
  | _ -> false

let qasm_roundtrip circ =
  let c = Gen.build circ in
  let c' = Qasm.parse (Qasm.to_string c) in
  Circuit.num_qubits c = Circuit.num_qubits c'
  && Circuit.num_clbits c = Circuit.num_clbits c'
  &&
  let is_a = Circuit.instrs c and is_b = Circuit.instrs c' in
  List.length is_a = List.length is_b && List.for_all2 instrs_agree is_a is_b

let transpile_preserves pass circ =
  let c = Gen.build circ in
  Transpile.Equiv.unitaries_equal c (pass c)

let all_passes =
  [
    ("cancel_inverses", Transpile.Passes.cancel_inverses);
    ("merge_rotations", Transpile.Passes.merge_rotations);
    ("drop_identities", fun c -> Transpile.Passes.drop_identities c);
    ("fuse_1q", Transpile.Passes.fuse_1q);
    ("optimize", fun c -> Transpile.Passes.optimize c);
  ]

(* ---- translation validation (Transpile.Certify) ---- *)

let cert_ok = function Ok _ -> true | Error _ -> false

let certified_pass_sound circ =
  let c = Gen.build circ in
  let single f =
    let c', st = f c in
    cert_ok (Transpile.Certify.check [ st ] c c')
  in
  single Transpile.Passes.cancel_inverses_cert
  && single Transpile.Passes.merge_rotations_cert
  && single (fun c -> Transpile.Passes.drop_identities_cert c)
  && single Transpile.Passes.fuse_1q_cert
  && single Transpile.Passes.prune_lightcone_cert
  && (let c', cert = Transpile.Passes.optimize_cert c in
      cert_ok (Transpile.Certify.check cert c c'))
  && (let plan, st = Transpile.Segments.compile_cert c in
      cert_ok (Transpile.Certify.check_plan [ st ] c plan))
  && (let plan, st = Transpile.Segments.compile_cert ~clifford_direct:true c in
      cert_ok (Transpile.Certify.check_plan [ st ] c plan))
  && (Morphcore.Verify.certify_transpile c).Morphcore.Verify.certified

let certified_mutants_rejected circ =
  List.for_all Mutate.rejected (Mutate.mutants (Gen.build circ))

(* ---- segment-compiled batch execution vs the gate-by-gate engine ---- *)

let outcomes_close (a : Sim.Engine.outcome) (b : Sim.Engine.outcome) =
  a.Sim.Engine.clbits = b.Sim.Engine.clbits
  && Qstate.Statevec.equal ~eps a.Sim.Engine.state b.Sim.Engine.state
  && traces_match a.Sim.Engine.traces b.Sim.Engine.traces

let cmat_bits a b =
  a.Linalg.Cmat.re = b.Linalg.Cmat.re && a.Linalg.Cmat.im = b.Linalg.Cmat.im

let outcomes_bit_identical (a : Sim.Engine.outcome) (b : Sim.Engine.outcome) =
  a.Sim.Engine.clbits = b.Sim.Engine.clbits
  && a.Sim.Engine.state.Qstate.Statevec.re = b.Sim.Engine.state.Qstate.Statevec.re
  && a.Sim.Engine.state.Qstate.Statevec.im = b.Sim.Engine.state.Qstate.Statevec.im
  && List.length a.Sim.Engine.traces = List.length b.Sim.Engine.traces
  && List.for_all2
       (fun (ia, ma) (ib, mb) -> ia = ib && cmat_bits ma mb)
       a.Sim.Engine.traces b.Sim.Engine.traces

let run_pair ?cutoff ?block_cutoff c =
  let plan = Transpile.Segments.compile ?cutoff ?block_cutoff c in
  let seed = 0x5EED in
  let eng = Sim.Engine.run ~rng:(Stats.Rng.make seed) c in
  let bat =
    Sim.Batch.run_seq ~rng:(Stats.Rng.make seed) plan
      (Qstate.Statevec.zero (Circuit.num_qubits c))
  in
  (eng, bat)

let batch_vs_engine circ =
  let eng, bat = run_pair (Gen.build circ) in
  outcomes_close eng bat

let batch_vs_engine_packed circ =
  (* tiny cutoffs force the greedy packing and Direct-gate compile paths *)
  let eng, bat = run_pair ~cutoff:2 ~block_cutoff:2 (Gen.build circ) in
  outcomes_close eng bat

(* pseudorandom (unnormalized-then-normalized) input column, so batched
   kernels see dense amplitudes rather than sparse basis states *)
let random_state rng n =
  let d = 1 lsl n in
  let re = Array.init d (fun _ -> Stats.Rng.float rng 2. -. 1.) in
  let im = Array.init d (fun _ -> Stats.Rng.float rng 2. -. 1.) in
  let st = Qstate.Statevec.of_cvec n (Linalg.Cvec.of_arrays re im) in
  Qstate.Statevec.normalize st;
  st

let batch_columns = 23

let batch_bit_identical ?pool circ =
  let c = Gen.build circ in
  let n = Circuit.num_qubits c in
  let plan = Transpile.Segments.compile c in
  let states =
    Array.init batch_columns (fun i -> random_state (Stats.Rng.make (77 + i)) n)
  in
  let rngs () =
    Array.init batch_columns (fun i -> Stats.Rng.make (1000 + i))
  in
  let packed = Sim.Batch.run ?pool ~rngs:(rngs ()) plan states in
  let ok = ref true in
  Array.iteri
    (fun i st ->
      let solo = Sim.Batch.run_seq ~rng:(Stats.Rng.make (1000 + i)) plan st in
      if not (outcomes_bit_identical packed.(i) solo) then ok := false)
    states;
  !ok

(* Deliberately broken segmentation: shift every tracepoint fence past the
   operator that follows it, so the snapshot observes a state one segment
   too late. Running this through [batch_vs_engine]-style comparison MUST
   fail on any circuit where a traced state changes across the next
   operator — the shrinker smoke test relies on it. *)
let delay_tracepoint_fences (plan : Sim.Batch.plan) =
  let rec go = function
    | Sim.Batch.Fence (Circuit.Instr.Tracepoint _ as tp)
      :: ((Sim.Batch.Block _ | Sim.Batch.Direct _) as op)
      :: rest ->
        op :: Sim.Batch.Fence tp :: go rest
    | item :: rest -> item :: go rest
    | [] -> []
  in
  { plan with Sim.Batch.items = go plan.items }

let batch_fence_respected circ =
  let c = Gen.build circ in
  let plan = delay_tracepoint_fences (Transpile.Segments.compile c) in
  let seed = 0x5EED in
  let eng = Sim.Engine.run ~rng:(Stats.Rng.make seed) c in
  let bat =
    Sim.Batch.run_seq ~rng:(Stats.Rng.make seed) plan
      (Qstate.Statevec.zero (Circuit.num_qubits c))
  in
  outcomes_close eng bat

(* ---- characterization: batched engine vs sequential engine ---- *)

let costs_equal (a : Sim.Cost.t) (b : Sim.Cost.t) =
  a.Sim.Cost.executions = b.Sim.Cost.executions
  && a.Sim.Cost.shots = b.Sim.Cost.shots
  && a.Sim.Cost.gate_ops = b.Sim.Cost.gate_ops
  && a.Sim.Cost.one_qubit_gates = b.Sim.Cost.one_qubit_gates
  && a.Sim.Cost.two_qubit_gates = b.Sim.Cost.two_qubit_gates
  && a.Sim.Cost.measurements = b.Sim.Cost.measurements

(* ---- static analysis: lightcone pruning & stabilizer routing ---- *)

(* [prune_preserves_traces] runs on *pure* sketches: pruning drops resets
   outside the cone, which would shift the measurement generator stream of
   a stochastic trajectory and make an exact single-run comparison
   meaningless (only the trajectory *average* is preserved there). *)
let prune_preserves_traces circ =
  let c = Gen.build circ in
  let full = (Sim.Engine.run c).Sim.Engine.traces in
  let pruned = (Sim.Engine.run (Transpile.Passes.prune_lightcone c)).Sim.Engine.traces in
  traces_match full pruned

let prune_idempotent circ =
  let c = Transpile.Passes.prune_lightcone (Gen.build circ) in
  List.length (Circuit.instrs (Transpile.Passes.prune_lightcone c))
  = List.length (Circuit.instrs c)

let lightcone_restrict_matches circ =
  let c = Gen.build circ in
  let full = (Sim.Engine.run c).Sim.Engine.traces in
  List.for_all
    (fun cone ->
      let sub, _ = Analysis.Lightcone.restrict c cone in
      let restricted = (Sim.Engine.run sub).Sim.Engine.traces in
      match
        ( List.assoc_opt cone.Analysis.Lightcone.id restricted,
          List.assoc_opt cone.Analysis.Lightcone.id full )
      with
      | Some a, Some b -> Linalg.Cmat.frob_norm (Linalg.Cmat.sub a b) <= eps
      | _ -> false)
    (Analysis.Lightcone.cones c)

let stabilizer_traces_agree circ =
  let c = Gen.build circ in
  (not (Sim.Engine.stabilizer_applicable c))
  || traces_match
       (Sim.Engine.stabilizer_traces c)
       (Sim.Engine.run c).Sim.Engine.traces

let sparse_vs_statevec circ =
  let c = Gen.build circ in
  (not (Sim.Engine.sparse_applicable c))
  || traces_match
       (Sim.Engine.sparse_traces c)
       (Sim.Engine.run c).Sim.Engine.traces

let rank_vs_statevec circ =
  let c = Gen.build circ in
  (not (Sim.Engine.rank_applicable c))
  || traces_match
       (Sim.Engine.rank_traces c)
       (Sim.Engine.run c).Sim.Engine.traces

let samples_agree ?(bitwise = false) (a : Morphcore.Characterize.t)
    (b : Morphcore.Characterize.t) =
  costs_equal a.Morphcore.Characterize.cost b.Morphcore.Characterize.cost
  && Array.for_all2
       (fun (sa : Morphcore.Characterize.sample)
            (sb : Morphcore.Characterize.sample) ->
         cmat_bits sa.Morphcore.Characterize.input_dm
           sb.Morphcore.Characterize.input_dm
         &&
         if bitwise then
           List.length sa.Morphcore.Characterize.traces
           = List.length sb.Morphcore.Characterize.traces
           && List.for_all2
                (fun (ia, ma) (ib, mb) -> ia = ib && cmat_bits ma mb)
                sa.Morphcore.Characterize.traces
                sb.Morphcore.Characterize.traces
         else
           traces_match sa.Morphcore.Characterize.traces
             sb.Morphcore.Characterize.traces)
       a.Morphcore.Characterize.samples b.Morphcore.Characterize.samples

(* the pinned regression for the stabilizer auto-routing: on any program
   OUTSIDE the routing condition, [`Auto] must remain bit-for-bit the
   [`Batched] path it was before the routing existed *)
let characterize_auto_unchanged ?pool ?(kind = Clifford.Sampling.Clifford) circ =
  let c = Gen.build circ in
  (* the routing only ever fires for Basis-kind sampling; under any other
     kind `Auto must equal `Batched on every program *)
  (kind = Clifford.Sampling.Basis && Sim.Engine.auto_route c <> None)
  ||
  let run engine =
    Morphcore.Characterize.run ?pool ~rng:(Stats.Rng.make 99) ~kind
      ~trajectories:6 ~engine (Morphcore.Program.make c) ~count:4
  in
  samples_agree ~bitwise:true (run `Auto) (run `Batched)

(* stabilizer-routed characterization vs the sequential engine: same cost
   meter, traces within eps *)
let characterize_stabilizer_route ?pool circ =
  let c = Gen.build circ in
  (not (Sim.Engine.stabilizer_applicable c))
  ||
  let run engine =
    Morphcore.Characterize.run ?pool ~rng:(Stats.Rng.make 99)
      ~kind:Clifford.Sampling.Basis ~engine (Morphcore.Program.make c)
      ~count:4
  in
  samples_agree (run `Auto) (run `Sequential)

(* scalable-route characterization (wall forced to zero so the sparse /
   rank engines fire on small circuits) vs the sequential engine: same
   cost meter, traces within eps. Vacuous when the router still declines
   (e.g. Clifford circuits go to the stabilizer route, covered above). *)
let characterize_scale_route ?pool circ =
  let c = Gen.build circ in
  match Sim.Engine.auto_route ~wall:0. c with
  | Some (`Sparse | `Rank) ->
      let run engine =
        Morphcore.Characterize.run ?pool ~wall:0. ~rng:(Stats.Rng.make 99)
          ~kind:Clifford.Sampling.Basis ~engine (Morphcore.Program.make c)
          ~count:4
      in
      samples_agree (run `Auto) (run `Sequential)
  | Some `Stabilizer | None -> true

let characterize_engines_agree ?pool circ =
  let program = Morphcore.Program.make (Gen.build circ) in
  let run engine =
    Morphcore.Characterize.run ?pool ~rng:(Stats.Rng.make 99) ~trajectories:6
      ~engine program ~count:4
  in
  let a = run `Batched and b = run `Sequential in
  costs_equal a.Morphcore.Characterize.cost b.Morphcore.Characterize.cost
  && Array.for_all2
       (fun (sa : Morphcore.Characterize.sample)
            (sb : Morphcore.Characterize.sample) ->
         cmat_bits sa.Morphcore.Characterize.input_dm
           sb.Morphcore.Characterize.input_dm
         && traces_match sa.Morphcore.Characterize.traces
              sb.Morphcore.Characterize.traces)
       a.Morphcore.Characterize.samples b.Morphcore.Characterize.samples

(* ---- cache transparency ---- *)

let samples_traces_identical (a : Morphcore.Characterize.t)
    (b : Morphcore.Characterize.t) =
  Array.length a.Morphcore.Characterize.samples
  = Array.length b.Morphcore.Characterize.samples
  && Array.for_all2
       (fun (sa : Morphcore.Characterize.sample)
            (sb : Morphcore.Characterize.sample) ->
         cmat_bits sa.Morphcore.Characterize.input_dm
           sb.Morphcore.Characterize.input_dm
         && List.length sa.Morphcore.Characterize.traces
            = List.length sb.Morphcore.Characterize.traces
         && List.for_all2
              (fun (ia, ma) (ib, mb) -> ia = ib && cmat_bits ma mb)
              sa.Morphcore.Characterize.traces
              sb.Morphcore.Characterize.traces)
       a.Morphcore.Characterize.samples b.Morphcore.Characterize.samples

let samples_traces_close (a : Morphcore.Characterize.t)
    (b : Morphcore.Characterize.t) =
  Array.length a.Morphcore.Characterize.samples
  = Array.length b.Morphcore.Characterize.samples
  && Array.for_all2
       (fun (sa : Morphcore.Characterize.sample)
            (sb : Morphcore.Characterize.sample) ->
         cmat_bits sa.Morphcore.Characterize.input_dm
           sb.Morphcore.Characterize.input_dm
         && traces_match sa.Morphcore.Characterize.traces
              sb.Morphcore.Characterize.traces)
       a.Morphcore.Characterize.samples b.Morphcore.Characterize.samples

(* Content-addressed caching must be invisible in the results. Four runs
   of the same characterization — uncached, cold cache, warm cache, and
   through a byte-starved cache whose entries keep getting evicted — and
   a persistence reload (resident tier dropped, entries re-read from
   disk) when [dir] is given: the cached runs must agree bit-for-bit
   with each other (every cached value is a pure function of its key;
   tomography degradation draws from key-derived generators), and with
   the uncached run within the engine tolerance (the incremental path
   simulates lightcone-restricted units, the same ~1e-15 reordering as
   batched-vs-sequential). *)
let cache_transparent ?pool ?dir circ =
  let c = Gen.build circ in
  let program = Morphcore.Program.make c in
  let run ?cache () =
    Morphcore.Characterize.run ?pool ?cache ~rng:(Stats.Rng.make 2718)
      ~trajectories:4 program ~count:3
  in
  let uncached = run () in
  let cache = Cache.create ?dir () in
  let cold = run ~cache () in
  let warm = run ~cache () in
  samples_traces_identical cold warm
  && samples_traces_close uncached cold
  && (let tiny = Cache.create ~max_bytes:512 () in
      let tcold = run ~cache:tiny () in
      let twarm = run ~cache:tiny () in
      samples_traces_identical cold tcold
      && samples_traces_identical tcold twarm)
  &&
  match dir with
  | None -> true
  | Some _ ->
      Cache.drop_memory cache;
      samples_traces_identical cold (run ~cache ())

(* ---- observability transparency ---- *)

(* Enabling [Obs] must not perturb any engine: instrumentation reads no
   generator, reorders no arithmetic, and branches on nothing but the
   enabled flag. Run every engine with the global switch off, then on
   (restoring the caller's setting either way), and compare the outputs
   with (=) — bit-identical, no tolerance. The density-matrix engine is
   skipped past 6 measurements, where its branch tree gets expensive. *)
let obs_transparent circ =
  let c = Gen.build circ in
  let measures =
    List.fold_left
      (fun acc i ->
        match i with Circuit.Instr.Measure _ -> acc + 1 | _ -> acc)
      0 (Circuit.instrs c)
  in
  let run_all () =
    let eng = Sim.Engine.run ~rng:(Stats.Rng.make 0x0B5) c in
    let tps =
      Sim.Engine.tracepoint_states ~rng:(Stats.Rng.make 0x0B5) ~trajectories:4
        c
    in
    let plan = Transpile.Segments.compile c in
    let bat =
      Sim.Batch.run_seq ~rng:(Stats.Rng.make 0x0B5) plan
        (Qstate.Statevec.zero (Circuit.num_qubits c))
    in
    let dm = if measures <= 6 then Some (Sim.Dm_engine.run c) else None in
    (eng, tps, bat, dm)
  in
  let was = Obs.enabled () in
  Fun.protect
    ~finally:(fun () -> Obs.configure ~enabled:was)
    (fun () ->
      Obs.configure ~enabled:false;
      let off = run_all () in
      Obs.configure ~enabled:true;
      let on = run_all () in
      off = on)

(* ---- server-path observability transparency ---- *)

(* wall time is the one legitimately nondeterministic field a request
   emits; everything else must be bit-identical *)
let rec strip_seconds = function
  | Server.Jsonx.Obj fields ->
      Server.Jsonx.Obj
        (List.filter_map
           (fun (k, v) ->
             if k = "seconds" then None else Some (k, strip_seconds v))
           fields)
  | Server.Jsonx.List l -> Server.Jsonx.List (List.map strip_seconds l)
  | v -> v

(* [obs_transparent] through the daemon path: one full verify RPC
   (parse, characterize, solve, verdict, cache deltas) driven through
   [Server.handle_line] against a fresh state + cache, with obs off and
   then on — every emitted protocol line except wall time must be
   byte-identical. This is the PR 5 contract extended to the service
   layer: request ids, spans, logs, RED metrics and the flight recorder
   may observe a request but never perturb it. *)
let server_obs_transparent circ =
  let c = Gen.build circ in
  let c =
    if Circuit.tracepoints c = [] then Circuit.tracepoint 1 [ 0 ] c else c
  in
  let tp = fst (List.hd (Circuit.tracepoints c)) in
  let req =
    Server.Jsonx.to_string
      (Server.Jsonx.Obj
         [
           ("id", Server.Jsonx.int 1);
           ("request_id", Server.Jsonx.Str "oracle");
           ("method", Server.Jsonx.Str "verify");
           ( "params",
             Server.Jsonx.Obj
               [
                 ("qasm", Server.Jsonx.Str (Qasm.to_string c));
                 ("count", Server.Jsonx.int 3);
                 ("seed", Server.Jsonx.int 7);
                 ( "guarantee",
                   Server.Jsonx.List
                     [
                       Server.Jsonx.Str (Printf.sprintf "purity-ge:%d,0.0" tp);
                     ] );
               ] );
         ])
  in
  let drive () =
    let state = Server.make_state ~cache:(Cache.create ()) () in
    let out = ref [] in
    ignore (Server.handle_line state ~emit:(fun v -> out := v :: !out) req);
    List.rev_map (fun v -> Server.Jsonx.to_string (strip_seconds v)) !out
  in
  let was = Obs.enabled () in
  Fun.protect
    ~finally:(fun () -> Obs.configure ~enabled:was)
    (fun () ->
      Obs.configure ~enabled:false;
      let off = drive () in
      Obs.configure ~enabled:true;
      let on = drive () in
      off = on)

(* ---- statistical verdicts ---- *)

(* Sequential and fixed shot budgets must agree on unambiguous
   distribution assertions. Both sides of the dichotomy are forced: the
   TRUE output distribution of the circuit (both budgets must hold —
   the significance levels are set to 1e-6, so a false reject is a
   once-per-million-sweeps event, not a flake), and a broken expectation
   with every probability halved (the missing half lands in the "other"
   bucket that observes nothing, a ~shots/2 chi-square: both budgets
   must reject). *)
let sequential_vs_fixed_verdict circ =
  let c = Gen.build circ in
  let program = Morphcore.Program.make c in
  let n = Circuit.num_qubits c in
  let input = Qstate.Statevec.basis n 0 in
  let probs = Qstate.Statevec.probs (Sim.Engine.run c).Sim.Engine.state in
  (* listed support: up to 8 heaviest outcomes above 1e-3 *)
  let listed =
    Array.to_list (Array.mapi (fun k p -> (k, p)) probs)
    |> List.filter (fun (_, p) -> p > 1e-3)
    |> List.sort (fun (_, a) (_, b) -> compare b a)
    |> List.filteri (fun i _ -> i < 8)
  in
  if listed = [] then true (* no category above threshold: vacuous *)
  else
  let check ~significance expected budget seed =
    let dist = Morphcore.Assertion.Dist.make ~significance expected in
    (Morphcore.Verify.check_counts ~budget ~rng:(Stats.Rng.make seed) program
       dist ~input)
      .Morphcore.Verify.counts_hold
  in
  let seq =
    `Sequential { Stats.Tests.alpha = 1e-6; beta = 1e-6; max_shots = 2048 }
  in
  let agree_true =
    check ~significance:1e-6 listed (`Fixed 2048) 3
    && check ~significance:1e-6 listed seq 3
  in
  let broken = List.map (fun (k, p) -> (k, p /. 2.)) listed in
  let agree_broken =
    (not (check ~significance:1e-6 broken (`Fixed 2048) 5))
    && not (check ~significance:1e-6 broken seq 5)
  in
  agree_true && agree_broken

(* Under a true null hypothesis, p-values must be Uniform(0,1) — the
   property every verdict in the stats layer leans on. Student-t
   p-values are continuous, so the exact one-sample KS test applies with
   no discreteness slack: draw 80 independent t-tests of N(0,1) data
   against mu = 0 and KS their p-values against the uniform CDF. The
   sketch only seeds the RNG stream, so the sweep exercises 100
   independent streams per run. *)
let pvalue_uniform_under_null circ =
  let rng = Stats.Rng.make (Hashtbl.hash circ land 0x3FFFFFFF) in
  let pvalues =
    Array.init 80 (fun _ ->
        let xs = Array.init 12 (fun _ -> Stats.Rng.gaussian rng ~mu:0. ~sigma:1.) in
        (Stats.Tests.t_one_sample ~mu:0. xs).Stats.Tests.pvalue)
  in
  let cdf x = Float.min 1. (Float.max 0. x) in
  (Stats.Tests.ks_one_sample ~cdf pvalues).Stats.Tests.pvalue > 1e-4
