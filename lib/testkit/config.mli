(** Seed and case-count plumbing for the randomized test harness.

    Both knobs come from the environment so a failure seen anywhere (CI, a
    teammate's machine, the fuzz bench) is reproducible with a one-line
    command:

    - [QCHECK_COUNT] — cases per property (default 100). [make test-fast]
      lowers it; [make test-full] keeps the default.
    - [MORPHQPV_SEED] — the root seed of the QCheck generator state. *)

(** [count ()] is the per-property case count ([QCHECK_COUNT], default 100). *)
val count : ?default:int -> unit -> int

(** [seed ()] is the root random seed ([MORPHQPV_SEED], default 4231). *)
val seed : ?default:int -> unit -> int

(** [rand ()] is a fresh [Random.State.t] seeded from {!seed} — pass it to
    [QCheck_alcotest.to_alcotest] or [QCheck.Gen.generate]. *)
val rand : unit -> Random.State.t

(** [repro ~exe] is the one-line command that replays the current
    seed/count configuration against the given executable. *)
val repro : exe:string -> string

(** [announce ~exe] prints the active seed, count and repro command (call
    once at test-binary startup, before the alcotest runner takes over). *)
val announce : exe:string -> unit
