(* Textual predicate and shot-budget specs, shared by the CLI and the
   server (moved here from bin/main.ml so both front ends parse the same
   grammar).

   Predicate specs (tracepoint 0 = the program input):
     pure:T                 the state at tracepoint T is pure
     equals:A,B             states at tracepoints A and B are equal
     equals-basis:T,K       state at T equals |K><K|
     diag:T,K,LO,HI         diagonal entry K of T's state lies in [LO, HI]
     expect-ge:T,PAULI,V    Pauli expectation at T is >= V  (e.g. ZII)
     expect-le:T,PAULI,V    Pauli expectation at T is <= V
     purity-ge:T,V          purity at T is >= V

   Budget specs: fixed:N | seq:ALPHA,BETA,MAX *)

open Morphcore

let qubits_of_tracepoint circuit tp =
  if tp = 0 then None
  else
    match List.assoc_opt tp (Circuit.tracepoints circuit) with
    | Some qs -> Some (List.length qs)
    | None -> None

let parse_predicate circuit n_in spec =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let dim_of tp =
    match qubits_of_tracepoint circuit tp with
    | Some k -> Ok k
    | None when tp = 0 -> Ok n_in
    | None -> fail "unknown tracepoint %d" tp
  in
  try
    match String.split_on_char ':' spec with
    | [ "pure"; t ] -> Ok (Predicate.Is_pure (int_of_string t))
    | [ "equals"; rest ] -> (
        match String.split_on_char ',' rest with
        | [ a; b ] -> Ok (Predicate.Equals (int_of_string a, int_of_string b))
        | _ -> fail "equals expects A,B")
    | [ "equals-basis"; rest ] -> (
        match String.split_on_char ',' rest with
        | [ t; k ] -> (
            let tp = int_of_string t and k = int_of_string k in
            match dim_of tp with
            | Ok nq ->
                let v = Qstate.Statevec.to_cvec (Qstate.Statevec.basis nq k) in
                Ok (Predicate.Equals_const (tp, Linalg.Cmat.outer v v))
            | Error e -> Error e)
        | _ -> fail "equals-basis expects T,K")
    | [ "diag"; rest ] -> (
        match String.split_on_char ',' rest with
        | [ t; k; lo; hi ] ->
            Ok
              (Predicate.Diag_in_range
                 ( int_of_string t,
                   int_of_string k,
                   float_of_string lo,
                   float_of_string hi ))
        | _ -> fail "diag expects T,K,LO,HI")
    | [ "expect-ge"; rest ] -> (
        match String.split_on_char ',' rest with
        | [ t; p; v ] ->
            Ok
              (Predicate.Expect_ge
                 (int_of_string t, Qstate.Pauli.of_string p, float_of_string v))
        | _ -> fail "expect-ge expects T,PAULI,V")
    | [ "expect-le"; rest ] -> (
        match String.split_on_char ',' rest with
        | [ t; p; v ] ->
            Ok
              (Predicate.Expect_le
                 (int_of_string t, Qstate.Pauli.of_string p, float_of_string v))
        | _ -> fail "expect-le expects T,PAULI,V")
    | [ "purity-ge"; rest ] -> (
        match String.split_on_char ',' rest with
        | [ t; v ] ->
            Ok (Predicate.Purity_ge (int_of_string t, float_of_string v))
        | _ -> fail "purity-ge expects T,V")
    | _ -> fail "unknown predicate spec %S" spec
  with Failure _ | Invalid_argument _ ->
    fail "malformed predicate spec %S" spec

let parse_budget s =
  let fail () =
    Error
      (Printf.sprintf
         "bad budget %S (expected fixed:N or seq:ALPHA,BETA,MAX)" s)
  in
  match String.split_on_char ':' (String.trim s) with
  | [ "fixed"; n ] -> (
      match int_of_string_opt n with
      | Some n when n > 0 -> Ok (`Fixed n)
      | _ -> fail ())
  | [ "seq"; rest ] -> (
      match String.split_on_char ',' rest with
      | [ a; b; m ] -> (
          match
            (float_of_string_opt a, float_of_string_opt b, int_of_string_opt m)
          with
          | Some alpha, Some beta, Some max_shots
            when alpha > 0. && alpha < 1. && beta > 0. && beta < 1.
                 && max_shots > 0 ->
              Ok (`Sequential { Stats.Tests.alpha; beta; max_shots })
          | _ -> fail ())
      | _ -> fail ())
  | _ -> fail ()

(* characterization-mode spec: exact | tomo:SHOTS | probs:SHOTS *)
let parse_mode s =
  match String.split_on_char ':' (String.trim s) with
  | [ "exact" ] | [ "" ] -> Ok Characterize.Exact
  | [ "tomo"; n ] -> (
      match int_of_string_opt n with
      | Some shots when shots > 0 ->
          Ok (Characterize.Tomography { shots; project = true })
      | _ -> Error (Printf.sprintf "bad mode %S (tomo:SHOTS)" s))
  | [ "probs"; n ] -> (
      match int_of_string_opt n with
      | Some shots when shots > 0 -> Ok (Characterize.Probs_only { shots })
      | _ -> Error (Printf.sprintf "bad mode %S (probs:SHOTS)" s))
  | _ -> Error (Printf.sprintf "bad mode %S (exact | tomo:SHOTS | probs:SHOTS)" s)

let parse_solver s =
  match String.trim s with
  | "sgd" -> `Adam
  | "anneal" -> `Anneal
  | "genetic" -> `Genetic
  | _ -> `Qp
