(* Minimal JSON for the line-delimited RPC protocol — hand-rolled (the
   protocol must not pull in dependencies) and small: values, a
   recursive-descent parser, and a writer that always emits one line
   (control characters in strings are escaped, so any payload — QASM
   sources included — survives the line framing). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------ writer ------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x ->
      (* JSON has no inf/nan literals; degrade to null rather than emit
         an unparseable line *)
      if not (Float.is_finite x) then Buffer.add_string buf "null"
      else if Float.is_integer x && Float.abs x < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.0f" x)
      else Buffer.add_string buf (Printf.sprintf "%.17g" x)
  | Str s -> escape buf s
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        l;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ------------------------------ parser ------------------------------- *)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal lit v =
    if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit
    then begin
      pos := !pos + String.length lit;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let utf8_of_code buf u =
    if u < 0x80 then Buffer.add_char buf (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else if u < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    h
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= n then fail "truncated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'; advance ()
          | '\\' -> Buffer.add_char buf '\\'; advance ()
          | '/' -> Buffer.add_char buf '/'; advance ()
          | 'b' -> Buffer.add_char buf '\b'; advance ()
          | 'f' -> Buffer.add_char buf '\012'; advance ()
          | 'n' -> Buffer.add_char buf '\n'; advance ()
          | 'r' -> Buffer.add_char buf '\r'; advance ()
          | 't' -> Buffer.add_char buf '\t'; advance ()
          | 'u' ->
              advance ();
              let u = hex4 () in
              let u =
                (* surrogate pair *)
                if u >= 0xD800 && u <= 0xDBFF && !pos + 6 <= n
                   && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let lo = hex4 () in
                  if lo >= 0xDC00 && lo <= 0xDFFF then
                    0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00)
                  else u
                end
                else u
              in
              utf8_of_code buf u
          | c -> fail (Printf.sprintf "bad escape %C" c));
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numchar s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some x -> Num x
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (elements [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing input";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* ----------------------------- accessors ------------------------------ *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_num = function Num x -> Some x | _ -> None

let to_int = function
  | Num x when Float.is_integer x -> Some (int_of_float x)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None

let mem_str k v = Option.bind (member k v) to_str
let mem_int k v = Option.bind (member k v) to_int
let mem_list k v = Option.bind (member k v) to_list
let int i = Num (float_of_int i)
