(* Flight recorder: a bounded ring of the last N completed request
   summaries, kept in memory by the serve daemon.

   Each summary holds what an operator needs to reconstruct a request
   after the fact — id, verb, wall time, outcome, the registry-counter
   deltas the request produced, and (when observability was enabled) the
   request's span events so the [trace <id>] RPC can serve its full span
   tree as Chrome-trace JSON long after the per-domain span rings have
   been reclaimed. The ring overwrites oldest-first; lookups scan newest
   first so a re-used request id resolves to its latest occurrence.

   Not thread-safe by itself: the daemon records and reads from the
   single accept-loop domain. *)

type summary = {
  rid : string;  (** request id (client-supplied or generated) *)
  verb : string;  (** RPC method name *)
  seconds : float;  (** wall time of the whole request *)
  ok : bool;  (** terminal line was a [result], not an [error] *)
  error : string option;
  counters : (string * int) list;
      (** registry counter deltas, flat [name{k=v,...}] keys, nonzero only *)
  events : Obs.Span.event list;
      (** the request's span events ([] when obs was disabled) *)
}

type t = { cap : int; slots : summary option array; mutable n : int }

let create ?(capacity = 256) () =
  let cap = max 1 capacity in
  { cap; slots = Array.make cap None; n = 0 }

let capacity t = t.cap
let recorded t = t.n

let record t s =
  t.slots.(t.n mod t.cap) <- Some s;
  t.n <- t.n + 1

let find t rid =
  let lo = max 0 (t.n - t.cap) in
  let rec scan k =
    if k < lo then None
    else
      match t.slots.(k mod t.cap) with
      | Some s when s.rid = rid -> Some s
      | _ -> scan (k - 1)
  in
  scan (t.n - 1)

(* newest first *)
let recent ?(limit = 16) t =
  let lo = max 0 (t.n - t.cap) in
  let rec collect k acc taken =
    if k < lo || taken >= limit then List.rev acc
    else
      match t.slots.(k mod t.cap) with
      | Some s -> collect (k - 1) (s :: acc) (taken + 1)
      | None -> collect (k - 1) acc taken
  in
  collect (t.n - 1) [] 0
