(** Minimal JSON values for the line-delimited RPC protocol. The writer
    always emits a single line (control characters are escaped). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val parse : string -> (t, string) result

val member : string -> t -> t option
val to_str : t -> string option
val to_num : t -> float option
val to_int : t -> int option
val to_bool : t -> bool option
val to_list : t -> t list option

val mem_str : string -> t -> string option
val mem_int : string -> t -> int option
val mem_list : string -> t -> t list option

val int : int -> t
(** [int i] is [Num (float_of_int i)]. *)
