(** Textual predicate / budget / mode specs shared by the [morphqpv]
    CLI and the RPC server, so both front ends accept one grammar.

    Predicate specs (tracepoint 0 = the program input):
    [pure:T], [equals:A,B], [equals-basis:T,K], [diag:T,K,LO,HI],
    [expect-ge:T,PAULI,V], [expect-le:T,PAULI,V], [purity-ge:T,V].
    Budget specs: [fixed:N] | [seq:ALPHA,BETA,MAX].
    Mode specs: [exact] | [tomo:SHOTS] | [probs:SHOTS]. *)

open Morphcore

val qubits_of_tracepoint : Circuit.t -> int -> int option
(** Width of tracepoint [tp]'s recorded state; [None] for the reserved
    input id 0 and for unknown ids. *)

val parse_predicate :
  Circuit.t -> int -> string -> (Predicate.t, string) result
(** [parse_predicate circuit n_in spec] — malformed numbers and unknown
    forms return [Error], never raise. *)

val parse_budget : string -> (Stats.Tests.budget, string) result
val parse_mode : string -> (Characterize.mode, string) result

val parse_solver : string -> Optimize.Solvers.method_
(** [sgd]/[anneal]/[genetic], anything else is the QP default. *)
