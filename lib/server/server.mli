(** Long-running verification daemon and its client: line-delimited JSON
    over a Unix-domain or loopback TCP socket.

    One request object per line, [{"id":N,"method":M,"params":{...}}];
    the server streams zero or more [{"id":N,"event":...}] lines and
    terminates every request with exactly one [{"id":N,"result":{...}}]
    or [{"id":N,"error":"..."}] line. Methods: [ping], [stats],
    [metrics] (Prometheus text exposition in [result.prometheus]),
    [trace] (param [request_id] — one recorded request's span tree as
    Chrome-trace JSON in [result.trace]),
    [verify] (params [qasm] (required), [assume]/[guarantee] spec lists,
    [count], [solver], [seed], [budget], [mode] — the {!Spec} grammar),
    and [shutdown].

    Every request carries a request id — client-supplied via a top-level
    ["request_id"] field, else server-generated ([req-N]) — echoed as
    [request_id] on the terminal line, stamped on every span and log
    line the request produces, and usable as the [trace] RPC's key. The
    last N completed requests are kept in a {!Recorder} flight ring.

    All requests share one process-wide content-addressed {!Cache.t}, so
    a warm re-verification of a program the daemon has seen performs
    zero characterization shots, and the [result.cache] object (per-
    request hit/miss/store deltas) makes that observable to clients. *)

module Jsonx : module type of Jsonx
module Spec : module type of Spec
module Recorder : module type of Recorder

type addr = Unix_path of string | Tcp of int  (** TCP binds loopback only *)

type state

(** [certify] (default [false]) forces translation validation on every
    [verify] request: the transpile pipeline runs through the certificate-
    emitting pass variants, the chain is re-checked by the independent
    checker ({!Transpile.Certify}), and a ["certify"] event reports the
    verdict. A failed check aborts the request with an MQ021 error line.
    Individual requests can also opt in with a ["certify": true] param.
    [recorder_capacity] (default 256) bounds the flight-recorder ring. *)
val make_state :
  ?cache:Cache.t -> ?certify:bool -> ?recorder_capacity:int -> unit -> state

val recorder : state -> Recorder.t
(** The state's flight recorder (tests and the [trace] RPC read it). *)

(** [handle_line state ~emit line] processes one request line, calling
    [emit] once per response line; [`Stop] after a [shutdown] request.
    Transport-free — unit tests drive the protocol through this. *)
val handle_line :
  state -> emit:(Jsonx.t -> unit) -> string -> [ `Continue | `Stop ]

(** [serve ?cache ?on_ready addr] binds, listens, and blocks serving
    connections sequentially until a [shutdown] request or SIGINT /
    SIGTERM; the socket (and Unix path) is cleaned up on exit and the
    previous signal dispositions are restored. [on_ready] runs once the
    socket is listening (used by tests to synchronize). *)
val serve :
  ?cache:Cache.t -> ?certify:bool -> ?on_ready:(unit -> unit) -> addr -> unit

module Client : sig
  (** [request ?on_event addr req] sends one request and reads lines
      until the terminal [result]/[error] line, which it returns;
      [on_event] sees each intermediate event line. *)
  val request :
    ?on_event:(Jsonx.t -> unit) -> addr -> Jsonx.t -> (Jsonx.t, string) result
end
