(* morphqpv serve — a long-running verification daemon speaking
   line-delimited JSON over a Unix-domain or loopback TCP socket.

   Protocol: the client sends one request object per line —
     {"id": 1, "method": "verify", "params": {"qasm": "...", ...}}
   and the server answers with zero or more event lines
     {"id": 1, "event": "accepted" | "expect" | "verdict", ...}
   followed by exactly one terminal line carrying either
     {"id": 1, "result": {...}}  or  {"id": 1, "error": "..."}.

   Methods: ping, stats, verify, shutdown. The verify handler mirrors
   the CLI's verify subcommand (expect pragmas, --assume/--guarantee
   specs, Theorem-2 default sample count) but shares one process-wide
   content-addressed cache across requests, so re-verifying a program
   the daemon has seen — under any qubit labeling — performs zero
   characterization shots. Requests are handled sequentially on the
   accept loop; the characterization inside each request parallelizes
   on the global domain pool as usual.

   [handle_line] is pure with respect to the transport (it only calls
   [emit]), so the protocol is unit-testable without sockets. *)

open Morphcore

(* [server] is this library's main module: siblings are invisible
   outside unless re-exported here *)
module Jsonx = Jsonx
module Spec = Spec
module Recorder = Recorder

type addr = Unix_path of string | Tcp of int

type verb_stat = { mutable vcount : int; mutable verrors : int }

type state = {
  cache : Cache.t option;
  certify : bool;
      (* force translation validation of the transpile pipeline on every
         verify request, even when the request doesn't ask for it *)
  started : float;
  mutable requests : int;
  recorder : Recorder.t;
  mutable next_rid : int;
      (* generator for server-assigned request ids (req-1, req-2, ...) *)
  by_verb : (string, verb_stat) Hashtbl.t;
      (* request/error tallies per RPC verb; kept outside the obs
         registry so `stats` reports them even with obs disabled *)
}

let make_state ?cache ?(certify = false) ?recorder_capacity () =
  {
    cache;
    certify;
    started = Unix.gettimeofday ();
    requests = 0;
    recorder = Recorder.create ?capacity:recorder_capacity ();
    next_rid = 0;
    by_verb = Hashtbl.create 8;
  }

let recorder state = state.recorder

(* ----------------------------- responses ------------------------------ *)

let event id fields = Jsonx.Obj (("id", id) :: fields)

let error_line ?rid id msg =
  let rid_field =
    match rid with None -> [] | Some r -> [ ("request_id", Jsonx.Str r) ]
  in
  Jsonx.Obj ([ ("id", id) ] @ rid_field @ [ ("error", Jsonx.Str msg) ])

let result_line ~rid id result =
  Jsonx.Obj
    [ ("id", id); ("request_id", Jsonx.Str rid); ("result", result) ]

let cache_json = function
  | None -> Jsonx.Null
  | Some c ->
      let s : Cache.stats = Cache.stats c in
      Jsonx.Obj
        [
          ("hits", Jsonx.int s.hits);
          ("misses", Jsonx.int s.misses);
          ("stores", Jsonx.int s.stores);
          ("evictions", Jsonx.int s.evictions);
          ("entries", Jsonx.int s.entries);
          ("bytes", Jsonx.int s.bytes);
        ]

(* per-request view: hit/miss/store deltas, resident totals *)
let cache_delta_json before cache =
  match (before, cache) with
  | Some (b : Cache.stats), Some c ->
      let a : Cache.stats = Cache.stats c in
      Jsonx.Obj
        [
          ("hits", Jsonx.int (a.hits - b.hits));
          ("misses", Jsonx.int (a.misses - b.misses));
          ("stores", Jsonx.int (a.stores - b.stores));
          ("entries", Jsonx.int a.entries);
          ("bytes", Jsonx.int a.bytes);
        ]
  | _ -> Jsonx.Null

(* ------------------------------ verify -------------------------------- *)

exception Fail of string

let failf fmt = Printf.ksprintf (fun m -> raise (Fail m)) fmt

let get_or_fail = function Ok v -> v | Error e -> raise (Fail e)

let string_list params key =
  match Jsonx.member key params with
  | None -> []
  | Some (Jsonx.List l) ->
      List.map
        (fun v ->
          match Jsonx.to_str v with
          | Some s -> s
          | None -> failf "%S entries must be strings" key)
        l
  | Some (Jsonx.Str s) -> [ s ]
  | Some _ -> failf "%S must be a list of strings" key

let check_expects ~emit ~id ~budget ~rng program expects =
  List.for_all
    (fun (e : Qasm.expect_pragma) ->
      let line, col = e.Qasm.expect_loc in
      let base =
        [
          ("event", Jsonx.Str "expect");
          ("line", Jsonx.int line);
          ("col", Jsonx.int col);
        ]
      in
      match
        Assertion.Dist.make ?significance:e.Qasm.significance e.Qasm.expected
      with
      | exception Invalid_argument msg ->
          emit
            (event id
               (base
               @ [ ("holds", Jsonx.Bool false); ("error", Jsonx.Str msg) ]));
          false
      | dist ->
          let input =
            Qstate.Statevec.basis (Program.num_input_qubits program) 0
          in
          let r = Verify.check_counts ~budget ~rng program dist ~input in
          emit
            (event id
               (base
               @ [
                   ("holds", Jsonx.Bool r.Verify.counts_hold);
                   ("statistic", Jsonx.Num r.Verify.test.Stats.Tests.statistic);
                   ("pvalue", Jsonx.Num r.Verify.test.Stats.Tests.pvalue);
                   ("shots", Jsonx.int r.Verify.shots_used);
                   ("early_stop", Jsonx.Bool r.Verify.early_stop);
                 ]));
          r.Verify.counts_hold)
    expects

let verify_result ~t0 ~stats0 ~cache ~verified ~expects_ok ~executions ~shots =
  Jsonx.Obj
    [
      ("ok", Jsonx.Bool true);
      ("verified", Jsonx.Bool verified);
      ("expects_ok", Jsonx.Bool expects_ok);
      ("executions", Jsonx.int executions);
      ("shots", Jsonx.int shots);
      ("cache", cache_delta_json stats0 cache);
      ("seconds", Jsonx.Num (Unix.gettimeofday () -. t0));
    ]

let verify_request state ~emit ~id ~rid params =
  let t0 = Unix.gettimeofday () in
  let qasm =
    match Jsonx.mem_str "qasm" params with
    | Some s -> s
    | None -> failf "missing %S param" "qasm"
  in
  let full =
    try Qasm.parse_full qasm with
    | Qasm.Parse_error { line; column; message; _ } ->
        failf "parse error at %d:%d: %s" line column message
    | Circuit.Error { code; message; _ } -> failf "[%s] %s" code message
  in
  let c = full.Qasm.circuit in
  let seed = Option.value ~default:2024 (Jsonx.mem_int "seed" params) in
  let count = Option.value ~default:0 (Jsonx.mem_int "count" params) in
  let solver =
    Spec.parse_solver (Option.value ~default:"qp" (Jsonx.mem_str "solver" params))
  in
  let budget =
    get_or_fail
      (Spec.parse_budget
         (Option.value ~default:"fixed:2048" (Jsonx.mem_str "budget" params)))
  in
  let mode =
    get_or_fail
      (Spec.parse_mode
         (Option.value ~default:"exact" (Jsonx.mem_str "mode" params)))
  in
  let assumes = string_list params "assume" in
  let guarantees = string_list params "guarantee" in
  let rng = Stats.Rng.make seed in
  let program = Program.make c in
  let n_in = Program.num_input_qubits program in
  let stats0 = Option.map Cache.stats state.cache in
  emit
    (event id
       [
         ("event", Jsonx.Str "accepted");
         ("qubits", Jsonx.int (Circuit.num_qubits c));
         ("gates", Jsonx.int (Circuit.gate_count c));
         ("tracepoints", Jsonx.int (List.length (Circuit.tracepoints c)));
         ("expects", Jsonx.int (List.length full.Qasm.expects));
       ]);
  (* translation validation: transpile through the certificate-emitting
     pass variants and re-check the chain with the independent checker.
     The certified plan is cached under its own key prefix, so a daemon
     asked to certify never serves a plan that skipped certification. *)
  let want_certify =
    state.certify
    || Option.value ~default:false
         (Option.bind (Jsonx.member "certify" params) Jsonx.to_bool)
  in
  if want_certify then begin
    let report =
      Verify.certify_transpile ?cache:state.cache ~locs:full.Qasm.locs c
    in
    let summary = report.Verify.cert_summary in
    emit
      (event id
         [
           ("event", Jsonx.Str "certify");
           ("certified", Jsonx.Bool report.Verify.certified);
           ("steps", Jsonx.int summary.Transpile.Certify.chain_steps);
           ( "obligations",
             Jsonx.int (Transpile.Certify.total_obligations summary) );
         ]);
    if not report.Verify.certified then begin
      let msg =
        match report.Verify.cert_failures with
        | f :: _ -> Transpile.Certify.failure_message f
        | [] -> "transpile certificate check failed"
      in
      Obs.Log.emit Obs.Log.Error "certify.fail"
        [
          ("code", Obs.Log.S "MQ021");
          ("reason", Obs.Log.S msg);
          ( "steps",
            Obs.Log.I report.Verify.cert_summary.Transpile.Certify.chain_steps
          );
        ];
      failf "MQ021: %s" msg
    end
  end;
  let expects_ok =
    check_expects ~emit ~id ~budget ~rng program full.Qasm.expects
  in
  let parse_all specs =
    List.fold_left
      (fun acc spec ->
        match (acc, Spec.parse_predicate c n_in spec) with
        | Error e, _ -> Error e
        | Ok l, Ok p -> Ok (p :: l)
        | Ok _, Error e -> Error e)
      (Ok []) specs
    |> Result.map List.rev
  in
  match (parse_all assumes, parse_all guarantees) with
  | Error e, _ | _, Error e -> raise (Fail e)
  | Ok _, Ok [] when full.Qasm.expects <> [] ->
      (* distribution-only verification via the expect pragmas *)
      emit
        (result_line ~rid id
           (verify_result ~t0 ~stats0 ~cache:state.cache ~verified:expects_ok
              ~expects_ok ~executions:0 ~shots:0))
  | Ok _, Ok [] ->
      raise
        (Fail
           "at least one guarantee (or an expect pragma in the program) is \
            required")
  | Ok assumes, Ok guarantees ->
      let assertion = Assertion.make ~name:"rpc" ~assumes ~guarantees () in
      let count =
        if count > 0 then count else Approx.samples_for_full_accuracy ~n_in
      in
      let ch =
        Characterize.run ?cache:state.cache ~rng ~mode program ~count
      in
      let approx = Approx.of_characterization ch in
      let options = { Verify.default_options with solver } in
      let verdict =
        Verify.validate ~options ~rng ~confirm:program ?cache:state.cache
          approx assertion
      in
      let verified =
        match verdict with
        | Verify.Verified { confidence; max_objective } ->
            emit
              (event id
                 [
                   ("event", Jsonx.Str "verdict");
                   ("verified", Jsonx.Bool true);
                   ("max_objective", Jsonx.Num max_objective);
                   ( "confidence",
                     Jsonx.Num confidence.Confidence.confidence );
                   ("epsilon", Jsonx.Num confidence.Confidence.epsilon);
                 ]);
            true
        | Verify.Violated { objective; _ } ->
            emit
              (event id
                 [
                   ("event", Jsonx.Str "verdict");
                   ("verified", Jsonx.Bool false);
                   ("objective", Jsonx.Num objective);
                 ]);
            false
      in
      emit
        (result_line ~rid id
           (verify_result ~t0 ~stats0 ~cache:state.cache
              ~verified:(verified && expects_ok) ~expects_ok
              ~executions:ch.Characterize.cost.Sim.Cost.executions
              ~shots:ch.Characterize.cost.Sim.Cost.shots))

(* ------------------------- request summaries --------------------------- *)

(* flat [name{k=v,...}] keys, matching the bench harness's counter-delta
   naming so a recorder summary reads like a BENCH_results entry *)
let flat_counter_name name labels =
  match labels with
  | [] -> name
  | ls ->
      name ^ "{"
      ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) ls)
      ^ "}"

let counter_entries () =
  List.filter_map
    (fun (e : Obs.Metrics.entry) ->
      match e.Obs.Metrics.data with
      | Obs.Metrics.Counter v ->
          Some (flat_counter_name e.Obs.Metrics.name e.Obs.Metrics.labels, v)
      | _ -> None)
    (Obs.Metrics.snapshot ())

let counter_delta before after =
  List.filter_map
    (fun (name, v) ->
      let b = Option.value ~default:0 (List.assoc_opt name before) in
      if v <> b then Some (name, v - b) else None)
    after

(* RED latency histogram edges (seconds): a warm cache hit lands in the
   first buckets, a cold multi-qubit characterization in the last *)
let latency_buckets = [| 0.001; 0.005; 0.02; 0.1; 0.5; 2.; 10. |]

let trace_event_jsonx (ev : Obs.Span.event) =
  let args =
    match ev.Obs.Span.attrs with
    | [] -> []
    | attrs ->
        [ ("args", Jsonx.Obj (List.map (fun (k, v) -> (k, Jsonx.Str v)) attrs)) ]
  in
  Jsonx.Obj
    ([
       ("name", Jsonx.Str ev.Obs.Span.name);
       ("cat", Jsonx.Str "morphqpv");
       ( "ph",
         Jsonx.Str
           (match ev.Obs.Span.ph with Obs.Span.B -> "B" | Obs.Span.E -> "E") );
       ("ts", Jsonx.Num ev.Obs.Span.ts_us);
       ("pid", Jsonx.int 1);
       ("tid", Jsonx.int ev.Obs.Span.tid);
     ]
    @ args)

let summary_jsonx (s : Recorder.summary) =
  Jsonx.Obj
    ([
       ("request_id", Jsonx.Str s.Recorder.rid);
       ("verb", Jsonx.Str s.Recorder.verb);
       ("ok", Jsonx.Bool s.Recorder.ok);
       ("seconds", Jsonx.Num s.Recorder.seconds);
       ("events", Jsonx.int (List.length s.Recorder.events));
       ( "counters",
         Jsonx.Obj
           (List.map (fun (k, v) -> (k, Jsonx.int v)) s.Recorder.counters) );
     ]
    @
    match s.Recorder.error with
    | None -> []
    | Some e -> [ ("error", Jsonx.Str e) ])

let bump_verb state verb ~ok =
  let st =
    match Hashtbl.find_opt state.by_verb verb with
    | Some st -> st
    | None ->
        let st = { vcount = 0; verrors = 0 } in
        Hashtbl.add state.by_verb verb st;
        st
  in
  st.vcount <- st.vcount + 1;
  if not ok then st.verrors <- st.verrors + 1

let by_verb_jsonx state =
  Jsonx.Obj
    (Hashtbl.fold
       (fun verb st acc ->
         ( verb,
           Jsonx.Obj
             [
               ("requests", Jsonx.int st.vcount);
               ("errors", Jsonx.int st.verrors);
             ] )
         :: acc)
       state.by_verb []
    |> List.sort (fun (a, _) (b, _) -> compare a b))

(* ----------------------------- dispatch ------------------------------- *)

let stats_result state =
  Jsonx.Obj
    [
      ("ok", Jsonx.Bool true);
      ("uptime_s", Jsonx.Num (Unix.gettimeofday () -. state.started));
      ("requests", Jsonx.int state.requests);
      ("cache", cache_json state.cache);
      ("by_verb", by_verb_jsonx state);
      ( "recent",
        Jsonx.List (List.map summary_jsonx (Recorder.recent state.recorder)) );
      ("recorded", Jsonx.int (Recorder.recorded state.recorder));
      ("span_dropped", Jsonx.int (Obs.Span.dropped ()));
      ("obs_enabled", Jsonx.Bool (Obs.enabled ()));
    ]

let trace_request state ~emit ~id ~rid params =
  let target =
    match Jsonx.mem_str "request_id" params with
    | Some s -> s
    | None -> failf "missing %S param" "request_id"
  in
  match Recorder.find state.recorder target with
  | None -> failf "unknown request id %S" target
  | Some s ->
      emit
        (result_line ~rid id
           (Jsonx.Obj
              [
                ("ok", Jsonx.Bool true);
                ("request_id", Jsonx.Str s.Recorder.rid);
                ("verb", Jsonx.Str s.Recorder.verb);
                ("request_ok", Jsonx.Bool s.Recorder.ok);
                ("seconds", Jsonx.Num s.Recorder.seconds);
                ("events", Jsonx.int (List.length s.Recorder.events));
                ( "trace",
                  Jsonx.List
                    (List.map trace_event_jsonx s.Recorder.events) );
              ]))

let dispatch state ~emit ~id ~rid meth params =
  match meth with
  | Some "ping" ->
      emit (result_line ~rid id (Jsonx.Obj [ ("ok", Jsonx.Bool true) ]));
      `Continue
  | Some "stats" ->
      emit (result_line ~rid id (stats_result state));
      `Continue
  | Some "metrics" ->
      emit
        (result_line ~rid id
           (Jsonx.Obj
              [
                ("ok", Jsonx.Bool true);
                ("prometheus", Jsonx.Str (Obs.Export.prometheus ()));
              ]));
      `Continue
  | Some "trace" ->
      trace_request state ~emit ~id ~rid params;
      `Continue
  | Some "verify" ->
      verify_request state ~emit ~id ~rid params;
      `Continue
  | Some "shutdown" ->
      emit
        (result_line ~rid id
           (Jsonx.Obj
              [ ("ok", Jsonx.Bool true); ("stopping", Jsonx.Bool true) ]));
      `Stop
  | Some m -> failf "unknown method %S" m
  | None -> raise (Fail "missing \"method\"")

(* Wrap one RPC with the observability envelope: request-scoped context
   (so every span/log line below carries the id), RED metrics, the flight-
   recorder entry (with mark-bounded span capture — pool-worker events
   land between the two marks even though the context slot is domain-
   local), and mark-based ring reclaim so the daemon's span rings never
   saturate across requests. *)
let handle_request state ~emit ~id ~rid ~verb meth params =
  let t0 = Unix.gettimeofday () in
  let mark0 = Obs.Span.mark () in
  let counters0 = if Obs.enabled () then counter_entries () else [] in
  Obs.Log.emit Obs.Log.Info "request.start"
    [ ("req", Obs.Log.S rid); ("verb", Obs.Log.S verb) ];
  let failed = ref None in
  let ret =
    Obs.Context.with_request rid (fun () ->
        Obs.Span.with_ ~name:"server.request" ~attrs:[ ("verb", verb) ]
          (fun () ->
            try dispatch state ~emit ~id ~rid meth params with
            | Fail msg ->
                failed := Some msg;
                emit (error_line ~rid id msg);
                `Continue
            | exn ->
                let msg = Printexc.to_string exn in
                failed := Some msg;
                emit (error_line ~rid id msg);
                `Continue))
  in
  let seconds = Unix.gettimeofday () -. t0 in
  let mark1 = Obs.Span.mark () in
  let ok = Option.is_none !failed in
  let counters =
    if Obs.enabled () then counter_delta counters0 (counter_entries ()) else []
  in
  bump_verb state verb ~ok;
  Obs.Metrics.counter_add ~labels:[ ("verb", verb) ] "requests_total" 1;
  if not ok then
    Obs.Metrics.counter_add ~labels:[ ("verb", verb) ] "request_errors_total" 1;
  Obs.Metrics.observe ~labels:[ ("verb", verb) ] ~buckets:latency_buckets
    "request_seconds" seconds;
  (match state.cache with
  | Some c ->
      let s : Cache.stats = Cache.stats c in
      let total = s.hits + s.misses in
      if total > 0 then
        Obs.Metrics.gauge_set "cache_hit_ratio"
          (float_of_int s.hits /. float_of_int total)
  | None -> ());
  let events =
    if Obs.enabled () then Obs.Span.events ~since:mark0 ~until:mark1 ()
    else []
  in
  Recorder.record state.recorder
    { Recorder.rid; verb; seconds; ok; error = !failed; counters; events };
  if Obs.enabled () then Obs.Span.reclaim ~before:mark1 ();
  Obs.Log.emit
    (if ok then Obs.Log.Info else Obs.Log.Warn)
    "request.finish"
    ([
       ("req", Obs.Log.S rid);
       ("verb", Obs.Log.S verb);
       ("ok", Obs.Log.B ok);
       ("seconds", Obs.Log.F seconds);
       ("events", Obs.Log.I (List.length events));
     ]
    @
    match !failed with
    | None -> []
    | Some e -> [ ("error", Obs.Log.S e) ]);
  ret

let handle_line state ~emit line =
  if String.trim line = "" then `Continue
  else
    match Jsonx.parse line with
    | Error e ->
        emit (error_line Jsonx.Null ("bad request json: " ^ e));
        `Continue
    | Ok req ->
        let id = Option.value ~default:Jsonx.Null (Jsonx.member "id" req) in
        let params =
          Option.value ~default:(Jsonx.Obj []) (Jsonx.member "params" req)
        in
        let meth = Jsonx.mem_str "method" req in
        let verb = Option.value ~default:"unknown" meth in
        let rid =
          (* client-supplied (top-level "request_id") or generated *)
          match Jsonx.mem_str "request_id" req with
          | Some r when String.trim r <> "" -> r
          | _ ->
              state.next_rid <- state.next_rid + 1;
              Printf.sprintf "req-%d" state.next_rid
        in
        state.requests <- state.requests + 1;
        handle_request state ~emit ~id ~rid ~verb meth params

(* ------------------------------ transport ----------------------------- *)

let bind_socket = function
  | Unix_path path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind sock (Unix.ADDR_UNIX path);
      sock
  | Tcp port ->
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      sock

let handle_connection state stop fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let emit v =
    output_string oc (Jsonx.to_string v);
    output_char oc '\n';
    flush oc
  in
  (try
     let rec loop () =
       if not !stop then
         match input_line ic with
         | exception End_of_file -> ()
         | line -> (
             match handle_line state ~emit line with
             | `Continue -> loop ()
             | `Stop -> stop := true)
     in
     loop ()
   with Sys_error _ | Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let serve ?cache ?certify ?(on_ready = fun () -> ()) addr =
  let state = make_state ?cache ?certify () in
  let stop = ref false in
  let old_int =
    Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true))
  in
  let old_term =
    Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop := true))
  in
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let sock = bind_socket addr in
  let finally () =
    (try Unix.close sock with Unix.Unix_error _ -> ());
    (match addr with
    | Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
    | Tcp _ -> ());
    Sys.set_signal Sys.sigint old_int;
    Sys.set_signal Sys.sigterm old_term;
    Sys.set_signal Sys.sigpipe old_pipe
  in
  Fun.protect ~finally (fun () ->
      Unix.listen sock 16;
      on_ready ();
      while not !stop do
        (* short select timeout keeps the loop responsive to SIGINT /
           SIGTERM even when no client ever connects *)
        match Unix.select [ sock ] [] [] 0.25 with
        | [], _, _ -> ()
        | _ :: _, _, _ ->
            let fd, _ = Unix.accept sock in
            handle_connection state stop fd
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done)

module Client = struct
  let connect = function
    | Unix_path path ->
        let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect s (Unix.ADDR_UNIX path);
        s
    | Tcp port ->
        let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect s (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        s

  let request ?(on_event = fun _ -> ()) addr req =
    match connect addr with
    | exception Unix.Unix_error (e, _, _) ->
        Error (Printf.sprintf "connect: %s" (Unix.error_message e))
    | fd ->
        let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
        Fun.protect ~finally (fun () ->
            let oc = Unix.out_channel_of_descr fd in
            let ic = Unix.in_channel_of_descr fd in
            output_string oc (Jsonx.to_string req);
            output_char oc '\n';
            flush oc;
            let rec read () =
              match input_line ic with
              | exception End_of_file ->
                  Error "connection closed before a result"
              | line -> (
                  match Jsonx.parse line with
                  | Error e -> Error ("bad response json: " ^ e)
                  | Ok v ->
                      if
                        Option.is_some (Jsonx.member "result" v)
                        || Option.is_some (Jsonx.member "error" v)
                      then Ok v
                      else begin
                        on_event v;
                        read ()
                      end)
            in
            read ())
end
