(** A program under verification: a circuit plus the designation of which
    qubits carry the (variable) input state. Non-input qubits start in
    [|0>]. Tracepoint id 0 is reserved for the input itself. *)

type t = { circuit : Circuit.t; input_qubits : int list }

(** [make ?input_qubits circuit] defaults to all qubits being input. *)
val make : ?input_qubits:int list -> Circuit.t -> t

(** [num_input_qubits p] is the size of the variable input. *)
val num_input_qubits : t -> int

(** [embed p input] lifts a state on the input qubits to a full-register
    initial state (zeros elsewhere). *)
val embed : t -> Qstate.Statevec.t -> Qstate.Statevec.t

(** [run_traces ?pool ?rng ?noise ?trajectories ?meter p ~input] executes the
    program on the given input state and returns tracepoint states, with the
    reserved id 0 mapping to the input's density matrix. [pool] is forwarded
    to [Sim.Engine.tracepoint_states] for parallel trajectory averaging. *)
val run_traces :
  ?pool:Parallel.Pool.t ->
  ?rng:Stats.Rng.t ->
  ?noise:Sim.Noise.t ->
  ?trajectories:int ->
  ?meter:Sim.Cost.t ->
  t ->
  input:Qstate.Statevec.t ->
  (int * Linalg.Cmat.t) list

(** [tracepoint_ids p] lists tracepoint ids in program order (without the
    reserved 0). *)
val tracepoint_ids : t -> int list
