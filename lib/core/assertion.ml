type t = {
  name : string;
  assumes : Predicate.t list;
  guarantees : Predicate.t list;
}

let make ?(name = "assert") ~assumes ~guarantees () =
  if guarantees = [] then invalid_arg "Assertion.make: no guarantees";
  { name; assumes; guarantees }

let holds ?tol t env =
  (not (List.for_all (fun p -> Predicate.holds ?tol p env) t.assumes))
  || List.for_all (fun p -> Predicate.holds ?tol p env) t.guarantees

module Dist = struct
  type t = { expected : (int * float) list; significance : float }

  let make ?(significance = 0.05) expected =
    if significance <= 0. || significance >= 1. then
      invalid_arg "Assertion.Dist.make: significance must be in (0, 1)";
    if expected = [] then invalid_arg "Assertion.Dist.make: empty distribution";
    let seen = Hashtbl.create 8 in
    List.iter
      (fun (k, p) ->
        if k < 0 then invalid_arg "Assertion.Dist.make: negative basis index";
        if Hashtbl.mem seen k then
          invalid_arg "Assertion.Dist.make: duplicate basis index";
        Hashtbl.add seen k ();
        if p < 0. || p > 1. then
          invalid_arg "Assertion.Dist.make: probability outside [0, 1]")
      expected;
    let total = List.fold_left (fun acc (_, p) -> acc +. p) 0. expected in
    if total > 1. +. 1e-9 then
      invalid_arg "Assertion.Dist.make: probabilities sum past 1";
    { expected = List.sort compare expected; significance }

  (* probability mass the expectation leaves to unlisted outcomes *)
  let other_mass t =
    Float.max 0.
      (1. -. List.fold_left (fun acc (_, p) -> acc +. p) 0. t.expected)

  let describe t =
    Printf.sprintf "expect(%g) %s" t.significance
      (String.concat ", "
         (List.map (fun (k, p) -> Printf.sprintf "%d %g" k p) t.expected))
end

let tracepoints t =
  List.sort_uniq compare
    (List.concat_map Predicate.tracepoints (t.assumes @ t.guarantees))

let describe t =
  Printf.sprintf "%s: assume {%s} guarantee {%s}" t.name
    (String.concat "; " (List.map Predicate.describe t.assumes))
    (String.concat "; " (List.map Predicate.describe t.guarantees))
