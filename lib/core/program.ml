open Qstate

type t = { circuit : Circuit.t; input_qubits : int list }

let make ?input_qubits circuit =
  let n = Circuit.num_qubits circuit in
  let input_qubits =
    match input_qubits with
    | Some qs ->
        List.iter
          (fun q ->
            if q < 0 || q >= n then
              invalid_arg "Program.make: input qubit out of range")
          qs;
        qs
    | None -> List.init n (fun q -> q)
  in
  { circuit; input_qubits }

let num_input_qubits p = List.length p.input_qubits

let embed p input =
  let n = Circuit.num_qubits p.circuit in
  let k = num_input_qubits p in
  if Statevec.num_qubits input <> k then
    invalid_arg "Program.embed: input size mismatch";
  if k = n && p.input_qubits = List.init n (fun q -> q) then Statevec.copy input
  else begin
    let qs = Array.of_list p.input_qubits in
    let full = Statevec.zero n in
    Statevec.set_amplitude full 0 Linalg.Cx.zero;
    let d_in = Statevec.dim input in
    for a = 0 to d_in - 1 do
      let idx = ref 0 in
      Array.iteri
        (fun j q -> if (a lsr j) land 1 = 1 then idx := !idx lor (1 lsl q))
        qs;
      Statevec.set_amplitude full !idx (Statevec.amplitude input a)
    done;
    full
  end

let run_traces ?pool ?rng ?noise ?trajectories ?meter p ~input =
  let initial = embed p input in
  let traces =
    Sim.Engine.tracepoint_states ?pool ?rng ?noise ?trajectories ?meter
      ~initial p.circuit
  in
  let v = Statevec.to_cvec input in
  (0, Linalg.Cmat.outer v v) :: traces

let tracepoint_ids p = List.map fst (Circuit.tracepoints p.circuit)
