(** Input sampling (Section 5.1): run the program under a set of sampled
    inputs and record the state at every tracepoint.

    Tracepoint states can be taken exactly from the simulator ([Exact]), or
    passed through simulated state tomography with finite shots
    ([Tomography]) as on real hardware, or reduced to the diagonal only
    ([Probs_only] — the paper's Strategy-prop). The cost meter accounts the
    quantum executions the chosen mode would need on a device. *)

type mode =
  | Exact
  | Tomography of { shots : int; project : bool }
  | Probs_only of { shots : int }

type sample = {
  input_state : Qstate.Statevec.t;
  input_dm : Linalg.Cmat.t;
  traces : (int * Linalg.Cmat.t) list;  (** includes the reserved input id 0 *)
}

type t = {
  program : Program.t;
  samples : sample array;
  mode : mode;
  cost : Sim.Cost.t;
  obs : Obs.Span.summary;
      (** per-phase span summary of this run (empty unless observability
          was enabled — [MORPHQPV_OBS=1] or [Obs.configure]) *)
}

(** Execution engine selection. [`Batched] compiles the program once into
    fused segment operators ([Transpile.Segments]) and runs all sampled
    inputs — and, for stochastic programs, all their trajectories — as
    columns of one packed [Sim.Batch] buffer; it requires ideal noise.
    [`Sequential] re-walks the circuit per sample with [Engine]. [`Auto]
    (the default) picks batched exactly when the noise model is ideal —
    except that [Basis]-kind sampling of an ideal, deterministic,
    all-Clifford program with narrow tracepoint lightcones
    ([Sim.Engine.stabilizer_applicable]) routes each sample to the
    stabilizer tableau restricted to each tracepoint's cone. The routing
    condition is purely static (program text only, never sampled values);
    programs outside it take exactly the pre-routing code path and
    generator streams. *)
type engine = [ `Auto | `Batched | `Sequential ]

(** [run ?pool ?rng ?kind ?mode ?noise ?trajectories ?engine ?inputs program
    ~count] samples [count] inputs of the given [kind] (default
    [Clifford]); an explicit [inputs] list overrides kind/count (used by
    Strategy-adapt). Sampled inputs are characterized in parallel on [pool]
    (default [Parallel.Pool.global ()]), each with its own
    [Stats.Rng.split] child generator and private cost meter; meters are
    merged in sample order, so results and cost totals are identical for
    any domain count — under either engine, which also consume identical
    generator streams (the batched engine's traces agree with the
    sequential ones to ~1e-15, the reordering error of fused-segment
    arithmetic). [budget] selects the shot policy for the Tomography /
    Probs_only degradation modes (see {!Tomography.State_tomo.run}):
    absent or [`Fixed], behavior and generator streams are exactly the
    pre-budget ones; [`Sequential] stops each estimate early once it is
    variance-matched to the [max_shots] fixed equivalent, recording the
    saving in [verify_shots_saved_total].

    [cache] switches to the content-addressed incremental path. Ideal,
    deterministic programs are characterized one backward cone at a time:
    each tracepoint's unit (its cone plus the input qubits, in canonical
    qubit order — {!Cache.Canon.cone_unit}) is keyed by canonical bytes,
    input fingerprint, entry-generator fingerprint and mode, so a warm
    re-verification performs zero simulation and zero tomography shots,
    and an edited program re-characterizes only tracepoints whose cone
    hash changed. Every cached value is a pure function of its key —
    tomography degradation draws from a generator derived from (key,
    sample index), never the caller's stream — so hits are
    bit-indistinguishable from recomputation, across eviction and
    persistence reload. The caller's generator is consumed exactly as on
    the uncached path (sampled inputs + one split child per sample) even
    on full hits, so downstream draws are position-independent of cache
    state. Stochastic / noisy / wider-than-cacheable programs fall back
    to a whole-result memo keyed by the exact circuit bytes; programs the
    scalable-engine route would take run uncached. Without [cache] the
    behavior is byte-for-byte the pre-cache one.

    [wall] overrides {!Sim.Engine.dense_amp_wall} for this run's routing
    decision without touching the global (safe under concurrency). *)
val run :
  ?pool:Parallel.Pool.t ->
  ?rng:Stats.Rng.t ->
  ?kind:Clifford.Sampling.kind ->
  ?mode:mode ->
  ?budget:Stats.Tests.budget ->
  ?noise:Sim.Noise.t ->
  ?trajectories:int ->
  ?engine:engine ->
  ?inputs:Qstate.Statevec.t list ->
  ?cache:Cache.t ->
  ?wall:float ->
  Program.t ->
  count:int ->
  t

(** [tracepoint_ids t] lists the recorded tracepoint ids (including 0). *)
val tracepoint_ids : t -> int list
