(** Assertion validation (Section 6): pack the guarantee objective and the
    assumption constraints into a constrained maximization over the
    decomposition coefficients [alpha] and solve it classically.

    The candidate input is [rho(alpha) = sum alpha_i sigma_in_i], kept
    physical by Hermitian symmetrization and trace normalization inside the
    objective (cheap) with a final PSD projection on the reported
    counter-example. The assertion holds when the maximal guarantee
    objective stays [<= epsilon_obj]. *)

type verdict =
  | Verified of {
      confidence : Confidence.t;
      max_objective : float;  (** best guarantee violation found (<= tolerance) *)
    }
  | Violated of {
      counterexample : Linalg.Cmat.t;  (** input density matrix triggering the bug *)
      alpha : float array;
      objective : float;
    }

type options = {
  solver : Optimize.Solvers.method_;
  budget : int;  (** objective-evaluation budget *)
  epsilon_obj : float;  (** violation tolerance on the guarantee objective *)
  epsilon_acc : float;  (** accuracy threshold for confidence (Theorem 3) *)
  recovery : Approx.recovery;
  projection : [ `Trace | `Psd ];
      (** how candidate states are made physical inside the objective:
          trace normalization only (cheap) or a full PSD projection
          (slower, much tighter search space) *)
  restarts : int;  (** independent optimization attempts *)
}

val default_options : options

(** [validate ?options ?rng ?confirm approx assertion] solves the
    constrained maximization and returns the verdict. When [confirm] is
    given, a candidate counter-example is replayed on the actual program
    (dominant eigenvector input, plus its nearest basis state) and demoted
    to [Verified] if the real execution satisfies the assertion —
    eliminating optimizer artifacts, as the paper's validation step does by
    reporting concrete counter-examples.

    [cache] memoizes the verdict, keyed by the approximation's data (its
    characterized relation), the assertion, [options], the entry
    generator fingerprint and the confirmation program — a pure function
    of all verdict inputs. A hit skips the solve entirely and therefore
    does not advance [rng]; pass a generator whose continuation nothing
    else relies on. *)
val validate :
  ?options:options ->
  ?rng:Stats.Rng.t ->
  ?confirm:Program.t ->
  ?cache:Cache.t ->
  Approx.t ->
  Assertion.t ->
  verdict

(** [validate_traced] is {!validate} plus the span-tree summary of the
    verification's own work (solver spans included). The summary is empty
    unless observability is enabled ([MORPHQPV_OBS=1] or
    [Obs.configure]). *)
val validate_traced :
  ?options:options ->
  ?rng:Stats.Rng.t ->
  ?confirm:Program.t ->
  ?cache:Cache.t ->
  Approx.t ->
  Assertion.t ->
  verdict * Obs.Span.summary

(** [check_on_program ?rng ?tol program assertion ~input] executes the
    program on one concrete input and evaluates the assertion on the true
    tracepoint states — used to confirm counter-examples and as the
    ground-truth oracle in experiments. Mixed-state inputs are checked via
    their eigenvector decomposition's dominant component. *)
val check_on_program :
  ?rng:Stats.Rng.t ->
  ?tol:float ->
  Program.t ->
  Assertion.t ->
  input:Qstate.Statevec.t ->
  bool

(** [minimize_counterexample ?rng ?tol program assertion ~counterexample]
    simplifies a violating input for human consumption: it tries, in order,
    the nearest computational-basis state, each basis state the
    counter-example puts significant weight on, and the dominant
    eigenvector, returning the simplest pure input that still violates the
    assertion on the real program (falling back to the dominant eigenvector
    when only the mixed state violates). *)
val minimize_counterexample :
  ?rng:Stats.Rng.t ->
  ?tol:float ->
  Program.t ->
  Assertion.t ->
  counterexample:Linalg.Cmat.t ->
  Qstate.Statevec.t

(** Verdict of a distribution-level assertion on measurement counts. *)
type counts_result = {
  counts_hold : bool;  (** the observed counts are consistent with the
                           expected distribution *)
  test : Stats.Tests.result;
      (** chi-square goodness-of-fit on the counts actually taken, so the
          verdict can be independently re-derived from recorded data *)
  shots_used : int;
  early_stop : bool;  (** a sequential budget stopped before [max_shots] *)
}

(** [check_counts ?budget ?rng ?noise program dist ~input] samples the
    program's final measurement distribution on [input] and tests it
    against the expected distribution [dist] (see {!Assertion.Dist}).

    With [`Fixed shots] (default 2048): one chi-square goodness-of-fit
    test at [dist.significance], pooling all unlisted outcomes into one
    category. With [`Sequential {alpha; beta; max_shots}]: shots are
    drawn in blocks feeding a Wald SPRT of the expected distribution
    against a 20% contamination alternative (uniform over all 2^n
    outcomes); each interim look additionally rejects outright on an
    overwhelming chi-square (Haybittle–Peto boundary,
    [min 0.001 (alpha / 10)]) to catch deviation directions the mixture
    cannot represent. Crossing either boundary stops early
    ([verify_early_stop_total], shots saved in
    [verify_shots_saved_total]); reaching [max_shots] falls back to the
    fixed-budget chi-square rule at level [alpha] — so the two budgets
    agree by construction once the cap is reached, and always on
    point-mass (deterministic) distributions. An outcome the expectation
    gives zero mass is an immediate certain violation. *)
val check_counts :
  ?budget:Stats.Tests.budget ->
  ?rng:Stats.Rng.t ->
  ?noise:Sim.Noise.t ->
  Program.t ->
  Assertion.Dist.t ->
  input:Qstate.Statevec.t ->
  counts_result

(** Result of sequential assertion probing over random inputs. *)
type probe_result = {
  probe_holds : bool;
  trials : int;
  failures : int;  (** inputs on which the assertion failed *)
  probe_early_stop : bool;
  counterexample_input : Qstate.Statevec.t option;
      (** first violating input, when any *)
}

(** [probe_assertion ?rng ?tol ?budget program assertion] draws Haar-random
    inputs and checks the assertion on the real program per input
    ({!check_on_program}), treating each input as a Bernoulli trial of the
    violation rate. [`Fixed n] (default 32) runs exactly [n] trials and
    holds iff none fail. [`Sequential] runs a Bernoulli SPRT of
    "violation rate <= 1%" against ">= 25%": one observed violation
    rejects immediately at the default boundaries, ~14 consecutive passes
    accept early; at [max_shots] the fixed rule applies. *)
val probe_assertion :
  ?rng:Stats.Rng.t ->
  ?tol:float ->
  ?budget:Stats.Tests.budget ->
  Program.t ->
  Assertion.t ->
  probe_result

(** [probe_accuracies ?rng ?count approx program ~tracepoint] measures
    approximation accuracy on random Haar inputs against fresh program
    executions (feeds {!Confidence.estimate} and the accuracy figures). *)
val probe_accuracies :
  ?rng:Stats.Rng.t ->
  ?count:int ->
  Approx.t ->
  Program.t ->
  tracepoint:int ->
  float array

(** Result of a certified transpile run ({!certify_transpile}). *)
type certify_report = {
  certified : bool;  (** every obligation discharged by the checker *)
  cert_summary : Transpile.Certify.summary;
  cert_failures : Transpile.Certify.failure list;
      (** empty iff [certified]; each failure maps to lint code MQ021 *)
  cert_plan : Sim.Batch.plan;
}

(** [certify_transpile ?cache ?locs c] runs the full transpile pipeline the
    verifier uses — peephole optimization to a fixed point, lightcone
    pruning, segment compilation — through the certificate-emitting pass
    variants and validates the whole chain with the independent checker
    ({!Transpile.Certify.check_plan}). [locs] gives per-instruction source
    locations of [c] for diagnostics. With [cache], the (plan, certificate)
    pair is memoized under a key prefix disjoint from the uncertified plan
    cache, and the certificate is re-checked even on a cache hit. *)
val certify_transpile :
  ?cache:Cache.t ->
  ?locs:(int * int) array ->
  Circuit.t ->
  certify_report
