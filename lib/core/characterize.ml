open Linalg

type mode =
  | Exact
  | Tomography of { shots : int; project : bool }
  | Probs_only of { shots : int }

type sample = {
  input_state : Qstate.Statevec.t;
  input_dm : Cmat.t;
  traces : (int * Cmat.t) list;
}

type t = {
  program : Program.t;
  samples : sample array;
  mode : mode;
  cost : Sim.Cost.t;
  obs : Obs.Span.summary;
}


let degrade ?budget rng mode cost circuit (id, exact) =
  match mode with
  | Exact ->
      Sim.Cost.record_many cost circuit ~circuits:1 ~shots_each:1;
      (id, exact)
  | Tomography { shots; project } ->
      let tomo =
        Tomography.State_tomo.run ~project ?budget rng ~shots ~truth:exact ()
      in
      Sim.Cost.record_total cost circuit
        ~executions:tomo.Tomography.State_tomo.settings
        ~total_shots:tomo.Tomography.State_tomo.shots_used;
      (id, tomo.Tomography.State_tomo.rho)
  | Probs_only { shots } ->
      let tomo =
        Tomography.State_tomo.probs_only ?budget rng ~shots ~truth:exact ()
      in
      Sim.Cost.record_total cost circuit ~executions:1
        ~total_shots:tomo.Tomography.State_tomo.shots_used;
      (id, tomo.Tomography.State_tomo.rho)

type engine = [ `Auto | `Batched | `Sequential ]

(* average per-trajectory trace lists exactly as [Engine.tracepoint_states]
   does: first-seen id order, in-trajectory-order adds, one final rescale *)
let average_traces trajectories per_traj =
  let acc = Hashtbl.create 8 in
  let order = ref [] in
  Array.iter
    (fun traces ->
      List.iter
        (fun (id, m) ->
          match Hashtbl.find_opt acc id with
          | None ->
              order := id :: !order;
              Hashtbl.add acc id m
          | Some prev -> Hashtbl.replace acc id (Cmat.add prev m))
        traces)
    per_traj;
  List.rev_map
    (fun id ->
      (id, Cmat.rscale (1. /. float_of_int trajectories) (Hashtbl.find acc id)))
    !order

let run_uncached ?pool ?rng ?(kind = Clifford.Sampling.Clifford) ?(mode = Exact)
    ?budget ?noise ?trajectories ?(engine = `Auto) ?inputs ?wall program ~count =
  (* watermark first, so the summary covers the [characterize.run] span
     itself once it closes — plus everything nested under it *)
  let since = Obs.Span.mark () in
  let result =
    Obs.Span.with_ ~name:"characterize.run"
      ~attrs:[ ("count", string_of_int count) ]
    @@ fun () ->
  let rng = match rng with Some r -> r | None -> Stats.Rng.make 7 in
  let pool = match pool with Some p -> p | None -> Parallel.Pool.global () in
  let k = Program.num_input_qubits program in
  let input_states =
    match inputs with
    | Some states ->
        List.iter
          (fun st ->
            if Qstate.Statevec.num_qubits st <> k then
              invalid_arg "Characterize.run: input size mismatch")
          states;
        states
    | None ->
        List.init count (fun index -> Clifford.Sampling.state rng kind k ~index)
  in
  (* fan sampled inputs across the pool: one split child generator and one
     private cost meter per sample, derived/merged in index order so the
     characterization is bit-identical for any domain count *)
  let inputs_arr = Array.of_list input_states in
  let n = Array.length inputs_arr in
  let rngs = Array.init n (Stats.Rng.split rng) in
  let ideal = match noise with None -> true | Some nz -> Sim.Noise.is_ideal nz in
  let batched =
    match engine with
    | `Sequential -> false
    | `Auto -> ideal
    | `Batched ->
        if not ideal then
          invalid_arg "Characterize.run: batched engine requires ideal noise";
        true
  in
  let cost = Sim.Cost.create () in
  (* Batched path: compile the circuit once into fused segment operators and
     run every sampled input as one column of a packed batch, instead of
     re-walking the circuit gate by gate per sample. Trace values agree with
     the sequential path to ~1e-15 (fusion reorders segment arithmetic);
     generator streams, cost accounting and the batched engine's own results
     are bit-identical for any domain count. *)
  let batch_traces () =
    let circuit = program.Program.circuit in
    let plan = Transpile.Segments.compile circuit in
    if Sim.Batch.is_deterministic plan then
      Sim.Batch.run_traces ~pool plan ~count:n ~init:(fun i ->
          Program.embed program inputs_arr.(i))
    else begin
      let t = Option.value trajectories ~default:64 in
      (* one column per sample x trajectory, seeded with exactly the split
         children the sequential trajectory fan-out would derive — so each
         sample generator's stream position (consumed below by [degrade])
         is unchanged *)
      let per_sample =
        Array.map (fun r -> Array.init t (Stats.Rng.split r)) rngs
      in
      let col_rngs = Array.concat (Array.to_list per_sample) in
      let per_col =
        Sim.Batch.run_traces ~pool ~rngs:col_rngs plan ~count:(n * t)
          ~init:(fun col -> Program.embed program inputs_arr.(col / t))
      in
      Array.init n (fun i -> average_traces t (Array.sub per_col (i * t) t))
    end
  in
  (* Scalable-engine auto-routing: with basis-state inputs on an ideal
     program, [Sim.Engine.auto_route] may send each sample to the
     stabilizer tableau (Clifford programs), the sparse coordinate
     engine (provably low-occupancy programs) or the sum-over-
     stabilizers engine (near-Clifford programs) — each a lightcone-
     restricted run per tracepoint instead of a full state-vector pass.
     The decision is purely static — never a function of sampled
     values — so programs outside the condition take exactly the code
     path (and generator streams) they did before the routing existed.
     Basis inputs are exact one-hot amplitudes, so recovering the
     preparation index below is exact — and sidesteps [Program.embed]'s
     dense allocation, which cannot exist at 28+ qubits. *)
  let route =
    if
      (match engine with `Auto -> true | `Batched | `Sequential -> false)
      && Option.is_none inputs
      && kind = Clifford.Sampling.Basis && ideal
    then Sim.Engine.auto_route ?wall program.Program.circuit
    else None
  in
  let basis_index st =
    let d = Qstate.Statevec.dim st in
    let rec go k found =
      if k = d then found
      else
        match Qstate.Statevec.amplitude st k with
        | { Complex.re = 1.0; im = 0.0 } -> (
            match found with None -> go (k + 1) (Some k) | Some _ -> None)
        | { Complex.re = 0.0; im = 0.0 } -> go (k + 1) found
        | _ -> None
    in
    go 0 None
  in
  (* full-register preparation index for a one-hot [k]-qubit input:
     bit [j] of the input index sits on [input_qubits.(j)], exactly as
     [Program.embed] would place it *)
  let route_prep st =
    match basis_index st with
    | None -> None
    | Some a ->
        Some
          (List.fold_left
             (fun (acc, j) q ->
               ((if (a lsr j) land 1 = 1 then acc lor (1 lsl q) else acc), j + 1))
             (0, 0) program.Program.input_qubits
          |> fst)
  in
  let batched_traces =
    if batched && route = None then Some (batch_traces ()) else None
  in
  let samples =
    Parallel.Pool.map_init pool n (fun i ->
        Obs.Span.with_ ~name:"characterize.sample" @@ fun () ->
        let rng = rngs.(i) in
        let sample_cost = Sim.Cost.create () in
        let input_state = inputs_arr.(i) in
        let prep =
          match route with Some _ -> route_prep input_state | None -> None
        in
        let traces =
          match (route, prep, batched_traces) with
          | Some engine, Some prep, _ ->
              let v = Qstate.Statevec.to_cvec input_state in
              let circuit = program.Program.circuit in
              (0, Cmat.outer v v)
              ::
              (match engine with
              | `Stabilizer -> Sim.Engine.stabilizer_traces ~prep circuit
              | `Sparse -> Sim.Engine.sparse_traces ~prep circuit
              | `Rank -> Sim.Engine.rank_traces ~prep circuit)
          | _, _, Some all ->
              let v = Qstate.Statevec.to_cvec input_state in
              (0, Cmat.outer v v) :: all.(i)
          | _, _, None ->
              Program.run_traces ~pool ?noise ?trajectories ~rng program
                ~input:input_state
        in
        let traces =
          List.map
            (fun (id, m) ->
              if id = 0 then (id, m)
              else
                degrade ?budget rng mode sample_cost program.Program.circuit
                  (id, m))
            traces
        in
        let v = Qstate.Statevec.to_cvec input_state in
        ({ input_state; input_dm = Cmat.outer v v; traces }, sample_cost))
  in
  Array.iter (fun (_, c) -> Sim.Cost.add cost c) samples;
  { program; samples = Array.map fst samples; mode; cost; obs = [] }
  in
  { result with obs = Obs.Span.summary ~since () }

(* ----------------- content-addressed incremental path ----------------- *)

(* The cache invariant every entry obeys: the stored value is a pure
   function of its key. Keys fold in every run parameter the value
   depends on — canonical unit bytes (or exact circuit bytes), the input
   fingerprint, the entry generator fingerprint, mode/budget — so a hit
   is bit-indistinguishable from recomputation, across eviction and
   persistence reload. *)

let ns_characterize = "characterize"

(* per-unit dense simulation allocates [2^width] amplitudes; past this
   width the incremental path would defeat the scalable-engine routing,
   so such programs fall back to the uncached path (Basis-routed scale
   programs) or whole-result caching *)
let unit_width_cap = 22

let statevec_fp st = Marshal.to_string (st : Qstate.Statevec.t) []

let inputs_fingerprint ~kind ~count inputs =
  match inputs with
  | None -> "kind" ^ Marshal.to_string (kind, count) []
  | Some states ->
      "explicit"
      ^ Cache.Canon.digest (String.concat "" (List.map statevec_fp states))

(* one degraded trace per sample for one cone, simulated in the unit's
   canonical qubit order so the computation is literally a function of the
   unit bytes. Tomography degradation draws from a generator derived from
   (cache key, sample index): independent of which other cones hit the
   cache, and of the caller's stream. *)
let compute_unit ~pool ~cost ~mode ~budget ~key circuit
    (cone : Analysis.Lightcone.cone) (u : Cache.Canon.unit_circuit) inputs_arr =
  let n = Array.length inputs_arr in
  let k = if n = 0 then 0 else Qstate.Statevec.num_qubits inputs_arr.(0) in
  let embed_input input =
    let st = Qstate.Statevec.zero u.Cache.Canon.width in
    for a = 0 to Qstate.Statevec.dim input - 1 do
      let idx = ref 0 in
      for j = 0 to k - 1 do
        if (a lsr j) land 1 = 1 then
          idx := !idx lor (1 lsl u.Cache.Canon.embed.(j))
      done;
      Qstate.Statevec.set_amplitude st !idx (Qstate.Statevec.amplitude input a)
    done;
    st
  in
  let results =
    Parallel.Pool.map_init pool n (fun i ->
        Obs.Span.with_ ~name:"characterize.unit" @@ fun () ->
        let meter = Sim.Cost.create () in
        let out =
          Sim.Engine.run ~initial:(embed_input inputs_arr.(i))
            u.Cache.Canon.circuit
        in
        let exact = List.assoc cone.Analysis.Lightcone.id out.Sim.Engine.traces in
        let drng =
          Stats.Rng.make
            (Cache.Fnv.seed_of_string (Printf.sprintf "%s#%d" key i))
        in
        let _, dm =
          degrade ?budget drng mode meter circuit
            (cone.Analysis.Lightcone.id, exact)
        in
        (dm, meter))
  in
  Array.iter (fun (_, m) -> Sim.Cost.add cost m) results;
  Array.map fst results

let run_cached cache ?pool ?rng ?(kind = Clifford.Sampling.Clifford)
    ?(mode = Exact) ?budget ?noise ?trajectories ?(engine = `Auto) ?inputs
    ?wall program ~count =
  let since = Obs.Span.mark () in
  let result =
    Obs.Span.with_ ~name:"characterize.run"
      ~attrs:[ ("count", string_of_int count); ("cache", "1") ]
    @@ fun () ->
    let rng = match rng with Some r -> r | None -> Stats.Rng.make 7 in
    let pool = match pool with Some p -> p | None -> Parallel.Pool.global () in
    let circuit = program.Program.circuit in
    let k = Program.num_input_qubits program in
    let ideal =
      match noise with None -> true | Some nz -> Sim.Noise.is_ideal nz
    in
    let deterministic = Sim.Engine.is_deterministic circuit in
    (* fingerprints taken before any generator consumption *)
    let rng_fp = string_of_int (Stats.Rng.fingerprint rng) in
    let inputs_fp = inputs_fingerprint ~kind ~count inputs in
    let mode_fp = Marshal.to_string (mode, budget) [] in
    let sample_inputs () =
      match inputs with
      | Some states ->
          List.iter
            (fun st ->
              if Qstate.Statevec.num_qubits st <> k then
                invalid_arg "Characterize.run: input size mismatch")
            states;
          states
      | None ->
          List.init count (fun index -> Clifford.Sampling.state rng kind k ~index)
    in
    let cones = Analysis.Lightcone.cones circuit in
    let units =
      if ideal && deterministic then
        List.map
          (Cache.Canon.cone_unit circuit
             ~input_qubits:program.Program.input_qubits)
          cones
      else []
    in
    let incremental =
      ideal && deterministic
      && List.for_all
           (fun u -> u.Cache.Canon.width <= unit_width_cap)
           units
    in
    (* the uncached path's scalable-engine route: when it would fire, the
       incremental unit simulation is the wrong tool (dense per-unit
       passes past the wall) — run uncached, no caching *)
    let routed =
      (match engine with `Auto -> true | `Batched | `Sequential -> false)
      && Option.is_none inputs
      && kind = Clifford.Sampling.Basis && ideal
      && Sim.Engine.auto_route ?wall circuit <> None
    in
    if incremental then begin
      (* consume the caller's generator exactly as the uncached path
         would — sampled inputs plus one split child per sample — so the
         caller's stream continues from the same position on hits *)
      let inputs_arr = Array.of_list (sample_inputs ()) in
      let n = Array.length inputs_arr in
      let _children = Array.init n (Stats.Rng.split rng) in
      let cost = Sim.Cost.create () in
      let per_cone =
        List.map2
          (fun (cone : Analysis.Lightcone.cone) (u : Cache.Canon.unit_circuit) ->
            let key =
              Cache.Canon.digest
                (String.concat "\x00"
                   [ "unit-v1"; u.Cache.Canon.bytes; inputs_fp; rng_fp; mode_fp ])
            in
            let values =
              match Cache.find_value cache ~ns:ns_characterize key with
              | Some arr when Array.length arr = n -> arr
              | _ ->
                  let arr =
                    compute_unit ~pool ~cost ~mode ~budget ~key circuit cone u
                      inputs_arr
                  in
                  Cache.store_value cache ~ns:ns_characterize key arr;
                  arr
            in
            (cone.Analysis.Lightcone.id, values))
          cones units
      in
      let samples =
        Array.init n (fun i ->
            let input_state = inputs_arr.(i) in
            let v = Qstate.Statevec.to_cvec input_state in
            let input_dm = Cmat.outer v v in
            let traces =
              (0, input_dm) :: List.map (fun (id, arr) -> (id, arr.(i))) per_cone
            in
            { input_state; input_dm; traces })
      in
      { program; samples; mode; cost; obs = [] }
    end
    else if routed then
      (* scale programs past the dense wall: the routed engines are
         already lightcone-restricted and cheap — pass through *)
      run_uncached ~pool ~rng ~kind ~mode ?budget ?noise ?trajectories ~engine
        ?inputs ?wall program ~count
    else begin
      (* stochastic, noisy or too-wide programs: whole-result memo keyed
         by the exact (unrenumbered) circuit bytes and every parameter *)
      let key =
        Cache.Canon.digest
          (String.concat "\x00"
             [
               "whole-v1";
               Cache.Canon.exact_bytes circuit;
               Marshal.to_string
                 (program.Program.input_qubits, noise, trajectories, engine)
                 [];
               inputs_fp;
               rng_fp;
               mode_fp;
             ])
      in
      match Cache.find_value cache ~ns:ns_characterize key with
      | Some samples ->
          (* replay the uncached path's generator consumption *)
          let states = sample_inputs () in
          let _children =
            Array.init (List.length states) (Stats.Rng.split rng)
          in
          { program; samples; mode; cost = Sim.Cost.create (); obs = [] }
      | None ->
          let t =
            run_uncached ~pool ~rng ~kind ~mode ?budget ?noise ?trajectories
              ~engine ?inputs ?wall program ~count
          in
          Cache.store_value cache ~ns:ns_characterize key t.samples;
          t
    end
  in
  { result with obs = Obs.Span.summary ~since () }

let run ?pool ?rng ?kind ?mode ?budget ?noise ?trajectories ?engine ?inputs
    ?cache ?wall program ~count =
  match cache with
  | None ->
      run_uncached ?pool ?rng ?kind ?mode ?budget ?noise ?trajectories ?engine
        ?inputs ?wall program ~count
  | Some cache ->
      run_cached cache ?pool ?rng ?kind ?mode ?budget ?noise ?trajectories
        ?engine ?inputs ?wall program ~count

let tracepoint_ids t =
  if Array.length t.samples = 0 then []
  else List.map fst t.samples.(0).traces
