open Linalg

type mode =
  | Exact
  | Tomography of { shots : int; project : bool }
  | Probs_only of { shots : int }

type sample = {
  input_state : Qstate.Statevec.t;
  input_dm : Cmat.t;
  traces : (int * Cmat.t) list;
}

type t = {
  program : Program.t;
  samples : sample array;
  mode : mode;
  cost : Sim.Cost.t;
}


let degrade rng mode cost circuit (id, exact) =
  match mode with
  | Exact ->
      Sim.Cost.record_many cost circuit ~circuits:1 ~shots_each:1;
      (id, exact)
  | Tomography { shots; project } ->
      let tomo = Tomography.State_tomo.run ~project rng ~shots ~truth:exact () in
      Sim.Cost.record_many cost circuit ~circuits:tomo.Tomography.State_tomo.settings
        ~shots_each:shots;
      (id, tomo.Tomography.State_tomo.rho)
  | Probs_only { shots } ->
      let tomo = Tomography.State_tomo.probs_only rng ~shots ~truth:exact () in
      Sim.Cost.record_many cost circuit ~circuits:1 ~shots_each:shots;
      (id, tomo.Tomography.State_tomo.rho)

let run ?pool ?rng ?(kind = Clifford.Sampling.Clifford) ?(mode = Exact) ?noise
    ?trajectories ?inputs program ~count =
  let rng = match rng with Some r -> r | None -> Stats.Rng.make 7 in
  let pool = match pool with Some p -> p | None -> Parallel.Pool.global () in
  let k = Program.num_input_qubits program in
  let input_states =
    match inputs with
    | Some states ->
        List.iter
          (fun st ->
            if Qstate.Statevec.num_qubits st <> k then
              invalid_arg "Characterize.run: input size mismatch")
          states;
        states
    | None ->
        List.init count (fun index -> Clifford.Sampling.state rng kind k ~index)
  in
  (* fan sampled inputs across the pool: one split child generator and one
     private cost meter per sample, derived/merged in index order so the
     characterization is bit-identical for any domain count *)
  let inputs_arr = Array.of_list input_states in
  let n = Array.length inputs_arr in
  let rngs = Array.init n (Stats.Rng.split rng) in
  let cost = Sim.Cost.create () in
  let samples =
    Parallel.Pool.map_init pool n (fun i ->
        let rng = rngs.(i) in
        let sample_cost = Sim.Cost.create () in
        let input_state = inputs_arr.(i) in
        let traces =
          Program.run_traces ~pool ?noise ?trajectories ~rng program
            ~input:input_state
        in
        let traces =
          List.map
            (fun (id, m) ->
              if id = 0 then (id, m)
              else degrade rng mode sample_cost program.Program.circuit (id, m))
            traces
        in
        let v = Qstate.Statevec.to_cvec input_state in
        ({ input_state; input_dm = Cmat.outer v v; traces }, sample_cost))
  in
  Array.iter (fun (_, c) -> Sim.Cost.add cost c) samples;
  { program; samples = Array.map fst samples; mode; cost }

let tracepoint_ids t =
  if Array.length t.samples = 0 then []
  else List.map fst t.samples.(0).traces
