open Linalg

type mode =
  | Exact
  | Tomography of { shots : int; project : bool }
  | Probs_only of { shots : int }

type sample = {
  input_state : Qstate.Statevec.t;
  input_dm : Cmat.t;
  traces : (int * Cmat.t) list;
}

type t = {
  program : Program.t;
  samples : sample array;
  mode : mode;
  cost : Sim.Cost.t;
  obs : Obs.Span.summary;
}


let degrade ?budget rng mode cost circuit (id, exact) =
  match mode with
  | Exact ->
      Sim.Cost.record_many cost circuit ~circuits:1 ~shots_each:1;
      (id, exact)
  | Tomography { shots; project } ->
      let tomo =
        Tomography.State_tomo.run ~project ?budget rng ~shots ~truth:exact ()
      in
      Sim.Cost.record_total cost circuit
        ~executions:tomo.Tomography.State_tomo.settings
        ~total_shots:tomo.Tomography.State_tomo.shots_used;
      (id, tomo.Tomography.State_tomo.rho)
  | Probs_only { shots } ->
      let tomo =
        Tomography.State_tomo.probs_only ?budget rng ~shots ~truth:exact ()
      in
      Sim.Cost.record_total cost circuit ~executions:1
        ~total_shots:tomo.Tomography.State_tomo.shots_used;
      (id, tomo.Tomography.State_tomo.rho)

type engine = [ `Auto | `Batched | `Sequential ]

(* average per-trajectory trace lists exactly as [Engine.tracepoint_states]
   does: first-seen id order, in-trajectory-order adds, one final rescale *)
let average_traces trajectories per_traj =
  let acc = Hashtbl.create 8 in
  let order = ref [] in
  Array.iter
    (fun traces ->
      List.iter
        (fun (id, m) ->
          match Hashtbl.find_opt acc id with
          | None ->
              order := id :: !order;
              Hashtbl.add acc id m
          | Some prev -> Hashtbl.replace acc id (Cmat.add prev m))
        traces)
    per_traj;
  List.rev_map
    (fun id ->
      (id, Cmat.rscale (1. /. float_of_int trajectories) (Hashtbl.find acc id)))
    !order

let run ?pool ?rng ?(kind = Clifford.Sampling.Clifford) ?(mode = Exact) ?budget
    ?noise ?trajectories ?(engine = `Auto) ?inputs program ~count =
  (* watermark first, so the summary covers the [characterize.run] span
     itself once it closes — plus everything nested under it *)
  let since = Obs.Span.mark () in
  let result =
    Obs.Span.with_ ~name:"characterize.run"
      ~attrs:[ ("count", string_of_int count) ]
    @@ fun () ->
  let rng = match rng with Some r -> r | None -> Stats.Rng.make 7 in
  let pool = match pool with Some p -> p | None -> Parallel.Pool.global () in
  let k = Program.num_input_qubits program in
  let input_states =
    match inputs with
    | Some states ->
        List.iter
          (fun st ->
            if Qstate.Statevec.num_qubits st <> k then
              invalid_arg "Characterize.run: input size mismatch")
          states;
        states
    | None ->
        List.init count (fun index -> Clifford.Sampling.state rng kind k ~index)
  in
  (* fan sampled inputs across the pool: one split child generator and one
     private cost meter per sample, derived/merged in index order so the
     characterization is bit-identical for any domain count *)
  let inputs_arr = Array.of_list input_states in
  let n = Array.length inputs_arr in
  let rngs = Array.init n (Stats.Rng.split rng) in
  let ideal = match noise with None -> true | Some nz -> Sim.Noise.is_ideal nz in
  let batched =
    match engine with
    | `Sequential -> false
    | `Auto -> ideal
    | `Batched ->
        if not ideal then
          invalid_arg "Characterize.run: batched engine requires ideal noise";
        true
  in
  let cost = Sim.Cost.create () in
  (* Batched path: compile the circuit once into fused segment operators and
     run every sampled input as one column of a packed batch, instead of
     re-walking the circuit gate by gate per sample. Trace values agree with
     the sequential path to ~1e-15 (fusion reorders segment arithmetic);
     generator streams, cost accounting and the batched engine's own results
     are bit-identical for any domain count. *)
  let batch_traces () =
    let circuit = program.Program.circuit in
    let plan = Transpile.Segments.compile circuit in
    if Sim.Batch.is_deterministic plan then
      Sim.Batch.run_traces ~pool plan ~count:n ~init:(fun i ->
          Program.embed program inputs_arr.(i))
    else begin
      let t = Option.value trajectories ~default:64 in
      (* one column per sample x trajectory, seeded with exactly the split
         children the sequential trajectory fan-out would derive — so each
         sample generator's stream position (consumed below by [degrade])
         is unchanged *)
      let per_sample =
        Array.map (fun r -> Array.init t (Stats.Rng.split r)) rngs
      in
      let col_rngs = Array.concat (Array.to_list per_sample) in
      let per_col =
        Sim.Batch.run_traces ~pool ~rngs:col_rngs plan ~count:(n * t)
          ~init:(fun col -> Program.embed program inputs_arr.(col / t))
      in
      Array.init n (fun i -> average_traces t (Array.sub per_col (i * t) t))
    end
  in
  (* Scalable-engine auto-routing: with basis-state inputs on an ideal
     program, [Sim.Engine.auto_route] may send each sample to the
     stabilizer tableau (Clifford programs), the sparse coordinate
     engine (provably low-occupancy programs) or the sum-over-
     stabilizers engine (near-Clifford programs) — each a lightcone-
     restricted run per tracepoint instead of a full state-vector pass.
     The decision is purely static — never a function of sampled
     values — so programs outside the condition take exactly the code
     path (and generator streams) they did before the routing existed.
     Basis inputs are exact one-hot amplitudes, so recovering the
     preparation index below is exact — and sidesteps [Program.embed]'s
     dense allocation, which cannot exist at 28+ qubits. *)
  let route =
    if
      (match engine with `Auto -> true | `Batched | `Sequential -> false)
      && Option.is_none inputs
      && kind = Clifford.Sampling.Basis && ideal
    then Sim.Engine.auto_route program.Program.circuit
    else None
  in
  let basis_index st =
    let d = Qstate.Statevec.dim st in
    let rec go k found =
      if k = d then found
      else
        match Qstate.Statevec.amplitude st k with
        | { Complex.re = 1.0; im = 0.0 } -> (
            match found with None -> go (k + 1) (Some k) | Some _ -> None)
        | { Complex.re = 0.0; im = 0.0 } -> go (k + 1) found
        | _ -> None
    in
    go 0 None
  in
  (* full-register preparation index for a one-hot [k]-qubit input:
     bit [j] of the input index sits on [input_qubits.(j)], exactly as
     [Program.embed] would place it *)
  let route_prep st =
    match basis_index st with
    | None -> None
    | Some a ->
        Some
          (List.fold_left
             (fun (acc, j) q ->
               ((if (a lsr j) land 1 = 1 then acc lor (1 lsl q) else acc), j + 1))
             (0, 0) program.Program.input_qubits
          |> fst)
  in
  let batched_traces =
    if batched && route = None then Some (batch_traces ()) else None
  in
  let samples =
    Parallel.Pool.map_init pool n (fun i ->
        Obs.Span.with_ ~name:"characterize.sample" @@ fun () ->
        let rng = rngs.(i) in
        let sample_cost = Sim.Cost.create () in
        let input_state = inputs_arr.(i) in
        let prep =
          match route with Some _ -> route_prep input_state | None -> None
        in
        let traces =
          match (route, prep, batched_traces) with
          | Some engine, Some prep, _ ->
              let v = Qstate.Statevec.to_cvec input_state in
              let circuit = program.Program.circuit in
              (0, Cmat.outer v v)
              ::
              (match engine with
              | `Stabilizer -> Sim.Engine.stabilizer_traces ~prep circuit
              | `Sparse -> Sim.Engine.sparse_traces ~prep circuit
              | `Rank -> Sim.Engine.rank_traces ~prep circuit)
          | _, _, Some all ->
              let v = Qstate.Statevec.to_cvec input_state in
              (0, Cmat.outer v v) :: all.(i)
          | _, _, None ->
              Program.run_traces ~pool ?noise ?trajectories ~rng program
                ~input:input_state
        in
        let traces =
          List.map
            (fun (id, m) ->
              if id = 0 then (id, m)
              else
                degrade ?budget rng mode sample_cost program.Program.circuit
                  (id, m))
            traces
        in
        let v = Qstate.Statevec.to_cvec input_state in
        ({ input_state; input_dm = Cmat.outer v v; traces }, sample_cost))
  in
  Array.iter (fun (_, c) -> Sim.Cost.add cost c) samples;
  { program; samples = Array.map fst samples; mode; cost; obs = [] }
  in
  { result with obs = Obs.Span.summary ~since () }

let tracepoint_ids t =
  if Array.length t.samples = 0 then []
  else List.map fst t.samples.(0).traces
