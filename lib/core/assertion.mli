(** Assume-guarantee assertions (Definition 1): when every assumption holds,
    every guarantee must hold. The assertion fails on an input satisfying
    the assumptions but violating a guarantee. *)

type t = {
  name : string;
  assumes : Predicate.t list;
  guarantees : Predicate.t list;
}

val make :
  ?name:string ->
  assumes:Predicate.t list ->
  guarantees:Predicate.t list ->
  unit ->
  t

(** [holds ?tol t env] checks the implication on one concrete environment:
    true when some assumption fails or all guarantees hold. *)
val holds : ?tol:float -> t -> Predicate.env -> bool

(** Distribution-level assertion on measurement counts: the program's
    final computational-basis distribution must match [expected]
    ([basis index, probability] pairs; unlisted outcomes share the
    remaining mass). Checked by {!Verify.check_counts} with a chi-square
    goodness-of-fit test at level [significance] (or a sequential SPRT
    under a [`Sequential] shot budget) — sharper than the Stat
    baseline's fixed 3.84 threshold. Parsed from the QASM [expect]
    pragma. Kept separate from {!t} so the assume-guarantee record (and
    every consumer of it) is unchanged. *)
module Dist : sig
  type t = private { expected : (int * float) list; significance : float }

  (** [make ?significance expected] validates indices (distinct,
      non-negative) and probabilities (each in [0, 1], summing to at
      most 1). Default significance 0.05. *)
  val make : ?significance:float -> (int * float) list -> t

  (** Probability mass left to outcomes not listed in [expected]. *)
  val other_mass : t -> float

  val describe : t -> string
end

(** [tracepoints t] lists all tracepoint ids mentioned. *)
val tracepoints : t -> int list

val describe : t -> string
