open Linalg

type verdict =
  | Verified of { confidence : Confidence.t; max_objective : float }
  | Violated of {
      counterexample : Cmat.t;
      alpha : float array;
      objective : float;
    }

type options = {
  solver : Optimize.Solvers.method_;
  budget : int;
  epsilon_obj : float;
  epsilon_acc : float;
  recovery : Approx.recovery;
  projection : [ `Trace | `Psd ];
  restarts : int;
}

let default_options =
  {
    solver = `Qp;
    budget = 6_000;
    epsilon_obj = 0.05;
    epsilon_acc = 0.5;
    recovery = `Least_squares;
    projection = `Psd;
    restarts = 2;
  }

(* Environment over tracepoints for a given alpha. The input (id 0) is made
   physical per the chosen projection; downstream tracepoint states are
   recombined from the SAME projected-input coefficients so that they remain
   consistent images of one physical input. *)
let env_of_alpha ~projection (approx : Approx.t) alpha : Predicate.env =
  let cache = Hashtbl.create 4 in
  let phys_alpha =
    lazy
      (match projection with
      | `Trace ->
          let raw = Approx.input_of_alpha approx alpha in
          let t = Cx.re (Cmat.trace raw) in
          if Float.abs t > 1e-9 then
            Array.map (fun a -> a /. t) alpha
          else alpha
      | `Psd ->
          let raw = Approx.input_of_alpha approx alpha in
          let projected = Eig.project_psd raw in
          Approx.decompose ~mode:`Least_squares approx projected)
  in
  fun tp ->
    match Hashtbl.find_opt cache tp with
    | Some m -> m
    | None ->
        let a = Lazy.force phys_alpha in
        (* every tracepoint, the input included, is recombined from the SAME
           physical coefficients, so predicates compare exactly the
           characterized relation rather than approximation residue *)
        let m =
          if tp = 0 then Approx.input_of_alpha approx a
          else Approx.tracepoint_of_alpha approx ~tracepoint:tp a
        in
        Hashtbl.replace cache tp m;
        m

let guarantee_objective assertion env =
  List.fold_left
    (fun acc p -> Float.max acc (Predicate.eval p env))
    neg_infinity assertion.Assertion.guarantees

(* dominant eigenvector of a density matrix, as a pure-state input *)
let dominant_eigenvector rho =
  let d, _ = Cmat.dims rho in
  let rec log2 acc k = if k <= 1 then acc else log2 (acc + 1) (k / 2) in
  let n = log2 0 d in
  let w, v = Eig.hermitian rho in
  let top = Array.length w - 1 in
  Qstate.Statevec.of_cvec n (Cvec.normalize (Cmat.col v top))

let nearest_basis_state rho =
  let d, _ = Cmat.dims rho in
  let rec log2 acc k = if k <= 1 then acc else log2 (acc + 1) (k / 2) in
  let n = log2 0 d in
  let best = ref 0 and best_p = ref neg_infinity in
  for i = 0 to d - 1 do
    let p = Cx.re (Cmat.get rho i i) in
    if p > !best_p then begin
      best := i;
      best_p := p
    end
  done;
  Qstate.Statevec.basis n !best

let confirmed_violation ?rng confirm assertion counterexample =
  match confirm with
  | None -> true
  | Some program ->
      let candidates =
        [ dominant_eigenvector counterexample; nearest_basis_state counterexample ]
      in
      List.exists
        (fun input ->
          not (
            let traces = Program.run_traces ?rng program ~input in
            let env tp =
              match List.assoc_opt tp traces with
              | Some m -> m
              | None -> invalid_arg "Verify: assertion mentions unknown tracepoint"
            in
            Assertion.holds ~tol:0.02 assertion env))
        candidates

let validate ?(options = default_options) ?rng ?confirm approx assertion =
  Obs.Span.with_ ~name:"verify.validate" @@ fun () ->
  if Obs.enabled () then
    Obs.Metrics.counter_add "verify_restarts_total" (max 1 options.restarts);
  let rng = match rng with Some r -> r | None -> Stats.Rng.make 11 in
  let dim = Approx.n_sample approx in
  let projection = options.projection in
  let objective =
    Optimize.Objective.make ~dim (fun alpha ->
        let env = env_of_alpha ~projection approx alpha in
        guarantee_objective assertion env)
  in
  let constraints =
    List.map
      (fun p alpha -> Predicate.eval p (env_of_alpha ~projection approx alpha))
      assertion.Assertion.assumes
  in
  let problem = { Optimize.Constrained.objective; constraints } in
  let best_violation = ref None and best_clean = ref None in
  (try
     for _ = 1 to max 1 options.restarts do
       let sol =
         Optimize.Constrained.maximize ~budget:(options.budget / max 1 options.restarts)
           ~method_:options.solver rng problem
       in
       if
         sol.Optimize.Constrained.feasible
         && sol.Optimize.Constrained.value > options.epsilon_obj
       then begin
         let env = env_of_alpha ~projection approx sol.Optimize.Constrained.x in
         let counterexample = Eig.project_psd (env 0) in
         if confirmed_violation ~rng confirm assertion counterexample then begin
           best_violation :=
             Some
               (Violated
                  {
                    counterexample;
                    alpha = sol.Optimize.Constrained.x;
                    objective = sol.Optimize.Constrained.value;
                  });
           raise Exit
         end
       end
       else begin
         match !best_clean with
         | Some v when v >= sol.Optimize.Constrained.value -> ()
         | _ -> best_clean := Some sol.Optimize.Constrained.value
       end
     done
   with Exit -> ());
  match !best_violation with
  | Some v -> v
  | None ->
      let confidence =
        Confidence.estimate ~epsilon:options.epsilon_acc ~n_in:approx.Approx.n_in
          ~n_sample:dim [||]
      in
      Verified
        {
          confidence;
          max_objective = Option.value ~default:neg_infinity !best_clean;
        }

(* Like [validate], but also returns the span-tree summary of the
   verification's own work (solver spans included). Kept separate so the
   [verdict] type — and every pattern match on it — stays unchanged. *)
let validate_traced ?options ?rng ?confirm approx assertion =
  let since = Obs.Span.mark () in
  let verdict = validate ?options ?rng ?confirm approx assertion in
  (verdict, Obs.Span.summary ~since ())

let check_on_program ?rng ?tol program assertion ~input =
  let traces = Program.run_traces ?rng program ~input in
  let env tp =
    match List.assoc_opt tp traces with
    | Some m -> m
    | None -> invalid_arg (Printf.sprintf "Verify.check_on_program: no tracepoint %d" tp)
  in
  Assertion.holds ?tol assertion env

let minimize_counterexample ?rng ?(tol = 0.02) program assertion
    ~counterexample =
  let d, _ = Cmat.dims counterexample in
  let rec log2 acc k = if k <= 1 then acc else log2 (acc + 1) (k / 2) in
  let n = log2 0 d in
  let violates input =
    let traces = Program.run_traces ?rng program ~input in
    let env tp =
      match List.assoc_opt tp traces with
      | Some m -> m
      | None -> invalid_arg "Verify.minimize_counterexample: unknown tracepoint"
    in
    not (Assertion.holds ~tol assertion env)
  in
  (* candidate basis states, heaviest first *)
  let weights =
    List.init d (fun k -> (k, Cx.re (Cmat.get counterexample k k)))
    |> List.filter (fun (_, w) -> w > 0.02)
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  let basis_candidates = List.map (fun (k, _) -> Qstate.Statevec.basis n k) weights in
  let dominant = dominant_eigenvector counterexample in
  match List.find_opt violates basis_candidates with
  | Some simple -> simple
  | None -> dominant

let probe_accuracies ?rng ?(count = 20) approx program ~tracepoint =
  Obs.Span.with_ ~name:"verify.probe_accuracies" @@ fun () ->
  let rng = match rng with Some r -> r | None -> Stats.Rng.make 23 in
  let k = Program.num_input_qubits program in
  let accuracy_of input truth =
    let v = Qstate.Statevec.to_cvec input in
    let rho_in = Cmat.outer v v in
    Approx.accuracy (Approx.state_at approx ~tracepoint rho_in) truth
  in
  if Sim.Engine.is_deterministic program.Program.circuit then begin
    (* measurement-free probes consume no generator draws beyond the input
       sampling, so all inputs can be drawn up front (same stream as the
       interleaved loop below) and the ground truth computed in one
       segment-compiled batch *)
    let inputs =
      Array.init count (fun _ -> Clifford.Sampling.haar_state rng k)
    in
    let plan = Transpile.Segments.compile program.Program.circuit in
    let traces =
      Sim.Batch.run_traces plan ~count ~init:(fun i ->
          Program.embed program inputs.(i))
    in
    Array.init count (fun i ->
        let truth =
          if tracepoint = 0 then
            let v = Qstate.Statevec.to_cvec inputs.(i) in
            Cmat.outer v v
          else List.assoc tracepoint traces.(i)
        in
        accuracy_of inputs.(i) truth)
  end
  else
    Array.init count (fun _ ->
        let input = Clifford.Sampling.haar_state rng k in
        let truth =
          List.assoc tracepoint (Program.run_traces ~rng program ~input)
        in
        accuracy_of input truth)
