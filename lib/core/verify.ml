open Linalg

type verdict =
  | Verified of { confidence : Confidence.t; max_objective : float }
  | Violated of {
      counterexample : Cmat.t;
      alpha : float array;
      objective : float;
    }

type options = {
  solver : Optimize.Solvers.method_;
  budget : int;
  epsilon_obj : float;
  epsilon_acc : float;
  recovery : Approx.recovery;
  projection : [ `Trace | `Psd ];
  restarts : int;
}

let default_options =
  {
    solver = `Qp;
    budget = 6_000;
    epsilon_obj = 0.05;
    epsilon_acc = 0.5;
    recovery = `Least_squares;
    projection = `Psd;
    restarts = 2;
  }

(* Environment over tracepoints for a given alpha. The input (id 0) is made
   physical per the chosen projection; downstream tracepoint states are
   recombined from the SAME projected-input coefficients so that they remain
   consistent images of one physical input. *)
let env_of_alpha ~projection (approx : Approx.t) alpha : Predicate.env =
  let cache = Hashtbl.create 4 in
  let phys_alpha =
    lazy
      (match projection with
      | `Trace ->
          let raw = Approx.input_of_alpha approx alpha in
          let t = Cx.re (Cmat.trace raw) in
          if Float.abs t > 1e-9 then
            Array.map (fun a -> a /. t) alpha
          else alpha
      | `Psd ->
          let raw = Approx.input_of_alpha approx alpha in
          let projected = Eig.project_psd raw in
          Approx.decompose ~mode:`Least_squares approx projected)
  in
  fun tp ->
    match Hashtbl.find_opt cache tp with
    | Some m -> m
    | None ->
        let a = Lazy.force phys_alpha in
        (* every tracepoint, the input included, is recombined from the SAME
           physical coefficients, so predicates compare exactly the
           characterized relation rather than approximation residue *)
        let m =
          if tp = 0 then Approx.input_of_alpha approx a
          else Approx.tracepoint_of_alpha approx ~tracepoint:tp a
        in
        Hashtbl.replace cache tp m;
        m

let guarantee_objective assertion env =
  List.fold_left
    (fun acc p -> Float.max acc (Predicate.eval p env))
    neg_infinity assertion.Assertion.guarantees

(* dominant eigenvector of a density matrix, as a pure-state input *)
let dominant_eigenvector rho =
  let d, _ = Cmat.dims rho in
  let rec log2 acc k = if k <= 1 then acc else log2 (acc + 1) (k / 2) in
  let n = log2 0 d in
  let w, v = Eig.hermitian rho in
  let top = Array.length w - 1 in
  Qstate.Statevec.of_cvec n (Cvec.normalize (Cmat.col v top))

let nearest_basis_state rho =
  let d, _ = Cmat.dims rho in
  let rec log2 acc k = if k <= 1 then acc else log2 (acc + 1) (k / 2) in
  let n = log2 0 d in
  let best = ref 0 and best_p = ref neg_infinity in
  for i = 0 to d - 1 do
    let p = Cx.re (Cmat.get rho i i) in
    if p > !best_p then begin
      best := i;
      best_p := p
    end
  done;
  Qstate.Statevec.basis n !best

let confirmed_violation ?rng confirm assertion counterexample =
  match confirm with
  | None -> true
  | Some program ->
      let candidates =
        [ dominant_eigenvector counterexample; nearest_basis_state counterexample ]
      in
      List.exists
        (fun input ->
          not (
            let traces = Program.run_traces ?rng program ~input in
            let env tp =
              match List.assoc_opt tp traces with
              | Some m -> m
              | None -> invalid_arg "Verify: assertion mentions unknown tracepoint"
            in
            Assertion.holds ~tol:0.02 assertion env))
        candidates

let validate_direct ?(options = default_options) ?rng ?confirm approx assertion =
  Obs.Span.with_ ~name:"verify.validate" @@ fun () ->
  if Obs.enabled () then
    Obs.Metrics.counter_add "verify_restarts_total" (max 1 options.restarts);
  let rng = match rng with Some r -> r | None -> Stats.Rng.make 11 in
  let dim = Approx.n_sample approx in
  let projection = options.projection in
  let objective =
    Optimize.Objective.make ~dim (fun alpha ->
        let env = env_of_alpha ~projection approx alpha in
        guarantee_objective assertion env)
  in
  let constraints =
    List.map
      (fun p alpha -> Predicate.eval p (env_of_alpha ~projection approx alpha))
      assertion.Assertion.assumes
  in
  let problem = { Optimize.Constrained.objective; constraints } in
  let best_violation = ref None and best_clean = ref None in
  (try
     for _ = 1 to max 1 options.restarts do
       let sol =
         Optimize.Constrained.maximize ~budget:(options.budget / max 1 options.restarts)
           ~method_:options.solver rng problem
       in
       if
         sol.Optimize.Constrained.feasible
         && sol.Optimize.Constrained.value > options.epsilon_obj
       then begin
         let env = env_of_alpha ~projection approx sol.Optimize.Constrained.x in
         let counterexample = Eig.project_psd (env 0) in
         if confirmed_violation ~rng confirm assertion counterexample then begin
           best_violation :=
             Some
               (Violated
                  {
                    counterexample;
                    alpha = sol.Optimize.Constrained.x;
                    objective = sol.Optimize.Constrained.value;
                  });
           raise Exit
         end
       end
       else begin
         match !best_clean with
         | Some v when v >= sol.Optimize.Constrained.value -> ()
         | _ -> best_clean := Some sol.Optimize.Constrained.value
       end
     done
   with Exit -> ());
  match !best_violation with
  | Some v -> v
  | None ->
      let confidence =
        Confidence.estimate ~epsilon:options.epsilon_acc ~n_in:approx.Approx.n_in
          ~n_sample:dim [||]
      in
      Verified
        {
          confidence;
          max_objective = Option.value ~default:neg_infinity !best_clean;
        }

(* Verdict memo: the key folds in everything the verdict is a function
   of — the characterized relation (the approximation's data fields; its
   lazy basis/solver are derived from them), the assertion, the solver
   options, the entry generator fingerprint and the confirmation program.
   Unlike the characterization layer, a hit does NOT replay the solver's
   generator consumption (that would cost the solve being skipped), so
   callers memoizing verdicts should give [validate] a generator whose
   continuation they don't rely on — every orchestration layer here
   (CLI, server, bench) uses it as the final consumer. *)
let validate ?(options = default_options) ?rng ?confirm ?cache approx assertion =
  match cache with
  | None -> validate_direct ~options ?rng ?confirm approx assertion
  | Some cache -> (
      let rng = match rng with Some r -> r | None -> Stats.Rng.make 11 in
      let confirm_fp =
        match confirm with
        | None -> "none"
        | Some p ->
            Cache.Canon.exact_bytes p.Program.circuit
            ^ Marshal.to_string p.Program.input_qubits []
      in
      let key =
        Cache.Canon.digest
          (String.concat "\x00"
             [
               "verdict-v1";
               Cache.Canon.digest
                 (Marshal.to_string
                    ( approx.Approx.n_in,
                      approx.Approx.inputs,
                      approx.Approx.outputs )
                    []);
               Marshal.to_string assertion [];
               Marshal.to_string options [];
               string_of_int (Stats.Rng.fingerprint rng);
               confirm_fp;
             ])
      in
      match Cache.find_value cache ~ns:"verdict" key with
      | Some v -> v
      | None ->
          let v = validate_direct ~options ~rng ?confirm approx assertion in
          Cache.store_value cache ~ns:"verdict" key v;
          v)

(* Like [validate], but also returns the span-tree summary of the
   verification's own work (solver spans included). Kept separate so the
   [verdict] type — and every pattern match on it — stays unchanged. *)
let validate_traced ?options ?rng ?confirm ?cache approx assertion =
  let since = Obs.Span.mark () in
  let verdict = validate ?options ?rng ?confirm ?cache approx assertion in
  (verdict, Obs.Span.summary ~since ())

let check_on_program ?rng ?tol program assertion ~input =
  let traces = Program.run_traces ?rng program ~input in
  let env tp =
    match List.assoc_opt tp traces with
    | Some m -> m
    | None -> invalid_arg (Printf.sprintf "Verify.check_on_program: no tracepoint %d" tp)
  in
  Assertion.holds ?tol assertion env

let minimize_counterexample ?rng ?(tol = 0.02) program assertion
    ~counterexample =
  let d, _ = Cmat.dims counterexample in
  let rec log2 acc k = if k <= 1 then acc else log2 (acc + 1) (k / 2) in
  let n = log2 0 d in
  let violates input =
    let traces = Program.run_traces ?rng program ~input in
    let env tp =
      match List.assoc_opt tp traces with
      | Some m -> m
      | None -> invalid_arg "Verify.minimize_counterexample: unknown tracepoint"
    in
    not (Assertion.holds ~tol assertion env)
  in
  (* candidate basis states, heaviest first *)
  let weights =
    List.init d (fun k -> (k, Cx.re (Cmat.get counterexample k k)))
    |> List.filter (fun (_, w) -> w > 0.02)
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  let basis_candidates = List.map (fun (k, _) -> Qstate.Statevec.basis n k) weights in
  let dominant = dominant_eigenvector counterexample in
  match List.find_opt violates basis_candidates with
  | Some simple -> simple
  | None -> dominant

(* -------------- distribution-level assertions on counts --------------- *)

type counts_result = {
  counts_hold : bool;
  test : Stats.Tests.result;
  shots_used : int;
  early_stop : bool;
}

(* contamination rate of the SPRT alternative: H1 mixes a fraction
   [contamination] of noise uniform over the FULL basis-state space into
   the expected distribution, making the sequential test a valid
   simple-vs-simple SPRT. Uniform over the whole space (not just the
   listed categories) keeps H1 distinct from H0 even when the expected
   distribution is itself uniform over its categories. *)
let contamination = 0.2

let seq_counters ~cap ~used ~early =
  if Obs.enabled () then begin
    if cap > used then
      Obs.Metrics.counter_add "verify_shots_saved_total" (cap - used);
    if early then Obs.Metrics.counter_add "verify_early_stop_total" 1
  end;
  if early then
    Obs.Log.emit Obs.Log.Info "verify.early_stop"
      [
        ("cap", Obs.Log.I cap);
        ("shots", Obs.Log.I used);
        ("saved", Obs.Log.I (cap - used));
      ]

let check_counts ?(budget = `Fixed 2048) ?rng ?noise program
    (dist : Assertion.Dist.t) ~input =
  Obs.Span.with_ ~name:"verify.check_counts" @@ fun () ->
  let rng = match rng with Some r -> r | None -> Stats.Rng.make 17 in
  let initial = Program.embed program input in
  let circuit = program.Program.circuit in
  let expected = dist.Assertion.Dist.expected in
  let other = Assertion.Dist.other_mass dist in
  let m = List.length expected in
  (* category layout: one per listed basis index, plus a pooled "other"
     bucket when the expectation leaves it mass *)
  let has_other = other > 1e-12 in
  let k_cat = m + if has_other then 1 else 0 in
  let probs =
    Array.init k_cat (fun i ->
        if i < m then snd (List.nth expected i) else other)
  in
  let index_of =
    let tbl = Hashtbl.create 8 in
    List.iteri (fun i (k, _) -> Hashtbl.add tbl k i) expected;
    fun k -> match Hashtbl.find_opt tbl k with Some i -> i | None -> m
  in
  let counts = Array.make (m + 1) 0 in
  let draw shots =
    List.iter
      (fun (k, c) -> counts.(index_of k) <- counts.(index_of k) + c)
      (Sim.Engine.sample_counts ~rng ?noise ~initial ~shots circuit)
  in
  let total () = Array.fold_left ( + ) 0 counts in
  (* final fixed-budget decision rule on whatever counts were taken; the
     same rule closes the sequential path at max_shots, so the two
     budgets agree by construction once the cap is reached *)
  let decide_fixed significance =
    let s = total () in
    let sf = float_of_int s in
    if counts.(m) > 0 && not has_other then
      (* outcome the expectation gave zero mass: certain violation *)
      ( false,
        {
          Stats.Tests.statistic = infinity;
          pvalue = 0.;
          df = float_of_int (k_cat - 1);
        } )
    else if k_cat < 2 then
      (* point-mass expectation matched exactly *)
      (true, { Stats.Tests.statistic = 0.; pvalue = 1.; df = 0. })
    else begin
      let observed =
        Array.init k_cat (fun i -> float_of_int counts.(i))
      in
      let expected_counts = Array.map (fun p -> Float.max (p *. sf) 1e-9) probs in
      let test = Stats.Tests.chi2_gof ~expected:expected_counts observed in
      (test.Stats.Tests.pvalue >= significance, test)
    end
  in
  match budget with
  | `Fixed shots ->
      if shots <= 0 then invalid_arg "Verify.check_counts: non-positive shots";
      draw shots;
      let holds, test = decide_fixed dist.Assertion.Dist.significance in
      { counts_hold = holds; test; shots_used = shots; early_stop = false }
  | `Sequential { Stats.Tests.alpha; beta; max_shots = cap } ->
      if cap <= 0 then invalid_arg "Verify.check_counts: non-positive max_shots";
      (* per-category LLR of H1 = (1-delta) expected + delta uniform over
         all 2^n outcomes against H0 = expected; a category H0 calls
         impossible forces an immediate reject when observed *)
      let d_f = Float.pow 2. (float_of_int (Circuit.num_qubits circuit)) in
      let q1 =
        Array.init k_cat (fun i ->
            let leak =
              if i < m then contamination /. d_f
              else contamination *. (d_f -. float_of_int m) /. d_f
            in
            ((1. -. contamination) *. probs.(i)) +. leak)
      in
      let llr_cat =
        Array.init k_cat (fun i ->
            if probs.(i) <= 0. then infinity else log (q1.(i) /. probs.(i)))
      in
      let sprt = ref (Stats.Sprt.make ~alpha ~beta) in
      let block = max 64 (cap / 32) in
      let verdict = ref Stats.Sprt.Continue in
      let prev = Array.make (m + 1) 0 in
      (* Haybittle–Peto-style stringent interim boundary: the SPRT's
         simple contamination alternative cannot represent every
         deviation direction, so each interim look also rejects outright
         on an overwhelming chi-square — barely inflating the overall
         type-I error while catching deviations the mixture misses *)
      let interim = Float.min 0.001 (alpha /. 10.) in
      while !verdict = Stats.Sprt.Continue && total () < cap do
        let b = min block (cap - total ()) in
        Array.blit counts 0 prev 0 (m + 1);
        draw b;
        (* fold the block's per-category increments into the SPRT *)
        let s = ref !sprt in
        for i = 0 to m do
          let dc = counts.(i) - prev.(i) in
          if dc > 0 then
            if i = m && not has_other then
              (* impossible outcome observed: force a reject *)
              s := Stats.Sprt.observe_llr !s infinity
            else
              s := Stats.Sprt.observe_llr !s (float_of_int dc *. llr_cat.(i))
        done;
        sprt := !s;
        let interim_holds, _ = decide_fixed interim in
        verdict :=
          (if not interim_holds then Stats.Sprt.Reject_h0
           else Stats.Sprt.decide !s)
      done;
      let used = total () in
      let early = used < cap in
      seq_counters ~cap ~used ~early;
      let fixed_holds, test = decide_fixed alpha in
      let holds =
        match !verdict with
        | Stats.Sprt.Accept_h0 -> true
        | Stats.Sprt.Reject_h0 -> false
        | Stats.Sprt.Continue -> fixed_holds
      in
      { counts_hold = holds; test; shots_used = used; early_stop = early }

(* ------------------- sequential assertion probing ---------------------- *)

type probe_result = {
  probe_holds : bool;
  trials : int;
  failures : int;
  probe_early_stop : bool;
  counterexample_input : Qstate.Statevec.t option;
}

(* Bernoulli SPRT hypotheses on the per-input violation rate: H0 "the
   assertion effectively holds" (violation rate <= 1%) against H1
   "broken" (>= 25%). With the default alpha = beta = 0.05 boundaries a
   single observed violation crosses the reject line immediately, and
   ~14 consecutive passes cross the accept line. *)
let probe_p0 = 0.01
let probe_p1 = 0.25

let probe_assertion ?rng ?tol ?(budget = `Fixed 32) program assertion =
  Obs.Span.with_ ~name:"verify.probe_assertion" @@ fun () ->
  let rng = match rng with Some r -> r | None -> Stats.Rng.make 29 in
  let k = Program.num_input_qubits program in
  let failures = ref 0 and counterexample = ref None in
  let trial () =
    let input = Clifford.Sampling.haar_state rng k in
    let ok = check_on_program ~rng ?tol program assertion ~input in
    if not ok then begin
      incr failures;
      if !counterexample = None then counterexample := Some input
    end;
    not ok
  in
  match budget with
  | `Fixed n ->
      if n <= 0 then invalid_arg "Verify.probe_assertion: non-positive trials";
      for _ = 1 to n do
        ignore (trial ())
      done;
      {
        probe_holds = !failures = 0;
        trials = n;
        failures = !failures;
        probe_early_stop = false;
        counterexample_input = !counterexample;
      }
  | `Sequential { Stats.Tests.alpha; beta; max_shots = cap } ->
      if cap <= 0 then
        invalid_arg "Verify.probe_assertion: non-positive max_shots";
      let sprt = ref (Stats.Sprt.make ~alpha ~beta) in
      let trials = ref 0 in
      let verdict = ref Stats.Sprt.Continue in
      while !verdict = Stats.Sprt.Continue && !trials < cap do
        let violated = trial () in
        incr trials;
        sprt :=
          Stats.Sprt.observe_bernoulli ~p0:probe_p0 ~p1:probe_p1 !sprt violated;
        verdict := Stats.Sprt.decide !sprt
      done;
      let early = !trials < cap in
      seq_counters ~cap ~used:!trials ~early;
      let holds =
        match !verdict with
        | Stats.Sprt.Accept_h0 -> true
        | Stats.Sprt.Reject_h0 -> false
        | Stats.Sprt.Continue -> !failures = 0
      in
      {
        probe_holds = holds;
        trials = !trials;
        failures = !failures;
        probe_early_stop = early;
        counterexample_input = !counterexample;
      }

let probe_accuracies ?rng ?(count = 20) approx program ~tracepoint =
  Obs.Span.with_ ~name:"verify.probe_accuracies" @@ fun () ->
  let rng = match rng with Some r -> r | None -> Stats.Rng.make 23 in
  let k = Program.num_input_qubits program in
  let accuracy_of input truth =
    let v = Qstate.Statevec.to_cvec input in
    let rho_in = Cmat.outer v v in
    Approx.accuracy (Approx.state_at approx ~tracepoint rho_in) truth
  in
  if Sim.Engine.is_deterministic program.Program.circuit then begin
    (* measurement-free probes consume no generator draws beyond the input
       sampling, so all inputs can be drawn up front (same stream as the
       interleaved loop below) and the ground truth computed in one
       segment-compiled batch *)
    let inputs =
      Array.init count (fun _ -> Clifford.Sampling.haar_state rng k)
    in
    let plan = Transpile.Segments.compile program.Program.circuit in
    let traces =
      Sim.Batch.run_traces plan ~count ~init:(fun i ->
          Program.embed program inputs.(i))
    in
    Array.init count (fun i ->
        let truth =
          if tracepoint = 0 then
            let v = Qstate.Statevec.to_cvec inputs.(i) in
            Cmat.outer v v
          else List.assoc tracepoint traces.(i)
        in
        accuracy_of inputs.(i) truth)
  end
  else
    Array.init count (fun _ ->
        let input = Clifford.Sampling.haar_state rng k in
        let truth =
          List.assoc tracepoint (Program.run_traces ~rng program ~input)
        in
        accuracy_of input truth)

(* ------------------- certified transpilation (MQ021) ------------------- *)

type certify_report = {
  certified : bool;
  cert_summary : Transpile.Certify.summary;
  cert_failures : Transpile.Certify.failure list;
  cert_plan : Sim.Batch.plan;
}

let certify_transpile ?cache ?locs circuit =
  let optimized, opt_steps = Transpile.Passes.optimize_cert circuit in
  let pruned, prune_step = Transpile.Passes.prune_lightcone_cert optimized in
  let plan, seg_step = Transpile.Segments.compile_cert ?cache pruned in
  let cert = opt_steps @ [ prune_step; seg_step ] in
  match Transpile.Certify.check_plan ?locs cert circuit plan with
  | Ok summary ->
      {
        certified = true;
        cert_summary = summary;
        cert_failures = [];
        cert_plan = plan;
      }
  | Error failures ->
      {
        certified = false;
        cert_summary = Transpile.Certify.summarize cert;
        cert_failures = failures;
        cert_plan = plan;
      }
