module Span = Span
module Metrics = Metrics
module Export = Export
module Log = Log
module Context = Context

let enabled = Control.enabled
let configure = Control.configure
let set_clock_for_testing = Control.set_clock
