(** Observability substrate: tracing spans, a metrics registry, and the
    exporters that serve the [morphqpv profile] subcommand and the bench
    harness.

    Everything is zero-cost when disabled: instrumentation sites guard on
    one {!enabled} read (an atomic load of an immediate bool) and do no
    allocation, no lookup, no clock read on the disabled path. The
    [obs_transparent] testkit oracle pins that enabling observability
    leaves every engine's outputs bit-identical — instrumentation never
    touches a random stream or reorders arithmetic.

    Enable with [MORPHQPV_OBS=1] in the environment or {!configure} at
    run time. *)

val enabled : unit -> bool
(** One atomic read; the guard every instrumentation site uses. *)

val configure : enabled:bool -> unit
(** Flip the global switch (overrides the [MORPHQPV_OBS] default). *)

val set_clock_for_testing : (unit -> float) option -> unit
(** Replace the span clock (microseconds) with a deterministic one, or
    restore the wall clock with [None]. Tests only. *)

(** Nestable tracing spans, buffered lock-free in one ring per domain and
    merged only at read time, so recording never synchronizes pool
    workers. *)
module Span : sig
  type ph = B | E

  type event = {
    seq : int;  (** global sequence number — total order across domains *)
    ts_us : float;  (** microseconds since process start *)
    name : string;
    ph : ph;
    tid : int;  (** recording domain id *)
    span : int;  (** span id (the B event's [seq]) *)
    parent : int;  (** enclosing span id on the same domain; [-1] = root *)
    attrs : (string * string) list;
  }

  (** One summary line: how often a span name ran and its total wall
      time. The inclusive times of nested spans overlap by design. *)
  type row = { name : string; count : int; total_s : float }

  type summary = row list

  val with_ : ?attrs:(string * string) list -> name:string -> (unit -> 'a) -> 'a
  (** [with_ ~name f] runs [f] inside a span: a [B] event now, an [E]
      event when [f] returns or raises. When disabled this is exactly
      [f ()]. *)

  val mark : unit -> int
  (** Watermark for scoped reads: [events ~since:(mark ()) ()] later
      returns only events recorded after this point. *)

  val events : ?since:int -> ?until:int -> unit -> event list
  (** All buffered events (across every domain ring), oldest first.
      [~since:m0 ~until:m1] with two {!mark} watermarks returns exactly
      what was recorded between them. *)

  val summary : ?since:int -> ?until:int -> unit -> summary
  (** Aggregate closed spans by name, sorted by total time descending. *)

  val dropped : unit -> int
  (** Events discarded because a domain ring hit its capacity (the ring
      keeps the oldest events, so a trace is always a prefix). *)

  val reclaim : before:int -> unit -> unit
  (** Drop every buffered event with [seq < before], compacting quiescent
      rings in place so a long-running daemon's bounded rings never
      saturate across requests. Rings with an open span are left intact;
      {!dropped} is preserved (cumulative). The caller must ensure no
      domain is concurrently recording. *)

  val reset : unit -> unit
end

(** Process-wide counters, gauges and fixed-bucket histograms. Counters
    count deterministic work items (gates, shots, MACs) — never time —
    so snapshots are bit-identical across domain counts. *)
module Metrics : sig
  type labels = (string * string) list

  type histogram_view = {
    hbounds : float array;  (** upper bucket edges, ascending *)
    hcounts : int array;  (** length [hbounds] + 1; last is +inf *)
    hsum : float;
  }

  type data = Counter of int | Gauge of float | Histogram of histogram_view
  type entry = { name : string; labels : labels; data : data }

  val counter_add : ?labels:labels -> string -> int -> unit
  val gauge_set : ?labels:labels -> string -> float -> unit

  val observe : ?labels:labels -> ?buckets:float array -> string -> float -> unit
  (** Record one histogram observation. [buckets] (strictly increasing
      upper edges, bucket [i] counts [v <= edge i], plus an implicit +inf
      bucket) is read only when the histogram is first created. *)

  val counter_value : ?labels:labels -> string -> int option
  (** Read a counter back (works whether or not recording is enabled). *)

  val snapshot : unit -> entry list
  (** Stable snapshot, sorted by (name, labels). *)

  val snapshot_json : unit -> string
  (** The snapshot as one JSON object (schema [morphqpv-obs-v1]). *)

  val schema : string

  val reset : unit -> unit
end

module Export : sig
  val trace_jsonl : ?since:int -> ?until:int -> unit -> string
  (** Spans as Chrome [trace_event] records, one JSON object per line
      ([ph:"B"/"E"], [ts] in microseconds), loadable in
      [chrome://tracing] / Perfetto. *)

  val event_json : Span.event -> string
  (** One span event as a single Chrome [trace_event] JSON object. *)

  val write_trace : ?since:int -> ?until:int -> string -> unit
  val write_metrics : string -> unit

  val prometheus : unit -> string
  (** The metrics registry in Prometheus text exposition format 0.0.4:
      every series under the [morphqpv_] prefix with a [# TYPE] line per
      metric, histograms with cumulative [le] buckets plus [_sum] and
      [_count], and {!Span.dropped} synthesized at scrape time as
      [morphqpv_obs_span_dropped_total]. *)

  val write_prometheus : string -> unit
end

(** Structured, leveled logging: one flat JSON object per line to a
    process-wide sink, zero-cost when disabled (each site guards on one
    atomic read). Lines automatically carry the current {!Context}
    request id as a [req] field. Enable with [MORPHQPV_LOG=<path>|stderr|-]
    and [MORPHQPV_LOG_LEVEL], or {!Log.configure}. *)
module Log : sig
  type level = Debug | Info | Warn | Error
  type value = S of string | I of int | F of float | B of bool

  type sink =
    [ `Stderr | `Stdout | `File of string | `Fn of string -> unit | `Off ]

  val enabled : level -> bool
  (** One atomic read; true when [level] reaches the configured
      threshold. Guard any log site whose field list is costly. *)

  val configure : ?level:level -> sink -> unit
  (** Route lines to [sink], keeping those at or above [level]
      (default [Info]). [`Off] disables logging entirely. *)

  val emit : level -> string -> (string * value) list -> unit
  (** [emit level event fields] writes one JSONL line
      [{"ts":...,"level":...,"event":event,"req":...,fields...}].
      No-op below the threshold. *)

  val level_of_string : string -> level option
end

(** Request-scoped context: a domain-local request id stamped onto every
    span ([req] attribute) and log line ([req] field) recorded while a
    request is being handled. *)
module Context : sig
  val current : unit -> string option

  val with_request : string -> (unit -> 'a) -> 'a
  (** [with_request id f] runs [f] with [current () = Some id] on this
      domain, restoring the previous value afterwards (re-entrant). *)
end
