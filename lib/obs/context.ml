(* Request-scoped context: a domain-local request id.

   The serve daemon handles requests sequentially on the accept loop, so
   one domain-local slot per domain is enough to scope every span and log
   line recorded while a request is being handled: [Span.with_] stamps
   the current id onto each span's attributes and [Log.emit] onto each
   log line. Work fanned out to [Parallel.Pool] domains runs outside the
   slot (propagating it would mean synchronizing with the submitting
   domain on the hot path); per-request capture of those worker spans is
   instead done by [Span.mark]-bounded reads around the whole request,
   which see every ring. *)

let key = Domain.DLS.new_key (fun () -> (None : string option))

let current () = Domain.DLS.get key

let with_request id f =
  let prev = Domain.DLS.get key in
  Domain.DLS.set key (Some id);
  Fun.protect ~finally:(fun () -> Domain.DLS.set key prev) f
