(* Process-wide metrics registry: counters, gauges and fixed-bucket
   histograms, keyed by (name, sorted label set).

   Writes are name-based rather than handle-based so instrumentation
   sites with dynamic labels (e.g. [gate_applied_total{kind}]) stay one
   line; the registry lookup happens only when observability is enabled,
   behind the caller's [Obs.enabled] guard. Values are [Atomic]s so pool
   workers can bump them concurrently; the registry hashtable itself is
   mutex-protected (creation is rare, lookup cost is the documented
   enabled-mode overhead).

   Counter semantics are deterministic: every instrumented site counts
   work items (gates, shots, MACs), never wall-clock or scheduling facts,
   so snapshots are bit-identical across [MORPHQPV_DOMAINS] settings. *)

type labels = (string * string) list

type hist = {
  bounds : float array;  (** strictly increasing upper bucket edges *)
  counts : int Atomic.t array;  (** length [bounds] + 1; last is +inf *)
  sum : float Atomic.t;
}

type value = VCounter of int Atomic.t | VGauge of float Atomic.t | VHist of hist

let lock = Mutex.create ()
let registry : (string * labels, value) Hashtbl.t = Hashtbl.create 64
let canon labels = List.sort compare labels

let find_or_add name labels mk =
  let key = (name, canon labels) in
  Mutex.lock lock;
  let v =
    match Hashtbl.find_opt registry key with
    | Some v -> v
    | None ->
        let v = mk () in
        Hashtbl.add registry key v;
        v
  in
  Mutex.unlock lock;
  v

let counter_add ?(labels = []) name by =
  if Control.enabled () then
    match find_or_add name labels (fun () -> VCounter (Atomic.make 0)) with
    | VCounter c -> ignore (Atomic.fetch_and_add c by)
    | _ -> ()

let gauge_set ?(labels = []) name v =
  if Control.enabled () then
    match find_or_add name labels (fun () -> VGauge (Atomic.make 0.)) with
    | VGauge g -> Atomic.set g v
    | _ -> ()

let default_buckets = [| 1.; 2.; 4.; 8.; 16.; 64.; 256.; 1024. |]

let rec atomic_addf a v =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (old +. v)) then atomic_addf a v

let observe ?(labels = []) ?buckets name v =
  if Control.enabled () then begin
    let mk () =
      let bounds =
        match buckets with
        | Some b ->
            if Array.length b = 0 then invalid_arg "Obs.Metrics: empty buckets";
            Array.iteri
              (fun i x ->
                if i > 0 && x <= b.(i - 1) then
                  invalid_arg "Obs.Metrics: buckets must increase strictly")
              b;
            Array.copy b
        | None -> default_buckets
      in
      VHist
        {
          bounds;
          counts = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
          sum = Atomic.make 0.;
        }
    in
    match find_or_add name labels mk with
    | VHist h ->
        let n = Array.length h.bounds in
        (* Prometheus-style cumulative-le edges: bucket i counts v <=
           bounds.(i); the extra last bucket is +inf *)
        let rec idx i = if i >= n || v <= h.bounds.(i) then i else idx (i + 1) in
        ignore (Atomic.fetch_and_add h.counts.(idx 0) 1);
        atomic_addf h.sum v
    | _ -> ()
  end

let reset () =
  Mutex.lock lock;
  Hashtbl.reset registry;
  Mutex.unlock lock

(* ----------------------------- reading ------------------------------- *)

type histogram_view = { hbounds : float array; hcounts : int array; hsum : float }
type data = Counter of int | Gauge of float | Histogram of histogram_view
type entry = { name : string; labels : labels; data : data }

let counter_value ?(labels = []) name =
  Mutex.lock lock;
  let v = Hashtbl.find_opt registry (name, canon labels) in
  Mutex.unlock lock;
  match v with Some (VCounter c) -> Some (Atomic.get c) | _ -> None

let snapshot () =
  Mutex.lock lock;
  let all = Hashtbl.fold (fun k v acc -> (k, v) :: acc) registry [] in
  Mutex.unlock lock;
  List.map
    (fun ((name, labels), v) ->
      let data =
        match v with
        | VCounter c -> Counter (Atomic.get c)
        | VGauge g -> Gauge (Atomic.get g)
        | VHist h ->
            Histogram
              {
                hbounds = Array.copy h.bounds;
                hcounts = Array.map Atomic.get h.counts;
                hsum = Atomic.get h.sum;
              }
      in
      { name; labels; data })
    all
  |> List.sort (fun a b ->
         if a.name <> b.name then compare a.name b.name
         else compare a.labels b.labels)

(* ------------------------------- JSON -------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let labels_json labels =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
         labels)
  ^ "}"

let schema = "morphqpv-obs-v1"

let snapshot_json () =
  let entries = snapshot () in
  let pick f = List.filter_map f entries in
  let counters =
    pick (fun e ->
        match e.data with
        | Counter v ->
            Some
              (Printf.sprintf "{\"name\":\"%s\",\"labels\":%s,\"value\":%d}"
                 (json_escape e.name) (labels_json e.labels) v)
        | _ -> None)
  in
  let gauges =
    pick (fun e ->
        match e.data with
        | Gauge v ->
            Some
              (Printf.sprintf "{\"name\":\"%s\",\"labels\":%s,\"value\":%.9g}"
                 (json_escape e.name) (labels_json e.labels) v)
        | _ -> None)
  in
  let histograms =
    pick (fun e ->
        match e.data with
        | Histogram h ->
            let buckets =
              List.init
                (Array.length h.hcounts)
                (fun i ->
                  let le =
                    if i < Array.length h.hbounds then
                      Printf.sprintf "%.9g" h.hbounds.(i)
                    else "\"+inf\""
                  in
                  Printf.sprintf "{\"le\":%s,\"count\":%d}" le h.hcounts.(i))
            in
            let count = Array.fold_left ( + ) 0 h.hcounts in
            Some
              (Printf.sprintf
                 "{\"name\":\"%s\",\"labels\":%s,\"buckets\":[%s],\"sum\":%.9g,\"count\":%d}"
                 (json_escape e.name) (labels_json e.labels)
                 (String.concat "," buckets) h.hsum count)
        | _ -> None)
  in
  Printf.sprintf
    "{\"schema\":\"%s\",\"counters\":[%s],\"gauges\":[%s],\"histograms\":[%s]}"
    schema
    (String.concat "," counters)
    (String.concat "," gauges)
    (String.concat "," histograms)
