(* Structured, leveled logging: one JSON object per line to a sink.

   Like [Span], logging is zero-cost when disabled: every log site is
   guarded by [enabled level] — a single atomic int read — and builds no
   field list, formats nothing and takes no lock on the disabled path.
   The sink is process-wide; lines are serialized under one mutex so
   pool domains never interleave bytes.

   Each line is a flat JSON object:

     {"ts":<unix seconds>,"level":"info","event":"request.finish",
      "req":"<request id>", ...fields}

   [req] is stamped automatically from the domain-local {!Context} when
   a request is in scope, so every line a request produces carries its
   id without threading it through the call tree.

   Enable with [MORPHQPV_LOG=<path>|stderr|-] (and optionally
   [MORPHQPV_LOG_LEVEL=debug|info|warn|error], default [info]) or
   {!configure} at run time. *)

type level = Debug | Info | Warn | Error

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3
let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type value = S of string | I of int | F of float | B of bool

type sink =
  [ `Stderr | `Stdout | `File of string | `Fn of string -> unit | `Off ]

(* [threshold] doubles as the enabled switch: 100 (no level reaches it)
   means disabled, so [enabled] is one atomic load + compare *)
let disabled_threshold = 100
let threshold = Atomic.make disabled_threshold
let enabled level = severity level >= Atomic.get threshold

let lock = Mutex.create ()
let writer : (string -> unit) ref = ref (fun _ -> ())

let configure ?(level = Info) sink =
  Mutex.lock lock;
  (writer :=
     match sink with
     | `Off -> fun _ -> ()
     | `Stderr ->
         fun line ->
           output_string stderr line;
           output_char stderr '\n';
           flush stderr
     | `Stdout ->
         fun line ->
           print_string line;
           print_newline ()
     | `File path ->
         let oc =
           open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
         in
         fun line ->
           output_string oc line;
           output_char oc '\n';
           flush oc
     | `Fn f -> f);
  Atomic.set threshold
    (match sink with `Off -> disabled_threshold | _ -> severity level);
  Mutex.unlock lock

(* ------------------------------ lines -------------------------------- *)

let add_escaped b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_field b (k, v) =
  Buffer.add_char b ',';
  add_escaped b k;
  Buffer.add_char b ':';
  match v with
  | S s -> add_escaped b s
  | I i -> Buffer.add_string b (string_of_int i)
  | F x ->
      Buffer.add_string b
        (if Float.is_finite x then Printf.sprintf "%.9g" x else "null")
  | B v -> Buffer.add_string b (if v then "true" else "false")

let line level event fields =
  let b = Buffer.create 128 in
  Buffer.add_string b (Printf.sprintf "{\"ts\":%.6f" (Unix.gettimeofday ()));
  add_field b ("level", S (level_name level));
  add_field b ("event", S event);
  (match Context.current () with
  | Some req when not (List.mem_assoc "req" fields) ->
      add_field b ("req", S req)
  | _ -> ());
  List.iter (add_field b) fields;
  Buffer.add_char b '}';
  Buffer.contents b

let emit level event fields =
  if enabled level then begin
    let s = line level event fields in
    Mutex.lock lock;
    (try !writer s with exn -> Mutex.unlock lock; raise exn);
    Mutex.unlock lock
  end

(* -------------------------- env bootstrap ----------------------------- *)

let () =
  match Sys.getenv_opt "MORPHQPV_LOG" with
  | None | Some "" -> ()
  | Some dest ->
      let level =
        Option.value ~default:Info
          (Option.bind (Sys.getenv_opt "MORPHQPV_LOG_LEVEL") level_of_string)
      in
      let sink =
        match dest with
        | "stderr" -> `Stderr
        | "-" | "stdout" -> `Stdout
        | path -> `File path
      in
      (* an unwritable MORPHQPV_LOG path must not kill the process *)
      (try configure ~level sink with Sys_error _ -> configure ~level `Stderr)
