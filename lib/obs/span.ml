(* Nestable tracing spans, buffered lock-free per domain.

   Each domain owns one append-only ring (created on its first span via
   [Domain.DLS], registered in a global list under a mutex exactly once),
   so recording a span never takes a lock and never synchronizes with
   other domains — a worker fanned out by [Parallel.Pool] writes into its
   own ring and the rings are merged (by global sequence number) only when
   a reader asks for [events]/[summary]. Parent links come from a
   domain-local stack: spans nested on one domain chain correctly, spans
   opened on a pool worker start a fresh root there (the [tid] field keeps
   the worker attribution; cross-domain parentage is intentionally not
   tracked, as it would require synchronizing with the submitting domain).

   The ring is bounded ([max_events_per_domain]); once full, new events
   are counted in [dropped] rather than overwriting history, so a trace
   always holds a prefix of the run. *)

type ph = B | E

type event = {
  seq : int;  (** global sequence number — total order across domains *)
  ts_us : float;  (** microseconds since process start *)
  name : string;
  ph : ph;
  tid : int;  (** recording domain id *)
  span : int;  (** span id (the B event's [seq]) *)
  parent : int;  (** enclosing span id on the same domain, [-1] for roots *)
  attrs : (string * string) list;
}

let max_events_per_domain = 1 lsl 16

type ring = {
  tid : int;
  mutable buf : event array;
  mutable len : int;
  mutable dropped : int;
  mutable stack : int list;  (** open span ids, innermost first *)
}

let rings_lock = Mutex.create ()
let rings : ring list ref = ref []
let seq = Atomic.make 0
let next_seq () = Atomic.fetch_and_add seq 1

let dummy =
  { seq = -1; ts_us = 0.; name = ""; ph = B; tid = 0; span = -1; parent = -1; attrs = [] }

let key =
  Domain.DLS.new_key (fun () ->
      let r =
        {
          tid = (Domain.self () :> int);
          buf = [||];
          len = 0;
          dropped = 0;
          stack = [];
        }
      in
      Mutex.lock rings_lock;
      rings := r :: !rings;
      Mutex.unlock rings_lock;
      r)

let my_ring () = Domain.DLS.get key

let push r ev =
  if r.len >= max_events_per_domain then r.dropped <- r.dropped + 1
  else begin
    if r.len >= Array.length r.buf then begin
      let cap = max 256 (min max_events_per_domain (2 * Array.length r.buf)) in
      let nb = Array.make cap dummy in
      Array.blit r.buf 0 nb 0 r.len;
      r.buf <- nb
    end;
    r.buf.(r.len) <- ev;
    r.len <- r.len + 1
  end

let with_ ?(attrs = []) ~name f =
  if not (Control.enabled ()) then f ()
  else begin
    let r = my_ring () in
    let sid = next_seq () in
    let parent = match r.stack with [] -> -1 | p :: _ -> p in
    (* request-scoped tracing: spans recorded while a request context is
       open carry its id, so one request's trace filters out of a shared
       stream by attribute as well as by mark-bounded reads *)
    let attrs =
      match Context.current () with
      | Some req -> ("req", req) :: attrs
      | None -> attrs
    in
    push r
      { seq = sid; ts_us = Control.now_us (); name; ph = B; tid = r.tid;
        span = sid; parent; attrs };
    r.stack <- sid :: r.stack;
    Fun.protect
      ~finally:(fun () ->
        (match r.stack with s :: tl when s = sid -> r.stack <- tl | _ -> ());
        push r
          { seq = next_seq (); ts_us = Control.now_us (); name; ph = E;
            tid = r.tid; span = sid; parent; attrs = [] })
      f
  end

(* [mark ()] is a watermark: [events ~since:(mark ())] later returns only
   events recorded after it — how [Characterize.run]/[Verify] scope their
   own span-tree summary without resetting global state. *)
let mark () = Atomic.get seq

let snapshot_rings () =
  Mutex.lock rings_lock;
  let rs = !rings in
  Mutex.unlock rings_lock;
  rs

let events ?(since = -1) ?(until = max_int) () =
  let out = ref [] in
  List.iter
    (fun r ->
      (* read [len] once; concurrent pushes beyond it are simply not yet
         part of this snapshot *)
      let len = r.len in
      for i = len - 1 downto 0 do
        let ev = r.buf.(i) in
        (* [mark] returns the next seq to be assigned, so the first event
           recorded after a mark has seq = mark — hence >= for [since]
           and strict < for [until]: [events ~since:m0 ~until:m1] is
           exactly what ran between the two marks *)
        if ev.seq >= since && ev.seq < until then out := ev :: !out
      done)
    (snapshot_rings ());
  List.sort (fun a b -> compare a.seq b.seq) !out

let dropped () =
  List.fold_left (fun acc r -> acc + r.dropped) 0 (snapshot_rings ())

let reset () =
  Mutex.lock rings_lock;
  List.iter
    (fun r ->
      r.len <- 0;
      r.dropped <- 0;
      r.stack <- [])
    !rings;
  Mutex.unlock rings_lock

(* Mark-based reclaim for long-running processes: drop every buffered
   event with [seq < before] so the bounded rings never saturate across
   requests. The serve daemon calls this after archiving a request's
   events into its flight recorder; without it the 64Ki ring fills once
   and every later request traces as empty (only [dropped] moving).

   Only quiescent rings (no open span) are compacted — an open span's B
   event must survive until its E lands or [summary] would lose the
   pair. The caller must ensure no other domain is recording while it
   reclaims (the daemon runs requests sequentially and pool workers are
   idle between requests); [dropped] is intentionally preserved — it is
   a cumulative saturation counter, exported as
   [morphqpv_obs_span_dropped_total]. *)
let reclaim ~before () =
  List.iter
    (fun r ->
      if r.stack = [] && r.len > 0 then begin
        let len = r.len in
        (* seqs are appended in increasing order per ring, so survivors
           form a suffix *)
        let keep_from = ref len in
        (try
           for i = 0 to len - 1 do
             if r.buf.(i).seq >= before then begin
               keep_from := i;
               raise Exit
             end
           done
         with Exit -> ());
        let kept = len - !keep_from in
        if !keep_from > 0 then begin
          if kept > 0 then Array.blit r.buf !keep_from r.buf 0 kept;
          Array.fill r.buf kept !keep_from dummy;
          r.len <- kept
        end
      end)
    (snapshot_rings ())

(* ----------------------------- summary ------------------------------- *)

type row = { name : string; count : int; total_s : float }
type summary = row list

let summary ?since ?until () =
  let open_b : (int, event) Hashtbl.t = Hashtbl.create 32 in
  let agg : (string, int * float) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun ev ->
      match ev.ph with
      | B -> Hashtbl.replace open_b ev.span ev
      | E -> (
          match Hashtbl.find_opt open_b ev.span with
          | None -> ()
          | Some b ->
              Hashtbl.remove open_b ev.span;
              let dur = Float.max 0. (ev.ts_us -. b.ts_us) in
              let c, t =
                Option.value ~default:(0, 0.) (Hashtbl.find_opt agg ev.name)
              in
              Hashtbl.replace agg ev.name (c + 1, t +. dur)))
    (events ?since ?until ());
  Hashtbl.fold
    (fun name (count, us) acc -> { name; count; total_s = us /. 1e6 } :: acc)
    agg []
  |> List.sort (fun a b ->
         if a.total_s <> b.total_s then compare b.total_s a.total_s
         else compare a.name b.name)
