(* The single observability switch and the trace clock.

   Every instrumentation site in the tree is guarded by one [enabled ()]
   read (an [Atomic.get] of an immediate bool), so a disabled build pays
   one predictable branch per *call site*, never per amplitude — the
   [obs_transparent] testkit oracle pins that enabling the switch leaves
   every engine's output bit-identical. *)

let flag =
  Atomic.make
    (match Sys.getenv_opt "MORPHQPV_OBS" with
    | Some ("1" | "true" | "yes" | "on") -> true
    | _ -> false)

let enabled () = Atomic.get flag
let configure ~enabled:e = Atomic.set flag e

(* Trace timestamps are microseconds since process start (Chrome
   [trace_event]'s [ts] unit). [Unix.gettimeofday] is the only wall clock
   available without extra dependencies; subtracting a fixed epoch keeps
   the values monotone in practice and small enough for [%.3f]. Tests
   override the clock to pin golden exports. *)
let epoch = Unix.gettimeofday ()
let default_clock () = (Unix.gettimeofday () -. epoch) *. 1e6
let clock = Atomic.make default_clock
let now_us () = (Atomic.get clock) ()

let set_clock = function
  | Some f -> Atomic.set clock f
  | None -> Atomic.set clock default_clock
