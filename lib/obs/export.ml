(* Exporters: Chrome trace_event JSONL for spans, JSON for metrics.

   One event per line, each a complete [ph:"B"/"E"] duration record that
   `chrome://tracing` / Perfetto accept directly (wrap the lines in a JSON
   array, or load the file as-is — both UIs tolerate newline-delimited
   event streams). [pid] is fixed at 1; [tid] is the recording domain. *)

let ph_string = function Span.B -> "B" | Span.E -> "E"

let event_json (ev : Span.event) =
  let args =
    match ev.attrs with
    | [] -> ""
    | attrs -> Printf.sprintf ",\"args\":%s" (Metrics.labels_json attrs)
  in
  Printf.sprintf
    "{\"name\":\"%s\",\"cat\":\"morphqpv\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":1,\"tid\":%d%s}"
    (Metrics.json_escape ev.Span.name)
    (ph_string ev.Span.ph) ev.Span.ts_us ev.Span.tid args

let trace_jsonl ?since () =
  let b = Buffer.create 4096 in
  List.iter
    (fun ev ->
      Buffer.add_string b (event_json ev);
      Buffer.add_char b '\n')
    (Span.events ?since ());
  Buffer.contents b

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let write_trace ?since path = write_file path (trace_jsonl ?since ())
let write_metrics path = write_file path (Metrics.snapshot_json () ^ "\n")
