(* Exporters: Chrome trace_event JSONL for spans, JSON for metrics.

   One event per line, each a complete [ph:"B"/"E"] duration record that
   `chrome://tracing` / Perfetto accept directly (wrap the lines in a JSON
   array, or load the file as-is — both UIs tolerate newline-delimited
   event streams). [pid] is fixed at 1; [tid] is the recording domain. *)

let ph_string = function Span.B -> "B" | Span.E -> "E"

let event_json (ev : Span.event) =
  let args =
    match ev.attrs with
    | [] -> ""
    | attrs -> Printf.sprintf ",\"args\":%s" (Metrics.labels_json attrs)
  in
  Printf.sprintf
    "{\"name\":\"%s\",\"cat\":\"morphqpv\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":1,\"tid\":%d%s}"
    (Metrics.json_escape ev.Span.name)
    (ph_string ev.Span.ph) ev.Span.ts_us ev.Span.tid args

let trace_jsonl ?since ?until () =
  let b = Buffer.create 4096 in
  List.iter
    (fun ev ->
      Buffer.add_string b (event_json ev);
      Buffer.add_char b '\n')
    (Span.events ?since ?until ());
  Buffer.contents b

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let write_trace ?since ?until path = write_file path (trace_jsonl ?since ?until ())
let write_metrics path = write_file path (Metrics.snapshot_json () ^ "\n")

(* --------------------- Prometheus text exposition --------------------- *)

(* Text exposition format 0.0.4: every registry series under one
   [morphqpv_] prefix, with a [# TYPE] line per metric name (entries with
   the same name are adjacent in the sorted snapshot). Histograms are
   rendered with Prometheus' CUMULATIVE [le] buckets — the registry
   stores per-bucket counts, so partial sums are taken here — plus the
   [_sum]/[_count] series. [Span.dropped] is synthesized at scrape time
   as [morphqpv_obs_span_dropped_total] so ring saturation is visible to
   an operator without polling the profile subcommand; it is not a
   registry counter because drop counts depend on how events distribute
   over domain rings, which would break the counters' bit-identical-
   across-domain-counts contract. *)

let prefix = "morphqpv_"

let prom_name name =
  let name =
    if
      String.length name >= String.length prefix
      && String.sub name 0 (String.length prefix) = prefix
    then name
    else prefix ^ name
  in
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c | _ -> '_')
    name

let prom_label_value v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let prom_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_label_value v))
             labels)
      ^ "}"

let prom_float x =
  if Float.is_nan x then "NaN"
  else if x = Float.infinity then "+Inf"
  else if x = Float.neg_infinity then "-Inf"
  else Printf.sprintf "%.9g" x

let prometheus () =
  let b = Buffer.create 4096 in
  let last_typed = ref "" in
  let emit_type name kind =
    if name <> !last_typed then begin
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind);
      last_typed := name
    end
  in
  List.iter
    (fun (e : Metrics.entry) ->
      let name = prom_name e.name in
      let labels = prom_labels e.labels in
      match e.data with
      | Metrics.Counter v ->
          emit_type name "counter";
          Buffer.add_string b (Printf.sprintf "%s%s %d\n" name labels v)
      | Metrics.Gauge g ->
          emit_type name "gauge";
          Buffer.add_string b
            (Printf.sprintf "%s%s %s\n" name labels (prom_float g))
      | Metrics.Histogram h ->
          emit_type name "histogram";
          let cum = ref 0 in
          Array.iteri
            (fun i c ->
              cum := !cum + c;
              let le =
                if i < Array.length h.Metrics.hbounds then
                  prom_float h.Metrics.hbounds.(i)
                else "+Inf"
              in
              Buffer.add_string b
                (Printf.sprintf "%s_bucket%s %d\n" name
                   (prom_labels (e.labels @ [ ("le", le) ]))
                   !cum))
            h.Metrics.hcounts;
          Buffer.add_string b
            (Printf.sprintf "%s_sum%s %s\n" name labels
               (prom_float h.Metrics.hsum));
          Buffer.add_string b (Printf.sprintf "%s_count%s %d\n" name labels !cum))
    (Metrics.snapshot ());
  let dropped_name = prom_name "obs_span_dropped_total" in
  emit_type dropped_name "counter";
  Buffer.add_string b
    (Printf.sprintf "%s %d\n" dropped_name (Span.dropped ()));
  Buffer.contents b

let write_prometheus path = write_file path (prometheus ())
