(* Aaronson & Gottesman, "Improved simulation of stabilizer circuits"
   (PRA 70, 052328). Rows 0..n-1 are destabilizers, n..2n-1 stabilizers,
   plus one scratch row for deterministic measurements. Row i represents
   the Pauli (-1)^r(i) * prod_j (X_j^x(i,j) Z_j^z(i,j)) under the XZ product
   convention tracked by the g-function below. *)

type t = {
  n : int;
  xs : bool array array;  (* (2n+1) x n *)
  zs : bool array array;
  rs : bool array;  (* 2n+1 *)
}

let make n =
  if n <= 0 then invalid_arg "Tableau.make: need at least one qubit";
  let rows = (2 * n) + 1 in
  let t =
    {
      n;
      xs = Array.init rows (fun _ -> Array.make n false);
      zs = Array.init rows (fun _ -> Array.make n false);
      rs = Array.make rows false;
    }
  in
  for i = 0 to n - 1 do
    t.xs.(i).(i) <- true;
    (* destabilizer X_i *)
    t.zs.(n + i).(i) <- true (* stabilizer Z_i *)
  done;
  t

let num_qubits t = t.n

let copy t =
  {
    n = t.n;
    xs = Array.map Array.copy t.xs;
    zs = Array.map Array.copy t.zs;
    rs = Array.copy t.rs;
  }

let check_q t q =
  if q < 0 || q >= t.n then invalid_arg "Tableau: qubit out of range"

let h t q =
  check_q t q;
  for i = 0 to (2 * t.n) - 1 do
    let xi = t.xs.(i).(q) and zi = t.zs.(i).(q) in
    if xi && zi then t.rs.(i) <- not t.rs.(i);
    t.xs.(i).(q) <- zi;
    t.zs.(i).(q) <- xi
  done

let s t q =
  check_q t q;
  for i = 0 to (2 * t.n) - 1 do
    let xi = t.xs.(i).(q) and zi = t.zs.(i).(q) in
    if xi && zi then t.rs.(i) <- not t.rs.(i);
    t.zs.(i).(q) <- zi <> xi
  done

let sdg t q =
  (* S^3 = S† *)
  s t q;
  s t q;
  s t q

let z t q =
  (* Z = S S *)
  s t q;
  s t q

let x t q =
  check_q t q;
  (* X flips the sign of rows containing Z on q *)
  for i = 0 to (2 * t.n) - 1 do
    if t.zs.(i).(q) then t.rs.(i) <- not t.rs.(i)
  done

let y t q =
  check_q t q;
  for i = 0 to (2 * t.n) - 1 do
    if t.zs.(i).(q) <> t.xs.(i).(q) then t.rs.(i) <- not t.rs.(i)
  done

let cx t a b =
  check_q t a;
  check_q t b;
  if a = b then invalid_arg "Tableau.cx: identical qubits";
  for i = 0 to (2 * t.n) - 1 do
    let xa = t.xs.(i).(a) and za = t.zs.(i).(a) in
    let xb = t.xs.(i).(b) and zb = t.zs.(i).(b) in
    (* r ^= x_a z_b (x_b XOR z_a XOR 1) *)
    if xa && zb && xb = za then t.rs.(i) <- not t.rs.(i);
    t.xs.(i).(b) <- xb <> xa;
    t.zs.(i).(a) <- za <> zb
  done

let cz t a b =
  h t b;
  cx t a b;
  h t b

let swap t a b =
  cx t a b;
  cx t b a;
  cx t a b

(* exponent of i (mod 4) when multiplying single-qubit Paulis
   (x1,z1) * (x2,z2) in the XZ convention *)
let g x1 z1 x2 z2 =
  match (x1, z1) with
  | false, false -> 0
  | true, true -> (if z2 then 1 else 0) - if x2 then 1 else 0
  | true, false -> if z2 then (if x2 then 1 else -1) else 0
  | false, true -> if x2 then (if z2 then -1 else 1) else 0

(* row h := row h * row i *)
let rowsum t hrow irow =
  let acc = ref 0 in
  for j = 0 to t.n - 1 do
    acc := !acc + g t.xs.(irow).(j) t.zs.(irow).(j) t.xs.(hrow).(j) t.zs.(hrow).(j)
  done;
  let total =
    (2 * (if t.rs.(hrow) then 1 else 0)) + (2 * if t.rs.(irow) then 1 else 0) + !acc
  in
  let m = ((total mod 4) + 4) mod 4 in
  (* for valid tableaus m is always 0 or 2 *)
  t.rs.(hrow) <- m = 2;
  for j = 0 to t.n - 1 do
    t.xs.(hrow).(j) <- t.xs.(hrow).(j) <> t.xs.(irow).(j);
    t.zs.(hrow).(j) <- t.zs.(hrow).(j) <> t.zs.(irow).(j)
  done

let measure rng t q =
  check_q t q;
  let n = t.n in
  (* a stabilizer anticommuting with Z_q? *)
  let p = ref (-1) in
  for i = n to (2 * n) - 1 do
    if !p = -1 && t.xs.(i).(q) then p := i
  done;
  if !p >= 0 then begin
    let p = !p in
    for i = 0 to (2 * n) - 1 do
      if i <> p && t.xs.(i).(q) then rowsum t i p
    done;
    (* old stabilizer becomes the destabilizer *)
    let d = p - n in
    Array.blit t.xs.(p) 0 t.xs.(d) 0 n;
    Array.blit t.zs.(p) 0 t.zs.(d) 0 n;
    t.rs.(d) <- t.rs.(p);
    Array.fill t.xs.(p) 0 n false;
    Array.fill t.zs.(p) 0 n false;
    let outcome = Stats.Rng.bool rng in
    t.rs.(p) <- outcome;
    t.zs.(p).(q) <- true;
    if outcome then 1 else 0
  end
  else begin
    (* deterministic: accumulate into the scratch row *)
    let scratch = 2 * n in
    Array.fill t.xs.(scratch) 0 n false;
    Array.fill t.zs.(scratch) 0 n false;
    t.rs.(scratch) <- false;
    for i = 0 to n - 1 do
      if t.xs.(i).(q) then rowsum t scratch (i + n)
    done;
    if t.rs.(scratch) then 1 else 0
  end

let expectation_z t q =
  check_q t q;
  let n = t.n in
  let random = ref false in
  for i = n to (2 * n) - 1 do
    if t.xs.(i).(q) then random := true
  done;
  if !random then 0
  else begin
    let probe = copy t in
    let outcome = measure (Stats.Rng.make 0) probe q in
    if outcome = 0 then 1 else -1
  end

(* <M> for a Hermitian Pauli M given as X/Z bitmasks (bit q of [x]/[z]
   set = letter X/Z on qubit q; both = Y). M anticommuting with any
   stabilizer generator gives 0. Otherwise M lies in +-(stabilizer
   group): writing B = {i : destabilizer D_i anticommutes with M}, the
   product prod_{i in B} S_i has the same X/Z bits as M, and
   accumulating those rows into the zeroed scratch row (the same trick
   as the deterministic branch of [measure]) recovers its sign. *)
let expectation_pauli t ~x ~z =
  let n = t.n in
  if n > 62 then invalid_arg "Tableau.expectation_pauli: more than 62 qubits";
  let anticommutes row =
    let p = ref false in
    for j = 0 to n - 1 do
      let xm = (x lsr j) land 1 = 1 and zm = (z lsr j) land 1 = 1 in
      if (t.xs.(row).(j) && zm) <> (t.zs.(row).(j) && xm) then p := not !p
    done;
    !p
  in
  let random = ref false in
  for i = n to (2 * n) - 1 do
    if anticommutes i then random := true
  done;
  if !random then 0
  else begin
    let scratch = 2 * n in
    Array.fill t.xs.(scratch) 0 n false;
    Array.fill t.zs.(scratch) 0 n false;
    t.rs.(scratch) <- false;
    for i = 0 to n - 1 do
      if anticommutes i then rowsum t scratch (i + n)
    done;
    if t.rs.(scratch) then -1 else 1
  end

let apply_gate (gate : Circuit.Gate.t) t =
  if Obs.enabled () then
    Obs.Metrics.counter_add
      ~labels:[ ("kind", gate.Circuit.Gate.name) ]
      "tableau_gate_applied_total" 1;
  match
    (gate.Circuit.Gate.name, gate.Circuit.Gate.controls, gate.Circuit.Gate.targets)
  with
  | "h", [], [ q ] -> h t q
  | "s", [], [ q ] -> s t q
  | "sdg", [], [ q ] -> sdg t q
  | "x", [], [ q ] -> x t q
  | "y", [], [ q ] -> y t q
  | "z", [], [ q ] -> z t q
  | "id", [], [ _ ] -> ()
  | "x", [ c ], [ q ] -> cx t c q
  | "z", [ c ], [ q ] -> cz t c q
  | "swap", [], [ a; b ] -> swap t a b
  | name, _, _ ->
      invalid_arg (Printf.sprintf "Tableau.apply_gate: non-Clifford gate %s" name)

let clifford_gate (gate : Circuit.Gate.t) =
  match
    (gate.Circuit.Gate.name, gate.Circuit.Gate.controls, gate.Circuit.Gate.targets)
  with
  | ("h" | "s" | "sdg" | "x" | "y" | "z" | "id"), [], [ _ ] -> true
  | ("x" | "z"), [ _ ], [ _ ] -> true
  | "swap", [], [ _; _ ] -> true
  | _ -> false

let is_clifford_circuit c =
  List.for_all
    (function
      | Circuit.Instr.Gate gate -> clifford_gate gate
      | Circuit.Instr.Tracepoint _ | Circuit.Instr.Barrier _ -> true
      | _ -> false)
    (Circuit.instrs c)

let run c =
  let t = make (Circuit.num_qubits c) in
  List.iter
    (function
      | Circuit.Instr.Gate gate -> apply_gate gate t
      | Circuit.Instr.Tracepoint _ | Circuit.Instr.Barrier _ -> ()
      | _ -> invalid_arg "Tableau.run: measurement-free circuits only")
    (Circuit.instrs c);
  t

let stabilizer_strings t =
  List.init t.n (fun i ->
      let row = t.n + i in
      let sign = if t.rs.(row) then "-" else "+" in
      let body =
        String.init t.n (fun k ->
            let j = t.n - 1 - k in
            match (t.xs.(row).(j), t.zs.(row).(j)) with
            | false, false -> 'I'
            | true, false -> 'X'
            | false, true -> 'Z'
            | true, true -> 'Y')
      in
      (sign, body))

let density t =
  let open Linalg in
  let n = t.n in
  let d = 1 lsl n in
  let generator row =
    (* the g-function phase bookkeeping uses the Hermitian convention where
       (x=1, z=1) denotes Y (= i XZ), so the generator is a signed Pauli
       string *)
    let acc = ref (Cmat.identity 1) in
    for k = n - 1 downto 0 do
      let op =
        match (t.xs.(row).(k), t.zs.(row).(k)) with
        | false, false -> Qstate.Pauli.I
        | true, false -> Qstate.Pauli.X
        | false, true -> Qstate.Pauli.Z
        | true, true -> Qstate.Pauli.Y
      in
      acc := Cmat.kron !acc (Qstate.Pauli.matrix1 op)
    done;
    if t.rs.(row) then Cmat.rscale (-1.) !acc else !acc
  in
  let rho = ref (Cmat.identity d) in
  for i = 0 to n - 1 do
    let gmat = generator (n + i) in
    rho := Cmat.rscale 0.5 (Cmat.add !rho (Cmat.mul gmat !rho))
  done;
  !rho

let random ?gates rng n =
  let t = make n in
  let budget = match gates with Some g -> g | None -> (2 * n * n) + 12 in
  for _ = 1 to budget do
    match Stats.Rng.int rng 3 with
    | 0 -> h t (Stats.Rng.int rng n)
    | 1 -> s t (Stats.Rng.int rng n)
    | _ ->
        if n >= 2 then begin
          let a = Stats.Rng.int rng n in
          let b = ref (Stats.Rng.int rng n) in
          while !b = a do
            b := Stats.Rng.int rng n
          done;
          cx t a !b
        end
        else h t 0
  done;
  t
