(** Stabilizer (CHP) simulation of Clifford circuits in the
    Aaronson-Gottesman tableau representation: O(n) per gate, O(n^2) per
    measurement, regardless of entanglement.

    The Clifford group underpins MorphQPV's input sampling (Section 5.1);
    this simulator prepares and manipulates those states at polynomial cost
    and provides an exact cross-check for the dense engines. *)

type t

(** [make n] is the stabilizer state [|0...0>]. *)
val make : int -> t

val num_qubits : t -> int
val copy : t -> t

(* In-place Clifford generators *)
val h : t -> int -> unit
val s : t -> int -> unit
val sdg : t -> int -> unit
val x : t -> int -> unit
val y : t -> int -> unit
val z : t -> int -> unit
val cx : t -> int -> int -> unit
val cz : t -> int -> int -> unit
val swap : t -> int -> int -> unit

(** [apply_gate g t] dispatches a circuit gate; raises [Invalid_argument] on
    non-Clifford gates (parameterized rotations etc.). *)
val apply_gate : Circuit.Gate.t -> t -> unit

(** [is_clifford_circuit c] — all gates dispatchable and no measurement. *)
val is_clifford_circuit : Circuit.t -> bool

(** [run c] executes a measurement-free Clifford circuit from [|0...0>]. *)
val run : Circuit.t -> t

(** [measure rng t q] measures qubit [q] in the Z basis, collapsing the
    tableau, and returns the outcome. *)
val measure : Stats.Rng.t -> t -> int -> int

(** [expectation_z t q] is [<Z_q>] without collapsing: +1, -1 or 0
    (0 when the outcome is random). *)
val expectation_z : t -> int -> int

(** [expectation_pauli t ~x ~z] is the expectation of the Hermitian Pauli
    whose letter on qubit [q] is X when bit [q] of [x] is set, Z when bit
    [q] of [z] is set, Y when both: +1, -1, or 0 (0 when M anticommutes
    with some stabilizer). Does not collapse the state. At most 62
    qubits (bitmask-bound). *)
val expectation_pauli : t -> x:int -> z:int -> int

(** [stabilizer_strings t] renders the [n] stabilizer generators as
    [(sign, pauli-string)] pairs, e.g. [("+", "XXX")] (for inspection and
    tests; highest qubit leftmost). *)
val stabilizer_strings : t -> (string * string) list

(** [density t] materializes the density matrix
    [prod_i (I + G_i) / 2^n] — exponential; intended for tests on few
    qubits. *)
val density : t -> Linalg.Cmat.t

(** [random rng n ~gates] applies a random [{H, S, CX}] word of the given
    length (default [2 n^2 + 12]) — an approximately uniform stabilizer
    state. *)
val random : ?gates:int -> Stats.Rng.t -> int -> t
