type solution = { x : float array; value : float; evals : int }

let counting_objective (obj : Objective.t) =
  let evals = ref 0 in
  let f x =
    incr evals;
    obj.Objective.f x
  in
  ({ obj with Objective.f }, evals)

let better a b = if b.value > a.value then b else a

(* iteration counts are closed-form in the solver parameters and eval
   counts come from [counting_objective], so both are independent of
   timing and domain count *)
let record_solver name ~iterations ~evals =
  if Obs.enabled () then begin
    let labels = [ ("solver", name) ] in
    Obs.Metrics.counter_add ~labels "solver_iterations_total" iterations;
    Obs.Metrics.counter_add ~labels "solver_evals_total" evals
  end

let adam ?(iters = 200) ?(restarts = 4) ?(lr = 0.05) rng obj =
  Obs.Span.with_ ~name:"solver.sgd-adam" @@ fun () ->
  let obj, evals = counting_objective obj in
  let dim = obj.Objective.dim in
  let best = ref { x = Array.make dim 0.; value = neg_infinity; evals = 0 } in
  for _ = 1 to restarts do
    let x = Objective.random_point obj rng in
    let m = Array.make dim 0. and v = Array.make dim 0. in
    let beta1 = 0.9 and beta2 = 0.999 and eps = 1e-8 in
    for t = 1 to iters do
      let g = Objective.num_grad obj x in
      for i = 0 to dim - 1 do
        m.(i) <- (beta1 *. m.(i)) +. ((1. -. beta1) *. g.(i));
        v.(i) <- (beta2 *. v.(i)) +. ((1. -. beta2) *. g.(i) *. g.(i));
        let mh = m.(i) /. (1. -. (beta1 ** float_of_int t)) in
        let vh = v.(i) /. (1. -. (beta2 ** float_of_int t)) in
        x.(i) <- x.(i) +. (lr *. mh /. (sqrt vh +. eps))
      done;
      Objective.clamp obj x
    done;
    let value = obj.Objective.f x in
    best := better !best { x = Array.copy x; value; evals = 0 }
  done;
  record_solver "sgd-adam" ~iterations:(restarts * iters) ~evals:!evals;
  { !best with evals = !evals }

let anneal ?(iters = 2000) ?(restarts = 2) ?(temp0 = 1.) rng obj =
  Obs.Span.with_ ~name:"solver.annealing" @@ fun () ->
  let obj, evals = counting_objective obj in
  let dim = obj.Objective.dim in
  let best = ref { x = Array.make dim 0.; value = neg_infinity; evals = 0 } in
  for _ = 1 to restarts do
    let x = Objective.random_point obj rng in
    let fx = ref (obj.Objective.f x) in
    best := better !best { x = Array.copy x; value = !fx; evals = 0 };
    let cooling = exp (log 1e-3 /. float_of_int iters) in
    let temp = ref temp0 in
    for _ = 1 to iters do
      let i = Stats.Rng.int rng dim in
      let width = obj.Objective.upper.(i) -. obj.Objective.lower.(i) in
      let old = x.(i) in
      x.(i) <- x.(i) +. Stats.Rng.gaussian rng ~mu:0. ~sigma:(0.2 *. width *. !temp);
      Objective.clamp obj x;
      let fnew = obj.Objective.f x in
      let accept =
        fnew >= !fx
        || Stats.Rng.float rng 1. < exp ((fnew -. !fx) /. Float.max 1e-12 !temp)
      in
      if accept then begin
        fx := fnew;
        if fnew > !best.value then
          best := { x = Array.copy x; value = fnew; evals = 0 }
      end
      else x.(i) <- old;
      temp := !temp *. cooling
    done
  done;
  record_solver "annealing" ~iterations:(restarts * iters) ~evals:!evals;
  { !best with evals = !evals }

let genetic ?(generations = 60) ?(population = 40) ?(mutation = 0.15) rng obj =
  Obs.Span.with_ ~name:"solver.genetic" @@ fun () ->
  let obj, evals = counting_objective obj in
  let dim = obj.Objective.dim in
  let eval x = obj.Objective.f x in
  let pop =
    Array.init population (fun _ ->
        let x = Objective.random_point obj rng in
        (x, eval x))
  in
  let tournament () =
    let a = Stats.Rng.int rng population and b = Stats.Rng.int rng population in
    if snd pop.(a) >= snd pop.(b) then fst pop.(a) else fst pop.(b)
  in
  for _ = 1 to generations do
    Array.sort (fun (_, fa) (_, fb) -> compare fb fa) pop;
    let next = Array.make population pop.(0) in
    (* elitism: keep the two best *)
    next.(0) <- pop.(0);
    if population > 1 then next.(1) <- pop.(1);
    for k = 2 to population - 1 do
      let pa = tournament () and pb = tournament () in
      let child =
        Array.init dim (fun i ->
            let t = Stats.Rng.float rng 1. in
            let v = (t *. pa.(i)) +. ((1. -. t) *. pb.(i)) in
            if Stats.Rng.float rng 1. < mutation then
              let width = obj.Objective.upper.(i) -. obj.Objective.lower.(i) in
              v +. Stats.Rng.gaussian rng ~mu:0. ~sigma:(0.1 *. width)
            else v)
      in
      Objective.clamp obj child;
      next.(k) <- (child, eval child)
    done;
    Array.blit next 0 pop 0 population
  done;
  Array.sort (fun (_, fa) (_, fb) -> compare fb fa) pop;
  let x, value = pop.(0) in
  record_solver "genetic" ~iterations:generations ~evals:!evals;
  { x; value; evals = !evals }

(* Projected ascent with exact line search under a local quadratic model
   along each search direction: for quadratic objectives the 1-D restriction
   is exactly quadratic, so the step is optimal; curvature is probed by a
   second evaluation. Directions cycle through conjugate-ish gradient
   estimates (Polak-Ribiere on numeric gradients). *)
let qp ?(iters = 80) ?(restarts = 3) rng obj =
  Obs.Span.with_ ~name:"solver.quadratic" @@ fun () ->
  let obj, evals = counting_objective obj in
  let dim = obj.Objective.dim in
  let best = ref { x = Array.make dim 0.; value = neg_infinity; evals = 0 } in
  let dot a b = Array.fold_left ( +. ) 0. (Array.map2 ( *. ) a b) in
  for _ = 1 to restarts do
    let x = Objective.random_point obj rng in
    let g = ref (Objective.num_grad obj x) in
    let d = ref (Array.copy !g) in
    for _ = 1 to iters do
      let dn = sqrt (dot !d !d) in
      if dn > 1e-12 then begin
        let dir = Array.map (fun v -> v /. dn) !d in
        (* quadratic model along dir: f(x + t dir) ~ f0 + a t + b t^2 *)
        let f0 = obj.Objective.f x in
        let h = 1e-3 in
        let probe t =
          let y = Array.mapi (fun i xi -> xi +. (t *. dir.(i))) x in
          Objective.clamp obj y;
          obj.Objective.f y
        in
        let fp = probe h and fm = probe (-.h) in
        let a = (fp -. fm) /. (2. *. h) in
        let b = (fp +. fm -. (2. *. f0)) /. (h *. h) /. 2. in
        let t_star =
          if b < -1e-12 then -.a /. (2. *. b) (* concave: interior max *)
          else if a >= 0. then 1.0 (* convex/linear: jump toward bound *)
          else -1.0
        in
        let t_star = Float.max (-2.) (Float.min 2. t_star) in
        for i = 0 to dim - 1 do
          x.(i) <- x.(i) +. (t_star *. dir.(i))
        done;
        Objective.clamp obj x;
        let g_new = Objective.num_grad obj x in
        (* Polak-Ribiere conjugate direction update *)
        let beta =
          Float.max 0.
            (dot g_new (Array.map2 ( -. ) g_new !g) /. Float.max 1e-12 (dot !g !g))
        in
        d := Array.mapi (fun i gi -> gi +. (beta *. !d.(i))) g_new;
        g := g_new
      end
    done;
    let value = obj.Objective.f x in
    best := better !best { x = Array.copy x; value; evals = 0 }
  done;
  record_solver "quadratic" ~iterations:(restarts * iters) ~evals:!evals;
  { !best with evals = !evals }

type method_ = [ `Adam | `Anneal | `Genetic | `Qp ]

let method_to_string = function
  | `Adam -> "sgd-adam"
  | `Anneal -> "annealing"
  | `Genetic -> "genetic"
  | `Qp -> "quadratic"

let maximize ?(budget = 10_000) method_ rng obj =
  match method_ with
  | `Adam ->
      let iters = max 20 (budget / (4 * (1 + (2 * obj.Objective.dim)))) in
      adam ~iters rng obj
  | `Anneal -> anneal ~iters:(max 100 (budget / 2)) rng obj
  | `Genetic ->
      let population = 40 in
      genetic ~generations:(max 5 (budget / population)) ~population rng obj
  | `Qp ->
      let per_iter = (2 * (1 + (2 * obj.Objective.dim))) + 3 in
      qp ~iters:(max 10 (budget / (3 * per_iter))) rng obj
