(** Dense complex matrices in row-major order with split real/imaginary
    storage. All binary operations raise [Invalid_argument] on dimension
    mismatch. *)

type t = private { rows : int; cols : int; re : float array; im : float array }

(** [create r c] is the [r] x [c] zero matrix. *)
val create : int -> int -> t

(** [init r c f] builds a matrix whose [(i, j)] entry is [f i j]. *)
val init : int -> int -> (int -> int -> Cx.t) -> t

(** [identity n] is the [n] x [n] identity matrix. *)
val identity : int -> t

(** [of_lists rows] builds a matrix from a list of equal-length rows. *)
val of_lists : Cx.t list list -> t

(** [diag v] is the square matrix with [v] on its diagonal. *)
val diag : Cvec.t -> t

val dims : t -> int * int
val get : t -> int -> int -> Cx.t
val set : t -> int -> int -> Cx.t -> unit
val copy : t -> t
val map : (Cx.t -> Cx.t) -> t -> t
val add : t -> t -> t
val sub : t -> t -> t

(** [scale c a] multiplies every entry by the complex scalar [c]. *)
val scale : Cx.t -> t -> t

(** [rscale c a] multiplies every entry by the real scalar [c]. *)
val rscale : float -> t -> t

(** [mul a b] is the matrix product [a * b]. *)
val mul : t -> t -> t

(** [mul_into ~dst a b] writes the product [a * b] into the preallocated
    matrix [dst] (overwriting it) without allocating. The kernel is
    cache-blocked (i-k-j loop order with the [j] loop tiled) and skips
    entries of [a] that are exactly zero; for each output entry the
    accumulation order over [k] is ascending regardless of tiling, so the
    result is reproducible bit-for-bit across tile sizes. [dst] must not
    alias [a] or [b]. Raises [Invalid_argument] on dimension mismatch or
    aliasing. *)
val mul_into : dst:t -> t -> t -> unit

(** [mul3 a b c] is [a * b * c]. *)
val mul3 : t -> t -> t -> t

val transpose : t -> t
val conj : t -> t

(** [adjoint a] is the conjugate transpose of [a]. *)
val adjoint : t -> t

(** [trace a] sums the diagonal of a square matrix. *)
val trace : t -> Cx.t

(** [frob_norm a] is the Frobenius (L2) norm of [a]. *)
val frob_norm : t -> float

(** [hs_inner a b] is the Hilbert-Schmidt inner product [tr (adjoint a * b)]. *)
val hs_inner : t -> t -> Cx.t

(** [kron a b] is the Kronecker (tensor) product of [a] and [b]. *)
val kron : t -> t -> t

(** [outer u v] is the rank-one matrix [u * adjoint v]. *)
val outer : Cvec.t -> Cvec.t -> t

(** [apply a v] is the matrix-vector product [a * v]. *)
val apply : t -> Cvec.t -> Cvec.t

(** [col a j] extracts column [j] as a vector. *)
val col : t -> int -> Cvec.t

(** [row a i] extracts row [i] as a vector. *)
val row : t -> int -> Cvec.t

(** [set_col a j v] overwrites column [j] with [v]. *)
val set_col : t -> int -> Cvec.t -> unit

(** [equal ~eps a b] holds when all entries agree within [eps]. *)
val equal : ?eps:float -> t -> t -> bool

(** [is_hermitian ~eps a] tests [a = adjoint a] entrywise within [eps]. *)
val is_hermitian : ?eps:float -> t -> bool

(** [is_unitary ~eps a] tests [adjoint a * a = I] within [eps]. *)
val is_unitary : ?eps:float -> t -> bool

(** [hermitize a] is [(a + adjoint a) / 2], the Hermitian part of [a]. *)
val hermitize : t -> t

val pp : Format.formatter -> t -> unit
