type t = { rows : int; cols : int; re : float array; im : float array }

let create rows cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Cmat.create: non-positive dims";
  let n = rows * cols in
  { rows; cols; re = Array.make n 0.; im = Array.make n 0. }

let idx a i j = (i * a.cols) + j

let init rows cols f =
  let a = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let z = f i j in
      a.re.(idx a i j) <- Cx.re z;
      a.im.(idx a i j) <- Cx.im z
    done
  done;
  a

let identity n = init n n (fun i j -> if i = j then Cx.one else Cx.zero)

let of_lists rows =
  match rows with
  | [] -> invalid_arg "Cmat.of_lists: empty"
  | r0 :: _ ->
      let nr = List.length rows and nc = List.length r0 in
      let arr = Array.of_list (List.map Array.of_list rows) in
      Array.iter
        (fun r ->
          if Array.length r <> nc then invalid_arg "Cmat.of_lists: ragged rows")
        arr;
      init nr nc (fun i j -> arr.(i).(j))

let diag v =
  let n = Cvec.dim v in
  init n n (fun i j -> if i = j then Cvec.get v i else Cx.zero)

let dims a = (a.rows, a.cols)
let get a i j = Cx.make a.re.(idx a i j) a.im.(idx a i j)

let set a i j z =
  a.re.(idx a i j) <- Cx.re z;
  a.im.(idx a i j) <- Cx.im z

let copy a = { a with re = Array.copy a.re; im = Array.copy a.im }
let map f a = init a.rows a.cols (fun i j -> f (get a i j))

(* Entrywise arithmetic runs as direct loops over the split component
   arrays: these ops sit on the per-gate hot path of the simulators, where
   the previous [Array.init]-with-closure formulation paid an indirect call
   per element. *)

let check_same_dims a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Cmat: dimension mismatch"

let add a b =
  check_same_dims a b;
  let n = Array.length a.re in
  let re = Array.make n 0. and im = Array.make n 0. in
  for k = 0 to n - 1 do
    re.(k) <- a.re.(k) +. b.re.(k);
    im.(k) <- a.im.(k) +. b.im.(k)
  done;
  { rows = a.rows; cols = a.cols; re; im }

let sub a b =
  check_same_dims a b;
  let n = Array.length a.re in
  let re = Array.make n 0. and im = Array.make n 0. in
  for k = 0 to n - 1 do
    re.(k) <- a.re.(k) -. b.re.(k);
    im.(k) <- a.im.(k) -. b.im.(k)
  done;
  { rows = a.rows; cols = a.cols; re; im }

let scale c a =
  let cr = Cx.re c and ci = Cx.im c in
  let n = Array.length a.re in
  let re = Array.make n 0. and im = Array.make n 0. in
  for k = 0 to n - 1 do
    re.(k) <- (cr *. a.re.(k)) -. (ci *. a.im.(k));
    im.(k) <- (cr *. a.im.(k)) +. (ci *. a.re.(k))
  done;
  { a with re; im }

let rscale c a =
  let n = Array.length a.re in
  let re = Array.make n 0. and im = Array.make n 0. in
  for k = 0 to n - 1 do
    re.(k) <- c *. a.re.(k);
    im.(k) <- c *. a.im.(k)
  done;
  { a with re; im }

(* i-k-j product with the j loop tiled so a tile of [dst] and [b] rows stays
   cache-resident while [a]'s row is consumed; entries of [a] that are
   exactly zero are skipped (block operators of controlled gates are mostly
   zero). For every (i, j) the k-accumulation order is unchanged by the
   tiling, so results are identical to the untiled product. *)
let mul_tile = 256

let mul_into ~dst a b =
  if a.cols <> b.rows then invalid_arg "Cmat.mul_into: dimension mismatch";
  if dst.rows <> a.rows || dst.cols <> b.cols then
    invalid_arg "Cmat.mul_into: bad destination dimensions";
  if dst == a || dst == b then
    invalid_arg "Cmat.mul_into: destination aliases an operand";
  if Obs.enabled () then begin
    (* the kernel below skips exact zeros of [a], so the useful-MAC count
       is nnz(a) * cols(b) *)
    let nnz = ref 0 in
    for idx = 0 to Array.length a.re - 1 do
      if a.re.(idx) <> 0. || a.im.(idx) <> 0. then incr nnz
    done;
    Obs.Metrics.counter_add "gemm_macs_total" (!nnz * b.cols)
  end;
  Array.fill dst.re 0 (Array.length dst.re) 0.;
  Array.fill dst.im 0 (Array.length dst.im) 0.;
  let cols = b.cols in
  let j0 = ref 0 in
  while !j0 < cols do
    let jhi = min cols (!j0 + mul_tile) in
    for i = 0 to a.rows - 1 do
      let drow = i * cols in
      for k = 0 to a.cols - 1 do
        let ar = a.re.((i * a.cols) + k) and ai = a.im.((i * a.cols) + k) in
        if ar <> 0. || ai <> 0. then begin
          let brow = k * cols in
          for j = !j0 to jhi - 1 do
            let br = b.re.(brow + j) and bi = b.im.(brow + j) in
            dst.re.(drow + j) <- dst.re.(drow + j) +. (ar *. br) -. (ai *. bi);
            dst.im.(drow + j) <- dst.im.(drow + j) +. (ar *. bi) +. (ai *. br)
          done
        end
      done
    done;
    j0 := jhi
  done

let mul a b =
  if a.cols <> b.rows then invalid_arg "Cmat.mul: dimension mismatch";
  let c = create a.rows b.cols in
  mul_into ~dst:c a b;
  c

let mul3 a b c = mul (mul a b) c
let transpose a = init a.cols a.rows (fun i j -> get a j i)
let conj a = { a with im = Array.map (fun x -> -.x) a.im }
let adjoint a = init a.cols a.rows (fun i j -> Cx.conj (get a j i))

let trace a =
  if a.rows <> a.cols then invalid_arg "Cmat.trace: non-square";
  let re = ref 0. and im = ref 0. in
  for i = 0 to a.rows - 1 do
    re := !re +. a.re.(idx a i i);
    im := !im +. a.im.(idx a i i)
  done;
  Cx.make !re !im

let frob_norm a =
  let s = ref 0. in
  for k = 0 to Array.length a.re - 1 do
    s := !s +. (a.re.(k) *. a.re.(k)) +. (a.im.(k) *. a.im.(k))
  done;
  sqrt !s

let hs_inner a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Cmat.hs_inner: dimension mismatch";
  let re = ref 0. and im = ref 0. in
  for k = 0 to Array.length a.re - 1 do
    (* conj(a_k) * b_k summed entrywise equals tr(adjoint a * b) *)
    re := !re +. (a.re.(k) *. b.re.(k)) +. (a.im.(k) *. b.im.(k));
    im := !im +. (a.re.(k) *. b.im.(k)) -. (a.im.(k) *. b.re.(k))
  done;
  Cx.make !re !im

let kron a b =
  let rows = a.rows * b.rows and cols = a.cols * b.cols in
  let c = create rows cols in
  for ia = 0 to a.rows - 1 do
    for ja = 0 to a.cols - 1 do
      let ar = a.re.(idx a ia ja) and ai = a.im.(idx a ia ja) in
      if ar <> 0. || ai <> 0. then
        for ib = 0 to b.rows - 1 do
          for jb = 0 to b.cols - 1 do
            let br = b.re.(idx b ib jb) and bi = b.im.(idx b ib jb) in
            let p = (((ia * b.rows) + ib) * cols) + (ja * b.cols) + jb in
            c.re.(p) <- (ar *. br) -. (ai *. bi);
            c.im.(p) <- (ar *. bi) +. (ai *. br)
          done
        done
    done
  done;
  c

let outer u v =
  init (Cvec.dim u) (Cvec.dim v) (fun i j ->
      Cx.mul (Cvec.get u i) (Cx.conj (Cvec.get v j)))

let apply a v =
  if a.cols <> Cvec.dim v then invalid_arg "Cmat.apply: dimension mismatch";
  Cvec.init a.rows (fun i ->
      let re = ref 0. and im = ref 0. in
      for j = 0 to a.cols - 1 do
        let ar = a.re.(idx a i j) and ai = a.im.(idx a i j) in
        let vr = (Cvec.get v j).Complex.re and vi = (Cvec.get v j).Complex.im in
        re := !re +. (ar *. vr) -. (ai *. vi);
        im := !im +. (ar *. vi) +. (ai *. vr)
      done;
      Cx.make !re !im)

let col a j = Cvec.init a.rows (fun i -> get a i j)
let row a i = Cvec.init a.cols (fun j -> get a i j)

let set_col a j v =
  if Cvec.dim v <> a.rows then invalid_arg "Cmat.set_col: dimension mismatch";
  for i = 0 to a.rows - 1 do
    set a i j (Cvec.get v i)
  done

let equal ?(eps = 1e-12) a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  let ok = ref true in
  for k = 0 to Array.length a.re - 1 do
    if
      Float.abs (a.re.(k) -. b.re.(k)) > eps
      || Float.abs (a.im.(k) -. b.im.(k)) > eps
    then ok := false
  done;
  !ok

let is_hermitian ?(eps = 1e-10) a = a.rows = a.cols && equal ~eps a (adjoint a)

let is_unitary ?(eps = 1e-10) a =
  a.rows = a.cols && equal ~eps (mul (adjoint a) a) (identity a.rows)

let hermitize a = rscale 0.5 (add a (adjoint a))

let pp ppf a =
  Format.fprintf ppf "@[<v>";
  for i = 0 to a.rows - 1 do
    Format.fprintf ppf "@[<h>";
    for j = 0 to a.cols - 1 do
      if j > 0 then Format.fprintf ppf "  ";
      Cx.pp ppf (get a i j)
    done;
    Format.fprintf ppf "@]";
    if i < a.rows - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
