type t = {
  circuit : Circuit.t;
  addr_qubits : int list;
  data_qubit : int;
  table : float array;
  corrupted : (int * float) option;
}

(* One cell: map the address bits so cell [addr] becomes |1...1>, rotate the
   data qubit controlled on all address bits, unmap. RY(2 theta) |0> =
   cos theta |0> + sin theta |1> = |theta>. *)
let cell ~addr_qubits ~data_qubit ~addr ~theta c =
  let flip c =
    List.fold_left
      (fun c (bit, q) -> if (addr lsr bit) land 1 = 0 then Circuit.x q c else c)
      c
      (List.mapi (fun bit q -> (bit, q)) addr_qubits)
  in
  c |> flip |> Circuit.mcry (2. *. theta) addr_qubits data_qubit |> flip

let make ?corrupt ?(midpoint_tracepoint = false) ~table a =
  if a <= 0 then invalid_arg "Qram.make: need at least one address qubit";
  let cells = 1 lsl a in
  if Array.length table <> cells then invalid_arg "Qram.make: table size mismatch";
  (match corrupt with
  | Some (addr, _) when addr < 0 || addr >= cells ->
      invalid_arg "Qram.make: corrupt address out of range"
  | _ -> ());
  let effective = Array.copy table in
  (match corrupt with Some (addr, bad) -> effective.(addr) <- bad | None -> ());
  let addr_qubits = List.init a (fun i -> i) in
  let data_qubit = a in
  let c = Circuit.empty (a + 1) in
  let c = Circuit.tracepoint 1 addr_qubits c in
  let c = ref c in
  for addr = 0 to cells - 1 do
    c := cell ~addr_qubits ~data_qubit ~addr ~theta:effective.(addr) !c;
    if midpoint_tracepoint && addr = (cells / 2) - 1 then
      c := Circuit.tracepoint 3 [ data_qubit ] !c
  done;
  let c = Circuit.tracepoint 2 [ data_qubit ] !c in
  { circuit = c; addr_qubits; data_qubit; table; corrupted = corrupt }

(* Sparse constructor: only the listed cells are materialized as
   multi-controlled rotations (unlisted addresses read angle 0, i.e. the
   data qubit stays |0>), and the 2^a-entry table never exists — so an
   address register far past the dense wall is representable. Each cell
   costs O(a) gates regardless of the register width, and with the
   address tracepoint off the whole program stays on the sparse
   simulation route. *)
type sparse = {
  s_circuit : Circuit.t;
  s_addr_qubits : int list;
  s_data_qubit : int;
  cells : (int * float) list;
}

let make_cells ?(addr_tracepoint = true) ~cells a =
  if a <= 0 || a > 60 then invalid_arg "Qram.make_cells: bad address size";
  let d = if a < 61 then 1 lsl a else max_int in
  List.iter
    (fun (addr, _) ->
      if addr < 0 || addr >= d then
        invalid_arg "Qram.make_cells: cell address out of range")
    cells;
  let sorted = List.sort_uniq (fun (a, _) (b, _) -> compare a b) cells in
  if List.length sorted <> List.length cells then
    invalid_arg "Qram.make_cells: duplicate cell address";
  let addr_qubits = List.init a (fun i -> i) in
  let data_qubit = a in
  let c = Circuit.empty (a + 1) in
  let c = if addr_tracepoint then Circuit.tracepoint 1 addr_qubits c else c in
  let c =
    List.fold_left
      (fun c (addr, theta) -> cell ~addr_qubits ~data_qubit ~addr ~theta c)
      c cells
  in
  let c = Circuit.tracepoint 2 [ data_qubit ] c in
  { s_circuit = c; s_addr_qubits = addr_qubits; s_data_qubit = data_qubit; cells }

let cell_angle t addr =
  match List.assoc_opt addr t.cells with Some theta -> theta | None -> 0.

let expected_p1_cells t addr =
  let s = sin (cell_angle t addr) in
  s *. s

let read t addr =
  let n = Circuit.num_qubits t.circuit in
  let initial = Qstate.Statevec.basis n addr in
  let outcome = Sim.Engine.run ~initial t.circuit in
  Qstate.Statevec.prob1 outcome.Sim.Engine.state t.data_qubit

let expected_p1 t addr =
  let s = sin t.table.(addr) in
  s *. s

let uniform_table rng a =
  Array.init (1 lsl a) (fun _ -> Stats.Rng.uniform rng 0. (2. *. Float.pi))
