(** Quantum random access memory (paper Section 7.3).

    [a] addressing qubits select a cell of a [2^a]-entry table of angles
    [theta_i in [0, 2pi)]; the data qubit ends in
    [|theta_i> = cos theta_i |0> + sin theta_i |1>]. Each cell is read by a
    multi-controlled rotation whose controls match the address bits.

    Layout: qubits [0..a-1] are the address (bit order), qubit [a] is data.
    Tracepoint 1 labels the address input, 2 the data output, and 3 (when
    requested) sits after the first half of the cells for the paper's
    binary-search debugging. *)

type t = {
  circuit : Circuit.t;
  addr_qubits : int list;
  data_qubit : int;
  table : float array;
  corrupted : (int * float) option;
      (** address whose stored angle was overwritten, with the bad value *)
}

(** [make ?corrupt ?midpoint_tracepoint ~table a] builds a QRAM over [a]
    address qubits; [table] must have [2^a] entries. [corrupt (addr, bad)]
    plants a wrong value at [addr]. *)
val make :
  ?corrupt:int * float -> ?midpoint_tracepoint:bool -> table:float array -> int -> t

(** A QRAM built from an explicit cell list — unlisted addresses hold
    angle 0 and the dense [2^a] table never exists, so the address
    register can be far wider than any dense simulation could hold. *)
type sparse = {
  s_circuit : Circuit.t;
  s_addr_qubits : int list;
  s_data_qubit : int;
  cells : (int * float) list;  (** (address, angle), unique addresses *)
}

(** [make_cells ?addr_tracepoint ~cells a] builds the sparse QRAM over
    [a] address qubits; only the listed cells are materialized.
    [addr_tracepoint] (default [true]) emits tracepoint 1 over the whole
    address register — turn it off at large [a] to stay on the sparse
    simulation route. Tracepoint 2 labels the data output. *)
val make_cells :
  ?addr_tracepoint:bool -> cells:(int * float) list -> int -> sparse

(** [cell_angle t addr] is the stored angle ([0.] when unlisted). *)
val cell_angle : sparse -> int -> float

(** [expected_p1_cells t addr] is [sin^2 (cell_angle t addr)]. *)
val expected_p1_cells : sparse -> int -> float

(** [read t addr] runs the QRAM with basis address [addr] and returns the
    Bloch-angle estimate of the data qubit [(p1 -> angle)] as the probability
    of reading 1, which should be [sin^2 theta_addr]. *)
val read : t -> int -> float

(** [expected_p1 t addr] is [sin^2 (table.(addr))] per the specification. *)
val expected_p1 : t -> int -> float

(** [uniform_table rng a] draws a random table of [2^a] angles. *)
val uniform_table : Stats.Rng.t -> int -> float array
