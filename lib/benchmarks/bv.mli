(** Bernstein-Vazirani: recover a hidden bitstring with one oracle query
    (one of the phase-kickback applications the paper motivates the quantum
    lock with). Layout: qubits [0..n-1] input, qubit [n] ancilla. *)

(** [circuit ?trace_qubits ~secret n] builds the algorithm for an [n]-bit
    secret. The final state of the input register is [|secret>].
    [trace_qubits] (default the whole input register) narrows the final
    tracepoint — at large [n] a narrow tracepoint keeps the program on
    the sparse simulation route (the lightcone prunes untraced
    spectators, and tomography on the full register would be
    intractable anyway). *)
val circuit : ?trace_qubits:int list -> secret:int -> int -> Circuit.t

(** [recover ~secret n] runs the circuit and reads the most likely
    bitstring. *)
val recover : secret:int -> int -> int
