type t = {
  circuit : Circuit.t;
  key_qubits : int list;
  probe : int;
  key : int;
  unexpected_key : int option;
}

(* Phase-kickback acceptance block for one key value: map |key> to |1...1>
   with X gates, apply a Z on the probe controlled on every key qubit, then
   unmap. The probe (in |+>) picks up a -1 phase exactly on the key state. *)
let accept_block ~key_qubits ~probe ~key c =
  let flip c =
    List.fold_left
      (fun c (bit, q) -> if (key lsr bit) land 1 = 0 then Circuit.x q c else c)
      c
      (List.mapi (fun bit q -> (bit, q)) key_qubits)
  in
  c |> flip |> Circuit.mcz (key_qubits @ [ probe ]) |> flip

let make ?unexpected_key ?(key_tracepoint = true) ~key k =
  if k <= 0 || k > 60 then
    invalid_arg "Quantum_lock.make: need at least one key qubit";
  let d = if k < 61 then 1 lsl k else max_int in
  if key < 0 || key >= d then invalid_arg "Quantum_lock.make: key out of range";
  (match unexpected_key with
  | Some u when u < 0 || u >= d || u = key ->
      invalid_arg "Quantum_lock.make: bad unexpected key"
  | _ -> ());
  let probe = 0 in
  let key_qubits = List.init k (fun i -> i + 1) in
  let c = Circuit.empty (k + 1) in
  let c = if key_tracepoint then Circuit.tracepoint 1 key_qubits c else c in
  let c = Circuit.h probe c in
  let c = accept_block ~key_qubits ~probe ~key c in
  let c =
    match unexpected_key with
    | None -> c
    | Some u -> accept_block ~key_qubits ~probe ~key:u c
  in
  let c = Circuit.h probe c in
  let c = Circuit.tracepoint 2 [ probe ] c in
  { circuit = c; key_qubits; probe; key; unexpected_key }

let accepts t input =
  let n = Circuit.num_qubits t.circuit in
  let initial = Qstate.Statevec.basis n (input lsl 1) in
  let outcome = Sim.Engine.run ~initial t.circuit in
  Qstate.Statevec.prob1 outcome.Sim.Engine.state t.probe

let expected_output t input = if input = t.key then 1 else 0
