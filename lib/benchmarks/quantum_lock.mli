(** The quantum lock program (paper Sections 1 and 7.1).

    A lock over [k] key qubits plus one probe qubit outputs [|1>] on the
    probe if and only if the key-qubit input equals the secret bitstring.
    The buggy variant additionally accepts an unexpected key — the defect
    the paper's motivating example hunts for.

    Layout: qubit 0 is the probe/output, qubits [1..k] carry the key input. *)

type t = {
  circuit : Circuit.t;
  key_qubits : int list;  (** input qubits, in bit order *)
  probe : int;  (** output qubit *)
  key : int;  (** the intended secret *)
  unexpected_key : int option;  (** the planted bug, if any *)
}

(** [make ?unexpected_key ?key_tracepoint ~key k] builds a lock over [k]
    key qubits. Both keys must be in [[0, 2^k)]. Tracepoint 1 labels the
    key input (omitted when [key_tracepoint] is [false] — at large [k] a
    [k]-wide tracepoint would force dense tomography and block the
    sparse simulation route), tracepoint 2 the probe output. *)
val make : ?unexpected_key:int -> ?key_tracepoint:bool -> key:int -> int -> t

(** [accepts t input] runs the lock on basis input [input] and reports the
    probability that the probe reads 1. *)
val accepts : t -> int -> float

(** [expected_output t input] is the specified probe value for a basis
    input: 1 for the true key, 0 otherwise (ignoring the planted bug). *)
val expected_output : t -> int -> int
