let circuit ?trace_qubits ~secret n =
  if n <= 0 || n > 61 then invalid_arg "Bv.circuit: bad size";
  if secret < 0 || (n < 61 && secret >= 1 lsl n) then
    invalid_arg "Bv.circuit: bad secret";
  let trace_qubits =
    match trace_qubits with
    | None -> List.init n (fun q -> q)
    | Some qs ->
        List.iter
          (fun q ->
            if q < 0 || q >= n then invalid_arg "Bv.circuit: bad trace qubit")
          qs;
        qs
  in
  let anc = n in
  let c = ref (Circuit.empty (n + 1)) in
  c := Circuit.x anc !c;
  c := Circuit.h anc !c;
  for q = 0 to n - 1 do
    c := Circuit.h q !c
  done;
  for q = 0 to n - 1 do
    if (secret lsr q) land 1 = 1 then c := Circuit.cx q anc !c
  done;
  for q = 0 to n - 1 do
    c := Circuit.h q !c
  done;
  c := Circuit.tracepoint 1 trace_qubits !c;
  !c

let recover ~secret n =
  let outcome = Sim.Engine.run (circuit ~secret n) in
  let probs = Qstate.Statevec.probs outcome.Sim.Engine.state in
  let best = ref 0 in
  Array.iteri (fun k p -> if p > probs.(!best) then best := k) probs;
  (* strip the ancilla bit *)
  !best land ((1 lsl n) - 1)
