module Lightcone = Lightcone
module Classify = Classify
module Dataflow = Dataflow
module Lint = Lint
