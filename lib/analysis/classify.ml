(* Clifford classification of gates, instruction lists and circuits.

   [gate_is_clifford] must match Stabilizer.Tableau.apply_gate's dispatch
   exactly (pinned by a test): whatever we classify as Clifford is
   guaranteed to run on the tableau engine without error. Gates such as
   rz(pi/2) are mathematically Clifford but are classified General here
   because the tableau cannot execute them. *)

type t = Clifford | Near_clifford of int | General

let gate_is_clifford (g : Circuit.Gate.t) =
  match (g.Circuit.Gate.name, g.Circuit.Gate.controls, g.Circuit.Gate.targets)
  with
  | ("h" | "s" | "sdg" | "x" | "y" | "z" | "id"), [], [ _ ] -> true
  | ("x" | "z"), [ _ ], [ _ ] -> true
  | "swap", [], [ _; _ ] -> true
  | _ -> false

(* count of non-Clifford gates among gate instructions (feedback gates
   included); measurements, resets, tracepoints and barriers are all
   representable in the stabilizer formalism and do not count *)
let non_clifford_count c =
  List.fold_left
    (fun acc instr ->
      match instr with
      | Circuit.Instr.Gate g | Circuit.Instr.If_gate { gate = g; _ } ->
          if gate_is_clifford g then acc else acc + 1
      | Circuit.Instr.Tracepoint _ | Circuit.Instr.Measure _
      | Circuit.Instr.Reset _ | Circuit.Instr.Barrier _ ->
          acc)
    0 (Circuit.instrs c)

let of_count ~cutoff k =
  if k = 0 then Clifford
  else if k <= cutoff then Near_clifford k
  else General

(* [cutoff] bounds the Near_clifford band: k non-Clifford gates cost a
   2^k branching overhead in gadget-based stabilizer methods, so only
   small k is worth reporting separately *)
let circuit ?(cutoff = 8) c = of_count ~cutoff (non_clifford_count c)

let gates ?(cutoff = 8) gs =
  of_count ~cutoff
    (List.fold_left
       (fun acc g -> if gate_is_clifford g then acc else acc + 1)
       0 gs)

let pp ppf = function
  | Clifford -> Format.pp_print_string ppf "Clifford"
  | Near_clifford k -> Format.fprintf ppf "NearClifford(%d)" k
  | General -> Format.pp_print_string ppf "General"
