(* Clifford classification of gates, instruction lists and circuits.

   [gate_is_clifford] must match Stabilizer.Tableau.apply_gate's dispatch
   exactly (pinned by a test): whatever we classify as Clifford is
   guaranteed to run on the tableau engine without error. Gates such as
   rz(pi/2) are mathematically Clifford but are classified General here
   because the tableau cannot execute them. *)

type t = Clifford | Near_clifford of int | General

let gate_is_clifford (g : Circuit.Gate.t) =
  match (g.Circuit.Gate.name, g.Circuit.Gate.controls, g.Circuit.Gate.targets)
  with
  | ("h" | "s" | "sdg" | "x" | "y" | "z" | "id"), [], [ _ ] -> true
  | ("x" | "z"), [ _ ], [ _ ] -> true
  | "swap", [], [ _; _ ] -> true
  | _ -> false

(* count of non-Clifford gates among gate instructions (feedback gates
   included); measurements, resets, tracepoints and barriers are all
   representable in the stabilizer formalism and do not count *)
let non_clifford_count c =
  List.fold_left
    (fun acc instr ->
      match instr with
      | Circuit.Instr.Gate g | Circuit.Instr.If_gate { gate = g; _ } ->
          if gate_is_clifford g then acc else acc + 1
      | Circuit.Instr.Tracepoint _ | Circuit.Instr.Measure _
      | Circuit.Instr.Reset _ | Circuit.Instr.Barrier _ ->
          acc)
    0 (Circuit.instrs c)

(* --- gate taxonomy for the sparse-simulation support bound ----------- *)

(* diagonal in the computational basis (any number of controls keeps a
   diagonal gate diagonal): never creates new basis states *)
let gate_is_diagonal (g : Circuit.Gate.t) =
  match (g.Circuit.Gate.name, g.Circuit.Gate.targets) with
  | ("z" | "s" | "sdg" | "t" | "tdg" | "rz" | "p" | "u1" | "id"), [ _ ] -> true
  | _ -> false

(* permutes (up to phase) the computational basis: maps each occupied
   basis state to exactly one basis state, so the support size is
   preserved. x/y with any controls; swap. *)
let gate_is_permutation (g : Circuit.Gate.t) =
  match (g.Circuit.Gate.name, g.Circuit.Gate.targets) with
  | ("x" | "y"), [ _ ] -> true
  | "swap", [ _; _ ] -> true
  | _ -> false

(* everything else branches: may double the support on its target *)
let gate_is_branching g =
  not (gate_is_diagonal g || gate_is_permutation g)

(* [support_bound c] — upper bound on the number of occupied basis states
   reachable from any single basis input, as a saturated power of two.

   Let B be the union of (a) targets of branching gates, (b) targets of
   *controlled* x/y gates, and (c) operands of swap gates. Outside B,
   every qubit holds the same classical bit across all members of the
   support (diagonal gates never change bits; an uncontrolled x/y flips
   the shared bit uniformly), so the support is confined to the 2^|B|
   subcube — by induction over the instruction list. Controlled
   permutations and swaps can make a target's bit input-state-dependent,
   hence their inclusion in B.

   This is exactly 2^(s+1) for Bernstein-Vazirani with an s-bit secret
   and 2 for the lock/QRAM families. Saturates at [cap] (and at 2^n). *)
let support_bound ?(cap = max_int) c =
  let n = Circuit.num_qubits c in
  let marked = Array.make (max n 1) false in
  let mark q = if q >= 0 && q < n then marked.(q) <- true in
  let consider (g : Circuit.Gate.t) =
    if gate_is_branching g then List.iter mark g.Circuit.Gate.targets
    else
      match (g.Circuit.Gate.name, g.Circuit.Gate.controls) with
      | ("x" | "y"), _ :: _ -> List.iter mark g.Circuit.Gate.targets
      | "swap", _ -> List.iter mark g.Circuit.Gate.targets
      | _ -> ()
  in
  List.iter
    (function
      | Circuit.Instr.Gate g | Circuit.Instr.If_gate { gate = g; _ } ->
          consider g
      | Circuit.Instr.Tracepoint _ | Circuit.Instr.Measure _
      | Circuit.Instr.Reset _ | Circuit.Instr.Barrier _ ->
          ())
    (Circuit.instrs c);
  let b = Array.fold_left (fun acc m -> if m then acc + 1 else acc) 0 marked in
  let b = min b (min n 61) in
  if b >= 61 then cap else min cap (1 lsl b)

(* gates the sum-over-stabilizers engine can split into two weighted
   Clifford branches: Clifford gates pass through; an uncontrolled
   single-target rotation about a Pauli axis splits as alpha*I + beta*P *)
let gate_rank_decomposable (g : Circuit.Gate.t) =
  gate_is_clifford g
  ||
  match (g.Circuit.Gate.name, g.Circuit.Gate.controls, g.Circuit.Gate.targets)
  with
  | ("t" | "tdg" | "p" | "u1" | "rz" | "rx" | "ry" | "sx" | "sy"), [], [ _ ] ->
      true
  | _ -> false

let of_count ~cutoff k =
  if k = 0 then Clifford
  else if k <= cutoff then Near_clifford k
  else General

(* [cutoff] bounds the Near_clifford band: k non-Clifford gates cost a
   2^k branching overhead in gadget-based stabilizer methods, so only
   small k is worth reporting separately *)
let circuit ?(cutoff = 8) c = of_count ~cutoff (non_clifford_count c)

let gates ?(cutoff = 8) gs =
  of_count ~cutoff
    (List.fold_left
       (fun acc g -> if gate_is_clifford g then acc else acc + 1)
       0 gs)

let pp ppf = function
  | Clifford -> Format.pp_print_string ppf "Clifford"
  | Near_clifford k -> Format.fprintf ppf "NearClifford(%d)" k
  | General -> Format.pp_print_string ppf "General"
