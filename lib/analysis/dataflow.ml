(* Classical def/use dataflow over the clbit register.

   A [Measure] *defines* its clbit; an [If_gate] *uses* its condition
   clbits. One forward walk finds:

   - reads of clbits never defined by any earlier measurement
     (feedback-before-measure, lint code MQ005);
   - definitions overwritten by a later measurement before any read
     (dead measurement, lint code MQ006). A final unread measurement is
     NOT dead — measured bits are the program's output. *)

type report = {
  unwritten_reads : (int * int list) list;
      (** (instruction index of the [If_gate], clbits read before any
          write), in program order *)
  dead_writes : (int * int) list;
      (** (instruction index of the shadowed [Measure], its clbit), in
          program order *)
}

let clbits c =
  let m = Circuit.num_clbits c in
  let written = Array.make m false in
  (* index of the last measurement writing each clbit, cleared on read *)
  let last_unread = Array.make m (-1) in
  let unwritten = ref [] and dead = ref [] in
  List.iteri
    (fun i instr ->
      match instr with
      | Circuit.Instr.Measure { clbit; _ } ->
          if last_unread.(clbit) >= 0 then
            dead := (last_unread.(clbit), clbit) :: !dead;
          last_unread.(clbit) <- i;
          written.(clbit) <- true
      | Circuit.Instr.If_gate { clbits; _ } ->
          let missing = List.filter (fun b -> not written.(b)) clbits in
          if missing <> [] then unwritten := (i, missing) :: !unwritten;
          List.iter (fun b -> last_unread.(b) <- -1) clbits
      | _ -> ())
    (Circuit.instrs c);
  { unwritten_reads = List.rev !unwritten; dead_writes = List.rev !dead }
