(* Backward cone-of-influence dataflow.

   For a sink (a tracepoint's qubit set, or every tracepoint + measurement
   for whole-program pruning) we walk the instruction list backwards
   maintaining a live qubit set S and a live clbit set L:

   - [Gate g] is in the cone iff it touches S; joining the cone joins all
     its qubits to S (a unitary propagates influence both ways).
   - [If_gate] is in the cone iff its gate touches S; joining the cone also
     adds its condition clbits to L (the gate fires depending on earlier
     measurement results).
   - [Measure {qubit; clbit}] with [clbit] in L joins the cone, adds
     [qubit] to S, and removes [clbit] from L (this write defines the bit;
     earlier writes are shadowed). A measure whose qubit is in S also joins
     the cone — measurement dephases the qubit and so changes the
     trajectory-averaged state on S — but adds no qubits (it acts on one).
   - [Reset q] with [q] in S joins the cone and then removes [q] from S:
     the reset output is |0> regardless of history, and by no-signalling a
     unitary acting only on the pre-reset [q] cannot change the marginal on
     the remaining cone qubits.
   - Tracepoints and barriers never affect the state.

   Soundness is with respect to the *unconditional* (trajectory-averaged)
   reduced state at the sink, which is what MorphQPV characterizes. *)

type cone = {
  id : int;  (** tracepoint id *)
  position : int;  (** instruction index of the tracepoint *)
  qubits : int list;  (** minimal qubit set, sorted ascending *)
  keep : bool array;
      (** per-instruction membership over the whole circuit; instructions
          at or after [position] are [false] *)
}

(* one backward step over instruction [instr]; mutates [s]/[l], returns
   whether the instruction is in the cone *)
let step ~s ~l instr =
  let touches_s qs = List.exists (fun q -> s.(q)) qs in
  match instr with
  | Circuit.Instr.Gate g ->
      let qs = Circuit.Gate.qubits g in
      if touches_s qs then begin
        List.iter (fun q -> s.(q) <- true) qs;
        true
      end
      else false
  | Circuit.Instr.If_gate { clbits; gate; _ } ->
      let qs = Circuit.Gate.qubits gate in
      if touches_s qs then begin
        List.iter (fun q -> s.(q) <- true) qs;
        List.iter (fun b -> l.(b) <- true) clbits;
        true
      end
      else false
  | Circuit.Instr.Measure { qubit; clbit } ->
      if l.(clbit) then begin
        s.(qubit) <- true;
        l.(clbit) <- false;
        true
      end
      else s.(qubit)
  | Circuit.Instr.Reset q ->
      if s.(q) then begin
        s.(q) <- false;
        true
      end
      else false
  | Circuit.Instr.Tracepoint _ | Circuit.Instr.Barrier _ -> false

let ever_live instrs keep ~seed_qubits n =
  let live = Array.make n false in
  List.iter (fun q -> live.(q) <- true) seed_qubits;
  Array.iteri
    (fun i kept ->
      if kept then
        List.iter (fun q -> live.(q) <- true) (Circuit.Instr.qubits instrs.(i)))
    keep;
  List.filter (fun q -> live.(q)) (List.init n (fun q -> q))

let cone_at instrs ~n ~m ~id ~position ~seed_qubits =
  let s = Array.make n false and l = Array.make m false in
  List.iter (fun q -> s.(q) <- true) seed_qubits;
  let keep = Array.make (Array.length instrs) false in
  for i = position - 1 downto 0 do
    keep.(i) <- step ~s ~l instrs.(i)
  done;
  { id; position; qubits = ever_live instrs keep ~seed_qubits n; keep }

let cones c =
  let instrs = Array.of_list (Circuit.instrs c) in
  let n = Circuit.num_qubits c and m = Circuit.num_clbits c in
  let out = ref [] in
  Array.iteri
    (fun i instr ->
      match instr with
      | Circuit.Instr.Tracepoint { id; qubits } ->
          out := cone_at instrs ~n ~m ~id ~position:i ~seed_qubits:qubits :: !out
      | _ -> ())
    instrs;
  List.rev !out

let cone_of_tracepoint c ~id =
  List.find_opt (fun cone -> cone.id = id) (cones c)

(* Whole-program liveness for pruning: sinks are every tracepoint and every
   measurement (observable outputs). Tracepoints, measures and barriers are
   always kept; gates, feedback gates and resets are kept iff live. The
   result preserves all tracepoint states and the joint measurement
   distribution — NOT the final state on unobserved qubits. *)
let union_keep c =
  let instrs = Array.of_list (Circuit.instrs c) in
  let n = Circuit.num_qubits c and m = Circuit.num_clbits c in
  let s = Array.make n false and l = Array.make m false in
  let keep = Array.make (Array.length instrs) false in
  for i = Array.length instrs - 1 downto 0 do
    match instrs.(i) with
    | Circuit.Instr.Tracepoint { qubits; _ } ->
        List.iter (fun q -> s.(q) <- true) qubits;
        keep.(i) <- true
    | Circuit.Instr.Measure { qubit; clbit } ->
        s.(qubit) <- true;
        l.(clbit) <- false;
        keep.(i) <- true
    | Circuit.Instr.Barrier _ -> keep.(i) <- true
    | Circuit.Instr.Gate _ | Circuit.Instr.If_gate _ | Circuit.Instr.Reset _
      ->
        keep.(i) <- step ~s ~l instrs.(i)
  done;
  keep

(* [restrict c cone] builds the cone's subcircuit: kept instructions
   remapped onto the cone qubits (sorted ascending -> 0..k-1), ending with
   the tracepoint itself. The classical register is kept at full width.
   Simulating it from |0...0> (or any state that is a product between cone
   and non-cone qubits, prepared per-qubit) reproduces the tracepoint's
   reduced state. Returns the subcircuit and the cone qubit list (local
   qubit j corresponds to global qubit [List.nth qubits j]). *)
let restrict c cone =
  let qubits = cone.qubits in
  let k = List.length qubits in
  let map = Hashtbl.create 8 in
  List.iteri (fun local global -> Hashtbl.replace map global local) qubits;
  let f q = Hashtbl.find map q in
  let instrs = Array.of_list (Circuit.instrs c) in
  let sub = ref (Circuit.empty ~clbits:(Circuit.num_clbits c) (max k 1)) in
  Array.iteri
    (fun i instr -> if cone.keep.(i) then sub := Circuit.add (Circuit.Instr.remap f instr) !sub)
    instrs;
  let tp_qubits =
    match instrs.(cone.position) with
    | Circuit.Instr.Tracepoint { qubits; _ } -> qubits
    | _ -> invalid_arg "Lightcone.restrict: position is not a tracepoint"
  in
  sub := Circuit.add (Circuit.Instr.Tracepoint { id = cone.id; qubits = List.map f tp_qubits }) !sub;
  (!sub, qubits)
