(* Diagnostics linter over the circuit IR.

   Structural validity (MQ000-MQ003, MQ013-MQ016) is enforced by the
   parser and [Circuit]'s constructors and surfaces here via [lint_qasm];
   [check] itself runs the semantic checks MQ004-MQ012 that need the
   lightcone / classical-dataflow analyses. *)

type severity = Error | Warning | Info

type diagnostic = {
  severity : severity;
  code : string;
  message : string;
  loc : (int * int) option;  (** (line, column) in the QASM source *)
  instr : int option;  (** instruction index in [Circuit.instrs] order *)
}

(* the full diagnostic table; keep in sync with DESIGN.md section 10 *)
let codes =
  [
    ("MQ000", Error, "syntax error");
    ("MQ001", Error, "qubit index out of range");
    ("MQ002", Error, "clbit index out of range");
    ("MQ003", Error, "duplicate qubit among gate operands");
    ("MQ004", Error, "duplicate tracepoint id");
    ("MQ005", Error, "feedback reads a clbit never written by a measurement");
    ("MQ006", Warning, "measurement result overwritten before any read");
    ("MQ007", Warning, "operation on a qubit after its final measurement");
    ("MQ008", Warning, "unused qubit");
    ("MQ009", Warning, "unreachable feedback condition value");
    ("MQ010", Info, "no-op barrier");
    ("MQ011", Info, "program has no tracepoints");
    ("MQ012", Info, "tracepoint observes a qubit no operation has touched");
    ("MQ013", Error, "register mismatch");
    ("MQ014", Error, "adjoint of a non-unitary instruction");
    ("MQ015", Error, "unknown or malformed gate");
    ("MQ016", Error, "invalid register declaration");
    ("MQ017", Warning, "estimated characterization cost exceeds threshold");
    ("MQ018", Info, "estimated simulation class");
    ("MQ019", Error, "invalid distribution expectation pragma");
    ("MQ020", Info, "tracepoint lightcone content hash");
    ("MQ021", Error, "transpile certificate check failed");
  ]

let severity_of_code code =
  match List.find_opt (fun (c, _, _) -> c = code) codes with
  | Some (_, sev, _) -> sev
  | None -> Error

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let pp ?file ppf d =
  (match (file, d.loc) with
  | Some f, Some (line, col) -> Format.fprintf ppf "%s:%d:%d: " f line col
  | Some f, None -> Format.fprintf ppf "%s: " f
  | None, Some (line, col) -> Format.fprintf ppf "%d:%d: " line col
  | None, None -> ());
  Format.fprintf ppf "%s[%s]: %s" (severity_string d.severity) d.code d.message

let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let int_list_string qs = String.concat "," (List.map string_of_int qs)

(* semantic checks over a well-formed circuit; [locs] (from
   [Qasm.parse_with_locs]) attaches source positions to per-instruction
   diagnostics *)
let check ?locs c =
  let instrs = Array.of_list (Circuit.instrs c) in
  let n = Circuit.num_qubits c in
  let loc_of i =
    match locs with
    | Some a when i >= 0 && i < Array.length a -> Some a.(i)
    | _ -> None
  in
  let out = ref [] in
  let emit ?instr severity code fmt =
    Format.kasprintf
      (fun message ->
        out :=
          { severity; code; message; loc = Option.bind instr loc_of; instr }
          :: !out)
      fmt
  in

  (* MQ004: duplicate tracepoint ids *)
  let seen_tp = Hashtbl.create 8 in
  Array.iteri
    (fun i instr ->
      match instr with
      | Circuit.Instr.Tracepoint { id; _ } ->
          (match Hashtbl.find_opt seen_tp id with
          | Some first ->
              emit ~instr:i Error "MQ004"
                "duplicate tracepoint id %d (first declared at instruction %d)"
                id first
          | None -> Hashtbl.replace seen_tp id i)
      | _ -> ())
    instrs;

  (* MQ005 / MQ006: classical dataflow *)
  let df = Dataflow.clbits c in
  List.iter
    (fun (i, missing) ->
      emit ~instr:i Error "MQ005"
        "feedback reads clbit%s %s never written by a measurement"
        (if List.length missing > 1 then "s" else "")
        (int_list_string missing))
    df.Dataflow.unwritten_reads;
  List.iter
    (fun (i, clbit) ->
      emit ~instr:i Warning "MQ006"
        "measurement into clbit %d is overwritten before any read" clbit)
    df.Dataflow.dead_writes;

  (* MQ007: operations on a qubit after its final measurement, with no
     intervening reset (the state is collapsed; later gates usually
     indicate a forgotten reset or a mis-ordered measure) *)
  let last_measure = Array.make n (-1) in
  Array.iteri
    (fun i instr ->
      match instr with
      | Circuit.Instr.Measure { qubit; _ } -> last_measure.(qubit) <- i
      | _ -> ())
    instrs;
  for q = 0 to n - 1 do
    if last_measure.(q) >= 0 then begin
      let i = ref (last_measure.(q) + 1) in
      let stop = ref false in
      while (not !stop) && !i < Array.length instrs do
        (match instrs.(!i) with
        | Circuit.Instr.Reset r when r = q -> stop := true
        | Circuit.Instr.Gate g when List.mem q (Circuit.Gate.qubits g) ->
            emit ~instr:!i Warning "MQ007"
              "gate on qubit %d after its final measurement (no reset)" q;
            stop := true
        | Circuit.Instr.If_gate { gate; _ }
          when List.mem q (Circuit.Gate.qubits gate) ->
            (* conditioned gates after measurement are the usual feedback
               idiom on *other* qubits; on the measured qubit itself they
               are fine too (e.g. teleport corrections) — only flag
               unconditioned gates *)
            stop := true
        | _ -> incr i)
      done
    end
  done;

  (* MQ008: qubits referenced by no instruction at all *)
  let used = Array.make n false in
  Array.iter
    (fun instr ->
      List.iter (fun q -> used.(q) <- true) (Circuit.Instr.qubits instr))
    instrs;
  let unused = List.filter (fun q -> not used.(q)) (List.init n Fun.id) in
  if unused <> [] then
    emit Warning "MQ008" "unused qubit%s %s"
      (if List.length unused > 1 then "s" else "")
      (int_list_string unused);

  (* MQ009: feedback value not representable in the condition's bit mask *)
  Array.iteri
    (fun i instr ->
      match instr with
      | Circuit.Instr.If_gate { clbits; value; _ } ->
          let width = List.length clbits in
          if value < 0 || (width < 62 && value >= 1 lsl width) then
            emit ~instr:i Warning "MQ009"
              "feedback value %d is unreachable for a %d-bit condition" value
              width
      | _ -> ())
    instrs;

  (* MQ010: barriers that fence nothing *)
  Array.iteri
    (fun i instr ->
      match instr with
      | Circuit.Instr.Barrier qs ->
          if qs = [] then emit ~instr:i Info "MQ010" "barrier lists no qubits"
          else if i = 0 || i = Array.length instrs - 1 then
            emit ~instr:i Info "MQ010"
              "barrier at the %s of the program fences nothing"
              (if i = 0 then "start" else "end")
      | _ -> ())
    instrs;

  (* MQ011: nothing for MorphQPV to characterize *)
  if Circuit.tracepoints c = [] then
    emit Info "MQ011" "program has no tracepoints (nothing to characterize)";

  (* MQ012: tracepoint qubits no earlier operation has touched — the
     reduced state there is |0><0| and tomography on them is wasted. The
     circuit's first tracepoint is exempt: a leading tracepoint on
     untouched qubits is the standard input-pragma idiom (the qubits are
     prepared with sampled inputs at characterization time). *)
  let touched = Array.make n false in
  let first_tp = ref true in
  Array.iteri
    (fun i instr ->
      match instr with
      | Circuit.Instr.Tracepoint { qubits; _ } ->
          let idle = List.filter (fun q -> not touched.(q)) qubits in
          if idle <> [] && not !first_tp then
            emit ~instr:i Info "MQ012"
              "tracepoint observes untouched qubit%s %s (state is |0>)"
              (if List.length idle > 1 then "s" else "")
              (int_list_string idle);
          first_tp := false
      | Circuit.Instr.Barrier _ -> ()
      | _ ->
          List.iter (fun q -> touched.(q) <- true) (Circuit.Instr.qubits instr))
    instrs;

  (* stable order: by instruction index, then code; circuit-wide
     diagnostics (no index) last *)
  List.stable_sort
    (fun a b ->
      match (a.instr, b.instr) with
      | Some i, Some j -> if i <> j then compare i j else compare a.code b.code
      | Some _, None -> -1
      | None, Some _ -> 1
      | None, None -> compare a.code b.code)
    (List.rev !out)

(* MQ017: characterizing a program costs one tomography pass per
   tracepoint — 3^k settings times the shot budget — and that bill is
   easy to run up without noticing. [estimate] maps the circuit to
   estimated device seconds; it is a callback because the analysis layer
   sits below the simulator, so the [Sim.Cost]-based estimator is
   supplied by callers (the CLI wires in
   [Sim.Cost.estimate_characterization]). *)
let default_cost_threshold = 1.0

let cost_threshold () =
  match Sys.getenv_opt "MORPHQPV_LINT_COST_THRESHOLD" with
  | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some t when t > 0. -> t
      | _ -> default_cost_threshold)
  | None -> default_cost_threshold

let check_cost ~estimate ?threshold c =
  let threshold =
    match threshold with Some t -> t | None -> cost_threshold ()
  in
  let seconds = estimate c in
  if seconds > threshold then
    [
      {
        severity = Warning;
        code = "MQ017";
        message =
          Printf.sprintf
            "estimated characterization cost %.3gs exceeds threshold %.3gs \
             (tracepoint tomography settings x shot budget; tune with \
             MORPHQPV_LINT_COST_THRESHOLD)"
            seconds threshold;
        loc = None;
        instr = None;
      };
    ]
  else []

(* MQ018: which simulation engine the auto-router would pick. The class
   itself is Info (it never fails [--strict]); a program that only the
   dense engine can simulate becomes a Warning once the register is wide
   enough that one pass allocates a prohibitive 2^n amplitudes. Like
   MQ017, [classify] is a callback because the routing logic lives in
   [Sim.Engine.sim_class], above this layer — the CLI wires it in. *)
let default_dense_qubit_threshold = 20

let dense_qubit_threshold () =
  match Sys.getenv_opt "MORPHQPV_LINT_DENSE_QUBITS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some t when t > 0 -> t
      | _ -> default_dense_qubit_threshold)
  | None -> default_dense_qubit_threshold

let check_sim_class ~classify ?threshold c =
  let threshold =
    match threshold with Some t -> t | None -> dense_qubit_threshold ()
  in
  let cls = classify c in
  let info =
    {
      severity = Info;
      code = "MQ018";
      message = Printf.sprintf "estimated simulation class: %s" cls;
      loc = None;
      instr = None;
    }
  in
  let n = Circuit.num_qubits c in
  if cls = "dense" && n > threshold then
    [
      info;
      {
        severity = Warning;
        code = "MQ018";
        message =
          Printf.sprintf
            "program is dense-only at %d qubits (threshold %d): every \
             simulation pass touches 2^%d amplitudes and no sparse or \
             stabilizer route applies (tune with MORPHQPV_LINT_DENSE_QUBITS)"
            n threshold n;
        loc = None;
        instr = None;
      };
    ]
  else [ info ]

(* MQ020: per-tracepoint cone content hashes, plus a flag when several
   tracepoints share one cone — under content-addressed caching those
   tracepoints are characterized once. [digests] is a callback (like
   MQ017's [estimate]) because canonical hashing lives in morphqpv.cache,
   above this library. *)
let check_cones ~digests c =
  let ds : (int * string) list = digests c in
  let per_tp =
    List.map
      (fun (id, h) ->
        {
          severity = Info;
          code = "MQ020";
          message = Printf.sprintf "tracepoint %d cone hash %s" id h;
          loc = None;
          instr = None;
        })
      ds
  in
  let groups = Hashtbl.create 8 in
  List.iter
    (fun (id, h) ->
      Hashtbl.replace groups h
        (id :: Option.value ~default:[] (Hashtbl.find_opt groups h)))
    ds;
  let dups =
    Hashtbl.fold
      (fun h ids acc ->
        match ids with
        | _ :: _ :: _ ->
            let ids = List.sort compare ids in
            ( ids,
              {
                severity = Info;
                code = "MQ020";
                message =
                  Printf.sprintf
                    "%d tracepoints share identical cones (%s, hash %s) — \
                     characterized once under caching"
                    (List.length ids)
                    (String.concat ", "
                       (List.map (Printf.sprintf "T%d") ids))
                    h;
                loc = None;
                instr = None;
              } )
            :: acc
        | _ -> acc)
      groups []
    (* hash iteration order is unspecified; sort by the id group for a
       deterministic report *)
    |> List.sort compare |> List.map snd
  in
  per_tp @ dups

(* MQ021: translation validation of the transpile pipeline. [certify] is
   a callback (like MQ017's [estimate]) because the certificate checker
   lives in morphqpv.transpile, above this library — the CLI passes a
   wrapper over [Verify.certify_transpile] that renders each structured
   failure to (message, source loc, instruction index). An empty result
   means every pass obligation was discharged. *)
let check_certify ~certify c =
  List.map
    (fun (message, loc, instr) ->
      { severity = Error; code = "MQ021"; message; loc; instr })
    (certify c)

(* MQ019: semantic validation of the [expect] distribution pragma — the
   parser keeps it purely syntactic so malformed pragmas reach here as
   diagnosable values instead of parse failures *)
let check_expects ~num_qubits (expects : Qasm.expect_pragma list) =
  List.concat_map
    (fun (e : Qasm.expect_pragma) ->
      let bad fmt =
        Format.kasprintf
          (fun message ->
            [
              {
                severity = Error;
                code = "MQ019";
                message;
                loc = Some e.Qasm.expect_loc;
                instr = None;
              };
            ])
          fmt
      in
      let seen = Hashtbl.create 8 in
      let dup =
        List.find_opt
          (fun (k, _) ->
            if Hashtbl.mem seen k then true
            else begin
              Hashtbl.add seen k ();
              false
            end)
          e.Qasm.expected
      in
      let out_of_range (k, _) =
        k < 0 || (num_qubits < 62 && k >= 1 lsl num_qubits)
      in
      let bad_prob (_, p) = p < 0. || p > 1. in
      let mass = List.fold_left (fun acc (_, p) -> acc +. p) 0. e.Qasm.expected in
      match
        ( dup,
          List.find_opt out_of_range e.Qasm.expected,
          List.find_opt bad_prob e.Qasm.expected,
          e.Qasm.significance )
      with
      | Some (k, _), _, _, _ ->
          bad "expect pragma lists basis index %d twice" k
      | _, Some (k, _), _, _ ->
          bad "expect pragma basis index %d is outside the %d-qubit register"
            k num_qubits
      | _, _, Some (k, p), _ ->
          bad "expect pragma probability %g for index %d is outside [0, 1]" p k
      | _, _, _, Some s when s <= 0. || s >= 1. ->
          bad "expect pragma significance %g is outside (0, 1)" s
      | _ when mass > 1. +. 1e-9 ->
          bad "expect pragma probabilities sum to %g > 1" mass
      | _ -> [])
    expects

(* lint QASM text: parse errors and construction errors become located
   diagnostics instead of exceptions *)
let lint_qasm src =
  match Qasm.parse_full src with
  | { Qasm.circuit = c; locs; expects } ->
      check ~locs c
      @ check_expects ~num_qubits:(Circuit.num_qubits c) expects
  | exception Qasm.Parse_error { line; column; token; message } ->
      [
        {
          severity = Error;
          code = "MQ000";
          message =
            (if token = "" then message
             else Printf.sprintf "%s (at %S)" message token);
          loc = Some (line, column);
          instr = None;
        };
      ]
  | exception Circuit.Error { code; message; loc } ->
      [
        {
          severity = severity_of_code code;
          code;
          message;
          loc;
          instr = None;
        };
      ]

let lint_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> lint_qasm (really_input_string ic (in_channel_length ic)))
