(** Static analyses over the circuit IR: lightcone (cone of influence),
    Clifford classification, classical def/use dataflow, and a diagnostics
    linter built on all three.

    All analyses are purely syntactic — no simulation — and run in one or
    two passes over [Circuit.instrs]. Consumers: [Transpile.Passes.
    prune_lightcone] (delete gates outside the observable cone),
    [Sim.Engine]/[Characterize] (auto-route Clifford programs to the
    stabilizer tableau, restrict tomography to each tracepoint's cone),
    and the [morph-lint] CLI subcommand. *)

module Lightcone : sig
  type cone = {
    id : int;  (** tracepoint id *)
    position : int;  (** instruction index of the tracepoint *)
    qubits : int list;  (** minimal qubit set, sorted ascending *)
    keep : bool array;
        (** per-instruction cone membership; [false] at/after [position] *)
  }

  (** [cones c] computes one backward cone of influence per tracepoint:
      the minimal set of qubits (and the instructions on them) that can
      affect the tracepoint's unconditional reduced state. Feedback is
      tracked through the measurements that wrote the condition bits;
      resets sever the cone on their qubit. *)
  val cones : Circuit.t -> cone list

  val cone_of_tracepoint : Circuit.t -> id:int -> cone option

  (** [union_keep c] marks the instructions inside the union cone of all
      tracepoints and measurements. Deleting unmarked instructions
      preserves every tracepoint state and the joint measurement
      distribution (but not the final state on unobserved qubits). *)
  val union_keep : Circuit.t -> bool array

  (** [restrict c cone] is the cone's subcircuit, remapped onto the cone
      qubits (sorted ascending, local index [j] = global
      [List.nth cone.qubits j]), ending with the tracepoint itself.
      Sound when non-cone qubits start unentangled with cone qubits. *)
  val restrict : Circuit.t -> cone -> Circuit.t * int list
end

module Classify : sig
  type t = Clifford | Near_clifford of int | General

  (** Matches [Stabilizer.Tableau.apply_gate]'s dispatch exactly: a [true]
      gate is guaranteed to execute on the tableau engine. *)
  val gate_is_clifford : Circuit.Gate.t -> bool

  (** Number of non-Clifford gates ([If_gate] bodies included). *)
  val non_clifford_count : Circuit.t -> int

  (** Diagonal in the computational basis (any controls): z, s, sdg, t,
      tdg, rz, p, u1, id. Never creates new basis states. *)
  val gate_is_diagonal : Circuit.Gate.t -> bool

  (** Permutes the computational basis up to phase: x, y (any controls)
      and swap. Preserves the support size. *)
  val gate_is_permutation : Circuit.Gate.t -> bool

  (** Neither diagonal nor a permutation — may double the sparse support
      on its targets. *)
  val gate_is_branching : Circuit.Gate.t -> bool

  (** [support_bound ?cap c] — upper bound (a power of two, saturated at
      [cap]) on the occupied-basis-state count reachable from any single
      basis input: [2^|B|] where [B] collects branching-gate targets,
      controlled-x/y targets and swap operands. *)
  val support_bound : ?cap:int -> Circuit.t -> int

  (** Gates the stabilizer-rank engine can execute: Clifford gates, plus
      uncontrolled single-qubit t, tdg, p, u1, rz, rx, ry, sx, sy (each
      splits into two weighted Clifford branches). *)
  val gate_rank_decomposable : Circuit.Gate.t -> bool

  (** [circuit ?cutoff c] classifies the whole circuit; [Near_clifford k]
      for [0 < k <= cutoff] (default 8) non-Clifford gates. *)
  val circuit : ?cutoff:int -> Circuit.t -> t

  (** [gates gs] classifies a gate list (e.g. one fusion segment). *)
  val gates : ?cutoff:int -> Circuit.Gate.t list -> t

  val pp : Format.formatter -> t -> unit
end

module Dataflow : sig
  type report = {
    unwritten_reads : (int * int list) list;
        (** ([If_gate] instruction index, clbits read before any write) *)
    dead_writes : (int * int) list;
        (** (shadowed [Measure] instruction index, its clbit) *)
  }

  (** Def/use liveness over the classical register in one forward pass. *)
  val clbits : Circuit.t -> report
end

module Lint : sig
  type severity = Error | Warning | Info

  type diagnostic = {
    severity : severity;
    code : string;
    message : string;
    loc : (int * int) option;  (** (line, column) in the QASM source *)
    instr : int option;  (** index in [Circuit.instrs] order *)
  }

  (** The diagnostic table: (code, severity, description). *)
  val codes : (string * severity * string) list

  val severity_of_code : string -> severity
  val severity_string : severity -> string

  (** [check ?locs c] runs the semantic checks (MQ004-MQ012) over a
      well-formed circuit; [locs] from {!Qasm.parse_with_locs} attaches
      source positions. Diagnostics are sorted by instruction index. *)
  val check : ?locs:(int * int) array -> Circuit.t -> diagnostic list

  (** [check_cost ~estimate ?threshold c] emits MQ017 when the estimated
      characterization cost of [c] — [estimate c], in device seconds —
      exceeds [threshold] (default {!cost_threshold}). The estimator is a
      callback because this layer sits below the simulator; callers
      usually pass [Sim.Cost]'s
      [estimate_characterization >> hardware_seconds]. *)
  val check_cost :
    estimate:(Circuit.t -> float) ->
    ?threshold:float ->
    Circuit.t ->
    diagnostic list

  (** Default MQ017 threshold in estimated device seconds: the
      [MORPHQPV_LINT_COST_THRESHOLD] environment variable when set to a
      positive float, else 1.0. *)
  val cost_threshold : unit -> float

  (** [check_sim_class ~classify ?threshold c] emits MQ018: an Info
      diagnostic reporting [classify c] (the simulation class the
      engine auto-router would estimate — ["dense"], ["sparse"],
      ["stabilizer"] or ["stabilizer-rank 2^k"]), plus a Warning when
      the class is ["dense"] and the register exceeds [threshold]
      qubits (default {!dense_qubit_threshold}). Like {!check_cost},
      [classify] is a callback because the routing logic lives above
      this layer (the CLI passes [Sim.Engine.sim_class]). *)
  val check_sim_class :
    classify:(Circuit.t -> string) ->
    ?threshold:int ->
    Circuit.t ->
    diagnostic list

  (** Default MQ018 dense-warning threshold in qubits: the
      [MORPHQPV_LINT_DENSE_QUBITS] environment variable when set to a
      positive integer, else 20. *)
  val dense_qubit_threshold : unit -> int

  (** [check_cones ~digests c] emits MQ020: one Info diagnostic per
      tracepoint reporting its backward-cone content hash, plus an Info
      flag for every group of tracepoints sharing an identical cone —
      under content-addressed caching such a group is characterized
      once. [digests] is a callback because canonical hashing lives in
      [morphqpv.cache], above this library (the CLI passes
      [Cache.Canon.cone_digests]). *)
  val check_cones :
    digests:(Circuit.t -> (int * string) list) ->
    Circuit.t ->
    diagnostic list

  (** [check_certify ~certify c] emits MQ021: one Error diagnostic per
      certificate-check failure of the transpile pipeline on [c]. The
      [certify] callback returns the rendered failures as
      [(message, source loc, instruction index)] — it is a callback
      because the certificate checker lives in [morphqpv.transpile],
      above this library (the CLI wraps
      [Morphcore.Verify.certify_transpile]). An empty result means every
      rewrite obligation was discharged by the independent checker. *)
  val check_certify :
    certify:(Circuit.t -> (string * (int * int) option * int option) list) ->
    Circuit.t ->
    diagnostic list

  (** [lint_qasm src] parses and checks QASM text; syntax errors (MQ000)
      and construction errors (MQ001-MQ003, MQ013-MQ016) are returned as
      located diagnostics instead of raising. *)
  val lint_qasm : string -> diagnostic list

  val lint_file : string -> diagnostic list

  (** [pp ?file ppf d] prints [file:line:col: severity[CODE]: message]. *)
  val pp : ?file:string -> Format.formatter -> diagnostic -> unit

  val has_errors : diagnostic list -> bool
end
