.PHONY: build test test-fast test-full lint certify bench bench-smoke bench-check profile clean

build:
	dune build

test:
	dune build @runtest

# Quick iteration loop: same tests, QCheck case counts lowered. --force
# reruns cached tests (dune does not see env vars as dependencies).
test-fast:
	QCHECK_COUNT=15 dune build @runtest --force

# Full sweep: default QCheck counts plus the fuzz experiment (pass/fail
# counts land in BENCH_results.json). Override MORPHQPV_SEED / QCHECK_COUNT
# / MORPHQPV_FUZZ_N to reproduce a reported failure.
test-full: build
	dune build @runtest --force
	dune exec bench/main.exe -- fuzz --no-bechamel

# Static-analysis diagnostics over the example corpus; --strict makes any
# warning fail the target, so the shipped examples must stay lint-clean.
lint: build
	dune exec bin/main.exe -- lint --strict examples/qasm/*.qasm

# Translation validation over the example corpus: every transpile pass
# emits a certificate, the independent checker re-proves each obligation
# (exit 1 = MQ021), and the grep asserts the runs discharged real rewrite
# obligations rather than certifying vacuously.
certify: build
	dune exec bin/main.exe -- certify examples/qasm/*.qasm | tee certify.out
	@grep -q 'certified' certify.out
	@if grep -E 'obligations=[1-9]' certify.out >/dev/null; then \
	  echo "certify: all examples certified with nonzero obligations"; \
	  rm -f certify.out; \
	else \
	  echo "certify: FAILED — zero obligations discharged (vacuous run)" >&2; \
	  rm -f certify.out; exit 1; \
	fi

bench: build
	dune exec bench/main.exe

# Deterministic-parallelism smoke check: the fig1b and scale experiments
# must print byte-identical output with 1 and 2 domains (timing lines
# stripped). scale also asserts its routing invariants — every 24-32q
# workload runs on the sparse/stabilizer/rank engines, never dense.
bench-smoke: build
	@MORPHQPV_DOMAINS=1 dune exec bench/main.exe -- cache certify fig1b scale --no-bechamel \
	  | grep -v -E 'finished in|done in' > bench_smoke_1.out
	@MORPHQPV_DOMAINS=2 dune exec bench/main.exe -- cache certify fig1b scale --no-bechamel \
	  | grep -v -E 'finished in|done in' > bench_smoke_2.out
	@if diff -u bench_smoke_1.out bench_smoke_2.out; then \
	  echo "bench-smoke: outputs identical across 1 and 2 domains"; \
	  rm -f bench_smoke_1.out bench_smoke_2.out; \
	else \
	  echo "bench-smoke: FAILED — outputs diverge between domain counts" >&2; \
	  exit 1; \
	fi

# Statistical regression gate over the last two BENCH_results.json runs
# (the writer rotates the previous run to BENCH_results.prev.json).
# Fails on a significant slowdown (one-sided Welch t on log wall times,
# alpha 0.01, median ratio > 1.3x) or on any counter drift, printing the
# offending record, statistic and p-value. Run any bench target twice
# first — bench-smoke is enough.
bench-check: build
	dune exec bench/main.exe -- check

# Where the pipeline time goes on the teleport example: per-span table on
# stdout, Chrome trace_event JSONL + metrics JSON next to it (load the
# trace in chrome://tracing or ui.perfetto.dev). See DESIGN.md §12.
profile: build
	dune exec bin/main.exe -- profile examples/qasm/teleport.qasm \
	  --trace profile_trace.jsonl --metrics profile_metrics.json

clean:
	dune clean
	rm -f bench_smoke_*.out certify.out BENCH_results.json BENCH_results.prev.json
