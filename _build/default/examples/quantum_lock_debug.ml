(* The paper's motivating example (Figure 1, Section 7.1): a quantum lock
   encodes a secret key; a planted bug makes it also accept an unexpected
   key. Exhaustive testing needs O(2^(N-1)) executions to stumble on the bad
   key; MorphQPV finds it from one characterization pass plus a classical
   search.

   Run with: dune exec examples/quantum_lock_debug.exe *)

open Morphcore

let key_bits = 4
let key = 0b0110
let unexpected_key = 0b1011

let dm_of_basis n k =
  let v = Qstate.Statevec.to_cvec (Qstate.Statevec.basis n k) in
  Linalg.Cmat.outer v v

let () =
  let rng = Stats.Rng.make 7 in
  let lock = Benchmarks.Quantum_lock.make ~key ~unexpected_key key_bits in
  Format.printf "Quantum lock over %d key qubits, secret key %d, planted bug on key %d@."
    key_bits key unexpected_key;
  Format.printf "accepts(%d) = %.0f, accepts(%d) = %.0f (the bug), accepts(%d) = %.0f@.@."
    key
    (Benchmarks.Quantum_lock.accepts lock key)
    unexpected_key
    (Benchmarks.Quantum_lock.accepts lock unexpected_key)
    (key + 1)
    (Benchmarks.Quantum_lock.accepts lock (key + 1));

  let program =
    Program.make ~input_qubits:lock.Benchmarks.Quantum_lock.key_qubits
      lock.Benchmarks.Quantum_lock.circuit
  in

  (* Assertion: "if the input carries (almost) no weight on the secret key,
     the probe must come out |0>" — input-independent, unlike per-input
     assertions of prior work. *)
  let zero_out = dm_of_basis 1 0 in
  let assertion =
    Assertion.make ~name:"lock rejects every non-key input"
      ~assumes:[ Predicate.Diag_in_range (1, key, 0., 0.01) ]
      ~guarantees:[ Predicate.Equals_const (2, zero_out) ]
      ()
  in
  Format.printf "Assertion: %s@.@." (Assertion.describe assertion);

  (* Characterize with 2^(N+1) Clifford-sampled inputs (Theorem 2's budget
     for full accuracy). *)
  let count = Approx.samples_for_full_accuracy ~n_in:key_bits in
  let characterization = Characterize.run ~rng program ~count in
  let approx = Approx.of_characterization characterization in
  Format.printf "Characterization: %d sampled inputs (%a)@.@." count
    Sim.Cost.pp characterization.Characterize.cost;

  (match Verify.validate ~rng ~confirm:program approx assertion with
  | Verify.Violated { counterexample; objective; _ } ->
      Format.printf "BUG FOUND (objective %.3f). Counter-example input weight by key:@." objective;
      let minimized =
        Verify.minimize_counterexample program assertion ~counterexample
      in
      let min_probs = Qstate.Statevec.probs minimized in
      let best = ref 0 in
      Array.iteri (fun k p -> if p > min_probs.(!best) then best := k) min_probs;
      Format.printf "  minimized counter-example: basis key %d (%s)%s@." !best
        (String.init key_bits (fun j ->
             if (!best lsr (key_bits - 1 - j)) land 1 = 1 then '1' else '0'))
        (if !best = unexpected_key then "  <-- exactly the planted key" else "");
      let d = 1 lsl key_bits in
      for k = 0 to d - 1 do
        let w = Linalg.Cx.re (Linalg.Cmat.get counterexample k k) in
        if w > 0.02 then Format.printf "  key %2d (%s): weight %.3f%s@." k
            (String.init key_bits (fun j ->
                 if (k lsr (key_bits - 1 - j)) land 1 = 1 then '1' else '0'))
            w
            (if k = unexpected_key then "   <-- the planted unexpected key" else "")
      done
  | Verify.Verified _ -> Format.printf "verified (bug missed — try more samples)@.");

  (* Compare against exhaustive grid search (Quito-style). *)
  let clean = Benchmarks.Quantum_lock.make ~key key_bits in
  let reference =
    Program.make ~input_qubits:clean.Benchmarks.Quantum_lock.key_qubits
      clean.Benchmarks.Quantum_lock.circuit
  in
  (match
     Baselines.Quito.executions_to_find ~rng ~reference ~candidate:program ()
   with
  | Some n ->
      Format.printf
        "@.Grid search (Quito-style) needed %d program executions to hit the bad key;\n\
         the input space has %d basis states, so the expected cost is 2^(N-1).@."
        n (1 lsl key_bits)
  | None -> Format.printf "@.Grid search never found the bug!?@.")
