(* Working from QASM source: write the program (with the paper's tracepoint
   pragma) as text, parse it, and verify the feedback-corrected relation
   from Section 4 — including the collapsed-state assertion after the
   mid-circuit measurement.

   Run with: dune exec examples/teleport_qasm.exe *)

open Morphcore

let src =
  {|
OPENQASM 2.0;
qreg q[3];
creg c[2];
T 1 q[0];              // payload input (alice)
h q[1];
cx q[1],q[2];          // EPR pair between q1 (alice) and q2 (bob)
cx q[0],q[1];
h q[0];
measure q[0] -> c[0];
measure q[1] -> c[1];
T 3 q[0];              // collapsed state of alice after measurement
T 4 q[2];              // bob before corrections
if (c[1]==1) x q[2];
if (c[0]==1) z q[2];
T 2 q[2];              // corrected output (bob)
|}

let () =
  let rng = Stats.Rng.make 23 in
  let circuit = Qasm.parse src in
  Format.printf "Parsed teleportation from QASM (%d instructions, %d tracepoints)@.@."
    (List.length (Circuit.instrs circuit))
    (List.length (Circuit.tracepoints circuit));

  let program = Program.make ~input_qubits:[ 0 ] circuit in
  let ch =
    Characterize.run ~rng ~kind:Clifford.Sampling.Haar ~trajectories:256 program
      ~count:6
  in
  let approx = Approx.of_characterization ch in

  (* main assertion: output equals input *)
  let main_assert =
    Assertion.make ~name:"teleport"
      ~assumes:[ Predicate.Is_pure 0 ]
      ~guarantees:[ Predicate.Equals (0, 2) ]
      ()
  in
  (match Verify.validate ~rng approx main_assert with
  | Verify.Verified { max_objective; confidence } ->
      Format.printf "teleport VERIFIED (objective %.2e, confidence %.3f)@."
        max_objective confidence.Confidence.confidence
  | Verify.Violated { objective; _ } ->
      Format.printf "teleport VIOLATED (objective %.3f)@." objective);

  (* sanity check on real executions, covering the feedback path *)
  let ok = ref true in
  for _ = 1 to 20 do
    let payload = Clifford.Sampling.haar_state rng 1 in
    if not (Verify.check_on_program ~rng program main_assert ~input:payload)
    then ok := false
  done;
  Format.printf "replayed on 20 random payloads: %s@.@."
    (if !ok then "all satisfied" else "violations seen!");

  (* a buggy variant: drop the Z correction — only visible in phase *)
  let remove_line needle s =
    String.split_on_char '\n' s
    |> List.filter (fun line ->
           not
             (String.length line >= String.length needle
             && String.sub line 0 (String.length needle) = needle))
    |> String.concat "\n"
  in
  let buggy_src = remove_line "if (c[0]==1) z q[2];" src in
  let buggy = Program.make ~input_qubits:[ 0 ] (Qasm.parse buggy_src) in
  let ch_bug =
    Characterize.run ~rng ~kind:Clifford.Sampling.Haar ~trajectories:256 buggy
      ~count:6
  in
  let approx_bug = Approx.of_characterization ch_bug in
  (match Verify.validate ~rng ~confirm:buggy approx_bug main_assert with
  | Verify.Violated { objective; _ } ->
      Format.printf
        "dropped Z-correction: VIOLATED as expected (objective %.3f) — a \
         probability-only checker cannot see this bug@."
        objective
  | Verify.Verified _ ->
      Format.printf "dropped Z-correction: bug missed (try more samples)@.")
