(* Case study 3 (Section 7.3): debugging quantum RAM. One table cell is
   corrupted; the assertion on the overall functionality fails, and a binary
   search over tracepointed prefixes localizes the bad address.

   Run with: dune exec examples/qram_debug.exe *)

open Morphcore

let addr_bits = 3

let () =
  let rng = Stats.Rng.make 19 in
  let table = Benchmarks.Qram.uniform_table rng addr_bits in
  let bad_addr = 5 in
  let bad_value = table.(bad_addr) +. 1.4 in
  let qram = Benchmarks.Qram.make ~corrupt:(bad_addr, bad_value) ~table addr_bits in
  Format.printf "QRAM with %d addresses; cell %d corrupted (%.3f stored instead of %.3f)@.@."
    (1 lsl addr_bits) bad_addr bad_value table.(bad_addr);

  (* Overall functionality check: for every basis address the data qubit
     must read p(1) = sin^2(theta_addr). A single characterization serves
     all addresses. *)
  let program =
    Program.make ~input_qubits:qram.Benchmarks.Qram.addr_qubits
      qram.Benchmarks.Qram.circuit
  in
  (* the QRAM input space is classical addresses: sampling ALL basis states
     makes every basis query a case-1 (exactly representable) input --
     the paper's Strategy-adapt idea specialized to a classical input space *)
  let count = 1 lsl addr_bits in
  let ch = Characterize.run ~rng ~kind:Clifford.Sampling.Basis program ~count in
  let approx = Approx.of_characterization ch in
  Format.printf "characterized with %d sampled inputs (%a)@.@." count Sim.Cost.pp
    ch.Characterize.cost;

  let read_via_approx addr =
    let v = Qstate.Statevec.to_cvec (Qstate.Statevec.basis addr_bits addr) in
    let rho_in = Linalg.Cmat.outer v v in
    let out = Approx.state_at approx ~tracepoint:2 rho_in in
    Linalg.Cx.re (Linalg.Cmat.get out 1 1)
  in
  let suspicious = ref [] in
  for addr = 0 to (1 lsl addr_bits) - 1 do
    let measured = read_via_approx addr in
    let expected = sin table.(addr) ** 2. in
    let flag = Float.abs (measured -. expected) > 0.05 in
    Format.printf "  addr %d: approx p(1)=%.3f expected %.3f %s@." addr measured
      expected
      (if flag then "<-- WRONG" else "");
    if flag then suspicious := addr :: !suspicious
  done;

  (* Binary search with an intermediate tracepoint (tracepoint 3 sits after
     the first half of the cells): decide which half contains the error
     without re-characterizing per address. *)
  Format.printf "@.Binary search over prefix tracepoints:@.";
  let qram_mid =
    Benchmarks.Qram.make ~corrupt:(bad_addr, bad_value) ~midpoint_tracepoint:true
      ~table addr_bits
  in
  let program_mid =
    Program.make ~input_qubits:qram_mid.Benchmarks.Qram.addr_qubits
      qram_mid.Benchmarks.Qram.circuit
  in
  let ch_mid = Characterize.run ~rng ~kind:Clifford.Sampling.Basis program_mid ~count in
  let approx_mid = Approx.of_characterization ch_mid in
  let half = 1 lsl (addr_bits - 1) in
  let half_wrong =
    List.exists
      (fun addr ->
        let v = Qstate.Statevec.to_cvec (Qstate.Statevec.basis addr_bits addr) in
        let rho_in = Linalg.Cmat.outer v v in
        let out = Approx.state_at approx_mid ~tracepoint:3 rho_in in
        let measured = Linalg.Cx.re (Linalg.Cmat.get out 1 1) in
        Float.abs (measured -. (sin table.(addr) ** 2.)) > 0.05)
      (List.init half (fun a -> a))
  in
  Format.printf "  first half (addresses 0..%d) %s at the midpoint tracepoint@."
    (half - 1)
    (if half_wrong then "already WRONG" else "correct");
  Format.printf "  => the corrupted cell is in the %s half@."
    (if half_wrong then "first" else "second");
  (match !suspicious with
  | [ addr ] when addr = bad_addr ->
      Format.printf "@.Localized the corrupted address: %d (correct!)@." addr
  | addrs ->
      Format.printf "@.Flagged addresses: [%s]@."
        (String.concat "; " (List.map string_of_int addrs)))
