examples/transpile_verify.mli:
