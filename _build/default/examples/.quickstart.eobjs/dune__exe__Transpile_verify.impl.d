examples/transpile_verify.ml: Approx Benchmarks Characterize Circuit Clifford Format Linalg List Morphcore Program Stats Transpile Util_dm
