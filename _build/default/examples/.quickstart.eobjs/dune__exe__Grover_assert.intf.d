examples/grover_assert.mli:
