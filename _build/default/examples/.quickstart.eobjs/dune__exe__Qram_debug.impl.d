examples/qram_debug.ml: Approx Array Benchmarks Characterize Clifford Float Format Linalg List Morphcore Program Qstate Sim Stats String
