examples/qram_debug.mli:
