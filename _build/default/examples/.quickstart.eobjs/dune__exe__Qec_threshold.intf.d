examples/qec_threshold.mli:
