examples/quantum_lock_debug.mli:
