examples/quickstart.ml: Approx Assertion Benchmarks Characterize Circuit Clifford Confidence Format List Morphcore Predicate Program Qasm Sim Stats Verify
