examples/qnn_pruning.mli:
