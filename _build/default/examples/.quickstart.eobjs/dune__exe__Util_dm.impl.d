examples/util_dm.ml: Linalg Qstate
