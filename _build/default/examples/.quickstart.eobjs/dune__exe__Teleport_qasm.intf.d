examples/teleport_qasm.mli:
