examples/grover_assert.ml: Array Assertion Benchmarks Characterize Circuit Clifford Float Format List Morphcore Predicate Program Prop_approx Qstate Stats Tomography Util_dm Verify
