examples/qec_threshold.ml: Benchmarks Float Format List Sim Stats
