examples/qnn_pruning.ml: Approx Array Benchmarks Characterize Clifford Float Format Linalg List Morphcore Program Qstate Stats String
