examples/teleport_qasm.ml: Approx Assertion Characterize Circuit Clifford Confidence Format List Morphcore Predicate Program Qasm Stats String Verify
