examples/quickstart.mli:
