examples/quantum_lock_debug.ml: Approx Array Assertion Baselines Benchmarks Characterize Format Linalg Morphcore Predicate Program Qstate Sim Stats String Verify
