(* Verifying Grover search with property-level assertions (Strategy-prop):
   instead of reconstructing full density matrices, we characterize only the
   observable the assertion mentions — the population of the marked element
   — and verify the amplification property over the input space of oracle
   phases.

   Run with: dune exec examples/grover_assert.exe *)

open Morphcore

let n = 3
let marked = 5

let () =
  let rng = Stats.Rng.make 31 in
  let c = Benchmarks.Grover.circuit ~marked n in
  Format.printf "Grover over %d qubits, marked element %d, %d iterations, %d gates@."
    n marked
    (Benchmarks.Grover.optimal_iterations n)
    (Circuit.gate_count c);
  Format.printf "ideal success probability: %.4f@.@."
    (Benchmarks.Grover.success_probability ~marked n);

  (* the assertion's only observable is the projector onto |marked>, i.e. a
     diagonal property: characterize just that (Strategy-prop) *)
  let program = Program.make c in
  let ch = Characterize.run ~rng ~kind:Clifford.Sampling.Haar program ~count:64 in
  let z_all =
    (* diag projector expectation assembled from Z-string expectations would
       need 2^n terms; instead use the all-Z parity plus per-qubit Zs as the
       characterized property set *)
    List.init n (fun q -> Qstate.Pauli.single n q Qstate.Pauli.Z)
  in
  let pa = Prop_approx.of_characterization ~observables:z_all ~tracepoint:2 ch in
  Format.printf "property-level characterization: %d observables, %d measurement settings\n(vs %d settings for full tomography)@.@."
    (List.length (Prop_approx.observables pa))
    (Prop_approx.measurement_settings pa)
    (Tomography.State_tomo.settings_count n);

  (* check the predicted per-qubit Z signature of the amplified state against
     the true run for random phase-perturbed inputs *)
  let errs = ref [] in
  for _ = 1 to 10 do
    let input = Clifford.Sampling.haar_state rng n in
    let truth = List.assoc 2 (Program.run_traces ~rng program ~input) in
    let predicted = Prop_approx.predict pa (Util_dm.dm input) in
    List.iteri
      (fun k p ->
        let e = Float.abs (predicted.(k) -. Qstate.Pauli.expectation_dm p truth) in
        errs := e :: !errs)
      z_all
  done;
  Format.printf "property prediction error over 10 random inputs: mean %.4f, max %.4f@.@."
    (Stats.Describe.mean (Array.of_list !errs))
    (Stats.Describe.max (Array.of_list !errs));

  (* full-state assertion on the canonical input: starting from |0...0>, the
     output must concentrate on the marked element *)
  let assertion =
    Assertion.make ~name:"grover amplifies the marked element"
      ~assumes:[]
      ~guarantees:[ Predicate.Diag_in_range (2, marked, 0.85, 1.0) ]
      ()
  in
  let ok =
    Verify.check_on_program program assertion
      ~input:(Qstate.Statevec.basis n 0)
  in
  Format.printf "assertion %S on |0...0>: %s@." (Assertion.describe assertion)
    (if ok then "HOLDS" else "FAILS");

  (* and a buggy Grover (one diffusion dropped) must fail it *)
  let weak = Benchmarks.Grover.circuit ~iterations:1 ~marked n in
  let ok_weak =
    Verify.check_on_program (Program.make weak) assertion
      ~input:(Qstate.Statevec.basis n 0)
  in
  Format.printf "same assertion on an under-iterated Grover: %s (expected FAILS)@."
    (if ok_weak then "HOLDS" else "FAILS")
