(* Quickstart: verify quantum teleportation with MorphQPV.

   Run with: dune exec examples/quickstart.exe

   The flow mirrors the paper (Figure 2):
   1. write a program with tracepoints;
   2. state an assume-guarantee assertion between tracepoint states;
   3. characterize the program by input sampling (isomorphism-based
      approximation);
   4. validate the assertion as a constraint-optimization problem. *)

open Morphcore

let () =
  let rng = Stats.Rng.make 42 in

  (* 1. The program: 3-qubit teleportation. Qubit 0 carries the payload,
     tracepoint 1 labels the input, tracepoint 2 labels Bob's output. *)
  let circuit = Benchmarks.Teleport.single () in
  Format.printf "Program under verification:@.%a@." Circuit.pp circuit;
  let program = Program.make ~input_qubits:[ 0 ] circuit in

  (* 2. The assertion: if the input is pure, the output equals the input
     (tracepoint 0 is the reserved id for the program input). *)
  let assertion =
    Assertion.make ~name:"teleportation preserves the payload"
      ~assumes:[ Predicate.Is_pure 0 ]
      ~guarantees:[ Predicate.Equals (0, 2) ]
      ()
  in
  Format.printf "Assertion: %s@.@." (Assertion.describe assertion);

  (* 3. Characterization: run the program under a handful of sampled inputs
     and build the approximation functions rho_T = f(rho_in). *)
  let characterization =
    Characterize.run ~rng ~kind:Clifford.Sampling.Clifford program ~count:8
  in
  let approx = Approx.of_characterization characterization in
  Format.printf "Characterized %d tracepoints from %d sampled inputs (%a)@.@."
    (List.length (Approx.tracepoint_ids approx))
    (Approx.n_sample approx) Sim.Cost.pp
    characterization.Characterize.cost;

  (* 4. Validation: maximize the guarantee objective over all inputs. *)
  (match Verify.validate ~rng approx assertion with
  | Verify.Verified { confidence; max_objective } ->
      Format.printf
        "VERIFIED: worst-case guarantee objective %.2e (<= 0 means the \
         assertion holds); confidence %.3f@."
        max_objective confidence.Confidence.confidence
  | Verify.Violated { objective; _ } ->
      Format.printf "VIOLATED: objective %.3f — teleportation has a bug?!@."
        objective);

  (* Bonus: the same program written in QASM with the tracepoint pragma *)
  Format.printf "@.The same program as mini-QASM:@.%s@."
    (Qasm.to_string circuit)
