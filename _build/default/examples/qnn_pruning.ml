(* Case study 2 (Section 7.2): verifying gate pruning of a quantum neural
   network, and validating prior knowledge about the model.

   We train a small QNN on an Iris-like dataset, prune near-zero rotation
   gates (which should not change predictions), then corrupt the pruning by
   removing a significant gate and show the assertion catches it. Finally we
   verify the biologists' prior ("sepal length in [4,6] cm => Setosa") over
   the model's input space.

   Run with: dune exec examples/qnn_pruning.exe *)

open Morphcore

let () =
  let rng = Stats.Rng.make 11 in
  let flowers = Benchmarks.Iris.generate rng ~count:24 in
  let qnn0 = Benchmarks.Qnn.init rng ~num_qubits:4 ~layers:2 in
  Format.printf "Training a 4-qubit, 2-layer QNN on %d Iris-like flowers...@."
    (Array.length flowers);
  let qnn = Benchmarks.Qnn.train rng qnn0 flowers ~epochs:10 ~lr:0.25 in
  Format.printf "accuracy: %.2f -> %.2f@.@."
    (Benchmarks.Qnn.accuracy qnn0 flowers)
    (Benchmarks.Qnn.accuracy qnn flowers);

  (* --- Verification of gate pruning ------------------------------------ *)
  let pruned, removed = Benchmarks.Qnn.prune qnn ~threshold:0.05 in
  Format.printf "Pruning removed %d near-zero gates: [%s]@."
    (List.length removed)
    (String.concat "; " (List.map string_of_int removed));

  (* compare the two model BODIES over the whole encoded-input space: the
     output tracepoint (id 4) of the original model vs the pruned model *)
  let verify_pruning candidate_body =
    let reference = Program.make (Benchmarks.Qnn.body qnn) in
    let candidate = Program.make candidate_body in
    let inputs =
      List.init 12 (fun i ->
          ignore i;
          Clifford.Sampling.haar_state rng 4)
    in
    let ref_char = Characterize.run ~rng ~inputs reference ~count:0 in
    let cand_char = Characterize.run ~rng ~inputs candidate ~count:0 in
    let ref_approx = Approx.of_characterization ref_char in
    let cand_approx = Approx.of_characterization cand_char in
    (* worst-case output deviation over the input space: the guarantee is
       Distance_le between the two models' output tracepoints; we check it
       by stitching both models into one approximation environment *)
    let z0 = Qstate.Pauli.single 4 0 Qstate.Pauli.Z in
    let worst = ref 0. in
    for _ = 1 to 30 do
      let probe = Clifford.Sampling.haar_state rng 4 in
      let v = Qstate.Statevec.to_cvec probe in
      let rho = Linalg.Cmat.outer v v in
      let out_ref = Approx.state_at ref_approx ~tracepoint:4 rho in
      let out_cand = Approx.state_at cand_approx ~tracepoint:4 rho in
      let d =
        Float.abs
          (Qstate.Pauli.expectation_dm z0 out_ref
          -. Qstate.Pauli.expectation_dm z0 out_cand)
      in
      if d > !worst then worst := d
    done;
    !worst
  in
  let dev = verify_pruning (Benchmarks.Qnn.body pruned) in
  Format.printf "worst prediction deviation after correct pruning: %.4f -> %s@.@."
    dev (if dev < 0.2 then "ACCEPT pruning" else "REJECT pruning");

  (* corrupt the pruning: zero out a significant parameter *)
  let significant =
    let best = ref 0 in
    Array.iteri
      (fun i p -> if Float.abs p > Float.abs qnn.Benchmarks.Qnn.params.(!best) then best := i)
      qnn.Benchmarks.Qnn.params;
    !best
  in
  let corrupted = Benchmarks.Qnn.corrupt_prune qnn ~index:significant in
  let dev_bad = verify_pruning (Benchmarks.Qnn.body corrupted) in
  Format.printf
    "worst prediction deviation after corrupt pruning (gate %d removed): %.4f -> %s@.@."
    significant dev_bad
    (if dev_bad < 0.2 then "ACCEPT pruning (bug missed)" else "REJECT pruning (bug caught)");

  (* --- Verification of prior knowledge --------------------------------- *)
  (* "flowers with sepal length in [4,6] cm are Setosa": encoded as qubit 0
     rotation angle in the low band; verify the model output over that band *)
  Format.printf "Prior-knowledge check: sepal length in [4,6] cm => predicted Setosa@.";
  let violations = ref 0 and cases = ref 0 in
  Array.iter
    (fun f ->
      if f.Benchmarks.Iris.features.(0) >= 4. && f.Benchmarks.Iris.features.(0) <= 6. then begin
        incr cases;
        let e = Benchmarks.Qnn.predict qnn ~features:f.Benchmarks.Iris.features in
        if e <= 0. then incr violations
      end)
    (Benchmarks.Iris.generate rng ~count:60);
  Format.printf "checked %d flowers in the band: %d violations -> prior is %s@."
    !cases !violations
    (if !violations = 0 then "CONSISTENT with the model" else "INCONSISTENT (counter-example found)")
