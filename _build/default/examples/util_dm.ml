(* tiny shared helper for the examples *)
let dm st =
  let v = Qstate.Statevec.to_cvec st in
  Linalg.Cmat.outer v v
