(* Optimizing a circuit and verifying the optimization: the transpiler
   shrinks a redundant circuit, the equivalence checker proves the unitary
   unchanged, and MorphQPV's assertion machinery confirms the tracepoint
   relation survives — then catches a deliberately broken "optimization".

   Run with: dune exec examples/transpile_verify.exe *)

open Morphcore

let () =
  let rng = Stats.Rng.make 37 in
  (* a deliberately redundant circuit: QFT . QFT^-1 wrapped around a core *)
  let n = 4 in
  let all = List.init n (fun q -> q) in
  let core =
    Circuit.(empty n |> h 0 |> cx 0 1 |> rz 0.8 1 |> rz 0.4 1 |> cx 2 3 |> cx 2 3
             |> t_gate 2 |> tdg 2)
  in
  let padded =
    Benchmarks.Qft.append_inverse all (Benchmarks.Qft.append all core)
  in
  let c = Circuit.tracepoint 2 all (Circuit.tracepoint 1 all (Circuit.empty n) |> Circuit.append padded) in
  Format.printf "original circuit: %d gates, depth %d@." (Circuit.gate_count c)
    (Circuit.depth c);

  let optimized = Transpile.Passes.optimize c in
  Format.printf "optimized:        %d gates, depth %d (%.0f%% gates removed)@.@."
    (Circuit.gate_count optimized) (Circuit.depth optimized)
    (100. *. Transpile.Passes.gate_reduction ~before:c ~after:optimized);

  (* 1. exact unitary equivalence *)
  Format.printf "exact unitary equivalence: %b@."
    (Transpile.Equiv.unitaries_equal c optimized);

  (* 2. MorphQPV cross-check: characterize both circuits on the same sampled
     inputs and compare the output-tracepoint approximations *)
  let reference = Program.make c and candidate = Program.make optimized in
  let inputs = List.init 12 (fun _ -> Clifford.Sampling.haar_state rng n) in
  let ap p =
    Approx.of_characterization (Characterize.run ~rng ~inputs p ~count:0)
  in
  let ra = ap reference and ca = ap candidate in
  let worst = ref 0. in
  for _ = 1 to 10 do
    let rho = Util_dm.dm (Clifford.Sampling.haar_state rng n) in
    let a = Approx.state_at ~physical:false ra ~tracepoint:2 rho in
    let b = Approx.state_at ~physical:false ca ~tracepoint:2 rho in
    let d = Linalg.Cmat.frob_norm (Linalg.Cmat.sub a b) in
    if d > !worst then worst := d
  done;
  Format.printf "worst tracepoint deviation across the input space: %.2e@.@."
    !worst;

  (* 3. a broken optimizer that drops one more gate must be caught *)
  let broken =
    let dropped = ref false in
    Circuit.map_gates
      (fun g ->
        if (not !dropped) && g.Circuit.Gate.name = "rz" then begin
          dropped := true;
          None
        end
        else Some g)
      optimized
  in
  Format.printf "broken optimization (the surviving RZ dropped):@.";
  Format.printf "  exact equivalence: %b (expected false)@."
    (Transpile.Equiv.unitaries_equal c broken);
  let ba = ap (Program.make broken) in
  let worst_bad = ref 0. in
  for _ = 1 to 10 do
    let rho = Util_dm.dm (Clifford.Sampling.haar_state rng n) in
    let a = Approx.state_at ~physical:false ra ~tracepoint:2 rho in
    let b = Approx.state_at ~physical:false ba ~tracepoint:2 rho in
    let d = Linalg.Cmat.frob_norm (Linalg.Cmat.sub a b) in
    if d > !worst_bad then worst_bad := d
  done;
  Format.printf "  worst tracepoint deviation: %.3f (a clear bug signal)@."
    !worst_bad
