(* Quantum error correction under noise: the repetition code's feedback
   decoder (mid-circuit measurement + classically-controlled corrections)
   exercised end to end. With an injected X error the round recovers
   perfectly; under circuit-level depolarizing noise, higher distance helps
   only below a noise threshold — above it, the extra circuitry hurts.

   Run with: dune exec examples/qec_threshold.exe *)

let () =
  let rng = Stats.Rng.make 41 in
  Format.printf "Injected single X errors (noise-free): the decoder must fix every one@.";
  List.iter
    (fun d ->
      let fids =
        List.map
          (fun q -> Benchmarks.Qec.logical_fidelity ~error:q ~trials:10 rng d)
          (List.init d (fun q -> q))
      in
      Format.printf "  distance %d: min fidelity over error positions = %.3f@." d
        (List.fold_left Float.min 1. fids))
    [ 3; 5; 7 ];

  Format.printf "@.Circuit-level depolarizing noise (logical fidelity of |+>, 200 trials):@.";
  Format.printf "%-12s %-12s %-12s %-12s@." "p1 per gate" "d=3" "d=5" "d=7";
  List.iter
    (fun p1 ->
      let noise = Sim.Noise.make ~p1 ~p2:(2. *. p1) () in
      let cells =
        List.map
          (fun d -> Benchmarks.Qec.logical_fidelity ~noise ~trials:200 rng d)
          [ 3; 5; 7 ]
      in
      match cells with
      | [ a; b; c ] -> Format.printf "%-12.4f %-12.3f %-12.3f %-12.3f@." p1 a b c
      | _ -> ())
    [ 0.0005; 0.002; 0.008; 0.03 ];
  Format.printf
    "@.(Below threshold larger distance wins; at high rates the deeper@.\
     syndrome circuitry accumulates more errors than it corrects.)@."
