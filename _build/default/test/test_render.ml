let lines s = String.split_on_char '\n' (String.trim s)

let test_ghz_layout () =
  let out = Render.Draw.to_string (Circuit.(empty 3 |> h 0 |> cx 0 1 |> cx 1 2)) in
  let ls = lines out in
  Alcotest.(check int) "three wires" 3 (List.length ls);
  (* qubit 0 line carries the H and the control dot *)
  let l0 = List.nth ls 0 in
  assert (String.length l0 > 0);
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  assert (contains "[H]" l0);
  assert (contains "o" l0);
  assert (contains "[X]" (List.nth ls 1))

let contains needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_slots_share_columns () =
  (* disjoint gates share a slot: the drawing should have exactly 1 slot *)
  let out = Render.Draw.to_string Circuit.(empty 2 |> h 0 |> h 1) in
  let ls = lines out in
  let width l = String.length l in
  Alcotest.(check int) "same width" (width (List.nth ls 0)) (width (List.nth ls 1));
  (* both rows show their H in the same column *)
  let col l =
    let rec find i = if i >= String.length l - 2 then -1
      else if String.sub l i 3 = "[H]" then i else find (i + 1) in
    find 0
  in
  Alcotest.(check int) "same column" (col (List.nth ls 0)) (col (List.nth ls 1))

let test_measure_and_feedback_rendering () =
  let out = Render.Draw.to_string (Benchmarks.Teleport.single ()) in
  assert (contains "M->c0" out);
  assert (contains "?c" out);
  assert (contains "T1" out);
  assert (contains "T2" out)

let test_parameter_label () =
  let out = Render.Draw.to_string Circuit.(empty 1 |> rz 0.5 0) in
  assert (contains "RZ(0.5)" out)

let test_every_benchmark_renders () =
  let rng = Stats.Rng.make 1 in
  List.iter
    (fun c ->
      let out = Render.Draw.to_string c in
      Alcotest.(check int) "one line per qubit" (Circuit.num_qubits c)
        (List.length (lines out)))
    [
      Benchmarks.Ghz.circuit 4;
      Benchmarks.Qft.circuit 3;
      (Benchmarks.Quantum_lock.make ~key:1 3).Benchmarks.Quantum_lock.circuit;
      Benchmarks.Teleport.multi 2;
      Benchmarks.Xeb.make rng ~n:3 ~depth:3;
      Benchmarks.Grover.circuit ~marked:2 3;
    ]

let () =
  Alcotest.run "render"
    [
      ( "draw",
        [
          Alcotest.test_case "ghz layout" `Quick test_ghz_layout;
          Alcotest.test_case "slot sharing" `Quick test_slots_share_columns;
          Alcotest.test_case "measure/feedback" `Quick test_measure_and_feedback_rendering;
          Alcotest.test_case "parameter label" `Quick test_parameter_label;
          Alcotest.test_case "all benchmarks render" `Quick test_every_benchmark_renders;
        ] );
    ]
