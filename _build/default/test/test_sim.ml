open Linalg

let rng () = Stats.Rng.make 77

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ---------------- Engine ---------------- *)

let test_engine_ghz () =
  let c = Circuit.(empty 3 |> h 0 |> cx 0 1 |> cx 1 2) in
  let st = (Sim.Engine.run c).Sim.Engine.state in
  check_float "p000" 0.5 (Cx.norm2 (Qstate.Statevec.amplitude st 0));
  check_float "p111" 0.5 (Cx.norm2 (Qstate.Statevec.amplitude st 7))

let test_engine_unitary_qft () =
  (* QFT matrix entries are omega^(jk)/sqrt(d) *)
  let n = 3 in
  let u = Sim.Engine.unitary (Benchmarks.Qft.circuit n) in
  let d = 1 lsl n in
  let expect =
    Cmat.init d d (fun j k ->
        Cx.scale
          (1. /. sqrt (float_of_int d))
          (Cx.exp_i (2. *. Float.pi *. float_of_int (j * k) /. float_of_int d)))
  in
  if not (Cmat.equal ~eps:1e-9 u expect) then Alcotest.fail "QFT matrix wrong"

let test_engine_swap_gate () =
  let c = Circuit.(empty 2 |> x 0 |> swap 0 1) in
  let st = (Sim.Engine.run c).Sim.Engine.state in
  check_float "swapped" 1. (Cx.norm2 (Qstate.Statevec.amplitude st 2))

let test_engine_controls () =
  (* ccx acts only when both controls are 1 *)
  let run_in input =
    let c = Circuit.(empty 3 |> ccx 0 1 2) in
    let initial = Qstate.Statevec.basis 3 input in
    (Sim.Engine.run ~initial c).Sim.Engine.state
  in
  check_float "no flip" 1. (Cx.norm2 (Qstate.Statevec.amplitude (run_in 1) 1));
  check_float "flip" 1. (Cx.norm2 (Qstate.Statevec.amplitude (run_in 3) 7))

let test_engine_tracepoints () =
  let c = Circuit.(empty 2 |> tracepoint 1 [ 0 ] |> h 0 |> tracepoint 2 [ 0 ]) in
  let traces = Sim.Engine.tracepoint_states c in
  let t1 = List.assoc 1 traces and t2 = List.assoc 2 traces in
  check_float "t1 pure zero" 1. (Cx.re (Cmat.get t1 0 0));
  check_float "t2 coherence" 0.5 (Cx.re (Cmat.get t2 0 1))

let test_engine_teleport_feedback () =
  (* teleporting a random state must reproduce it on qubit 2 in EVERY
     trajectory thanks to the feedback corrections *)
  let r = rng () in
  let c = Benchmarks.Teleport.single () in
  for _ = 1 to 20 do
    let payload = Clifford.Sampling.haar_state r 1 in
    let initial =
      Qstate.Statevec.kron (Qstate.Statevec.zero 2) payload
    in
    let o = Sim.Engine.run ~rng:r ~initial c in
    let out = Qstate.Statevec.reduced_density o.Sim.Engine.state [ 2 ] in
    let expect = Cmat.outer (Qstate.Statevec.to_cvec payload) (Qstate.Statevec.to_cvec payload) in
    if not (Cmat.equal ~eps:1e-9 out expect) then
      Alcotest.fail "teleportation failed in some trajectory"
  done

let test_engine_sample_counts () =
  let r = rng () in
  let c = Circuit.(empty 1 |> h 0) in
  let counts = Sim.Engine.sample_counts ~rng:r ~shots:4000 c in
  let total = List.fold_left (fun a (_, n) -> a + n) 0 counts in
  Alcotest.(check int) "total" 4000 total;
  List.iter
    (fun (_, n) -> check_float "balanced" 2000. (float_of_int n) ~eps:200.)
    counts

let test_engine_noise_decoheres () =
  let r = rng () in
  let noise = Sim.Noise.make ~p1:0.3 () in
  let c = Circuit.(empty 1 |> h 0 |> tracepoint 1 [ 0 ]) in
  let traces = Sim.Engine.tracepoint_states ~rng:r ~noise ~trajectories:400 c in
  let rho = List.assoc 1 traces in
  (* off-diagonal must shrink under depolarizing *)
  let coh = Cx.norm (Cmat.get rho 0 1) in
  if coh >= 0.48 then Alcotest.failf "noise did not decohere (%.3f)" coh;
  if coh <= 0.2 then Alcotest.failf "noise too strong (%.3f)" coh

let test_engine_deterministic_detection () =
  assert (Sim.Engine.is_deterministic (Benchmarks.Ghz.circuit 3));
  assert (not (Sim.Engine.is_deterministic (Benchmarks.Teleport.single ())))

(* ---------------- Dm_engine ---------------- *)

let test_dm_matches_statevec () =
  let c = Circuit.(empty 3 |> h 0 |> cx 0 1 |> rz 0.7 1 |> cx 1 2 |> ry 0.3 2) in
  let sv = (Sim.Engine.run c).Sim.Engine.state in
  let dm = Sim.Dm_engine.run c in
  let rho_sv = Qstate.Statevec.density sv in
  let rho_dm = Qstate.Density.mat (Sim.Dm_engine.final_density dm) in
  if not (Cmat.equal ~eps:1e-9 rho_sv rho_dm) then
    Alcotest.fail "density engine disagrees with statevector"

let test_dm_teleport_exact () =
  (* exact branch bookkeeping: teleported mixed output equals input exactly *)
  let c = Benchmarks.Teleport.single () in
  let payload = Clifford.Sampling.haar_state (rng ()) 1 in
  let initial =
    Qstate.Density.of_statevec
      (Qstate.Statevec.kron (Qstate.Statevec.zero 2) payload)
  in
  let o = Sim.Dm_engine.run ~initial c in
  let final = Sim.Dm_engine.final_density o in
  let out = Qstate.Density.partial_trace ~keep:[ 2 ] final in
  let expect =
    Cmat.outer (Qstate.Statevec.to_cvec payload) (Qstate.Statevec.to_cvec payload)
  in
  if not (Cmat.equal ~eps:1e-9 (Qstate.Density.mat out) expect) then
    Alcotest.fail "dm teleportation incorrect"

let test_dm_branch_weights () =
  let c = Circuit.(empty ~clbits:1 1 |> h 0 |> measure 0 0) in
  let o = Sim.Dm_engine.run c in
  let total = List.fold_left (fun a b -> a +. b.Sim.Dm_engine.weight) 0. o.Sim.Dm_engine.branches in
  check_float "weights sum to 1" 1. total ~eps:1e-9;
  Alcotest.(check int) "two branches" 2 (List.length o.Sim.Dm_engine.branches)

let test_dm_noise_validity () =
  let c = Circuit.(empty 2 |> h 0 |> cx 0 1) in
  let o = Sim.Dm_engine.run ~noise:Sim.Noise.ibm_cairo c in
  let rho = Sim.Dm_engine.final_density o in
  assert (Qstate.Density.is_valid ~eps:1e-6 rho);
  assert (Qstate.Density.purity rho < 1.)

let test_dm_readout_error () =
  let noise = Sim.Noise.make ~readout:0.2 () in
  let c = Circuit.(empty ~clbits:1 1 |> measure 0 0) in
  let o = Sim.Dm_engine.run ~noise c in
  (* input |0>: branch reading 1 must carry weight 0.2 *)
  let w1 =
    List.fold_left
      (fun acc b -> if b.Sim.Dm_engine.clbits.(0) = 1 then acc +. b.Sim.Dm_engine.weight else acc)
      0. o.Sim.Dm_engine.branches
  in
  check_float "readout flip weight" 0.2 w1 ~eps:1e-9

(* ---------------- Cost ---------------- *)

let test_cost_record () =
  let m = Sim.Cost.create () in
  let c = Circuit.(empty 2 |> h 0 |> cx 0 1) in
  Sim.Cost.record_circuit m c ~shots:100;
  Alcotest.(check int) "executions" 1 m.Sim.Cost.executions;
  Alcotest.(check int) "shots" 100 m.Sim.Cost.shots;
  Alcotest.(check int) "ops" 200 m.Sim.Cost.gate_ops;
  Alcotest.(check int) "1q" 100 m.Sim.Cost.one_qubit_gates;
  Alcotest.(check int) "2q" 100 m.Sim.Cost.two_qubit_gates

let test_cost_hardware_time () =
  let m = Sim.Cost.create () in
  m.Sim.Cost.one_qubit_gates <- 1000;
  m.Sim.Cost.two_qubit_gates <- 1000;
  m.Sim.Cost.measurements <- 1000;
  check_float "hw seconds" ((60. +. 340. +. 732.) *. 1e-6)
    (Sim.Cost.hardware_seconds m) ~eps:1e-12

let test_cost_add () =
  let a = Sim.Cost.create () and b = Sim.Cost.create () in
  let c = Circuit.(empty 1 |> h 0) in
  Sim.Cost.record_circuit a c ~shots:10;
  Sim.Cost.record_circuit b c ~shots:5;
  Sim.Cost.add a b;
  Alcotest.(check int) "merged shots" 15 a.Sim.Cost.shots

(* ---------------- Noise ---------------- *)

let test_noise_kraus_complete () =
  (* completeness: sum K^dag K = I *)
  let ks = Sim.Noise.kraus1 0.37 in
  let acc =
    List.fold_left
      (fun acc k -> Cmat.add acc (Cmat.mul (Cmat.adjoint k) k))
      (Cmat.create 2 2) ks
  in
  if not (Cmat.equal ~eps:1e-12 acc (Cmat.identity 2)) then
    Alcotest.fail "Kraus operators not complete"

let test_noise_sampler_rate () =
  let r = rng () in
  let hits = ref 0 in
  let trials = 20000 in
  for _ = 1 to trials do
    match Sim.Noise.sample_pauli r 0.25 with Some _ -> incr hits | None -> ()
  done;
  check_float "error rate" 0.25
    (float_of_int !hits /. float_of_int trials)
    ~eps:0.02

(* ---------------- extended noise channels ---------------- *)

let test_amplitude_damping () =
  let ks = Sim.Noise.amplitude_damping 0.3 in
  (* completeness *)
  let acc =
    List.fold_left
      (fun acc k -> Cmat.add acc (Cmat.mul (Cmat.adjoint k) k))
      (Cmat.create 2 2) ks
  in
  assert (Cmat.equal ~eps:1e-12 acc (Cmat.identity 2));
  (* |1> decays to |0> with probability gamma *)
  let rho = Qstate.Density.apply_kraus ks 0 (Qstate.Density.basis 1 1) in
  check_float "decayed weight" 0.3 (Cx.re (Cmat.get (Qstate.Density.mat rho) 0 0));
  (* |0> is a fixed point *)
  let rho0 = Qstate.Density.apply_kraus ks 0 (Qstate.Density.basis 1 0) in
  check_float "ground fixed" 1. (Cx.re (Cmat.get (Qstate.Density.mat rho0) 0 0))

let test_phase_damping () =
  let ks = Sim.Noise.phase_damping 0.5 in
  let plus = Qstate.Statevec.zero 1 in
  Qstate.Statevec.apply1 Qstate.Gates.h 0 plus;
  let rho = Qstate.Density.apply_kraus ks 0 (Qstate.Density.of_statevec plus) in
  (* populations untouched, coherence shrinks by sqrt(1-lambda) *)
  check_float "population" 0.5 (Cx.re (Cmat.get (Qstate.Density.mat rho) 0 0));
  check_float "coherence" (0.5 *. sqrt 0.5)
    (Cx.re (Cmat.get (Qstate.Density.mat rho) 0 1))
    ~eps:1e-12

let test_thermal_rates () =
  (* gate_time << T1,T2: tiny rates; equality at t=0 *)
  let g0, l0 = Sim.Noise.thermal ~t1:100e-6 ~t2:80e-6 ~gate_time:0. in
  check_float "gamma 0" 0. g0;
  check_float "lambda 0" 0. l0;
  let g, l = Sim.Noise.thermal ~t1:100e-6 ~t2:80e-6 ~gate_time:1e-6 in
  assert (g > 0. && g < 0.05);
  assert (l > 0. && l < 0.05);
  Alcotest.check_raises "unphysical"
    (Invalid_argument "Noise.thermal: T2 > 2 T1") (fun () ->
      ignore (Sim.Noise.thermal ~t1:1e-6 ~t2:3e-6 ~gate_time:1e-6))

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "ghz" `Quick test_engine_ghz;
          Alcotest.test_case "qft unitary" `Quick test_engine_unitary_qft;
          Alcotest.test_case "swap" `Quick test_engine_swap_gate;
          Alcotest.test_case "controls" `Quick test_engine_controls;
          Alcotest.test_case "tracepoints" `Quick test_engine_tracepoints;
          Alcotest.test_case "teleport feedback" `Quick test_engine_teleport_feedback;
          Alcotest.test_case "sample counts" `Quick test_engine_sample_counts;
          Alcotest.test_case "noise decoheres" `Quick test_engine_noise_decoheres;
          Alcotest.test_case "determinism detection" `Quick test_engine_deterministic_detection;
        ] );
      ( "dm-engine",
        [
          Alcotest.test_case "matches statevec" `Quick test_dm_matches_statevec;
          Alcotest.test_case "teleport exact" `Quick test_dm_teleport_exact;
          Alcotest.test_case "branch weights" `Quick test_dm_branch_weights;
          Alcotest.test_case "noise validity" `Quick test_dm_noise_validity;
          Alcotest.test_case "readout error" `Quick test_dm_readout_error;
        ] );
      ( "cost",
        [
          Alcotest.test_case "record" `Quick test_cost_record;
          Alcotest.test_case "hardware time" `Quick test_cost_hardware_time;
          Alcotest.test_case "add" `Quick test_cost_add;
        ] );
      ( "noise",
        [
          Alcotest.test_case "kraus completeness" `Quick test_noise_kraus_complete;
          Alcotest.test_case "sampler rate" `Quick test_noise_sampler_rate;
          Alcotest.test_case "amplitude damping" `Quick test_amplitude_damping;
          Alcotest.test_case "phase damping" `Quick test_phase_damping;
          Alcotest.test_case "thermal rates" `Quick test_thermal_rates;
        ] );
    ]

