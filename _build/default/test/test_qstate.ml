open Qstate
open Linalg

let rng = Stats.Rng.make 123

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let check_cmat ?(eps = 1e-9) msg expected actual =
  if not (Cmat.equal ~eps expected actual) then
    Alcotest.failf "%s: matrices differ" msg

let random_state n =
  let d = 1 lsl n in
  let v =
    Cvec.init d (fun _ ->
        Cx.make
          (Stats.Rng.gaussian rng ~mu:0. ~sigma:1.)
          (Stats.Rng.gaussian rng ~mu:0. ~sigma:1.))
  in
  Statevec.of_cvec n (Cvec.normalize v)

(* ---------------- Pauli ---------------- *)

let test_pauli_matrices () =
  List.iter
    (fun op ->
      let m = Pauli.matrix1 op in
      assert (Cmat.is_unitary m);
      assert (Cmat.is_hermitian m))
    [ Pauli.I; Pauli.X; Pauli.Y; Pauli.Z ];
  (* XY = iZ *)
  let xy = Cmat.mul (Pauli.matrix1 Pauli.X) (Pauli.matrix1 Pauli.Y) in
  check_cmat "XY = iZ" (Cmat.scale Cx.i (Pauli.matrix1 Pauli.Z)) xy

let test_pauli_string_roundtrip () =
  let p = Pauli.of_string "XIZY" in
  Alcotest.(check string) "roundtrip" "XIZY" (Pauli.to_string p);
  Alcotest.(check int) "weight" 3 (Pauli.weight p);
  (* qubit 0 is rightmost *)
  assert (p.(0) = Pauli.Y);
  assert (p.(3) = Pauli.X)

let test_pauli_all () =
  Alcotest.(check int) "count 1" 4 (List.length (Pauli.all 1));
  Alcotest.(check int) "count 2" 16 (List.length (Pauli.all 2));
  Alcotest.(check int) "count 3" 64 (List.length (Pauli.all 3))

let test_pauli_expectation_vs_matrix () =
  (* expectation_dm must match the explicit tr(P rho) on random states *)
  let n = 3 in
  let st = random_state n in
  let rho = Statevec.density st in
  List.iter
    (fun p ->
      let direct = Cx.re (Cmat.trace (Cmat.mul (Pauli.matrix p) rho)) in
      check_float (Pauli.to_string p) direct (Pauli.expectation_dm p rho)
        ~eps:1e-9)
    (Pauli.all n)

let test_pauli_statevec_expectation () =
  let n = 3 in
  let st = random_state n in
  let rho = Statevec.density st in
  List.iter
    (fun p ->
      check_float (Pauli.to_string p)
        (Pauli.expectation_dm p rho)
        (Statevec.expectation_pauli p st)
        ~eps:1e-9)
    (Pauli.all n)


let test_pauli_mul () =
  (* X * Y = iZ on one qubit *)
  let phase, r = Pauli.mul (Pauli.of_string "X") (Pauli.of_string "Y") in
  Alcotest.(check int) "phase" 1 phase;
  Alcotest.(check string) "result" "Z" (Pauli.to_string r);
  (* multi-qubit: matches explicit matrix product *)
  let a = Pauli.of_string "XZY" and b = Pauli.of_string "YYI" in
  let phase, r = Pauli.mul a b in
  let lhs = Cmat.mul (Pauli.matrix a) (Pauli.matrix b) in
  let phase_factor =
    match phase with
    | 0 -> Cx.one
    | 1 -> Cx.i
    | 2 -> Cx.of_float (-1.)
    | _ -> Cx.neg Cx.i
  in
  let rhs = Cmat.scale phase_factor (Pauli.matrix r) in
  if not (Cmat.equal ~eps:1e-12 lhs rhs) then Alcotest.fail "product mismatch"

let test_pauli_mul_self_inverse () =
  let p = Pauli.of_string "XYZIZ" in
  let phase, r = Pauli.mul p p in
  Alcotest.(check int) "phase" 0 phase;
  Alcotest.(check int) "identity" 0 (Pauli.weight r)

let test_pauli_commute () =
  assert (Pauli.commute (Pauli.of_string "XX") (Pauli.of_string "ZZ"));
  assert (not (Pauli.commute (Pauli.of_string "XI") (Pauli.of_string "ZI")));
  assert (Pauli.commute (Pauli.of_string "XI") (Pauli.of_string "IZ"))

(* ---------------- Gates ---------------- *)

let test_gates_unitary () =
  List.iter
    (fun (name, params) ->
      let u = Gates.by_name name params in
      if not (Cmat.is_unitary ~eps:1e-10 u) then
        Alcotest.failf "%s not unitary" name)
    [
      ("h", []); ("x", []); ("y", []); ("z", []); ("s", []); ("sdg", []);
      ("t", []); ("tdg", []); ("sx", []); ("sy", []); ("sw", []); ("id", []);
      ("rx", [ 0.7 ]); ("ry", [ 1.3 ]); ("rz", [ -2.1 ]); ("p", [ 0.4 ]);
      ("u3", [ 0.5; 1.1; -0.3 ]);
    ]

let test_gate_identities () =
  (* HXH = Z, HZH = X, S^2 = Z, T^2 = S, sx^2 = X *)
  let open Gates in
  check_cmat "HXH = Z" z (Cmat.mul3 h x h);
  check_cmat "HZH = X" x (Cmat.mul3 h z h);
  check_cmat "S^2 = Z" z (Cmat.mul s s);
  check_cmat "T^2 = S" s (Cmat.mul t t);
  check_cmat "SX^2 = X" x (Cmat.mul sx sx);
  check_cmat "SY^2 = Y" y (Cmat.mul sy sy)

let test_rotation_periodicity () =
  (* R(0) = I and R(2pi) = -I *)
  check_cmat "rx 0" (Cmat.identity 2) (Gates.rx 0.);
  check_cmat "rx 2pi"
    (Cmat.rscale (-1.) (Cmat.identity 2))
    (Gates.rx (2. *. Float.pi))
    ~eps:1e-12

(* ---------------- Statevec ---------------- *)

let test_statevec_basis () =
  let st = Statevec.basis 3 5 in
  check_float "amp 5" 1. (Cx.re (Statevec.amplitude st 5));
  check_float "norm" 1. (Statevec.norm st);
  check_float "prob1 q0" 1. (Statevec.prob1 st 0);
  check_float "prob1 q1" 0. (Statevec.prob1 st 1);
  check_float "prob1 q2" 1. (Statevec.prob1 st 2)

let test_statevec_apply1_h () =
  let st = Statevec.zero 1 in
  Statevec.apply1 Gates.h 0 st;
  check_float "amp0" (1. /. sqrt 2.) (Cx.re (Statevec.amplitude st 0));
  check_float "amp1" (1. /. sqrt 2.) (Cx.re (Statevec.amplitude st 1))

let test_statevec_bell () =
  let st = Statevec.zero 2 in
  Statevec.apply1 Gates.h 0 st;
  Statevec.apply_controlled ~controls:[ 0 ] Gates.x 1 st;
  check_float "p00" 0.5 (Cx.norm2 (Statevec.amplitude st 0));
  check_float "p11" 0.5 (Cx.norm2 (Statevec.amplitude st 3));
  check_float "p01" 0. (Cx.norm2 (Statevec.amplitude st 1))

let test_statevec_apply_preserves_norm () =
  let st = random_state 4 in
  Statevec.apply1 (Gates.u3 0.4 1.2 2.2) 2 st;
  Statevec.apply_controlled ~controls:[ 0; 3 ] (Gates.rx 0.9) 1 st;
  check_float "norm preserved" 1. (Statevec.norm st) ~eps:1e-10

let test_statevec_apply2_swap () =
  let st = Statevec.basis 2 1 in
  (* |01> with qubit0=1 *)
  let swap =
    Cmat.init 4 4 (fun i j ->
        let sw = ((j land 1) lsl 1) lor ((j lsr 1) land 1) in
        if i = sw then Cx.one else Cx.zero)
  in
  Statevec.apply2 swap 0 1 st;
  check_float "swapped" 1. (Cx.norm2 (Statevec.amplitude st 2))

let test_statevec_measure_collapse () =
  let st = Statevec.zero 2 in
  Statevec.apply1 Gates.h 0 st;
  Statevec.apply_controlled ~controls:[ 0 ] Gates.x 1 st;
  let outcome = Statevec.measure rng st 0 in
  (* Bell state: both qubits must agree after collapse *)
  check_float "correlated" (float_of_int outcome) (Statevec.prob1 st 1) ~eps:1e-9

let test_statevec_project_zero_prob () =
  let st = Statevec.basis 1 0 in
  let p = Statevec.project st 0 1 in
  check_float "zero prob branch" 0. p

let test_statevec_reduced_density () =
  (* Bell state: each qubit maximally mixed *)
  let st = Statevec.zero 2 in
  Statevec.apply1 Gates.h 0 st;
  Statevec.apply_controlled ~controls:[ 0 ] Gates.x 1 st;
  let rho0 = Statevec.reduced_density st [ 0 ] in
  check_cmat "maximally mixed" (Cmat.rscale 0.5 (Cmat.identity 2)) rho0;
  (* product state: reduced = pure *)
  let st2 = Statevec.basis 2 2 in
  let rho1 = Statevec.reduced_density st2 [ 1 ] in
  check_float "pure part" 1. (Cx.re (Cmat.get rho1 1 1))

let test_statevec_reduced_density_order () =
  (* keep-list order defines result bit order *)
  let st = Statevec.basis 3 0b011 in
  let rho = Statevec.reduced_density st [ 1; 0 ] in
  (* qubit1=1 is result bit 0, qubit0=1 is result bit 1: index 0b11 *)
  check_float "reordered" 1. (Cx.re (Cmat.get rho 3 3))

let test_statevec_kron () =
  let a = Statevec.basis 1 1 and b = Statevec.basis 2 2 in
  let ab = Statevec.kron a b in
  (* a occupies high bits: index = 1*4 + 2 = 6 *)
  check_float "kron index" 1. (Cx.norm2 (Statevec.amplitude ab 6))

let test_statevec_counts () =
  let st = Statevec.zero 1 in
  Statevec.apply1 Gates.h 0 st;
  let counts = Statevec.counts rng st ~shots:10000 in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 counts in
  Alcotest.(check int) "total" 10000 total;
  List.iter
    (fun (_, c) -> check_float "balanced" 5000. (float_of_int c) ~eps:300.)
    counts

(* ---------------- Density ---------------- *)

let test_density_pure () =
  let st = random_state 2 in
  let rho = Density.of_statevec st in
  check_float "trace" 1. (Density.trace rho) ~eps:1e-10;
  check_float "purity" 1. (Density.purity rho) ~eps:1e-10;
  assert (Density.is_valid rho)

let test_density_mixed () =
  let rho =
    Density.mix [ (0.5, Density.basis 1 0); (0.5, Density.basis 1 1) ]
  in
  check_float "purity" 0.5 (Density.purity rho) ~eps:1e-10;
  assert (Density.is_valid rho)

let test_density_apply1_matches_statevec () =
  let st = random_state 3 in
  let rho = Density.of_statevec st in
  let u = Gates.u3 0.7 0.2 1.9 in
  let rho' = Density.apply1 u 1 rho in
  Statevec.apply1 u 1 st;
  check_cmat "evolved" (Density.mat (Density.of_statevec st)) (Density.mat rho')

let test_density_controlled_matches_statevec () =
  let st = random_state 3 in
  let rho = Density.of_statevec st in
  let u = Gates.ry 1.1 in
  let rho' = Density.apply_controlled ~controls:[ 0; 2 ] u 1 rho in
  Statevec.apply_controlled ~controls:[ 0; 2 ] u 1 st;
  check_cmat "evolved" (Density.mat (Density.of_statevec st)) (Density.mat rho')

let test_density_kraus_trace_preserving () =
  let st = random_state 2 in
  let rho = Density.of_statevec st in
  let rho' = Density.apply_kraus (Sim.Noise.kraus1 0.2) 0 rho in
  check_float "trace preserved" 1. (Density.trace rho') ~eps:1e-10;
  assert (Density.purity rho' < 1.)

let test_density_depolarizing_limit () =
  (* p = 1 sends any single-qubit state to I/2 mixed with itself at 1/3 *)
  let rho = Density.basis 1 0 in
  let rho' = Density.apply_kraus (Sim.Noise.kraus1 0.75) 0 rho in
  check_cmat "3/4-depolarized = I/2"
    (Cmat.rscale 0.5 (Cmat.identity 2))
    (Density.mat rho')

let test_density_measure () =
  let st = Statevec.zero 1 in
  Statevec.apply1 Gates.h 0 st;
  let rho = Density.of_statevec st in
  let (p0, r0), (p1, _) = Density.measure_qubit rho 0 in
  check_float "p0" 0.5 p0 ~eps:1e-10;
  check_float "p1" 0.5 p1 ~eps:1e-10;
  check_cmat "collapsed" (Density.mat (Density.basis 1 0)) (Density.mat r0)

let test_density_partial_trace () =
  let st = Statevec.zero 2 in
  Statevec.apply1 Gates.h 0 st;
  Statevec.apply_controlled ~controls:[ 0 ] Gates.x 1 st;
  let rho = Density.of_statevec st in
  let r0 = Density.partial_trace ~keep:[ 0 ] rho in
  check_cmat "bell partial" (Cmat.rscale 0.5 (Cmat.identity 2)) (Density.mat r0);
  check_cmat "matches statevec" (Statevec.reduced_density st [ 0 ]) (Density.mat r0)

let test_density_fidelity () =
  let a = Density.basis 2 0 and b = Density.basis 2 3 in
  check_float "orthogonal" 0. (Density.fidelity a b) ~eps:1e-9;
  check_float "self" 1. (Density.fidelity a a) ~eps:1e-9;
  (* pure vs mixed: F(|0>, I/2) = 1/2 *)
  check_float "half" 0.5
    (Density.fidelity (Density.basis 1 0) (Density.maximally_mixed 1))
    ~eps:1e-9

let test_density_fidelity_pure_overlap () =
  let a = random_state 2 and b = random_state 2 in
  let f_sv = Statevec.fidelity_pure a b in
  let f_dm = Density.fidelity (Density.of_statevec a) (Density.of_statevec b) in
  check_float "matches overlap" f_sv f_dm ~eps:1e-7

(* ---------------- qcheck ---------------- *)

let gen_state =
  QCheck.Gen.(
    int_range 1 4 >>= fun n ->
    let d = 1 lsl n in
    array_size (return (2 * d)) (float_range (-1.) 1.) >|= fun xs ->
    let v = Cvec.init d (fun k -> Cx.make xs.(2 * k) xs.((2 * k) + 1)) in
    let nv = Cvec.norm v in
    if nv < 1e-6 then Statevec.basis n 0
    else Statevec.of_cvec n (Cvec.rscale (1. /. nv) v))

let arb_state = QCheck.make gen_state ~print:(fun st -> Printf.sprintf "%d-qubit state" (Statevec.num_qubits st))

let prop_gate_preserves_norm =
  QCheck.Test.make ~name:"gates preserve norm" ~count:100 arb_state (fun st ->
      let st = Statevec.copy st in
      Statevec.apply1 Gates.h 0 st;
      Statevec.apply1 (Gates.rz 0.3) 0 st;
      Float.abs (Statevec.norm st -. 1.) < 1e-9)

let prop_density_valid =
  QCheck.Test.make ~name:"pure density matrices are valid" ~count:50 arb_state
    (fun st -> Density.is_valid (Density.of_statevec st))

let prop_partial_trace_unit =
  QCheck.Test.make ~name:"partial trace keeps unit trace" ~count:50 arb_state
    (fun st ->
      let rho = Statevec.reduced_density st [ 0 ] in
      Float.abs (Cx.re (Cmat.trace rho) -. 1.) < 1e-9)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_gate_preserves_norm; prop_density_valid; prop_partial_trace_unit ]

let () =
  Alcotest.run "qstate"
    [
      ( "pauli",
        [
          Alcotest.test_case "matrices" `Quick test_pauli_matrices;
          Alcotest.test_case "string roundtrip" `Quick test_pauli_string_roundtrip;
          Alcotest.test_case "all" `Quick test_pauli_all;
          Alcotest.test_case "expectation vs matrix" `Quick test_pauli_expectation_vs_matrix;
          Alcotest.test_case "statevec expectation" `Quick test_pauli_statevec_expectation;
          Alcotest.test_case "multiplication" `Quick test_pauli_mul;
          Alcotest.test_case "self inverse" `Quick test_pauli_mul_self_inverse;
          Alcotest.test_case "commutation" `Quick test_pauli_commute;
        ] );
      ( "gates",
        [
          Alcotest.test_case "unitarity" `Quick test_gates_unitary;
          Alcotest.test_case "identities" `Quick test_gate_identities;
          Alcotest.test_case "rotation periodicity" `Quick test_rotation_periodicity;
        ] );
      ( "statevec",
        [
          Alcotest.test_case "basis" `Quick test_statevec_basis;
          Alcotest.test_case "hadamard" `Quick test_statevec_apply1_h;
          Alcotest.test_case "bell" `Quick test_statevec_bell;
          Alcotest.test_case "norm preservation" `Quick test_statevec_apply_preserves_norm;
          Alcotest.test_case "apply2 swap" `Quick test_statevec_apply2_swap;
          Alcotest.test_case "measure collapse" `Quick test_statevec_measure_collapse;
          Alcotest.test_case "project zero prob" `Quick test_statevec_project_zero_prob;
          Alcotest.test_case "reduced density" `Quick test_statevec_reduced_density;
          Alcotest.test_case "reduced density order" `Quick test_statevec_reduced_density_order;
          Alcotest.test_case "kron" `Quick test_statevec_kron;
          Alcotest.test_case "counts" `Quick test_statevec_counts;
        ] );
      ( "density",
        [
          Alcotest.test_case "pure" `Quick test_density_pure;
          Alcotest.test_case "mixed" `Quick test_density_mixed;
          Alcotest.test_case "apply1 vs statevec" `Quick test_density_apply1_matches_statevec;
          Alcotest.test_case "controlled vs statevec" `Quick test_density_controlled_matches_statevec;
          Alcotest.test_case "kraus trace preserving" `Quick test_density_kraus_trace_preserving;
          Alcotest.test_case "depolarizing limit" `Quick test_density_depolarizing_limit;
          Alcotest.test_case "measure" `Quick test_density_measure;
          Alcotest.test_case "partial trace" `Quick test_density_partial_trace;
          Alcotest.test_case "fidelity" `Quick test_density_fidelity;
          Alcotest.test_case "fidelity pure overlap" `Quick test_density_fidelity_pure_overlap;
        ] );
      ("properties", qcheck_tests);
    ]
