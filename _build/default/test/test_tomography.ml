open Linalg

let rng () = Stats.Rng.make 55

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let random_dm r n =
  let st = Clifford.Sampling.haar_state r n in
  let v = Qstate.Statevec.to_cvec st in
  Cmat.outer v v

(* ---------------- State_tomo ---------------- *)

let test_noisy_expectation_unbiased () =
  let r = rng () in
  let e_true = 0.42 in
  let estimates =
    Array.init 3000 (fun _ ->
        Tomography.State_tomo.noisy_expectation r ~shots:200 e_true)
  in
  check_float "unbiased" e_true (Stats.Describe.mean estimates) ~eps:0.01;
  (* variance shrinks with shots *)
  let tight =
    Array.init 500 (fun _ ->
        Tomography.State_tomo.noisy_expectation r ~shots:20000 e_true)
  in
  assert (Stats.Describe.stddev tight < Stats.Describe.stddev estimates)

let test_noisy_expectation_exact_mode () =
  let r = rng () in
  check_float "shots=0 exact" 0.3
    (Tomography.State_tomo.noisy_expectation r ~shots:0 0.3)

let test_settings_count () =
  Alcotest.(check int) "1 qubit" 3 (Tomography.State_tomo.settings_count 1);
  Alcotest.(check int) "3 qubits" 27 (Tomography.State_tomo.settings_count 3)

let test_reconstruct_exact () =
  (* reconstruction from exact expectations is the identity map *)
  let r = rng () in
  let truth = random_dm r 2 in
  let terms =
    List.map
      (fun p -> (p, Qstate.Pauli.expectation_dm p truth))
      (Qstate.Pauli.all 2)
  in
  let rec_rho = Tomography.State_tomo.reconstruct 2 terms in
  if not (Cmat.equal ~eps:1e-9 truth rec_rho) then
    Alcotest.fail "exact reconstruction differs"

let test_run_infinite_shots () =
  let r = rng () in
  let truth = random_dm r 2 in
  let result = Tomography.State_tomo.run r ~shots:0 ~truth () in
  if not (Cmat.equal ~eps:1e-6 truth result.Tomography.State_tomo.rho) then
    Alcotest.fail "infinite-shot tomography should be exact"

let test_run_finite_shots_close () =
  let r = rng () in
  let truth = random_dm r 2 in
  let result = Tomography.State_tomo.run r ~shots:8000 ~truth () in
  let fid =
    Qstate.Density.fidelity
      (Qstate.Density.of_cmat 2 result.Tomography.State_tomo.rho)
      (Qstate.Density.of_cmat 2 truth)
  in
  if fid < 0.97 then Alcotest.failf "tomography fidelity too low: %.3f" fid;
  Alcotest.(check int) "settings" 9 result.Tomography.State_tomo.settings;
  Alcotest.(check int) "shots" (9 * 8000) result.Tomography.State_tomo.shots_used

let test_run_projection_physical () =
  let r = rng () in
  let truth = random_dm r 2 in
  (* few shots: raw reconstruction would be unphysical; projection fixes it *)
  let result = Tomography.State_tomo.run ~project:true r ~shots:50 ~truth () in
  assert (Qstate.Density.is_valid ~eps:1e-6 (Qstate.Density.of_cmat 2 result.Tomography.State_tomo.rho))

let test_probs_only () =
  let r = rng () in
  let truth = random_dm r 2 in
  let result = Tomography.State_tomo.probs_only r ~shots:20000 ~truth () in
  Alcotest.(check int) "one setting" 1 result.Tomography.State_tomo.settings;
  for i = 0 to 3 do
    check_float "diag close"
      (Cx.re (Cmat.get truth i i))
      (Cx.re (Cmat.get result.Tomography.State_tomo.rho i i))
      ~eps:0.02
  done

(* ---------------- Process_tomo ---------------- *)

let test_process_input_basis () =
  let basis = Tomography.Process_tomo.input_basis 1 in
  Alcotest.(check int) "4 inputs" 4 (List.length basis);
  List.iter
    (fun m -> check_float "unit trace" 1. (Cx.re (Cmat.trace m)) ~eps:1e-12)
    basis;
  Alcotest.(check int) "16 inputs for 2q" 16
    (List.length (Tomography.Process_tomo.input_basis 2))

let test_process_reconstruction () =
  let r = rng () in
  (* channel: apply a fixed unitary *)
  let u = Qstate.Gates.u3 0.7 0.3 1.1 in
  let channel rho = Cmat.mul3 u rho (Cmat.adjoint u) in
  let result = Tomography.Process_tomo.run r ~shots:0 ~channel ~n:1 () in
  let test_in = random_dm r 1 in
  let approx_out = Tomography.Process_tomo.apply result test_in in
  let true_out = channel test_in in
  if not (Cmat.equal ~eps:1e-6 approx_out true_out) then
    Alcotest.fail "process tomography reconstruction wrong"

let test_process_cost () =
  let settings, shots = Tomography.Process_tomo.cost ~n:3 ~shots:100 in
  Alcotest.(check int) "settings" (64 * 27) settings;
  Alcotest.(check int) "shots" (64 * 27 * 100) shots

(* ---------------- Clifford sampling ---------------- *)

let test_sampling_basis_enumerates () =
  let r = rng () in
  List.iter
    (fun index ->
      let st = Clifford.Sampling.state r Clifford.Sampling.Basis 2 ~index in
      let expect = Qstate.Statevec.basis 2 (index mod 4) in
      if Qstate.Statevec.fidelity_pure st expect < 1. -. 1e-12 then
        Alcotest.failf "basis state %d wrong" index)
    [ 0; 1; 2; 3; 4 ]

let test_sampling_normalized () =
  let r = rng () in
  List.iter
    (fun kind ->
      for index = 0 to 5 do
        let st = Clifford.Sampling.state r kind 3 ~index in
        check_float "normalized" 1. (Qstate.Statevec.norm st) ~eps:1e-9
      done)
    [ Clifford.Sampling.Basis; Clifford.Sampling.Clifford; Clifford.Sampling.Haar ]

let test_sampling_clifford_span () =
  (* enough clifford samples should span more of the Hermitian space than
     the same number of basis states *)
  let r = rng () in
  let rank states =
    let encs = List.map (fun (_, st) ->
        let v = Qstate.Statevec.to_cvec st in
        Linalg.Hsvec.encode (Cmat.outer v v)) states in
    (* crude numerical rank via Gram matrix eigenvalues *)
    let k = List.length encs in
    let g = Linalg.Rmat.init k k (fun i j ->
        let a = List.nth encs i and b = List.nth encs j in
        Array.fold_left ( +. ) 0. (Array.map2 ( *. ) a b)) in
    (* count significant pivots via Cholesky-free diagonalization: use
       complex eig on embedded real symmetric matrix *)
    let cm = Cmat.init k k (fun i j -> Cx.of_float (Linalg.Rmat.get g i j)) in
    let w, _ = Eig.hermitian cm in
    Array.fold_left (fun acc x -> if x > 1e-9 then acc + 1 else acc) 0 w
  in
  let basis = Clifford.Sampling.sample_set r Clifford.Sampling.Basis 2 ~count:8 in
  let cliff = Clifford.Sampling.sample_set r Clifford.Sampling.Clifford 2 ~count:8 in
  (* 8 basis states of 2 qubits only span the 4 diagonal directions *)
  assert (rank basis <= 4);
  assert (rank cliff > 4)

let test_haar_state_distribution () =
  (* mean density matrix of Haar states approaches I/d *)
  let r = rng () in
  let d = 4 in
  let acc = ref (Cmat.create d d) in
  let trials = 600 in
  for _ = 1 to trials do
    let st = Clifford.Sampling.haar_state r 2 in
    let v = Qstate.Statevec.to_cvec st in
    acc := Cmat.add !acc (Cmat.outer v v)
  done;
  let avg = Cmat.rscale (1. /. float_of_int trials) !acc in
  if not (Cmat.equal ~eps:0.05 avg (Cmat.rscale 0.25 (Cmat.identity d))) then
    Alcotest.fail "haar average not maximally mixed"

let test_random_mixture_physical () =
  let r = rng () in
  let states = List.init 4 (fun _ -> Clifford.Sampling.haar_state r 2) in
  let rho = Clifford.Sampling.random_mixture r states in
  assert (Qstate.Density.is_valid ~eps:1e-8 (Qstate.Density.of_cmat 2 rho))

let test_prep_circuit_matches_state () =
  let r1 = Stats.Rng.make 5 and r2 = Stats.Rng.make 5 in
  let c = Clifford.Sampling.prep_circuit r1 Clifford.Sampling.Clifford 3 ~index:0 in
  let st1 = (Sim.Engine.run c).Sim.Engine.state in
  let st2 = Clifford.Sampling.state r2 Clifford.Sampling.Clifford 3 ~index:0 in
  if Qstate.Statevec.fidelity_pure st1 st2 < 1. -. 1e-9 then
    Alcotest.fail "prep circuit does not reproduce its state"

(* ---------------- Mitigation ---------------- *)

let test_mitigation_exact_matrix () =
  let m = Tomography.Mitigation.exact 1 ~readout:0.1 in
  check_float "diag" 0.9 (Linalg.Rmat.get m.Tomography.Mitigation.confusion 0 0);
  check_float "off" 0.1 (Linalg.Rmat.get m.Tomography.Mitigation.confusion 1 0);
  (* columns are distributions *)
  let m2 = Tomography.Mitigation.exact 3 ~readout:0.07 in
  for j = 0 to 7 do
    let s = ref 0. in
    for i = 0 to 7 do
      s := !s +. Linalg.Rmat.get m2.Tomography.Mitigation.confusion i j
    done;
    check_float "column sum" 1. !s ~eps:1e-12
  done

let test_mitigation_recovers_truth () =
  let readout = 0.08 in
  let m = Tomography.Mitigation.exact 2 ~readout in
  (* true distribution concentrated on |01>: corrupt it, then mitigate *)
  let true_p = [| 0.; 1.; 0.; 0. |] in
  let observed = Linalg.Rmat.apply m.Tomography.Mitigation.confusion true_p in
  (* corruption spread weight away... *)
  assert (observed.(1) < 0.9);
  let recovered = Tomography.Mitigation.apply m observed in
  Array.iteri (fun i p -> check_float "recovered" true_p.(i) p ~eps:1e-9) recovered;
  ignore recovered

let test_mitigation_calibrated_close_to_exact () =
  let r = rng () in
  let readout = 0.1 in
  let cal = Tomography.Mitigation.calibrate ~shots:20000 r ~n:2 ~readout in
  let exact = Tomography.Mitigation.exact 2 ~readout in
  for i = 0 to 3 do
    for j = 0 to 3 do
      check_float "entry"
        (Linalg.Rmat.get exact.Tomography.Mitigation.confusion i j)
        (Linalg.Rmat.get cal.Tomography.Mitigation.confusion i j)
        ~eps:0.02
    done
  done

let test_mitigation_counts_pipeline () =
  let r = rng () in
  let readout = 0.06 in
  let m = Tomography.Mitigation.exact 2 ~readout in
  (* simulate measuring |11> with flips *)
  let shots = 20000 in
  let counts = Hashtbl.create 4 in
  for _ = 1 to shots do
    let obs = ref 3 in
    for q = 0 to 1 do
      if Stats.Rng.float r 1. < readout then obs := !obs lxor (1 lsl q)
    done;
    Hashtbl.replace counts !obs (1 + Option.value ~default:0 (Hashtbl.find_opt counts !obs))
  done;
  let count_list = Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts [] in
  let p = Tomography.Mitigation.mitigate_counts m ~shots count_list in
  check_float "mitigated p11" 1. p.(3) ~eps:0.02

let test_mitigation_ideal_noop () =
  let m = Tomography.Mitigation.ideal 2 in
  let p = [| 0.2; 0.3; 0.1; 0.4 |] in
  let q = Tomography.Mitigation.apply m p in
  Array.iteri (fun i x -> check_float "identity" p.(i) x ~eps:1e-12) q

let () =
  Alcotest.run "tomography"
    [
      ( "state-tomo",
        [
          Alcotest.test_case "unbiased estimator" `Quick test_noisy_expectation_unbiased;
          Alcotest.test_case "exact mode" `Quick test_noisy_expectation_exact_mode;
          Alcotest.test_case "settings count" `Quick test_settings_count;
          Alcotest.test_case "exact reconstruction" `Quick test_reconstruct_exact;
          Alcotest.test_case "infinite shots" `Quick test_run_infinite_shots;
          Alcotest.test_case "finite shots close" `Quick test_run_finite_shots_close;
          Alcotest.test_case "projection physical" `Quick test_run_projection_physical;
          Alcotest.test_case "probs only" `Quick test_probs_only;
        ] );
      ( "process-tomo",
        [
          Alcotest.test_case "input basis" `Quick test_process_input_basis;
          Alcotest.test_case "reconstruction" `Quick test_process_reconstruction;
          Alcotest.test_case "cost model" `Quick test_process_cost;
        ] );
      ( "mitigation",
        [
          Alcotest.test_case "exact matrix" `Quick test_mitigation_exact_matrix;
          Alcotest.test_case "recovers truth" `Quick test_mitigation_recovers_truth;
          Alcotest.test_case "calibration" `Quick test_mitigation_calibrated_close_to_exact;
          Alcotest.test_case "counts pipeline" `Quick test_mitigation_counts_pipeline;
          Alcotest.test_case "ideal noop" `Quick test_mitigation_ideal_noop;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "basis enumerates" `Quick test_sampling_basis_enumerates;
          Alcotest.test_case "normalized" `Quick test_sampling_normalized;
          Alcotest.test_case "clifford span" `Quick test_sampling_clifford_span;
          Alcotest.test_case "haar distribution" `Quick test_haar_state_distribution;
          Alcotest.test_case "random mixture" `Quick test_random_mixture_physical;
          Alcotest.test_case "prep circuit" `Quick test_prep_circuit_matches_state;
        ] );
    ]
