open Stabilizer

let rng () = Stats.Rng.make 424242

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* random Clifford circuit over the tableau gate set *)
let random_clifford_circuit r n gates =
  let c = ref (Circuit.empty n) in
  for _ = 1 to gates do
    (match Stats.Rng.int r 5 with
    | 0 -> c := Circuit.h (Stats.Rng.int r n) !c
    | 1 -> c := Circuit.s (Stats.Rng.int r n) !c
    | 2 -> c := Circuit.x (Stats.Rng.int r n) !c
    | 3 ->
        if n >= 2 then begin
          let a = Stats.Rng.int r n in
          let b = ref (Stats.Rng.int r n) in
          while !b = a do
            b := Stats.Rng.int r n
          done;
          c := Circuit.cx a !b !c
        end
    | _ ->
        if n >= 2 then begin
          let a = Stats.Rng.int r n in
          let b = ref (Stats.Rng.int r n) in
          while !b = a do
            b := Stats.Rng.int r n
          done;
          c := Circuit.cz a !b !c
        end)
  done;
  !c

let density_matches_dense c =
  let t = Tableau.run c in
  let rho_tab = Tableau.density t in
  let st = (Sim.Engine.run c).Sim.Engine.state in
  let rho_sv = Qstate.Statevec.density st in
  Linalg.Cmat.equal ~eps:1e-9 rho_tab rho_sv

let test_initial_state () =
  let t = Tableau.make 3 in
  Alcotest.(check (list (pair string string)))
    "Z stabilizers"
    [ ("+", "IIZ"); ("+", "IZI"); ("+", "ZII") ]
    (Tableau.stabilizer_strings t)

let test_bell_stabilizers () =
  let t = Tableau.make 2 in
  Tableau.h t 0;
  Tableau.cx t 0 1;
  Alcotest.(check (list (pair string string)))
    "bell" [ ("+", "XX"); ("+", "ZZ") ]
    (Tableau.stabilizer_strings t)

let test_ghz_density () =
  let c = Circuit.(empty 3 |> h 0 |> cx 0 1 |> cx 1 2) in
  if not (density_matches_dense c) then Alcotest.fail "GHZ density mismatch"

let test_random_circuits_match_dense () =
  let r = rng () in
  for n = 1 to 4 do
    for _ = 1 to 8 do
      let c = random_clifford_circuit r n 20 in
      if not (density_matches_dense c) then
        Alcotest.failf "density mismatch on random %d-qubit circuit:@.%s" n
          (Format.asprintf "%a" Circuit.pp c)
    done
  done

let test_x_z_phases () =
  (* X|0> = |1>: stabilizer -Z *)
  let t = Tableau.make 1 in
  Tableau.x t 0;
  Alcotest.(check (list (pair string string))) "minus z" [ ("-", "Z") ]
    (Tableau.stabilizer_strings t);
  (* S|+> has stabilizer Y *)
  let t = Tableau.make 1 in
  Tableau.h t 0;
  Tableau.s t 0;
  Alcotest.(check (list (pair string string))) "y" [ ("+", "Y") ]
    (Tableau.stabilizer_strings t)

let test_sdg_inverse () =
  let t = Tableau.make 2 in
  Tableau.h t 0;
  Tableau.cx t 0 1;
  let before = Tableau.stabilizer_strings t in
  Tableau.s t 1;
  Tableau.sdg t 1;
  Alcotest.(check (list (pair string string))) "unchanged" before
    (Tableau.stabilizer_strings t)

let test_measure_deterministic () =
  let r = rng () in
  let t = Tableau.make 2 in
  Tableau.x t 0;
  Alcotest.(check int) "|1> measures 1" 1 (Tableau.measure r t 0);
  Alcotest.(check int) "|0> measures 0" 0 (Tableau.measure r t 1);
  (* measurement doesn't disturb a deterministic outcome *)
  Alcotest.(check int) "repeatable" 1 (Tableau.measure r t 0)

let test_measure_random_correlated () =
  let r = rng () in
  (* Bell pair: outcomes random but perfectly correlated *)
  let ones = ref 0 in
  for _ = 1 to 200 do
    let t = Tableau.make 2 in
    Tableau.h t 0;
    Tableau.cx t 0 1;
    let a = Tableau.measure r t 0 in
    let b = Tableau.measure r t 1 in
    Alcotest.(check int) "correlated" a b;
    if a = 1 then incr ones
  done;
  check_float "balanced" 100. (float_of_int !ones) ~eps:40.

let test_measure_statistics_match_dense () =
  let r = rng () in
  let c = random_clifford_circuit r 3 15 in
  let st = (Sim.Engine.run c).Sim.Engine.state in
  let p1_dense = Qstate.Statevec.prob1 st 1 in
  let ones = ref 0 in
  let trials = 400 in
  for _ = 1 to trials do
    let t = Tableau.run c in
    if Tableau.measure r t 1 = 1 then incr ones
  done;
  check_float "p1 agreement" p1_dense
    (float_of_int !ones /. float_of_int trials)
    ~eps:0.09

let test_expectation_z () =
  let t = Tableau.make 2 in
  Alcotest.(check int) "zero state" 1 (Tableau.expectation_z t 0);
  Tableau.x t 0;
  Alcotest.(check int) "one state" (-1) (Tableau.expectation_z t 0);
  Tableau.h t 1;
  Alcotest.(check int) "superposition" 0 (Tableau.expectation_z t 1)

let test_apply_gate_dispatch () =
  let c = Circuit.(empty 2 |> h 0 |> cx 0 1 |> z 1 |> swap 0 1) in
  assert (Tableau.is_clifford_circuit c);
  if not (density_matches_dense c) then Alcotest.fail "dispatch mismatch";
  let bad = Circuit.(empty 1 |> t_gate 0) in
  assert (not (Tableau.is_clifford_circuit bad))

let test_random_state_valid () =
  let r = rng () in
  for n = 1 to 4 do
    let t = Tableau.random r n in
    let rho = Tableau.density t in
    let dm = Qstate.Density.of_cmat n rho in
    assert (Qstate.Density.is_valid ~eps:1e-8 dm);
    check_float "pure" 1. (Qstate.Density.purity dm) ~eps:1e-9
  done

let test_random_states_spread () =
  (* random stabilizer states should not all coincide *)
  let r = rng () in
  let t1 = Tableau.random r 3 and t2 = Tableau.random r 3 in
  let d1 = Tableau.density t1 and d2 = Tableau.density t2 in
  assert (not (Linalg.Cmat.equal ~eps:1e-6 d1 d2))

let prop_clifford_matches_dense =
  QCheck.Test.make ~name:"tableau matches dense simulation" ~count:30
    QCheck.(pair (int_range 1 4) (int_range 0 1000))
    (fun (n, seed) ->
      let r = Stats.Rng.make seed in
      let c = random_clifford_circuit r n 16 in
      density_matches_dense c)

let () =
  Alcotest.run "stabilizer"
    [
      ( "tableau",
        [
          Alcotest.test_case "initial state" `Quick test_initial_state;
          Alcotest.test_case "bell stabilizers" `Quick test_bell_stabilizers;
          Alcotest.test_case "ghz density" `Quick test_ghz_density;
          Alcotest.test_case "random vs dense" `Quick test_random_circuits_match_dense;
          Alcotest.test_case "x/z phases" `Quick test_x_z_phases;
          Alcotest.test_case "sdg inverse" `Quick test_sdg_inverse;
        ] );
      ( "measurement",
        [
          Alcotest.test_case "deterministic" `Quick test_measure_deterministic;
          Alcotest.test_case "random correlated" `Quick test_measure_random_correlated;
          Alcotest.test_case "statistics vs dense" `Quick test_measure_statistics_match_dense;
          Alcotest.test_case "expectation z" `Quick test_expectation_z;
        ] );
      ( "integration",
        [
          Alcotest.test_case "gate dispatch" `Quick test_apply_gate_dispatch;
          Alcotest.test_case "random state valid" `Quick test_random_state_valid;
          Alcotest.test_case "random states spread" `Quick test_random_states_spread;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_clifford_matches_dense ] );
    ]
