open Benchmarks

let rng () = Stats.Rng.make 888

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ---------------- Quantum lock ---------------- *)

let test_lock_spec () =
  let lock = Quantum_lock.make ~key:5 3 in
  for input = 0 to 7 do
    let p = Quantum_lock.accepts lock input in
    check_float
      (Printf.sprintf "input %d" input)
      (float_of_int (Quantum_lock.expected_output lock input))
      p ~eps:1e-9
  done

let test_lock_bug () =
  let lock = Quantum_lock.make ~key:5 ~unexpected_key:2 3 in
  check_float "true key" 1. (Quantum_lock.accepts lock 5);
  check_float "unexpected key accepted" 1. (Quantum_lock.accepts lock 2);
  check_float "other rejected" 0. (Quantum_lock.accepts lock 7)

let test_lock_validation () =
  Alcotest.check_raises "key range" (Invalid_argument "Quantum_lock.make: key out of range")
    (fun () -> ignore (Quantum_lock.make ~key:8 3));
  Alcotest.check_raises "same key" (Invalid_argument "Quantum_lock.make: bad unexpected key")
    (fun () -> ignore (Quantum_lock.make ~key:2 ~unexpected_key:2 3))

(* ---------------- QFT ---------------- *)

let test_qft_inverse () =
  let n = 4 in
  let c = Qft.append_inverse (List.init n (fun i -> i)) (Qft.circuit n) in
  let u = Sim.Engine.unitary c in
  if not (Linalg.Cmat.equal ~eps:1e-9 u (Linalg.Cmat.identity (1 lsl n))) then
    Alcotest.fail "QFT * QFT^-1 != I"

let test_qft_of_basis () =
  (* QFT|0> = uniform superposition *)
  let st = (Sim.Engine.run (Qft.circuit 3)).Sim.Engine.state in
  let probs = Qstate.Statevec.probs st in
  Array.iter (fun p -> check_float "uniform" 0.125 p ~eps:1e-9) probs

(* ---------------- QRAM ---------------- *)

let test_qram_reads () =
  let r = rng () in
  let table = Qram.uniform_table r 3 in
  let qram = Qram.make ~table 3 in
  for addr = 0 to 7 do
    check_float
      (Printf.sprintf "addr %d" addr)
      (Qram.expected_p1 qram addr)
      (Qram.read qram addr)
      ~eps:1e-9
  done

let test_qram_superposition () =
  (* querying (|00> + |11>)/sqrt2 mixes both cells coherently *)
  let table = [| 0.3; 0.; 0.; 1.2 |] in
  let qram = Qram.make ~table 2 in
  let input =
    Qstate.Statevec.of_cvec 3
      (Linalg.Cvec.init 8 (fun k ->
           if k = 0 || k = 3 then Linalg.Cx.of_float (1. /. sqrt 2.) else Linalg.Cx.zero))
  in
  let st = (Sim.Engine.run ~initial:input qram.Qram.circuit).Sim.Engine.state in
  (* amplitude of |addr=00, data=1> should be sin(0.3)/sqrt2 *)
  let amp = Qstate.Statevec.amplitude st 0b100 in
  check_float "cell 0" (sin 0.3 /. sqrt 2.) (Linalg.Cx.re amp) ~eps:1e-9

let test_qram_corruption () =
  let table = [| 0.5; 1.0 |] in
  let qram = Qram.make ~corrupt:(1, 2.5) ~table 1 in
  (* address 0 intact, address 1 corrupted *)
  check_float "intact" (Qram.expected_p1 qram 0) (Qram.read qram 0) ~eps:1e-9;
  let bad = Qram.read qram 1 in
  if Float.abs (bad -. Qram.expected_p1 qram 1) < 0.05 then
    Alcotest.fail "corruption invisible"

(* ---------------- Teleport ---------------- *)

let test_teleport_multi () =
  let r = rng () in
  let k = 2 in
  let c = Teleport.multi k in
  let payload = Clifford.Sampling.haar_state r k in
  let initial = Qstate.Statevec.kron (Qstate.Statevec.zero (2 * k)) payload in
  let o = Sim.Engine.run ~rng:r ~initial c in
  let out = Qstate.Statevec.reduced_density o.Sim.Engine.state (Teleport.output_qubits k) in
  let expect =
    Linalg.Cmat.outer (Qstate.Statevec.to_cvec payload) (Qstate.Statevec.to_cvec payload)
  in
  if not (Linalg.Cmat.equal ~eps:1e-9 out expect) then
    Alcotest.fail "2-qubit teleportation failed"

let test_teleport_tracepoints () =
  let traces = Sim.Engine.tracepoint_states ~trajectories:8 (Teleport.single ()) in
  assert (List.mem_assoc 1 traces);
  assert (List.mem_assoc 2 traces)

(* ---------------- QNN & Iris ---------------- *)

let test_iris_shapes () =
  let flowers = Iris.generate (rng ()) ~count:40 in
  Alcotest.(check int) "count" 40 (Array.length flowers);
  Array.iter
    (fun f ->
      Alcotest.(check int) "4 features" 4 (Array.length f.Iris.features);
      assert (f.Iris.label = 0 || f.Iris.label = 1))
    flowers;
  (* setosa sepal length mostly in [4, 6] *)
  let setosa = Array.to_list flowers |> List.filter (fun f -> f.Iris.label = 0) in
  let in_band =
    List.length
      (List.filter (fun f -> f.Iris.features.(0) >= 4. && f.Iris.features.(0) <= 6.) setosa)
  in
  assert (float_of_int in_band /. float_of_int (List.length setosa) > 0.9)

let test_iris_normalization () =
  let angles = Iris.normalize_features [| 4.; 2.; 1.; 0. |] in
  Array.iter (fun a -> check_float "lo maps to 0" 0. a) angles;
  let hi = Iris.normalize_features [| 8.; 4.5; 7.; 2.6 |] in
  Array.iter (fun a -> check_float "hi maps to 2pi" (2. *. Float.pi) a ~eps:1e-9) hi

let test_qnn_training_improves () =
  let r = rng () in
  let flowers = Iris.generate r ~count:16 in
  let qnn = Qnn.init r ~num_qubits:4 ~layers:1 in
  let before = Qnn.accuracy qnn flowers in
  let trained = Qnn.train r qnn flowers ~epochs:8 ~lr:0.3 in
  let after = Qnn.accuracy trained flowers in
  if after < before -. 0.05 then
    Alcotest.failf "training degraded accuracy: %.2f -> %.2f" before after;
  if after < 0.7 then Alcotest.failf "trained accuracy too low: %.2f" after

let test_qnn_prune () =
  let r = rng () in
  let qnn = Qnn.init r ~num_qubits:3 ~layers:2 in
  qnn.Qnn.params.(0) <- 0.001;
  qnn.Qnn.params.(3) <- 0.002;
  let pruned, removed = Qnn.prune qnn ~threshold:0.01 in
  Alcotest.(check (list int)) "removed" [ 0; 3 ] removed;
  check_float "zeroed" 0. pruned.Qnn.params.(0)

let test_qnn_prune_changes_little () =
  let r = rng () in
  let flowers = Iris.generate r ~count:10 in
  let qnn = Qnn.init r ~num_qubits:4 ~layers:2 in
  qnn.Qnn.params.(2) <- 0.004;
  let pruned, _ = Qnn.prune qnn ~threshold:0.01 in
  Array.iter
    (fun f ->
      let a = Qnn.predict qnn ~features:f.Iris.features in
      let b = Qnn.predict pruned ~features:f.Iris.features in
      if Float.abs (a -. b) > 0.05 then Alcotest.fail "tiny-angle prune changed output")
    flowers

(* ---------------- QEC ---------------- *)

let test_qec_corrects_all_single_errors () =
  let r = rng () in
  List.iter
    (fun d ->
      for q = 0 to d - 1 do
        let fid = Qec.logical_fidelity ~error:q ~trials:8 r d in
        check_float (Printf.sprintf "d=%d error on %d" d q) 1. fid
      done)
    [ 3; 5 ]

let test_qec_no_error () =
  let fid = Qec.logical_fidelity ~trials:8 (rng ()) 3 in
  check_float "clean round" 1. fid

let test_qec_validation () =
  Alcotest.check_raises "even distance"
    (Invalid_argument "Qec: distance must be odd and at least 3") (fun () ->
      ignore (Qec.round 4))

(* ---------------- Shor ---------------- *)

let test_shor_orders () =
  Alcotest.(check int) "ord(2,15)" 4 (Shor_period.order ~a:2 ~n_mod:15);
  Alcotest.(check int) "ord(7,15)" 4 (Shor_period.order ~a:7 ~n_mod:15);
  Alcotest.(check int) "ord(2,21)" 6 (Shor_period.order ~a:2 ~n_mod:21)

let test_shor_peak () =
  let counting = 5 in
  let c = Shor_period.circuit ~counting ~phase:0.25 in
  let st = (Sim.Engine.run c).Sim.Engine.state in
  let probs = Qstate.Statevec.probs st in
  let best = ref 0 in
  Array.iteri (fun k p -> if p > probs.(!best) then best := k) probs;
  let counting_value = !best land ((1 lsl counting) - 1) in
  Alcotest.(check int) "peak" (Shor_period.expected_peak ~counting ~phase:0.25) counting_value

let test_shor_exact_phase_prob_one () =
  (* phase = k/2^m is estimated exactly: all probability on one output *)
  let c = Shor_period.circuit ~counting:3 ~phase:(3. /. 8.) in
  let st = (Sim.Engine.run c).Sim.Engine.state in
  let probs = Qstate.Statevec.probs st in
  let max_p = Array.fold_left Float.max 0. probs in
  check_float "deterministic peak" 1. max_p ~eps:1e-9

(* ---------------- XEB ---------------- *)

let test_xeb_circuit_shape () =
  let c = Xeb.make (rng ()) ~n:4 ~depth:5 in
  Alcotest.(check int) "qubits" 4 (Circuit.num_qubits c);
  assert (Circuit.two_qubit_count c > 0);
  assert (Sim.Engine.is_deterministic c)

let test_xeb_self_fidelity () =
  (* sampling from the ideal distribution estimates d * sum p^2 - 1 *)
  let r = rng () in
  let c = Xeb.make r ~n:4 ~depth:8 in
  let st = (Sim.Engine.run c).Sim.Engine.state in
  let ideal = Qstate.Statevec.probs st in
  let expected =
    (16. *. Array.fold_left (fun acc p -> acc +. (p *. p)) 0. ideal) -. 1.
  in
  let samples = Array.init 8000 (fun _ -> Qstate.Statevec.sample r st) in
  let f = Xeb.linear_xeb ~ideal_probs:ideal ~samples in
  check_float "self xeb" expected f ~eps:(0.15 *. (1. +. expected));
  (* and a coherent circuit is far from the uniform value 0 *)
  assert (f > 0.3)

let test_xeb_uniform_fidelity_zero () =
  (* sampling uniformly gives XEB ~ 0 *)
  let r = rng () in
  let c = Xeb.make r ~n:4 ~depth:8 in
  let st = (Sim.Engine.run c).Sim.Engine.state in
  let ideal = Qstate.Statevec.probs st in
  let samples = Array.init 8000 (fun _ -> Stats.Rng.int r 16) in
  let f = Xeb.linear_xeb ~ideal_probs:ideal ~samples in
  check_float "uniform xeb" 0. f ~eps:0.3

(* ---------------- BV & GHZ ---------------- *)

let test_bv_recovers_secret () =
  List.iter
    (fun secret ->
      Alcotest.(check int)
        (Printf.sprintf "secret %d" secret)
        secret
        (Bv.recover ~secret 4))
    [ 0; 1; 5; 15 ]

let test_ghz_state () =
  let st = Ghz.state 4 in
  check_float "p0" 0.5 (Linalg.Cx.norm2 (Qstate.Statevec.amplitude st 0));
  check_float "p15" 0.5 (Linalg.Cx.norm2 (Qstate.Statevec.amplitude st 15))

(* ---------------- Mutation ---------------- *)

let test_mutation_adds_gate () =
  let r = rng () in
  let c = Ghz.circuit 3 in
  let m = Mutation.inject r c in
  Alcotest.(check int) "one more gate" (Circuit.gate_count c + 1)
    (Circuit.gate_count m.Mutation.circuit)

let test_mutation_phase_family () =
  let r = rng () in
  List.iter
    (fun m ->
      assert (List.mem m.Mutation.gate_name [ "z"; "s"; "t"; "rz" ]))
    (Mutation.inject_many r ~count:30 (Ghz.circuit 3))

let test_mutation_preserves_probs_sometimes () =
  (* a phase gate injected at the very end never changes probabilities *)
  let c = Circuit.(empty 2 |> h 0 |> cx 0 1) in
  let items = Circuit.instrs c in
  let mutated =
    List.fold_left (fun acc i -> Circuit.add i acc) (Circuit.empty 2) items
    |> Circuit.z 0
  in
  let p1 = Qstate.Statevec.probs (Sim.Engine.run c).Sim.Engine.state in
  let p2 = Qstate.Statevec.probs (Sim.Engine.run mutated).Sim.Engine.state in
  Array.iteri (fun i p -> check_float "probs equal" p p2.(i)) p1

let test_mutation_bitflip_changes_probs () =
  let r = rng () in
  let c = Ghz.circuit 2 in
  let m = Mutation.inject_bitflip r c in
  Alcotest.(check string) "x gate" "x" m.Mutation.gate_name

(* ---------------- Grover (appended suite) ---------------- *)

let test_grover_amplifies () =
  List.iter
    (fun n ->
      let marked = (1 lsl n) - 2 in
      let p = Grover.success_probability ~marked n in
      let uniform = 1. /. float_of_int (1 lsl n) in
      if p < 0.8 then Alcotest.failf "n=%d weak amplification %.3f" n p;
      assert (p > 2. *. uniform))
    [ 2; 3; 4; 5 ]

let test_grover_optimal_iterations () =
  Alcotest.(check int) "n=2" 1 (Grover.optimal_iterations 2);
  Alcotest.(check int) "n=4" 3 (Grover.optimal_iterations 4)

let test_grover_zero_iterations_uniform () =
  let p = Grover.success_probability ~iterations:0 ~marked:1 3 in
  check_float "uniform" 0.125 p ~eps:1e-9

let test_grover_validation () =
  Alcotest.check_raises "marked range"
    (Invalid_argument "Grover.circuit: marked element out of range") (fun () ->
      ignore (Grover.circuit ~marked:8 3))

(* ---------------- QAOA ---------------- *)

let test_qaoa_graphs () =
  Alcotest.(check int) "ring edges" 4 (List.length (Qaoa.ring 4));
  Alcotest.(check int) "complete edges" 6 (List.length (Qaoa.complete 4));
  check_float "ring maxcut" 4. (Qaoa.max_cut ~graph:(Qaoa.ring 4) 4);
  check_float "odd ring maxcut" 4. (Qaoa.max_cut ~graph:(Qaoa.ring 5) 5)

let test_qaoa_zero_angles_uniform () =
  (* gamma = beta = 0: uniform superposition, expected cut = |E|/2 *)
  let graph = Qaoa.ring 4 in
  let cut, _ = Qaoa.run ~graph ~gammas:[ 0. ] ~betas:[ 0. ] 4 in
  check_float "uniform cut" 2. cut ~eps:1e-9

let test_qaoa_improves_over_uniform () =
  let r = rng () in
  let graph = Qaoa.ring 4 in
  let _, _, ratio = Qaoa.optimize ~iters:300 r ~graph ~layers:1 4 in
  (* p=1 QAOA on the 4-ring should clearly beat the uniform ratio of 0.5 *)
  if ratio < 0.6 then Alcotest.failf "ratio %.3f" ratio

let test_qaoa_expected_cut_on_basis () =
  let graph = Qaoa.ring 4 in
  (* bitstring 0101 cuts all four ring edges *)
  check_float "alternating" 4.
    (Qaoa.expected_cut ~graph 4 (Qstate.Statevec.basis 4 0b0101))

let () =
  Alcotest.run "benchmarks"
    [
      ( "quantum-lock",
        [
          Alcotest.test_case "spec" `Quick test_lock_spec;
          Alcotest.test_case "bug" `Quick test_lock_bug;
          Alcotest.test_case "validation" `Quick test_lock_validation;
        ] );
      ( "qft",
        [
          Alcotest.test_case "inverse" `Quick test_qft_inverse;
          Alcotest.test_case "uniform" `Quick test_qft_of_basis;
        ] );
      ( "qram",
        [
          Alcotest.test_case "reads" `Quick test_qram_reads;
          Alcotest.test_case "superposition" `Quick test_qram_superposition;
          Alcotest.test_case "corruption" `Quick test_qram_corruption;
        ] );
      ( "teleport",
        [
          Alcotest.test_case "multi" `Quick test_teleport_multi;
          Alcotest.test_case "tracepoints" `Quick test_teleport_tracepoints;
        ] );
      ( "qnn",
        [
          Alcotest.test_case "iris shapes" `Quick test_iris_shapes;
          Alcotest.test_case "iris normalization" `Quick test_iris_normalization;
          Alcotest.test_case "training improves" `Slow test_qnn_training_improves;
          Alcotest.test_case "prune" `Quick test_qnn_prune;
          Alcotest.test_case "prune changes little" `Quick test_qnn_prune_changes_little;
        ] );
      ( "qec",
        [
          Alcotest.test_case "corrects single errors" `Quick test_qec_corrects_all_single_errors;
          Alcotest.test_case "clean round" `Quick test_qec_no_error;
          Alcotest.test_case "validation" `Quick test_qec_validation;
        ] );
      ( "shor",
        [
          Alcotest.test_case "orders" `Quick test_shor_orders;
          Alcotest.test_case "peak" `Quick test_shor_peak;
          Alcotest.test_case "exact phase" `Quick test_shor_exact_phase_prob_one;
        ] );
      ( "xeb",
        [
          Alcotest.test_case "shape" `Quick test_xeb_circuit_shape;
          Alcotest.test_case "self fidelity" `Quick test_xeb_self_fidelity;
          Alcotest.test_case "uniform fidelity" `Quick test_xeb_uniform_fidelity_zero;
        ] );
      ( "bv-ghz",
        [
          Alcotest.test_case "bv secret" `Quick test_bv_recovers_secret;
          Alcotest.test_case "ghz state" `Quick test_ghz_state;
        ] );
      ( "grover",
        [
          Alcotest.test_case "amplifies" `Quick test_grover_amplifies;
          Alcotest.test_case "optimal iterations" `Quick test_grover_optimal_iterations;
          Alcotest.test_case "zero iterations" `Quick test_grover_zero_iterations_uniform;
          Alcotest.test_case "validation" `Quick test_grover_validation;
        ] );
      ( "qaoa",
        [
          Alcotest.test_case "graphs" `Quick test_qaoa_graphs;
          Alcotest.test_case "zero angles uniform" `Quick test_qaoa_zero_angles_uniform;
          Alcotest.test_case "optimization improves" `Slow test_qaoa_improves_over_uniform;
          Alcotest.test_case "expected cut basis" `Quick test_qaoa_expected_cut_on_basis;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "adds gate" `Quick test_mutation_adds_gate;
          Alcotest.test_case "phase family" `Quick test_mutation_phase_family;
          Alcotest.test_case "terminal phase invisible" `Quick test_mutation_preserves_probs_sometimes;
          Alcotest.test_case "bitflip" `Quick test_mutation_bitflip_changes_probs;
        ] );
    ]

