open Stats

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ---------------- Special ---------------- *)

let test_lgamma_known () =
  (* Gamma(1) = Gamma(2) = 1, Gamma(5) = 24, Gamma(1/2) = sqrt(pi) *)
  check_float "lgamma 1" 0. (Special.lgamma 1.) ~eps:1e-10;
  check_float "lgamma 2" 0. (Special.lgamma 2.) ~eps:1e-10;
  check_float "lgamma 5" (log 24.) (Special.lgamma 5.) ~eps:1e-9;
  check_float "lgamma 0.5" (0.5 *. log Float.pi) (Special.lgamma 0.5) ~eps:1e-9

let test_lgamma_recurrence () =
  (* Gamma(x+1) = x Gamma(x) *)
  List.iter
    (fun x ->
      check_float
        (Printf.sprintf "recurrence at %g" x)
        (Special.lgamma x +. log x)
        (Special.lgamma (x +. 1.))
        ~eps:1e-9)
    [ 0.3; 1.7; 4.2; 9.9 ]

let test_lbeta () =
  (* B(a,b) = Gamma(a) Gamma(b) / Gamma(a+b); B(1,1) = 1; B(2,3) = 1/12 *)
  check_float "lbeta 1 1" 0. (Special.lbeta 1. 1.) ~eps:1e-10;
  check_float "lbeta 2 3" (log (1. /. 12.)) (Special.lbeta 2. 3.) ~eps:1e-9

let test_betainc_uniform () =
  (* Beta(1,1) is uniform: I_x = x *)
  List.iter
    (fun x -> check_float "uniform cdf" x (Special.betainc 1. 1. x) ~eps:1e-9)
    [ 0.; 0.1; 0.33; 0.5; 0.9; 1. ]

let test_betainc_symmetry () =
  (* I_x(a, b) = 1 - I_{1-x}(b, a) *)
  List.iter
    (fun (a, b, x) ->
      check_float "symmetry"
        (Special.betainc a b x)
        (1. -. Special.betainc b a (1. -. x))
        ~eps:1e-10)
    [ (2., 3., 0.25); (0.5, 0.5, 0.7); (5., 1., 0.9); (3.3, 2.2, 0.01) ]

let test_betainc_monotone () =
  let prev = ref (-1.) in
  for i = 0 to 100 do
    let x = float_of_int i /. 100. in
    let v = Special.betainc 2.5 1.5 x in
    if v < !prev -. 1e-12 then Alcotest.fail "betainc not monotone";
    prev := v
  done

let test_erf () =
  check_float "erf 0" 0. (Special.erf 0.) ~eps:1e-7;
  check_float "erf 1" 0.8427007929 (Special.erf 1.) ~eps:1e-4;
  check_float "erf -1" (-0.8427007929) (Special.erf (-1.)) ~eps:1e-4

(* ---------------- Beta_dist ---------------- *)

let test_beta_moments () =
  let d = Beta_dist.make 2. 5. in
  check_float "mean" (2. /. 7.) (Beta_dist.mean d);
  check_float "variance" (2. *. 5. /. (49. *. 8.)) (Beta_dist.variance d)

let test_beta_cdf_limits () =
  let d = Beta_dist.make 3. 2. in
  check_float "cdf 0" 0. (Beta_dist.cdf d 0.);
  check_float "cdf 1" 1. (Beta_dist.cdf d 1.);
  let mid = Beta_dist.cdf d 0.5 in
  if mid <= 0. || mid >= 1. then Alcotest.fail "cdf interior out of range"

let test_beta_fit_moments () =
  let d = Beta_dist.fit_moments ~mean:0.3 ~variance:0.01 in
  check_float "fitted mean" 0.3 (Beta_dist.mean d) ~eps:1e-6;
  check_float "fitted variance" 0.01 (Beta_dist.variance d) ~eps:1e-6

let test_beta_fit_samples () =
  let rng = Rng.make 99 in
  let d_true = Beta_dist.make 4. 2. in
  let samples = Array.init 5000 (fun _ -> Beta_dist.sample d_true rng) in
  let d_fit = Beta_dist.fit samples in
  check_float "fit mean" (Beta_dist.mean d_true) (Beta_dist.mean d_fit) ~eps:0.02;
  check_float "fit var" (Beta_dist.variance d_true) (Beta_dist.variance d_fit)
    ~eps:0.01

let test_beta_pdf_integrates () =
  let d = Beta_dist.make 2.5 3.5 in
  let n = 2000 in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    let x = (float_of_int i +. 0.5) /. float_of_int n in
    acc := !acc +. (Beta_dist.pdf d x /. float_of_int n)
  done;
  check_float "pdf integral" 1. !acc ~eps:1e-3

(* ---------------- Rng ---------------- *)

let test_rng_deterministic () =
  let a = Rng.make 5 and b = Rng.make 5 in
  for _ = 1 to 50 do
    check_float "same stream" (Rng.float a 1.) (Rng.float b 1.)
  done

let test_rng_gaussian_moments () =
  let rng = Rng.make 17 in
  let xs = Array.init 20000 (fun _ -> Rng.gaussian rng ~mu:2. ~sigma:3.) in
  check_float "gaussian mean" 2. (Describe.mean xs) ~eps:0.1;
  check_float "gaussian std" 3. (Describe.stddev xs) ~eps:0.1

let test_rng_binomial () =
  let rng = Rng.make 19 in
  (* small n: exact Bernoulli loop *)
  let xs = Array.init 5000 (fun _ -> float_of_int (Rng.binomial rng ~n:10 ~p:0.3)) in
  check_float "binomial mean small" 3. (Describe.mean xs) ~eps:0.1;
  (* large n: Gaussian approximation path *)
  let ys = Array.init 5000 (fun _ -> float_of_int (Rng.binomial rng ~n:1000 ~p:0.5)) in
  check_float "binomial mean large" 500. (Describe.mean ys) ~eps:2.;
  check_float "binomial std large" (sqrt 250.) (Describe.stddev ys) ~eps:1.5;
  (* edges *)
  assert (Rng.binomial rng ~n:100 ~p:0. = 0);
  assert (Rng.binomial rng ~n:100 ~p:1. = 100)

let test_rng_categorical () =
  let rng = Rng.make 23 in
  let counts = Array.make 3 0 in
  for _ = 1 to 6000 do
    let k = Rng.categorical rng [| 1.; 2.; 3. |] in
    counts.(k) <- counts.(k) + 1
  done;
  check_float "cat 0" 1000. (float_of_int counts.(0)) ~eps:150.;
  check_float "cat 2" 3000. (float_of_int counts.(2)) ~eps:220.

let test_rng_gamma_mean () =
  let rng = Rng.make 29 in
  let xs = Array.init 10000 (fun _ -> Rng.gamma rng ~shape:3.5) in
  check_float "gamma mean" 3.5 (Describe.mean xs) ~eps:0.1

(* ---------------- Describe ---------------- *)

let test_describe_basic () =
  let xs = [| 4.; 1.; 3.; 2. |] in
  check_float "mean" 2.5 (Describe.mean xs);
  check_float "min" 1. (Describe.min xs);
  check_float "max" 4. (Describe.max xs);
  check_float "median" 2.5 (Describe.median xs);
  check_float "variance" (5. /. 3.) (Describe.variance xs) ~eps:1e-9

let test_describe_percentile () =
  let xs = Array.init 101 float_of_int in
  check_float "p0" 0. (Describe.percentile xs 0.);
  check_float "p50" 50. (Describe.percentile xs 50.);
  check_float "p100" 100. (Describe.percentile xs 100.)

let test_describe_histogram () =
  let xs = [| 0.1; 0.2; 0.55; 0.9; 1.5; -0.5 |] in
  let h = Describe.histogram ~bins:2 ~lo:0. ~hi:1. xs in
  Alcotest.(check (list int)) "bins" [ 3; 3 ] (Array.to_list h)

(* ---------------- qcheck ---------------- *)

let prop_betainc_bounds =
  QCheck.Test.make ~name:"betainc in [0,1]" ~count:200
    QCheck.(triple (float_range 0.1 10.) (float_range 0.1 10.) (float_range 0. 1.))
    (fun (a, b, x) ->
      let v = Special.betainc a b x in
      v >= 0. && v <= 1.)

let prop_beta_fit_roundtrip =
  QCheck.Test.make ~name:"fit_moments roundtrip" ~count:100
    QCheck.(pair (float_range 0.05 0.95) (float_range 0.0005 0.02))
    (fun (m, v) ->
      let d = Beta_dist.fit_moments ~mean:m ~variance:v in
      Float.abs (Beta_dist.mean d -. m) < 1e-3
      || Beta_dist.variance d < v +. 1e-6)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest [ prop_betainc_bounds; prop_beta_fit_roundtrip ]

let () =
  Alcotest.run "stats"
    [
      ( "special",
        [
          Alcotest.test_case "lgamma known" `Quick test_lgamma_known;
          Alcotest.test_case "lgamma recurrence" `Quick test_lgamma_recurrence;
          Alcotest.test_case "lbeta" `Quick test_lbeta;
          Alcotest.test_case "betainc uniform" `Quick test_betainc_uniform;
          Alcotest.test_case "betainc symmetry" `Quick test_betainc_symmetry;
          Alcotest.test_case "betainc monotone" `Quick test_betainc_monotone;
          Alcotest.test_case "erf" `Quick test_erf;
        ] );
      ( "beta-dist",
        [
          Alcotest.test_case "moments" `Quick test_beta_moments;
          Alcotest.test_case "cdf limits" `Quick test_beta_cdf_limits;
          Alcotest.test_case "fit moments" `Quick test_beta_fit_moments;
          Alcotest.test_case "fit samples" `Quick test_beta_fit_samples;
          Alcotest.test_case "pdf integrates" `Quick test_beta_pdf_integrates;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "binomial" `Quick test_rng_binomial;
          Alcotest.test_case "categorical" `Quick test_rng_categorical;
          Alcotest.test_case "gamma mean" `Quick test_rng_gamma_mean;
        ] );
      ( "describe",
        [
          Alcotest.test_case "basic" `Quick test_describe_basic;
          Alcotest.test_case "percentile" `Quick test_describe_percentile;
          Alcotest.test_case "histogram" `Quick test_describe_histogram;
        ] );
      ("properties", qcheck_tests);
    ]
