test/test_tomography.mli:
