test/test_stats.ml: Alcotest Array Beta_dist Describe Float List Printf QCheck QCheck_alcotest Rng Special Stats
