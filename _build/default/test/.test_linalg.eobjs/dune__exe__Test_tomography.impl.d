test/test_tomography.ml: Alcotest Array Clifford Cmat Cx Eig Float Hashtbl Linalg List Option Qstate Sim Stats Tomography
