test/test_stabilizer.ml: Alcotest Circuit Float Format Linalg List QCheck QCheck_alcotest Qstate Sim Stabilizer Stats Tableau
