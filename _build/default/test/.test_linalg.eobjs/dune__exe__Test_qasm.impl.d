test/test_qasm.ml: Alcotest Array Benchmarks Circuit Float Linalg List QCheck QCheck_alcotest Qasm Qstate Sim Stats
