test/test_transpile.ml: Alcotest Benchmarks Circuit Equiv Float Format List Passes QCheck QCheck_alcotest Stats Transpile
