test/test_qstate.mli:
