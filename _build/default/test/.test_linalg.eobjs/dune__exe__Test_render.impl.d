test/test_render.ml: Alcotest Benchmarks Circuit List Render Stats String
