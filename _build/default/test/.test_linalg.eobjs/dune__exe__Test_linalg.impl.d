test/test_linalg.ml: Alcotest Array Cmat Cvec Cx Eig Float Format Hsvec Linalg List Printf QCheck QCheck_alcotest Random Rmat
