test/test_baselines.ml: Alcotest Array Baselines Benchmarks Circuit Float List Morphcore Program Qstate Sim Stats
