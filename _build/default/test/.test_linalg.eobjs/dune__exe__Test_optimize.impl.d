test/test_optimize.ml: Alcotest Array Constrained Float List Objective Optimize QCheck QCheck_alcotest Solvers Stats
