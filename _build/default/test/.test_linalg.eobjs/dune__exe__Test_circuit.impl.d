test/test_circuit.ml: Alcotest Circuit Float Linalg List Sim
