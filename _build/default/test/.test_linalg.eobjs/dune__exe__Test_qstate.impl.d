test/test_qstate.ml: Alcotest Array Cmat Cvec Cx Density Float Gates Linalg List Pauli Printf QCheck QCheck_alcotest Qstate Sim Statevec Stats
