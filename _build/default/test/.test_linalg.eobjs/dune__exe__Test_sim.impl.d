test/test_sim.ml: Alcotest Array Benchmarks Circuit Clifford Cmat Cx Float Linalg List Qstate Sim Stats
