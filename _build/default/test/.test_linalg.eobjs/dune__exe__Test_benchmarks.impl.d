test/test_benchmarks.ml: Alcotest Array Benchmarks Bv Circuit Clifford Float Ghz Grover Iris Linalg List Mutation Printf Qaoa Qec Qft Qnn Qram Qstate Quantum_lock Shor_period Sim Stats Teleport Xeb
