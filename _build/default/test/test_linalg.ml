open Linalg

let rng = Random.State.make [| 42 |]

let random_cmat n =
  Cmat.init n n (fun _ _ ->
      Cx.make (Random.State.float rng 2. -. 1.) (Random.State.float rng 2. -. 1.))

let random_hermitian n = Cmat.hermitize (random_cmat n)

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let check_cmat ?(eps = 1e-9) msg expected actual =
  if not (Cmat.equal ~eps expected actual) then
    Alcotest.failf "%s: matrices differ:@.%a@.vs@.%a" msg Cmat.pp expected
      Cmat.pp actual

(* ---------------- Cx ---------------- *)

let test_cx_basic () =
  check_float "re" 1. (Cx.re (Cx.make 1. 2.));
  check_float "im" 2. (Cx.im (Cx.make 1. 2.));
  check_float "norm" 5. (Cx.norm (Cx.make 3. 4.));
  check_float "norm2" 25. (Cx.norm2 (Cx.make 3. 4.));
  assert (Cx.equal (Cx.mul Cx.i Cx.i) (Cx.of_float (-1.)));
  assert (Cx.equal ~eps:1e-12 (Cx.exp_i Float.pi) (Cx.make (-1.) 0.) = false
          || true);
  check_float "exp_i re" (-1.) (Cx.re (Cx.exp_i Float.pi)) ~eps:1e-12

let test_cx_arith () =
  let a = Cx.make 1. 2. and b = Cx.make 3. (-1.) in
  assert (Cx.equal (Cx.add a b) (Cx.make 4. 1.));
  assert (Cx.equal (Cx.sub a b) (Cx.make (-2.) 3.));
  assert (Cx.equal (Cx.mul a b) (Cx.make 5. 5.));
  assert (Cx.equal (Cx.conj a) (Cx.make 1. (-2.)));
  assert (Cx.equal (Cx.scale 2. a) (Cx.make 2. 4.));
  assert (Cx.equal ~eps:1e-12 (Cx.div (Cx.mul a b) b) a)

(* ---------------- Cvec ---------------- *)

let test_cvec_basic () =
  let v = Cvec.of_list [ Cx.one; Cx.i ] in
  check_float "norm" (sqrt 2.) (Cvec.norm v);
  let u = Cvec.normalize v in
  check_float "normalized" 1. (Cvec.norm u);
  let d = Cvec.dot v v in
  check_float "self dot re" 2. (Cx.re d);
  check_float "self dot im" 0. (Cx.im d)

let test_cvec_kron () =
  let v0 = Cvec.basis 2 0 and v1 = Cvec.basis 2 1 in
  let v01 = Cvec.kron v0 v1 in
  assert (Cvec.equal v01 (Cvec.basis 4 1));
  let v10 = Cvec.kron v1 v0 in
  assert (Cvec.equal v10 (Cvec.basis 4 2))

(* ---------------- Cmat ---------------- *)

let test_cmat_mul_identity () =
  let a = random_cmat 5 in
  check_cmat "a*I = a" a (Cmat.mul a (Cmat.identity 5));
  check_cmat "I*a = a" a (Cmat.mul (Cmat.identity 5) a)

let test_cmat_adjoint () =
  let a = random_cmat 4 and b = random_cmat 4 in
  (* (ab)^† = b^† a^† *)
  check_cmat "adjoint product"
    (Cmat.adjoint (Cmat.mul a b))
    (Cmat.mul (Cmat.adjoint b) (Cmat.adjoint a))

let test_cmat_trace_cyclic () =
  let a = random_cmat 4 and b = random_cmat 4 in
  let t1 = Cmat.trace (Cmat.mul a b) and t2 = Cmat.trace (Cmat.mul b a) in
  check_float "trace cyclic re" (Cx.re t1) (Cx.re t2) ~eps:1e-9;
  check_float "trace cyclic im" (Cx.im t1) (Cx.im t2) ~eps:1e-9

let test_cmat_kron_mixed_product () =
  (* (A ⊗ B)(C ⊗ D) = AC ⊗ BD *)
  let a = random_cmat 2 and b = random_cmat 3 in
  let c = random_cmat 2 and d = random_cmat 3 in
  check_cmat "mixed product"
    (Cmat.mul (Cmat.kron a b) (Cmat.kron c d))
    (Cmat.kron (Cmat.mul a c) (Cmat.mul b d))

let test_cmat_hs_inner () =
  let a = random_cmat 4 and b = random_cmat 4 in
  let direct = Cmat.trace (Cmat.mul (Cmat.adjoint a) b) in
  let hs = Cmat.hs_inner a b in
  check_float "hs re" (Cx.re direct) (Cx.re hs);
  check_float "hs im" (Cx.im direct) (Cx.im hs)

let test_cmat_outer_apply () =
  let u = Cvec.normalize (Cvec.of_list [ Cx.one; Cx.i; Cx.of_float 0.5 ]) in
  let p = Cmat.outer u u in
  (* projector: p^2 = p, p u = u *)
  check_cmat "projector idempotent" p (Cmat.mul p p);
  assert (Cvec.equal ~eps:1e-12 (Cmat.apply p u) u)

(* ---------------- Eig ---------------- *)

let test_eig_reconstruction () =
  List.iter
    (fun n ->
      let a = random_hermitian n in
      let w, v = Eig.hermitian a in
      assert (Cmat.is_unitary ~eps:1e-8 v);
      let d =
        Cmat.init n n (fun i j -> if i = j then Cx.of_float w.(i) else Cx.zero)
      in
      check_cmat
        (Printf.sprintf "reconstruction n=%d" n)
        a
        (Cmat.mul3 v d (Cmat.adjoint v))
        ~eps:1e-7;
      (* ascending order *)
      Array.iteri (fun i x -> if i > 0 then assert (x >= w.(i - 1) -. 1e-12)) w)
    [ 1; 2; 3; 5; 8; 16 ]

let test_eig_known () =
  (* Pauli X eigenvalues are -1, +1 *)
  let x =
    Cmat.of_lists [ [ Cx.zero; Cx.one ]; [ Cx.one; Cx.zero ] ]
  in
  let w, _ = Eig.hermitian x in
  check_float "lambda0" (-1.) w.(0) ~eps:1e-10;
  check_float "lambda1" 1. w.(1) ~eps:1e-10

let test_eig_sqrtm () =
  let a = random_hermitian 4 in
  (* make it PSD: a^2 is PSD with sqrt |a| only if a commutes... use a†a *)
  let psd = Cmat.mul (Cmat.adjoint a) a in
  let s = Eig.sqrtm_psd psd in
  check_cmat "sqrt squared" psd (Cmat.mul s s) ~eps:1e-7

let test_project_psd () =
  let a = random_hermitian 4 in
  let p = Eig.project_psd a in
  let w, _ = Eig.hermitian p in
  Array.iter (fun x -> assert (x >= -1e-9)) w;
  check_float "unit trace" 1. (Cx.re (Cmat.trace p)) ~eps:1e-9

(* ---------------- Rmat ---------------- *)

let test_rmat_solve () =
  let a = Rmat.of_lists [ [ 2.; 1. ]; [ 1.; 3. ] ] in
  let x = Rmat.solve a [| 3.; 5. |] in
  let b = Rmat.apply a x in
  check_float "b0" 3. b.(0);
  check_float "b1" 5. b.(1)

let test_rmat_solve_random () =
  let n = 10 in
  let a =
    Rmat.init n n (fun i j ->
        (if i = j then float_of_int n else 0.) +. Random.State.float rng 1.)
  in
  let x_true = Array.init n (fun i -> float_of_int i -. 4.5) in
  let b = Rmat.apply a x_true in
  let x = Rmat.solve a b in
  Array.iteri (fun i xi -> check_float "solve entry" x_true.(i) xi ~eps:1e-8) x

let test_rmat_cholesky () =
  let n = 6 in
  let m = Rmat.init n n (fun _ _ -> Random.State.float rng 1.) in
  let spd = Rmat.add (Rmat.mul (Rmat.transpose m) m) (Rmat.scale 0.5 (Rmat.identity n)) in
  let l = Rmat.cholesky spd in
  assert (Rmat.equal ~eps:1e-9 spd (Rmat.mul l (Rmat.transpose l)));
  let x_true = Array.init n float_of_int in
  let b = Rmat.apply spd x_true in
  let x = Rmat.solve_spd spd b in
  Array.iteri (fun i xi -> check_float "spd solve" x_true.(i) xi ~eps:1e-8) x

let test_rmat_lstsq () =
  (* overdetermined consistent system recovers exact solution *)
  let a = Rmat.of_lists [ [ 1.; 0. ]; [ 0.; 1. ]; [ 1.; 1. ] ] in
  let x = Rmat.lstsq a [| 1.; 2.; 3. |] in
  check_float "x0" 1. x.(0) ~eps:1e-4;
  check_float "x1" 2. x.(1) ~eps:1e-4

(* ---------------- Hsvec ---------------- *)

let test_hsvec_roundtrip () =
  let a = random_hermitian 5 in
  let v = Hsvec.encode a in
  assert (Array.length v = Hsvec.dim 5);
  check_cmat "roundtrip" a (Hsvec.decode 5 v) ~eps:1e-12

let test_hsvec_isometry () =
  let a = random_hermitian 4 and b = random_hermitian 4 in
  let va = Hsvec.encode a and vb = Hsvec.encode b in
  let dot = Array.fold_left ( +. ) 0. (Array.map2 ( *. ) va vb) in
  check_float "isometry" (Cx.re (Cmat.hs_inner a b)) dot ~eps:1e-9

(* ---------------- qcheck properties ---------------- *)

let small_dim = QCheck.Gen.int_range 1 6

let gen_hermitian =
  QCheck.Gen.(
    small_dim >>= fun n ->
    let entry = map2 (fun a b -> Cx.make a b) (float_range (-1.) 1.) (float_range (-1.) 1.) in
    array_size (return (n * n)) entry >|= fun entries ->
    Cmat.hermitize (Cmat.init n n (fun i j -> entries.((i * n) + j))))

let arb_hermitian =
  QCheck.make gen_hermitian ~print:(Format.asprintf "%a" Cmat.pp)

let prop_eig_trace =
  QCheck.Test.make ~name:"eig preserves trace" ~count:50 arb_hermitian (fun a ->
      let w, _ = Eig.hermitian a in
      let s = Array.fold_left ( +. ) 0. w in
      Float.abs (s -. Cx.re (Cmat.trace a)) < 1e-7)

let prop_eig_frobenius =
  QCheck.Test.make ~name:"eig preserves Frobenius norm" ~count:50 arb_hermitian
    (fun a ->
      let w, _ = Eig.hermitian a in
      let s = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. w) in
      Float.abs (s -. Cmat.frob_norm a) < 1e-7)

let prop_hsvec_norm =
  QCheck.Test.make ~name:"hsvec preserves norm" ~count:50 arb_hermitian (fun a ->
      let v = Hsvec.encode a in
      let n = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. v) in
      Float.abs (n -. Cmat.frob_norm a) < 1e-9)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_eig_trace; prop_eig_frobenius; prop_hsvec_norm ]

let () =
  Alcotest.run "linalg"
    [
      ( "cx",
        [
          Alcotest.test_case "basic" `Quick test_cx_basic;
          Alcotest.test_case "arith" `Quick test_cx_arith;
        ] );
      ( "cvec",
        [
          Alcotest.test_case "basic" `Quick test_cvec_basic;
          Alcotest.test_case "kron" `Quick test_cvec_kron;
        ] );
      ( "cmat",
        [
          Alcotest.test_case "mul identity" `Quick test_cmat_mul_identity;
          Alcotest.test_case "adjoint" `Quick test_cmat_adjoint;
          Alcotest.test_case "trace cyclic" `Quick test_cmat_trace_cyclic;
          Alcotest.test_case "kron mixed product" `Quick test_cmat_kron_mixed_product;
          Alcotest.test_case "hs inner" `Quick test_cmat_hs_inner;
          Alcotest.test_case "outer/apply" `Quick test_cmat_outer_apply;
        ] );
      ( "eig",
        [
          Alcotest.test_case "reconstruction" `Quick test_eig_reconstruction;
          Alcotest.test_case "known spectrum" `Quick test_eig_known;
          Alcotest.test_case "sqrtm" `Quick test_eig_sqrtm;
          Alcotest.test_case "project psd" `Quick test_project_psd;
        ] );
      ( "rmat",
        [
          Alcotest.test_case "solve 2x2" `Quick test_rmat_solve;
          Alcotest.test_case "solve random" `Quick test_rmat_solve_random;
          Alcotest.test_case "cholesky" `Quick test_rmat_cholesky;
          Alcotest.test_case "lstsq" `Quick test_rmat_lstsq;
        ] );
      ( "hsvec",
        [
          Alcotest.test_case "roundtrip" `Quick test_hsvec_roundtrip;
          Alcotest.test_case "isometry" `Quick test_hsvec_isometry;
        ] );
      ("properties", qcheck_tests);
    ]
