(** Order-finding core of Shor's algorithm, in the "compiled" form used by
    hardware demonstrations: the work register is initialized to an
    eigenstate of the modular-multiplication unitary, so each controlled
    modular multiply [x -> a^(2^j) x mod N] acts as a pure phase
    [exp(2 pi i * 2^j * s / r)] on the counting qubits. The circuit is then
    quantum phase estimation: Hadamards, controlled phases with doubling
    angles, inverse QFT — the same gate structure the paper's Shor benchmark
    exercises, without the (exponentially large) arithmetic sub-circuits.

    Layout: qubits [0..t-1] are the counting register, qubit [t] carries the
    eigenstate. Tracepoints: 1 on the counting input, 2 on the counting
    output. *)

(** [circuit ~counting ~phase] builds phase estimation of [exp(2 pi i
    phase)] with [counting] counting qubits. *)
val circuit : counting:int -> phase:float -> Circuit.t

(** [for_order ~counting ~a ~n_mod] picks the eigenphase [s/r] with [s = 1]
    where [r] is the multiplicative order of [a] mod [n_mod], i.e. the value
    Shor's algorithm estimates. *)
val for_order : counting:int -> a:int -> n_mod:int -> Circuit.t

(** [order ~a ~n_mod] is the multiplicative order of [a] modulo [n_mod]
    (classical reference computation). *)
val order : a:int -> n_mod:int -> int

(** [expected_peak ~counting ~phase] is the counting-register basis state the
    estimation should peak at (rounded [phase * 2^counting]). *)
val expected_peak : counting:int -> phase:float -> int
