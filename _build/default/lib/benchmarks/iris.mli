(** Synthetic Iris-like dataset for the QNN case study (paper Section 7.2).

    Two species (Setosa = 0, Virginica = 1), four attributes per flower
    (sepal length/width, petal length/width) drawn from per-class Gaussians
    whose means and spreads mimic the real Iris statistics — in particular
    Setosa sepal lengths concentrate in the [4, 6] cm band the paper's
    prior-knowledge assertion references. *)

type flower = { features : float array; label : int }

(** [generate rng ~count] draws a balanced dataset. *)
val generate : Stats.Rng.t -> count:int -> flower array

(** [normalize_features f] maps raw attribute values into rotation angles in
    [[0, 2pi)] using fixed attribute ranges (paper's encoder convention). *)
val normalize_features : float array -> float array

(** Fixed attribute ranges [(lo, hi)] used by {!normalize_features}. *)
val feature_ranges : (float * float) array
