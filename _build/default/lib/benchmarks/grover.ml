let optimal_iterations n =
  (* floor(pi / (4 asin(1/sqrt N))): the rotation count that lands closest
     to the marked state without overshooting *)
  let theta = asin (1. /. sqrt (float_of_int (1 lsl n))) in
  max 1 (int_of_float (Float.floor (Float.pi /. (4. *. theta))))

(* phase flip on basis state [value] over all qubits *)
let phase_flip ~value n c =
  let flip c =
    List.fold_left
      (fun c q -> if (value lsr q) land 1 = 0 then Circuit.x q c else c)
      c
      (List.init n (fun q -> q))
  in
  c |> flip |> Circuit.mcz (List.init n (fun q -> q)) |> flip

let circuit ?iterations ~marked n =
  if n < 2 then invalid_arg "Grover.circuit: need at least two qubits";
  if marked < 0 || marked >= 1 lsl n then
    invalid_arg "Grover.circuit: marked element out of range";
  let iterations =
    match iterations with Some i -> i | None -> optimal_iterations n
  in
  let all = List.init n (fun q -> q) in
  let c = ref (Circuit.empty n) in
  List.iter (fun q -> c := Circuit.h q !c) all;
  c := Circuit.tracepoint 1 all !c;
  for _ = 1 to iterations do
    (* oracle *)
    c := phase_flip ~value:marked n !c;
    (* diffusion: H^n (phase flip on |0...0>) H^n *)
    List.iter (fun q -> c := Circuit.h q !c) all;
    c := phase_flip ~value:0 n !c;
    List.iter (fun q -> c := Circuit.h q !c) all
  done;
  c := Circuit.tracepoint 2 all !c;
  !c

let success_probability ?iterations ~marked n =
  let c = circuit ?iterations ~marked n in
  let st = (Sim.Engine.run c).Sim.Engine.state in
  (Qstate.Statevec.probs st).(marked)
