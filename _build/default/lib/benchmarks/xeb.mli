(** Cross-entropy benchmarking circuits (random circuit sampling, in the
    style of the Google quantum-supremacy experiment the paper cites).

    Each cycle applies a random single-qubit gate from [{sqrt X, sqrt Y,
    sqrt W}] on every qubit (never repeating on the same qubit in
    consecutive cycles) followed by a CZ ladder alternating between even
    and odd pairings. *)

(** [make rng ~n ~depth] builds a random circuit with [depth] cycles, with
    tracepoint 1 on the full input and 2 on the full output. *)
val make : Stats.Rng.t -> n:int -> depth:int -> Circuit.t

(** [linear_xeb ~ideal_probs ~samples] computes the linear cross-entropy
    fidelity estimate [2^n * mean(p_ideal(sampled)) - 1]. *)
val linear_xeb : ideal_probs:float array -> samples:int array -> float

(** [fidelity_of_counts ~ideal_probs counts] applies {!linear_xeb} to
    [(index, count)] pairs. *)
val fidelity_of_counts : ideal_probs:float array -> (int * int) list -> float
