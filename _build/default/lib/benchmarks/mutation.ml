type mutant = {
  circuit : Circuit.t;
  position : int;
  qubit : int;
  gate_name : string;
  angle : float option;
}

let insert_at c position instr =
  let items = Circuit.instrs c in
  let n = List.length items in
  let position = max 0 (min n position) in
  let rebuilt = ref (Circuit.empty ~clbits:(Circuit.num_clbits c) (Circuit.num_qubits c)) in
  List.iteri
    (fun i it ->
      if i = position then rebuilt := Circuit.add instr !rebuilt;
      rebuilt := Circuit.add it !rebuilt)
    items;
  if position >= n then rebuilt := Circuit.add instr !rebuilt;
  !rebuilt

let inject_gate ?qubits rng c ~phase_family =
  let n_instr = List.length (Circuit.instrs c) in
  let position = Stats.Rng.int rng (n_instr + 1) in
  let qubit =
    match qubits with
    | Some qs when qs <> [] -> List.nth qs (Stats.Rng.int rng (List.length qs))
    | _ -> Stats.Rng.int rng (Circuit.num_qubits c)
  in
  let gate_name, angle =
    if phase_family then
      match Stats.Rng.int rng 4 with
      | 0 -> ("z", None)
      | 1 -> ("s", None)
      | 2 -> ("t", None)
      | _ -> ("rz", Some (Stats.Rng.uniform rng 0.2 (2. *. Float.pi -. 0.2)))
    else ("x", None)
  in
  let params = match angle with Some a -> [ a ] | None -> [] in
  let instr = Circuit.Instr.Gate (Circuit.Gate.make ~params gate_name [ qubit ]) in
  { circuit = insert_at c position instr; position; qubit; gate_name; angle }

let inject ?qubits rng c = inject_gate ?qubits rng c ~phase_family:true
let inject_many rng ~count c = List.init count (fun _ -> inject rng c)
let inject_bitflip rng c = inject_gate rng c ~phase_family:false
