(** Bernstein-Vazirani: recover a hidden bitstring with one oracle query
    (one of the phase-kickback applications the paper motivates the quantum
    lock with). Layout: qubits [0..n-1] input, qubit [n] ancilla. *)

(** [circuit ~secret n] builds the algorithm for an [n]-bit secret. The
    final state of the input register is [|secret>]. *)
val circuit : secret:int -> int -> Circuit.t

(** [recover ~secret n] runs the circuit and reads the most likely
    bitstring. *)
val recover : secret:int -> int -> int
