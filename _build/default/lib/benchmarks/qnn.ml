type t = { num_qubits : int; layers : int; params : float array }

let param_count ~num_qubits ~layers = 2 * layers * num_qubits

let init rng ~num_qubits ~layers =
  if num_qubits <= 0 || layers <= 0 then invalid_arg "Qnn.init: bad shape";
  let params =
    Array.init (param_count ~num_qubits ~layers) (fun _ ->
        Stats.Rng.uniform rng (-0.5) 0.5)
  in
  { num_qubits; layers; params }

(* Parameter index layout: layer-major, [ry q0 .. ry q_{n-1}; rz q0 ..]. *)
let body ?(traced_gates = []) t =
  let c = ref (Circuit.empty t.num_qubits) in
  let idx = ref 0 in
  let maybe_trace () =
    match List.find_index (fun g -> g = !idx) traced_gates with
    | Some pos ->
        let q = !idx mod t.num_qubits in
        c := Circuit.tracepoint (10 + pos) [ q ] !c
    | None -> ()
  in
  for _layer = 1 to t.layers do
    for q = 0 to t.num_qubits - 1 do
      let theta = t.params.(!idx) in
      if Float.abs theta > 1e-12 then c := Circuit.ry theta q !c;
      maybe_trace ();
      incr idx
    done;
    for q = 0 to t.num_qubits - 1 do
      let theta = t.params.(!idx) in
      if Float.abs theta > 1e-12 then c := Circuit.rz theta q !c;
      maybe_trace ();
      incr idx
    done;
    (* CZ entangling ring *)
    if t.num_qubits >= 2 then
      for q = 0 to t.num_qubits - 1 do
        let q' = (q + 1) mod t.num_qubits in
        if q < q' || t.num_qubits > 2 then c := Circuit.cz q q' !c
      done
  done;
  Circuit.tracepoint 4 (List.init t.num_qubits (fun q -> q)) !c

let encoder t ~features c =
  let angles = Iris.normalize_features features in
  let c = ref c in
  for q = 0 to t.num_qubits - 1 do
    let a = if q < Array.length angles then angles.(q) else 0. in
    c := Circuit.ry a q !c
  done;
  Circuit.tracepoint 1 (List.init t.num_qubits (fun q -> q)) !c

let circuit ?traced_gates t ~features =
  let c = encoder t ~features (Circuit.empty t.num_qubits) in
  Circuit.append c (body ?traced_gates t)

let predict t ~features =
  let c = circuit t ~features in
  let outcome = Sim.Engine.run c in
  Qstate.Statevec.expectation_pauli
    (Qstate.Pauli.single t.num_qubits 0 Qstate.Pauli.Z)
    outcome.Sim.Engine.state

let accuracy t flowers =
  let correct =
    Array.fold_left
      (fun acc f ->
        let e = predict t ~features:f.Iris.features in
        let predicted = if e > 0. then 0 else 1 in
        if predicted = f.Iris.label then acc + 1 else acc)
      0 flowers
  in
  float_of_int correct /. float_of_int (Array.length flowers)

let loss t flowers =
  Array.fold_left
    (fun acc f ->
      let e = predict t ~features:f.Iris.features in
      let target = if f.Iris.label = 0 then 1. else -1. in
      acc +. ((e -. target) *. (e -. target)))
    0. flowers
  /. float_of_int (Array.length flowers)

let train rng t flowers ~epochs ~lr =
  ignore rng;
  let model = { t with params = Array.copy t.params } in
  let shift = Float.pi /. 2. in
  for _ = 1 to epochs do
    let grads =
      Array.mapi
        (fun i _ ->
          let orig = model.params.(i) in
          model.params.(i) <- orig +. shift;
          let lp = loss model flowers in
          model.params.(i) <- orig -. shift;
          let lm = loss model flowers in
          model.params.(i) <- orig;
          (lp -. lm) /. 2.)
        model.params
    in
    Array.iteri
      (fun i g -> model.params.(i) <- model.params.(i) -. (lr *. g))
      grads
  done;
  model

let prune t ~threshold =
  let removed = ref [] in
  let params =
    Array.mapi
      (fun i p ->
        if Float.abs p < threshold && Float.abs p > 0. then begin
          removed := i :: !removed;
          0.
        end
        else p)
      t.params
  in
  ({ t with params }, List.rev !removed)

let corrupt_prune t ~index =
  if index < 0 || index >= Array.length t.params then
    invalid_arg "Qnn.corrupt_prune: index out of range";
  let params = Array.copy t.params in
  params.(index) <- 0.;
  { t with params }
