let check d =
  if d < 3 || d mod 2 = 0 then
    invalid_arg "Qec: distance must be odd and at least 3"

let encode d =
  check d;
  let c = ref (Circuit.empty ((2 * d) - 1)) in
  for i = 1 to d - 1 do
    c := Circuit.cx 0 i !c
  done;
  !c

(* Syndrome bit i compares data qubits i and i+1 into ancilla d+i; the
   correction flips the data qubit identified by the syndrome pattern. For
   the repetition code a single-X-error syndrome uniquely locates the flip:
   error on qubit 0 -> (1,0,...), on qubit i (0<i<d-1) -> bits i-1 and i,
   on qubit d-1 -> (...,0,1). *)
let round ?error d =
  check d;
  let n = (2 * d) - 1 in
  let c = ref (Circuit.empty ~clbits:(d - 1) n) in
  c := Circuit.tracepoint 1 [ 0 ] !c;
  (* encode *)
  for i = 1 to d - 1 do
    c := Circuit.cx 0 i !c
  done;
  (* optional injected error *)
  (match error with
  | Some q when q >= 0 && q < d -> c := Circuit.x q !c
  | Some _ -> invalid_arg "Qec.round: error qubit out of range"
  | None -> ());
  (* syndrome extraction *)
  for i = 0 to d - 2 do
    let anc = d + i in
    c := Circuit.cx i anc !c;
    c := Circuit.cx (i + 1) anc !c;
    c := Circuit.measure anc i !c
  done;
  (* Weight-1 X error lookup decoder: an error on data qubit j fires
     syndrome bits j-1 and j (where they exist), so each data qubit is
     corrected on a unique two-bit syndrome pattern. *)
  c := Circuit.if_gate [ 0; 1 ] 0b01 (Circuit.Gate.make "x" [ 0 ]) !c;
  for j = 1 to d - 2 do
    c := Circuit.if_gate [ j - 1; j ] 0b11 (Circuit.Gate.make "x" [ j ]) !c
  done;
  c := Circuit.if_gate [ d - 3; d - 2 ] 0b10 (Circuit.Gate.make "x" [ d - 1 ]) !c;
  (* decode *)
  for i = d - 1 downto 1 do
    c := Circuit.cx 0 i !c
  done;
  c := Circuit.tracepoint 2 [ 0 ] !c;
  !c

let logical_fidelity ?error ?(noise = Sim.Noise.ideal) ~trials rng d =
  let c0 = round ?error d in
  let n = (2 * d) - 1 in
  (* logical |+>: H on qubit 0 before the round, H after, expect |0> *)
  let pre = Circuit.h 0 (Circuit.empty ~clbits:(d - 1) n) in
  let c = Circuit.append pre c0 in
  let c = Circuit.h 0 c in
  let ok = ref 0 in
  for _ = 1 to trials do
    let outcome = Sim.Engine.run ~rng ~noise c in
    if Qstate.Statevec.prob1 outcome.Sim.Engine.state 0 < 0.5 then incr ok
  done;
  float_of_int !ok /. float_of_int trials
