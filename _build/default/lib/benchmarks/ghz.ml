let circuit n =
  if n <= 0 then invalid_arg "Ghz.circuit: need a positive qubit count";
  let c = ref (Circuit.h 0 (Circuit.empty n)) in
  for q = 0 to n - 2 do
    c := Circuit.cx q (q + 1) !c
  done;
  Circuit.tracepoint 1 (List.init n (fun q -> q)) !c

let state n =
  let outcome = Sim.Engine.run (circuit n) in
  outcome.Sim.Engine.state
