let gate_choices = [| "sx"; "sy"; "sw" |]

let make rng ~n ~depth =
  if n <= 0 || depth <= 0 then invalid_arg "Xeb.make: bad shape";
  let c = ref (Circuit.empty n) in
  c := Circuit.tracepoint 1 (List.init n (fun q -> q)) !c;
  let last = Array.make n (-1) in
  for cycle = 0 to depth - 1 do
    for q = 0 to n - 1 do
      let pick = ref (Stats.Rng.int rng 3) in
      while !pick = last.(q) do
        pick := Stats.Rng.int rng 3
      done;
      last.(q) <- !pick;
      c := Circuit.gate gate_choices.(!pick) [ q ] !c
    done;
    let offset = cycle mod 2 in
    let q = ref offset in
    while !q + 1 < n do
      c := Circuit.cz !q (!q + 1) !c;
      q := !q + 2
    done
  done;
  c := Circuit.tracepoint 2 (List.init n (fun q -> q)) !c;
  !c

let linear_xeb ~ideal_probs ~samples =
  if Array.length samples = 0 then invalid_arg "Xeb.linear_xeb: no samples";
  let d = float_of_int (Array.length ideal_probs) in
  let mean =
    Array.fold_left (fun acc k -> acc +. ideal_probs.(k)) 0. samples
    /. float_of_int (Array.length samples)
  in
  (d *. mean) -. 1.

let fidelity_of_counts ~ideal_probs counts =
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 counts in
  if total = 0 then invalid_arg "Xeb.fidelity_of_counts: empty counts";
  let d = float_of_int (Array.length ideal_probs) in
  let mean =
    List.fold_left
      (fun acc (k, c) -> acc +. (float_of_int c *. ideal_probs.(k)))
      0. counts
    /. float_of_int total
  in
  (d *. mean) -. 1.
