(** Grover search over [n] qubits with a single marked basis state. The
    oracle is a phase flip on the marked element (the same phase-kickback
    construction as the quantum lock); diffusion inverts about the mean.

    Tracepoints: 1 after the uniform superposition, 2 at the end. *)

(** [circuit ?iterations ~marked n] builds the search circuit; [iterations]
    defaults to {!optimal_iterations}. *)
val circuit : ?iterations:int -> marked:int -> int -> Circuit.t

(** [optimal_iterations n] is [floor (pi / (4 asin (2^(-n/2))))], at
    least 1. *)
val optimal_iterations : int -> int

(** [success_probability ?iterations ~marked n] runs the circuit and returns
    the probability of measuring the marked element. *)
val success_probability : ?iterations:int -> marked:int -> int -> float
