(* Standard textbook QFT: on significance-ordered qubits [q0 (lsb) ... q_{m-1}],
   process from the most significant down, each H followed by controlled
   phases from the remaining lower qubits, then reverse with swaps. *)

let append qubits c =
  let qs = Array.of_list qubits in
  let m = Array.length qs in
  if m = 0 then invalid_arg "Qft.append: empty qubit list";
  let c = ref c in
  for j = m - 1 downto 0 do
    c := Circuit.h qs.(j) !c;
    for k = j - 1 downto 0 do
      let angle = Float.pi /. float_of_int (1 lsl (j - k)) in
      c := Circuit.cp angle qs.(k) qs.(j) !c
    done
  done;
  for j = 0 to (m / 2) - 1 do
    c := Circuit.swap qs.(j) qs.(m - 1 - j) !c
  done;
  !c

let append_inverse qubits c =
  let qs = Array.of_list qubits in
  let m = Array.length qs in
  if m = 0 then invalid_arg "Qft.append_inverse: empty qubit list";
  let c = ref c in
  for j = (m / 2) - 1 downto 0 do
    c := Circuit.swap qs.(j) qs.(m - 1 - j) !c
  done;
  for j = 0 to m - 1 do
    for k = 0 to j - 1 do
      let angle = -.Float.pi /. float_of_int (1 lsl (j - k)) in
      c := Circuit.cp angle qs.(k) qs.(j) !c
    done;
    c := Circuit.h qs.(j) !c
  done;
  !c

let circuit n = append (List.init n (fun i -> i)) (Circuit.empty n)
