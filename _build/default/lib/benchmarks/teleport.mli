(** Quantum teleportation (paper Section 4's running example).

    The single-qubit protocol teleports qubit 0 (Alice) to qubit 2 (Bob)
    through an EPR pair on qubits 1-2, using two mid-circuit measurements
    and classically-controlled X/Z corrections. The multi-qubit variant
    teleports a [k]-qubit payload qubit by qubit (3k qubits total), matching
    the paper's 7- and 15-qubit teleportation benchmarks in shape.

    Tracepoints: 1 = payload input, 2 = Bob's output. *)

(** [single ()] is the canonical 3-qubit protocol. Payload input is qubit 0;
    output is qubit 2. *)
val single : unit -> Circuit.t

(** [multi k] teleports a [k]-qubit payload (qubits [0..k-1]) onto qubits
    [2k..3k-1]. *)
val multi : int -> Circuit.t

(** [input_qubits k] / [output_qubits k] of the [multi] protocol. *)
val input_qubits : int -> int list

val output_qubits : int -> int list
