let circuit ~counting ~phase =
  if counting <= 0 then invalid_arg "Shor_period.circuit: need counting qubits";
  let n = counting + 1 in
  let c = ref (Circuit.empty n) in
  c := Circuit.tracepoint 1 (List.init counting (fun q -> q)) !c;
  (* eigenstate qubit: |1> so that controlled phases act *)
  c := Circuit.x counting !c;
  for q = 0 to counting - 1 do
    c := Circuit.h q !c
  done;
  (* controlled-U^(2^q): a pure controlled phase in the compiled encoding *)
  for q = 0 to counting - 1 do
    let angle = 2. *. Float.pi *. phase *. float_of_int (1 lsl q) in
    c := Circuit.cp angle q counting !c
  done;
  c := Qft.append_inverse (List.init counting (fun q -> q)) !c;
  c := Circuit.tracepoint 2 (List.init counting (fun q -> q)) !c;
  !c

let order ~a ~n_mod =
  if n_mod <= 1 || a <= 1 then invalid_arg "Shor_period.order: bad arguments";
  let rec gcd x y = if y = 0 then x else gcd y (x mod y) in
  if gcd a n_mod <> 1 then invalid_arg "Shor_period.order: a not coprime to N";
  let rec go acc k =
    if acc = 1 && k > 0 then k else go (acc * a mod n_mod) (k + 1)
  in
  go (a mod n_mod) 1

let for_order ~counting ~a ~n_mod =
  let r = order ~a ~n_mod in
  circuit ~counting ~phase:(1. /. float_of_int r)

let expected_peak ~counting ~phase =
  let d = 1 lsl counting in
  int_of_float (Float.round (phase *. float_of_int d)) mod d
