(** Bit-flip repetition code (quantum error correction benchmark).

    A distance-[d] repetition code protects one logical qubit on [d] data
    qubits with [d - 1] syndrome ancillas. The full round encodes, optionally
    injects an error, extracts syndromes into classical bits and applies the
    majority-vote correction as classical feedback.

    Layout: data qubits [0..d-1] (logical input on qubit 0), ancillas
    [d..2d-2]. Tracepoints: 1 = logical input, 2 = decoded logical output. *)

(** [encode d] is the encoding circuit alone (CX fan-out on [d] data
    qubits over a register that also reserves the ancillas). *)
val encode : int -> Circuit.t

(** [round ?error d] is the full protected round for distance [d] (odd,
    >= 3): encode, optional X error on the given data qubit, syndrome
    extraction, feedback correction, decode. *)
val round : ?error:int -> int -> Circuit.t

(** [logical_fidelity ?error ?noise ~trials rng d] estimates the probability
    that an encoded [|+>] state survives the round (averaged over
    trajectories). *)
val logical_fidelity :
  ?error:int -> ?noise:Sim.Noise.t -> trials:int -> Stats.Rng.t -> int -> float
