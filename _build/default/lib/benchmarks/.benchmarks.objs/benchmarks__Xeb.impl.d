lib/benchmarks/xeb.ml: Array Circuit List Stats
