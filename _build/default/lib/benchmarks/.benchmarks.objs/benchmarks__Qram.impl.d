lib/benchmarks/qram.ml: Array Circuit Float List Qstate Sim Stats
