lib/benchmarks/bv.mli: Circuit
