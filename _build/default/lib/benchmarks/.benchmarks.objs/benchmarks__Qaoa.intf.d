lib/benchmarks/qaoa.mli: Circuit Qstate Stats
