lib/benchmarks/qram.mli: Circuit Stats
