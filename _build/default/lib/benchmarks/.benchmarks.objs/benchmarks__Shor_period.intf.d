lib/benchmarks/shor_period.mli: Circuit
