lib/benchmarks/qec.ml: Circuit Qstate Sim
