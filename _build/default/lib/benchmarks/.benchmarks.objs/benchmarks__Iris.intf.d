lib/benchmarks/iris.mli: Stats
