lib/benchmarks/qaoa.ml: Array Circuit Float List Optimize Qstate Sim
