lib/benchmarks/ghz.mli: Circuit Qstate
