lib/benchmarks/ghz.ml: Circuit List Sim
