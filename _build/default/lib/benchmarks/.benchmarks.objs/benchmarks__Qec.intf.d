lib/benchmarks/qec.mli: Circuit Sim Stats
