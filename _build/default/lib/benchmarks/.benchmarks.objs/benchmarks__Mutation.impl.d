lib/benchmarks/mutation.ml: Circuit Float List Stats
