lib/benchmarks/quantum_lock.ml: Circuit List Qstate Sim
