lib/benchmarks/grover.ml: Array Circuit Float List Qstate Sim
