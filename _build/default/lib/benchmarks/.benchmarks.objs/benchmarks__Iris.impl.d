lib/benchmarks/iris.ml: Array Float Stats
