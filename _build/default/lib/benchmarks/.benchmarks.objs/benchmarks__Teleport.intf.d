lib/benchmarks/teleport.mli: Circuit
