lib/benchmarks/qft.ml: Array Circuit Float List
