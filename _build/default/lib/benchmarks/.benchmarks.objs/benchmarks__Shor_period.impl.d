lib/benchmarks/shor_period.ml: Circuit Float List Qft
