lib/benchmarks/mutation.mli: Circuit Stats
