lib/benchmarks/xeb.mli: Circuit Stats
