lib/benchmarks/qnn.mli: Circuit Iris Stats
