lib/benchmarks/bv.ml: Array Circuit List Qstate Sim
