lib/benchmarks/quantum_lock.mli: Circuit
