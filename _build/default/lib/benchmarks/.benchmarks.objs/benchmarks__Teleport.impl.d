lib/benchmarks/teleport.ml: Circuit List
