lib/benchmarks/grover.mli: Circuit
