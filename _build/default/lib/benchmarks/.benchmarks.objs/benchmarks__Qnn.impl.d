lib/benchmarks/qnn.ml: Array Circuit Float Iris List Qstate Sim Stats
