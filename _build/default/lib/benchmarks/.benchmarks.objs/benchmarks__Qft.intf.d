lib/benchmarks/qft.mli: Circuit
