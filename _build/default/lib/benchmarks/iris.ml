type flower = { features : float array; label : int }

(* (mean, sigma) per attribute per class: Setosa then Virginica, loosely
   matching the real Iris dataset statistics. *)
let class_stats =
  [|
    [| (5.0, 0.35); (3.4, 0.38); (1.46, 0.17); (0.24, 0.1) |];
    [| (6.6, 0.63); (2.97, 0.32); (5.55, 0.55); (2.03, 0.27) |];
  |]

let feature_ranges = [| (4., 8.); (2., 4.5); (1., 7.); (0., 2.6) |]

let generate rng ~count =
  Array.init count (fun i ->
      let label = i mod 2 in
      let stats = class_stats.(label) in
      let features =
        Array.map (fun (mu, sigma) -> Stats.Rng.gaussian rng ~mu ~sigma) stats
      in
      (* clamp into the declared ranges *)
      Array.iteri
        (fun j v ->
          let lo, hi = feature_ranges.(j) in
          features.(j) <- Float.min hi (Float.max lo v))
        features;
      { features; label })

let normalize_features f =
  Array.mapi
    (fun j v ->
      let lo, hi = feature_ranges.(j) in
      (v -. lo) /. (hi -. lo) *. 2. *. Float.pi)
    f
