type graph = (int * int) list

let ring n = List.init n (fun i -> (i, (i + 1) mod n))

let complete n =
  List.concat_map (fun u -> List.init (n - 1 - u) (fun k -> (u, u + 1 + k))) (List.init n (fun u -> u))

let check_graph graph n =
  List.iter
    (fun (u, v) ->
      if u < 0 || v < 0 || u >= n || v >= n || u = v then
        invalid_arg "Qaoa: bad edge")
    graph

let circuit ~graph ~gammas ~betas n =
  check_graph graph n;
  if List.length gammas <> List.length betas then
    invalid_arg "Qaoa.circuit: layer count mismatch";
  let all = List.init n (fun q -> q) in
  let c = ref (Circuit.empty n) in
  List.iter (fun q -> c := Circuit.h q !c) all;
  c := Circuit.tracepoint 1 all !c;
  List.iter2
    (fun gamma beta ->
      (* cost layer: exp(-i gamma/2 * (1 - Z_u Z_v)) per edge, up to global
         phase = CX . RZ(gamma) . CX *)
      List.iter
        (fun (u, v) ->
          c := Circuit.cx u v !c;
          c := Circuit.rz gamma v !c;
          c := Circuit.cx u v !c)
        graph;
      (* mixer *)
      List.iter (fun q -> c := Circuit.rx (2. *. beta) q !c) all)
    gammas betas;
  c := Circuit.tracepoint 2 all !c;
  !c

let cut_value graph bits =
  List.fold_left
    (fun acc (u, v) ->
      if (bits lsr u) land 1 <> (bits lsr v) land 1 then acc +. 1. else acc)
    0. graph

let expected_cut ~graph n st =
  if Qstate.Statevec.num_qubits st <> n then invalid_arg "Qaoa.expected_cut";
  let probs = Qstate.Statevec.probs st in
  let acc = ref 0. in
  Array.iteri (fun bits p -> acc := !acc +. (p *. cut_value graph bits)) probs;
  !acc

let max_cut ~graph n =
  let best = ref 0. in
  for bits = 0 to (1 lsl n) - 1 do
    let v = cut_value graph bits in
    if v > !best then best := v
  done;
  !best

let run ~graph ~gammas ~betas n =
  let c = circuit ~graph ~gammas ~betas n in
  let st = (Sim.Engine.run c).Sim.Engine.state in
  let cut = expected_cut ~graph n st in
  (cut, cut /. Float.max 1. (max_cut ~graph n))

let optimize ?(iters = 400) rng ~graph ~layers n =
  let dim = 2 * layers in
  let obj =
    Optimize.Objective.make ~dim
      ~lower:(Array.make dim 0.)
      ~upper:(Array.make dim Float.pi)
      (fun x ->
        let gammas = List.init layers (fun i -> x.(i)) in
        let betas = List.init layers (fun i -> x.(layers + i)) in
        fst (run ~graph ~gammas ~betas n))
  in
  let sol = Optimize.Solvers.anneal ~iters ~restarts:1 rng obj in
  let gammas = List.init layers (fun i -> sol.Optimize.Solvers.x.(i)) in
  let betas = List.init layers (fun i -> sol.Optimize.Solvers.x.(layers + i)) in
  (gammas, betas, sol.Optimize.Solvers.value /. Float.max 1. (max_cut ~graph n))
