(** Mutation testing (paper Section 8.2): buggy program variants are
    produced by injecting random phase gates at random positions, which
    changes the state's phase structure while often leaving computational-
    basis probabilities intact — exactly the class of bug that
    probability-only verifiers miss. *)

type mutant = {
  circuit : Circuit.t;
  position : int;  (** instruction index the gate was inserted before *)
  qubit : int;
  gate_name : string;
  angle : float option;
}

(** [inject ?qubits rng c] inserts one random phase-family gate ([z], [s],
    [t] or [rz] with a random angle) at a random position, on a random qubit
    (restricted to [qubits] when given). *)
val inject : ?qubits:int list -> Stats.Rng.t -> Circuit.t -> mutant

(** [inject_many rng ~count c] produces [count] independent single-gate
    mutants. *)
val inject_many : Stats.Rng.t -> count:int -> Circuit.t -> mutant list

(** [inject_bitflip rng c] inserts a random X gate instead — a
    probability-visible bug used in ablations. *)
val inject_bitflip : Stats.Rng.t -> Circuit.t -> mutant
