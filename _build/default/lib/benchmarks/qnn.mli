(** Parameterized quantum neural network (paper Section 7.2 and Figure 8).

    The model is an angle encoder (one RY per qubit) followed by [layers] of
    parameterized RY/RZ rotations with a CZ entangling ring. The prediction
    is the Z expectation of qubit 0: positive = Setosa, non-positive =
    Virginica.

    Tracepoints: 1 after the encoder, 4 before the output; {!make_with_trace}
    can add tracepoints after specific parameterized gates for the
    gate-pruning case study. *)

type t = {
  num_qubits : int;
  layers : int;
  params : float array;  (** length [2 * layers * num_qubits] *)
}

(** [init rng ~num_qubits ~layers] draws random initial parameters. *)
val init : Stats.Rng.t -> num_qubits:int -> layers:int -> t

(** [circuit ?traced_gates t ~features] builds the full circuit for one
    input. [traced_gates] lists parameter indices after whose gate a
    tracepoint (id = 10 + position in list) is inserted. *)
val circuit : ?traced_gates:int list -> t -> features:float array -> Circuit.t

(** [body ?traced_gates t] is the trainable part only, taking the encoded
    state as the circuit input (used for input-space verification). *)
val body : ?traced_gates:int list -> t -> Circuit.t

(** [predict t ~features] is the Z expectation of qubit 0 on the encoded
    input. *)
val predict : t -> features:float array -> float

(** [accuracy t flowers] is classification accuracy against labels (label 0
    expects positive expectation). *)
val accuracy : t -> Iris.flower array -> float

(** [train rng t flowers ~epochs ~lr] runs parameter-shift-style numeric
    gradient descent on the squared-error loss; returns the trained model. *)
val train : Stats.Rng.t -> t -> Iris.flower array -> epochs:int -> lr:float -> t

(** [prune t ~threshold] zeroes parameters with magnitude below [threshold]
    (the paper's gate pruning); returns the pruned model and the indices of
    removed gates. *)
val prune : t -> threshold:float -> t * int list

(** [corrupt_prune t ~index] zeroes one (significant) parameter — an
    incorrect pruning that the verification should catch. *)
val corrupt_prune : t -> index:int -> t
