let input_qubits k = List.init k (fun i -> i)
let output_qubits k = List.init k (fun i -> (2 * k) + i)

(* Teleport payload qubit [src] through the EPR pair ([anc], [dst]) using
   classical bits [cb] and [cb+1]. *)
let hop ~src ~anc ~dst ~cb c =
  c
  |> Circuit.h anc
  |> Circuit.cx anc dst
  |> Circuit.cx src anc
  |> Circuit.h src
  |> Circuit.measure src cb
  |> Circuit.measure anc (cb + 1)
  |> Circuit.if_gate [ cb + 1 ] 1 (Circuit.Gate.make "x" [ dst ])
  |> Circuit.if_gate [ cb ] 1 (Circuit.Gate.make "z" [ dst ])

let multi k =
  if k <= 0 then invalid_arg "Teleport.multi: need a positive payload size";
  let c = Circuit.empty ~clbits:(2 * k) (3 * k) in
  let c = Circuit.tracepoint 1 (input_qubits k) c in
  let c =
    List.fold_left
      (fun c i -> hop ~src:i ~anc:(k + i) ~dst:((2 * k) + i) ~cb:(2 * i) c)
      c
      (List.init k (fun i -> i))
  in
  Circuit.tracepoint 2 (output_qubits k) c

let single () = multi 1
