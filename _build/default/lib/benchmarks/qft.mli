(** The quantum Fourier transform over a contiguous qubit range. *)

(** [append qubits c] appends the QFT on the listed qubits (qubit order =
    significance order, least significant first). *)
val append : int list -> Circuit.t -> Circuit.t

(** [append_inverse qubits c] appends the inverse QFT. *)
val append_inverse : int list -> Circuit.t -> Circuit.t

(** [circuit n] is the QFT on [n] fresh qubits. *)
val circuit : int -> Circuit.t
