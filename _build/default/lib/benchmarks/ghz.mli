(** GHZ state preparation (the paper's tracepoint example in Section 4). *)

(** [circuit n] prepares [(|0...0> + |1...1>)/sqrt 2] with tracepoint 1 on
    the full register at the end. *)
val circuit : int -> Circuit.t

(** [state n] is the ideal GHZ state. *)
val state : int -> Qstate.Statevec.t
