(** QAOA for MaxCut — a variational benchmark in the same family as the
    QNN case study: parameterized layers whose verification needs
    expectation-value comparisons rather than state equality.

    The cost Hamiltonian of a graph [G = (V, E)] is
    [C = sum_(u,v) in E (1 - Z_u Z_v) / 2]; one QAOA layer applies
    [exp(-i gamma C)] (ZZ phase interactions, realized as CX-RZ-CX) followed
    by the mixer [exp(-i beta X)] on every qubit.

    Tracepoints: 1 after the initial superposition, 2 at the end. *)

type graph = (int * int) list  (** edge list over vertices [0..n-1] *)

(** [ring n] / [complete n] — standard test graphs. *)
val ring : int -> graph

val complete : int -> graph

(** [circuit ~graph ~gammas ~betas n] builds a [p]-layer QAOA circuit
    ([p = length gammas = length betas]). *)
val circuit : graph:graph -> gammas:float list -> betas:float list -> int -> Circuit.t

(** [expected_cut ~graph n st] is the expected cut value [<C>] of a state. *)
val expected_cut : graph:graph -> int -> Qstate.Statevec.t -> float

(** [max_cut ~graph n] — classical brute force over all bitstrings. *)
val max_cut : graph:graph -> int -> float

(** [run ~graph ~gammas ~betas n] builds, simulates and returns
    [(expected cut, approximation ratio)]. *)
val run : graph:graph -> gammas:float list -> betas:float list -> int -> float * float

(** [optimize ?iters rng ~graph ~layers n] tunes the angles with the
    annealing solver, returning [(gammas, betas, approximation ratio)]. *)
val optimize :
  ?iters:int ->
  Stats.Rng.t ->
  graph:graph ->
  layers:int ->
  int ->
  float list * float list * float
