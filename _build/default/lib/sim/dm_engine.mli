(** Exact density-matrix execution with noise channels.

    Measurements split the simulation into weighted classical branches so
    that feedback ([If_gate]) stays exactly correlated with outcomes; the
    engine therefore costs O(2^m) density simulations for [m] measurements.
    Intended for small registers (<= ~9 qubits). *)

type branch = {
  weight : float;
  rho : Qstate.Density.t;
  clbits : int array;
}

type outcome = {
  branches : branch list;  (** weights sum to 1 *)
  traces : (int * Linalg.Cmat.t) list;
      (** tracepoint id -> branch-averaged reduced density matrix *)
}

(** [run ?noise ?initial ?meter c] executes the circuit exactly. *)
val run :
  ?noise:Noise.t ->
  ?initial:Qstate.Density.t ->
  ?meter:Cost.t ->
  Circuit.t ->
  outcome

(** [final_density o] is the weighted mixture over branches. *)
val final_density : outcome -> Qstate.Density.t

(** [probs ?noise ?initial c] is the exact final basis distribution. *)
val probs : ?noise:Noise.t -> ?initial:Qstate.Density.t -> Circuit.t -> float array
