open Linalg

type t = { p1 : float; p2 : float; readout : float }

let ideal = { p1 = 0.; p2 = 0.; readout = 0. }

(* Depolarizing probability p relates to average gate fidelity F on one qubit
   by F = 1 - p/2, so p = 2 (1 - F); for two-qubit gates F = 1 - 4p/5,
   approximated here by p = (1 - F) * 5/4. *)
let ibm_cairo = { p1 = 2. *. (1. -. 0.9945); p2 = 1.25 *. (1. -. 0.984); readout = 0.01 }

let make ?(p1 = 0.) ?(p2 = 0.) ?(readout = 0.) () = { p1; p2; readout }
let is_ideal t = t.p1 = 0. && t.p2 = 0. && t.readout = 0.

let kraus1 p =
  if p < 0. || p > 1. then invalid_arg "Noise.kraus1: bad probability";
  (* convention: rho -> (1-p) rho + p/3 (X rho X + Y rho Y + Z rho Z),
     matching the trajectory sampler below *)
  let w0 = sqrt (1. -. p) and w = sqrt (p /. 3.) in
  [
    Cmat.rscale w0 (Cmat.identity 2);
    Cmat.rscale w (Qstate.Pauli.matrix1 Qstate.Pauli.X);
    Cmat.rscale w (Qstate.Pauli.matrix1 Qstate.Pauli.Y);
    Cmat.rscale w (Qstate.Pauli.matrix1 Qstate.Pauli.Z);
  ]

let sample_pauli rng p =
  if Stats.Rng.float rng 1. >= p then None
  else
    match Stats.Rng.int rng 3 with
    | 0 -> Some Qstate.Pauli.X
    | 1 -> Some Qstate.Pauli.Y
    | _ -> Some Qstate.Pauli.Z

let amplitude_damping gamma =
  if gamma < 0. || gamma > 1. then invalid_arg "Noise.amplitude_damping: bad rate";
  [
    Cmat.of_lists
      [ [ Cx.one; Cx.zero ]; [ Cx.zero; Cx.of_float (sqrt (1. -. gamma)) ] ];
    Cmat.of_lists
      [ [ Cx.zero; Cx.of_float (sqrt gamma) ]; [ Cx.zero; Cx.zero ] ];
  ]

let phase_damping lambda =
  if lambda < 0. || lambda > 1. then invalid_arg "Noise.phase_damping: bad rate";
  [
    Cmat.of_lists
      [ [ Cx.one; Cx.zero ]; [ Cx.zero; Cx.of_float (sqrt (1. -. lambda)) ] ];
    Cmat.of_lists
      [ [ Cx.zero; Cx.zero ]; [ Cx.zero; Cx.of_float (sqrt lambda) ] ];
  ]

let thermal ~t1 ~t2 ~gate_time =
  if t1 <= 0. || t2 <= 0. || gate_time < 0. then
    invalid_arg "Noise.thermal: non-positive time";
  if t2 > 2. *. t1 +. 1e-12 then invalid_arg "Noise.thermal: T2 > 2 T1";
  let gamma = 1. -. exp (-.gate_time /. t1) in
  (* pure dephasing rate: 1/T_phi = 1/T2 - 1/(2 T1) *)
  let inv_tphi = (1. /. t2) -. (1. /. (2. *. t1)) in
  let lambda = 1. -. exp (-.gate_time *. inv_tphi *. 2.) in
  (gamma, Float.max 0. lambda)
