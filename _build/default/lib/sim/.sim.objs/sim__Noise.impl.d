lib/sim/noise.ml: Cmat Cx Float Linalg Qstate Stats
