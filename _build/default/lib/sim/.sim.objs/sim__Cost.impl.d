lib/sim/cost.ml: Circuit Format List
