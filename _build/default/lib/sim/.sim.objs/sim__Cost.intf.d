lib/sim/cost.mli: Circuit Format
