lib/sim/dm_engine.ml: Array Circuit Cost Density Gates Linalg List Noise Qstate
