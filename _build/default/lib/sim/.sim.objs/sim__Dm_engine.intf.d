lib/sim/dm_engine.mli: Circuit Cost Linalg Noise Qstate
