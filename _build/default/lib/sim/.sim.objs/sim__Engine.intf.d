lib/sim/engine.mli: Circuit Cost Linalg Noise Qstate Stats
