lib/sim/noise.mli: Linalg Qstate Stats
