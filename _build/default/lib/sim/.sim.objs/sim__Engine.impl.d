lib/sim/engine.ml: Array Circuit Cost Gates Hashtbl Lazy Linalg List Noise Option Pauli Qstate Statevec Stats
