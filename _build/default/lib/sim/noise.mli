(** Noise models for the density-matrix engine and trajectory sampling.

    Gates are followed by depolarizing channels; readout flips outcomes with
    a symmetric error probability. The [ibm_cairo] preset matches the device
    the paper quotes (99.45% single-qubit and 98.4% two-qubit fidelity). *)

type t = {
  p1 : float;  (** single-qubit depolarizing probability per gate *)
  p2 : float;  (** two-qubit depolarizing probability per gate *)
  readout : float;  (** probability of flipping a measured bit *)
}

val ideal : t
val ibm_cairo : t

(** [make ?p1 ?p2 ?readout ()] builds a custom model (defaults 0). *)
val make : ?p1:float -> ?p2:float -> ?readout:float -> unit -> t

val is_ideal : t -> bool

(** [kraus1 p] is the single-qubit depolarizing channel with probability [p]
    as four 2 x 2 Kraus operators. *)
val kraus1 : float -> Linalg.Cmat.t list

(** [sample_pauli rng p] draws [None] (no error, probability [1 - p]) or one
    of the three non-identity Paulis uniformly — the trajectory-sampling
    counterpart of {!kraus1}. *)
val sample_pauli : Stats.Rng.t -> float -> Qstate.Pauli.op option

(** [amplitude_damping gamma] is the T1 relaxation channel: [|1>] decays to
    [|0>] with probability [gamma]. *)
val amplitude_damping : float -> Linalg.Cmat.t list

(** [phase_damping lambda] is the pure-dephasing (T2) channel: off-diagonal
    coherence shrinks by [sqrt (1 - lambda)]. *)
val phase_damping : float -> Linalg.Cmat.t list

(** [thermal ~t1 ~t2 ~gate_time] converts device relaxation times into
    per-gate damping rates [(gamma, lambda)] with the standard
    [1/T2 = 1/(2 T1) + 1/T_phi] decomposition. Raises [Invalid_argument]
    when [t2 > 2 t1] (unphysical). *)
val thermal : t1:float -> t2:float -> gate_time:float -> float * float
