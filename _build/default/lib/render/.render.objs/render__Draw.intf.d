lib/render/draw.mli: Circuit Format
