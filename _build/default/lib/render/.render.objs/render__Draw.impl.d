lib/render/draw.ml: Array Buffer Circuit Format List Printf String
