(* Greedy slotting: walk instructions in order; an instruction goes into the
   first slot after the last slot used by any qubit it touches. Each slot is
   rendered as a fixed-width column per qubit. *)

type cell = Wire | Label of string

let gate_label (g : Circuit.Gate.t) =
  let base =
    match (g.Circuit.Gate.name, g.Circuit.Gate.params) with
    | name, [] -> String.uppercase_ascii name
    | name, [ a ] -> Printf.sprintf "%s(%.2g)" (String.uppercase_ascii name) a
    | name, _ -> String.uppercase_ascii name ^ "(..)"
  in
  base

let to_string c =
  let n = Circuit.num_qubits c in
  let last_slot = Array.make n (-1) in
  (* slots.(s).(q) : cell *)
  let slots : cell array list ref = ref [] in
  let slot_array = ref [||] in
  let ensure_slot s =
    while List.length !slots <= s do
      let fresh = Array.make n Wire in
      slots := !slots @ [ fresh ]
    done;
    slot_array := Array.of_list !slots;
    !slot_array.(s)
  in
  let place qubits fill =
    let s = 1 + List.fold_left (fun m q -> max m last_slot.(q)) (-1) qubits in
    let col = ensure_slot s in
    List.iter
      (fun q ->
        last_slot.(q) <- s;
        col.(q) <- fill q)
      qubits
  in
  List.iter
    (fun instr ->
      match instr with
      | Circuit.Instr.Gate g ->
          let label = gate_label g in
          place
            (Circuit.Gate.qubits g)
            (fun q ->
              if List.mem q g.Circuit.Gate.controls then Label "o"
              else if g.Circuit.Gate.name = "swap" then Label "x"
              else Label ("[" ^ label ^ "]"))
      | Circuit.Instr.Tracepoint { id; qubits } ->
          place qubits (fun _ -> Label (Printf.sprintf "T%d" id))
      | Circuit.Instr.Measure { qubit; clbit } ->
          place [ qubit ] (fun _ -> Label (Printf.sprintf "M->c%d" clbit))
      | Circuit.Instr.Reset q -> place [ q ] (fun _ -> Label "|0>")
      | Circuit.Instr.If_gate { clbits; value; gate } ->
          let cond =
            Printf.sprintf "?c%s=%d"
              (String.concat "," (List.map string_of_int clbits))
              value
          in
          place
            (Circuit.Gate.qubits gate)
            (fun q ->
              if List.mem q gate.Circuit.Gate.controls then Label "o"
              else Label ("[" ^ gate_label gate ^ cond ^ "]"))
      | Circuit.Instr.Barrier qs -> place qs (fun _ -> Label "|"))
    (Circuit.instrs c);
  let slots = Array.of_list !slots in
  let widths =
    Array.map
      (fun col ->
        Array.fold_left
          (fun w cell ->
            match cell with Wire -> w | Label l -> max w (String.length l))
          1 col)
      slots
  in
  let buf = Buffer.create 256 in
  for q = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "q%-2d: -" q);
    Array.iteri
      (fun s col ->
        let w = widths.(s) in
        let text = match col.(q) with Wire -> "" | Label l -> l in
        let pad = w - String.length text in
        let left = pad / 2 and right = pad - (pad / 2) in
        Buffer.add_string buf (String.make left '-');
        Buffer.add_string buf text;
        Buffer.add_string buf (String.make right '-');
        Buffer.add_string buf (if s = Array.length slots - 1 then "-" else "--"))
      slots;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let pp ppf c = Format.pp_print_string ppf (to_string c)
