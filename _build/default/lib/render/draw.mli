(** ASCII circuit diagrams.

    {[
      q0: -[H]--o-------T1--
      q1: ------X---o---T1--
      q2: ----------X---T1--
    ]}

    Gates are laid out greedily into time slots (two instructions share a
    slot when their qubit sets are disjoint); controls render as [o],
    targets as the gate label, measurements as [M->k], tracepoints as [Tn]
    spanning their qubits. *)

(** [to_string c] renders the circuit. *)
val to_string : Circuit.t -> string

(** [pp] — the same as a formatter. *)
val pp : Format.formatter -> Circuit.t -> unit
