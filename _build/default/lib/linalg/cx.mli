(** Small helpers over the standard library's [Complex.t]. *)

type t = Complex.t

val zero : t
val one : t
val i : t

(** [make re im] builds a complex number from its parts. *)
val make : float -> float -> t

(** [re z] is the real part of [z]. *)
val re : t -> float

(** [im z] is the imaginary part of [z]. *)
val im : t -> float

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t

(** [conj z] is the complex conjugate of [z]. *)
val conj : t -> t

(** [scale c z] multiplies [z] by the real scalar [c]. *)
val scale : float -> t -> t

(** [norm z] is the modulus |z|. *)
val norm : t -> float

(** [norm2 z] is the squared modulus |z|^2. *)
val norm2 : t -> float

(** [arg z] is the argument (phase) of [z] in (-pi, pi]. *)
val arg : t -> float

(** [polar r theta] is [r * exp(i * theta)]. *)
val polar : float -> float -> t

(** [exp_i theta] is [exp(i * theta)]. *)
val exp_i : float -> t

(** [of_float x] embeds a real number. *)
val of_float : float -> t

(** [equal ~eps a b] holds when both parts differ by at most [eps]. *)
val equal : ?eps:float -> t -> t -> bool

(** Pretty-printer in the form [a+bi]. *)
val pp : Format.formatter -> t -> unit
