(** Eigendecomposition of complex Hermitian matrices via the cyclic Jacobi
    method, plus spectral-function helpers used throughout the quantum
    substrate. *)

(** [hermitian a] returns [(w, v)] where [w] holds the eigenvalues of the
    Hermitian matrix [a] in ascending order and the columns of [v] are the
    corresponding orthonormal eigenvectors, so that [a = v * diag w * adjoint v].
    The matrix is symmetrized first; a non-square input raises
    [Invalid_argument]. *)
val hermitian : Cmat.t -> float array * Cmat.t

(** [funm f a] applies the real function [f] to the spectrum of the Hermitian
    matrix [a]: [funm f a = v * diag (f w) * adjoint v]. *)
val funm : (float -> float) -> Cmat.t -> Cmat.t

(** [sqrtm_psd a] is the principal square root of a positive semi-definite
    Hermitian matrix. Slightly negative eigenvalues (numerical noise) are
    clamped to zero. *)
val sqrtm_psd : Cmat.t -> Cmat.t

(** [project_psd ?unit_trace a] projects a Hermitian matrix onto the positive
    semi-definite cone by clipping negative eigenvalues. When [unit_trace] is
    true (default) the result is renormalized to trace one, which makes it a
    valid density matrix. *)
val project_psd : ?unit_trace:bool -> Cmat.t -> Cmat.t

(** [max_eigenvalue a] is the largest eigenvalue of the Hermitian matrix [a]. *)
val max_eigenvalue : Cmat.t -> float
