let dim n = n * n

let sqrt2 = sqrt 2.

let encode a =
  let n, nc = Cmat.dims a in
  if n <> nc then invalid_arg "Hsvec.encode: non-square";
  let h = Cmat.hermitize a in
  let v = Array.make (dim n) 0. in
  let k = ref 0 in
  for i = 0 to n - 1 do
    v.(!k) <- Cx.re (Cmat.get h i i);
    incr k
  done;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let z = Cmat.get h i j in
      v.(!k) <- sqrt2 *. Cx.re z;
      v.(!k + 1) <- sqrt2 *. Cx.im z;
      k := !k + 2
    done
  done;
  v

let decode n v =
  if Array.length v <> dim n then invalid_arg "Hsvec.decode: bad length";
  let a = Cmat.create n n in
  for i = 0 to n - 1 do
    Cmat.set a i i (Cx.of_float v.(i))
  done;
  let k = ref n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let re = v.(!k) /. sqrt2 and im = v.(!k + 1) /. sqrt2 in
      Cmat.set a i j (Cx.make re im);
      Cmat.set a j i (Cx.make re (-.im));
      k := !k + 2
    done
  done;
  a
