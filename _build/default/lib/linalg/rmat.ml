type t = { rows : int; cols : int; a : float array }

let create rows cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Rmat.create: non-positive dims";
  { rows; cols; a = Array.make (rows * cols) 0. }

let init rows cols f =
  let m = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.a.((i * cols) + j) <- f i j
    done
  done;
  m

let identity n = init n n (fun i j -> if i = j then 1. else 0.)

let of_lists rows =
  match rows with
  | [] -> invalid_arg "Rmat.of_lists: empty"
  | r0 :: _ ->
      let nr = List.length rows and nc = List.length r0 in
      let arr = Array.of_list (List.map Array.of_list rows) in
      Array.iter
        (fun r ->
          if Array.length r <> nc then invalid_arg "Rmat.of_lists: ragged rows")
        arr;
      init nr nc (fun i j -> arr.(i).(j))

let dims m = (m.rows, m.cols)
let get m i j = m.a.((i * m.cols) + j)
let set m i j x = m.a.((i * m.cols) + j) <- x
let copy m = { m with a = Array.copy m.a }

let map2 f x y =
  if x.rows <> y.rows || x.cols <> y.cols then
    invalid_arg "Rmat: dimension mismatch";
  { x with a = Array.init (Array.length x.a) (fun k -> f x.a.(k) y.a.(k)) }

let add = map2 ( +. )
let sub = map2 ( -. )
let scale c m = { m with a = Array.map (( *. ) c) m.a }

let mul x y =
  if x.cols <> y.rows then invalid_arg "Rmat.mul: dimension mismatch";
  let z = create x.rows y.cols in
  for i = 0 to x.rows - 1 do
    for k = 0 to x.cols - 1 do
      let xv = x.a.((i * x.cols) + k) in
      if xv <> 0. then
        for j = 0 to y.cols - 1 do
          z.a.((i * z.cols) + j) <-
            z.a.((i * z.cols) + j) +. (xv *. y.a.((k * y.cols) + j))
        done
    done
  done;
  z

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let apply m x =
  if Array.length x <> m.cols then invalid_arg "Rmat.apply: dimension mismatch";
  Array.init m.rows (fun i ->
      let s = ref 0. in
      for j = 0 to m.cols - 1 do
        s := !s +. (get m i j *. x.(j))
      done;
      !s)

let solve m b =
  if m.rows <> m.cols then invalid_arg "Rmat.solve: non-square";
  if Array.length b <> m.rows then invalid_arg "Rmat.solve: dimension mismatch";
  let n = m.rows in
  let a = copy m in
  let x = Array.copy b in
  for k = 0 to n - 1 do
    (* partial pivot *)
    let piv = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs (get a i k) > Float.abs (get a !piv k) then piv := i
    done;
    if Float.abs (get a !piv k) < 1e-300 then failwith "Rmat.solve: singular matrix";
    if !piv <> k then begin
      for j = 0 to n - 1 do
        let t = get a k j in
        set a k j (get a !piv j);
        set a !piv j t
      done;
      let t = x.(k) in
      x.(k) <- x.(!piv);
      x.(!piv) <- t
    end;
    for i = k + 1 to n - 1 do
      let f = get a i k /. get a k k in
      if f <> 0. then begin
        for j = k to n - 1 do
          set a i j (get a i j -. (f *. get a k j))
        done;
        x.(i) <- x.(i) -. (f *. x.(k))
      end
    done
  done;
  for i = n - 1 downto 0 do
    let s = ref x.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (get a i j *. x.(j))
    done;
    x.(i) <- !s /. get a i i
  done;
  x

let cholesky m =
  if m.rows <> m.cols then invalid_arg "Rmat.cholesky: non-square";
  let n = m.rows in
  let l = create n n in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let s = ref (get m i j) in
      for k = 0 to j - 1 do
        s := !s -. (get l i k *. get l j k)
      done;
      if i = j then begin
        if !s <= 0. then failwith "Rmat.cholesky: not positive definite";
        set l i i (sqrt !s)
      end
      else set l i j (!s /. get l j j)
    done
  done;
  l

let solve_spd m b =
  let l = cholesky m in
  let n = m.rows in
  let y = Array.make n 0. in
  for i = 0 to n - 1 do
    let s = ref b.(i) in
    for k = 0 to i - 1 do
      s := !s -. (get l i k *. y.(k))
    done;
    y.(i) <- !s /. get l i i
  done;
  let x = Array.make n 0. in
  for i = n - 1 downto 0 do
    let s = ref y.(i) in
    for k = i + 1 to n - 1 do
      s := !s -. (get l k i *. x.(k))
    done;
    x.(i) <- !s /. get l i i
  done;
  x

let lstsq ?(ridge = 1e-10) m b =
  let at = transpose m in
  let ata = mul at m in
  let n = ata.rows in
  for i = 0 to n - 1 do
    set ata i i (get ata i i +. ridge)
  done;
  let atb = apply at b in
  try solve_spd ata atb with Failure _ -> solve ata atb

let lstsq_solver ?(ridge = 1e-10) m =
  let at = transpose m in
  let ata = mul at m in
  let n = ata.rows in
  for i = 0 to n - 1 do
    set ata i i (get ata i i +. ridge)
  done;
  match cholesky ata with
  | l ->
      fun b ->
        let atb = apply at b in
        (* forward/back substitution against the cached factor *)
        let y = Array.make n 0. in
        for i = 0 to n - 1 do
          let s = ref atb.(i) in
          for k = 0 to i - 1 do
            s := !s -. (get l i k *. y.(k))
          done;
          y.(i) <- !s /. get l i i
        done;
        let x = Array.make n 0. in
        for i = n - 1 downto 0 do
          let s = ref y.(i) in
          for k = i + 1 to n - 1 do
            s := !s -. (get l k i *. x.(k))
          done;
          x.(i) <- !s /. get l i i
        done;
        x
  | exception Failure _ -> fun b -> solve ata (apply at b)

let equal ?(eps = 1e-12) x y =
  x.rows = y.rows && x.cols = y.cols
  && Array.for_all2 (fun a b -> Float.abs (a -. b) <= eps) x.a y.a

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "@[<h>";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf "  ";
      Format.fprintf ppf "%g" (get m i j)
    done;
    Format.fprintf ppf "@]";
    if i < m.rows - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
