(** Isometric vectorization of Hermitian matrices.

    An [n] x [n] Hermitian matrix is encoded as a real vector of length [n^2]
    (the diagonal, then sqrt(2)-scaled real and imaginary parts of the strict
    upper triangle). The encoding preserves the Hilbert-Schmidt inner product:
    [dot (encode a) (encode b) = Re (Cmat.hs_inner a b)], which lets the
    isomorphism-based approximation solve its decomposition as an ordinary
    real least-squares problem. *)

(** [dim n] is the real dimension [n * n] of the encoding of [n] x [n]
    Hermitian matrices. *)
val dim : int -> int

(** [encode a] vectorizes the Hermitian part of [a]. *)
val encode : Cmat.t -> float array

(** [decode n v] reconstructs the [n] x [n] Hermitian matrix encoded in [v]. *)
val decode : int -> float array -> Cmat.t
