(** Dense real matrices and linear solvers (LU with partial pivoting,
    Cholesky, ridge-regularized least squares). *)

type t = private { rows : int; cols : int; a : float array }

val create : int -> int -> t
val init : int -> int -> (int -> int -> float) -> t
val identity : int -> t
val of_lists : float list list -> t
val dims : t -> int * int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val copy : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val mul : t -> t -> t
val transpose : t -> t

(** [apply a x] is the matrix-vector product. *)
val apply : t -> float array -> float array

(** [solve a b] solves the square system [a x = b] by LU decomposition with
    partial pivoting. Raises [Failure] when [a] is singular. *)
val solve : t -> float array -> float array

(** [cholesky a] returns the lower-triangular factor [l] with [a = l * l^T] of
    a symmetric positive-definite matrix. Raises [Failure] when [a] is not
    positive definite. *)
val cholesky : t -> t

(** [solve_spd a b] solves a symmetric positive-definite system via Cholesky. *)
val solve_spd : t -> float array -> float array

(** [lstsq ?ridge a b] returns the minimizer of [||a x - b||^2 + ridge ||x||^2]
    via the (regularized) normal equations. [ridge] defaults to [1e-10], which
    keeps the normal equations well-posed for rank-deficient sampling sets. *)
val lstsq : ?ridge:float -> t -> float array -> float array

(** [lstsq_solver ?ridge a] factorizes the normal equations once and returns
    a fast solver [b -> x] for repeated right-hand sides (the hot path of the
    isomorphism-based approximation). *)
val lstsq_solver : ?ridge:float -> t -> float array -> float array

val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
