(** Dense complex vectors stored as split real/imaginary float arrays. *)

type t = private { n : int; re : float array; im : float array }

(** [create n] is the zero vector of dimension [n]. *)
val create : int -> t

(** [init n f] builds a vector whose [k]-th entry is [f k]. *)
val init : int -> (int -> Cx.t) -> t

(** [of_arrays re im] wraps two equal-length component arrays (copied). *)
val of_arrays : float array -> float array -> t

(** [of_list l] builds a vector from a list of complex entries. *)
val of_list : Cx.t list -> t

(** [basis n k] is the [k]-th computational basis vector of dimension [n]. *)
val basis : int -> int -> t

val dim : t -> int
val get : t -> int -> Cx.t
val set : t -> int -> Cx.t -> unit
val copy : t -> t
val add : t -> t -> t
val sub : t -> t -> t

(** [scale c v] multiplies every entry by the complex scalar [c]. *)
val scale : Cx.t -> t -> t

(** [rscale c v] multiplies every entry by the real scalar [c]. *)
val rscale : float -> t -> t

(** [dot u v] is the Hermitian inner product [sum_k conj(u_k) * v_k]. *)
val dot : t -> t -> Cx.t

(** [norm v] is the Euclidean norm. *)
val norm : t -> float

(** [normalize v] rescales [v] to unit norm. Raises [Invalid_argument] on the
    zero vector. *)
val normalize : t -> t

(** [kron u v] is the tensor (Kronecker) product of [u] and [v]. *)
val kron : t -> t -> t

(** [equal ~eps u v] holds when entries agree within [eps]. *)
val equal : ?eps:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
