type t = Complex.t

let zero = Complex.zero
let one = Complex.one
let i = Complex.i
let make re im : t = { Complex.re; im }
let re (z : t) = z.Complex.re
let im (z : t) = z.Complex.im
let add = Complex.add
let sub = Complex.sub
let mul = Complex.mul
let div = Complex.div
let neg = Complex.neg
let conj = Complex.conj
let scale c (z : t) : t = { Complex.re = c *. z.Complex.re; im = c *. z.Complex.im }
let norm = Complex.norm
let norm2 = Complex.norm2
let arg = Complex.arg
let polar = Complex.polar
let exp_i theta : t = { Complex.re = cos theta; im = sin theta }
let of_float x : t = { Complex.re = x; im = 0. }

let equal ?(eps = 1e-12) (a : t) (b : t) =
  Float.abs (a.Complex.re -. b.Complex.re) <= eps
  && Float.abs (a.Complex.im -. b.Complex.im) <= eps

let pp ppf (z : t) =
  if z.Complex.im >= 0. then Format.fprintf ppf "%g+%gi" z.Complex.re z.Complex.im
  else Format.fprintf ppf "%g-%gi" z.Complex.re (-.z.Complex.im)
