lib/linalg/eig.mli: Cmat
