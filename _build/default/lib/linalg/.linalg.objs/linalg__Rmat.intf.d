lib/linalg/rmat.mli: Format
