lib/linalg/cvec.mli: Cx Format
