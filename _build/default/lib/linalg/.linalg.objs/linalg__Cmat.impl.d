lib/linalg/cmat.ml: Array Complex Cvec Cx Float Format List
