lib/linalg/hsvec.ml: Array Cmat Cx
