lib/linalg/rmat.ml: Array Float Format List
