lib/linalg/cvec.ml: Array Cx Float Format
