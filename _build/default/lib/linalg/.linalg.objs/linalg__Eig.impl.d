lib/linalg/eig.ml: Array Cmat Cx Float
