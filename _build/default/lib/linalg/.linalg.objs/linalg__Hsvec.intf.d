lib/linalg/hsvec.mli: Cmat
