(* Cyclic Jacobi for complex Hermitian matrices. Each rotation first removes
   the phase of the pivot entry a_pq (a diagonal unitary touching column q),
   then applies the classical real Jacobi rotation that annihilates the now
   real pivot. Eigenvectors are accumulated in [v].

   This is the numerical hot path of the whole library (PSD projections run
   inside verification objectives), so the kernels below work directly on
   the split re/im arrays rather than through boxed complex accessors. *)

let off_diagonal_norm2 re im n =
  let s = ref 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let k = (i * n) + j in
        s := !s +. (re.(k) *. re.(k)) +. (im.(k) *. im.(k))
      end
    done
  done;
  !s

(* column q *= (pr + i pi); operating on an n x n row-major matrix *)
let scale_col re im n q pr pi =
  for k = 0 to n - 1 do
    let idx = (k * n) + q in
    let r = re.(idx) and i = im.(idx) in
    re.(idx) <- (r *. pr) -. (i *. pi);
    im.(idx) <- (r *. pi) +. (i *. pr)
  done

let scale_row re im n q pr pi =
  let base = q * n in
  for k = 0 to n - 1 do
    let idx = base + k in
    let r = re.(idx) and i = im.(idx) in
    re.(idx) <- (r *. pr) -. (i *. pi);
    im.(idx) <- (r *. pi) +. (i *. pr)
  done

(* real Givens rotation on columns (p, q): col_p' = c col_p - s col_q,
   col_q' = s col_p + c col_q *)
let rotate_cols re im n p q c s =
  for k = 0 to n - 1 do
    let ip = (k * n) + p and iq = (k * n) + q in
    let pr = re.(ip) and pi = im.(ip) in
    let qr = re.(iq) and qi = im.(iq) in
    re.(ip) <- (c *. pr) -. (s *. qr);
    im.(ip) <- (c *. pi) -. (s *. qi);
    re.(iq) <- (s *. pr) +. (c *. qr);
    im.(iq) <- (s *. pi) +. (c *. qi)
  done

let rotate_rows re im n p q c s =
  let bp = p * n and bq = q * n in
  for k = 0 to n - 1 do
    let ip = bp + k and iq = bq + k in
    let pr = re.(ip) and pi = im.(ip) in
    let qr = re.(iq) and qi = im.(iq) in
    re.(ip) <- (c *. pr) -. (s *. qr);
    im.(ip) <- (c *. pi) -. (s *. qi);
    re.(iq) <- (s *. pr) +. (c *. qr);
    im.(iq) <- (s *. pi) +. (c *. qi)
  done

let hermitian a0 =
  let n, nc = Cmat.dims a0 in
  if n <> nc then invalid_arg "Eig.hermitian: non-square";
  let h = Cmat.hermitize a0 in
  let are = Array.copy h.Cmat.re and aim = Array.copy h.Cmat.im in
  let vre = Array.make (n * n) 0. and vim = Array.make (n * n) 0. in
  for i = 0 to n - 1 do
    vre.((i * n) + i) <- 1.
  done;
  let scale = Cmat.frob_norm h +. 1e-300 in
  let tol2 = 1e-13 *. scale *. (1e-13 *. scale) in
  let max_sweeps = 100 in
  let sweep = ref 0 in
  while off_diagonal_norm2 are aim n > tol2 && !sweep < max_sweeps do
    incr sweep;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        let idx_pq = (p * n) + q in
        let rr = are.(idx_pq) and ri = aim.(idx_pq) in
        let r = sqrt ((rr *. rr) +. (ri *. ri)) in
        if r > 1e-300 then begin
          (* remove the phase: col q *= conj(alpha), row q *= alpha *)
          let pr = rr /. r and pi = ri /. r in
          scale_col are aim n q pr (-.pi);
          scale_row are aim n q pr pi;
          scale_col vre vim n q pr (-.pi);
          (* now a_pq is real = r; classical Jacobi angle *)
          let app = are.((p * n) + p) and aqq = are.((q * n) + q) in
          let tau = (aqq -. app) /. (2. *. r) in
          let t =
            if tau >= 0. then 1. /. (tau +. sqrt ((tau *. tau) +. 1.))
            else -1. /. (-.tau +. sqrt ((tau *. tau) +. 1.))
          in
          let c = 1. /. sqrt ((t *. t) +. 1.) in
          let s = t *. c in
          rotate_cols are aim n p q c s;
          rotate_rows are aim n p q c s;
          rotate_cols vre vim n p q c s
        end
      done
    done
  done;
  let w = Array.init n (fun i -> are.((i * n) + i)) in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare w.(i) w.(j)) order;
  let w_sorted = Array.map (fun i -> w.(i)) order in
  let v_sorted =
    Cmat.init n n (fun i j ->
        let src = (i * n) + order.(j) in
        Cx.make vre.(src) vim.(src))
  in
  (w_sorted, v_sorted)

let funm f a =
  let w, v = hermitian a in
  let n = Array.length w in
  let d =
    Cmat.init n n (fun i j -> if i = j then Cx.of_float (f w.(i)) else Cx.zero)
  in
  Cmat.mul3 v d (Cmat.adjoint v)

let sqrtm_psd a = funm (fun x -> sqrt (Float.max x 0.)) a

let project_psd ?(unit_trace = true) a =
  let clipped = funm (fun x -> Float.max x 0.) (Cmat.hermitize a) in
  if not unit_trace then clipped
  else
    let t = Cx.re (Cmat.trace clipped) in
    if t <= 1e-14 then
      (* fully clipped: fall back to the maximally mixed state *)
      Cmat.rscale
        (1. /. float_of_int (fst (Cmat.dims a)))
        (Cmat.identity (fst (Cmat.dims a)))
    else Cmat.rscale (1. /. t) clipped

let max_eigenvalue a =
  let w, _ = hermitian a in
  w.(Array.length w - 1)
