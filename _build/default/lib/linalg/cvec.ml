type t = { n : int; re : float array; im : float array }

let create n = { n; re = Array.make n 0.; im = Array.make n 0. }

let init n f =
  let v = create n in
  for k = 0 to n - 1 do
    let z = f k in
    v.re.(k) <- Cx.re z;
    v.im.(k) <- Cx.im z
  done;
  v

let of_arrays re im =
  if Array.length re <> Array.length im then
    invalid_arg "Cvec.of_arrays: length mismatch";
  { n = Array.length re; re = Array.copy re; im = Array.copy im }

let of_list l =
  let a = Array.of_list l in
  init (Array.length a) (fun k -> a.(k))

let basis n k =
  if k < 0 || k >= n then invalid_arg "Cvec.basis: index out of range";
  let v = create n in
  v.re.(k) <- 1.;
  v

let dim v = v.n
let get v k = Cx.make v.re.(k) v.im.(k)

let set v k z =
  v.re.(k) <- Cx.re z;
  v.im.(k) <- Cx.im z

let copy v = { n = v.n; re = Array.copy v.re; im = Array.copy v.im }

let map2 f g u v =
  if u.n <> v.n then invalid_arg "Cvec: dimension mismatch";
  {
    n = u.n;
    re = Array.init u.n (fun k -> f u.re.(k) v.re.(k));
    im = Array.init u.n (fun k -> g u.im.(k) v.im.(k));
  }

let add = map2 ( +. ) ( +. )
let sub = map2 ( -. ) ( -. )

let scale c v =
  let cr = Cx.re c and ci = Cx.im c in
  {
    n = v.n;
    re = Array.init v.n (fun k -> (cr *. v.re.(k)) -. (ci *. v.im.(k)));
    im = Array.init v.n (fun k -> (cr *. v.im.(k)) +. (ci *. v.re.(k)));
  }

let rscale c v =
  {
    n = v.n;
    re = Array.map (( *. ) c) v.re;
    im = Array.map (( *. ) c) v.im;
  }

let dot u v =
  if u.n <> v.n then invalid_arg "Cvec.dot: dimension mismatch";
  let re = ref 0. and im = ref 0. in
  for k = 0 to u.n - 1 do
    (* conj(u_k) * v_k *)
    re := !re +. (u.re.(k) *. v.re.(k)) +. (u.im.(k) *. v.im.(k));
    im := !im +. (u.re.(k) *. v.im.(k)) -. (u.im.(k) *. v.re.(k))
  done;
  Cx.make !re !im

let norm v =
  let s = ref 0. in
  for k = 0 to v.n - 1 do
    s := !s +. (v.re.(k) *. v.re.(k)) +. (v.im.(k) *. v.im.(k))
  done;
  sqrt !s

let normalize v =
  let nv = norm v in
  if nv <= 0. then invalid_arg "Cvec.normalize: zero vector";
  rscale (1. /. nv) v

let kron u v =
  let n = u.n * v.n in
  let w = create n in
  for a = 0 to u.n - 1 do
    for b = 0 to v.n - 1 do
      let re = (u.re.(a) *. v.re.(b)) -. (u.im.(a) *. v.im.(b)) in
      let im = (u.re.(a) *. v.im.(b)) +. (u.im.(a) *. v.re.(b)) in
      w.re.((a * v.n) + b) <- re;
      w.im.((a * v.n) + b) <- im
    done
  done;
  w

let equal ?(eps = 1e-12) u v =
  u.n = v.n
  &&
  let ok = ref true in
  for k = 0 to u.n - 1 do
    if
      Float.abs (u.re.(k) -. v.re.(k)) > eps
      || Float.abs (u.im.(k) -. v.im.(k)) > eps
    then ok := false
  done;
  !ok

let pp ppf v =
  Format.fprintf ppf "[@[";
  for k = 0 to v.n - 1 do
    if k > 0 then Format.fprintf ppf ";@ ";
    Cx.pp ppf (get v k)
  done;
  Format.fprintf ppf "@]]"
