(** Descriptive statistics helpers used across experiments. *)

val mean : float array -> float
val variance : float array -> float
val stddev : float array -> float
val min : float array -> float
val max : float array -> float

(** [median xs] for a non-empty array (does not mutate its argument). *)
val median : float array -> float

(** [percentile xs p] is the [p]-th percentile (0-100, linear interpolation). *)
val percentile : float array -> float -> float

(** [histogram ~bins ~lo ~hi xs] counts values into [bins] equal-width bins
    over [lo, hi); out-of-range values are clamped into the edge bins. *)
val histogram : bins:int -> lo:float -> hi:float -> float array -> int array
