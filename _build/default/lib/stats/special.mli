(** Special functions needed by the Beta-distribution confidence model. *)

(** [lgamma x] is the natural log of the Gamma function for [x > 0]
    (Lanczos approximation, ~15 significant digits). *)
val lgamma : float -> float

(** [lbeta a b] is [log (Beta (a, b))]. *)
val lbeta : float -> float -> float

(** [betainc a b x] is the regularized incomplete beta function I_x(a, b)
    for [a, b > 0] and [x] in [0, 1] (continued-fraction evaluation). *)
val betainc : float -> float -> float -> float

(** [erf x] is the Gauss error function (Abramowitz-Stegun 7.1.26, ~1e-7). *)
val erf : float -> float
