(* Lanczos approximation with g = 7, n = 9 coefficients. *)
let lanczos =
  [|
    0.99999999999980993;
    676.5203681218851;
    -1259.1392167224028;
    771.32342877765313;
    -176.61502916214059;
    12.507343278686905;
    -0.13857109526572012;
    9.9843695780195716e-6;
    1.5056327351493116e-7;
  |]

let rec lgamma x =
  if x <= 0. then invalid_arg "Special.lgamma: non-positive argument"
  else if x < 0.5 then
    (* reflection formula *)
    log (Float.pi /. sin (Float.pi *. x)) -. lgamma (1. -. x)
  else
    let x = x -. 1. in
    let a = ref lanczos.(0) in
    let t = x +. 7.5 in
    for i = 1 to 8 do
      a := !a +. (lanczos.(i) /. (x +. float_of_int i))
    done;
    (0.5 *. log (2. *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a

let lbeta a b = lgamma a +. lgamma b -. lgamma (a +. b)

(* Continued fraction for the incomplete beta function (Numerical Recipes
   betacf), using the modified Lentz method. *)
let betacf a b x =
  let max_iter = 300 and eps = 3e-14 and fpmin = 1e-300 in
  let qab = a +. b and qap = a +. 1. and qam = a -. 1. in
  let c = ref 1. in
  let d = ref (1. -. (qab *. x /. qap)) in
  if Float.abs !d < fpmin then d := fpmin;
  d := 1. /. !d;
  let h = ref !d in
  (try
     for m = 1 to max_iter do
       let mf = float_of_int m in
       let m2 = 2. *. mf in
       let aa = mf *. (b -. mf) *. x /. ((qam +. m2) *. (a +. m2)) in
       d := 1. +. (aa *. !d);
       if Float.abs !d < fpmin then d := fpmin;
       c := 1. +. (aa /. !c);
       if Float.abs !c < fpmin then c := fpmin;
       d := 1. /. !d;
       h := !h *. !d *. !c;
       let aa = -.(a +. mf) *. (qab +. mf) *. x /. ((a +. m2) *. (qap +. m2)) in
       d := 1. +. (aa *. !d);
       if Float.abs !d < fpmin then d := fpmin;
       c := 1. +. (aa /. !c);
       if Float.abs !c < fpmin then c := fpmin;
       d := 1. /. !d;
       let del = !d *. !c in
       h := !h *. del;
       if Float.abs (del -. 1.) < eps then raise Exit
     done
   with Exit -> ());
  !h

let betainc a b x =
  if a <= 0. || b <= 0. then invalid_arg "Special.betainc: non-positive shape";
  if x <= 0. then 0.
  else if x >= 1. then 1.
  else
    let front = exp ((a *. log x) +. (b *. log (1. -. x)) -. lbeta a b) in
    if x < (a +. 1.) /. (a +. b +. 2.) then front *. betacf a b x /. a
    else 1. -. (front *. betacf b a (1. -. x) /. b)

let erf x =
  let sign = if x < 0. then -1. else 1. in
  let x = Float.abs x in
  let t = 1. /. (1. +. (0.3275911 *. x)) in
  let y =
    1.
    -. ((((((1.061405429 *. t) -. 1.453152027) *. t) +. 1.421413741) *. t
         -. 0.284496736)
        *. t
       +. 0.254829592)
       *. t
       *. exp (-.(x *. x))
  in
  sign *. y
