let nonempty name xs =
  if Array.length xs = 0 then invalid_arg ("Describe." ^ name ^ ": empty array")

let mean xs =
  nonempty "mean" xs;
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let variance xs =
  nonempty "variance" xs;
  let m = mean xs in
  let n = float_of_int (Array.length xs) in
  Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs
  /. Float.max 1. (n -. 1.)

let stddev xs = sqrt (variance xs)

let min xs =
  nonempty "min" xs;
  Array.fold_left Float.min xs.(0) xs

let max xs =
  nonempty "max" xs;
  Array.fold_left Float.max xs.(0) xs

let percentile xs p =
  nonempty "percentile" xs;
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let median xs = percentile xs 50.

let histogram ~bins ~lo ~hi xs =
  if bins <= 0 then invalid_arg "Describe.histogram: non-positive bins";
  if hi <= lo then invalid_arg "Describe.histogram: empty range";
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  Array.iter
    (fun x ->
      let b = int_of_float (Float.floor ((x -. lo) /. width)) in
      let b = Stdlib.max 0 (Stdlib.min (bins - 1) b) in
      counts.(b) <- counts.(b) + 1)
    xs;
  counts
