(** The Beta distribution B(b1, b2) used by MorphQPV's confidence model
    (Section 6.2 of the paper): approximation accuracies across inputs are
    modelled as Beta-distributed, and the verification confidence is
    [1 - P(acc < epsilon)]. *)

type t = { b1 : float; b2 : float }

(** [make b1 b2] builds a distribution; raises [Invalid_argument] unless both
    shapes are positive. *)
val make : float -> float -> t

val mean : t -> float
val variance : t -> float

(** [pdf d x] is the probability density at [x] in (0, 1). *)
val pdf : t -> float -> float

(** [cdf d x] is [P(X <= x)], the regularized incomplete beta I_x(b1, b2). *)
val cdf : t -> float -> float

(** [sample d rng] draws one variate. *)
val sample : t -> Rng.t -> float

(** [fit_moments ~mean ~variance] recovers shapes by the method of moments.
    The variance is clamped to the feasible open interval for the given mean. *)
val fit_moments : mean:float -> variance:float -> t

(** [fit samples] fits by the method of moments to empirical data in [0, 1].
    Values are clipped away from the boundary first. *)
val fit : float array -> t

(** [fit_pinned_mean ~mean samples] fits shapes whose mean is pinned to the
    theoretical value from Theorem 2 while matching the empirical variance,
    mirroring the paper's characterization of (b1, b2). *)
val fit_pinned_mean : mean:float -> float array -> t

val pp : Format.formatter -> t -> unit
