lib/stats/special.mli:
