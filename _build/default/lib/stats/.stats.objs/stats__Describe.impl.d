lib/stats/describe.ml: Array Float Stdlib
