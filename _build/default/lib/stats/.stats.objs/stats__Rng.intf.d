lib/stats/rng.mli:
