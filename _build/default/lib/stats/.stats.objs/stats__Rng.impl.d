lib/stats/rng.ml: Array Float Random Stdlib
