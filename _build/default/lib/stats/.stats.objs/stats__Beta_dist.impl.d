lib/stats/beta_dist.ml: Array Float Format Rng Special
