lib/stats/beta_dist.mli: Format Rng
