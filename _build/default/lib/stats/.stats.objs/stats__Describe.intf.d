lib/stats/describe.mli:
