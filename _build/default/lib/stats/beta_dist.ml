type t = { b1 : float; b2 : float }

let make b1 b2 =
  if b1 <= 0. || b2 <= 0. then invalid_arg "Beta_dist.make: non-positive shape";
  { b1; b2 }

let mean d = d.b1 /. (d.b1 +. d.b2)

let variance d =
  let s = d.b1 +. d.b2 in
  d.b1 *. d.b2 /. (s *. s *. (s +. 1.))

let pdf d x =
  if x <= 0. || x >= 1. then 0.
  else
    exp
      (((d.b1 -. 1.) *. log x)
      +. ((d.b2 -. 1.) *. log (1. -. x))
      -. Special.lbeta d.b1 d.b2)

let cdf d x = Special.betainc d.b1 d.b2 x
let sample d rng = Rng.beta rng ~a:d.b1 ~b:d.b2

let clamp_mean m = Float.min 0.999 (Float.max 0.001 m)

let fit_moments ~mean ~variance =
  let m = clamp_mean mean in
  let vmax = m *. (1. -. m) in
  let v = Float.min (0.999 *. vmax) (Float.max 1e-8 variance) in
  let common = (m *. (1. -. m) /. v) -. 1. in
  make (Float.max 1e-3 (m *. common)) (Float.max 1e-3 ((1. -. m) *. common))

let moments samples =
  let n = float_of_int (Array.length samples) in
  if n < 1. then invalid_arg "Beta_dist.fit: empty sample";
  let clip x = Float.min 0.9999 (Float.max 0.0001 x) in
  let xs = Array.map clip samples in
  let mean = Array.fold_left ( +. ) 0. xs /. n in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) *. (x -. mean))) 0. xs
    /. Float.max 1. (n -. 1.)
  in
  (mean, var)

let fit samples =
  let mean, var = moments samples in
  fit_moments ~mean ~variance:var

let fit_pinned_mean ~mean samples =
  let _, var = moments samples in
  fit_moments ~mean ~variance:var

let pp ppf d = Format.fprintf ppf "Beta(%.4g, %.4g)" d.b1 d.b2
