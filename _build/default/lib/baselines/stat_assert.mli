(** Statistical assertions (Huang & Martonosi, ISCA 2019; paper baseline
    "Stat"): chi-square tests on the measured output distribution against an
    expected distribution. Amplitude-only — phases are invisible. *)

(** [chi_square ~expected ~counts ~shots] is the chi-square statistic of
    observed counts against an expected distribution. *)
val chi_square : expected:float array -> counts:(int * int) list -> shots:int -> float

(** [check ?rng ?shots ?significance ~expected program ~input ()] measures
    the program on one basis input and tests the output distribution.
    Returns [true] when the assertion HOLDS (distribution consistent). *)
val check :
  ?rng:Stats.Rng.t ->
  ?shots:int ->
  ?significance:float ->
  expected:float array ->
  Morphcore.Program.t ->
  input:int ->
  unit ->
  bool * Verifier.result
