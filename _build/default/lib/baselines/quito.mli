(** Quito-style coverage-guided testing (Wang et al., ASE 2021; paper
    baseline).

    Grid search over computational-basis inputs: run reference and candidate
    with a fixed shot budget and flag a bug when the measured output
    distributions differ by more than the shot-noise threshold. Only
    probability distributions are compared, so phase-only defects are
    invisible. *)

(** [check ?rng ?shots ?threshold ~tests ~reference ~candidate ()] tests up
    to [tests] basis inputs (stopping early on detection). The threshold is
    total-variation distance; default scales as [3 / sqrt shots]. *)
val check :
  ?rng:Stats.Rng.t ->
  ?shots:int ->
  ?threshold:float ->
  tests:int ->
  reference:Morphcore.Program.t ->
  candidate:Morphcore.Program.t ->
  unit ->
  Verifier.result

(** [executions_to_find ?rng ?limit ~reference ~candidate ()] counts how
    many basis inputs the grid search needs before the first detection
    (capped by [limit]; compares exact output distributions, the
    infinite-shot idealization used in the Figure 7/10 sweeps). Returns
    [None] if the bug is never detectable this way. *)
val executions_to_find :
  ?rng:Stats.Rng.t ->
  ?limit:int ->
  reference:Morphcore.Program.t ->
  candidate:Morphcore.Program.t ->
  unit ->
  int option
