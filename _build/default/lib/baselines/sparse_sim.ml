open Linalg

type t = { n : int; amps : (int, Cx.t) Hashtbl.t }

let cutoff = 1e-12

let basis n k =
  let amps = Hashtbl.create 16 in
  Hashtbl.replace amps k Cx.one;
  { n; amps }

let num_qubits t = t.n

let support t =
  Hashtbl.fold (fun _ a acc -> if Cx.norm2 a > cutoff then acc + 1 else acc) t.amps 0

let add_amp amps k z =
  let cur = Option.value ~default:Cx.zero (Hashtbl.find_opt amps k) in
  let v = Cx.add cur z in
  if Cx.norm2 v <= cutoff then Hashtbl.remove amps k else Hashtbl.replace amps k v

let apply1_sparse u q t =
  let out = Hashtbl.create (Hashtbl.length t.amps * 2) in
  let bit = 1 lsl q in
  Hashtbl.iter
    (fun k a ->
      let b = (k lsr q) land 1 in
      let base = k land lnot bit in
      (* column b of u spreads amplitude a to rows 0 and 1 *)
      let u0b = Cmat.get u 0 b and u1b = Cmat.get u 1 b in
      if Cx.norm2 u0b > cutoff then add_amp out base (Cx.mul u0b a);
      if Cx.norm2 u1b > cutoff then add_amp out (base lor bit) (Cx.mul u1b a))
    t.amps;
  { t with amps = out }

let apply_controlled_sparse ~controls u q t =
  let cmask = List.fold_left (fun m c -> m lor (1 lsl c)) 0 controls in
  let out = Hashtbl.create (Hashtbl.length t.amps * 2) in
  let bit = 1 lsl q in
  Hashtbl.iter
    (fun k a ->
      if k land cmask <> cmask then add_amp out k a
      else begin
        let b = (k lsr q) land 1 in
        let base = k land lnot bit in
        let u0b = Cmat.get u 0 b and u1b = Cmat.get u 1 b in
        if Cx.norm2 u0b > cutoff then add_amp out base (Cx.mul u0b a);
        if Cx.norm2 u1b > cutoff then add_amp out (base lor bit) (Cx.mul u1b a)
      end)
    t.amps;
  { t with amps = out }

let apply_gate (g : Circuit.Gate.t) t =
  match (g.Circuit.Gate.name, g.Circuit.Gate.targets) with
  | "swap", [ a; b ] ->
      let ba = 1 lsl a and bb = 1 lsl b in
      let out = Hashtbl.create (Hashtbl.length t.amps) in
      Hashtbl.iter
        (fun k amp ->
          let va = (k lsr a) land 1 and vb = (k lsr b) land 1 in
          let k' = k land lnot ba land lnot bb lor (vb lsl a) lor (va lsl b) in
          add_amp out k' amp)
        t.amps;
      { t with amps = out }
  | name, [ tgt ] ->
      let u = Qstate.Gates.by_name name g.Circuit.Gate.params in
      if g.Circuit.Gate.controls = [] then apply1_sparse u tgt t
      else apply_controlled_sparse ~controls:g.Circuit.Gate.controls u tgt t
  | _ -> invalid_arg "Sparse_sim: malformed gate"

let run c ~input =
  let t = ref (basis (Circuit.num_qubits c) input) in
  List.iter
    (fun instr ->
      match instr with
      | Circuit.Instr.Gate g -> t := apply_gate g !t
      | Circuit.Instr.Tracepoint _ | Circuit.Instr.Barrier _ -> ()
      | _ -> invalid_arg "Sparse_sim.run: non-unitary instruction")
    (Circuit.instrs c);
  !t

let amplitude t k = Option.value ~default:Cx.zero (Hashtbl.find_opt t.amps k)

let equal ?(eps = 1e-9) a b =
  a.n = b.n
  &&
  (* find the global-phase factor from the largest amplitude of a *)
  let best = ref None in
  Hashtbl.iter
    (fun k v ->
      match !best with
      | Some (_, bv) when Cx.norm2 bv >= Cx.norm2 v -> ()
      | _ -> best := Some (k, v))
    a.amps;
  match !best with
  | None -> support b = 0
  | Some (k, va) ->
      let vb = amplitude b k in
      if Cx.norm vb <= eps then false
      else begin
        let phase = Cx.div va vb in
        let ok = ref (Float.abs (Cx.norm phase -. 1.) < 1e-6) in
        Hashtbl.iter
          (fun k va ->
            if not (Cx.equal ~eps va (Cx.mul phase (amplitude b k))) then
              ok := false)
          a.amps;
        Hashtbl.iter
          (fun k vb ->
            if not (Cx.equal ~eps (amplitude a k) (Cx.mul phase vb)) then
              ok := false)
          b.amps;
        !ok
      end

let to_statevec t =
  let st = Qstate.Statevec.zero t.n in
  Qstate.Statevec.set_amplitude st 0 Cx.zero;
  Hashtbl.iter (fun k v -> Qstate.Statevec.set_amplitude st k v) t.amps;
  st
