(** Automata-based equivalence checking (Chen et al., PLDI 2023; paper
    baseline "Automa").

    The tree-automata framework represents sets of basis-state/amplitude
    terms symbolically; on the structured circuits it targets that is
    equivalent to exact sparse simulation of each basis input, with cost
    governed by the support size the circuit develops. A candidate is
    flagged when its final sparse state differs (up to global phase) from
    the reference's on some tested basis input — phase bugs are visible,
    unlike probability-only testing. *)

(** [check ?rng ?input_preps ~tests ~reference ~candidate ()] compares
    sparse final states across test inputs. By default basis inputs are
    used; [input_preps] supplies preparation circuits over the input qubits
    (e.g. Clifford states — the framework represents stabilizer sets
    symbolically). *)
val check :
  ?rng:Stats.Rng.t ->
  ?input_preps:Circuit.t list ->
  tests:int ->
  reference:Morphcore.Program.t ->
  candidate:Morphcore.Program.t ->
  unit ->
  Verifier.result

(** [supports program] — the framework handles measurement-free circuits
    whose specification is structural; continuous-expectation models
    (arbitrary-angle RX/RY/U3 everywhere) are out of scope, mirroring the
    paper's "/" entries. *)
val supports : Morphcore.Program.t -> bool
