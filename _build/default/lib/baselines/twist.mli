(** Twist-style purity reasoning (Yuan, McNally & Carbin, POPL 2022; paper
    baseline).

    Twist soundly tracks purity and entanglement of program expressions via
    classical simulation. We realise its observable power as the vector of
    subsystem purities (every single qubit plus the full register) computed
    from exact simulation: a candidate is flagged when its purity vector
    deviates from the reference's. Bugs that leave all purities unchanged —
    e.g. phase errors commuting with the remaining circuit — are invisible,
    matching the paper's expressiveness discussion. *)

(** [purity_vector program ~input] simulates one basis input and returns
    the purity of each single-qubit reduced state followed by the full-state
    purity, at the final tracepoint-free state. *)
val purity_vector : Morphcore.Program.t -> input:int -> float array

(** [purity_vector_of_state program ~input] — same, for an arbitrary input
    state (Twist reasons about programs applied to any expression). *)
val purity_vector_of_state :
  Morphcore.Program.t -> input:Qstate.Statevec.t -> float array

(** [check ?rng ?tol ?inputs ~tests ~reference ~candidate ()] compares
    purity vectors across test inputs (explicit states, or basis states by
    default). *)
val check :
  ?rng:Stats.Rng.t ->
  ?tol:float ->
  ?inputs:Qstate.Statevec.t list ->
  tests:int ->
  reference:Morphcore.Program.t ->
  candidate:Morphcore.Program.t ->
  unit ->
  Verifier.result

(** [supports program] — Twist needs simulatable, measurement-free unitary
    bodies and cannot discriminate expectation-style specifications; mirrors
    the "/" entries of the paper's Table 6 for models classified by
    continuous expectations (detected via the presence of mid-circuit
    measurement only; QNN-style limits are decided by the caller). *)
val supports : Morphcore.Program.t -> bool
