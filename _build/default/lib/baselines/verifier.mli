(** Common result type for the baseline verifiers compared against MorphQPV
    (Sections 8 and Appendix B of the paper). *)

type result = {
  bug_found : bool;
  tests_used : int;  (** inputs actually executed before stopping *)
  cost : Sim.Cost.t;  (** quantum-operation accounting *)
  seconds : float;  (** classical wall-clock spent *)
}

(** [timed f] runs [f] and pairs its result with elapsed seconds. *)
val timed : (unit -> 'a) -> 'a * float

(** [basis_inputs rng ~k ~count] draws [count] distinct basis states of [k]
    qubits (all of them when [count >= 2^k]), in random order — the
    grid-search input schedule shared by Quito/NDD-style testing. *)
val basis_inputs : Stats.Rng.t -> k:int -> count:int -> int list
