open Morphcore
open Linalg

type state_kind = Classical | General

let discrimination_gates ~kind ~n_t =
  match kind with
  | Classical -> 2
  | General ->
      let rec pow acc k = if k = 0 then acc else pow (acc * 4) (k - 1) in
      18 * pow 1 n_t

let tracepoint_state ?rng program ~tracepoint st =
  List.assoc tracepoint (Program.run_traces ?rng program ~input:st)

(* detection metric: Frobenius distance. Equivalent to a fidelity test for
   bug detection but avoids two eigendecompositions per comparison, which
   matters for full-register tracepoints. *)
let distance_dm a b = Cmat.frob_norm (Cmat.sub a b)

let check ?rng ?(shots = 1000) ?(tol = 0.05) ?inputs ~tests ~kind ~tracepoint
    ~reference ~candidate () =
  let rng = match rng with Some r -> r | None -> Stats.Rng.make 37 in
  let k = Program.num_input_qubits candidate in
  let meter = Sim.Cost.create () in
  let inputs =
    match inputs with
    | Some states -> states
    | None ->
        List.map (Qstate.Statevec.basis k)
          (Verifier.basis_inputs rng ~k ~count:tests)
  in
  let (bug_found, tests_used), seconds =
    Verifier.timed (fun () ->
        let rec go used = function
          | [] -> (false, used)
          | input :: rest ->
              let s_ref = tracepoint_state ~rng reference ~tracepoint input in
              let s_cand = tracepoint_state ~rng candidate ~tracepoint input in
              (* account program execution + discrimination overhead *)
              let n_t =
                let d, _ = Cmat.dims s_cand in
                let rec log2 acc k = if k <= 1 then acc else log2 (acc + 1) (k / 2) in
                log2 0 d
              in
              Sim.Cost.record_circuit meter candidate.Program.circuit ~shots;
              meter.Sim.Cost.gate_ops <-
                meter.Sim.Cost.gate_ops
                + (shots * discrimination_gates ~kind ~n_t);
              if distance_dm s_ref s_cand > tol then (true, used + 1)
              else go (used + 1) rest
        in
        go 0 inputs)
  in
  { Verifier.bug_found; tests_used; cost = meter; seconds }

let executions_to_find ?rng ?(limit = max_int) ~tracepoint ~reference
    ~candidate () =
  let rng = match rng with Some r -> r | None -> Stats.Rng.make 37 in
  let k = Program.num_input_qubits candidate in
  let d = 1 lsl k in
  let inputs = Verifier.basis_inputs rng ~k ~count:(min limit d) in
  let rec go used = function
    | [] -> None
    | i :: rest ->
        let input = Qstate.Statevec.basis k i in
        let s_ref = tracepoint_state ~rng reference ~tracepoint input in
        let s_cand = tracepoint_state ~rng candidate ~tracepoint input in
        if distance_dm s_ref s_cand > 0.1 then Some (used + 1)
        else go (used + 1) rest
  in
  go 0 inputs
