(** Non-destructive discrimination assertions (Liu & Zhou, HPCA 2021; paper
    baseline "NDD").

    For each tested input, an NDD assertion checks whether the runtime state
    at a tracepoint equals the expected (possibly mixed) state, including
    phases, by appending a discrimination sub-circuit. We model detection as
    a fidelity comparison between candidate and reference tracepoint states,
    and account the hardware overhead of the discrimination circuitry:
    asserting a classical basis state needs O(1) extra gates, while a
    general mixed state needs a synthesized projection unitary whose gate
    count grows as ~18 * 4^n (fit to the paper's Table 4 numbers). *)

type state_kind = Classical | General

(** [discrimination_gates ~kind ~n_t] models the per-shot gate overhead of
    one NDD assertion over [n_t] qubits. *)
val discrimination_gates : kind:state_kind -> n_t:int -> int

(** [check ?rng ?shots ?tol ?inputs ~tests ~kind ~tracepoint ~reference
    ~candidate ()] tests up to [tests] inputs (explicit [inputs] states, or
    basis states by default — NDD prepares arbitrary test states on
    hardware), comparing the tracepoint state of the candidate against the
    reference run (Frobenius distance above [tol] flags the bug). *)
val check :
  ?rng:Stats.Rng.t ->
  ?shots:int ->
  ?tol:float ->
  ?inputs:Qstate.Statevec.t list ->
  tests:int ->
  kind:state_kind ->
  tracepoint:int ->
  reference:Morphcore.Program.t ->
  candidate:Morphcore.Program.t ->
  unit ->
  Verifier.result

(** [executions_to_find ?rng ?limit ~tracepoint ~reference ~candidate ()] —
    grid-search analogue of {!Quito.executions_to_find} with full state
    (phase-sensitive) comparison. *)
val executions_to_find :
  ?rng:Stats.Rng.t ->
  ?limit:int ->
  tracepoint:int ->
  reference:Morphcore.Program.t ->
  candidate:Morphcore.Program.t ->
  unit ->
  int option
