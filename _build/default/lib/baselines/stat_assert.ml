open Morphcore

let chi_square ~expected ~counts ~shots =
  let observed = Array.make (Array.length expected) 0. in
  List.iter (fun (k, c) -> observed.(k) <- float_of_int c) counts;
  let total = float_of_int shots in
  let acc = ref 0. in
  Array.iteri
    (fun i e ->
      let exp_count = e *. total in
      if exp_count > 1e-9 then
        acc := !acc +. (((observed.(i) -. exp_count) ** 2.) /. exp_count)
      else if observed.(i) > 0. then acc := !acc +. (observed.(i) ** 2.))
    expected;
  !acc

let check ?rng ?(shots = 1000) ?(significance = 3.84) ~expected program ~input
    () =
  let rng = match rng with Some r -> r | None -> Stats.Rng.make 41 in
  let meter = Sim.Cost.create () in
  let (holds, used), seconds =
    Verifier.timed (fun () ->
        let k = Program.num_input_qubits program in
        let initial = Program.embed program (Qstate.Statevec.basis k input) in
        let counts =
          Sim.Engine.sample_counts ~rng ~initial ~meter ~shots
            program.Program.circuit
        in
        let stat = chi_square ~expected ~counts ~shots in
        (* normalize by degrees of freedom (support size - 1) *)
        let dof =
          Float.max 1.
            (float_of_int (Array.length (Array.of_list counts)) -. 1.)
        in
        (stat /. dof <= significance, 1))
  in
  (holds, { Verifier.bug_found = not holds; tests_used = used; cost = meter; seconds })
