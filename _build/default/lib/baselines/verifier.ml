type result = {
  bug_found : bool;
  tests_used : int;
  cost : Sim.Cost.t;
  seconds : float;
}

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let basis_inputs rng ~k ~count =
  let d = 1 lsl k in
  if count >= d then begin
    let all = Array.init d (fun i -> i) in
    Stats.Rng.shuffle rng all;
    Array.to_list all
  end
  else begin
    let seen = Hashtbl.create count in
    let out = ref [] in
    while Hashtbl.length seen < count do
      let x = Stats.Rng.int rng d in
      if not (Hashtbl.mem seen x) then begin
        Hashtbl.add seen x ();
        out := x :: !out
      end
    done;
    List.rev !out
  end
