open Morphcore
open Linalg

let purity_of_dm m =
  let f = Cmat.frob_norm m in
  f *. f

let purity_vector_of_state program ~input =
  let st = Program.embed program input in
  let outcome = Sim.Engine.run ~initial:st program.Program.circuit in
  let final = outcome.Sim.Engine.state in
  let n = Qstate.Statevec.num_qubits final in
  Array.init (n + 1) (fun q ->
      if q < n then purity_of_dm (Qstate.Statevec.reduced_density final [ q ])
      else 1.0 (* a pure trajectory always has unit global purity *))

let purity_vector program ~input =
  let k = Program.num_input_qubits program in
  purity_vector_of_state program ~input:(Qstate.Statevec.basis k input)

let check ?rng ?(tol = 1e-6) ?inputs ~tests ~reference ~candidate () =
  let rng = match rng with Some r -> r | None -> Stats.Rng.make 43 in
  let k = Program.num_input_qubits candidate in
  let meter = Sim.Cost.create () in
  let inputs =
    match inputs with
    | Some states -> states
    | None ->
        List.map (Qstate.Statevec.basis k)
          (Verifier.basis_inputs rng ~k ~count:tests)
  in
  let (bug_found, tests_used), seconds =
    Verifier.timed (fun () ->
        let rec go used = function
          | [] -> (false, used)
          | input :: rest ->
              let pr = purity_vector_of_state reference ~input in
              let pc = purity_vector_of_state candidate ~input in
              let diff = ref 0. in
              Array.iteri
                (fun i a -> diff := Float.max !diff (Float.abs (a -. pc.(i))))
                pr;
              if !diff > tol then (true, used + 1) else go (used + 1) rest
        in
        go 0 inputs)
  in
  { Verifier.bug_found; tests_used; cost = meter; seconds }

(* Models classified by continuous expectations (arbitrary-angle RX/RY/U3
   rotations everywhere, as in the QNN) are outside Twist's purity logic. *)
let continuous_rotation (g : Circuit.Gate.t) =
  List.mem g.Circuit.Gate.name [ "rx"; "ry"; "u3" ]

let supports program =
  List.for_all
    (function
      | Circuit.Instr.Gate g -> not (continuous_rotation g)
      | Circuit.Instr.If_gate { gate; _ } -> not (continuous_rotation gate)
      | _ -> true)
    (Circuit.instrs program.Program.circuit)
