lib/baselines/quito.mli: Morphcore Stats Verifier
