lib/baselines/automa.mli: Circuit Morphcore Stats Verifier
