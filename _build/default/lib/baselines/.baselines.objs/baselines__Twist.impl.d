lib/baselines/twist.ml: Array Circuit Cmat Float Linalg List Morphcore Program Qstate Sim Stats Verifier
