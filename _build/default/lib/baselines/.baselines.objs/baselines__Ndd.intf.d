lib/baselines/ndd.mli: Morphcore Qstate Stats Verifier
