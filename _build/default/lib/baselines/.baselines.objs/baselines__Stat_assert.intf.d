lib/baselines/stat_assert.mli: Morphcore Stats Verifier
