lib/baselines/sparse_sim.mli: Circuit Linalg Qstate
