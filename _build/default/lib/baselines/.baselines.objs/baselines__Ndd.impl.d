lib/baselines/ndd.ml: Cmat Linalg List Morphcore Program Qstate Sim Stats Verifier
