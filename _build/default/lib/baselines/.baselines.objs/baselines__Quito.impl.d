lib/baselines/quito.ml: Array Circuit Float List Morphcore Program Qstate Sim Stats Verifier
