lib/baselines/twist.mli: Morphcore Qstate Stats Verifier
