lib/baselines/stat_assert.ml: Array Float List Morphcore Program Qstate Sim Stats Verifier
