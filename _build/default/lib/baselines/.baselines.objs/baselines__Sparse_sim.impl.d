lib/baselines/sparse_sim.ml: Circuit Cmat Cx Float Hashtbl Linalg List Option Qstate
