lib/baselines/verifier.ml: Array Hashtbl List Sim Stats Unix
