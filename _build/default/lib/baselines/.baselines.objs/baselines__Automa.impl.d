lib/baselines/automa.ml: Array Circuit List Morphcore Program Sim Sparse_sim Stats Verifier
