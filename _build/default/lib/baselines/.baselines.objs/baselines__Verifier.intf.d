lib/baselines/verifier.mli: Sim Stats
