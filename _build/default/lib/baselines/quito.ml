open Morphcore

let total_variation pa pb =
  let acc = ref 0. in
  Array.iteri (fun i a -> acc := !acc +. Float.abs (a -. pb.(i))) pa;
  !acc /. 2.

let counts_to_probs d ~shots counts =
  let p = Array.make d 0. in
  List.iter (fun (k, c) -> p.(k) <- float_of_int c /. float_of_int shots) counts;
  p

let run_probs ?rng ~shots ~meter program input =
  let k = Program.num_input_qubits program in
  let initial =
    Program.embed program (Qstate.Statevec.basis k input)
  in
  let c = program.Program.circuit in
  let d = 1 lsl Circuit.num_qubits c in
  let counts = Sim.Engine.sample_counts ?rng ~initial ~meter ~shots c in
  counts_to_probs d ~shots counts

let check ?rng ?(shots = 1000) ?threshold ~tests ~reference ~candidate () =
  let rng = match rng with Some r -> r | None -> Stats.Rng.make 31 in
  let threshold =
    match threshold with
    | Some t -> t
    | None -> 3. /. sqrt (float_of_int shots)
  in
  let k = Program.num_input_qubits candidate in
  let meter = Sim.Cost.create () in
  let inputs = Verifier.basis_inputs rng ~k ~count:tests in
  let (bug_found, tests_used), seconds =
    Verifier.timed (fun () ->
        let rec go used = function
          | [] -> (false, used)
          | input :: rest ->
              let p_ref = run_probs ~rng ~shots ~meter reference input in
              let p_cand = run_probs ~rng ~shots ~meter candidate input in
              if total_variation p_ref p_cand > threshold then (true, used + 1)
              else go (used + 1) rest
        in
        go 0 inputs)
  in
  { Verifier.bug_found; tests_used; cost = meter; seconds }

let exact_probs program input =
  let k = Program.num_input_qubits program in
  let initial = Program.embed program (Qstate.Statevec.basis k input) in
  let c = program.Program.circuit in
  if Sim.Engine.is_deterministic c then
    Qstate.Statevec.probs (Sim.Engine.run ~initial c).Sim.Engine.state
  else begin
    (* average over trajectories for programs with measurement *)
    let rng = Stats.Rng.make (input + 997) in
    let d = 1 lsl Circuit.num_qubits c in
    let acc = Array.make d 0. in
    let trials = 32 in
    for _ = 1 to trials do
      let st = (Sim.Engine.run ~rng ~initial c).Sim.Engine.state in
      Array.iteri (fun i p -> acc.(i) <- acc.(i) +. p) (Qstate.Statevec.probs st)
    done;
    Array.map (fun x -> x /. float_of_int trials) acc
  end

let executions_to_find ?rng ?(limit = max_int) ~reference ~candidate () =
  let rng = match rng with Some r -> r | None -> Stats.Rng.make 31 in
  let k = Program.num_input_qubits candidate in
  let d = 1 lsl k in
  let inputs = Verifier.basis_inputs rng ~k ~count:(min limit d) in
  let rec go used = function
    | [] -> None
    | input :: rest ->
        let p_ref = exact_probs reference input in
        let p_cand = exact_probs candidate input in
        if total_variation p_ref p_cand > 0.05 then Some (used + 1)
        else go (used + 1) rest
  in
  go 0 inputs
