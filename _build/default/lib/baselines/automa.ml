open Morphcore

let embed_input program input =
  (* Sparse_sim works on basis indices over the full register: shift the
     basis input into the program's input-qubit positions *)
  let qs = program.Program.input_qubits in
  List.fold_left
    (fun (acc, bit) q ->
      ((if (input lsr bit) land 1 = 1 then acc lor (1 lsl q) else acc), bit + 1))
    (0, 0) qs
  |> fst

let strip_tracepoints c =
  (* sparse runs only need the unitary body *)
  Circuit.map_gates (fun g -> Some g) c

(* prepend an input-preparation circuit (over the program's input qubits)
   to the program body, remapping prep qubits onto the input positions *)
let with_prep program prep =
  let n = Circuit.num_qubits program.Program.circuit in
  let qs = Array.of_list program.Program.input_qubits in
  let remapped =
    List.map (Circuit.Instr.remap (fun q -> qs.(q))) (Circuit.instrs prep)
  in
  let c = ref (Circuit.empty ~clbits:(Circuit.num_clbits program.Program.circuit) n) in
  List.iter (fun i -> c := Circuit.add i !c) remapped;
  List.iter (fun i -> c := Circuit.add i !c) (Circuit.instrs program.Program.circuit);
  !c

let check ?rng ?input_preps ~tests ~reference ~candidate () =
  let rng = match rng with Some r -> r | None -> Stats.Rng.make 47 in
  let k = Program.num_input_qubits candidate in
  let meter = Sim.Cost.create () in
  let cases =
    match input_preps with
    | Some preps -> List.map (fun p -> `Prep p) preps
    | None ->
        List.map (fun i -> `Basis i) (Verifier.basis_inputs rng ~k ~count:tests)
  in
  let (bug_found, tests_used), seconds =
    Verifier.timed (fun () ->
        let rec go used = function
          | [] -> (false, used)
          | case :: rest ->
              let run program =
                match case with
                | `Basis input ->
                    Sparse_sim.run
                      (strip_tracepoints program.Program.circuit)
                      ~input:(embed_input program input)
                | `Prep prep ->
                    Sparse_sim.run (strip_tracepoints (with_prep program prep)) ~input:0
              in
              let s_ref = run reference and s_cand = run candidate in
              if not (Sparse_sim.equal s_ref s_cand) then (true, used + 1)
              else go (used + 1) rest
        in
        go 0 cases)
  in
  { Verifier.bug_found; tests_used; cost = meter; seconds }

let continuous_rotation (g : Circuit.Gate.t) =
  List.mem g.Circuit.Gate.name [ "rx"; "ry"; "u3" ]

let supports program =
  List.for_all
    (function
      | Circuit.Instr.Gate g -> not (continuous_rotation g)
      | Circuit.Instr.If_gate _ | Circuit.Instr.Measure _ | Circuit.Instr.Reset _
        ->
          false
      | _ -> true)
    (Circuit.instrs program.Program.circuit)
