(** Measurement (readout) error mitigation.

    Real devices flip measured bits with some probability; tomography built
    on raw counts inherits that bias. The standard correction calibrates a
    confusion matrix [C] (column [j] = observed distribution when the true
    state is basis [j]) from calibration circuits and solves
    [C p_true = p_observed] for every subsequent experiment. *)

type t = private { n : int; confusion : Linalg.Rmat.t }

(** [ideal n] is the identity calibration (no correction). *)
val ideal : int -> t

(** [exact n ~readout] is the analytic confusion matrix of a symmetric
    per-qubit flip probability — the model used by {!Sim.Noise.readout}. *)
val exact : int -> readout:float -> t

(** [calibrate ?shots rng ~n ~readout] estimates the confusion matrix by
    simulating the [2^n] calibration circuits under the given flip
    probability with [shots] (default 1024) measurements each. *)
val calibrate : ?shots:int -> Stats.Rng.t -> n:int -> readout:float -> t

(** [apply t observed] solves for the true distribution, clips negatives and
    renormalizes. [observed] must have length [2^n]. *)
val apply : t -> float array -> float array

(** [mitigate_counts t ~shots counts] converts sampled counts to a corrected
    probability distribution. *)
val mitigate_counts : t -> shots:int -> (int * int) list -> float array
