(** Quantum process tomography: reconstructing a channel rather than a state.

    Used in the paper only as a (very expensive) baseline for obtaining
    tracepoint states (Figure 11a). We provide a faithful implementation for
    small registers — probe the channel with an operator basis of input
    states and run state tomography on every output — plus the standard cost
    model for larger registers. *)

type result = {
  choi_like : (Linalg.Cmat.t * Linalg.Cmat.t) list;
      (** (input basis element, reconstructed output) pairs; applying the
          channel to a state decomposes it over the input basis *)
  settings : int;
  shots_used : int;
}

(** [input_basis n] is the standard [4^n]-element operator basis built from
    products of [|0>, |1>, |+>, |+i>] single-qubit states. *)
val input_basis : int -> Linalg.Cmat.t list

(** [run rng ~shots ~channel ~n ()] probes an [n]-qubit channel (a function
    on density matrices) with the full input basis. *)
val run :
  Stats.Rng.t ->
  shots:int ->
  channel:(Linalg.Cmat.t -> Linalg.Cmat.t) ->
  n:int ->
  unit ->
  result

(** [apply result rho] approximates the channel output for input [rho] by
    decomposing [rho] over the probed input basis (least squares). *)
val apply : result -> Linalg.Cmat.t -> Linalg.Cmat.t

(** [cost ~n ~shots] is [(settings, shots_used)] for an [n]-qubit process
    tomography without running it: [4^n] inputs, each with [3^n] settings. *)
val cost : n:int -> shots:int -> int * int
