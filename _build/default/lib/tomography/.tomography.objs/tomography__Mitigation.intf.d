lib/tomography/mitigation.mli: Linalg Stats
