lib/tomography/process_tomo.mli: Linalg Stats
