lib/tomography/process_tomo.ml: Array Cmat Cvec Cx Hsvec Lazy Linalg List Rmat State_tomo
