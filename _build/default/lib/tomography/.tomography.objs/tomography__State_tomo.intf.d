lib/tomography/state_tomo.mli: Linalg Qstate Stats
