lib/tomography/state_tomo.ml: Array Cmat Cx Eig Float Linalg List Pauli Qstate Stats
