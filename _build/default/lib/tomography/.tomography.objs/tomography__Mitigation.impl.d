lib/tomography/mitigation.ml: Array Float Linalg List Rmat Stats
