open Linalg

type result = {
  choi_like : (Cmat.t * Cmat.t) list;
  settings : int;
  shots_used : int;
}

let single_states =
  lazy
    (let zero = Cvec.of_list [ Cx.one; Cx.zero ] in
     let one = Cvec.of_list [ Cx.zero; Cx.one ] in
     let plus = Cvec.rscale (1. /. sqrt 2.) (Cvec.of_list [ Cx.one; Cx.one ]) in
     let plus_i = Cvec.rscale (1. /. sqrt 2.) (Cvec.of_list [ Cx.one; Cx.i ]) in
     List.map (fun v -> Cmat.outer v v) [ zero; one; plus; plus_i ])

let input_basis n =
  let singles = Lazy.force single_states in
  let rec go k =
    if k = 0 then [ Cmat.identity 1 ]
    else
      let rest = go (k - 1) in
      List.concat_map (fun s -> List.map (fun r -> Cmat.kron r s) rest) singles
  in
  go n

let run rng ~shots ~channel ~n () =
  let basis = input_basis n in
  let settings = ref 0 and shots_used = ref 0 in
  let choi_like =
    List.map
      (fun input ->
        let output_true = channel input in
        let tomo = State_tomo.run rng ~shots ~truth:output_true () in
        settings := !settings + tomo.State_tomo.settings;
        shots_used := !shots_used + tomo.State_tomo.shots_used;
        (input, tomo.State_tomo.rho))
      basis
  in
  { choi_like; settings = !settings; shots_used = !shots_used }

let apply result rho =
  match result.choi_like with
  | [] -> invalid_arg "Process_tomo.apply: empty result"
  | (first_in, first_out) :: _ ->
      let n_in, _ = Cmat.dims first_in in
      let n_out, _ = Cmat.dims first_out in
      let inputs = List.map fst result.choi_like in
      let cols = List.length inputs in
      (* least-squares decomposition of rho over the probed inputs *)
      let rows = Hsvec.dim n_in in
      let a = Rmat.create rows cols in
      List.iteri
        (fun j input ->
          let v = Hsvec.encode input in
          Array.iteri (fun i x -> Rmat.set a i j x) v)
        inputs;
      let b = Hsvec.encode rho in
      let alpha = Rmat.lstsq ~ridge:1e-9 a b in
      let acc = ref (Cmat.create n_out n_out) in
      List.iteri
        (fun j (_, out) -> acc := Cmat.add !acc (Cmat.rscale alpha.(j) out))
        result.choi_like;
      !acc

let cost ~n ~shots =
  let four_n =
    let rec pow acc k = if k = 0 then acc else pow (acc * 4) (k - 1) in
    pow 1 n
  in
  let settings_per_input = State_tomo.settings_count n in
  (four_n * settings_per_input, four_n * settings_per_input * shots)
