open Linalg

type t = { n : int; confusion : Rmat.t }

let ideal n = { n; confusion = Rmat.identity (1 lsl n) }

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + (x land 1)) (x lsr 1) in
  go 0 x

let exact n ~readout =
  if readout < 0. || readout > 1. then invalid_arg "Mitigation.exact: bad rate";
  let d = 1 lsl n in
  let confusion =
    Rmat.init d d (fun obs true_ ->
        let flips = popcount (obs lxor true_) in
        (readout ** float_of_int flips)
        *. ((1. -. readout) ** float_of_int (n - flips)))
  in
  { n; confusion }

let calibrate ?(shots = 1024) rng ~n ~readout =
  let d = 1 lsl n in
  let confusion = Rmat.create d d in
  for true_ = 0 to d - 1 do
    (* calibration circuit: prepare |true_>, measure with flip noise *)
    let counts = Array.make d 0 in
    for _ = 1 to shots do
      let observed = ref true_ in
      for q = 0 to n - 1 do
        if Stats.Rng.float rng 1. < readout then observed := !observed lxor (1 lsl q)
      done;
      counts.(!observed) <- counts.(!observed) + 1
    done;
    for obs = 0 to d - 1 do
      Rmat.set confusion obs true_ (float_of_int counts.(obs) /. float_of_int shots)
    done
  done;
  { n; confusion }

let apply t observed =
  let d = 1 lsl t.n in
  if Array.length observed <> d then invalid_arg "Mitigation.apply: bad length";
  let raw =
    try Rmat.solve t.confusion observed
    with Failure _ -> Rmat.lstsq t.confusion observed
  in
  let clipped = Array.map (Float.max 0.) raw in
  let total = Array.fold_left ( +. ) 0. clipped in
  if total <= 0. then Array.make d (1. /. float_of_int d)
  else Array.map (fun x -> x /. total) clipped

let mitigate_counts t ~shots counts =
  let d = 1 lsl t.n in
  let observed = Array.make d 0. in
  List.iter
    (fun (k, c) -> observed.(k) <- float_of_int c /. float_of_int shots)
    counts;
  apply t observed
