type problem = {
  objective : Objective.t;
  constraints : (float array -> float) list;
}

type solution = {
  x : float array;
  value : float;
  max_violation : float;
  feasible : bool;
  evals : int;
}

let violation constraints x =
  List.fold_left (fun acc g -> Float.max acc (Float.max 0. (g x))) 0. constraints

let maximize ?(budget = 10_000) ?(rounds = 4) ?(tol = 1e-3) ~method_ rng problem
    =
  let obj = problem.objective in
  let total_evals = ref 0 in
  let best = ref None in
  let mu = ref 10. in
  for _ = 1 to rounds do
    let penalized =
      Objective.make ~dim:obj.Objective.dim ~lower:obj.Objective.lower
        ~upper:obj.Objective.upper (fun x ->
          let pen =
            List.fold_left
              (fun acc g ->
                let v = Float.max 0. (g x) in
                acc +. (v *. v))
              0. problem.constraints
          in
          obj.Objective.f x -. (!mu *. pen))
    in
    let sol = Solvers.maximize ~budget:(budget / rounds) method_ rng penalized in
    total_evals := !total_evals + sol.Solvers.evals;
    let value = obj.Objective.f sol.Solvers.x in
    let max_violation = violation problem.constraints sol.Solvers.x in
    let candidate = { x = sol.Solvers.x; value; max_violation; feasible = max_violation <= tol; evals = 0 } in
    (match !best with
    | None -> best := Some candidate
    | Some b ->
        (* prefer feasible solutions; among feasible, larger objective *)
        let better =
          match (b.feasible, candidate.feasible) with
          | true, false -> false
          | false, true -> true
          | true, true -> candidate.value > b.value
          | false, false -> candidate.max_violation < b.max_violation
        in
        if better then best := Some candidate);
    mu := !mu *. 10.
  done;
  match !best with
  | Some b -> { b with evals = !total_evals }
  | None -> assert false
