type t = {
  dim : int;
  f : float array -> float;
  lower : float array;
  upper : float array;
}

let make ~dim ?lower ?upper f =
  if dim <= 0 then invalid_arg "Objective.make: non-positive dimension";
  let lower = match lower with Some l -> l | None -> Array.make dim (-1.) in
  let upper = match upper with Some u -> u | None -> Array.make dim 1. in
  if Array.length lower <> dim || Array.length upper <> dim then
    invalid_arg "Objective.make: bound length mismatch";
  Array.iteri
    (fun i l -> if l > upper.(i) then invalid_arg "Objective.make: empty box")
    lower;
  { dim; f; lower; upper }

let clamp t x =
  for i = 0 to t.dim - 1 do
    x.(i) <- Float.min t.upper.(i) (Float.max t.lower.(i) x.(i))
  done

let random_point t rng =
  Array.init t.dim (fun i -> Stats.Rng.uniform rng t.lower.(i) t.upper.(i))

let num_grad ?(eps = 1e-5) t x =
  Array.init t.dim (fun i ->
      let xi = x.(i) in
      x.(i) <- xi +. eps;
      let fp = t.f x in
      x.(i) <- xi -. eps;
      let fm = t.f x in
      x.(i) <- xi;
      (fp -. fm) /. (2. *. eps))
