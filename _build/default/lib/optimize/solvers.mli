(** Derivative-free and gradient-based maximizers over box-constrained
    objectives: the three solver families the paper evaluates (stochastic
    gradient descent, genetic algorithm, quadratic programming) plus
    simulated annealing as used in the reference artifact. *)

type solution = { x : float array; value : float; evals : int }

(** [adam ?iters ?restarts ?lr rng obj] — Adam gradient ascent with numeric
    gradients and random restarts (the paper's "SGD" solver). *)
val adam :
  ?iters:int -> ?restarts:int -> ?lr:float -> Stats.Rng.t -> Objective.t -> solution

(** [anneal ?iters ?restarts ?temp0 rng obj] — simulated annealing with a
    geometric cooling schedule. *)
val anneal :
  ?iters:int -> ?restarts:int -> ?temp0:float -> Stats.Rng.t -> Objective.t -> solution

(** [genetic ?generations ?population ?mutation rng obj] — tournament
    selection, blend crossover, Gaussian mutation, elitism. *)
val genetic :
  ?generations:int ->
  ?population:int ->
  ?mutation:float ->
  Stats.Rng.t ->
  Objective.t ->
  solution

(** [qp ?iters ?restarts rng obj] — projected conjugate-direction ascent with
    exact line search under a local quadratic model; exact for quadratic
    objectives (the paper's quadratic-programming solver role). *)
val qp : ?iters:int -> ?restarts:int -> Stats.Rng.t -> Objective.t -> solution

type method_ = [ `Adam | `Anneal | `Genetic | `Qp ]

val method_to_string : method_ -> string

(** [maximize ?budget method rng obj] dispatches on the method with a
    roughly comparable evaluation budget. *)
val maximize : ?budget:int -> method_ -> Stats.Rng.t -> Objective.t -> solution
