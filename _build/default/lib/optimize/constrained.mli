(** Constrained maximization via the quadratic-penalty method.

    MorphQPV validates an assertion by maximizing the guarantee objective
    subject to the assumption predicates (all expressed as [g(x) <= 0]); this
    module reduces that to a sequence of unconstrained problems
    [f(x) - mu * sum max(0, g_i(x))^2] with growing [mu]. *)

type problem = {
  objective : Objective.t;  (** to maximize *)
  constraints : (float array -> float) list;  (** feasible iff all <= 0 *)
}

type solution = {
  x : float array;
  value : float;  (** objective at [x] *)
  max_violation : float;  (** max over constraints of [max 0 g(x)] *)
  feasible : bool;  (** violation below tolerance *)
  evals : int;
}

(** [maximize ?budget ?rounds ?tol ~method_ rng problem] runs the penalty
    loop. [rounds] (default 4) controls how many times the penalty weight is
    increased (x10 each round, starting at 10). *)
val maximize :
  ?budget:int ->
  ?rounds:int ->
  ?tol:float ->
  method_:Solvers.method_ ->
  Stats.Rng.t ->
  problem ->
  solution
