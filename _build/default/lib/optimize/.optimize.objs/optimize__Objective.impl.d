lib/optimize/objective.ml: Array Float Stats
