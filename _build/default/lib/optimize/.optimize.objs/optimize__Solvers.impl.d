lib/optimize/solvers.ml: Array Float Objective Stats
