lib/optimize/objective.mli: Stats
