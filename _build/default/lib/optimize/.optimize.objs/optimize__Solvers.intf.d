lib/optimize/solvers.mli: Objective Stats
