lib/optimize/constrained.ml: Float List Objective Solvers
