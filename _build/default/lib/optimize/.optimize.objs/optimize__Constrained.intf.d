lib/optimize/constrained.mli: Objective Solvers Stats
