(** Box-constrained real objective functions (to be maximized). *)

type t = {
  dim : int;
  f : float array -> float;
  lower : float array;
  upper : float array;
}

(** [make ~dim ?lower ?upper f] builds an objective; bounds default to
    [[-1, 1]] per coordinate. *)
val make : dim:int -> ?lower:float array -> ?upper:float array -> (float array -> float) -> t

(** [clamp t x] projects [x] into the box in place. *)
val clamp : t -> float array -> unit

(** [random_point t rng] draws a uniform point in the box. *)
val random_point : t -> Stats.Rng.t -> float array

(** [num_grad ?eps t x] is the central-difference gradient. *)
val num_grad : ?eps:float -> t -> float array -> float array
