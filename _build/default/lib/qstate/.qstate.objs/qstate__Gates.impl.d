lib/qstate/gates.ml: Cmat Cx Float Linalg List Printf
