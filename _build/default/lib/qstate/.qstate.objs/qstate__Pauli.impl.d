lib/qstate/pauli.ml: Array Cmat Cx Format Linalg List Printf String
