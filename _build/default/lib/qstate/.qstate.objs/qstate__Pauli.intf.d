lib/qstate/pauli.mli: Format Linalg
