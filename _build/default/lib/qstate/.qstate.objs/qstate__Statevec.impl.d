lib/qstate/statevec.ml: Array Cmat Cvec Cx Float Format Hashtbl Linalg List Option Pauli Stats String
