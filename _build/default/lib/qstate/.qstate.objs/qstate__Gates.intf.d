lib/qstate/gates.mli: Linalg
