lib/qstate/statevec.mli: Format Linalg Pauli Stats
