lib/qstate/density.mli: Format Linalg Pauli Statevec
