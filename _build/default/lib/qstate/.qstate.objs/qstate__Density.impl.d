lib/qstate/density.ml: Array Cmat Cvec Cx Eig Float Format Linalg List Pauli Statevec
