(** Density matrices over [n] qubits with channel application (unitaries and
    Kraus maps). Operations are functional (each returns a new value); the
    per-qubit kernels avoid materializing full [2^n]-dimensional gate
    matrices. *)

type t = private { n : int; m : Linalg.Cmat.t }

(** [of_statevec st] is the pure-state density matrix [|st><st|]. *)
val of_statevec : Statevec.t -> t

(** [of_cmat n m] wraps a [2^n x 2^n] density matrix (validated for shape
    only; use {!is_valid} for physicality). *)
val of_cmat : int -> Linalg.Cmat.t -> t

(** [pure n v] is the projector onto the normalized amplitude vector [v]. *)
val pure : int -> Linalg.Cvec.t -> t

(** [basis n k] is [|k><k|]. *)
val basis : int -> int -> t

(** [maximally_mixed n] is [I / 2^n]. *)
val maximally_mixed : int -> t

(** [mix parts] forms the convex mixture [sum p_i rho_i]; probabilities are
    normalized first. *)
val mix : (float * t) list -> t

val num_qubits : t -> int
val mat : t -> Linalg.Cmat.t

(** [evolve u rho] is [u rho u^dagger] for a full-dimension unitary. *)
val evolve : Linalg.Cmat.t -> t -> t

(** [apply1 u q rho] applies a 2 x 2 unitary to qubit [q]. *)
val apply1 : Linalg.Cmat.t -> int -> t -> t

(** [apply_controlled ~controls u q rho] applies the controlled version. *)
val apply_controlled : controls:int list -> Linalg.Cmat.t -> int -> t -> t

(** [apply_kraus ks q rho] applies the channel [sum_k K rho K^dagger] given by
    2 x 2 Kraus operators acting on qubit [q]. *)
val apply_kraus : Linalg.Cmat.t list -> int -> t -> t

(** [apply_kraus2 ks q0 q1 rho] applies 4 x 4 Kraus operators to a qubit
    pair ([q0] least significant). *)
val apply_kraus2 : Linalg.Cmat.t list -> int -> int -> t -> t

(** [measure_qubit rho q] returns both post-measurement branches
    [((p0, rho0), (p1, rho1))]; a zero-probability branch carries the
    maximally mixed placeholder. *)
val measure_qubit : t -> int -> (float * t) * (float * t)

(** [dephase_qubit rho q] applies full phase damping on qubit [q]
    (measurement without recording the outcome). *)
val dephase_qubit : t -> int -> t

(** [partial_trace ~keep rho] is the reduced state over the listed qubits. *)
val partial_trace : keep:int list -> t -> t

val trace : t -> float
val purity : t -> float
val prob1 : t -> int -> float
val probs : t -> float array
val expectation_pauli : Pauli.t -> t -> float

(** [fidelity a b] is the Uhlmann fidelity
    [(tr sqrt(sqrt a * b * sqrt a))^2], symmetric and equal to
    [<psi| b |psi>] when [a] is the pure state [psi]. *)
val fidelity : t -> t -> float

(** [is_valid ~eps rho] checks Hermiticity, unit trace and positive
    semi-definiteness within [eps]. *)
val is_valid : ?eps:float -> t -> bool

val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
