open Linalg

type op = I | X | Y | Z
type t = op array

let single n q o =
  if q < 0 || q >= n then invalid_arg "Pauli.single: qubit out of range";
  let p = Array.make n I in
  p.(q) <- o;
  p

let identity n = Array.make n I
let weight p = Array.fold_left (fun acc o -> if o = I then acc else acc + 1) 0 p

let matrix1 = function
  | I -> Cmat.identity 2
  | X -> Cmat.of_lists [ [ Cx.zero; Cx.one ]; [ Cx.one; Cx.zero ] ]
  | Y ->
      Cmat.of_lists
        [ [ Cx.zero; Cx.neg Cx.i ]; [ Cx.i; Cx.zero ] ]
  | Z ->
      Cmat.of_lists [ [ Cx.one; Cx.zero ]; [ Cx.zero; Cx.of_float (-1.) ] ]

let matrix p =
  let n = Array.length p in
  if n = 0 then invalid_arg "Pauli.matrix: empty string";
  (* qubit n-1 is the leftmost tensor factor *)
  let acc = ref (matrix1 p.(n - 1)) in
  for q = n - 2 downto 0 do
    acc := Cmat.kron !acc (matrix1 p.(q))
  done;
  !acc

let all n =
  let ops = [ I; X; Y; Z ] in
  let rec go k =
    if k = 0 then [ [] ]
    else
      let rest = go (k - 1) in
      List.concat_map (fun o -> List.map (fun r -> o :: r) rest) ops
  in
  List.map Array.of_list (go n)

(* tr(P rho): a Pauli string has exactly one nonzero entry per row r, at
   column r XOR flipmask, with a phase that is a product of per-qubit factors
   (Z contributes (-1)^bit, Y contributes +/- i). *)
let expectation_dm p rho =
  let n = Array.length p in
  let dim = 1 lsl n in
  let rows, cols = Cmat.dims rho in
  if rows <> dim || cols <> dim then
    invalid_arg "Pauli.expectation_dm: dimension mismatch";
  let flipmask = ref 0 in
  Array.iteri (fun q o -> if o = X || o = Y then flipmask := !flipmask lor (1 lsl q)) p;
  let total = ref Cx.zero in
  for r = 0 to dim - 1 do
    let c = r lxor !flipmask in
    let phase = ref Cx.one in
    Array.iteri
      (fun q o ->
        let bit = (r lsr q) land 1 in
        match o with
        | I | X -> ()
        | Z -> if bit = 1 then phase := Cx.neg !phase
        | Y ->
            phase :=
              if bit = 1 then Cx.mul !phase Cx.i
              else Cx.mul !phase (Cx.neg Cx.i))
      p;
    total := Cx.add !total (Cx.mul !phase (Cmat.get rho c r))
  done;
  Cx.re !total

(* single-qubit products: (a, b) -> (exponent of i, result) under the
   Hermitian convention (XY = iZ, YZ = iX, ZX = iY) *)
let mul1 a b =
  match (a, b) with
  | I, o | o, I -> (0, o)
  | X, X | Y, Y | Z, Z -> (0, I)
  | X, Y -> (1, Z)
  | Y, X -> (3, Z)
  | Y, Z -> (1, X)
  | Z, Y -> (3, X)
  | Z, X -> (1, Y)
  | X, Z -> (3, Y)

let mul a b =
  if Array.length a <> Array.length b then
    invalid_arg "Pauli.mul: length mismatch";
  let phase = ref 0 in
  let result =
    Array.init (Array.length a) (fun q ->
        let ph, o = mul1 a.(q) b.(q) in
        phase := (!phase + ph) mod 4;
        o)
  in
  (!phase, result)

let commute a b =
  let pab, _ = mul a b and pba, _ = mul b a in
  pab = pba

let of_string s =
  let n = String.length s in
  Array.init n (fun q ->
      match s.[n - 1 - q] with
      | 'I' | 'i' -> I
      | 'X' | 'x' -> X
      | 'Y' | 'y' -> Y
      | 'Z' | 'z' -> Z
      | c -> invalid_arg (Printf.sprintf "Pauli.of_string: bad char %c" c))

let to_string p =
  let n = Array.length p in
  String.init n (fun k ->
      match p.(n - 1 - k) with I -> 'I' | X -> 'X' | Y -> 'Y' | Z -> 'Z')

let pp ppf p = Format.pp_print_string ppf (to_string p)
