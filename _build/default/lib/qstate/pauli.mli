(** Pauli strings over [n] qubits.

    Convention used throughout the library: qubit 0 is the least significant
    bit of a computational-basis index, so basis state [|q_{n-1} ... q_1 q_0>]
    has index [sum_k q_k * 2^k]. A Pauli string stores one operator per qubit,
    indexed by qubit number. *)

type op = I | X | Y | Z
type t = op array

(** [single n q o] is the string acting as [o] on qubit [q] of [n] and
    identity elsewhere. *)
val single : int -> int -> op -> t

(** [identity n] is the all-[I] string. *)
val identity : int -> t

(** [weight p] counts non-identity factors. *)
val weight : t -> int

(** [matrix1 o] is the 2 x 2 matrix of a single Pauli operator. *)
val matrix1 : op -> Linalg.Cmat.t

(** [matrix p] is the full [2^n x 2^n] matrix (tensor product respecting the
    qubit-0-least-significant convention). *)
val matrix : t -> Linalg.Cmat.t

(** [all n] enumerates all [4^n] Pauli strings in lexicographic (I,X,Y,Z)
    order, identity first. *)
val all : int -> t list

(** [expectation_dm p rho] is [Re tr(P rho)] without materializing the full
    Pauli matrix. *)
val expectation_dm : t -> Linalg.Cmat.t -> float

(** [mul a b] multiplies two Pauli strings of equal length, returning the
    resulting string together with its scalar phase in [{1, i, -1, -i}]
    encoded as the exponent of [i] (mod 4): [a * b = i^phase * result]. *)
val mul : t -> t -> int * t

(** [commute a b] — do the two strings commute? *)
val commute : t -> t -> bool

(** [of_string s] parses e.g. ["XIZ"] (leftmost character = highest qubit). *)
val of_string : string -> t

(** [to_string p] renders with the highest qubit leftmost. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
