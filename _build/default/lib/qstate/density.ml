open Linalg

type t = { n : int; m : Cmat.t }

let of_cmat n m =
  let r, c = Cmat.dims m in
  if r <> 1 lsl n || c <> 1 lsl n then invalid_arg "Density.of_cmat: bad shape";
  { n; m }

let of_statevec st =
  let v = Statevec.to_cvec st in
  { n = Statevec.num_qubits st; m = Cmat.outer v v }

let pure n v =
  if Cvec.dim v <> 1 lsl n then invalid_arg "Density.pure: bad dimension";
  let v = Cvec.normalize v in
  { n; m = Cmat.outer v v }

let basis n k = of_statevec (Statevec.basis n k)

let maximally_mixed n =
  let d = 1 lsl n in
  { n; m = Cmat.rscale (1. /. float_of_int d) (Cmat.identity d) }

let mix parts =
  match parts with
  | [] -> invalid_arg "Density.mix: empty mixture"
  | (_, first) :: _ ->
      let total = List.fold_left (fun acc (p, _) -> acc +. p) 0. parts in
      if total <= 0. then invalid_arg "Density.mix: non-positive weight";
      let d = 1 lsl first.n in
      let acc = ref (Cmat.create d d) in
      List.iter
        (fun (p, rho) ->
          if rho.n <> first.n then invalid_arg "Density.mix: qubit mismatch";
          acc := Cmat.add !acc (Cmat.rscale (p /. total) rho.m))
        parts;
      { n = first.n; m = !acc }

let num_qubits rho = rho.n
let mat rho = rho.m

let evolve u rho = { rho with m = Cmat.mul3 u rho.m (Cmat.adjoint u) }

(* Left-multiply by (K on qubit q): mixes row pairs for every column. *)
let op_rows k q rho_m dim =
  let k00 = Cmat.get k 0 0 and k01 = Cmat.get k 0 1 in
  let k10 = Cmat.get k 1 0 and k11 = Cmat.get k 1 1 in
  let out = Cmat.copy rho_m in
  let bit = 1 lsl q in
  for i = 0 to dim - 1 do
    if i land bit = 0 then begin
      let j = i lor bit in
      for c = 0 to dim - 1 do
        let a = Cmat.get rho_m i c and b = Cmat.get rho_m j c in
        Cmat.set out i c (Cx.add (Cx.mul k00 a) (Cx.mul k01 b));
        Cmat.set out j c (Cx.add (Cx.mul k10 a) (Cx.mul k11 b))
      done
    end
  done;
  out

(* Right-multiply by (K on qubit q)^dagger: mixes column pairs per row. *)
let op_cols k q rho_m dim =
  let k00 = Cx.conj (Cmat.get k 0 0) and k01 = Cx.conj (Cmat.get k 0 1) in
  let k10 = Cx.conj (Cmat.get k 1 0) and k11 = Cx.conj (Cmat.get k 1 1) in
  let out = Cmat.copy rho_m in
  let bit = 1 lsl q in
  for i = 0 to dim - 1 do
    if i land bit = 0 then begin
      let j = i lor bit in
      for r = 0 to dim - 1 do
        let a = Cmat.get rho_m r i and b = Cmat.get rho_m r j in
        Cmat.set out r i (Cx.add (Cx.mul k00 a) (Cx.mul k01 b));
        Cmat.set out r j (Cx.add (Cx.mul k10 a) (Cx.mul k11 b))
      done
    end
  done;
  out

let apply1 u q rho =
  if q < 0 || q >= rho.n then invalid_arg "Density.apply1: qubit out of range";
  let d = 1 lsl rho.n in
  { rho with m = op_cols u q (op_rows u q rho.m d) d }

let apply_controlled ~controls u q rho =
  match controls with
  | [] -> apply1 u q rho
  | _ ->
      (* build the controlled 2x2-on-subspace as row/col mixing restricted to
         control-satisfying indices *)
      let cmask = List.fold_left (fun m c -> m lor (1 lsl c)) 0 controls in
      if cmask land (1 lsl q) <> 0 then
        invalid_arg "Density.apply_controlled: target among controls";
      let d = 1 lsl rho.n in
      let bit = 1 lsl q in
      let u00 = Cmat.get u 0 0 and u01 = Cmat.get u 0 1 in
      let u10 = Cmat.get u 1 0 and u11 = Cmat.get u 1 1 in
      let rows_done = Cmat.copy rho.m in
      for i = 0 to d - 1 do
        if i land bit = 0 && i land cmask = cmask then begin
          let j = i lor bit in
          for c = 0 to d - 1 do
            let a = Cmat.get rho.m i c and b = Cmat.get rho.m j c in
            Cmat.set rows_done i c (Cx.add (Cx.mul u00 a) (Cx.mul u01 b));
            Cmat.set rows_done j c (Cx.add (Cx.mul u10 a) (Cx.mul u11 b))
          done
        end
      done;
      let out = Cmat.copy rows_done in
      let c00 = Cx.conj u00 and c01 = Cx.conj u01 in
      let c10 = Cx.conj u10 and c11 = Cx.conj u11 in
      for i = 0 to d - 1 do
        if i land bit = 0 && i land cmask = cmask then begin
          let j = i lor bit in
          for r = 0 to d - 1 do
            let a = Cmat.get rows_done r i and b = Cmat.get rows_done r j in
            Cmat.set out r i (Cx.add (Cx.mul c00 a) (Cx.mul c01 b));
            Cmat.set out r j (Cx.add (Cx.mul c10 a) (Cx.mul c11 b))
          done
        end
      done;
      { rho with m = out }

let apply_kraus ks q rho =
  let d = 1 lsl rho.n in
  let acc = ref (Cmat.create d d) in
  List.iter
    (fun k -> acc := Cmat.add !acc (op_cols k q (op_rows k q rho.m d) d))
    ks;
  { rho with m = !acc }

(* 4x4 analogues for two-qubit channels; q0 is the least significant bit of
   the pair. *)
let op_rows2 k q0 q1 rho_m dim =
  let out = Cmat.copy rho_m in
  let b0 = 1 lsl q0 and b1 = 1 lsl q1 in
  for i = 0 to dim - 1 do
    if i land b0 = 0 && i land b1 = 0 then begin
      let idx = [| i; i lor b0; i lor b1; i lor b0 lor b1 |] in
      for c = 0 to dim - 1 do
        for a = 0 to 3 do
          let s = ref Cx.zero in
          for b = 0 to 3 do
            s := Cx.add !s (Cx.mul (Cmat.get k a b) (Cmat.get rho_m idx.(b) c))
          done;
          Cmat.set out idx.(a) c !s
        done
      done
    end
  done;
  out

let op_cols2 k q0 q1 rho_m dim =
  let out = Cmat.copy rho_m in
  let b0 = 1 lsl q0 and b1 = 1 lsl q1 in
  for i = 0 to dim - 1 do
    if i land b0 = 0 && i land b1 = 0 then begin
      let idx = [| i; i lor b0; i lor b1; i lor b0 lor b1 |] in
      for r = 0 to dim - 1 do
        for a = 0 to 3 do
          let s = ref Cx.zero in
          for b = 0 to 3 do
            s :=
              Cx.add !s
                (Cx.mul (Cmat.get rho_m r idx.(b)) (Cx.conj (Cmat.get k a b)))
          done;
          Cmat.set out r idx.(a) !s
        done
      done
    end
  done;
  out

let apply_kraus2 ks q0 q1 rho =
  let d = 1 lsl rho.n in
  let acc = ref (Cmat.create d d) in
  List.iter
    (fun k ->
      acc := Cmat.add !acc (op_cols2 k q0 q1 (op_rows2 k q0 q1 rho.m d) d))
    ks;
  { rho with m = !acc }

let prob1 rho q =
  let d = 1 lsl rho.n in
  let bit = 1 lsl q in
  let p = ref 0. in
  for i = 0 to d - 1 do
    if i land bit <> 0 then p := !p +. Cx.re (Cmat.get rho.m i i)
  done;
  !p

let measure_qubit rho q =
  let d = 1 lsl rho.n in
  let bit = 1 lsl q in
  let p1 = prob1 rho q in
  let p0 = 1. -. p1 in
  let branch outcome p =
    if p <= 1e-15 then (0., maximally_mixed rho.n)
    else begin
      let m = Cmat.create d d in
      for i = 0 to d - 1 do
        for j = 0 to d - 1 do
          let keep_i =
            if outcome = 1 then i land bit <> 0 else i land bit = 0
          in
          let keep_j =
            if outcome = 1 then j land bit <> 0 else j land bit = 0
          in
          if keep_i && keep_j then
            Cmat.set m i j (Cx.scale (1. /. p) (Cmat.get rho.m i j))
        done
      done;
      (p, { rho with m })
    end
  in
  (branch 0 p0, branch 1 p1)

let dephase_qubit rho q =
  let (p0, r0), (p1, r1) = measure_qubit rho q in
  let parts =
    (if p0 > 0. then [ (p0, r0) ] else []) @ if p1 > 0. then [ (p1, r1) ] else []
  in
  mix parts

let partial_trace ~keep rho =
  let k = List.length keep in
  let keep_arr = Array.of_list keep in
  let keep_mask = Array.fold_left (fun m q -> m lor (1 lsl q)) 0 keep_arr in
  let rest = ref [] in
  for q = rho.n - 1 downto 0 do
    if keep_mask land (1 lsl q) = 0 then rest := q :: !rest
  done;
  let rest_arr = Array.of_list !rest in
  let dk = 1 lsl k and dr = 1 lsl Array.length rest_arr in
  let compose a e =
    let idx = ref 0 in
    Array.iteri
      (fun j q -> if (a lsr j) land 1 = 1 then idx := !idx lor (1 lsl q))
      keep_arr;
    Array.iteri
      (fun j q -> if (e lsr j) land 1 = 1 then idx := !idx lor (1 lsl q))
      rest_arr;
    !idx
  in
  let out = Cmat.create dk dk in
  for a = 0 to dk - 1 do
    for b = 0 to dk - 1 do
      let s = ref Cx.zero in
      for e = 0 to dr - 1 do
        s := Cx.add !s (Cmat.get rho.m (compose a e) (compose b e))
      done;
      Cmat.set out a b !s
    done
  done;
  { n = k; m = out }

let trace rho = Cx.re (Cmat.trace rho.m)

let purity rho =
  let f = Cmat.frob_norm rho.m in
  f *. f

let probs rho =
  let d = 1 lsl rho.n in
  Array.init d (fun i -> Cx.re (Cmat.get rho.m i i))

let expectation_pauli p rho = Pauli.expectation_dm p rho.m

let fidelity a b =
  if a.n <> b.n then invalid_arg "Density.fidelity: qubit mismatch";
  let sqa = Eig.sqrtm_psd a.m in
  let inner = Cmat.mul3 sqa b.m sqa in
  let w, _ = Eig.hermitian inner in
  let s = Array.fold_left (fun acc x -> acc +. sqrt (Float.max 0. x)) 0. w in
  s *. s

let is_valid ?(eps = 1e-8) rho =
  Cmat.is_hermitian ~eps rho.m
  && Float.abs (trace rho -. 1.) < eps
  &&
  let w, _ = Eig.hermitian rho.m in
  Array.for_all (fun x -> x > -.eps) w

let equal ?(eps = 1e-12) a b = a.n = b.n && Cmat.equal ~eps a.m b.m
let pp ppf rho = Format.fprintf ppf "Density(%d qubits)@.%a" rho.n Cmat.pp rho.m
