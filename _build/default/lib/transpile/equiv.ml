open Linalg

let unitaries_equal ?(up_to_phase = true) ?(eps = 1e-9) a b =
  if Circuit.num_qubits a <> Circuit.num_qubits b then false
  else begin
    let ua = Sim.Engine.unitary a and ub = Sim.Engine.unitary b in
    if not up_to_phase then Cmat.equal ~eps ua ub
    else begin
      (* align on the largest entry of ua *)
      let d, _ = Cmat.dims ua in
      let best = ref (0, 0) and best_mag = ref 0. in
      for i = 0 to d - 1 do
        for j = 0 to d - 1 do
          let m = Cx.norm (Cmat.get ua i j) in
          if m > !best_mag then begin
            best := (i, j);
            best_mag := m
          end
        done
      done;
      let i, j = !best in
      let za = Cmat.get ua i j and zb = Cmat.get ub i j in
      if Cx.norm zb < eps then false
      else
        let phase = Cx.div za zb in
        Float.abs (Cx.norm phase -. 1.) < 1e-6
        && Cmat.equal ~eps ua (Cmat.scale phase ub)
    end
  end

let states_agree ?(trials = 8) ?(eps = 1e-9) rng a b =
  Circuit.num_qubits a = Circuit.num_qubits b
  &&
  let n = Circuit.num_qubits a in
  let ok = ref true in
  for _ = 1 to trials do
    if !ok then begin
      let input = Clifford.Sampling.haar_state rng n in
      let out c = (Sim.Engine.run ~initial:input c).Sim.Engine.state in
      if Qstate.Statevec.fidelity_pure (out a) (out b) < 1. -. eps then
        ok := false
    end
  done;
  !ok

let equivalent ?rng a b =
  let rng = match rng with Some r -> r | None -> Stats.Rng.make 77 in
  if Circuit.num_qubits a <= 8 then unitaries_equal a b
  else states_agree rng a b
