lib/transpile/equiv.mli: Circuit Stats
