lib/transpile/equiv.ml: Circuit Clifford Cmat Cx Float Linalg Qstate Sim Stats
