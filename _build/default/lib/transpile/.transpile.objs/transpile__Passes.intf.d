lib/transpile/passes.mli: Circuit
