lib/transpile/passes.ml: Circuit Float List
