(** Circuit equivalence checking (the "equivalence checking" line of
    related work): exact unitary comparison up to global phase for small
    registers, random-state fidelity sampling for larger ones. *)

(** [unitaries_equal ?up_to_phase a b] materializes both unitaries and
    compares entrywise; with [up_to_phase] (default true) a global phase is
    normalized away first. Intended for <= ~10 qubits. *)
val unitaries_equal : ?up_to_phase:bool -> ?eps:float -> Circuit.t -> Circuit.t -> bool

(** [states_agree ?trials ?eps rng a b] pushes random Haar states through
    both circuits and compares output fidelity — a probabilistic check that
    scales to larger registers (false means definitely inequivalent). *)
val states_agree :
  ?trials:int -> ?eps:float -> Stats.Rng.t -> Circuit.t -> Circuit.t -> bool

(** [equivalent ?rng a b] dispatches: exact below 9 qubits, sampling above. *)
val equivalent : ?rng:Stats.Rng.t -> Circuit.t -> Circuit.t -> bool
