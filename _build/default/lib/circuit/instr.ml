type t =
  | Gate of Gate.t
  | Tracepoint of { id : int; qubits : int list }
  | Measure of { qubit : int; clbit : int }
  | Reset of int
  | If_gate of { clbits : int list; value : int; gate : Gate.t }
  | Barrier of int list

let qubits = function
  | Gate g -> Gate.qubits g
  | Tracepoint { qubits; _ } -> qubits
  | Measure { qubit; _ } -> [ qubit ]
  | Reset q -> [ q ]
  | If_gate { gate; _ } -> Gate.qubits gate
  | Barrier qs -> qs

let remap f = function
  | Gate g -> Gate (Gate.remap f g)
  | Tracepoint { id; qubits } -> Tracepoint { id; qubits = List.map f qubits }
  | Measure { qubit; clbit } -> Measure { qubit = f qubit; clbit }
  | Reset q -> Reset (f q)
  | If_gate { clbits; value; gate } ->
      If_gate { clbits; value; gate = Gate.remap f gate }
  | Barrier qs -> Barrier (List.map f qs)

let pp_ints ppf l =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
    Format.pp_print_int ppf l

let pp ppf = function
  | Gate g -> Gate.pp ppf g
  | Tracepoint { id; qubits } -> Format.fprintf ppf "T %d q[%a]" id pp_ints qubits
  | Measure { qubit; clbit } ->
      Format.fprintf ppf "measure q[%d] -> c[%d]" qubit clbit
  | Reset q -> Format.fprintf ppf "reset q[%d]" q
  | If_gate { clbits; value; gate } ->
      Format.fprintf ppf "if (c[%a]==%d) %a" pp_ints clbits value Gate.pp gate
  | Barrier qs -> Format.fprintf ppf "barrier q[%a]" pp_ints qs
