lib/circuit/gate.ml: Float Format List Printf Qstate
