lib/circuit/circuit.ml: Array Format Gate Instr List Option Printf
