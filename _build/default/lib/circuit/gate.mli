(** A single gate application: a named base operation with optional real
    parameters, an optional list of control qubits, and one or two target
    qubits. Multi-controlled gates (e.g. the paper's [mcz], [mcrx]) are plain
    gates with several controls. *)

type t = private {
  name : string;
  params : float list;
  controls : int list;
  targets : int list;
}

(** [make ?params ?controls name targets] builds a gate after validating that
    targets are distinct from controls and that [name] is a known base gate
    (any of {!Qstate.Gates.known_names} plus ["cx"]-style aliases resolved by
    the simulator: ["swap"] with two targets). *)
val make : ?params:float list -> ?controls:int list -> string -> int list -> t

(** [qubits g] lists all qubits the gate touches (controls then targets). *)
val qubits : t -> int list

(** [is_two_qubit_or_more g] holds when the gate touches at least two qubits. *)
val is_two_qubit_or_more : t -> bool

(** [inverse g] is the gate implementing the adjoint unitary. *)
val inverse : t -> t

(** [remap f g] renames every qubit through [f]. *)
val remap : (int -> int) -> t -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
