(** Circuit instructions: gates, tracepoint pragmas, measurement, reset and
    classically-controlled gates (feedback). *)

type t =
  | Gate of Gate.t
  | Tracepoint of { id : int; qubits : int list }
      (** The paper's [T idx q[..]] pragma: record the reduced state of
          [qubits] at this point in the program. *)
  | Measure of { qubit : int; clbit : int }
  | Reset of int
  | If_gate of { clbits : int list; value : int; gate : Gate.t }
      (** Apply [gate] when the classical bits listed in [clbits] (least
          significant first) spell the integer [value]. *)
  | Barrier of int list

(** [qubits i] lists the qubits an instruction touches. *)
val qubits : t -> int list

(** [remap f i] renames qubits through [f] (classical bits unchanged). *)
val remap : (int -> int) -> t -> t

val pp : Format.formatter -> t -> unit
