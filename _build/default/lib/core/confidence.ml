type t = {
  dist : Stats.Beta_dist.t;
  epsilon : float;
  confidence : float;
}

let estimate ?(epsilon = 0.5) ~n_in ~n_sample accuracies =
  let mean = Approx.theoretical_accuracy ~n_in ~n_sample in
  let dist =
    if Array.length accuracies >= 2 then
      Stats.Beta_dist.fit_pinned_mean ~mean accuracies
    else
      (* no data: assume a moderate spread around the theoretical mean *)
      Stats.Beta_dist.fit_moments ~mean ~variance:(0.05 *. mean *. (1. -. mean) +. 1e-4)
  in
  let confidence = 1. -. Stats.Beta_dist.cdf dist epsilon in
  { dist; epsilon; confidence }

let required_samples ~n_in ~target_accuracy =
  let t = Float.min 1. (Float.max 0. target_accuracy) in
  int_of_float (Float.round (t *. float_of_int (1 lsl (n_in + 1))))

let exhaustive_confidence ~space ~tested =
  if space <= 0. then 1. else Float.min 1. (tested /. space)
