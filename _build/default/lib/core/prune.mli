(** Sample-space pruning strategies (Section 5.4).

    - {b Strategy-adapt}: eigendecompose the dataset's average input state
      and sample only along the dominant eigenvectors;
    - {b Strategy-const}: hold part of the input register constant by
      shrinking [Program.input_qubits] (a constructor helper here);
    - {b Strategy-prop}: characterize only the property checked by the
      assertion — realized by [Characterize.Probs_only], with the shot-cost
      comparison helper here. *)

(** [strategy_adapt ?energy dataset] returns the dominant eigenvectors of
    the dataset's average density matrix as sampling inputs, keeping the
    smallest set whose eigenvalues capture [energy] (default 0.95) of the
    total. *)
val strategy_adapt :
  ?energy:float -> Linalg.Cmat.t list -> Qstate.Statevec.t list

(** [strategy_adapt_top ~keep dataset] keeps exactly [keep] eigenvectors. *)
val strategy_adapt_top : keep:int -> Linalg.Cmat.t list -> Qstate.Statevec.t list

(** [strategy_const program ~variable_qubits] restricts the program's input
    to [variable_qubits] (the rest stay [|0>]). *)
val strategy_const : Program.t -> variable_qubits:int list -> Program.t

(** [prop_shot_reduction ~n_t] is the shot-count factor saved by measuring
    only the basis distribution instead of full tomography of an [n_t]-qubit
    tracepoint: [3^n_t]. *)
val prop_shot_reduction : n_t:int -> int
