(** Assume-guarantee assertions (Definition 1): when every assumption holds,
    every guarantee must hold. The assertion fails on an input satisfying
    the assumptions but violating a guarantee. *)

type t = {
  name : string;
  assumes : Predicate.t list;
  guarantees : Predicate.t list;
}

val make :
  ?name:string ->
  assumes:Predicate.t list ->
  guarantees:Predicate.t list ->
  unit ->
  t

(** [holds ?tol t env] checks the implication on one concrete environment:
    true when some assumption fails or all guarantees hold. *)
val holds : ?tol:float -> t -> Predicate.env -> bool

(** [tracepoints t] lists all tracepoint ids mentioned. *)
val tracepoints : t -> int list

val describe : t -> string
