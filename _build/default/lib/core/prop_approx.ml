type t = {
  observables : Qstate.Pauli.t list;
  input_side : Approx.t;  (* carries the input decomposition machinery *)
  values : float array array;  (* values.(k).(i): observable k, sample i *)
}

let of_characterization ~observables ~tracepoint (c : Characterize.t) =
  if observables = [] then invalid_arg "Prop_approx: no observables";
  let samples = c.Characterize.samples in
  if Array.length samples = 0 then invalid_arg "Prop_approx: no samples";
  let n_in = Program.num_input_qubits c.Characterize.program in
  let inputs = Array.map (fun s -> s.Characterize.input_dm) samples in
  let input_side = Approx.make ~n_in ~inputs ~outputs:[] in
  let values =
    Array.of_list
      (List.map
         (fun p ->
           Array.map
             (fun s ->
               let rho = List.assoc tracepoint s.Characterize.traces in
               Qstate.Pauli.expectation_dm p rho)
             samples)
         observables)
  in
  { observables; input_side; values }

let observables t = t.observables

let predict ?mode t rho_in =
  let alpha = Approx.decompose ?mode t.input_side rho_in in
  Array.map
    (fun vals ->
      let acc = ref 0. in
      Array.iteri (fun i a -> acc := !acc +. (a *. vals.(i))) alpha;
      Float.min 1. (Float.max (-1.) !acc))
    t.values

(* each weight-w Pauli is covered by one local measurement setting; distinct
   non-identity support patterns need distinct settings (upper bound) *)
let measurement_settings t =
  let patterns = Hashtbl.create 8 in
  List.iter
    (fun p ->
      let key =
        String.concat ""
          (Array.to_list
             (Array.map
                (function Qstate.Pauli.I -> "I" | Qstate.Pauli.X -> "X"
                        | Qstate.Pauli.Y -> "Y" | Qstate.Pauli.Z -> "Z")
                p))
      in
      Hashtbl.replace patterns key ())
    t.observables;
  max 1 (Hashtbl.length patterns)
