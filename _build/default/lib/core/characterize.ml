open Linalg

type mode =
  | Exact
  | Tomography of { shots : int; project : bool }
  | Probs_only of { shots : int }

type sample = {
  input_state : Qstate.Statevec.t;
  input_dm : Cmat.t;
  traces : (int * Cmat.t) list;
}

type t = {
  program : Program.t;
  samples : sample array;
  mode : mode;
  cost : Sim.Cost.t;
}


let degrade rng mode cost circuit (id, exact) =
  match mode with
  | Exact ->
      Sim.Cost.record_many cost circuit ~circuits:1 ~shots_each:1;
      (id, exact)
  | Tomography { shots; project } ->
      let tomo = Tomography.State_tomo.run ~project rng ~shots ~truth:exact () in
      Sim.Cost.record_many cost circuit ~circuits:tomo.Tomography.State_tomo.settings
        ~shots_each:shots;
      (id, tomo.Tomography.State_tomo.rho)
  | Probs_only { shots } ->
      let tomo = Tomography.State_tomo.probs_only rng ~shots ~truth:exact () in
      Sim.Cost.record_many cost circuit ~circuits:1 ~shots_each:shots;
      (id, tomo.Tomography.State_tomo.rho)

let run ?rng ?(kind = Clifford.Sampling.Clifford) ?(mode = Exact) ?noise
    ?trajectories ?inputs program ~count =
  let rng = match rng with Some r -> r | None -> Stats.Rng.make 7 in
  let k = Program.num_input_qubits program in
  let input_states =
    match inputs with
    | Some states ->
        List.iter
          (fun st ->
            if Qstate.Statevec.num_qubits st <> k then
              invalid_arg "Characterize.run: input size mismatch")
          states;
        states
    | None ->
        List.init count (fun index -> Clifford.Sampling.state rng kind k ~index)
  in
  let cost = Sim.Cost.create () in
  let samples =
    List.map
      (fun input_state ->
        let traces =
          Program.run_traces ?noise ?trajectories ~rng program ~input:input_state
        in
        let traces =
          List.map
            (fun (id, m) ->
              if id = 0 then (id, m)
              else degrade rng mode cost program.Program.circuit (id, m))
            traces
        in
        let v = Qstate.Statevec.to_cvec input_state in
        { input_state; input_dm = Cmat.outer v v; traces })
      input_states
  in
  { program; samples = Array.of_list samples; mode; cost }

let tracepoint_ids t =
  if Array.length t.samples = 0 then []
  else List.map fst t.samples.(0).traces
