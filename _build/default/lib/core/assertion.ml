type t = {
  name : string;
  assumes : Predicate.t list;
  guarantees : Predicate.t list;
}

let make ?(name = "assert") ~assumes ~guarantees () =
  if guarantees = [] then invalid_arg "Assertion.make: no guarantees";
  { name; assumes; guarantees }

let holds ?tol t env =
  (not (List.for_all (fun p -> Predicate.holds ?tol p env) t.assumes))
  || List.for_all (fun p -> Predicate.holds ?tol p env) t.guarantees

let tracepoints t =
  List.sort_uniq compare
    (List.concat_map Predicate.tracepoints (t.assumes @ t.guarantees))

let describe t =
  Printf.sprintf "%s: assume {%s} guarantee {%s}" t.name
    (String.concat "; " (List.map Predicate.describe t.assumes))
    (String.concat "; " (List.map Predicate.describe t.guarantees))
