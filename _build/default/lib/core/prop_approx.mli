(** Property-level approximation: the formalization of the paper's
    Strategy-prop (Section 5.4). When an assertion only constrains a few
    observables, there is no need to reconstruct full density matrices —
    Pauli expectations are themselves linear in the input state, so the
    sampled expectation values extend to arbitrary inputs with the same
    isomorphism argument, at a fraction of the tomography cost. *)

type t

(** [of_characterization ~observables ~tracepoint c] records the expectation
    of each observable at the tracepoint for every sampled input. Observable
    arity must match the tracepoint width. *)
val of_characterization :
  observables:Qstate.Pauli.t list -> tracepoint:int -> Characterize.t -> t

(** [observables t] in declaration order. *)
val observables : t -> Qstate.Pauli.t list

(** [predict ?mode t rho_in] is the predicted expectation of each observable
    under the given input density matrix (clamped to [-1, 1]). *)
val predict : ?mode:Approx.recovery -> t -> Linalg.Cmat.t -> float array

(** [measurement_settings t] is the number of distinct measurement bases the
    characterization needs on hardware (vs [3^n] for full tomography). *)
val measurement_settings : t -> int
