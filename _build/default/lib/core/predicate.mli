(** Classical predicates over tracepoint states (Definition 1 in the paper).

    Every predicate compiles to an objective function over an environment
    mapping tracepoint ids to density matrices; the predicate holds if and
    only if the objective is [<= 0]. Tracepoint id 0 denotes the program
    input. *)

type env = int -> Linalg.Cmat.t

type t =
  | Is_pure of int  (** [|| rho rho^dag - rho || <= 0] *)
  | Purity_ge of int * float  (** [tr(rho^2) >= bound] *)
  | Equals of int * int  (** [|| rho_a - rho_b || <= 0] *)
  | Equals_const of int * Linalg.Cmat.t
  | Not_equals_const of int * Linalg.Cmat.t * float
      (** [|| rho - c || >= margin]: true when the state is at least
          [margin] away from the constant *)
  | Distance_le of int * int * float  (** [|| rho_a - rho_b || <= bound] *)
  | Expect_ge of int * Qstate.Pauli.t * float  (** [tr(P rho) >= bound] *)
  | Expect_le of int * Qstate.Pauli.t * float
  | Diag_in_range of int * int * float * float
      (** [lo <= rho[k][k] <= hi] — e.g. an encoded attribute range *)
  | Phase_diff of int * int * float
      (** off-diagonal phase difference between two single-qubit states
          equals the given angle *)
  | Custom of string * (env -> float)

(** [eval p env] is the objective value; [<= 0] iff the predicate holds. *)
val eval : t -> env -> float

(** [holds ?tol p env] tests the predicate with tolerance [tol]
    (default 1e-6). *)
val holds : ?tol:float -> t -> env -> bool

(** [tracepoints p] lists the tracepoint ids the predicate mentions. *)
val tracepoints : t -> int list

val describe : t -> string
