open Linalg

type env = int -> Cmat.t

type t =
  | Is_pure of int
  | Purity_ge of int * float
  | Equals of int * int
  | Equals_const of int * Cmat.t
  | Not_equals_const of int * Cmat.t * float
  | Distance_le of int * int * float
  | Expect_ge of int * Qstate.Pauli.t * float
  | Expect_le of int * Qstate.Pauli.t * float
  | Diag_in_range of int * int * float * float
  | Phase_diff of int * int * float
  | Custom of string * (env -> float)

let purity rho =
  let f = Cmat.frob_norm rho in
  f *. f

let eval p (env : env) =
  match p with
  | Is_pure tp ->
      let rho = env tp in
      Cmat.frob_norm (Cmat.sub (Cmat.mul rho (Cmat.adjoint rho)) rho)
  | Purity_ge (tp, bound) -> bound -. purity (env tp)
  | Equals (a, b) -> Cmat.frob_norm (Cmat.sub (env a) (env b))
  | Equals_const (tp, c) -> Cmat.frob_norm (Cmat.sub (env tp) c)
  | Not_equals_const (tp, c, margin) ->
      margin -. Cmat.frob_norm (Cmat.sub (env tp) c)
  | Distance_le (a, b, bound) ->
      Cmat.frob_norm (Cmat.sub (env a) (env b)) -. bound
  | Expect_ge (tp, pauli, bound) ->
      bound -. Qstate.Pauli.expectation_dm pauli (env tp)
  | Expect_le (tp, pauli, bound) ->
      Qstate.Pauli.expectation_dm pauli (env tp) -. bound
  | Diag_in_range (tp, k, lo, hi) ->
      let v = Cx.re (Cmat.get (env tp) k k) in
      Float.max (lo -. v) (v -. hi)
  | Phase_diff (a, b, angle) ->
      (* compare the phases of the |0><1| coherences of two 1-qubit states *)
      let pa = Cx.arg (Cmat.get (env a) 0 1) and pb = Cx.arg (Cmat.get (env b) 0 1) in
      let diff = Float.abs (pa -. pb) in
      let diff = Float.min diff ((2. *. Float.pi) -. diff) in
      Float.abs (diff -. angle) -. 1e-9
  | Custom (_, f) -> f env

let holds ?(tol = 1e-6) p env = eval p env <= tol

let tracepoints = function
  | Is_pure tp
  | Purity_ge (tp, _)
  | Equals_const (tp, _)
  | Not_equals_const (tp, _, _)
  | Expect_ge (tp, _, _)
  | Expect_le (tp, _, _)
  | Diag_in_range (tp, _, _, _) ->
      [ tp ]
  | Equals (a, b) | Distance_le (a, b, _) | Phase_diff (a, b, _) -> [ a; b ]
  | Custom _ -> []

let describe = function
  | Is_pure tp -> Printf.sprintf "is_pure(T%d)" tp
  | Purity_ge (tp, b) -> Printf.sprintf "purity(T%d) >= %g" tp b
  | Equals (a, b) -> Printf.sprintf "T%d == T%d" a b
  | Equals_const (tp, _) -> Printf.sprintf "T%d == <const>" tp
  | Not_equals_const (tp, _, m) -> Printf.sprintf "T%d != <const> (margin %g)" tp m
  | Distance_le (a, b, d) -> Printf.sprintf "||T%d - T%d|| <= %g" a b d
  | Expect_ge (tp, p, b) ->
      Printf.sprintf "<%s>(T%d) >= %g" (Qstate.Pauli.to_string p) tp b
  | Expect_le (tp, p, b) ->
      Printf.sprintf "<%s>(T%d) <= %g" (Qstate.Pauli.to_string p) tp b
  | Diag_in_range (tp, k, lo, hi) ->
      Printf.sprintf "T%d[%d][%d] in [%g, %g]" tp k k lo hi
  | Phase_diff (a, b, angle) -> Printf.sprintf "phase(T%d, T%d) == %g" a b angle
  | Custom (name, _) -> name
